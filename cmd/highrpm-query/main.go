// Command highrpm-query fetches stored power history from a running
// HighRPM service over TCP: one node's series or the cluster-wide
// aggregate, at raw 1 s resolution or as 10 s / 60 s min/mean/max rollups.
// Results print as a table or export as CSV in the tracefile column
// conventions.
//
// Usage:
//
//	highrpm-query -addr host:port [-node node-00] [-channel p_cpu]
//	              [-from 0] [-to 60] [-res 10] [-csv out.csv] [-json] [-stats]
//
// Without -node the channel is aggregated (summed) across every node the
// service has history for. -csv - writes CSV to stdout. -json writes the
// series to stdout in the wire encoding — byte-for-byte the same bytes the
// observability endpoint's /api/v1/series returns for the same window
// (NaN gaps encode as null).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"highrpm"
	"highrpm/internal/cliutil"
	"highrpm/internal/tracefile"
)

// flagGroups orders -help by subsystem (see internal/cliutil).
var flagGroups = []cliutil.Group{
	{Title: "Connection & window", Names: []string{"addr", "node", "channel", "from", "to", "res"}},
	{Title: "Output", Names: []string{"csv", "json", "stats"}},
}

func main() {
	var (
		addr    = flag.String("addr", "", "service address (host:port), required")
		node    = flag.String("node", "", "node ID (empty: aggregate across all nodes)")
		channel = flag.String("channel", "p_node", "channel: "+channelList())
		from    = flag.Float64("from", 0, "window start in seconds")
		to      = flag.Float64("to", math.MaxFloat64, "window end in seconds (default: everything)")
		res     = flag.Int("res", 1, "resolution in seconds: 1 (raw), 10 or 60")
		csvOut  = flag.String("csv", "", "write CSV to this path instead of a table (- for stdout)")
		jsonOut = flag.Bool("json", false, "write the series as JSON to stdout (the /api/v1/series wire encoding)")
		stats   = flag.Bool("stats", false, "also print service and store statistics")
	)
	flag.Usage = cliutil.GroupedUsage(flag.CommandLine, "highrpm-query", flagGroups)
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "highrpm-query: -addr is required")
		flag.Usage()
		os.Exit(2)
	}
	if *jsonOut && *csvOut != "" {
		fmt.Fprintln(os.Stderr, "highrpm-query: -json and -csv are mutually exclusive")
		os.Exit(2)
	}

	agent, err := highrpm.DialService(*addr, "highrpm-query")
	if err != nil {
		fatal(err)
	}
	defer agent.Close()

	body, err := agent.Query(highrpm.QueryRequest{
		NodeID:      *node,
		Channel:     *channel,
		From:        *from,
		To:          *to,
		ResolutionS: *res,
	})
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		// json.NewEncoder's compact form plus trailing newline — the exact
		// bytes the observability endpoint serves for this window.
		if err := json.NewEncoder(os.Stdout).Encode(body); err != nil {
			fatal(err)
		}
	} else if *csvOut != "" {
		var w io.Writer = os.Stdout
		if *csvOut != "-" {
			f, err := os.Create(*csvOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := tracefile.WriteSeries(w, body.Channel, body.StorePoints()); err != nil {
			fatal(err)
		}
	} else {
		printTable(body)
	}

	if *stats {
		st, err := agent.Stats()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nservice: %d nodes, %d samples (%d measured)\n", st.Nodes, st.Samples, st.Measured)
		fmt.Printf("store: %d series, %d raw points, %d bytes (%.2f B/point, %.1fx vs 16 B uncompressed)\n",
			st.Store.Series, st.Store.Points, st.Store.Bytes, st.Store.BytesPerPoint, st.Store.CompressionRatio)
		fmt.Printf("codec: %d binary conns; frames %d binary / %d json; %d record batches carrying %d samples%s\n",
			st.BinConns, st.BinFrames, st.JSONFrames, st.Batches, st.BatchSamples, meanBatch(st.Batches, st.BatchSamples))
		fmt.Printf("cache: %d hits / %d misses%s, %d decoded points resident\n",
			st.Store.CacheHits, st.Store.CacheMisses, hitRate(st.Store.CacheHits, st.Store.CacheMisses), st.Store.CachePoints)
	}
}

func printTable(body highrpm.Series) {
	scope := body.NodeID
	if scope == "" {
		scope = "<all nodes>"
	}
	fmt.Printf("# %s %s @ %ds (%d points)\n", scope, body.Channel, body.ResolutionS, len(body.Points))
	if body.ResolutionS > 1 {
		fmt.Printf("%10s %10s %10s %10s %6s\n", "time_s", "mean_w", "min_w", "max_w", "n")
	} else {
		fmt.Printf("%10s %10s\n", "time_s", body.Channel+"_w")
	}
	for _, p := range body.Points {
		if body.ResolutionS > 1 {
			fmt.Printf("%10.1f %10s %10s %10s %6d\n",
				p.Time, watts(float64(p.Value)), watts(float64(p.Min)), watts(float64(p.Max)), p.Count)
		} else {
			fmt.Printf("%10.1f %10s\n", p.Time, watts(float64(p.Value)))
		}
	}
}

// meanBatch renders the mean coalescing factor when any batches arrived.
func meanBatch(batches, samples int64) string {
	if batches == 0 {
		return ""
	}
	return fmt.Sprintf(" (%.1f samples/batch)", float64(samples)/float64(batches))
}

// hitRate renders the cache hit rate when the cache has been consulted.
func hitRate(hits, misses int64) string {
	if hits+misses == 0 {
		return ""
	}
	return fmt.Sprintf(" (%.1f%% hit rate)", 100*float64(hits)/float64(hits+misses))
}

// watts renders a value, leaving NaN gaps visibly empty.
func watts(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.3f", v)
}

func channelList() string {
	names := make([]string, 0, len(highrpm.StoreChannels()))
	for _, c := range highrpm.StoreChannels() {
		names = append(names, string(c))
	}
	return strings.Join(names, ", ")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "highrpm-query: %v\n", err)
	os.Exit(1)
}
