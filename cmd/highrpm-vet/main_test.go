package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

const fixtureDir = "../../internal/lint/testdata/fixture"

func runVet(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return out.String(), errb.String(), code
}

func TestGoldenFixtureOutput(t *testing.T) {
	golden, err := os.ReadFile("testdata/golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	out, errb, code := runVet(t, "-C", fixtureDir, "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, errb)
	}
	if out != string(golden) {
		t.Errorf("output mismatch:\n--- got ---\n%s--- want ---\n%s", out, golden)
	}
}

func TestJSONOutput(t *testing.T) {
	out, _, code := runVet(t, "-C", fixtureDir, "-json", "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	var parsed struct {
		Diagnostics []struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Rule    string `json:"rule"`
			Message string `json:"message"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal([]byte(out), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(parsed.Diagnostics) != 20 {
		t.Fatalf("got %d diagnostics, want 20", len(parsed.Diagnostics))
	}
	rules := make(map[string]bool)
	for _, d := range parsed.Diagnostics {
		rules[d.Rule] = true
	}
	for _, want := range []string{"determinism", "maporder", "floateq", "leakcheck", "errdrop", "layering"} {
		if !rules[want] {
			t.Errorf("rule %s missing from JSON output", want)
		}
	}
}

func TestFixIgnoreListsStaleDirectives(t *testing.T) {
	out, _, code := runVet(t, "-C", fixtureDir, "-fix-ignore", "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (one stale directive)", code)
	}
	if !strings.Contains(out, "STALE") {
		t.Errorf("listing does not mark the stale directive:\n%s", out)
	}
	if !strings.Contains(out, "2 directives, 1 stale") {
		t.Errorf("listing summary wrong:\n%s", out)
	}
}

func TestRulesFlagSubset(t *testing.T) {
	out, _, code := runVet(t, "-C", fixtureDir, "-rules", "determinism", "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d findings, want 3:\n%s", len(lines), out)
	}
	for _, l := range lines {
		if !strings.Contains(l, " determinism: ") {
			t.Errorf("unexpected finding with -rules determinism: %s", l)
		}
	}
}

func TestUnknownRuleIsUsageError(t *testing.T) {
	_, errb, code := runVet(t, "-C", fixtureDir, "-rules", "nosuchrule", "./...")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errb, "unknown rule") {
		t.Errorf("stderr does not name the unknown rule: %s", errb)
	}
}

// TestRealTreeIsClean is the machine-checked form of the repo invariant:
// the shipped tree must carry zero findings (modulo the justified
// lint:ignore annotations it already contains).
func TestRealTreeIsClean(t *testing.T) {
	out, errb, code := runVet(t, "-C", "../..", "./...")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	if out != "" {
		t.Errorf("expected no output on the clean tree, got:\n%s", out)
	}
}
