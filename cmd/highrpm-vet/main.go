// Command highrpm-vet runs the project-aware static-analysis rules in
// internal/lint over the module: determinism of the model packages,
// map-iteration-order hygiene, float-equality discipline, the cluster
// goroutine-leak-guard convention, discarded Close/Flush/Write/Shutdown
// errors, and package layering.
//
// Exit codes: 0 clean, 1 findings (or stale ignores with -fix-ignore),
// 2 usage, load or type-check failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"highrpm/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("highrpm-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "run as if started in `dir`")
	rules := fs.String("rules", "", "comma-separated `subset` of rules to run (default: all)")
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	fixIgnore := fs.Bool("fix-ignore", false, "list every lint:ignore directive and fail on stale ones")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: highrpm-vet [flags] [package patterns]\n\nFlags:\n")
		fs.PrintDefaults()
		fmt.Fprintf(stderr, "\nRules:\n")
		for _, a := range lint.Default() {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name(), a.Doc())
		}
		fmt.Fprintf(stderr, "\nSuppress a finding with //lint:ignore <rule> <reason> on (or directly\nabove) the offending line, or //lint:file-ignore <rule> <reason> for a file.\n")
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	analyzers := lint.Default()
	if *rules != "" {
		byName := make(map[string]lint.Analyzer, len(analyzers))
		for _, a := range analyzers {
			byName[a.Name()] = a
		}
		analyzers = analyzers[:0]
		for _, r := range strings.Split(*rules, ",") {
			a, ok := byName[strings.TrimSpace(r)]
			if !ok {
				fmt.Fprintf(stderr, "highrpm-vet: unknown rule %q\n", r)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	res, err := lint.Run(*dir, fs.Args(), analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "highrpm-vet: %v\n", err)
		return 2
	}
	if len(res.TypeErrors) > 0 {
		for _, e := range res.TypeErrors {
			fmt.Fprintf(stderr, "highrpm-vet: type error: %s\n", e)
		}
		return 2
	}

	absDir, err := filepath.Abs(*dir)
	if err != nil {
		absDir = *dir
	}
	rel := func(path string) string {
		if r, err := filepath.Rel(absDir, path); err == nil && !strings.HasPrefix(r, "..") {
			return r
		}
		return path
	}

	if *fixIgnore {
		stale := 0
		for _, ig := range res.Ignores {
			status := "used"
			switch {
			case !ig.Evaluated:
				status = "rule not enabled this run"
			case !ig.Used:
				status = "STALE (suppresses nothing)"
				stale++
			}
			kind := "ignore"
			if ig.File {
				kind = "file-ignore"
			}
			fmt.Fprintf(stdout, "%s:%d: lint:%s %s (%s) — %s\n",
				rel(ig.Pos.Filename), ig.Pos.Line, kind, strings.Join(ig.Rules, ","), ig.Reason, status)
		}
		fmt.Fprintf(stdout, "%d directives, %d stale\n", len(res.Ignores), stale)
		if stale > 0 {
			return 1
		}
		return 0
	}

	if *jsonOut {
		type jsonDiag struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Rule    string `json:"rule"`
			Message string `json:"message"`
		}
		out := struct {
			Diagnostics []jsonDiag `json:"diagnostics"`
		}{Diagnostics: []jsonDiag{}}
		for _, d := range res.Diagnostics {
			out.Diagnostics = append(out.Diagnostics, jsonDiag{rel(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Rule, d.Message})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "highrpm-vet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range res.Diagnostics {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", rel(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
		}
	}
	if len(res.Diagnostics) > 0 {
		return 1
	}
	return 0
}
