// Command highrpm-trace simulates a benchmark on a platform model and dumps
// the resulting trace — ground-truth power, sensor readings and PMC rates —
// as CSV for offline analysis (see highrpm-analyze) or plotting.
//
// Usage:
//
//	highrpm-trace [-bench HPCC/FFT] [-duration 300] [-platform arm|x86]
//	              [-miss 10] [-freq 2.2] [-o trace.csv]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"highrpm"
	"highrpm/internal/tracefile"
)

func main() {
	var (
		bench = flag.String("bench", "HPCC/FFT", "benchmark name (see -list)")
		dur   = flag.Float64("duration", 300, "trace duration in seconds")
		plat  = flag.String("platform", "arm", "platform model: arm or x86")
		miss  = flag.Float64("miss", 10, "IPMI reading interval in seconds")
		freq  = flag.Float64("freq", 0, "pin DVFS level in GHz (0 = max)")
		out   = flag.String("o", "-", "output CSV path (- for stdout)")
		seed  = flag.Int64("seed", 1, "simulation seed")
		list  = flag.Bool("list", false, "list benchmark names and exit")
	)
	flag.Parse()

	if *list {
		for _, b := range highrpm.Benchmarks() {
			fmt.Println(b.String())
		}
		return
	}

	b, err := highrpm.FindBenchmark(*bench)
	if err != nil {
		fatal(err)
	}
	var cfg highrpm.PlatformConfig
	switch *plat {
	case "arm":
		cfg = highrpm.ARMPlatform()
	case "x86":
		cfg = highrpm.X86Platform()
	default:
		fatal(fmt.Errorf("unknown platform %q", *plat))
	}
	node, err := highrpm.NewNode(cfg, *seed)
	if err != nil {
		fatal(err)
	}
	if *freq > 0 {
		if err := node.SetFrequency(*freq); err != nil {
			fatal(err)
		}
	}
	tr := node.RunFor(b, *dur, 1)
	sensor := highrpm.NewIPMISensor(*miss, *seed+1)
	readings := sensor.Readings(tr)

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := tracefile.Write(w, tr, readings); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "highrpm-trace: %s on %s: %d samples, %d IPMI readings, peak %.1f W, energy %.1f kJ\n",
		b, cfg.Name, len(tr.Samples), len(readings), tr.PeakPower(), tr.Energy()/1000)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "highrpm-trace: %v\n", err)
	os.Exit(1)
}
