// Command highrpm-analyze restores a persisted monitoring trace offline:
// it reads a CSV written by highrpm-trace (or by a real collector using the
// same layout), applies a trained model's StaticTRR + SRR, and reports the
// restored series and — when the file carries ground truth — accuracy.
//
// Usage:
//
//	highrpm-trace -bench HPCG/hpcg -o run.csv
//	highrpm-train -out model.json
//	highrpm-analyze -model model.json run.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"highrpm"
	"highrpm/internal/tracefile"
)

func main() {
	var (
		modelPath = flag.String("model", "highrpm-model.json", "trained model JSON")
		suite     = flag.String("suite", "unknown", "suite tag for the trace")
		bench     = flag.String("bench", "unknown", "benchmark tag for the trace")
		showAll   = flag.Bool("series", false, "print the full restored series")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: highrpm-analyze [flags] trace.csv")
		os.Exit(2)
	}

	model, err := highrpm.LoadModel(*modelPath)
	if err != nil {
		fatal(err)
	}
	fh, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer fh.Close()
	tf, err := tracefile.Read(fh)
	if err != nil {
		fatal(err)
	}
	set := tf.Dataset(*suite, *bench)
	idx, vals := tf.Readings()
	if len(idx) < 2 {
		fatal(fmt.Errorf("trace has %d IM readings; need at least 2 to restore", len(idx)))
	}
	fmt.Printf("trace: %d samples, %d IM readings (every ~%.0f s)\n",
		set.Len(), len(idx), float64(set.Len())/float64(len(idx)))

	node, pcpu, pmem, err := model.Restore(set, idx, vals, highrpm.ModeStatic)
	if err != nil {
		fatal(err)
	}

	if *showAll {
		fmt.Println("time_s, p_node_w, p_cpu_w, p_mem_w")
		for i := range node {
			fmt.Printf("%.0f, %.2f, %.2f, %.2f\n", set.Samples[i].Time, node[i], pcpu[i], pmem[i])
		}
	}

	// Summary statistics of the restored series.
	var sumN, sumC, sumM, peak float64
	for i := range node {
		sumN += node[i]
		sumC += pcpu[i]
		sumM += pmem[i]
		if node[i] > peak {
			peak = node[i]
		}
	}
	n := float64(len(node))
	fmt.Printf("restored averages: node %.1f W, cpu %.1f W, mem %.1f W; peak node %.1f W\n",
		sumN/n, sumC/n, sumM/n, peak)
	fmt.Printf("restored node energy: %.2f kJ over %.0f s\n", sumN/1000, n)

	if tf.HasGroundTruth() {
		fmt.Println("\nfile carries ground truth; accuracy of the restoration:")
		fmt.Printf("  node: %v\n", highrpm.Evaluate(set.NodePower(), node))
		fmt.Printf("  cpu:  %v\n", highrpm.Evaluate(set.CPUPower(), pcpu))
		fmt.Printf("  mem:  %v\n", highrpm.Evaluate(set.MemPower(), pmem))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "highrpm-analyze: %v\n", err)
	os.Exit(1)
}
