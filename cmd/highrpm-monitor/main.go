// Command highrpm-monitor runs live high-resolution power monitoring over a
// simulated cluster: it starts the HighRPM control-node service, launches
// one simulated compute node per -nodes, streams telemetry through agents,
// and prints per-second restored power next to the sparse IPMI readings the
// service actually received.
//
// Usage:
//
//	highrpm-monitor [-model highrpm-model.json] [-nodes 2] [-bench HPCC/FFT]
//	                [-duration 60] [-miss 10] [-read-timeout 5m] [-max-conns 0]
//	                [-resilient] [-codec binary] [-batch 8] [-batch-interval 2s]
//	                [-data-dir ./highrpm-data] [-fsync batch] [-snapshot-every 65536]
//	                [-http 127.0.0.1:9090] [-pprof] [-grace 2s]
//
// -help groups the knobs by subsystem (simulation, service hardening,
// agent & wire protocol, observability). Without -model a small model is
// trained in-process first (~seconds).
//
// The service-hardening flags map onto ServiceOptions: -read-timeout reaps
// connections that go silent, -write-timeout bounds each reply, -max-frame
// caps one wire frame, and -max-conns drops connections beyond the cap at
// accept time. -resilient switches the simulated agents to the
// fault-tolerant client, which reconnects with backoff and falls back to
// local inference when the service is unreachable. -codec pins the wire
// codec (binary offers the zero-allocation framing in Hello, json keeps
// the original protocol), and -batch/-batch-interval coalesce samples
// into KindRecordBatch frames, amortizing one round trip over many
// samples without changing any estimate.
//
// -data-dir makes the history store durable: every estimate is written to
// a CRC-checked write-ahead log before it lands in memory, the log is
// periodically compacted into snapshots (-snapshot-every), and a restart
// on the same directory replays both. -fsync picks the WAL sync policy:
// batch (default, background flusher; a crash loses at most one flush
// interval), always (fsync per sample), or never (OS page cache only).
//
// -http starts the observability endpoint on the given address: /metrics
// in Prometheus text format (per-node power gauges, service and store
// counters, highrpm_overhead_* self-metering), /api/v1/query and
// /api/v1/series JSON over the history store, and /healthz + /readyz
// probes. -pprof additionally mounts net/http/pprof there. Both the
// service and the endpoint drain gracefully for -grace at exit.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"highrpm"
	"highrpm/internal/cliutil"
)

func main() {
	var (
		modelPath = flag.String("model", "", "trained model JSON (empty: train in-process)")
		nodes     = flag.Int("nodes", 2, "number of simulated compute nodes")
		bench     = flag.String("bench", "HPCC/FFT", "benchmark each node runs")
		duration  = flag.Float64("duration", 60, "monitoring duration in seconds")
		miss      = flag.Int("miss", 10, "IPMI reading interval in seconds")
		retain    = flag.Int("retain", 0, "history retention in points per resolution (0: library defaults)")
		seed      = flag.Int64("seed", 1, "simulation seed")
		quiet     = flag.Bool("quiet", false, "only print the final summary")

		readTimeout  = flag.Duration("read-timeout", highrpm.DefaultServiceOptions().ReadTimeout, "reap a connection after this long without a message (0: never)")
		writeTimeout = flag.Duration("write-timeout", highrpm.DefaultServiceOptions().WriteTimeout, "bound writing one reply (0: unbounded)")
		maxFrame     = flag.Int("max-frame", highrpm.DefaultServiceOptions().MaxFrame, "largest wire frame in bytes")
		maxConns     = flag.Int("max-conns", 0, "concurrent connection cap (0: unlimited)")

		resilient     = flag.Bool("resilient", false, "use fault-tolerant agents (reconnect + degraded-mode fallback)")
		codec         = flag.String("codec", highrpm.CodecBinary, "wire codec the agents offer: binary or json")
		batch         = flag.Int("batch", 1, "coalesce this many samples per RecordBatch frame (<2: one frame per sample)")
		batchInterval = flag.Duration("batch-interval", 0, "flush a partial batch once its oldest sample has waited this long (0: size-only)")

		dataDir   = flag.String("data-dir", "", "durable store directory: WAL + snapshots, recovered on start (empty: in-memory history)")
		fsync     = flag.String("fsync", "batch", "WAL fsync policy: batch, always or never (with -data-dir)")
		snapEvery = flag.Int("snapshot-every", 0, "write a snapshot every N ingests (0: library default, <0: disabled; with -data-dir)")

		httpAddr  = flag.String("http", "", "observability HTTP address, e.g. 127.0.0.1:9090 (empty: disabled)")
		pprofFlag = flag.Bool("pprof", false, "mount net/http/pprof on the observability endpoint")
		grace     = flag.Duration("grace", 2*time.Second, "graceful-shutdown drain for the service and HTTP endpoint")
	)
	flag.Usage = cliutil.GroupedUsage(flag.CommandLine, "highrpm-monitor", flagGroups)
	flag.Parse()
	if *codec != highrpm.CodecBinary && *codec != highrpm.CodecJSON {
		fmt.Fprintf(os.Stderr, "highrpm-monitor: -codec must be %q or %q\n", highrpm.CodecBinary, highrpm.CodecJSON)
		os.Exit(2)
	}

	model, err := loadOrTrain(*modelPath, *miss, *seed)
	if err != nil {
		fatal(err)
	}

	svcOpts := highrpm.ServiceOptions{
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		MaxFrame:     *maxFrame,
		MaxConns:     *maxConns,
	}
	storeOpts := highrpm.DefaultStoreOptions()
	if *retain > 0 {
		storeOpts.RetainRaw, storeOpts.Retain10s, storeOpts.Retain60s = *retain, *retain, *retain
	}
	var svc *highrpm.Service
	if *dataDir != "" {
		policy, err := highrpm.ParseFsyncPolicy(*fsync)
		if err != nil {
			fatal(err)
		}
		storeOpts.Dir = *dataDir
		storeOpts.Fsync = policy
		storeOpts.SnapshotEvery = *snapEvery
		var rec *highrpm.StoreRecovery
		svc, rec, err = highrpm.NewDurableService(model, svcOpts, storeOpts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("durable history in %s (fsync=%s): recovered %d WAL records past seq %d",
			*dataDir, policy, rec.Replayed, rec.SnapshotSeq)
		if rec.TornTail {
			fmt.Print(", torn tail truncated")
		}
		for _, d := range rec.Damage {
			fmt.Printf(", damage: %s", d)
		}
		fmt.Println()
	} else {
		svc = highrpm.NewServiceWith(model, svcOpts)
		if *retain > 0 {
			svc.SetStore(highrpm.NewStore(storeOpts))
		}
	}
	if err := svc.Listen("127.0.0.1:0"); err != nil {
		fatal(err)
	}
	defer svc.Close()
	fmt.Printf("service listening on %s\n", svc.Addr())

	// Optional observability endpoint: Prometheus exposition, JSON series
	// API, health probes, and (with -pprof) the profiling handlers.
	var (
		am   *highrpm.AgentMetrics
		osrv *highrpm.MetricsServer
	)
	if *httpAddr != "" {
		reg := highrpm.NewMetricsRegistry()
		svc.RegisterMetrics(reg)
		if *resilient {
			am = highrpm.NewAgentMetrics(reg)
		}
		opts := highrpm.DefaultMetricsServerOptions()
		opts.EnablePprof = *pprofFlag
		osrv = highrpm.NewMetricsServer(reg, opts)
		osrv.SetStore(svc.Store())
		osrv.SetHealth(func() highrpm.Health {
			h := svc.Health()
			if h.Ready && am != nil && am.AnyDegraded() {
				h.Degraded = true
				h.Detail = "agent(s) serving local estimates"
			}
			return h
		})
		if err := osrv.Listen(*httpAddr); err != nil {
			fatal(err)
		}
		fmt.Printf("metrics at http://%s/metrics (series API under /api/v1/)\n", osrv.Addr())
	}

	b, err := highrpm.FindBenchmark(*bench)
	if err != nil {
		fatal(err)
	}

	var (
		mu  sync.Mutex
		sum struct {
			samples  int
			absErr   float64
			measured int
		}
	)
	var wg sync.WaitGroup
	for n := 0; n < *nodes; n++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			nodeID := fmt.Sprintf("node-%02d", id)
			node, err := highrpm.NewNode(highrpm.ARMPlatform(), *seed+int64(id)*101)
			if err != nil {
				fatal(err)
			}
			agent, err := dialAgent(svc.Addr(), nodeID, *resilient, *codec, highrpm.BatchOptions{
				MaxSamples: *batch,
				MaxDelay:   *batchInterval,
			})
			if err != nil {
				fatal(err)
			}
			defer agent.Close()
			node.Attach(b)

			// With batching the estimates for queued samples arrive in
			// bursts; pending pairs them back with the true power they
			// restore, in send order.
			type sent struct{ time, pNode, pCPU, pMEM float64 }
			var pending []sent
			handle := func(ests []highrpm.Estimate) {
				for _, est := range ests {
					s := pending[0]
					pending = pending[1:]
					mu.Lock()
					sum.samples++
					diff := est.PNode - s.pNode
					if diff < 0 {
						diff = -diff
					}
					sum.absErr += diff
					if est.FromMeasurement {
						sum.measured++
					}
					mu.Unlock()
					if !*quiet && id == 0 {
						tag := " "
						if est.FromMeasurement {
							tag = "*"
						}
						fmt.Printf("%s t=%3.0fs%s node=%6.1fW (true %6.1f)  cpu=%5.1fW (true %5.1f)  mem=%5.1fW (true %5.1f)\n",
							nodeID, s.time, tag, est.PNode, s.pNode, est.PCPU, s.pCPU, est.PMEM, s.pMEM)
					}
				}
			}
			for t := 0; float64(t) < *duration; t++ {
				s := node.Step(1)
				var measured *float64
				if t%*miss == 0 {
					v := s.PNode
					measured = &v
				}
				pending = append(pending, sent{s.Time, s.PNode, s.PCPU, s.PMEM})
				ests, err := agent.Record(s.Time, s.Counters.Slice(), measured)
				if err != nil {
					fatal(err)
				}
				if ra, ok := agent.(*highrpm.ResilientAgent); ok && am != nil {
					am.Observe(ra)
				}
				handle(ests)
			}
			// Drain whatever a partial final batch still holds before the
			// deferred Close tears the connection down.
			ests, err := agent.Flush()
			if err != nil {
				fatal(err)
			}
			handle(ests)
		}(n)
	}
	wg.Wait()

	st := svc.Stats()
	fmt.Printf("\nmonitored %d nodes, %d samples (%d from IM readings)\n", st.Nodes, st.Samples, st.Measured)
	if sum.samples > 0 {
		fmt.Printf("mean absolute node-power error: %.2f W over %d samples\n", sum.absErr/float64(sum.samples), sum.samples)
	}
	ss := st.Store
	fmt.Printf("store: %d series, %d raw points, %d bytes (%.2f B/point, %.1fx vs 16 B uncompressed)\n",
		ss.Series, ss.Points, ss.Bytes, ss.BytesPerPoint, ss.CompressionRatio)
	fmt.Printf("query history with: highrpm-query -addr %s -node node-00 -channel p_cpu -res 10\n", svc.Addr())

	// Drain both servers gracefully: in-flight scrapes and replies finish,
	// whatever is still open after -grace is cut.
	if osrv != nil {
		if err := osrv.Shutdown(*grace); err != nil {
			fmt.Fprintf(os.Stderr, "highrpm-monitor: metrics shutdown: %v\n", err)
		}
	}
	if err := svc.Shutdown(*grace); err != nil {
		fmt.Fprintf(os.Stderr, "highrpm-monitor: service shutdown: %v\n", err)
	}
}

// sender is the part of Agent / ResilientAgent the monitor loop needs:
// Record queues a sample (returning estimates when a batch flushed), Flush
// drains a partial final batch.
type sender interface {
	Record(t float64, pmc []float64, measured *float64) ([]highrpm.Estimate, error)
	Flush() ([]highrpm.Estimate, error)
	Close() error
}

// dialAgent connects either the plain agent or the fault-tolerant one,
// with the requested wire codec and batching configuration.
func dialAgent(addr, nodeID string, resilient bool, codec string, batch highrpm.BatchOptions) (sender, error) {
	if resilient {
		opts := highrpm.DefaultAgentOptions()
		opts.Codec = codec
		opts.Batch = batch
		return highrpm.DialResilientService(addr, nodeID, opts)
	}
	a, err := highrpm.DialServiceCodec(addr, nodeID, codec)
	if err != nil {
		return nil, err
	}
	a.SetBatching(batch)
	return a, nil
}

// flagGroups orders -help by subsystem (see internal/cliutil): flags
// registered but not listed here surface under "Other" so new knobs can
// never silently vanish from the help text.
var flagGroups = []cliutil.Group{
	{Title: "Simulation", Names: []string{"model", "nodes", "bench", "duration", "miss", "retain", "seed", "quiet"}},
	{Title: "Service hardening", Names: []string{"read-timeout", "write-timeout", "max-frame", "max-conns"}},
	{Title: "Agent & wire protocol", Names: []string{"resilient", "codec", "batch", "batch-interval"}},
	{Title: "Durability", Names: []string{"data-dir", "fsync", "snapshot-every"}},
	{Title: "Observability & shutdown", Names: []string{"http", "pprof", "grace"}},
}

// loadOrTrain loads a persisted model or trains a compact one in-process.
func loadOrTrain(path string, miss int, seed int64) (*highrpm.Model, error) {
	if path != "" {
		fmt.Printf("loading model from %s\n", path)
		return highrpm.LoadModel(path)
	}
	fmt.Println("no -model given; training a compact model in-process...")
	gen := highrpm.DefaultGenerateConfig()
	gen.SamplesPerSuite = 240
	gen.Seed = seed
	train := &highrpm.Set{}
	for _, s := range highrpm.SuiteNames() {
		set, err := highrpm.GenerateSuite(gen, s)
		if err != nil {
			return nil, err
		}
		train.Append(set)
	}
	opts := highrpm.DefaultOptions()
	opts.SetMissInterval(miss)
	opts.Seed = seed
	return highrpm.Train(train, opts)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "highrpm-monitor: %v\n", err)
	os.Exit(1)
}
