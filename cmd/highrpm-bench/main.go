// Command highrpm-bench regenerates the paper's tables and figures on the
// simulated platforms.
//
// Usage:
//
//	highrpm-bench [flags] [experiment ...]
//
// Without arguments every experiment runs in presentation order. Pass
// experiment IDs (fig1, fig2, tab5, tab7, tab9, fig7, fig8, fig9, hyper,
// overhead, jitter) to run a subset; -list prints them.
//
// The -scale flag picks the compute budget: "bench" (seconds), "quick"
// (default, minutes), or "full" (the paper-faithful 1000 samples/suite over
// all seven Table 3 combinations).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"highrpm/internal/experiments"
)

func main() {
	var (
		scaleFlag  = flag.String("scale", "quick", "compute budget: bench, quick, or full")
		seed       = flag.Int64("seed", 1, "simulation and model seed")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		workers    = flag.Int("workers", 0, "training goroutines per model (0 = all CPUs, 1 = bit-exact serial)")
		parallel   = flag.Int("parallel", 1, "experiments run concurrently (1 = serial, streaming output)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: highrpm-bench [flags] [experiment ...]\n\nflags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(os.Stderr, "\nexperiments:\n")
		for _, id := range experiments.IDs() {
			fmt.Fprintf(os.Stderr, "  %-9s %s\n", id, experiments.Describe(id))
		}
	}
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-9s %s\n", id, experiments.Describe(id))
		}
		return
	}

	var scale experiments.Scale
	switch *scaleFlag {
	case "bench":
		scale = experiments.ScaleBench
	case "quick":
		scale = experiments.ScaleQuick
	case "full":
		scale = experiments.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "highrpm-bench: unknown scale %q (want bench, quick, or full)\n", *scaleFlag)
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "highrpm-bench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "highrpm-bench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	cfg := experiments.NewConfig(scale)
	cfg.Seed = *seed
	cfg.Workers = *workers
	ws := experiments.NewWorkspace(cfg)

	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.DefaultOrder()
	}
	fmt.Printf("highrpm-bench: scale=%s samples/suite=%d combos=%d seed=%d workers=%d parallel=%d\n\n",
		*scaleFlag, cfg.SamplesPerSuite, len(idsOrAll(cfg)), *seed, *workers, *parallel)
	start := time.Now()
	if *parallel > 1 {
		if err := experiments.RunAndRenderParallel(ws, ids, os.Stdout, *parallel); err != nil {
			fmt.Fprintf(os.Stderr, "highrpm-bench: %v\n", err)
			os.Exit(1)
		}
	} else {
		for _, id := range ids {
			t0 := time.Now()
			tables, err := experiments.Run(ws, id)
			if err != nil {
				fmt.Fprintf(os.Stderr, "highrpm-bench: %s: %v\n", id, err)
				os.Exit(1)
			}
			for _, t := range tables {
				t.Render(os.Stdout)
			}
			fmt.Printf("[%s took %v]\n\n", id, time.Since(t0).Round(time.Millisecond))
		}
	}
	fmt.Printf("total: %v\n", time.Since(start).Round(time.Millisecond))

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "highrpm-bench: memprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "highrpm-bench: memprofile: %v\n", err)
			os.Exit(1)
		}
	}
}

// idsOrAll reports how many Table 3 combinations the config evaluates, for
// the banner line.
func idsOrAll(cfg experiments.Config) []int {
	n := cfg.MaxCombos
	if n <= 0 {
		n = 7
	}
	return make([]int, n)
}
