// Command highrpm-bench regenerates the paper's tables and figures on the
// simulated platforms.
//
// Usage:
//
//	highrpm-bench [flags] [experiment ...]
//
// Without arguments every experiment runs in presentation order. Pass
// experiment IDs (fig1, fig2, tab5, tab7, tab9, fig7, fig8, fig9, hyper,
// overhead, jitter) to run a subset; -list prints them.
//
// The -scale flag picks the compute budget: "bench" (seconds), "quick"
// (default, minutes), or "full" (the paper-faithful 1000 samples/suite over
// all seven Table 3 combinations).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"highrpm/internal/experiments"
)

func main() {
	var (
		scaleFlag = flag.String("scale", "quick", "compute budget: bench, quick, or full")
		seed      = flag.Int64("seed", 1, "simulation and model seed")
		list      = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: highrpm-bench [flags] [experiment ...]\n\nflags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(os.Stderr, "\nexperiments:\n")
		for _, id := range experiments.IDs() {
			fmt.Fprintf(os.Stderr, "  %-9s %s\n", id, experiments.Describe(id))
		}
	}
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-9s %s\n", id, experiments.Describe(id))
		}
		return
	}

	var scale experiments.Scale
	switch *scaleFlag {
	case "bench":
		scale = experiments.ScaleBench
	case "quick":
		scale = experiments.ScaleQuick
	case "full":
		scale = experiments.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "highrpm-bench: unknown scale %q (want bench, quick, or full)\n", *scaleFlag)
		os.Exit(2)
	}

	cfg := experiments.NewConfig(scale)
	cfg.Seed = *seed
	ws := experiments.NewWorkspace(cfg)

	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.DefaultOrder()
	}
	fmt.Printf("highrpm-bench: scale=%s samples/suite=%d combos=%d seed=%d\n\n",
		*scaleFlag, cfg.SamplesPerSuite, len(idsOrAll(cfg)), *seed)
	start := time.Now()
	for _, id := range ids {
		t0 := time.Now()
		tables, err := experiments.Run(ws, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "highrpm-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		for _, t := range tables {
			t.Render(os.Stdout)
		}
		fmt.Printf("[%s took %v]\n\n", id, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Printf("total: %v\n", time.Since(start).Round(time.Millisecond))
}

// idsOrAll reports how many Table 3 combinations the config evaluates, for
// the banner line.
func idsOrAll(cfg experiments.Config) []int {
	n := cfg.MaxCombos
	if n <= 0 {
		n = 7
	}
	return make([]int, n)
}
