package main

import "testing"

func TestParseShards(t *testing.T) {
	top, err := parseShards("ingest-a=10.0.0.1:9000, 10.0.0.2:9000 ,b=host:1")
	if err != nil {
		t.Fatal(err)
	}
	want := []struct{ name, addr string }{
		{"ingest-a", "10.0.0.1:9000"},
		{"shard-1", "10.0.0.2:9000"},
		{"b", "host:1"},
	}
	if len(top.Shards) != len(want) {
		t.Fatalf("got %d shards, want %d: %+v", len(top.Shards), len(want), top.Shards)
	}
	for i, w := range want {
		if top.Shards[i].Name != w.name || top.Shards[i].Addr != w.addr {
			t.Errorf("shard %d = %+v, want %+v", i, top.Shards[i], w)
		}
	}
}

func TestParseShardsErrors(t *testing.T) {
	for _, bad := range []string{"", "  ", "a=,b=x:1", "=x:1", "a=1:1,,b=2:2"} {
		if _, err := parseShards(bad); err == nil {
			t.Errorf("parseShards(%q) accepted", bad)
		}
	}
}
