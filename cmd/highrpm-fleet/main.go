// Command highrpm-fleet runs the horizontal scale-out front-end: a router
// that speaks the cluster wire protocol on one address while
// consistent-hash-sharding every node's telemetry across N backend HighRPM
// services. Compute-node agents dial the router exactly as they would a
// single service; aggregate queries and stats scatter-gather every shard
// and merge bit-identically to a single service's answer.
//
// Usage:
//
//	highrpm-fleet -shards ingest-a=10.0.0.1:9000,ingest-b=10.0.0.2:9000
//	              [-listen 127.0.0.1:9200] [-replication 2] [-vnodes 64]
//	              [-codec binary] [-read-timeout 5m] [-max-conns 0]
//	              [-http 127.0.0.1:9090] [-pprof] [-grace 2s] [-duration 0]
//
// Each -shards entry is name=host:port (or a bare host:port, which names
// the shard after its index). The name is the shard's ring identity:
// renaming moves its keys, re-addressing does not. -replication R writes
// every node's stream to R distinct shards (ring owner plus clockwise
// followers) so any R-1 shard outages lose nothing; reads drain to live
// replicas automatically.
//
// -http exposes the router on the observability endpoint: per-shard
// highrpm_fleet_shard_up/agents/degraded/pending gauges, routing and
// failover counters, the scatter-gather latency histogram, and /readyz
// wired to the router's health (not ready with no reachable shard,
// degraded while any shard is down or replaying). The router runs until
// SIGINT/SIGTERM — or for -duration, if set — then drains for -grace.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"highrpm"
	"highrpm/internal/cliutil"
)

// flagGroups orders -help by subsystem (see internal/cliutil).
var flagGroups = []cliutil.Group{
	{Title: "Topology", Names: []string{"shards", "replication", "vnodes"}},
	{Title: "Front-end hardening", Names: []string{"listen", "read-timeout", "write-timeout", "max-frame", "max-conns"}},
	{Title: "Backend connections", Names: []string{"codec", "dial-retry"}},
	{Title: "Observability & shutdown", Names: []string{"http", "pprof", "grace", "duration"}},
}

func main() {
	var (
		shardsFlag  = flag.String("shards", "", "comma-separated backend shards, each name=host:port or host:port (required)")
		replication = flag.Int("replication", 1, "distinct shards holding each node's stream (1: no replication)")
		vnodes      = flag.Int("vnodes", highrpm.DefaultTopologyOptions().VirtualNodes, "ring points per shard")

		listen       = flag.String("listen", "127.0.0.1:9200", "front-end address agents and query clients dial")
		readTimeout  = flag.Duration("read-timeout", highrpm.DefaultServiceOptions().ReadTimeout, "reap a front-end connection after this long without a message (0: never)")
		writeTimeout = flag.Duration("write-timeout", highrpm.DefaultServiceOptions().WriteTimeout, "bound writing one reply (0: unbounded)")
		maxFrame     = flag.Int("max-frame", highrpm.DefaultServiceOptions().MaxFrame, "largest wire frame in bytes")
		maxConns     = flag.Int("max-conns", 0, "concurrent front-end connection cap (0: unlimited)")

		codec     = flag.String("codec", highrpm.CodecBinary, "wire codec offered to the backends: binary or json")
		dialRetry = flag.Duration("dial-retry", highrpm.DefaultTopologyOptions().DialRetry, "wait between dial attempts to a shard the router has never reached")

		httpAddr  = flag.String("http", "", "observability HTTP address, e.g. 127.0.0.1:9090 (empty: disabled)")
		pprofFlag = flag.Bool("pprof", false, "mount net/http/pprof on the observability endpoint")
		grace     = flag.Duration("grace", 2*time.Second, "graceful-shutdown drain for the router and HTTP endpoint")
		duration  = flag.Duration("duration", 0, "exit after this long (0: run until SIGINT/SIGTERM)")
	)
	flag.Usage = cliutil.GroupedUsage(flag.CommandLine, "highrpm-fleet", flagGroups)
	flag.Parse()

	top, err := parseShards(*shardsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "highrpm-fleet: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	if *codec != highrpm.CodecBinary && *codec != highrpm.CodecJSON {
		fmt.Fprintf(os.Stderr, "highrpm-fleet: -codec must be %q or %q\n", highrpm.CodecBinary, highrpm.CodecJSON)
		os.Exit(2)
	}

	opts := highrpm.DefaultTopologyOptions()
	opts.VirtualNodes = *vnodes
	opts.Replication = *replication
	opts.DialRetry = *dialRetry
	opts.Agent.Codec = *codec
	opts.FrontEnd.ReadTimeout = *readTimeout
	opts.FrontEnd.WriteTimeout = *writeTimeout
	opts.FrontEnd.MaxFrame = *maxFrame
	opts.FrontEnd.MaxConns = *maxConns

	router, err := highrpm.NewRouter(top, opts)
	if err != nil {
		fatal(err)
	}
	router.Logf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "highrpm-fleet: "+format+"\n", args...)
	}
	if err := router.Listen(*listen); err != nil {
		fatal(err)
	}
	fmt.Printf("fleet router on %s: %d shards, replication %d, %d virtual nodes/shard\n",
		router.Addr(), len(top.Shards), router.Options().Replication, router.Options().VirtualNodes)
	for _, sh := range top.Shards {
		fmt.Printf("  shard %-16s %s\n", sh.Name, sh.Addr)
	}

	var osrv *highrpm.MetricsServer
	if *httpAddr != "" {
		reg := highrpm.NewMetricsRegistry()
		router.RegisterMetrics(reg)
		mopts := highrpm.DefaultMetricsServerOptions()
		mopts.EnablePprof = *pprofFlag
		osrv = highrpm.NewMetricsServer(reg, mopts)
		osrv.SetHealth(router.Health)
		if err := osrv.Listen(*httpAddr); err != nil {
			fatal(err)
		}
		fmt.Printf("observability on http://%s (/metrics, /healthz, /readyz)\n", osrv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if *duration > 0 {
		select {
		case <-sig:
		case <-time.After(*duration):
		}
	} else {
		<-sig
	}
	signal.Stop(sig)

	fmt.Printf("draining for %s: %s\n", *grace, summary(router.Stats()))
	if osrv != nil {
		if err := osrv.Shutdown(*grace); err != nil {
			fmt.Fprintf(os.Stderr, "highrpm-fleet: obs shutdown: %v\n", err)
		}
	}
	if err := router.Shutdown(*grace); err != nil {
		fatal(err)
	}
}

// parseShards turns "a=host:port,host:port" into a topology; bare
// addresses are named after their position.
func parseShards(s string) (highrpm.FleetTopology, error) {
	var top highrpm.FleetTopology
	if strings.TrimSpace(s) == "" {
		return top, fmt.Errorf("-shards is required")
	}
	for i, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			return top, fmt.Errorf("empty -shards entry at position %d", i)
		}
		name, addr := fmt.Sprintf("shard-%d", i), entry
		if eq := strings.IndexByte(entry, '='); eq >= 0 {
			name, addr = entry[:eq], entry[eq+1:]
			if name == "" {
				return top, fmt.Errorf("empty shard name in %q", entry)
			}
		}
		if addr == "" {
			return top, fmt.Errorf("empty shard address in %q", entry)
		}
		top.Shards = append(top.Shards, highrpm.FleetShard{Name: name, Addr: addr})
	}
	return top, nil
}

func summary(st highrpm.FleetStats) string {
	up := 0
	for _, sh := range st.Shards {
		if sh.Up {
			up++
		}
	}
	return fmt.Sprintf("%d/%d shards up, %d nodes, %d routed, %d replicated, %d failovers, %d scatter-gathers",
		up, len(st.Shards), st.Nodes, st.Routed, st.Replicated, st.FailedOver, st.ScatterGathers)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "highrpm-fleet: %v\n", err)
	os.Exit(1)
}
