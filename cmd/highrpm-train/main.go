// Command highrpm-train trains a HighRPM model on simulated benchmark
// traces and persists it as JSON for highrpm-monitor and the examples.
//
// Usage:
//
//	highrpm-train [-out model.json] [-samples 500] [-platform arm|x86]
//	              [-miss 10] [-suites SPEC,PARSEC,...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"highrpm"
)

func main() {
	var (
		out      = flag.String("out", "highrpm-model.json", "output model path")
		samples  = flag.Int("samples", 500, "samples per training suite")
		plat     = flag.String("platform", "arm", "platform model: arm or x86")
		miss     = flag.Int("miss", 10, "miss_interval in seconds")
		suites   = flag.String("suites", "", "comma-separated training suites (default: all seven)")
		seed     = flag.Int64("seed", 1, "simulation and model seed")
		noActive = flag.Bool("no-active-learning", false, "skip the active learning stage")
		workers  = flag.Int("workers", 0, "training goroutines per model (0 = all CPUs, 1 = bit-exact serial)")
	)
	flag.Parse()

	gen := highrpm.DefaultGenerateConfig()
	gen.SamplesPerSuite = *samples
	gen.Seed = *seed
	switch *plat {
	case "arm":
		gen.Platform = highrpm.ARMPlatform()
	case "x86":
		gen.Platform = highrpm.X86Platform()
	default:
		fmt.Fprintf(os.Stderr, "highrpm-train: unknown platform %q\n", *plat)
		os.Exit(2)
	}

	names := highrpm.SuiteNames()
	if *suites != "" {
		names = strings.Split(*suites, ",")
	}
	train := &highrpm.Set{}
	for _, s := range names {
		set, err := highrpm.GenerateSuite(gen, strings.TrimSpace(s))
		if err != nil {
			fmt.Fprintf(os.Stderr, "highrpm-train: %v\n", err)
			os.Exit(1)
		}
		train.Append(set)
		fmt.Printf("collected %4d samples from %s\n", set.Len(), s)
	}

	opts := highrpm.DefaultOptions()
	opts.SetMissInterval(*miss)
	opts.SetWorkers(*workers)
	opts.ActiveLearning = !*noActive
	opts.Seed = *seed

	start := time.Now()
	m, err := highrpm.Train(train, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "highrpm-train: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("trained on %d samples in %v (initial %v, active %v)\n",
		train.Len(), time.Since(start).Round(time.Millisecond),
		m.TrainStats.InitialDuration.Round(time.Millisecond),
		m.TrainStats.ActiveDuration.Round(time.Millisecond))

	if err := highrpm.SaveModel(*out, m); err != nil {
		fmt.Fprintf(os.Stderr, "highrpm-train: %v\n", err)
		os.Exit(1)
	}
	fi, _ := os.Stat(*out)
	fmt.Printf("wrote %s (%d bytes)\n", *out, fi.Size())
}
