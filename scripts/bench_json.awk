# bench_json.awk — convert `go test -bench` output on stdin into the
# BENCH_*.json schema used by verify.sh:
#   {"benchmarks": [{"name", "ns_per_op", "bytes_per_op", "allocs_per_op"}]}
# Missing metrics (e.g. -benchmem omitted) are emitted as null.
BEGIN { print "{"; print "  \"benchmarks\": ["; first = 1 }
/^Benchmark/ {
    name = $1
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (!first) printf ",\n"
    first = 0
    printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, ns == "" ? "null" : ns, bytes == "" ? "null" : bytes, allocs == "" ? "null" : allocs
}
END { print "\n  ]"; print "}" }
