#!/usr/bin/env sh
# Repo verification: run before every PR.
#
# Tier-1 (the ROADMAP gate) is `go build ./... && go test ./...`; on top of
# that this script gates formatting (gofmt), vets the tree with both
# `go vet` and the project-specific highrpm-vet analyzers (determinism,
# maporder, floateq, leakcheck, errdrop, layering — see internal/lint),
# and race-checks the concurrent subsystems (the tsdb ingest/query/WAL
# paths including the persisttest crash-injection harness, the cluster
# service + fault-injection harness, the fleet router's replicated
# forwarding and scatter-gather, the obs metric registry and HTTP
# exposition server, the parallel training engine in
# neural/tree/experiments, and the attribution ledger) so
# locking regressions surface immediately. It then fuzzes the
# wire-protocol decoders briefly (JSON envelope, binary framing, and the
# cross-codec agreement law), the durability decoders (WAL segment
# scanner, snapshot loader), and the fleet placement ring, and finishes
# with one pass over the PR 3 training benchmarks (BENCH_pr3.json), the
# PR 4 cluster benchmarks (BENCH_pr4.json), the PR 8 serving hot-path
# benchmarks (BENCH_pr8.json), the PR 9 durability benchmarks
# (BENCH_pr9.json), and the PR 10 fleet routing benchmarks
# (BENCH_pr10.json), all emitted through scripts/bench_json.awk.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files are not formatted:" >&2
    echo "$unformatted" >&2
    exit 1
fi
echo "== go build"
go build ./...
echo "== go vet"
go vet ./...
echo "== highrpm-vet (project static analysis)"
go run ./cmd/highrpm-vet ./...
echo "== go test"
go test ./...
echo "== go test -race (tsdb incl. persisttest, cluster incl. faultnet, fleet, obs)"
go test -race ./internal/tsdb/... ./internal/cluster/... ./internal/fleet/... ./internal/obs
echo "== go test -race (parallel training: neural, tree, experiments; attribution)"
go test -race ./internal/neural ./internal/tree ./internal/experiments/... ./internal/attribution
echo "== fuzz wire protocol (10s per target)"
go test -run '^$' -fuzz '^FuzzReadEnvelope$' -fuzztime=10s ./internal/cluster
go test -run '^$' -fuzz '^FuzzEnvelopeRoundTrip$' -fuzztime=10s ./internal/cluster
go test -run '^$' -fuzz '^FuzzBinaryEnvelopeRoundTrip$' -fuzztime=10s ./internal/cluster
go test -run '^$' -fuzz '^FuzzCrossCodecSample$' -fuzztime=10s ./internal/cluster
echo "== fuzz durability decoders (10s per target)"
go test -run '^$' -fuzz '^FuzzWALRecord$' -fuzztime=10s ./internal/tsdb
go test -run '^$' -fuzz '^FuzzSnapshotFile$' -fuzztime=10s ./internal/tsdb
echo "== fuzz fleet placement ring (10s)"
go test -run '^$' -fuzz '^FuzzRingPlacement$' -fuzztime=10s ./internal/fleet
echo "== training benchmarks (1 iteration each)"
bench_out="$(go test -run '^$' -bench 'BenchmarkLSTMFit|BenchmarkFineTuneLatency' -benchtime=1x -benchmem ./internal/neural)"
echo "$bench_out"
tree_out="$(go test -run '^$' -bench 'BenchmarkTreeFit' -benchtime=1x -benchmem ./internal/tree)"
echo "$tree_out"
printf '%s\n%s\n' "$bench_out" "$tree_out" | awk -f scripts/bench_json.awk > BENCH_pr3.json
echo "wrote BENCH_pr3.json"
echo "== cluster benchmarks"
cluster_out="$(go test -run '^$' -bench 'BenchmarkAgentSendLoopback$|BenchmarkServiceHandle$' -benchtime=1s -benchmem ./internal/cluster)"
echo "$cluster_out"
printf '%s\n' "$cluster_out" | awk -f scripts/bench_json.awk > BENCH_pr4.json
echo "wrote BENCH_pr4.json"
echo "== serving hot-path benchmarks (binary codec, batching, block cache)"
hot_out="$(go test -run '^$' -bench 'BenchmarkServiceHandleBinary$|BenchmarkRecordBatch$' -benchtime=1s -benchmem ./internal/cluster)"
echo "$hot_out"
cache_out="$(go test -run '^$' -bench 'BenchmarkQueryCached' -benchtime=1s -benchmem ./internal/tsdb)"
echo "$cache_out"
printf '%s\n%s\n' "$hot_out" "$cache_out" | awk -f scripts/bench_json.awk > BENCH_pr8.json
echo "wrote BENCH_pr8.json"
echo "== durability benchmarks (WAL append, recovery, durable ingest)"
wal_out="$(go test -run '^$' -bench 'BenchmarkWALAppend$|BenchmarkRecover$' -benchtime=1s -benchmem ./internal/tsdb)"
echo "$wal_out"
ingest_out="$(go test -run '^$' -bench 'BenchmarkStoreIngest$|BenchmarkStoreIngestWAL$' -benchtime=100000x -benchmem .)"
echo "$ingest_out"
printf '%s\n%s\n' "$wal_out" "$ingest_out" | awk -f scripts/bench_json.awk > BENCH_pr9.json
echo "wrote BENCH_pr9.json"
echo "== fleet routing benchmarks (sharded ingest scaling, scatter-gather)"
fleet_out="$(go test -run '^$' -bench 'BenchmarkRouterIngest|BenchmarkScatterQuery' -benchtime=1s -benchmem ./internal/fleet)"
echo "$fleet_out"
printf '%s\n' "$fleet_out" | awk -f scripts/bench_json.awk > BENCH_pr10.json
echo "wrote BENCH_pr10.json"
echo "verify: OK"
