#!/usr/bin/env sh
# Repo verification: run before every PR.
#
# Tier-1 (the ROADMAP gate) is `go build ./... && go test ./...`; on top of
# that this script vets the tree and race-checks the concurrent subsystems
# (the tsdb ingest/query paths, the cluster service + fault-injection
# harness, and the parallel training engine in neural/tree/experiments) so
# locking regressions surface immediately. It then fuzzes the wire-protocol
# decoders briefly, and finishes with one pass over the PR 3 training
# benchmarks (BENCH_pr3.json) and the PR 4 cluster benchmarks
# (BENCH_pr4.json).
set -eu
cd "$(dirname "$0")/.."

echo "== go build"
go build ./...
echo "== go vet"
go vet ./...
echo "== go test"
go test ./...
echo "== go test -race (tsdb, cluster incl. faultnet)"
go test -race ./internal/tsdb ./internal/cluster/...
echo "== go test -race (parallel training: neural, tree, experiments)"
go test -race ./internal/neural ./internal/tree ./internal/experiments
echo "== fuzz wire protocol (10s per target)"
go test -run '^$' -fuzz '^FuzzReadEnvelope$' -fuzztime=10s ./internal/cluster
go test -run '^$' -fuzz '^FuzzEnvelopeRoundTrip$' -fuzztime=10s ./internal/cluster
echo "== training benchmarks (1 iteration each)"
bench_out="$(go test -run '^$' -bench 'BenchmarkLSTMFit|BenchmarkFineTuneLatency' -benchtime=1x -benchmem ./internal/neural)"
echo "$bench_out"
tree_out="$(go test -run '^$' -bench 'BenchmarkTreeFit' -benchtime=1x -benchmem ./internal/tree)"
echo "$tree_out"
printf '%s\n%s\n' "$bench_out" "$tree_out" | awk '
BEGIN { print "{"; print "  \"benchmarks\": [" ; first = 1 }
/^Benchmark/ {
    name = $1
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (!first) printf ",\n"
    first = 0
    printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, ns == "" ? "null" : ns, bytes == "" ? "null" : bytes, allocs == "" ? "null" : allocs
}
END { print "\n  ]"; print "}" }
' > BENCH_pr3.json
echo "wrote BENCH_pr3.json"
echo "== cluster benchmarks"
cluster_out="$(go test -run '^$' -bench 'BenchmarkAgentSendLoopback|BenchmarkServiceHandle' -benchtime=1s -benchmem ./internal/cluster)"
echo "$cluster_out"
printf '%s\n' "$cluster_out" | awk '
BEGIN { print "{"; print "  \"benchmarks\": [" ; first = 1 }
/^Benchmark/ {
    name = $1
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (!first) printf ",\n"
    first = 0
    printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, ns == "" ? "null" : ns, bytes == "" ? "null" : bytes, allocs == "" ? "null" : allocs
}
END { print "\n  ]"; print "}" }
' > BENCH_pr4.json
echo "wrote BENCH_pr4.json"
echo "verify: OK"
