#!/usr/bin/env sh
# Repo verification: run before every PR.
#
# Tier-1 (the ROADMAP gate) is `go build ./... && go test ./...`; on top of
# that this script vets the tree and race-checks the concurrent subsystems
# (the tsdb ingest/query paths and the cluster service) so locking
# regressions surface immediately.
set -eu
cd "$(dirname "$0")/.."

echo "== go build"
go build ./...
echo "== go vet"
go vet ./...
echo "== go test"
go test ./...
echo "== go test -race (tsdb, cluster)"
go test -race ./internal/tsdb ./internal/cluster
echo "verify: OK"
