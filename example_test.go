package highrpm_test

import (
	"fmt"

	"highrpm"
)

// ExampleEvaluate scores a restored power series against ground truth with
// the paper's metrics (§5.5).
func ExampleEvaluate() {
	observed := []float64{100, 100, 100, 100}
	predicted := []float64{110, 90, 100, 100}
	m := highrpm.Evaluate(observed, predicted)
	fmt.Printf("MAPE=%.0f%% RMSE=%.2f MAE=%.0f\n", m.MAPE, m.RMSE, m.MAE)
	// Output: MAPE=5% RMSE=7.07 MAE=5
}

// ExampleAttributePower splits component power between two co-located jobs
// by their counter shares.
func ExampleAttributePower() {
	jobs := []highrpm.JobActivity{
		{JobID: "compute", Cycles: 9e10, MemAccesses: 1e8, CoreShare: 0.5},
		{JobID: "memory", Cycles: 1e10, MemAccesses: 9e8, CoreShare: 0.5},
	}
	cfg := highrpm.AttributionConfig{CPUIdleW: 10, MEMIdleW: 6}
	powers, err := highrpm.AttributePower(60, 26, jobs, cfg)
	if err != nil {
		panic(err)
	}
	for _, p := range powers {
		fmt.Printf("%s: cpu %.0f W, mem %.0f W\n", p.JobID, p.CPUW, p.MEMW)
	}
	// Output:
	// compute: cpu 50 W, mem 5 W
	// memory: cpu 10 W, mem 21 W
}

// ExampleFindBenchmark looks up one of the 96 evaluation workloads.
func ExampleFindBenchmark() {
	b, err := highrpm.FindBenchmark("HPCC/STREAM")
	if err != nil {
		panic(err)
	}
	fmt.Println(b.Suite, b.Name)
	// Output: HPCC STREAM
}

// ExampleNewNode runs a workload on the simulated ARM platform and reads
// the sparse IPMI sensor — the raw material HighRPM restores.
func ExampleNewNode() {
	node, err := highrpm.NewNode(highrpm.ARMPlatform(), 42)
	if err != nil {
		panic(err)
	}
	bench, err := highrpm.FindBenchmark("HPCC/FFT")
	if err != nil {
		panic(err)
	}
	trace := node.RunFor(bench, 30, 1)
	sensor := highrpm.NewIPMISensor(10, 7)
	readings := sensor.Readings(trace)
	fmt.Printf("%d samples, %d IPMI readings\n", len(trace.Samples), len(readings))
	// Output: 30 samples, 3 IPMI readings
}
