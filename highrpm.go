// Package highrpm is the public API of the HighRPM reproduction — a
// high-resolution power monitoring framework that combines coarse
// integrated measurement (BMC/IPMI node power at ≤ 0.1 Sa/s) with software
// power modeling to restore temporal resolution (1 Sa/s node power) and
// spatial resolution (per-component CPU and memory power).
//
// The package re-exports the curated surface of the internal packages:
//
//   - Training and restoration: Train, Options, Model, the TRR models
//     (StaticTRR, DynamicTRR) and the SRR spatial model.
//   - Streaming monitoring: Monitor (one node) and the cluster service /
//     agent pair (many nodes over TCP).
//   - The simulated evaluation platforms: ARMPlatform, X86Platform, the 96
//     benchmark workloads, sensors (IPMI, DirectProbe, RAPL) and the
//     power-capping governor.
//   - Dataset construction: suite generation, Table 3 train/test splits,
//     and DynamicTRR window building.
//   - Metrics: MAPE/RMSE/MAE/R² evaluation.
//   - Observability: a stdlib-only metric registry and HTTP server
//     (Prometheus /metrics, JSON series endpoints, health probes) plus
//     self-metering of the monitor's own overhead.
//
// See examples/quickstart for a five-minute tour and DESIGN.md for the
// paper-to-module map.
package highrpm

import (
	"highrpm/internal/attribution"
	"highrpm/internal/cluster"
	"highrpm/internal/core"
	"highrpm/internal/dataset"
	"highrpm/internal/fleet"
	"highrpm/internal/governor"
	"highrpm/internal/gpuext"
	"highrpm/internal/obs"
	"highrpm/internal/platform"
	"highrpm/internal/stats"
	"highrpm/internal/tsdb"
	"highrpm/internal/workload"
)

// Core framework types.
type (
	// Model is a trained HighRPM instance: StaticTRR + DynamicTRR + SRR.
	Model = core.HighRPM
	// Options configures training (miss interval, network sizes, active
	// learning).
	Options = core.Options
	// StaticTRR is the offline temporal-restoration model (spline + PMC
	// residual tree + Algorithm 1).
	StaticTRR = core.StaticTRR
	// DynamicTRR is the online temporal-restoration model (windowed LSTM
	// with per-measurement fine-tuning).
	DynamicTRR = core.DynamicTRR
	// SRR is the spatial-restoration model (shallow MLP over PMCs +
	// node power).
	SRR = core.SRR
	// Monitor is the streaming per-node form of a trained Model.
	Monitor = core.Monitor
	// MonitorEstimate is one second's restored power from a Monitor.
	MonitorEstimate = core.MonitorEstimate
	// RestoreMode selects StaticTRR or DynamicTRR restoration.
	RestoreMode = core.RestoreMode
	// Report bundles node/CPU/memory accuracy metrics.
	Report = core.Report
)

// Restoration modes.
const (
	// ModeStatic restores with StaticTRR (offline log analysis).
	ModeStatic = core.ModeStatic
	// ModeDynamic restores with DynamicTRR (online monitoring).
	ModeDynamic = core.ModeDynamic
)

// Train fits a HighRPM model on labeled initial samples (§4.1 initial
// learning stage, plus active learning when enabled in opts).
func Train(initial *Set, opts Options) (*Model, error) { return core.Train(initial, opts) }

// DefaultOptions returns the paper's evaluation configuration.
func DefaultOptions() Options { return core.DefaultOptions() }

// NewMonitor wraps a trained model for streaming use.
func NewMonitor(m *Model) *Monitor { return core.NewMonitor(m) }

// SaveModel writes a trained model to path as JSON.
func SaveModel(path string, m *Model) error { return core.Save(path, m) }

// LoadModel reads a trained model from path.
func LoadModel(path string) (*Model, error) { return core.Load(path) }

// Dataset types.
type (
	// Set is an ordered collection of (PMC, power) samples.
	Set = dataset.Set
	// Sample is one 1 Sa/s observation.
	Sample = dataset.Sample
	// GenerateConfig controls evaluation-trace collection.
	GenerateConfig = dataset.GenerateConfig
	// Combo is one Table 3 train/test combination.
	Combo = dataset.Combo
	// Split is a materialised train/test pair.
	Split = dataset.Split
)

// GenerateSuite simulates a benchmark suite into 1 Sa/s samples.
func GenerateSuite(cfg GenerateConfig, suite string) (*Set, error) {
	return dataset.GenerateSuite(cfg, suite)
}

// BuildSplit materialises one Table 3 combination (seen or unseen).
func BuildSplit(cfg GenerateConfig, combo Combo, seen bool) (*Split, error) {
	return dataset.BuildSplit(cfg, combo, seen)
}

// Combos returns the seven Table 3 combinations.
func Combos() []Combo { return dataset.Combos() }

// DefaultGenerateConfig mirrors the paper's §5.3 collection settings.
func DefaultGenerateConfig() GenerateConfig { return dataset.DefaultGenerateConfig() }

// Platform types.
type (
	// PlatformConfig describes a simulated node.
	PlatformConfig = platform.Config
	// Node is a running node simulation.
	Node = platform.Node
	// Trace is a completed simulation run.
	Trace = platform.Trace
	// IPMISensor models the sparse BMC/IPMI measurement path.
	IPMISensor = platform.IPMISensor
	// DirectProbe models the 1 Sa/s bench measurement rig.
	DirectProbe = platform.DirectProbe
	// RAPL models the x86 energy-counter interface.
	RAPL = platform.RAPL
	// Reading is one sensor observation.
	Reading = platform.Reading
	// CappingConfig drives the power-capping governor.
	CappingConfig = platform.CappingConfig
	// CappingResult summarises a capped run.
	CappingResult = platform.CappingResult
)

// ARMPlatform returns the paper's ARM evaluation node model.
func ARMPlatform() PlatformConfig { return platform.ARMConfig() }

// X86Platform returns the §6.3 x86/RAPL node model.
func X86Platform() PlatformConfig { return platform.X86Config() }

// NewNode creates a simulated node.
func NewNode(cfg PlatformConfig, seed int64) (*Node, error) { return platform.NewNode(cfg, seed) }

// NewIPMISensor returns the default sparse node-power sensor.
func NewIPMISensor(intervalSeconds float64, seed int64) *IPMISensor {
	return platform.NewIPMISensor(intervalSeconds, seed)
}

// NewDirectProbe returns the 0.1 W ground-truth probe.
func NewDirectProbe(seed int64) *DirectProbe { return platform.NewDirectProbe(seed) }

// RunCapped executes a benchmark under a power cap.
func RunCapped(n *Node, b Benchmark, cfg CappingConfig) (*CappingResult, error) {
	return platform.RunCapped(n, b, cfg)
}

// FromTrace converts a simulation trace into dataset samples.
func FromTrace(tr *Trace, suite, bench string) *Set { return dataset.FromTrace(tr, suite, bench) }

// Workload types.
type (
	// Benchmark is a named phase-programmed workload.
	Benchmark = workload.Benchmark
	// Phase is one execution phase of a benchmark.
	Phase = workload.Phase
)

// Benchmarks returns the full 96-benchmark evaluation suite.
func Benchmarks() []Benchmark { return workload.Suite() }

// FindBenchmark looks a benchmark up by name (e.g. "HPCC/FFT").
func FindBenchmark(name string) (Benchmark, error) { return workload.Find(name) }

// SuiteNames returns the seven suite names of Table 3.
func SuiteNames() []string { return workload.SuiteNames() }

// Metrics types.
type (
	// Metrics bundles MAPE/RMSE/MAE/R².
	Metrics = stats.Metrics
)

// Evaluate scores predictions against observations.
func Evaluate(observed, predicted []float64) Metrics { return stats.Evaluate(observed, predicted) }

// Cluster types: the §4.1 control-node service deployment.
type (
	// Service is the control-node HighRPM service shared by compute nodes.
	Service = cluster.Service
	// ServiceOptions hardens a Service against slow, dead, or hostile
	// peers: per-connection read/write deadlines, a frame-size cap, and a
	// connection cap.
	ServiceOptions = cluster.ServiceOptions
	// Agent is a compute-node client of the service.
	Agent = cluster.Agent
	// ResilientAgent wraps Agent with reconnection, bounded retries, and
	// the §6.4.6 degraded-mode fallback to local inference.
	ResilientAgent = cluster.ResilientAgent
	// AgentOptions tunes a ResilientAgent's backoff, retry, and buffering
	// behaviour.
	AgentOptions = cluster.AgentOptions
	// AgentCounters reports a ResilientAgent's lifetime activity.
	AgentCounters = cluster.AgentCounters
	// AgentMode is a ResilientAgent's health state (connected or degraded).
	AgentMode = cluster.Mode
	// BatchOptions tunes agent-side sample coalescing (Agent.Record /
	// ResilientAgent.Record flush a KindRecordBatch once MaxSamples are
	// pending or the oldest has waited MaxDelay).
	BatchOptions = cluster.BatchOptions
	// Estimate is the service's restored power for one sample.
	Estimate = cluster.Estimate
	// QueryRequest asks the service for a window of stored power history.
	QueryRequest = cluster.QueryRequest
	// Series answers a QueryRequest with decoded points.
	Series = cluster.SeriesBody
	// SeriesPoint is one wire-encoded history point.
	SeriesPoint = cluster.SeriesPoint
)

// ResilientAgent modes.
const (
	// AgentConnected: the agent is talking to the service.
	AgentConnected = cluster.ModeConnected
	// AgentDegraded: the service is unreachable; estimates are computed
	// locally from the fetched model snapshot and samples are buffered for
	// replay.
	AgentDegraded = cluster.ModeDegraded
)

// Wire codecs an agent can ask for in its Hello offer.
const (
	// CodecJSON is the length-prefixed JSON framing (the original
	// protocol, and what every pre-binary peer speaks).
	CodecJSON = cluster.CodecJSON
	// CodecBinary is the length-prefixed binary framing negotiated in
	// Hello; services that predate it silently keep the connection on
	// JSON.
	CodecBinary = cluster.CodecBinary
)

// ErrFrameTooLarge reports a wire frame over the configured size cap.
var ErrFrameTooLarge = cluster.ErrFrameTooLarge

// NewService wraps a trained model as a network service with default
// robustness options.
func NewService(m *Model) *Service { return cluster.NewService(m) }

// NewServiceWith wraps a trained model as a network service with explicit
// robustness options.
func NewServiceWith(m *Model, opts ServiceOptions) *Service { return cluster.NewServiceWith(m, opts) }

// DefaultServiceOptions returns the deployment defaults for ServiceOptions.
func DefaultServiceOptions() ServiceOptions { return cluster.DefaultServiceOptions() }

// DialService connects a compute-node agent to the service, offering the
// binary codec and falling back to JSON against older services.
func DialService(addr, nodeID string) (*Agent, error) { return cluster.Dial(addr, nodeID) }

// DialServiceCodec connects with an explicit wire-codec preference:
// CodecBinary offers the binary framing in Hello (JSON fallback),
// CodecJSON pins the JSON protocol outright.
func DialServiceCodec(addr, nodeID, codec string) (*Agent, error) {
	return cluster.DialCodec(addr, nodeID, codec, 0)
}

// DialResilientService connects a fault-tolerant agent: it reconnects with
// jittered exponential backoff, retries failed sends, and after repeated
// failures serves estimates locally from the fetched model while buffering
// samples for replay.
func DialResilientService(addr, nodeID string, opts AgentOptions) (*ResilientAgent, error) {
	return cluster.DialResilient(addr, nodeID, opts)
}

// DefaultAgentOptions returns the deployment defaults for AgentOptions.
func DefaultAgentOptions() AgentOptions { return cluster.DefaultAgentOptions() }

// Time-series store: the embedded, Gorilla-compressed power-history
// substrate behind Service (queryable over TCP via Agent.Query and the
// highrpm-query CLI) and usable standalone for local recording.
type (
	// Store holds per-node power history: five channels per node at raw
	// 1 s resolution plus 10 s and 60 s min/mean/max rollups.
	Store = tsdb.Store
	// StoreOptions sizes a Store (block size, per-resolution retention).
	StoreOptions = tsdb.Options
	// StoreSample is one second of restored power for one node.
	StoreSample = tsdb.Sample
	// StorePoint is one decoded sample or rollup bucket.
	StorePoint = tsdb.Point
	// StoreStats summarises a Store's footprint and compression ratio.
	StoreStats = tsdb.Stats
	// StoreChannel names one stored series per node.
	StoreChannel = tsdb.Channel
	// StoreResolution is a query granularity in seconds (1, 10, 60).
	StoreResolution = tsdb.Resolution
)

// The five channels a Store records per node.
const (
	ChannelPNode      = tsdb.ChanPNode
	ChannelPCPU       = tsdb.ChanPCPU
	ChannelPMEM       = tsdb.ChanPMEM
	ChannelPNodePrime = tsdb.ChanPNodePrime
	ChannelIPMI       = tsdb.ChanIPMI
)

// The three stored resolutions.
const (
	ResolutionRaw = tsdb.Raw
	Resolution10s = tsdb.TenSeconds
	Resolution60s = tsdb.Minute
)

// NewStore creates an empty power-history store. Query it with
// Store.Query / Store.Aggregate.
func NewStore(opts StoreOptions) *Store { return tsdb.New(opts) }

// DefaultStoreOptions retains a day of raw samples, a week of 10 s buckets
// and a month of 60 s buckets per node channel.
func DefaultStoreOptions() StoreOptions { return tsdb.DefaultOptions() }

// StoreChannels lists the stored channels in ingest order.
func StoreChannels() []StoreChannel { return tsdb.Channels() }

// Durability: a Store opened with a data directory writes every ingest to
// a CRC-checked write-ahead log and periodically compacts the log into a
// full-state snapshot; OpenStore replays both on startup.
type (
	// FsyncPolicy selects when the WAL is fsynced (batch/always/never).
	FsyncPolicy = tsdb.FsyncPolicy
	// StoreRecovery reports what OpenStore restored from disk and any
	// corruption it tolerated along the way.
	StoreRecovery = tsdb.Recovery
)

// The three WAL fsync policies.
const (
	FsyncBatch  = tsdb.FsyncBatch
	FsyncAlways = tsdb.FsyncAlways
	FsyncNever  = tsdb.FsyncNever
)

// OpenStore opens (or creates) a durable store rooted at opts.Dir,
// replaying the newest valid snapshot plus the WAL tail. Data sealed by
// an fsync is never lost; with the default batch policy a crash loses at
// most one flush interval of samples.
func OpenStore(opts StoreOptions) (*Store, *StoreRecovery, error) { return tsdb.Open(opts) }

// ParseFsyncPolicy parses "batch", "always" or "never".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) { return tsdb.ParseFsyncPolicy(s) }

// NewDurableService wraps a trained model with a durable history store
// rooted at storeOpts.Dir; Shutdown drains the WAL so a graceful stop
// loses nothing.
func NewDurableService(m *Model, opts ServiceOptions, storeOpts StoreOptions) (*Service, *StoreRecovery, error) {
	return cluster.NewDurableService(m, opts, storeOpts)
}

// Observability types: the embeddable metric registry and HTTP exposition
// server (see examples/observability). A Service exports itself with
// Service.RegisterMetrics; ResilientAgent activity is published through
// AgentMetrics.Observe from the goroutine that owns the agent.
type (
	// MetricsRegistry holds counters, gauges and histograms and renders
	// them deterministically in the Prometheus text format.
	MetricsRegistry = obs.Registry
	// MetricsServer serves /metrics, /api/v1/query, /api/v1/series,
	// /healthz and /readyz (plus optional pprof) over net/http.
	MetricsServer = obs.Server
	// MetricsServerOptions configures the MetricsServer (pprof gate,
	// header read timeout).
	MetricsServerOptions = obs.ServerOptions
	// Health is a component's readiness answer, including the
	// ready-but-degraded posture.
	Health = obs.Health
	// SelfMeter prices the monitor's own overhead (per-tick wall time,
	// cumulative allocations) as highrpm_overhead_* series.
	SelfMeter = obs.SelfMeter
	// AgentMetrics exports ResilientAgent mode and counters as gauges.
	AgentMetrics = cluster.AgentMetrics
	// LatestEstimate is the newest restored power the service holds for
	// one node — what backs the highrpm_node_power_watts gauges.
	LatestEstimate = cluster.LatestEstimate
)

// NewMetricsRegistry returns an empty metric registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewMetricsServer wraps a registry in the observability HTTP server.
func NewMetricsServer(reg *MetricsRegistry, opts MetricsServerOptions) *MetricsServer {
	return obs.NewServer(reg, opts)
}

// DefaultMetricsServerOptions returns the deployment defaults.
func DefaultMetricsServerOptions() MetricsServerOptions { return obs.DefaultServerOptions() }

// NewAgentMetrics registers the highrpm_agent_* gauges on reg.
func NewAgentMetrics(reg *MetricsRegistry) *AgentMetrics { return cluster.NewAgentMetrics(reg) }

// Fleet types: the horizontal scale-out layer fronting N backend services
// (see examples/fleet). A FleetRouter speaks the same wire protocol as a
// Service, so existing agents dial it unchanged: writes are consistent-hash
// routed (optionally replicated) to backend shards, aggregate reads
// scatter-gather every shard and merge bit-identically to a single
// service's answer.
type (
	// FleetRouter is the sharding front-end.
	FleetRouter = fleet.Router
	// FleetTopology lists the backend shards.
	FleetTopology = fleet.Topology
	// FleetShard names one backend service.
	FleetShard = fleet.Shard
	// TopologyOptions tunes ring placement, replication and pooling.
	TopologyOptions = fleet.TopologyOptions
	// FleetStats is the router's own routing/replication accounting.
	FleetStats = fleet.Stats
	// FleetShardStatus is the router's live view of one shard.
	FleetShardStatus = fleet.ShardStatus
)

// NewRouter builds a fleet router over the given topology. Call Listen to
// serve the cluster wire protocol.
func NewRouter(top FleetTopology, opts TopologyOptions) (*FleetRouter, error) {
	return fleet.NewRouter(top, opts)
}

// DefaultTopologyOptions returns the deployment defaults (64 virtual
// nodes per shard, no replication).
func DefaultTopologyOptions() TopologyOptions { return fleet.DefaultTopologyOptions() }

// Attribution types: per-job energy accounting on shared nodes (see
// examples/accounting).
type (
	// JobActivity is one job's per-second counter aggregate.
	JobActivity = attribution.JobActivity
	// JobPower is one job's attributed power for a second.
	JobPower = attribution.JobPower
	// EnergyLedger accumulates per-job energy over time.
	EnergyLedger = attribution.Ledger
	// AttributionConfig sets the idle-power split.
	AttributionConfig = attribution.Config
)

// AttributePower splits one second's component power among jobs by counter
// share (dynamic) and core share (idle).
func AttributePower(pcpuW, pmemW float64, jobs []JobActivity, cfg AttributionConfig) ([]JobPower, error) {
	return attribution.Attribute(pcpuW, pmemW, jobs, cfg)
}

// NewEnergyLedger returns an empty per-job energy ledger.
func NewEnergyLedger() *EnergyLedger { return attribution.NewLedger() }

// DefaultAttributionConfig matches the simulated ARM node's idle power.
func DefaultAttributionConfig() AttributionConfig { return attribution.DefaultConfig() }

// Governor types: power-capping control stacks built on HighRPM estimates
// (the Fig. 1 motivation turned into an application; see examples/powercap).
type (
	// GovernorPolicy decides DVFS steps from power estimates.
	GovernorPolicy = governor.Policy
	// GovernorSource supplies the governor's per-second power estimate.
	GovernorSource = governor.Source
	// GovernorOutcome summarises a governed run.
	GovernorOutcome = governor.Outcome
	// HysteresisPolicy is the classic step governor with a hysteresis band.
	HysteresisPolicy = governor.Hysteresis
	// PIDPolicy is a cap-constrained PID controller.
	PIDPolicy = governor.PID
	// PredictivePolicy preempts cap crossings from the estimate's slope.
	PredictivePolicy = governor.Predictive
)

// NewModelSource feeds a governor HighRPM's per-second restored power.
func NewModelSource(m *Model) GovernorSource { return governor.NewModelSource(m) }

// RunGoverned executes a benchmark under a capping policy and source.
func RunGoverned(n *Node, b Benchmark, src GovernorSource, pol GovernorPolicy, cfg governor.Config) (GovernorOutcome, error) {
	return governor.Run(n, b, src, pol, cfg)
}

// GovernorConfig drives RunGoverned.
type GovernorConfig = governor.Config

// GPU extension types (§6.4.4): the HighRPM methodology retargeted at an
// accelerator with its own counters. See examples/gpu.
type (
	// GPUDeviceConfig describes a simulated GPU.
	GPUDeviceConfig = gpuext.DeviceConfig
	// GPUDevice is a running GPU simulation.
	GPUDevice = gpuext.Device
	// GPUKernel is a named GPU workload.
	GPUKernel = gpuext.Kernel
	// GPUTrace is a completed GPU run.
	GPUTrace = gpuext.Trace
	// GPUTRR restores the temporal resolution of sparse GPU power readings.
	GPUTRR = gpuext.TRR
)

// DefaultGPUDevice returns the reference accelerator model.
func DefaultGPUDevice() GPUDeviceConfig { return gpuext.DefaultDevice() }

// NewGPUDevice creates a GPU simulation.
func NewGPUDevice(cfg GPUDeviceConfig, seed int64) (*GPUDevice, error) {
	return gpuext.NewDevice(cfg, seed)
}

// GPUKernels returns the GPU workload suite.
func GPUKernels() []GPUKernel { return gpuext.Kernels() }

// FitGPUTRR trains the GPU restoration model on a labeled device trace.
func FitGPUTRR(train *GPUTrace, missInterval int) (*GPUTRR, error) {
	return gpuext.FitTRR(train, missInterval)
}
