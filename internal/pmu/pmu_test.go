package pmu

import "testing"

func TestEventNamesMatchTable2(t *testing.T) {
	names := EventNames()
	if len(names) != 10 {
		t.Fatalf("Table 2 defines 10 events, got %d", len(names))
	}
	want := map[string]bool{
		"CPU_CYCLES": true, "INST_RETIRED": true, "BR_PRED": true,
		"UOP_RETIRED": true, "L1I_CACHE_LD": true, "L1I_CACHE_ST": true,
		"LxD_CACHE_LD": true, "LxD_CACHE_ST": true,
		"BUS_ACCESS": true, "MEM_ACCESS": true,
	}
	for _, n := range names {
		if !want[n] {
			t.Fatalf("unexpected event %q", n)
		}
	}
}

func TestEventUnits(t *testing.T) {
	cases := map[Event]string{
		CPUCycles:   "Core",
		InstRetired: "Core",
		LxDCacheLD:  "Lx Cache",
		BusAccess:   "Main Memory",
		MemAccess:   "Main Memory",
	}
	for e, want := range cases {
		if got := e.Unit(); got != want {
			t.Fatalf("%s unit = %q want %q", e, got, want)
		}
	}
	if Event(99).Unit() != "Unknown" {
		t.Fatal("out-of-range unit")
	}
}

func TestEventStringOutOfRange(t *testing.T) {
	if Event(-1).String() == "" || Event(1000).String() == "" {
		t.Fatal("out-of-range String must not be empty")
	}
}

func TestCountersGetSetSlice(t *testing.T) {
	var c Counters
	c.Set(MemAccess, 42)
	if c.Get(MemAccess) != 42 {
		t.Fatal("Get/Set broken")
	}
	s := c.Slice()
	if s[int(MemAccess)] != 42 {
		t.Fatal("Slice content wrong")
	}
	s[int(MemAccess)] = 0
	if c.Get(MemAccess) != 42 {
		t.Fatal("Slice must copy")
	}
	if len(s) != NumEvents {
		t.Fatalf("Slice length %d want %d", len(s), NumEvents)
	}
}
