// Package pmu defines the hardware performance-counter events HighRPM uses
// as model features (paper Table 2) and the sampled-counter types shared by
// the platform simulator and the dataset layer.
//
// On the paper's ARM platform the events are collected by a loadable kernel
// module at 1 Sa/s and aggregated across per-core counters (§5.2); here the
// platform simulator produces the same aggregated per-second event rates.
package pmu

import "fmt"

// Event identifies one performance-counter event.
type Event int

// The ten PMC events of paper Table 2, in feature order.
const (
	CPUCycles   Event = iota // CPU_CYCLES: core clock cycles
	InstRetired              // INST_RETIRED: architecturally retired instructions
	BrPred                   // BR_PRED: predicted branch instructions
	UopRetired               // UOP_RETIRED: retired micro-operations
	L1ICacheLD               // L1I_CACHE_LD: L1 instruction-cache load accesses
	L1ICacheST               // L1I_CACHE_ST: L1 instruction-cache store accesses
	LxDCacheLD               // LxD_CACHE_LD: unified data-cache load accesses
	LxDCacheST               // LxD_CACHE_ST: unified data-cache store accesses
	BusAccess                // BUS_ACCESS: interconnect bus accesses
	MemAccess                // MEM_ACCESS: main-memory accesses
	numEvents
)

// NumEvents is the number of defined PMC events.
const NumEvents = int(numEvents)

var names = [...]string{
	"CPU_CYCLES", "INST_RETIRED", "BR_PRED", "UOP_RETIRED",
	"L1I_CACHE_LD", "L1I_CACHE_ST", "LxD_CACHE_LD", "LxD_CACHE_ST",
	"BUS_ACCESS", "MEM_ACCESS",
}

// String returns the canonical event mnemonic.
func (e Event) String() string {
	if e < 0 || int(e) >= NumEvents {
		return fmt.Sprintf("PMU_EVENT(%d)", int(e))
	}
	return names[e]
}

// Unit describes the hardware unit an event is attributed to (Table 2).
func (e Event) Unit() string {
	switch e {
	case CPUCycles, InstRetired, BrPred, UopRetired, L1ICacheLD, L1ICacheST:
		return "Core"
	case LxDCacheLD, LxDCacheST:
		return "Lx Cache"
	case BusAccess, MemAccess:
		return "Main Memory"
	default:
		return "Unknown"
	}
}

// EventNames returns the mnemonics in feature order.
func EventNames() []string {
	out := make([]string, NumEvents)
	for i := range out {
		out[i] = Event(i).String()
	}
	return out
}

// Counters holds one second's aggregated event rates (events per second,
// summed over cores).
type Counters [NumEvents]float64

// Get returns the value of event e.
func (c *Counters) Get(e Event) float64 { return c[e] }

// Set assigns the value of event e.
func (c *Counters) Set(e Event, v float64) { c[e] = v }

// Slice returns the counter values as a feature slice (a copy).
func (c *Counters) Slice() []float64 {
	out := make([]float64, NumEvents)
	copy(out, c[:])
	return out
}
