// Package gpuext implements the paper's §6.4.4 extension: applying the
// HighRPM methodology to a peripheral device with its own performance
// counters. It models a discrete GPU — kernel-phase workloads, four
// device counters, a power process with PMC-invisible wander — and restores
// the temporal resolution of sparse out-of-band GPU power readings with the
// same spline + residual-tree + Algorithm 1 recipe as StaticTRR.
//
// As §6.4.4 says, "the methodology for training and using the models would
// remain largely unchanged": this package reuses interp, tree and
// core-equivalent post-processing wholesale; only the counter model and
// the device simulator are new.
package gpuext

import (
	"fmt"
	"math"
	"math/rand"
)

// Counter identifies one GPU performance-counter event.
type Counter int

// The GPU event set (an NVML/CUPTI-style minimum).
const (
	SMActiveCycles Counter = iota // cycles with at least one resident warp
	WarpsExecuted                 // retired warps
	DRAMReadBytes                 // device-memory read traffic
	DRAMWriteBytes                // device-memory write traffic
	numCounters
)

// NumCounters is the number of GPU counter events.
const NumCounters = int(numCounters)

var counterNames = [...]string{"SM_ACTIVE_CYCLES", "WARPS_EXECUTED", "DRAM_READ_BYTES", "DRAM_WRITE_BYTES"}

// String returns the counter mnemonic.
func (c Counter) String() string {
	if c < 0 || int(c) >= NumCounters {
		return fmt.Sprintf("GPU_COUNTER(%d)", int(c))
	}
	return counterNames[c]
}

// CounterNames returns the mnemonics in feature order.
func CounterNames() []string {
	out := make([]string, NumCounters)
	for i := range out {
		out[i] = Counter(i).String()
	}
	return out
}

// DeviceConfig describes a simulated GPU.
type DeviceConfig struct {
	Name     string
	SMs      int     // streaming multiprocessors
	ClockGHz float64 // SM clock
	MemBWGBs float64 // peak device-memory bandwidth
	// Idle/SMDyn/MemDyn: P = Idle + SMDyn·occupancy + MemDyn·bwUtil + wander.
	Idle   float64
	SMDyn  float64
	MemDyn float64
	// CtrNoise is the multiplicative counter read-noise sigma.
	CtrNoise float64
	// Wander is the stationary sigma (W) of the PMC-invisible OU power
	// wander (board VRM + thermal effects).
	Wander float64
}

// DefaultDevice models a mid-range HPC accelerator.
func DefaultDevice() DeviceConfig {
	return DeviceConfig{
		Name: "gpu0", SMs: 60, ClockGHz: 1.4, MemBWGBs: 700,
		Idle: 35, SMDyn: 160, MemDyn: 55,
		CtrNoise: 0.10, Wander: 8,
	}
}

// KernelPhase is one phase of a GPU workload.
type KernelPhase struct {
	Duration   float64 // seconds
	Occupancy  float64 // mean SM occupancy in [0, 1]
	BWUtil     float64 // mean memory-bandwidth utilisation in [0, 1]
	LoopPeriod float64 // kernel-relaunch oscillation period (0 disables)
	LoopAmp    float64
}

// Kernel is a named phase program. PowerFactor scales SM dynamic power in
// a way the counters cannot see — instruction mix and datapath toggling —
// mirroring the per-benchmark power character of the CPU workloads; it is
// what defeats counter-only power models on unseen kernels.
type Kernel struct {
	Name        string
	Phases      []KernelPhase
	Repeat      int
	PowerFactor float64 // 0 means 1.0
}

// Kernels returns the GPU workload suite.
func Kernels() []Kernel {
	return []Kernel{
		{Name: "gemm", Repeat: 4, PowerFactor: 1.20, Phases: []KernelPhase{
			{Duration: 40, Occupancy: 0.92, BWUtil: 0.35, LoopPeriod: 8, LoopAmp: 0.04},
		}},
		{Name: "stencil", Repeat: 4, PowerFactor: 0.85, Phases: []KernelPhase{
			{Duration: 30, Occupancy: 0.65, BWUtil: 0.80, LoopPeriod: 6, LoopAmp: 0.08},
		}},
		{Name: "reduction", Repeat: 6, PowerFactor: 1.00, Phases: []KernelPhase{
			{Duration: 12, Occupancy: 0.85, BWUtil: 0.55, LoopPeriod: 3, LoopAmp: 0.10},
			{Duration: 4, Occupancy: 0.20, BWUtil: 0.10},
		}},
		{Name: "graph", Repeat: 5, PowerFactor: 0.70, Phases: []KernelPhase{
			{Duration: 20, Occupancy: 0.40, BWUtil: 0.70, LoopPeriod: 5, LoopAmp: 0.08},
			{Duration: 6, Occupancy: 0.75, BWUtil: 0.30},
		}},
	}
}

// Sample is one second of GPU ground truth.
type Sample struct {
	Time     float64
	Power    float64 // watts
	Counters [NumCounters]float64
}

// Trace is a completed device run at 1 Sa/s.
type Trace struct {
	Kernel  string
	Config  DeviceConfig
	Samples []Sample
}

// Power returns the ground-truth power series.
func (t *Trace) Power() []float64 {
	out := make([]float64, len(t.Samples))
	for i, s := range t.Samples {
		out[i] = s.Power
	}
	return out
}

// Times returns the sample timestamps.
func (t *Trace) Times() []float64 {
	out := make([]float64, len(t.Samples))
	for i, s := range t.Samples {
		out[i] = s.Time
	}
	return out
}

// Device simulates one GPU.
type Device struct {
	cfg DeviceConfig
	rng *rand.Rand
	ou  float64
}

// NewDevice creates a device simulation.
func NewDevice(cfg DeviceConfig, seed int64) (*Device, error) {
	if cfg.SMs <= 0 || cfg.SMDyn <= 0 {
		return nil, fmt.Errorf("gpuext: invalid device config %+v", cfg)
	}
	return &Device{cfg: cfg, rng: rand.New(rand.NewSource(seed))}, nil
}

// Run simulates the kernel for dur seconds at 1 Sa/s, looping as needed.
func (d *Device) Run(k Kernel, dur float64) *Trace {
	if k.Repeat < 1 {
		k.Repeat = 1
	}
	var single float64
	for _, p := range k.Phases {
		single += p.Duration
	}
	pf := k.PowerFactor
	if pf == 0 {
		pf = 1
	}
	tr := &Trace{Kernel: k.Name, Config: d.cfg}
	const wtau = 15.0
	for t := 0.0; t < dur; t++ {
		// Locate the phase at kernel-local time.
		tk := math.Mod(t, single)
		var acc float64
		ph := k.Phases[len(k.Phases)-1]
		tin := ph.Duration
		for _, p := range k.Phases {
			if tk < acc+p.Duration {
				ph = p
				tin = tk - acc
				break
			}
			acc += p.Duration
		}
		occ := ph.Occupancy
		bw := ph.BWUtil
		if ph.LoopPeriod > 0 {
			osc := math.Sin(2 * math.Pi * tin / ph.LoopPeriod)
			occ += ph.LoopAmp * osc
			bw += 0.5 * ph.LoopAmp * osc
		}
		occ = clamp01(occ + d.rng.NormFloat64()*0.02)
		bw = clamp01(bw + d.rng.NormFloat64()*0.02)

		d.ou += -d.ou/wtau + d.cfg.Wander*math.Sqrt(2/wtau)*d.rng.NormFloat64()
		power := d.cfg.Idle + d.cfg.SMDyn*occ*pf + d.cfg.MemDyn*bw + d.ou

		noisy := func(v float64) float64 {
			v *= 1 + d.rng.NormFloat64()*d.cfg.CtrNoise
			if v < 0 {
				return 0
			}
			return v
		}
		var s Sample
		s.Time = t
		s.Power = power
		cycles := float64(d.cfg.SMs) * d.cfg.ClockGHz * 1e9 * occ
		s.Counters[SMActiveCycles] = noisy(cycles)
		s.Counters[WarpsExecuted] = noisy(cycles * 0.8 / 32)
		s.Counters[DRAMReadBytes] = noisy(bw * d.cfg.MemBWGBs * 0.65e9)
		s.Counters[DRAMWriteBytes] = noisy(bw * d.cfg.MemBWGBs * 0.35e9)
		tr.Samples = append(tr.Samples, s)
	}
	return tr
}

// RunMix runs every kernel for perDur seconds back to back on the device,
// producing one contiguous training trace that covers the device's full
// power band — the GPU analogue of the multi-suite initial sample set.
func (d *Device) RunMix(kernels []Kernel, perDur float64) *Trace {
	out := &Trace{Kernel: "mix", Config: d.cfg}
	var offset float64
	for _, k := range kernels {
		tr := d.Run(k, perDur)
		for _, s := range tr.Samples {
			s.Time += offset
			out.Samples = append(out.Samples, s)
		}
		offset += perDur
	}
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
