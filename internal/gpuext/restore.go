package gpuext

import (
	"fmt"

	"highrpm/internal/core"
	"highrpm/internal/interp"
	"highrpm/internal/mat"
	"highrpm/internal/model"
	"highrpm/internal/stats"
	"highrpm/internal/tree"
)

// TRR is the GPU temporal-resolution-restoration model: the StaticTRR
// recipe (§4.2.1) retargeted at GPU counters per §6.4.4 — a spline over
// sparse out-of-band power readings, a decision-tree residual model, and
// Algorithm 1 post-processing. Unlike the paper-faithful CPU ResModel,
// the GPU residual tree also receives the spline”s own estimate as a
// feature: GPU kernels relaunch on few-second periods that alias the
// reading interval, and correcting an aliased spline requires knowing
// where the spline currently is (the same bi-directional idea as SRR).
type TRR struct {
	// MissInterval is the gap between power readings in samples.
	MissInterval int
	// Res is the counter-based residual model.
	Res model.Regressor
	// PUpper/PBottom bound plausible device power (from training data).
	PUpper, PBottom float64
	// Alpha/Beta are the Algorithm 1 thresholds.
	Alpha, Beta float64
}

// FitTRR trains the residual model on a labeled device trace.
func FitTRR(train *Trace, missInterval int) (*TRR, error) {
	if missInterval < 2 {
		missInterval = 10
	}
	n := len(train.Samples)
	if n < 3*missInterval {
		return nil, fmt.Errorf("gpuext: need at least %d samples, got %d", 3*missInterval, n)
	}
	times := train.Times()
	power := train.Power()
	var kx, ky []float64
	for i := 0; i < n; i += missInterval {
		kx = append(kx, times[i])
		ky = append(ky, power[i])
	}
	sp, err := interp.NewCubicSpline(kx, ky)
	if err != nil {
		return nil, fmt.Errorf("gpuext: spline: %w", err)
	}
	splined := sp.Sample(times)

	// Even-index half: every kernel of the training mix contributes to the
	// residual model's distribution.
	half := (n + 1) / 2
	x := mat.NewDense(half, NumCounters+1)
	resid := make([]float64, half)
	for k := 0; k < half; k++ {
		i := 2 * k
		row := x.Row(k)
		copy(row, train.Samples[i].Counters[:])
		row[NumCounters] = splined[i]
		resid[k] = power[i] - splined[i]
	}
	dt := tree.NewRegressor()
	dt.MaxDepth = 14
	dt.MinSamplesLeaf = 3
	res := &model.ScaledRegressor{Inner: dt}
	if err := res.Fit(x, resid); err != nil {
		return nil, fmt.Errorf("gpuext: residual fit: %w", err)
	}
	lo, hi := power[0], power[0]
	for _, p := range power {
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	return &TRR{
		MissInterval: missInterval,
		Res:          res,
		PBottom:      lo, PUpper: hi,
		Alpha: 0.05, Beta: 0.20,
	}, nil
}

// Restore estimates the 1 Sa/s GPU power of a trace from readings at every
// MissInterval-th sample.
func (t *TRR) Restore(tr *Trace) ([]float64, error) {
	n := len(tr.Samples)
	times := tr.Times()
	power := tr.Power()
	var kx, ky []float64
	var measured []int
	for i := 0; i < n; i += t.MissInterval {
		kx = append(kx, times[i])
		ky = append(ky, power[i])
		measured = append(measured, i)
	}
	sp, err := interp.NewCubicSpline(kx, ky)
	if err != nil {
		return nil, err
	}
	splined := sp.Sample(times)
	residual := make([]float64, n)
	feat := make([]float64, NumCounters+1)
	for i := 0; i < n; i++ {
		copy(feat, tr.Samples[i].Counters[:])
		feat[NumCounters] = splined[i]
		residual[i] = splined[i] + t.Res.Predict(feat)
	}
	out := core.PostProcess(splined, residual, core.PostProcessConfig{
		PUpper: t.PUpper, PBottom: t.PBottom,
		Alpha: t.Alpha, Beta: t.Beta, MissInterval: t.MissInterval,
	})
	for _, i := range measured {
		out[i] = power[i]
	}
	return out, nil
}

// Evaluate restores the trace and scores against ground truth.
func (t *TRR) Evaluate(tr *Trace) (stats.Metrics, error) {
	est, err := t.Restore(tr)
	if err != nil {
		return stats.Metrics{}, err
	}
	return stats.Evaluate(tr.Power(), est), nil
}
