package gpuext

import (
	"math"
	"testing"

	"highrpm/internal/linmodel"
	"highrpm/internal/mat"
	"highrpm/internal/model"
	"highrpm/internal/stats"
)

func device(t *testing.T, seed int64) *Device {
	t.Helper()
	d, err := NewDevice(DefaultDevice(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCounterNames(t *testing.T) {
	if len(CounterNames()) != 4 {
		t.Fatal("GPU extension defines 4 counters")
	}
	if Counter(-1).String() == "" {
		t.Fatal("out-of-range name empty")
	}
}

func TestDeviceValidation(t *testing.T) {
	if _, err := NewDevice(DeviceConfig{}, 1); err == nil {
		t.Fatal("expected config error")
	}
}

func TestKernelsExist(t *testing.T) {
	ks := Kernels()
	if len(ks) < 4 {
		t.Fatalf("only %d kernels", len(ks))
	}
	names := map[string]bool{}
	for _, k := range ks {
		if names[k.Name] {
			t.Fatalf("duplicate kernel %s", k.Name)
		}
		names[k.Name] = true
		if len(k.Phases) == 0 {
			t.Fatalf("%s has no phases", k.Name)
		}
	}
}

func TestTracePlausible(t *testing.T) {
	d := device(t, 1)
	tr := d.Run(Kernels()[0], 120)
	if len(tr.Samples) != 120 {
		t.Fatalf("%d samples", len(tr.Samples))
	}
	cfg := DefaultDevice()
	for i, s := range tr.Samples {
		if s.Power < 0 || s.Power > cfg.Idle+cfg.SMDyn+cfg.MemDyn+6*cfg.Wander {
			t.Fatalf("sample %d power %g implausible", i, s.Power)
		}
		for c := 0; c < NumCounters; c++ {
			if s.Counters[c] < 0 {
				t.Fatalf("negative counter at %d", i)
			}
		}
	}
}

func TestComputeVsMemoryKernelsDiffer(t *testing.T) {
	d1 := device(t, 2)
	gemm := d1.Run(Kernels()[0], 100) // compute-heavy
	d2 := device(t, 2)
	stencil := d2.Run(Kernels()[1], 100) // bandwidth-heavy
	var gemmBW, stencilBW float64
	for i := range gemm.Samples {
		gemmBW += gemm.Samples[i].Counters[DRAMReadBytes]
		stencilBW += stencil.Samples[i].Counters[DRAMReadBytes]
	}
	if stencilBW <= gemmBW {
		t.Fatal("stencil must move more device memory than gemm")
	}
}

func TestTRRRestoresGPUPower(t *testing.T) {
	d := device(t, 3)
	// Train on a mix covering the device's power band, test on one kernel.
	train := d.RunMix(Kernels()[:3], 150)
	trr, err := FitTRR(train, 10)
	if err != nil {
		t.Fatal(err)
	}
	dTest := device(t, 4)
	test := dTest.Run(Kernels()[3], 200)
	m, err := trr.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	// The graph kernel oscillates faster than the reading interval, the
	// hardest case for trend-based restoration; 20% bounds the absolute
	// error while the comparative assertion below carries the real claim.
	if m.MAPE > 20 {
		t.Fatalf("GPU TRR MAPE %.1f%% too high", m.MAPE)
	}

	// It must beat the counter-only linear model, as on the CPU side.
	x := mat.NewDense(len(train.Samples), NumCounters)
	y := train.Power()
	for i, s := range train.Samples {
		copy(x.Row(i), s.Counters[:])
	}
	lr := &model.ScaledRegressor{Inner: linmodel.NewLinear()}
	if err := lr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pred := make([]float64, len(test.Samples))
	for i, s := range test.Samples {
		pred[i] = lr.Predict(s.Counters[:])
	}
	lrM := stats.Evaluate(test.Power(), pred)
	if m.MAPE >= lrM.MAPE {
		t.Fatalf("GPU TRR %.2f%% must beat counter-only LR %.2f%%", m.MAPE, lrM.MAPE)
	}
}

func TestTRRMeasuredPointsExact(t *testing.T) {
	d := device(t, 5)
	train := d.Run(Kernels()[1], 250)
	trr, err := FitTRR(train, 10)
	if err != nil {
		t.Fatal(err)
	}
	test := device(t, 6).Run(Kernels()[3], 150)
	est, err := trr.Restore(test)
	if err != nil {
		t.Fatal(err)
	}
	power := test.Power()
	for i := 0; i < len(power); i += 10 {
		if est[i] != power[i] {
			t.Fatalf("measured point %d not exact", i)
		}
	}
	for i, v := range est {
		if math.IsNaN(v) {
			t.Fatalf("NaN at %d", i)
		}
	}
}

func TestFitTRRTooShort(t *testing.T) {
	d := device(t, 7)
	tr := d.Run(Kernels()[0], 15)
	if _, err := FitTRR(tr, 10); err == nil {
		t.Fatal("expected too-short error")
	}
}
