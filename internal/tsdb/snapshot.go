// Snapshot encoding for the durable store. A snapshot is a full, exact
// image of the store's in-memory state at one WAL sequence number: every
// block's compressed bytes plus the encoder state needed to keep appending
// to the open block (XOR predecessors, zero windows, delta-of-delta
// context, trailing free bits), and each rollup's open-bucket aggregator.
// Restoring a snapshot and replaying the WAL tail therefore reproduces the
// pre-crash store bit for bit: sealed blocks are copied verbatim and the
// replayed tail re-encodes through the same deterministic encoder.
//
// File layout (big-endian, like the WAL):
//
//	snap-<last covered seq, 16 hex digits>.snap
//	magic "HRPMSNP1"
//	body:
//	  u64 last covered WAL sequence
//	  u32 node count
//	  per node (sorted by ID):
//	    u16 ID length | ID bytes
//	    per channel (ingest order): series(raw), series+open(10s),
//	                                series+open(60s)
//	u32 CRC32 of the body
//
// One series is: u32 block count, then per block u32 n, i64 first/last/
// tDelta, per chain u64 XOR predecessor + u8 leading + u8 trailing, u8
// free bits, u32 byte length + the compressed bytes. A rollup's open
// bucket is u8 open, and when open i64 bucket start, i64 count, f64
// mean/m2/min/max (the exact Welford accumulator).
//
// Snapshots are written to a temp file, fsynced, renamed into place and
// the directory fsynced — a crash mid-write leaves only a temp file that
// recovery ignores. The trailing CRC covers the whole body, so a torn or
// bit-flipped snapshot is rejected as a unit and recovery falls back to
// the previous snapshot (the rotation policy always keeps two).
package tsdb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"highrpm/internal/stats"
)

const snapMagic = "HRPMSNP1"

// snapNode is one node's decoded snapshot state.
type snapNode struct {
	name  string
	chans [NumChannels]*channelSeries
}

// snapshotState is a decoded snapshot: the last WAL sequence it covers and
// every node's series, ready to install into a store.
type snapshotState struct {
	lastSeq uint64
	nodes   []snapNode
}

// --- encoding ---------------------------------------------------------------

func appendU16(b []byte, v uint16) []byte { return append(b, byte(v>>8), byte(v)) }

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(b []byte, v uint64) []byte {
	var s [8]byte
	binary.BigEndian.PutUint64(s[:], v)
	return append(b, s[:]...)
}

func appendI64(b []byte, v int64) []byte     { return appendU64(b, uint64(v)) }
func appendF64(b []byte, v float64) []byte   { return appendU64(b, math.Float64bits(v)) }
func appendBytes(b []byte, p []byte) []byte  { return append(appendU32(b, uint32(len(p))), p...) }
func appendString(b []byte, s string) []byte { return append(appendU16(b, uint16(len(s))), s...) }

// appendSeries serialises one series' blocks including the encoder state of
// the open block (sealed blocks carry theirs too — it is dead weight for
// them but keeps the format uniform).
func appendSeries(b []byte, s *series) []byte {
	b = appendU32(b, uint32(len(s.blocks)))
	for _, blk := range s.blocks {
		b = appendU32(b, uint32(blk.n))
		b = appendI64(b, blk.first)
		b = appendI64(b, blk.last)
		b = appendI64(b, blk.tDelta)
		for i := 0; i < blk.k; i++ {
			b = appendU64(b, blk.val[i])
			b = append(b, blk.leading[i], blk.trailing[i])
		}
		b = append(b, blk.bs.free)
		b = appendBytes(b, blk.bs.b)
	}
	return b
}

// appendRollupOpen serialises the open-bucket aggregator.
func appendRollupOpen(b []byte, r *rollup) []byte {
	if !r.open {
		return append(b, 0)
	}
	b = append(b, 1)
	b = appendI64(b, r.start)
	b = appendI64(b, int64(r.agg.N()))
	b = appendF64(b, r.agg.Mean())
	b = appendF64(b, r.agg.M2())
	b = appendF64(b, r.agg.Min())
	b = appendF64(b, r.agg.Max())
	return b
}

// snapshotBody serialises the store's full state. The caller holds every
// shard lock (see Store.Snapshot), so the walk sees one consistent cut.
// Node order is sorted, making the snapshot bytes deterministic for a
// given store state.
func snapshotBody(lastSeq uint64, nodes []string, shards []*shard) []byte {
	b := make([]byte, 0, 1<<16)
	b = appendU64(b, lastSeq)
	b = appendU32(b, uint32(len(nodes)))
	for i, name := range nodes {
		b = appendString(b, name)
		for _, cs := range shards[i].chans {
			b = appendSeries(b, cs.raw)
			b = appendSeries(b, cs.r10.ser)
			b = appendRollupOpen(b, cs.r10)
			b = appendSeries(b, cs.r60.ser)
			b = appendRollupOpen(b, cs.r60)
		}
	}
	return b
}

// --- decoding ---------------------------------------------------------------

// snapReader is a bounds-checked cursor over snapshot bytes. The first
// failed read poisons it; every later read returns the zero value, and the
// caller checks err once at the end of a parse unit.
type snapReader struct {
	b   []byte
	off int
	err error
}

func (r *snapReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("tsdb: snapshot truncated reading %s at offset %d", what, r.off)
	}
}

func (r *snapReader) u8(what string) byte {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *snapReader) u16(what string) uint16 {
	if r.err != nil || r.off+2 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *snapReader) u32(what string) uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *snapReader) u64(what string) uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *snapReader) i64(what string) int64   { return int64(r.u64(what)) }
func (r *snapReader) f64(what string) float64 { return math.Float64frombits(r.u64(what)) }

func (r *snapReader) bytes(what string) []byte {
	n := int(r.u32(what))
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		r.fail(what)
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

func (r *snapReader) str(what string) string {
	n := int(r.u16(what))
	if r.err != nil || r.off+n > len(r.b) {
		r.fail(what)
		return ""
	}
	v := string(r.b[r.off : r.off+n])
	r.off += n
	return v
}

// readSeries parses and validates one series into s: every block must
// decode cleanly to exactly its claimed point count with matching first/
// last timestamps, so an installed snapshot can never poison queries.
func readSeries(r *snapReader, s *series, k int) error {
	blocks := int(r.u32("block count"))
	for bi := 0; bi < blocks && r.err == nil; bi++ {
		blk := newBlock(k)
		blk.n = int(r.u32("block points"))
		blk.first = r.i64("block first")
		blk.last = r.i64("block last")
		blk.tDelta = r.i64("block tDelta")
		for i := 0; i < k; i++ {
			blk.val[i] = r.u64("chain predecessor")
			blk.leading[i] = r.u8("chain leading")
			blk.trailing[i] = r.u8("chain trailing")
		}
		blk.bs.free = r.u8("block free bits")
		raw := r.bytes("block bytes")
		if r.err != nil {
			break
		}
		blk.bs.b = append([]byte(nil), raw...)
		if blk.n < 0 || blk.n > 8*len(blk.bs.b)+1 {
			return fmt.Errorf("tsdb: snapshot block claims %d points in %d bytes", blk.n, len(blk.bs.b))
		}
		var (
			count       int
			first, last int64
		)
		err := blk.decode(func(t int64, vals []float64) bool {
			if count == 0 {
				first = t
			}
			last = t
			count++
			return true
		})
		if err != nil {
			return fmt.Errorf("tsdb: snapshot block does not decode: %w", err)
		}
		if count != blk.n || (blk.n > 0 && (first != blk.first || last != blk.last)) {
			return fmt.Errorf("tsdb: snapshot block decodes to %d points [%d,%d], header says %d [%d,%d]",
				count, first, last, blk.n, blk.first, blk.last)
		}
		s.blocks = append(s.blocks, blk)
		s.points += blk.n
	}
	return r.err
}

// readRollupOpen parses the open-bucket aggregator into ru.
func readRollupOpen(r *snapReader, ru *rollup) error {
	open := r.u8("rollup open flag")
	if r.err != nil || open == 0 {
		return r.err
	}
	ru.open = true
	ru.start = r.i64("rollup bucket start")
	n := r.i64("rollup bucket count")
	mean := r.f64("rollup mean")
	m2 := r.f64("rollup m2")
	min := r.f64("rollup min")
	max := r.f64("rollup max")
	if r.err != nil {
		return r.err
	}
	if n < 0 || n > (1<<40) {
		return fmt.Errorf("tsdb: snapshot rollup bucket claims %d observations", n)
	}
	ru.agg = stats.RestoreRunning(int(n), mean, m2, min, max)
	return nil
}

// decodeSnapshot parses and validates a full snapshot file image: magic,
// CRC-checked body, and every block decode-verified. opts sizes the
// restored series exactly like New does.
func decodeSnapshot(data []byte, opts Options) (*snapshotState, error) {
	if len(data) < len(snapMagic)+4 {
		return nil, fmt.Errorf("tsdb: snapshot too short (%d bytes)", len(data))
	}
	if string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("tsdb: bad snapshot magic")
	}
	body := data[len(snapMagic) : len(data)-4]
	want := binary.BigEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != want {
		return nil, fmt.Errorf("tsdb: snapshot CRC mismatch")
	}
	r := &snapReader{b: body}
	st := &snapshotState{lastSeq: r.u64("last sequence")}
	nodeCount := int(r.u32("node count"))
	for ni := 0; ni < nodeCount && r.err == nil; ni++ {
		n := snapNode{name: r.str("node ID")}
		for ci := range n.chans {
			cs := newChannelSeries(opts, nil, nil)
			if err := readSeries(r, cs.raw, 1); err != nil {
				return nil, err
			}
			if err := readSeries(r, cs.r10.ser, rollupChains); err != nil {
				return nil, err
			}
			if err := readRollupOpen(r, cs.r10); err != nil {
				return nil, err
			}
			if err := readSeries(r, cs.r60.ser, rollupChains); err != nil {
				return nil, err
			}
			if err := readRollupOpen(r, cs.r60); err != nil {
				return nil, err
			}
			n.chans[ci] = cs
		}
		st.nodes = append(st.nodes, n)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("tsdb: snapshot has %d trailing bytes", len(body)-r.off)
	}
	for i := 1; i < len(st.nodes); i++ {
		if st.nodes[i].name <= st.nodes[i-1].name {
			return nil, fmt.Errorf("tsdb: snapshot nodes not sorted (%q after %q)", st.nodes[i].name, st.nodes[i-1].name)
		}
	}
	return st, nil
}

// --- files ------------------------------------------------------------------

// snapshotName renders the canonical snapshot filename for the last WAL
// sequence it covers.
func snapshotName(lastSeq uint64) string {
	return fmt.Sprintf("snap-%016x.snap", lastSeq)
}

// snapFile is one discovered snapshot file.
type snapFile struct {
	path    string
	lastSeq uint64
}

// listSnapshots finds the dir's snapshots sorted newest first. Temp files
// from interrupted writes (.tmp suffix) are ignored.
func listSnapshots(dir string) ([]snapFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var snaps []snapFile
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
			continue
		}
		hexpart := strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap")
		if len(hexpart) != 16 {
			continue
		}
		seq, perr := strconv.ParseUint(hexpart, 16, 64)
		if perr != nil {
			continue
		}
		snaps = append(snaps, snapFile{path: filepath.Join(dir, name), lastSeq: seq})
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].lastSeq > snaps[j].lastSeq })
	return snaps, nil
}

// writeSnapshotFile writes body atomically: temp file, fsync, rename,
// directory fsync. Only after the rename is the snapshot visible to
// recovery, so a crash mid-write is indistinguishable from no snapshot.
func writeSnapshotFile(dir string, lastSeq uint64, body []byte) (string, error) {
	path := filepath.Join(dir, snapshotName(lastSeq))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return "", fmt.Errorf("tsdb: snapshot temp: %w", err)
	}
	_, werr := f.Write([]byte(snapMagic))
	if werr == nil {
		_, werr = f.Write(body)
	}
	if werr == nil {
		var crc [4]byte
		binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(body))
		_, werr = f.Write(crc[:])
	}
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil && cerr != nil {
		werr = cerr
	}
	if werr != nil {
		_ = os.Remove(tmp)
		return "", fmt.Errorf("tsdb: snapshot write: %w", werr)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return "", fmt.Errorf("tsdb: snapshot rename: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return "", err
	}
	return path, nil
}

// syncDir fsyncs a directory so renames and removals in it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("tsdb: open dir for sync: %w", err)
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil && cerr != nil {
		serr = cerr
	}
	if serr != nil {
		return fmt.Errorf("tsdb: dir sync: %w", serr)
	}
	return nil
}
