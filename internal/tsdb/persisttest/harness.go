// Package persisttest is a crash-injection harness for the durable tsdb:
// it builds real data directories from recorded workloads, corrupts them
// the way crashes and bad disks do (torn tails at every byte offset, bit
// flips, partial snapshots), and gives tests the reference images to
// assert recovery against.
//
// The harness rests on one observation: with FsyncNever every WAL append
// is written through to the file before Ingest returns, so a directory
// built that way and then abandoned is byte-identical to the directory a
// process crash immediately after the last append would leave. Truncating
// the newest WAL segment at byte offset L therefore reproduces exactly
// the on-disk state of a crash mid-write at L — the same torn-tail matrix
// the PR 4 faultnet harness runs for the cluster layer, but against the
// filesystem instead of the wire.
//
// The correctness oracle is PrefixImages: the store's append path is
// deterministic, so the store recovered from any injected crash must
// render the exact image (every node, channel and resolution through the
// wire JSON encoding) of some prefix of the workload — and the harness
// can say which prefix, because frame sizes are computable from the ops.
package persisttest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"

	"highrpm/internal/tsdb"
)

// Op is one recorded Ingest call.
type Op struct {
	Node string
	T    float64
	S    tsdb.Sample
}

// Workload generates n seeded ingest ops across three nodes with
// realistic power levels and a sparse NaN-gapped IPMI channel. The same
// seed always yields the same ops.
func Workload(seed int64, n int) []Op {
	rng := rand.New(rand.NewSource(seed))
	nodes := []string{"node-a", "node-b", "node-c"}
	const base = 1.7e9
	ops := make([]Op, n)
	for i := range ops {
		s := tsdb.Sample{
			PNode:      80 + 40*rng.Float64(),
			PCPU:       30 + 20*rng.Float64(),
			PMEM:       8 + 4*rng.Float64(),
			PNodePrime: 80 + 40*rng.Float64(),
			IPMI:       math.NaN(),
		}
		if i%5 == 0 {
			s.IPMI = s.PNode + rng.Float64()
		}
		ops[i] = Op{Node: nodes[rng.Intn(len(nodes))], T: base + float64(i), S: s}
	}
	return ops
}

// Apply replays ops into st in order.
func Apply(st *tsdb.Store, ops []Op) error {
	for i, op := range ops {
		if err := st.Ingest(op.Node, op.T, op.S); err != nil {
			return fmt.Errorf("persisttest: op %d: %w", i, err)
		}
	}
	return nil
}

// Build creates a durable store in dir, applies ops with a manual
// snapshot after each 1-based count in snapAt, and closes it. Fsync is
// forced to FsyncNever (write-through) and automatic snapshots off, so
// when Build returns the directory holds every WAL byte — the exact state
// a crash after the last append would leave (closing drains nothing that
// was not already in the file).
func Build(dir string, opts tsdb.Options, ops []Op, snapAt ...int) error {
	opts.Dir = dir
	opts.Fsync = tsdb.FsyncNever
	opts.SnapshotEvery = -1
	st, _, err := tsdb.Open(opts)
	if err != nil {
		return err
	}
	marks := append([]int(nil), snapAt...)
	sort.Ints(marks)
	next := 0
	for i, op := range ops {
		if err := st.Ingest(op.Node, op.T, op.S); err != nil {
			return fmt.Errorf("persisttest: op %d: %w", i, err)
		}
		for next < len(marks) && marks[next] == i+1 {
			if err := st.Snapshot(); err != nil {
				return fmt.Errorf("persisttest: snapshot after op %d: %w", i+1, err)
			}
			next++
		}
	}
	return st.Close()
}

// Image renders every series the store serves — each node and the
// aggregate, every channel, every resolution — through the wire JSON
// encoding. Two stores with equal images answer every query identically,
// byte for byte.
func Image(st *tsdb.Store) ([]byte, error) {
	var buf bytes.Buffer
	targets := append([]string{""}, st.Nodes()...)
	for _, node := range targets {
		for _, ch := range tsdb.Channels() {
			for _, res := range tsdb.Resolutions() {
				body, err := st.QuerySeries(node, string(ch), 0, 4e9, int(res))
				if err != nil {
					return nil, fmt.Errorf("persisttest: image %q/%s/%d: %w", node, ch, res, err)
				}
				b, err := json.Marshal(body)
				if err != nil {
					return nil, err
				}
				_, _ = buf.Write(b) // bytes.Buffer never errors
				buf.WriteByte('\n')
			}
		}
	}
	return buf.Bytes(), nil
}

// PrefixImages returns len(ops)+1 reference images: images[k] is the
// image of a store that ingested exactly ops[:k]. Store appends are
// deterministic, so any valid crash recovery must reproduce one of these
// bit for bit. The images are built incrementally on one memory-only
// store (Dir is cleared), one image per prefix.
func PrefixImages(opts tsdb.Options, ops []Op) ([][]byte, error) {
	opts.Dir = ""
	st := tsdb.New(opts)
	defer func() {
		// A memory-only store's Close cannot fail; the error return exists
		// for the durable path.
		_ = st.Close()
	}()
	images := make([][]byte, 0, len(ops)+1)
	img, err := Image(st)
	if err != nil {
		return nil, err
	}
	images = append(images, img)
	for i, op := range ops {
		if err := st.Ingest(op.Node, op.T, op.S); err != nil {
			return nil, fmt.Errorf("persisttest: op %d: %w", i, err)
		}
		if img, err = Image(st); err != nil {
			return nil, err
		}
		images = append(images, img)
	}
	return images, nil
}

// FrameSize returns the on-disk WAL frame size of one op: the 8-byte
// length+CRC prefix plus the payload (seq, timestamp, node length, node,
// five channel values). Tests use it to predict exactly which records a
// truncation at a given byte offset preserves.
func FrameSize(op Op) int {
	return 8 + 8 + 8 + 1 + len(op.Node) + 8*tsdb.NumChannels
}

// WALHeaderSize is the byte length of a segment's magic header.
const WALHeaderSize = 8

// CopyDir replicates src's regular files into a fresh dst.
func CopyDir(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// sortedGlob returns dir's files matching pattern, sorted by name. WAL
// segments and snapshots embed fixed-width hex sequence numbers, so name
// order is sequence order.
func sortedGlob(dir, pattern string) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, pattern))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// NewestWAL returns the path of dir's newest WAL segment.
func NewestWAL(dir string) (string, error) {
	paths, err := sortedGlob(dir, "wal-*.log")
	if err != nil || len(paths) == 0 {
		return "", fmt.Errorf("persisttest: no wal segments in %s", dir)
	}
	return paths[len(paths)-1], nil
}

// NewestSnapshot returns the path of dir's newest snapshot file.
func NewestSnapshot(dir string) (string, error) {
	paths, err := sortedGlob(dir, "snap-*.snap")
	if err != nil || len(paths) == 0 {
		return "", fmt.Errorf("persisttest: no snapshots in %s", dir)
	}
	return paths[len(paths)-1], nil
}

// Truncate cuts a file to n bytes — the torn-tail injection.
func Truncate(path string, n int) error {
	return os.Truncate(path, int64(n))
}

// FlipBit inverts one bit of a file in place — the bad-disk injection.
func FlipBit(path string, byteOff int, bit uint) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if byteOff < 0 || byteOff >= len(data) {
		return fmt.Errorf("persisttest: flip offset %d outside %d-byte file", byteOff, len(data))
	}
	data[byteOff] ^= 1 << (bit % 8)
	return os.WriteFile(path, data, 0o644)
}
