package persisttest

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"highrpm/internal/tsdb"
)

// smallOpts sizes stores so short workloads still seal blocks and flush
// rollup buckets.
func smallOpts() tsdb.Options {
	return tsdb.Options{BlockPoints: 16}
}

// recoverDir opens the (possibly corrupted) directory and fails the test
// on an I/O error — corruption must truncate, never abort. The store is
// closed through t.Cleanup-free explicit calls at each site instead, so
// the matrix loops can bound their footprint; this helper only shields
// against panics, converting one into a test failure that names the
// injection.
func recoverDir(t *testing.T, dir, label string, opts tsdb.Options) (st *tsdb.Store, rec *tsdb.Recovery) {
	t.Helper()
	defer func() {
		if p := recover(); p != nil {
			t.Fatalf("%s: recovery panicked: %v", label, p)
		}
	}()
	opts.Dir = dir
	opts.Fsync = tsdb.FsyncNever
	opts.SnapshotEvery = -1
	st, rec, err := tsdb.Open(opts)
	if err != nil {
		t.Fatalf("%s: Open: %v", label, err)
	}
	return st, rec
}

// checkPrefix asserts the recovered store is exactly the workload prefix
// recovery claims it is: rec.LastSeq selects the reference image and the
// store must match it byte for byte.
func checkPrefix(t *testing.T, st *tsdb.Store, rec *tsdb.Recovery, prefixes [][]byte, label string) {
	t.Helper()
	if rec.LastSeq > uint64(len(prefixes)-1) {
		t.Fatalf("%s: recovered LastSeq %d beyond the %d-op workload", label, rec.LastSeq, len(prefixes)-1)
	}
	img, err := Image(st)
	if err != nil {
		t.Fatalf("%s: image: %v", label, err)
	}
	if !bytes.Equal(img, prefixes[rec.LastSeq]) {
		t.Fatalf("%s: recovered store is not the claimed %d-op prefix", label, rec.LastSeq)
	}
}

// expectedRecords computes how many whole WAL records a truncation of the
// tail segment at byte offset cut preserves, given the ops the segment
// holds in order.
func expectedRecords(segOps []Op, cut int) int {
	off := WALHeaderSize
	for i, op := range segOps {
		off += FrameSize(op)
		if off > cut {
			return i
		}
	}
	return len(segOps)
}

// TestTornTailEveryByte is the exhaustive kill-point matrix: the WAL is
// truncated at EVERY byte offset, and for each one recovery must yield
// exactly the maximal prefix the remaining bytes contain — never a panic,
// never a record less, never invented data.
func TestTornTailEveryByte(t *testing.T) {
	checkNoLeaks(t)
	base := t.TempDir()
	src := filepath.Join(base, "src")
	ops := Workload(1, 40)
	opts := smallOpts()
	if err := Build(src, opts, ops); err != nil {
		t.Fatalf("Build: %v", err)
	}
	prefixes, err := PrefixImages(opts, ops)
	if err != nil {
		t.Fatalf("PrefixImages: %v", err)
	}
	walPath, err := NewestWAL(src)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	work := filepath.Join(base, "work")
	for cut := 0; cut <= len(data); cut++ {
		label := fmt.Sprintf("cut=%d", cut)
		if err := os.RemoveAll(work); err != nil {
			t.Fatal(err)
		}
		if err := CopyDir(src, work); err != nil {
			t.Fatal(err)
		}
		if err := Truncate(filepath.Join(work, filepath.Base(walPath)), cut); err != nil {
			t.Fatal(err)
		}
		st, rec := recoverDir(t, work, label, opts)
		wantK := expectedRecords(ops, cut)
		if rec.LastSeq != uint64(wantK) {
			t.Fatalf("%s: recovered %d records, the bytes contain %d", label, rec.LastSeq, wantK)
		}
		checkPrefix(t, st, rec, prefixes, label)
		if err := st.Close(); err != nil {
			t.Fatalf("%s: Close: %v", label, err)
		}
	}
}

// TestTornTailAfterSnapshot runs the same every-byte matrix on the tail
// segment of a directory that also has a snapshot: recovery must restore
// the snapshot and then exactly the records the torn tail still holds —
// the snapshot floor is never lost, whatever the truncation point.
func TestTornTailAfterSnapshot(t *testing.T) {
	checkNoLeaks(t)
	base := t.TempDir()
	src := filepath.Join(base, "src")
	const total, snapAt = 120, 80
	ops := Workload(2, total)
	opts := smallOpts()
	if err := Build(src, opts, ops, snapAt); err != nil {
		t.Fatalf("Build: %v", err)
	}
	prefixes, err := PrefixImages(opts, ops)
	if err != nil {
		t.Fatalf("PrefixImages: %v", err)
	}
	walPath, err := NewestWAL(src) // the post-rotation segment: ops[snapAt:]
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	work := filepath.Join(base, "work")
	for cut := 0; cut <= len(data); cut++ {
		label := fmt.Sprintf("cut=%d", cut)
		if err := os.RemoveAll(work); err != nil {
			t.Fatal(err)
		}
		if err := CopyDir(src, work); err != nil {
			t.Fatal(err)
		}
		if err := Truncate(filepath.Join(work, filepath.Base(walPath)), cut); err != nil {
			t.Fatal(err)
		}
		st, rec := recoverDir(t, work, label, opts)
		if rec.LastSeq < snapAt {
			t.Fatalf("%s: recovery lost snapshot-covered data (LastSeq %d < %d)", label, rec.LastSeq, snapAt)
		}
		wantK := snapAt + expectedRecords(ops[snapAt:], cut)
		if rec.LastSeq != uint64(wantK) {
			t.Fatalf("%s: recovered %d records, want %d", label, rec.LastSeq, wantK)
		}
		checkPrefix(t, st, rec, prefixes, label)
		if err := st.Close(); err != nil {
			t.Fatalf("%s: Close: %v", label, err)
		}
	}
}

// TestBitFlipWAL flips one bit at every byte offset of the WAL: the CRC
// must catch each flip (flips are linear in GF(2), so a single one can
// never cancel), recovery must keep every record before the damaged frame
// and drop the rest — and never panic.
func TestBitFlipWAL(t *testing.T) {
	checkNoLeaks(t)
	base := t.TempDir()
	src := filepath.Join(base, "src")
	ops := Workload(3, 30)
	opts := smallOpts()
	if err := Build(src, opts, ops); err != nil {
		t.Fatalf("Build: %v", err)
	}
	prefixes, err := PrefixImages(opts, ops)
	if err != nil {
		t.Fatalf("PrefixImages: %v", err)
	}
	walPath, err := NewestWAL(src)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	work := filepath.Join(base, "work")
	for off := 0; off < len(data); off++ {
		label := fmt.Sprintf("flip=%d", off)
		if err := os.RemoveAll(work); err != nil {
			t.Fatal(err)
		}
		if err := CopyDir(src, work); err != nil {
			t.Fatal(err)
		}
		if err := FlipBit(filepath.Join(work, filepath.Base(walPath)), off, uint(off*7)); err != nil {
			t.Fatal(err)
		}
		st, rec := recoverDir(t, work, label, opts)
		// A flip in the magic kills the segment (0 records); a flip inside
		// record i's frame kills record i and everything after it.
		wantK := 0
		if off >= WALHeaderSize {
			wantK = expectedRecords(ops, off)
		}
		if rec.LastSeq != uint64(wantK) {
			t.Fatalf("%s: recovered %d records, want %d", label, rec.LastSeq, wantK)
		}
		if rec.LastSeq != uint64(len(ops)) && len(rec.Damage) == 0 && !rec.TornTail {
			t.Fatalf("%s: lossy recovery reported neither damage nor a torn tail", label)
		}
		checkPrefix(t, st, rec, prefixes, label)
		if err := st.Close(); err != nil {
			t.Fatalf("%s: Close: %v", label, err)
		}
	}
}

// TestCorruptNewestSnapshotRecoversFully is the payoff of the keep-two
// retention policy: flip bits anywhere in the NEWEST snapshot and
// recovery must still reproduce the complete history, because the older
// snapshot plus the retained WAL tail covers everything.
func TestCorruptNewestSnapshotRecoversFully(t *testing.T) {
	checkNoLeaks(t)
	base := t.TempDir()
	src := filepath.Join(base, "src")
	const total = 160
	ops := Workload(4, total)
	opts := smallOpts()
	if err := Build(src, opts, ops, 60, 110); err != nil {
		t.Fatalf("Build: %v", err)
	}
	prefixes, err := PrefixImages(opts, ops)
	if err != nil {
		t.Fatalf("PrefixImages: %v", err)
	}
	snapPath, err := NewestSnapshot(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	work := filepath.Join(base, "work")
	for off := 0; off < int(info.Size()); off += 41 {
		label := fmt.Sprintf("snapflip=%d", off)
		if err := os.RemoveAll(work); err != nil {
			t.Fatal(err)
		}
		if err := CopyDir(src, work); err != nil {
			t.Fatal(err)
		}
		if err := FlipBit(filepath.Join(work, filepath.Base(snapPath)), off, uint(off*3)); err != nil {
			t.Fatal(err)
		}
		st, rec := recoverDir(t, work, label, opts)
		if len(rec.CorruptSnapshots) != 1 {
			t.Fatalf("%s: corrupt snapshots reported: %v, want exactly one", label, rec.CorruptSnapshots)
		}
		if rec.LastSeq != total {
			t.Fatalf("%s: recovered %d of %d records despite the fallback snapshot", label, rec.LastSeq, total)
		}
		checkPrefix(t, st, rec, prefixes, label)
		if err := st.Close(); err != nil {
			t.Fatalf("%s: Close: %v", label, err)
		}
	}
}

// TestPartialSnapshotRecoversFully truncates the newest snapshot at a
// spread of lengths (a crash mid-snapshot-write that somehow bypassed the
// tmp+rename dance, or a torn sector): every truncation must fail
// validation as a unit and recovery must fall back to full history.
func TestPartialSnapshotRecoversFully(t *testing.T) {
	checkNoLeaks(t)
	base := t.TempDir()
	src := filepath.Join(base, "src")
	const total = 160
	ops := Workload(5, total)
	opts := smallOpts()
	if err := Build(src, opts, ops, 60, 110); err != nil {
		t.Fatalf("Build: %v", err)
	}
	prefixes, err := PrefixImages(opts, ops)
	if err != nil {
		t.Fatalf("PrefixImages: %v", err)
	}
	snapPath, err := NewestSnapshot(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	size := int(info.Size())
	work := filepath.Join(base, "work")
	for cut := 0; cut < size; cut += 29 {
		label := fmt.Sprintf("snapcut=%d", cut)
		if err := os.RemoveAll(work); err != nil {
			t.Fatal(err)
		}
		if err := CopyDir(src, work); err != nil {
			t.Fatal(err)
		}
		if err := Truncate(filepath.Join(work, filepath.Base(snapPath)), cut); err != nil {
			t.Fatal(err)
		}
		st, rec := recoverDir(t, work, label, opts)
		if rec.LastSeq != total {
			t.Fatalf("%s: recovered %d of %d records", label, rec.LastSeq, total)
		}
		checkPrefix(t, st, rec, prefixes, label)
		if err := st.Close(); err != nil {
			t.Fatalf("%s: Close: %v", label, err)
		}
	}
}

// TestAllSnapshotsLostIsBoundedNotFatal deletes every snapshot from a
// directory whose old WAL segments were already pruned: recovery cannot
// reconstruct the pruned history (the sequence would have a gap), so it
// must come up EMPTY and say why — never panic, never serve a hole-y
// series as if it were complete.
func TestAllSnapshotsLostIsBoundedNotFatal(t *testing.T) {
	checkNoLeaks(t)
	base := t.TempDir()
	src := filepath.Join(base, "src")
	ops := Workload(6, 160)
	opts := smallOpts()
	if err := Build(src, opts, ops, 60, 110); err != nil {
		t.Fatalf("Build: %v", err)
	}
	snaps, err := filepath.Glob(filepath.Join(src, "snap-*.snap"))
	if err != nil || len(snaps) != 2 {
		t.Fatalf("want 2 snapshots, got %v (%v)", snaps, err)
	}
	for _, s := range snaps {
		if err := os.Remove(s); err != nil {
			t.Fatal(err)
		}
	}
	st, rec := recoverDir(t, src, "no-snapshots", opts)
	defer func() {
		if err := st.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	if rec.LastSeq != 0 || len(st.Nodes()) != 0 {
		t.Fatalf("recovery without snapshots over a pruned WAL should be empty, got LastSeq %d, %d nodes", rec.LastSeq, len(st.Nodes()))
	}
	if len(rec.Damage) == 0 {
		t.Fatal("empty recovery must report why (sequence gap)")
	}
}

// TestGarbageScribbles overwrites random WAL ranges with random bytes:
// whatever the damage, recovery yields the prefix it claims and survives.
func TestGarbageScribbles(t *testing.T) {
	checkNoLeaks(t)
	base := t.TempDir()
	src := filepath.Join(base, "src")
	ops := Workload(7, 60)
	opts := smallOpts()
	if err := Build(src, opts, ops); err != nil {
		t.Fatalf("Build: %v", err)
	}
	prefixes, err := PrefixImages(opts, ops)
	if err != nil {
		t.Fatalf("PrefixImages: %v", err)
	}
	walPath, err := NewestWAL(src)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	work := filepath.Join(base, "work")
	for trial := 0; trial < 25; trial++ {
		label := fmt.Sprintf("scribble=%d", trial)
		if err := os.RemoveAll(work); err != nil {
			t.Fatal(err)
		}
		if err := CopyDir(src, work); err != nil {
			t.Fatal(err)
		}
		data := append([]byte(nil), orig...)
		start := rng.Intn(len(data))
		n := 1 + rng.Intn(64)
		for i := start; i < len(data) && i < start+n; i++ {
			data[i] = byte(rng.Intn(256))
		}
		if err := os.WriteFile(filepath.Join(work, filepath.Base(walPath)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, rec := recoverDir(t, work, label, opts)
		checkPrefix(t, st, rec, prefixes, label)
		if err := st.Close(); err != nil {
			t.Fatalf("%s: Close: %v", label, err)
		}
	}
}
