package persisttest

import (
	"runtime"
	"testing"
	"time"
)

// checkNoLeaks arms the goroutine-leak guard the leakcheck analyzer
// enforces for every internal/tsdb/... test that opens stores (Open may
// start a batch flusher): at cleanup the goroutine count must return to
// at most what it was when the test started.
func checkNoLeaks(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= before {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak: %d before, %d after\n%s", before, n, buf)
	})
}
