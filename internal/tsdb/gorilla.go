// Gorilla-style block compression for power samples: delta-of-delta
// variable-width timestamps and XOR-encoded float64 values, after
// Pelkonen et al., "Gorilla: A Fast, Scalable, In-Memory Time Series
// Database" (VLDB 2015). The encoding is lossless at the bit level, so a
// restored power series — including NaN gaps in sparse channels — decodes
// to exactly the float64s that were ingested.
//
// A block interleaves one timestamp chain with k value chains (k = 1 for
// raw series, k = 4 for rollup series carrying mean/min/max/count), each
// value chain keeping its own XOR predecessor and leading/trailing-zero
// window.
package tsdb

import (
	"fmt"
	"math"
	stdbits "math/bits"
	"sync"
)

// bstream is an append-only bit stream.
type bstream struct {
	b    []byte
	free uint8 // unused bits in the last byte of b
}

// writeBits appends the low n bits of v, most-significant first.
func (s *bstream) writeBits(v uint64, n uint) {
	for n > 0 {
		if s.free == 0 {
			s.b = append(s.b, 0)
			s.free = 8
		}
		take := n
		if uint(s.free) < take {
			take = uint(s.free)
		}
		shift := n - take
		chunk := byte((v >> shift) & ((1 << take) - 1))
		s.free -= uint8(take)
		s.b[len(s.b)-1] |= chunk << s.free
		n = shift
	}
}

// bitReader consumes a bstream's bytes.
type bitReader struct {
	b    []byte
	idx  int
	used uint8 // bits already consumed from b[idx]
}

func (r *bitReader) readBits(n uint) (uint64, error) {
	var v uint64
	for n > 0 {
		if r.idx >= len(r.b) {
			return 0, fmt.Errorf("tsdb: bit stream truncated")
		}
		avail := uint(8 - r.used)
		take := n
		if take > avail {
			take = avail
		}
		chunk := (r.b[r.idx] >> (avail - take)) & byte((1<<take)-1)
		v = v<<take | uint64(chunk)
		r.used += uint8(take)
		if r.used == 8 {
			r.idx++
			r.used = 0
		}
		n -= take
	}
	return v, nil
}

// noWindow marks a value chain that has not yet established a
// leading/trailing-zero window.
const noWindow = 0xFF

// block is one compressed run of up to blockPoints points. Timestamps are
// int64 milliseconds.
type block struct {
	bs bstream
	k  int
	n  int

	// id is the block's store-wide epoch, assigned by the owning series
	// when a decoded-block cache is attached. A (shard, channel, seal
	// epoch) triple never repeats, so the id alone is a sound cache key.
	id uint64

	first, last int64 // timestamp range, valid when n > 0

	// encoder state
	tDelta   int64
	val      []uint64
	leading  []uint8
	trailing []uint8
}

func newBlock(k int) *block {
	b := &block{
		k:        k,
		val:      make([]uint64, k),
		leading:  make([]uint8, k),
		trailing: make([]uint8, k),
	}
	for i := range b.leading {
		b.leading[i] = noWindow
	}
	return b
}

func (b *block) bytes() int { return len(b.bs.b) }

// append encodes one point. len(vals) must equal b.k; timestamps may be
// irregular (the encoder handles any int64 delta).
func (b *block) append(t int64, vals []float64) {
	if b.n == 0 {
		// Block header: raw 64-bit timestamp and values. Amortised over a
		// full block this costs well under a bit per point.
		b.first = t
		b.bs.writeBits(uint64(t), 64)
		for i, v := range vals {
			bits := math.Float64bits(v)
			b.bs.writeBits(bits, 64)
			b.val[i] = bits
		}
		b.last = t
		b.n = 1
		return
	}
	delta := t - b.last
	dod := delta - b.tDelta
	b.tDelta = delta
	switch {
	case dod == 0:
		b.bs.writeBits(0, 1)
	case -63 <= dod && dod <= 64:
		b.bs.writeBits(0b10, 2)
		b.bs.writeBits(uint64(dod+63), 7)
	case -255 <= dod && dod <= 256:
		b.bs.writeBits(0b110, 3)
		b.bs.writeBits(uint64(dod+255), 9)
	case -2047 <= dod && dod <= 2048:
		b.bs.writeBits(0b1110, 4)
		b.bs.writeBits(uint64(dod+2047), 12)
	default:
		b.bs.writeBits(0b1111, 4)
		b.bs.writeBits(uint64(dod), 64)
	}
	for i, v := range vals {
		b.writeValue(i, math.Float64bits(v))
	}
	b.last = t
	b.n++
}

func (b *block) writeValue(i int, bits uint64) {
	xor := bits ^ b.val[i]
	b.val[i] = bits
	if xor == 0 {
		b.bs.writeBits(0, 1)
		return
	}
	lead := uint8(stdbits.LeadingZeros64(xor))
	if lead > 31 {
		lead = 31 // 5-bit field; longer runs just spill into the payload
	}
	trail := uint8(stdbits.TrailingZeros64(xor))
	if b.leading[i] != noWindow && lead >= b.leading[i] && trail >= b.trailing[i] {
		// Meaningful bits fit the previous window: reuse it.
		b.bs.writeBits(0b10, 2)
		sig := 64 - uint(b.leading[i]) - uint(b.trailing[i])
		b.bs.writeBits(xor>>b.trailing[i], sig)
		return
	}
	b.leading[i], b.trailing[i] = lead, trail
	sig := 64 - uint(lead) - uint(trail)
	b.bs.writeBits(0b11, 2)
	b.bs.writeBits(uint64(lead), 5)
	b.bs.writeBits(uint64(sig)&63, 6) // sig ∈ [1,64]; 64 encodes as 0
	b.bs.writeBits(xor>>trail, sig)
}

// decodeState is the scratch one block scan needs: the value vector handed
// to emit plus the per-chain XOR predecessors and zero windows. States are
// pooled so the query hot path does not allocate four slices per block.
type decodeState struct {
	vals     []float64
	cur      []uint64
	leading  []uint8
	trailing []uint8
}

var decodeStatePool = sync.Pool{New: func() any { return &decodeState{} }}

// reset sizes the scratch for k value chains and clears the decoder state
// a previous use may have left behind.
func (st *decodeState) reset(k int) {
	if cap(st.vals) < k {
		st.vals = make([]float64, k)
		st.cur = make([]uint64, k)
		st.leading = make([]uint8, k)
		st.trailing = make([]uint8, k)
	}
	st.vals = st.vals[:k]
	st.cur = st.cur[:k]
	st.leading = st.leading[:k]
	st.trailing = st.trailing[:k]
	for i := 0; i < k; i++ {
		st.cur[i] = 0
		st.leading[i] = 0
		st.trailing[i] = 0
	}
}

// decode replays the block in append order. emit returning false stops the
// scan early (points are time-ordered, so a range query can cut off once
// past its upper bound). vals is reused between calls — copy to retain.
// The scratch comes from a pool, so a steady-state decode allocates
// nothing.
func (b *block) decode(emit func(t int64, vals []float64) bool) error {
	st := decodeStatePool.Get().(*decodeState)
	err := b.decodeWith(st, emit)
	decodeStatePool.Put(st)
	return err
}

// decodeWith replays the block using caller-provided scratch.
func (b *block) decodeWith(st *decodeState, emit func(t int64, vals []float64) bool) error {
	if b.n == 0 {
		return nil
	}
	st.reset(b.k)
	r := bitReader{b: b.bs.b}
	vals := st.vals
	cur := st.cur
	leading := st.leading
	trailing := st.trailing

	ts, err := r.readBits(64)
	if err != nil {
		return err
	}
	t := int64(ts)
	for i := range cur {
		if cur[i], err = r.readBits(64); err != nil {
			return err
		}
		vals[i] = math.Float64frombits(cur[i])
	}
	if !emit(t, vals) {
		return nil
	}

	var tDelta int64
	for p := 1; p < b.n; p++ {
		dod, err := r.readDoD()
		if err != nil {
			return err
		}
		tDelta += dod
		t += tDelta
		for i := range cur {
			xor, err := r.readXOR(&leading[i], &trailing[i])
			if err != nil {
				return err
			}
			cur[i] ^= xor
			vals[i] = math.Float64frombits(cur[i])
		}
		if !emit(t, vals) {
			return nil
		}
	}
	return nil
}

func (r *bitReader) readDoD() (int64, error) {
	// Count leading ones of the selector (at most four).
	sel := uint(0)
	for sel < 4 {
		bit, err := r.readBits(1)
		if err != nil {
			return 0, err
		}
		if bit == 0 {
			break
		}
		sel++
	}
	switch sel {
	case 0:
		return 0, nil
	case 1:
		v, err := r.readBits(7)
		return int64(v) - 63, err
	case 2:
		v, err := r.readBits(9)
		return int64(v) - 255, err
	case 3:
		v, err := r.readBits(12)
		return int64(v) - 2047, err
	default:
		v, err := r.readBits(64)
		return int64(v), err
	}
}

func (r *bitReader) readXOR(leading, trailing *uint8) (uint64, error) {
	bit, err := r.readBits(1)
	if err != nil {
		return 0, err
	}
	if bit == 0 {
		return 0, nil
	}
	reuse, err := r.readBits(1)
	if err != nil {
		return 0, err
	}
	if reuse == 0 {
		sig := 64 - uint(*leading) - uint(*trailing)
		v, err := r.readBits(sig)
		return v << *trailing, err
	}
	lead, err := r.readBits(5)
	if err != nil {
		return 0, err
	}
	sigRaw, err := r.readBits(6)
	if err != nil {
		return 0, err
	}
	sig := uint(sigRaw)
	if sig == 0 {
		sig = 64
	}
	*leading = uint8(lead)
	*trailing = uint8(64 - uint(lead) - sig)
	v, err := r.readBits(sig)
	return v << *trailing, err
}
