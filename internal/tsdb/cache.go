package tsdb

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// blockCache is the store-wide LRU of decoded sealed blocks. Sealed blocks
// are immutable — a block only ever gains points while it is the youngest
// of its series, and retention evicts whole blocks — so the cache needs
// exactly one coherence rule: an entry is dropped when retention evicts
// its block. Open blocks are never cached (they still mutate), which is
// what makes every cached entry safe to serve without re-validation.
//
// Keys are the block epoch: a store-wide counter stamped onto each block
// at creation, so a (shard, channel, seal-generation) triple never reuses
// a key even after eviction. The budget is counted in decoded points; one
// decoded raw point costs 16 B (timestamp + value), a rollup point 40 B.
type blockCache struct {
	mu      sync.Mutex
	cap     int        // decoded-point budget
	size    int        // decoded points currently held
	lru     *list.List // of *cacheEntry, most recently used at front
	entries map[uint64]*list.Element

	epochs atomic.Uint64
	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	id uint64
	db *decodedBlock
}

// decodedBlock is one fully decoded block: parallel timestamps plus
// k-interleaved values (point p occupies vals[p*k : (p+1)*k]). Once built
// it is read-only and safe to share across queries without locks.
type decodedBlock struct {
	k    int
	ts   []int64
	vals []float64
}

func (db *decodedBlock) points() int { return len(db.ts) }

// emitRange replays the cached points with from ≤ t ≤ to, oldest first.
// The slice handed to emit aliases the cached array — callers copy, same
// contract as block.decode.
func (db *decodedBlock) emitRange(from, to int64, emit func(t int64, vals []float64)) {
	// Binary-search the first point at or after from; points are ordered.
	lo, hi := 0, len(db.ts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if db.ts[mid] < from {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for p := lo; p < len(db.ts); p++ {
		if db.ts[p] > to {
			return
		}
		emit(db.ts[p], db.vals[p*db.k:(p+1)*db.k])
	}
}

// newBlockCache sizes a cache for capPoints decoded points.
func newBlockCache(capPoints int) *blockCache {
	return &blockCache{
		cap:     capPoints,
		lru:     list.New(),
		entries: map[uint64]*list.Element{},
	}
}

// nextEpoch stamps a freshly opened block.
func (c *blockCache) nextEpoch() uint64 { return c.epochs.Add(1) }

// get returns the decoded form of block id, or nil on a miss.
func (c *blockCache) get(id uint64) *decodedBlock {
	c.mu.Lock()
	el := c.entries[id]
	if el == nil {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil
	}
	c.lru.MoveToFront(el)
	db := el.Value.(*cacheEntry).db
	c.mu.Unlock()
	c.hits.Add(1)
	return db
}

// put inserts a decoded block and evicts from the LRU tail until the
// point budget holds again (the newest entry always stays, so one block
// larger than the whole budget still caches).
func (c *blockCache) put(id uint64, db *decodedBlock) {
	c.mu.Lock()
	if _, ok := c.entries[id]; ok {
		c.mu.Unlock()
		return
	}
	c.entries[id] = c.lru.PushFront(&cacheEntry{id: id, db: db})
	c.size += db.points()
	for c.size > c.cap && c.lru.Len() > 1 {
		el := c.lru.Back()
		ent := el.Value.(*cacheEntry)
		c.lru.Remove(el)
		delete(c.entries, ent.id)
		c.size -= ent.db.points()
	}
	c.mu.Unlock()
}

// invalidate drops one block's entry; retention calls it when the block
// leaves its series, so the cache never outlives the data it mirrors.
func (c *blockCache) invalidate(id uint64) {
	c.mu.Lock()
	if el := c.entries[id]; el != nil {
		c.size -= el.Value.(*cacheEntry).db.points()
		c.lru.Remove(el)
		delete(c.entries, id)
	}
	c.mu.Unlock()
}

// purge empties the cache (benchmarks use it to measure the cold path).
func (c *blockCache) purge() {
	c.mu.Lock()
	c.lru.Init()
	c.entries = map[uint64]*list.Element{}
	c.size = 0
	c.mu.Unlock()
}

// stats snapshots hit/miss counters and the decoded points held.
func (c *blockCache) stats() (hits, misses int64, points int) {
	hits = c.hits.Load()
	misses = c.misses.Load()
	c.mu.Lock()
	points = c.size
	c.mu.Unlock()
	return hits, misses, points
}

// decodeFull decodes a whole block into its cacheable form.
func decodeFull(b *block) (*decodedBlock, error) {
	db := &decodedBlock{
		k:    b.k,
		ts:   make([]int64, 0, b.n),
		vals: make([]float64, 0, b.n*b.k),
	}
	err := b.decode(func(t int64, vals []float64) bool {
		db.ts = append(db.ts, t)
		db.vals = append(db.vals, vals...)
		return true
	})
	if err != nil {
		return nil, err
	}
	return db, nil
}
