package tsdb

import (
	"math"
	"sync/atomic"

	"highrpm/internal/stats"
)

// series is a ring of compressed blocks for one (node, channel,
// resolution). The newest block is open for appends; retention evicts
// whole blocks from the front once the retained point count would still
// meet maxPoints without them.
type series struct {
	k           int
	blockPoints int
	maxPoints   int // 0: unbounded
	blocks      []*block
	points      int
	// evicted, when set, accumulates the points dropped by retention so
	// the owning store can report them (Stats.EvictedPoints). It is
	// shared store-wide; bumps happen under the shard lock.
	evicted *atomic.Int64
	// cache, when set, is the store-wide decoded-block cache. Sealed
	// blocks are read through it; the open block never is, and retention
	// eviction invalidates the evicted block's entry.
	cache *blockCache
}

func newSeries(k, blockPoints, maxPoints int) *series {
	return &series{k: k, blockPoints: blockPoints, maxPoints: maxPoints}
}

func (s *series) append(t int64, vals []float64) {
	if len(s.blocks) == 0 || s.blocks[len(s.blocks)-1].n >= s.blockPoints {
		blk := newBlock(s.k)
		if s.cache != nil {
			blk.id = s.cache.nextEpoch()
		}
		s.blocks = append(s.blocks, blk)
	}
	s.blocks[len(s.blocks)-1].append(t, vals)
	s.points++
	// Evict oldest blocks while the remainder still satisfies retention;
	// overshoot is bounded by one block.
	for s.maxPoints > 0 && len(s.blocks) > 1 && s.points-s.blocks[0].n >= s.maxPoints {
		s.points -= s.blocks[0].n
		if s.evicted != nil {
			s.evicted.Add(int64(s.blocks[0].n))
		}
		if s.cache != nil {
			s.cache.invalidate(s.blocks[0].id)
		}
		s.blocks[0] = nil
		s.blocks = s.blocks[1:]
	}
}

// query emits every retained point with from ≤ t ≤ to, oldest first.
// Sealed blocks go through the decoded-block cache when one is attached;
// the open block (still mutating) always decodes directly with pooled
// scratch.
func (s *series) query(from, to int64, emit func(t int64, vals []float64)) error {
	for i, blk := range s.blocks {
		if blk.n == 0 || blk.last < from || blk.first > to {
			continue
		}
		sealed := i < len(s.blocks)-1 || blk.n >= s.blockPoints
		if sealed && s.cache != nil {
			db := s.cache.get(blk.id)
			if db == nil {
				var err error
				if db, err = decodeFull(blk); err != nil {
					return err
				}
				s.cache.put(blk.id, db)
			}
			db.emitRange(from, to, emit)
			continue
		}
		err := blk.decode(func(t int64, vals []float64) bool {
			if t > to {
				return false
			}
			if t >= from {
				emit(t, vals)
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// sizeHint upper-bounds how many points query(from, to) can emit without
// decoding anything: the point counts of the overlapping blocks. Callers
// use it to allocate result slices exactly once.
func (s *series) sizeHint(from, to int64) int {
	n := 0
	for _, blk := range s.blocks {
		if blk.n == 0 || blk.last < from || blk.first > to {
			continue
		}
		n += blk.n
	}
	return n
}

func (s *series) bytes() int {
	n := 0
	for _, blk := range s.blocks {
		n += blk.bytes()
	}
	return n
}

// bucketStart floors t to the enclosing bucket of width w (both ms).
func bucketStart(t, w int64) int64 {
	q := t / w
	if t%w < 0 {
		q--
	}
	return q * w
}

// rollup incrementally maintains one downsampled resolution of a channel:
// each bucket keeps min/mean/max (stats.Running) over the raw points that
// fell into it plus the non-NaN count. Sealed buckets are appended to a
// compressed series as [mean, min, max, count]; the open bucket is merged
// into query results so freshly ingested data is visible immediately.
type rollup struct {
	widthMs int64
	ser     *series
	open    bool
	start   int64
	agg     stats.Running
}

func newRollup(widthMs int64, blockPoints, maxPoints int) *rollup {
	return &rollup{widthMs: widthMs, ser: newSeries(rollupChains, blockPoints, maxPoints)}
}

// rollupChains is the per-bucket value layout: mean, min, max, count.
const rollupChains = 4

func (r *rollup) add(t int64, v float64) {
	bs := bucketStart(t, r.widthMs)
	if !r.open {
		r.start = bs
		r.open = true
	} else if bs != r.start {
		r.flush()
		r.start = bs
		r.open = true
	}
	if !math.IsNaN(v) {
		r.agg.Push(v)
	}
}

// flush seals the open bucket into the compressed series. Buckets whose
// raw points were all NaN (a sparse channel with no reading in the window)
// are stored as NaN stats with count 0, keeping bucket timestamps aligned
// across channels.
func (r *rollup) flush() {
	if !r.open {
		return
	}
	mean, min, max := math.NaN(), math.NaN(), math.NaN()
	if r.agg.N() > 0 {
		mean, min, max = r.agg.Mean(), r.agg.Min(), r.agg.Max()
	}
	vals := [rollupChains]float64{mean, min, max, float64(r.agg.N())}
	r.ser.append(r.start, vals[:])
	r.agg = stats.Running{}
	r.open = false
}

// openPoint returns the open bucket as a Point when it overlaps
// [from, to]; ok is false when there is none.
func (r *rollup) openPoint(from, to int64) (Point, bool) {
	if !r.open || r.start < from || r.start > to {
		return Point{}, false
	}
	p := Point{
		Time:  float64(r.start) / 1000,
		Value: math.NaN(), Min: math.NaN(), Max: math.NaN(),
	}
	if n := r.agg.N(); n > 0 {
		p.Value, p.Min, p.Max, p.Count = r.agg.Mean(), r.agg.Min(), r.agg.Max(), n
	}
	return p, true
}
