package tsdb

import (
	"math"
	"testing"
)

// boundary_test.go pins the rollup bucket-edge and retention edge cases:
// a sample landing exactly on a 10s/60s bucket boundary must seal the
// previous bucket rather than join it, and retention must account for
// partially-filled rollup windows it evicts.

func ingestAt(t *testing.T, st *Store, node string, sec float64, v float64) {
	t.Helper()
	smp := Sample{PNode: v, PCPU: v, PMEM: v, PNodePrime: v, IPMI: v}
	if err := st.Ingest(node, sec, smp); err != nil {
		t.Fatal(err)
	}
}

func TestRollupBucketEdgeSample(t *testing.T) {
	st := New(DefaultOptions())
	// Fill the first 10s window completely, then land exactly on the edge.
	for i := 0; i <= 60; i++ {
		ingestAt(t, st, "n", float64(i), float64(i))
	}

	pts, err := st.Query("n", ChanPNode, 0, 60, TenSeconds)
	if err != nil {
		t.Fatal(err)
	}
	// Six sealed buckets [0,10) .. [50,60) plus the open bucket at 60.
	if len(pts) != 7 {
		t.Fatalf("got %d 10s buckets, want 7: %+v", len(pts), pts)
	}
	first := pts[0]
	if first.Time != 0 || first.Count != 10 || first.Min != 0 || first.Max != 9 || first.Value != 4.5 {
		t.Errorf("bucket [0,10) = %+v, want time 0 count 10 min 0 max 9 mean 4.5", first)
	}
	// t=10 must have opened a NEW bucket, not extended [0,10).
	second := pts[1]
	if second.Time != 10 || second.Count != 10 || second.Min != 10 || second.Max != 19 {
		t.Errorf("bucket [10,20) = %+v, want time 10 count 10 min 10 max 19", second)
	}
	open := pts[6]
	if open.Time != 60 || open.Count != 1 || open.Value != 60 {
		t.Errorf("open bucket = %+v, want time 60 count 1 value 60", open)
	}

	// Same edge at the 60s resolution: t=60 seals [0,60) with exactly 60
	// points and starts the next window.
	pts, err = st.Query("n", ChanPNode, 0, 60, Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d 60s buckets, want 2: %+v", len(pts), pts)
	}
	sealed := pts[0]
	if sealed.Time != 0 || sealed.Count != 60 || sealed.Min != 0 || sealed.Max != 59 || sealed.Value != 29.5 {
		t.Errorf("bucket [0,60) = %+v, want count 60 min 0 max 59 mean 29.5", sealed)
	}
	if pts[1].Time != 60 || pts[1].Count != 1 {
		t.Errorf("open 60s bucket = %+v, want time 60 count 1", pts[1])
	}
}

func TestRollupNegativeTimeFloors(t *testing.T) {
	st := New(DefaultOptions())
	// Bucket flooring must round toward -inf, not toward zero: t=-1s
	// belongs to [-10,0), not [0,10).
	ingestAt(t, st, "n", -1, 7)
	ingestAt(t, st, "n", 0, 8) // crosses the edge, seals [-10,0)

	pts, err := st.Query("n", ChanPNode, -10, -0.001, TenSeconds)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].Time != -10 || pts[0].Count != 1 || pts[0].Value != 7 {
		t.Fatalf("negative bucket = %+v, want sealed [-10,0) with the t=-1 point", pts)
	}
}

func TestRetentionEvictsPartialRollupWindow(t *testing.T) {
	st := New(Options{BlockPoints: 2, RetainRaw: 100, Retain10s: 4, Retain60s: 0})

	// A partially-filled window: 5 of 10 slots in [0,10).
	for i := 0; i < 5; i++ {
		ingestAt(t, st, "n", float64(i), float64(i))
	}
	// Time jump seals the partial bucket; it must carry only the points
	// that actually landed in it.
	ingestAt(t, st, "n", 20, 20)
	pts, err := st.Query("n", ChanPNode, 0, 9, TenSeconds)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].Count != 5 || pts[0].Min != 0 || pts[0].Max != 4 || pts[0].Value != 2 {
		t.Fatalf("partial sealed bucket = %+v, want count 5 min 0 max 4 mean 2", pts)
	}
	if st.Stats().EvictedPoints != 0 {
		t.Fatalf("premature eviction: %+v", st.Stats())
	}

	// Keep jumping one bucket at a time until retention (4 buckets, block
	// granule 2) evicts the oldest block — which holds the partial window.
	for _, sec := range []float64{30, 40, 50, 60, 70} {
		ingestAt(t, st, "n", sec, sec)
	}
	pts, err = st.Query("n", ChanPNode, 0, 1000, TenSeconds)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 || pts[0].Time != 30 {
		t.Fatalf("oldest retained bucket = %+v, want the partial [0,10) and [20,30) evicted", pts)
	}
	if got := pts[len(pts)-1]; got.Time != 70 || got.Count != 1 {
		t.Errorf("open bucket after eviction = %+v, want time 70 count 1", got)
	}
	// One evicted block = 2 rollup points, on each of the 5 channels.
	if got := st.Stats().EvictedPoints; got != 10 {
		t.Errorf("EvictedPoints = %d, want 10 (2 buckets x 5 channels)", got)
	}
}

func TestRetentionRawEvictionAccounting(t *testing.T) {
	st := New(Options{BlockPoints: 2, RetainRaw: 4, Retain10s: 0, Retain60s: 0})
	for i := 0; i < 10; i++ {
		ingestAt(t, st, "n", float64(i), float64(i))
	}
	pts, err := st.Query("n", ChanPNode, 0, 100, Raw)
	if err != nil {
		t.Fatal(err)
	}
	// Appends evict whole 2-point blocks once 4 points survive without
	// them: 10 ingested, 3 evictions of 2, 4 retained (t=6..9).
	if len(pts) != 4 || pts[0].Time != 6 || pts[3].Time != 9 {
		t.Fatalf("retained raw = %+v, want t=6..9", pts)
	}
	if got := st.Stats().EvictedPoints; got != 30 {
		t.Errorf("EvictedPoints = %d, want 30 (6 raw points x 5 channels)", got)
	}
	// Latest still serves the newest point after eviction.
	p, err := st.Latest("n", ChanPNode)
	if err != nil {
		t.Fatal(err)
	}
	if p.Time != 9 || p.Value != 9 {
		t.Errorf("Latest = %+v, want t=9 v=9", p)
	}
}

func TestLatestEdgeCases(t *testing.T) {
	st := New(DefaultOptions())
	if _, err := st.Latest("ghost", ChanPNode); err == nil {
		t.Error("Latest on unknown node should error")
	}
	ingestAt(t, st, "n", 1, 11)
	if _, err := st.Latest("n", Channel("bogus")); err == nil {
		t.Error("Latest on unknown channel should error")
	}
	p, err := st.Latest("n", ChanIPMI)
	if err != nil {
		t.Fatal(err)
	}
	if p.Time != 1 || p.Value != 11 {
		t.Errorf("Latest = %+v", p)
	}
	// NaN round-trips bit-exactly through the raw series.
	if err := st.Ingest("n", 2, Sample{PNode: 5, IPMI: math.NaN()}); err != nil {
		t.Fatal(err)
	}
	p, err = st.Latest("n", ChanIPMI)
	if err != nil {
		t.Fatal(err)
	}
	if p.Time != 2 || !math.IsNaN(p.Value) {
		t.Errorf("Latest NaN = %+v, want NaN at t=2", p)
	}
}
