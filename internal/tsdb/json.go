package tsdb

import (
	"encoding/json"
	"math"
)

// This file is the JSON series encoding shared by every surface that ships
// store points: the cluster TCP protocol (KindSeries replies), the obs
// HTTP API (/api/v1/query, /api/v1/series) and the highrpm-query -json
// output all marshal the same SeriesBody, so a series is byte-identical no
// matter which door it left through.

// NullFloat marshals NaN/Inf as JSON null (encoding/json rejects them) and
// restores null as NaN, so sparse channels survive the wire.
type NullFloat float64

// MarshalJSON renders non-finite values as null.
func (f NullFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON restores null as NaN.
func (f *NullFloat) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*f = NullFloat(math.NaN())
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = NullFloat(v)
	return nil
}

// SeriesPoint is one wire-encoded store point (see Point).
type SeriesPoint struct {
	Time  float64   `json:"t"`
	Value NullFloat `json:"v"`
	Min   NullFloat `json:"min"`
	Max   NullFloat `json:"max"`
	Count int       `json:"n"`
}

// SeriesBody is one encoded series: the answer to a cluster KindQuery and
// the payload of the obs HTTP series endpoints.
type SeriesBody struct {
	NodeID      string        `json:"node_id,omitempty"` // empty: aggregate
	Channel     string        `json:"channel"`
	ResolutionS int           `json:"resolution_s"`
	Points      []SeriesPoint `json:"points"`
}

// ToSeriesPoints converts store points for the wire.
func ToSeriesPoints(pts []Point) []SeriesPoint {
	out := make([]SeriesPoint, len(pts))
	for i, p := range pts {
		out[i] = SeriesPoint{
			Time:  p.Time,
			Value: NullFloat(p.Value),
			Min:   NullFloat(p.Min),
			Max:   NullFloat(p.Max),
			Count: p.Count,
		}
	}
	return out
}

// StorePoints converts the wire points back to store points, e.g. for
// tracefile.WriteSeries.
func (b SeriesBody) StorePoints() []Point {
	out := make([]Point, len(b.Points))
	for i, p := range b.Points {
		out[i] = Point{
			Time:  p.Time,
			Value: float64(p.Value),
			Min:   float64(p.Min),
			Max:   float64(p.Max),
			Count: p.Count,
		}
	}
	return out
}

// QuerySeries resolves one series request in its wire form: a node's
// channel (or, with node empty, the cluster-wide aggregate) over
// [from, to] seconds at resolutionS (0 selects raw). The TCP KindQuery
// handler and the HTTP /api/v1/series endpoint both answer through this
// method, which is what keeps their JSON byte-for-byte identical.
func (st *Store) QuerySeries(node, channel string, from, to float64, resolutionS int) (SeriesBody, error) {
	res, err := ParseResolution(resolutionS)
	if err != nil {
		return SeriesBody{}, err
	}
	var pts []Point
	if node == "" {
		pts, err = st.Aggregate(Channel(channel), from, to, res)
	} else {
		pts, err = st.Query(node, Channel(channel), from, to, res)
	}
	if err != nil {
		return SeriesBody{}, err
	}
	return SeriesBody{
		NodeID:      node,
		Channel:     channel,
		ResolutionS: int(res),
		Points:      ToSeriesPoints(pts),
	}, nil
}
