// Durable store lifecycle: Open recovers a store from its data directory
// (newest valid snapshot + WAL tail), Snapshot writes a new full-state
// snapshot and prunes what it obsoletes, and a background flusher turns
// FsyncBatch into a bounded-loss guarantee.
//
// Recovery invariants:
//
//   - The newest snapshot that validates (CRC + every block decodes) wins;
//     corrupt ones are recorded in Recovery and skipped.
//   - WAL replay visits segments in sequence order, skips records the
//     snapshot already covers, and stops at the first torn tail, corrupt
//     frame, or sequence gap — everything applied is a strict prefix of
//     the ingest history, so recovery can never invent or reorder data.
//   - A fresh WAL segment starting at lastSeq+1 is always opened; the
//     store never appends after a torn tail.
//   - Pruning keeps the two newest snapshots and only deletes WAL
//     segments the OLDER one fully covers, so even losing the newest
//     snapshot to corruption still recovers the complete history.
package tsdb

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// DefaultSnapshotEvery is the default automatic snapshot cadence in WAL
// records (one record per Ingest call).
const DefaultSnapshotEvery = 1 << 16

// DefaultFlushEvery is the default FsyncBatch flush interval — the upper
// bound on how much acknowledged data a crash can lose under that policy.
const DefaultFlushEvery = 100 * time.Millisecond

// Recovery reports what Open found on disk. It is informational: Open only
// fails on I/O errors, never on corruption (corruption truncates, it does
// not abort).
type Recovery struct {
	// SnapshotPath is the snapshot that was restored ("" when starting
	// from WAL alone) and SnapshotSeq the last WAL sequence it covers.
	SnapshotPath string
	SnapshotSeq  uint64
	// Replayed is the number of WAL records applied on top of the
	// snapshot; LastSeq the newest sequence in the recovered store.
	Replayed int
	LastSeq  uint64
	// TornTail reports that the newest readable segment ended mid-record —
	// the expected shape of a crash during an append, not corruption.
	TornTail bool
	// CorruptSnapshots lists snapshot files that failed validation and
	// Damage the WAL problem (if any) that stopped replay early. Both
	// empty on a clean recovery.
	CorruptSnapshots []string
	Damage           []string
}

// Open creates or recovers a durable store in opts.Dir. The returned
// Recovery describes what was found; callers that only care about the
// store may ignore it. The store must be Closed to drain the WAL.
func Open(opts Options) (*Store, *Recovery, error) {
	if opts.Dir == "" {
		return nil, nil, fmt.Errorf("tsdb: Open requires Options.Dir (use New for a memory-only store)")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("tsdb: create data dir: %w", err)
	}
	st := New(opts)
	st.dir = st.opts.Dir
	rec := &Recovery{}

	snaps, err := listSnapshots(st.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("tsdb: list snapshots: %w", err)
	}
	st.snapshots.Store(int64(len(snaps)))
	for _, sf := range snaps {
		data, rerr := os.ReadFile(sf.path)
		var snap *snapshotState
		if rerr == nil {
			snap, rerr = decodeSnapshot(data, st.opts)
		}
		if rerr != nil {
			rec.CorruptSnapshots = append(rec.CorruptSnapshots,
				fmt.Sprintf("%s: %v", filepath.Base(sf.path), rerr))
			continue
		}
		st.installSnapshot(snap)
		rec.SnapshotPath = sf.path
		rec.SnapshotSeq = snap.lastSeq
		if info, serr := os.Stat(sf.path); serr == nil {
			st.lastSnapUnix.Store(info.ModTime().UnixMilli())
		}
		break
	}

	segs, err := listWALSegments(st.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("tsdb: list wal segments: %w", err)
	}
	// Skip segments the snapshot fully covers (every record ≤ SnapshotSeq):
	// corruption there cannot matter, and replay must not stop on it.
	start := 0
	for i := range segs {
		if i+1 < len(segs) && segs[i+1].firstSeq <= rec.SnapshotSeq+1 {
			start = i + 1
		}
	}
	last := rec.SnapshotSeq
	for _, seg := range segs[start:] {
		data, rerr := os.ReadFile(seg.path)
		if rerr != nil {
			return nil, nil, fmt.Errorf("tsdb: read wal segment: %w", rerr)
		}
		gap := false
		_, torn, damage := scanWALBytes(data, func(r *walRecord) bool {
			if r.seq <= last {
				return true // covered by the snapshot
			}
			if r.seq != last+1 {
				gap = true
				return false
			}
			if _, err := st.ingest(r.node, r.ts, &r.vals, false); err != nil {
				gap = true // cannot happen while opening, but stay safe
				return false
			}
			last = r.seq
			rec.Replayed++
			return true
		})
		if gap {
			rec.Damage = append(rec.Damage,
				fmt.Sprintf("%s: sequence gap after %d", filepath.Base(seg.path), last))
			break
		}
		if damage != "" {
			rec.Damage = append(rec.Damage,
				fmt.Sprintf("%s: %s", filepath.Base(seg.path), damage))
			break
		}
		if torn {
			rec.TornTail = true
			break // anything after a torn tail would be a sequence gap
		}
	}
	rec.LastSeq = last
	st.replayed.Store(int64(rec.Replayed))

	w, err := openWALSegment(st.dir, last, st.opts.Fsync)
	if err != nil {
		return nil, nil, err
	}
	st.wal = w
	if st.opts.SnapshotEvery > 0 {
		st.nextSnapAt.Store(last + uint64(st.opts.SnapshotEvery))
	}
	if st.opts.Fsync == FsyncBatch {
		st.flushStop = make(chan struct{})
		st.flushDone = make(chan struct{})
		go st.flusher()
	}
	return st, rec, nil
}

// installSnapshot adopts a decoded snapshot's shards, rewiring the
// store-wide eviction counter and cache (restored blocks get fresh cache
// epochs — epochs are per-process, never persisted).
func (st *Store) installSnapshot(snap *snapshotState) {
	for _, n := range snap.nodes {
		sh := &shard{}
		for ci, cs := range n.chans {
			for _, s := range []*series{cs.raw, cs.r10.ser, cs.r60.ser} {
				s.evicted = &st.evicted
				s.cache = st.cache
				if st.cache != nil {
					for _, blk := range s.blocks {
						blk.id = st.cache.nextEpoch()
					}
				}
			}
			sh.chans[ci] = cs
		}
		st.shards[n.name] = sh
	}
}

// flusher is the FsyncBatch background loop: one fsync per FlushEvery
// tick. WAL errors are sticky, so a failed sync here surfaces on the next
// Ingest; the flusher just stops (nothing it retries can succeed).
func (st *Store) flusher() {
	defer close(st.flushDone)
	t := time.NewTicker(st.opts.FlushEvery)
	defer t.Stop()
	for {
		select {
		case <-st.flushStop:
			return
		case <-t.C:
			if err := st.wal.sync(); err != nil {
				return
			}
		}
	}
}

// maybeSnapshot triggers an automatic snapshot once the WAL sequence
// crosses the next threshold. The compare-and-swap elects exactly one
// ingester and advances the threshold first, so a failing snapshot is
// retried next interval instead of on every call.
func (st *Store) maybeSnapshot(seq uint64) {
	if st.wal == nil || st.opts.SnapshotEvery <= 0 || seq == 0 {
		return
	}
	at := st.nextSnapAt.Load()
	if at == 0 || seq < at || !st.nextSnapAt.CompareAndSwap(at, seq+uint64(st.opts.SnapshotEvery)) {
		return
	}
	// Best-effort: a snapshot failure (full disk, stuck WAL) does not fail
	// the ingest that happened to cross the threshold — the WAL still has
	// every record, and the sticky WAL error surfaces on appends.
	_ = st.Snapshot()
}

// Snapshot writes a full-state snapshot covering everything ingested so
// far, rotates the WAL, and prunes snapshots and WAL segments the
// retention policy (keep two snapshots, keep the WAL back to the older
// one) no longer needs. Safe to call concurrently with ingest and queries;
// concurrent Snapshot calls serialise.
func (st *Store) Snapshot() error {
	if st.wal == nil {
		return fmt.Errorf("tsdb: memory-only store cannot snapshot (no data directory)")
	}
	st.snapMu.Lock()
	defer st.snapMu.Unlock()
	lastSeq, body := st.snapshotNow()
	if _, err := writeSnapshotFile(st.dir, lastSeq, body); err != nil {
		return err
	}
	if err := st.wal.rotate(); err != nil {
		return err
	}
	if err := st.prune(); err != nil {
		return err
	}
	st.lastSnapUnix.Store(time.Now().UnixMilli())
	return nil
}

// snapshotNow serialises the store under every shard lock (sorted node
// order) — a consistent cut. Holding st.mu.RLock across the shard locks
// keeps new shards from appearing mid-walk, and because every WAL append
// happens under a shard lock, wal.lastSeq() taken here is exactly the
// state's coverage.
func (st *Store) snapshotNow() (uint64, []byte) {
	st.mu.RLock()
	nodes := make([]string, 0, len(st.shards))
	for n := range st.shards {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	shards := make([]*shard, len(nodes))
	for i, n := range nodes {
		shards[i] = st.shards[n]
	}
	for _, sh := range shards {
		sh.mu.Lock()
	}
	lastSeq := st.wal.lastSeq()
	body := snapshotBody(lastSeq, nodes, shards)
	for _, sh := range shards {
		sh.mu.Unlock()
	}
	st.mu.RUnlock()
	return lastSeq, body
}

// prune removes all but the two newest snapshots, then the WAL segments
// fully covered by the older retained snapshot. With fewer than two
// snapshots on disk no WAL is deleted — the log must still reconstruct
// everything in case the only snapshot is lost.
func (st *Store) prune() error {
	snaps, err := listSnapshots(st.dir)
	if err != nil {
		return fmt.Errorf("tsdb: list snapshots: %w", err)
	}
	const keepSnaps = 2
	for _, sf := range snaps[min(keepSnaps, len(snaps)):] {
		if err := os.Remove(sf.path); err != nil {
			return fmt.Errorf("tsdb: prune snapshot: %w", err)
		}
	}
	if len(snaps) > keepSnaps {
		snaps = snaps[:keepSnaps]
	}
	st.snapshots.Store(int64(len(snaps)))
	if len(snaps) >= keepSnaps {
		keepSeq := snaps[keepSnaps-1].lastSeq
		segs, err := listWALSegments(st.dir)
		if err != nil {
			return fmt.Errorf("tsdb: list wal segments: %w", err)
		}
		// A segment is fully ≤ keepSeq exactly when its successor starts at
		// or before keepSeq+1; the newest segment (the live one) never is.
		for i, seg := range segs {
			if i+1 >= len(segs) || segs[i+1].firstSeq > keepSeq+1 {
				break
			}
			if err := os.Remove(seg.path); err != nil {
				return fmt.Errorf("tsdb: prune wal segment: %w", err)
			}
		}
	}
	return syncDir(st.dir)
}
