package tsdb

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"testing"
)

// seedSealed fills a store with n points for one node so that most blocks
// are sealed (BlockPoints 128 → n/128 sealed blocks plus one open).
func seedSealed(tb testing.TB, st *Store, node string, n int) {
	tb.Helper()
	for i := 0; i < n; i++ {
		err := st.Ingest(node, float64(i), Sample{
			PNode: 90 + math.Sin(float64(i)/7)*20, PCPU: 40, PMEM: 12,
			PNodePrime: 90, IPMI: math.NaN(),
		})
		if err != nil {
			tb.Fatal(err)
		}
	}
}

// TestCacheByteIdenticalResults is the cache's correctness law: a warm
// read must render to exactly the bytes a cold read renders to, raw and
// rollup, per-node and aggregated.
func TestCacheByteIdenticalResults(t *testing.T) {
	checkNoLeaks(t)
	st := New(Options{BlockPoints: 128, RetainRaw: 5000, Retain10s: 600, Retain60s: 100})
	defer st.Close()
	seedSealed(t, st, "a", 2000)
	seedSealed(t, st, "b", 2000)

	for _, req := range []struct {
		node string
		res  int
	}{{"a", 1}, {"a", 10}, {"b", 60}, {"", 1}, {"", 10}} {
		st.cache.purge()
		cold, err := st.QuerySeries(req.node, "p_node", 0, 2000, req.res)
		if err != nil {
			t.Fatalf("cold %+v: %v", req, err)
		}
		warm, err := st.QuerySeries(req.node, "p_node", 0, 2000, req.res)
		if err != nil {
			t.Fatalf("warm %+v: %v", req, err)
		}
		cb, _ := json.Marshal(cold)
		wb, _ := json.Marshal(warm)
		if !bytes.Equal(cb, wb) {
			t.Fatalf("%+v: warm read differs from cold read", req)
		}
		if len(cold.Points) == 0 {
			t.Fatalf("%+v returned no points", req)
		}
	}
	hits, misses, points := st.cache.stats()
	if hits == 0 || misses == 0 || points == 0 {
		t.Fatalf("cache never exercised: hits %d, misses %d, points %d", hits, misses, points)
	}
}

// TestCacheInvalidateOnEviction: retention evicting a sealed block must
// drop its cache entry — the budget shrinks and re-reads stay correct.
func TestCacheInvalidateOnEviction(t *testing.T) {
	st := New(Options{BlockPoints: 16, RetainRaw: 64, Retain10s: 0, Retain60s: 0})
	defer st.Close()
	seedSealed(t, st, "n", 64)
	if _, err := st.Query("n", ChanPNode, 0, 64, Raw); err != nil {
		t.Fatal(err)
	}
	_, _, before := st.cache.stats()
	if before == 0 {
		t.Fatal("sealed blocks not cached")
	}
	// Push far enough that every original block falls out of retention.
	seedSealed(t, st, "n", 64)
	for i := 64; i < 256; i++ {
		if err := st.Ingest("n", float64(i), Sample{PNode: 1, IPMI: math.NaN()}); err != nil {
			t.Fatal(err)
		}
	}
	pts, err := st.Query("n", ChanPNode, 0, 1e9, Raw)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Time <= pts[i-1].Time {
			t.Fatalf("points out of order after eviction: %v then %v", pts[i-1], pts[i])
		}
	}
	_, _, after := st.cache.stats()
	if after > before+64 {
		t.Fatalf("cache retains evicted blocks: %d points cached (was %d, retention 64)", after, before)
	}
}

// TestCacheDisabled: CachePoints < 0 must run the pooled-decode path only
// and still answer correctly.
func TestCacheDisabled(t *testing.T) {
	st := New(Options{BlockPoints: 128, RetainRaw: 1000, CachePoints: -1})
	defer st.Close()
	seedSealed(t, st, "n", 500)
	pts, err := st.Query("n", ChanPNode, 0, 500, Raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 500 {
		t.Fatalf("%d points, want 500", len(pts))
	}
	if st.cache != nil {
		t.Fatal("negative CachePoints should disable the cache")
	}
}

// TestQueryWarmAllocs is the read-path allocation guard: once the sealed
// blocks are cached, a raw Query may allocate the result slice and
// (essentially) nothing else. The bound of 4 covers the one make plus the
// emit closure and its context; the point is that per-point and per-block
// allocations — decode state, scratch slices — never reappear.
func TestQueryWarmAllocs(t *testing.T) {
	st := New(Options{BlockPoints: 128, RetainRaw: 5000})
	defer st.Close()
	seedSealed(t, st, "n", 2000)
	warm := func() {
		pts, err := st.Query("n", ChanPNode, 0, 1900, Raw)
		if err != nil || len(pts) < 1900 {
			t.Fatalf("query: %d points, err %v", len(pts), err)
		}
	}
	warm()
	allocs := testing.AllocsPerRun(50, warm)
	if allocs > 4 {
		t.Fatalf("warm raw query of ~1900 points allocates %.1f times, want <= 4 (result slice + closure)", allocs)
	}
}

// BenchmarkQueryCached measures the sealed-block read path cold (cache
// purged every iteration, full Gorilla decode) and warm (decoded blocks
// served from the LRU). The warm/cold ratio is the cache's win; the
// acceptance bar is warm >= 3x faster.
func BenchmarkQueryCached(b *testing.B) {
	st := New(Options{BlockPoints: 128, RetainRaw: 20000})
	defer st.Close()
	seedSealed(b, st, "n", 10000)

	run := func(b *testing.B, purge bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if purge {
				st.cache.purge()
			}
			pts, err := st.Query("n", ChanPNode, 0, 9900, Raw)
			if err != nil {
				b.Fatal(err)
			}
			if len(pts) < 9900 {
				b.Fatalf("%d points", len(pts))
			}
		}
	}
	b.Run("cold", func(b *testing.B) { run(b, true) })
	b.Run("warm", func(b *testing.B) { run(b, false) })
}

// BenchmarkAggregate measures the multi-node fan-out with warm caches —
// the parallel per-shard Query plus the serial bit-exact merge.
func BenchmarkAggregate(b *testing.B) {
	st := New(Options{BlockPoints: 128, RetainRaw: 10000})
	defer st.Close()
	for n := 0; n < 8; n++ {
		seedSealed(b, st, fmt.Sprintf("node-%d", n), 4000)
	}
	if _, err := st.Aggregate(ChanPNode, 0, 4000, Raw); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := st.Aggregate(ChanPNode, 0, 4000, Raw)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) < 3900 {
			b.Fatalf("%d points", len(pts))
		}
	}
}
