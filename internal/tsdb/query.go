package tsdb

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Point is one decoded sample or rollup bucket. At Raw resolution Value is
// the ingested float64 (bit-exact, NaN included), Min == Max == Value and
// Count is 1. At rollup resolutions Value/Min/Max summarise the non-NaN
// raw points in the bucket and Count is how many there were; a bucket
// whose window held only NaN gaps has NaN stats and Count 0.
type Point struct {
	Time  float64 // seconds; bucket start for rollups
	Value float64 // raw value, or bucket mean
	Min   float64
	Max   float64
	Count int
}

// clampMillis converts float milliseconds to int64, saturating instead of
// overflowing so callers can pass ±huge window bounds ("everything").
func clampMillis(ms float64) int64 {
	if math.IsNaN(ms) {
		return 0
	}
	if ms >= math.MaxInt64 {
		return math.MaxInt64
	}
	if ms <= math.MinInt64 {
		return math.MinInt64
	}
	return int64(ms)
}

func validRes(res Resolution) error {
	switch res {
	case Raw, TenSeconds, Minute:
		return nil
	}
	return fmt.Errorf("tsdb: unsupported resolution %ds (want 1, 10 or 60)", int(res))
}

// Query returns node's channel points with from ≤ t ≤ to (seconds) at the
// requested resolution, oldest first. Raw queries decode the exact
// ingested float64s. The node's shard is locked for the duration of the
// decode; other nodes' ingest paths are unaffected.
func (st *Store) Query(node string, ch Channel, from, to float64, res Resolution) ([]Point, error) {
	idx, err := channelIndex(ch)
	if err != nil {
		return nil, err
	}
	if err := validRes(res); err != nil {
		return nil, err
	}
	st.mu.RLock()
	sh := st.shards[node]
	st.mu.RUnlock()
	if sh == nil {
		return nil, fmt.Errorf("tsdb: no history for node %q", node)
	}
	fromMs := clampMillis(math.Floor(from * 1000))
	toMs := clampMillis(math.Ceil(to * 1000))
	st.queries.Add(1)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cs := sh.chans[idx]
	if res == Raw {
		// sizeHint counts the overlapping blocks' points without decoding
		// anything, so the result slice is allocated exactly once — on a
		// cache hit that single make is the query's only per-point
		// allocation.
		pts := make([]Point, 0, cs.raw.sizeHint(fromMs, toMs))
		err = cs.raw.query(fromMs, toMs, func(t int64, vals []float64) {
			v := vals[0]
			pts = append(pts, Point{Time: float64(t) / 1000, Value: v, Min: v, Max: v, Count: 1})
		})
		st.pointsOut.Add(int64(len(pts)))
		return pts, err
	}
	ru := cs.rollupFor(res)
	pts := make([]Point, 0, ru.ser.sizeHint(fromMs, toMs)+1)
	err = ru.ser.query(fromMs, toMs, func(t int64, vals []float64) {
		pts = append(pts, Point{
			Time:  float64(t) / 1000,
			Value: vals[0], Min: vals[1], Max: vals[2],
			Count: int(vals[3]),
		})
	})
	if err != nil {
		return nil, err
	}
	if p, ok := ru.openPoint(fromMs, toMs); ok {
		pts = append(pts, p)
	}
	st.pointsOut.Add(int64(len(pts)))
	return pts, nil
}

// Latest returns the newest retained raw point of node's channel without
// decoding the whole series: only the youngest non-empty block is walked.
// It backs the obs /api/v1/query instant endpoint and dashboard-style
// "current power" reads.
func (st *Store) Latest(node string, ch Channel) (Point, error) {
	idx, err := channelIndex(ch)
	if err != nil {
		return Point{}, err
	}
	st.mu.RLock()
	sh := st.shards[node]
	st.mu.RUnlock()
	if sh == nil {
		return Point{}, fmt.Errorf("tsdb: no history for node %q", node)
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	blocks := sh.chans[idx].raw.blocks
	for i := len(blocks) - 1; i >= 0; i-- {
		blk := blocks[i]
		if blk.n == 0 {
			continue
		}
		var last Point
		err := blk.decode(func(t int64, vals []float64) bool {
			v := vals[0]
			last = Point{Time: float64(t) / 1000, Value: v, Min: v, Max: v, Count: 1}
			return true
		})
		if err != nil {
			return Point{}, err
		}
		st.queries.Add(1)
		st.pointsOut.Add(1)
		return last, nil
	}
	return Point{}, fmt.Errorf("tsdb: no points for node %q channel %q", node, ch)
}

// Aggregate sums a channel across every node: per timestamp (raw) or
// bucket (rollups), Value is the sum of node means, Min/Max the summed
// per-node bounds (a lower/upper envelope for cluster power) and Count the
// total contributing raw points. Nodes without data in a bucket simply do
// not contribute. NaN node values are skipped; a timestamp where every
// node was NaN keeps NaN stats with Count 0.
func (st *Store) Aggregate(ch Channel, from, to float64, res Resolution) ([]Point, error) {
	if _, err := channelIndex(ch); err != nil {
		return nil, err
	}
	if err := validRes(res); err != nil {
		return nil, err
	}
	// Fan the per-node reads out across shards (each holds its own lock, so
	// the decodes genuinely run in parallel), then merge serially in sorted
	// node order. Floating-point addition is not associative, so the serial
	// merge is what keeps Aggregate bit-identical to the old single-threaded
	// walk regardless of which worker finishes first.
	nodes := st.Nodes()
	results := make([][]Point, len(nodes))
	errs := make([]error, len(nodes))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(nodes) {
		workers = len(nodes)
	}
	if workers > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(nodes) {
						return
					}
					results[i], errs[i] = st.Query(nodes[i], ch, from, to, res)
				}
			}()
		}
		wg.Wait()
	} else {
		for i, node := range nodes {
			results[i], errs[i] = st.Query(node, ch, from, to, res)
		}
	}
	for i := range nodes {
		if errs[i] != nil {
			return nil, errs[i]
		}
	}
	return MergeNodeSeries(results), nil
}

// MergeNodeSeries merges per-node series into the cross-node aggregate:
// per timestamp (raw) or bucket (rollups), Value is the sum of node means,
// Min/Max the summed per-node bounds and Count the total contributing raw
// points; a timestamp where every node was NaN keeps NaN stats with
// Count 0. Floating-point addition is not associative, so the accumulation
// order is exactly the slice order — callers must pass the series in
// sorted node order to get results bit-identical to Aggregate. This is the
// one merge discipline shared by Aggregate's parallel fan-out and the
// fleet router's scatter-gather federation, which is what keeps a sharded
// deployment's aggregates byte-for-byte equal to a single store's.
func MergeNodeSeries(results [][]Point) []Point {
	type agg struct {
		sum, min, max float64
		count         int
		nodes         int
	}
	acc := map[int64]*agg{}
	for i := range results {
		for _, p := range results[i] {
			key := int64(math.Round(p.Time * 1000))
			a := acc[key]
			if a == nil {
				a = &agg{}
				acc[key] = a
			}
			if !math.IsNaN(p.Value) {
				a.sum += p.Value
				a.min += p.Min
				a.max += p.Max
				a.count += p.Count
				a.nodes++
			}
		}
	}
	keys := make([]int64, 0, len(acc))
	for k := range acc {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	pts := make([]Point, 0, len(keys))
	for _, k := range keys {
		a := acc[k]
		p := Point{Time: float64(k) / 1000, Value: math.NaN(), Min: math.NaN(), Max: math.NaN()}
		if a.nodes > 0 {
			p.Value, p.Min, p.Max, p.Count = a.sum, a.min, a.max, a.count
		}
		pts = append(pts, p)
	}
	return pts
}

// Stats summarises the store's footprint.
type Stats struct {
	// Nodes and Series count the shards and their raw series (one per
	// channel per node).
	Nodes  int `json:"nodes"`
	Series int `json:"series"`
	// Points is the number of raw points currently retained; Bytes the
	// compressed footprint including rollups, RawBytes the raw series
	// alone.
	Points   int64 `json:"points"`
	Bytes    int64 `json:"bytes"`
	RawBytes int64 `json:"raw_bytes"`
	// BytesPerPoint is RawBytes/Points; CompressionRatio compares it with
	// the 16 B (8 B timestamp + 8 B float64) uncompressed baseline. Both
	// are 0 while the store is empty.
	BytesPerPoint    float64 `json:"bytes_per_point"`
	CompressionRatio float64 `json:"compression_ratio"`
	// Ingested counts Ingest calls accepted since the store was created
	// (each writes NumChannels points). Queries counts per-series reads
	// (Query and Latest calls; one Aggregate issues one per node) and
	// PointsReturned the points those reads emitted. EvictedPoints counts
	// raw and rollup points dropped by retention.
	Ingested       int64 `json:"ingested"`
	Queries        int64 `json:"queries"`
	PointsReturned int64 `json:"points_returned"`
	EvictedPoints  int64 `json:"evicted_points"`
	// CacheHits/CacheMisses count sealed-block lookups in the decoded-block
	// cache and CachePoints the decoded points it currently holds; all zero
	// when the cache is disabled (Options.CachePoints < 0).
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	CachePoints int64 `json:"cache_points"`
	// Durability counters, all zero on a memory-only store: WAL bytes,
	// fsyncs, and records written since Open; records replayed by startup
	// recovery; snapshot files on disk; and the age of the newest snapshot
	// in seconds (-1 when there is none).
	WALBytes           int64   `json:"wal_bytes"`
	WALFsyncs          int64   `json:"wal_fsyncs"`
	WALRecords         int64   `json:"wal_records"`
	ReplayedRecords    int64   `json:"wal_replayed_records"`
	Snapshots          int64   `json:"snapshots"`
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds"`
}

// Stats walks every shard; it takes each shard lock briefly.
func (st *Store) Stats() Stats {
	st.mu.RLock()
	shards := make([]*shard, 0, len(st.shards))
	//lint:ignore maporder stats are integer sums over independent shards; visit order is immaterial
	for _, sh := range st.shards {
		shards = append(shards, sh)
	}
	st.mu.RUnlock()
	var out Stats
	out.Nodes = len(shards)
	out.Ingested = st.ingested.Load()
	out.Queries = st.queries.Load()
	out.PointsReturned = st.pointsOut.Load()
	out.EvictedPoints = st.evicted.Load()
	if st.cache != nil {
		hits, misses, points := st.cache.stats()
		out.CacheHits, out.CacheMisses, out.CachePoints = hits, misses, int64(points)
	}
	if st.wal != nil {
		out.WALBytes = st.wal.bytes.Load()
		out.WALFsyncs = st.wal.fsyncs.Load()
		out.WALRecords = st.wal.records.Load()
	}
	out.ReplayedRecords = st.replayed.Load()
	out.Snapshots = st.snapshots.Load()
	out.SnapshotAgeSeconds = -1
	if ms := st.lastSnapUnix.Load(); ms > 0 {
		out.SnapshotAgeSeconds = float64(time.Now().UnixMilli()-ms) / 1000
	}
	for _, sh := range shards {
		sh.mu.Lock()
		for _, cs := range sh.chans {
			out.Series++
			out.Points += int64(cs.raw.points)
			raw := int64(cs.raw.bytes())
			out.RawBytes += raw
			out.Bytes += raw + int64(cs.r10.ser.bytes()) + int64(cs.r60.ser.bytes())
		}
		sh.mu.Unlock()
	}
	if out.Points > 0 {
		out.BytesPerPoint = float64(out.RawBytes) / float64(out.Points)
		out.CompressionRatio = 16 / out.BytesPerPoint
	}
	return out
}
