package tsdb

import (
	"runtime"
	"testing"
	"time"
)

// checkNoLeaks arms a goroutine-leak assertion for the calling test,
// mirroring the internal/cluster convention (and enforced by the same
// leakcheck analyzer): at cleanup time the goroutine count must return to
// at most what it was when the test started. The store's parallel query
// fan-out joins its workers before returning, so any surplus goroutine at
// cleanup is a wedged worker or a test-spawned reader that never exited.
func checkNoLeaks(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= before {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak: %d before, %d after\n%s", before, n, buf)
	})
}
