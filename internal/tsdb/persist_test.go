package tsdb

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// durableOpts sizes a store small enough that a short workload exercises
// block sealing, rollup flushing and retention eviction.
func durableOpts(dir string) Options {
	return Options{
		BlockPoints: 16,
		RetainRaw:   0,
		Retain10s:   0,
		Retain60s:   0,
		Dir:         dir,
		Fsync:       FsyncNever, // write-through; tests reopen in-process
		// Disable automatic snapshots unless a test asks for them.
		SnapshotEvery: -1,
	}
}

// fillSeeded ingests n pseudo-random samples across three nodes: realistic
// power levels, a sparse NaN-gapped IPMI channel, and per-node timestamp
// gaps (each second goes to one node only).
func fillSeeded(t testing.TB, st *Store, seed int64, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nodes := []string{"node-a", "node-b", "node-c"}
	const base = 1.7e9
	for i := 0; i < n; i++ {
		node := nodes[rng.Intn(len(nodes))]
		s := Sample{
			PNode:      80 + 40*rng.Float64(),
			PCPU:       30 + 20*rng.Float64(),
			PMEM:       8 + 4*rng.Float64(),
			PNodePrime: 80 + 40*rng.Float64(),
			IPMI:       math.NaN(),
		}
		if i%5 == 0 {
			s.IPMI = s.PNode + rng.Float64()
		}
		if err := st.Ingest(node, base+float64(i), s); err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
	}
}

// storeImage renders every series the store can serve — each node and the
// aggregate, every channel, every resolution — through the wire JSON
// encoding, plus the structural half of Stats. Two stores with equal
// images answer every query identically, byte for byte.
func storeImage(t testing.TB, st *Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	targets := append([]string{""}, st.Nodes()...)
	for _, node := range targets {
		for _, ch := range Channels() {
			for _, res := range Resolutions() {
				body, err := st.QuerySeries(node, string(ch), 0, 4e9, int(res))
				if err != nil {
					t.Fatalf("QuerySeries(%q, %s, %d): %v", node, ch, res, err)
				}
				b, err := json.Marshal(body)
				if err != nil {
					t.Fatalf("marshal series: %v", err)
				}
				buf.Write(b)
				buf.WriteByte('\n')
			}
		}
	}
	// Structural stats must survive recovery exactly; activity counters
	// (ingest/query/cache/WAL tallies since this process opened the store)
	// legitimately reset, so they are zeroed out of the comparison.
	stats := st.Stats()
	stats.Ingested, stats.Queries, stats.PointsReturned, stats.EvictedPoints = 0, 0, 0, 0
	stats.CacheHits, stats.CacheMisses, stats.CachePoints = 0, 0, 0
	stats.WALBytes, stats.WALFsyncs, stats.WALRecords, stats.ReplayedRecords = 0, 0, 0, 0
	stats.Snapshots, stats.SnapshotAgeSeconds = 0, 0
	b, err := json.Marshal(stats)
	if err != nil {
		t.Fatalf("marshal stats: %v", err)
	}
	buf.Write(b)
	return buf.Bytes()
}

func TestOpenRequiresDir(t *testing.T) {
	checkNoLeaks(t)
	if _, _, err := Open(Options{}); err == nil {
		t.Fatal("Open without Dir should fail")
	}
}

func TestParseFsyncPolicyRoundTrip(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncBatch, FsyncAlways, FsyncNever} {
		got, err := ParseFsyncPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v; want %v", p.String(), got, err, p)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseFsyncPolicy should reject unknown spellings")
	}
}

// TestRecoveryEquivalence is the recovery-equivalence property test: for
// ten seeded workloads (varying fsync policy, retention pressure, and
// snapshot cadence), a store that is persisted and reopened must serve
// byte-identical QuerySeries/Aggregate/Stats JSON.
func TestRecoveryEquivalence(t *testing.T) {
	checkNoLeaks(t)
	for seed := int64(0); seed < 10; seed++ {
		seed := seed
		t.Run(string(rune('0'+seed)), func(t *testing.T) {
			dir := t.TempDir()
			opts := durableOpts(dir)
			n := 300
			switch seed % 3 {
			case 0:
				opts.SnapshotEvery = 100 // auto-snapshots mid-workload
				opts.Fsync = FsyncBatch
			case 1:
				opts.RetainRaw = 128 // retention evicts during the run
				opts.Retain10s = 64
				opts.Fsync = FsyncAlways
			case 2:
				opts.CachePoints = -1 // cache off; recovery must not depend on it
			}
			st, _, err := Open(opts)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			fillSeeded(t, st, seed, n)
			want := storeImage(t, st)
			if err := st.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			st2, rec, err := Open(opts)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer func() {
				if err := st2.Close(); err != nil {
					t.Errorf("close recovered store: %v", err)
				}
			}()
			if rec.LastSeq != uint64(n) {
				t.Fatalf("recovered LastSeq = %d, want %d", rec.LastSeq, n)
			}
			if len(rec.Damage) > 0 || len(rec.CorruptSnapshots) > 0 || rec.TornTail {
				t.Fatalf("clean shutdown produced dirty recovery: %+v", rec)
			}
			if got := storeImage(t, st2); !bytes.Equal(got, want) {
				t.Fatalf("seed %d: recovered store image differs from pre-close image\npre:  %d bytes\npost: %d bytes", seed, len(want), len(got))
			}
		})
	}
}

// TestRecoverySecondReopenStable reopens twice: recovery must be a fixed
// point (the second open replays exactly what the first one persisted).
func TestRecoverySecondReopenStable(t *testing.T) {
	checkNoLeaks(t)
	dir := t.TempDir()
	opts := durableOpts(dir)
	st, _, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	fillSeeded(t, st, 42, 120)
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st2, _, err := Open(opts)
	if err != nil {
		t.Fatalf("second Open: %v", err)
	}
	img2 := storeImage(t, st2)
	if err := st2.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	st3, rec3, err := Open(opts)
	if err != nil {
		t.Fatalf("third Open: %v", err)
	}
	defer func() {
		if err := st3.Close(); err != nil {
			t.Errorf("third Close: %v", err)
		}
	}()
	if got := storeImage(t, st3); !bytes.Equal(got, img2) {
		t.Fatal("second recovery diverged from the first")
	}
	if rec3.LastSeq != 120 {
		t.Fatalf("third open LastSeq = %d, want 120", rec3.LastSeq)
	}
}

// TestSnapshotPrunesWAL checks the retention contract: after two
// snapshots, at most two snapshot files remain and WAL segments fully
// covered by the older one are gone — but never the segments the older
// snapshot still needs.
func TestSnapshotPrunesWAL(t *testing.T) {
	checkNoLeaks(t)
	dir := t.TempDir()
	st, _, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	fillSeeded(t, st, 1, 100)
	if err := st.Snapshot(); err != nil {
		t.Fatalf("first Snapshot: %v", err)
	}
	fillSeeded(t, st, 2, 100)
	if err := st.Snapshot(); err != nil {
		t.Fatalf("second Snapshot: %v", err)
	}
	fillSeeded(t, st, 3, 50)
	if err := st.Snapshot(); err != nil {
		t.Fatalf("third Snapshot: %v", err)
	}
	want := storeImage(t, st)
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	snaps, err := listSnapshots(dir)
	if err != nil {
		t.Fatalf("listSnapshots: %v", err)
	}
	if len(snaps) != 2 {
		t.Fatalf("kept %d snapshots, want 2", len(snaps))
	}
	if snaps[0].lastSeq != 250 || snaps[1].lastSeq != 200 {
		t.Fatalf("retained snapshots cover %d and %d, want 250 and 200", snaps[0].lastSeq, snaps[1].lastSeq)
	}
	segs, err := listWALSegments(dir)
	if err != nil {
		t.Fatalf("listWALSegments: %v", err)
	}
	for _, seg := range segs {
		if seg.firstSeq < 100 {
			t.Fatalf("segment %s should have been pruned (fully covered by the kept snapshot at 200)", filepath.Base(seg.path))
		}
	}

	// The whole point of keeping two: delete the newest snapshot outright
	// and recovery must still be complete.
	if err := os.Remove(snaps[0].path); err != nil {
		t.Fatalf("remove newest snapshot: %v", err)
	}
	st2, rec, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatalf("reopen without newest snapshot: %v", err)
	}
	defer func() {
		if err := st2.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	if rec.SnapshotSeq != 200 || rec.LastSeq != 250 {
		t.Fatalf("fallback recovery: snapshot %d last %d, want 200 and 250", rec.SnapshotSeq, rec.LastSeq)
	}
	if got := storeImage(t, st2); !bytes.Equal(got, want) {
		t.Fatal("recovery from the older snapshot lost data")
	}
}

// TestWALRecordRoundTrip pins the record codec: encode → frame-scan →
// decode must reproduce the record exactly, NaN channels included.
func TestWALRecordRoundTrip(t *testing.T) {
	rec := walRecord{
		seq:  7,
		ts:   -1234567,
		node: "node/π",
		vals: [NumChannels]float64{1.5, math.NaN(), math.Inf(1), -0.0, 42},
	}
	framed, err := appendWALRecord([]byte(walMagic), &rec)
	if err != nil {
		t.Fatalf("appendWALRecord: %v", err)
	}
	var got walRecord
	applied, torn, damage := scanWALBytes(framed, func(r *walRecord) bool {
		got = *r
		return true
	})
	if applied != 1 || torn || damage != "" {
		t.Fatalf("scan: applied=%d torn=%v damage=%q", applied, torn, damage)
	}
	if got.seq != rec.seq || got.ts != rec.ts || got.node != rec.node {
		t.Fatalf("round trip: got %+v want %+v", got, rec)
	}
	for i := range rec.vals {
		if math.Float64bits(got.vals[i]) != math.Float64bits(rec.vals[i]) {
			t.Fatalf("channel %d: %x != %x", i, math.Float64bits(got.vals[i]), math.Float64bits(rec.vals[i]))
		}
	}
	if _, err := appendWALRecord(nil, &walRecord{node: strings.Repeat("x", maxNodeIDLen+1)}); err == nil {
		t.Fatal("oversized node ID should fail to encode")
	}
}

// TestSnapshotDeterministic pins that serialising the same state twice
// yields the same bytes — the property that makes snapshot files
// comparable across runs and keeps the fuzz corpus stable.
func TestSnapshotDeterministic(t *testing.T) {
	checkNoLeaks(t)
	dir := t.TempDir()
	st, _, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer func() {
		if err := st.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	fillSeeded(t, st, 5, 80)
	seq1, body1 := st.snapshotNow()
	seq2, body2 := st.snapshotNow()
	if seq1 != seq2 || !bytes.Equal(body1, body2) {
		t.Fatal("snapshotNow is not deterministic for a quiescent store")
	}
	snap, err := decodeSnapshot(append(append([]byte(snapMagic), body1...), crcTrailer(body1)...), st.opts)
	if err != nil {
		t.Fatalf("decodeSnapshot: %v", err)
	}
	if snap.lastSeq != 80 {
		t.Fatalf("snapshot covers %d, want 80", snap.lastSeq)
	}
}

// TestIngestAfterWALCloseFails pins the WAL-before-memory invariant: once
// the WAL cannot accept the record, Ingest must fail without applying.
func TestIngestAfterWALCloseFails(t *testing.T) {
	checkNoLeaks(t)
	dir := t.TempDir()
	st, _, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	fillSeeded(t, st, 9, 10)
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := st.Ingest("node-a", 2e9, Sample{}); err == nil {
		t.Fatal("Ingest after Close should fail")
	}
}

func BenchmarkWALAppend(b *testing.B) {
	dir := b.TempDir()
	w, err := openWALSegment(dir, 0, FsyncBatch)
	if err != nil {
		b.Fatalf("openWALSegment: %v", err)
	}
	defer func() {
		if err := w.close(); err != nil {
			b.Errorf("close: %v", err)
		}
	}()
	vals := [NumChannels]float64{101.5, 55.25, 9.75, 102, math.NaN()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.append("node-17", int64(i)*1000, &vals); err != nil {
			b.Fatalf("append: %v", err)
		}
	}
}

func BenchmarkRecover(b *testing.B) {
	dir := b.TempDir()
	opts := durableOpts(dir)
	opts.BlockPoints = 512
	st, _, err := Open(opts)
	if err != nil {
		b.Fatalf("Open: %v", err)
	}
	fillSeeded(b, st, 3, 5000)
	if err := st.Snapshot(); err != nil {
		b.Fatalf("Snapshot: %v", err)
	}
	fillSeeded(b, st, 4, 2000) // WAL tail on top of the snapshot
	if err := st.Close(); err != nil {
		b.Fatalf("Close: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, rec, err := Open(opts)
		if err != nil {
			b.Fatalf("Open: %v", err)
		}
		if rec.LastSeq != 7000 {
			b.Fatalf("recovered LastSeq = %d, want 7000", rec.LastSeq)
		}
		b.StopTimer()
		if err := st.Close(); err != nil {
			b.Fatalf("Close: %v", err)
		}
		// Closing wrote nothing new, but it did leave a fresh empty
		// segment behind; keep the directory from growing across
		// iterations by removing segments with no records.
		b.StartTimer()
	}
}

// crcTrailer renders the 4-byte CRC32 trailer for a snapshot body.
func crcTrailer(body []byte) []byte {
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(body))
	return crc[:]
}
