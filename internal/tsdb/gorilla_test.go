package tsdb

import (
	"math"
	"math/rand"
	"testing"
)

// collect decodes a whole series into parallel slices.
func collect(t *testing.T, s *series) (ts []int64, vals [][]float64) {
	t.Helper()
	err := s.query(math.MinInt64, math.MaxInt64, func(tm int64, v []float64) {
		ts = append(ts, tm)
		vals = append(vals, append([]float64(nil), v...))
	})
	if err != nil {
		t.Fatal(err)
	}
	return ts, vals
}

func sameBits(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// TestBlockRoundTripRandomWalk is the core property test: random walks,
// constants, and NaN-bearing series must decode bit-exactly across block
// boundaries, under regular and jittered timestamps.
func TestBlockRoundTripRandomWalk(t *testing.T) {
	cases := []struct {
		name string
		gen  func(r *rand.Rand, i int, prev float64) float64
	}{
		{"walk", func(r *rand.Rand, i int, prev float64) float64 {
			return prev + r.NormFloat64()
		}},
		{"constant", func(r *rand.Rand, i int, prev float64) float64 {
			return 92.5
		}},
		{"sparse-nan", func(r *rand.Rand, i int, prev float64) float64 {
			if i%10 != 0 {
				return math.NaN()
			}
			return 80 + 20*r.Float64()
		}},
		{"mixed-extremes", func(r *rand.Rand, i int, prev float64) float64 {
			switch r.Intn(6) {
			case 0:
				return 0
			case 1:
				return math.Inf(1)
			case 2:
				return math.NaN()
			case 3:
				return math.SmallestNonzeroFloat64
			case 4:
				return -prev
			default:
				return r.NormFloat64() * math.Pow(10, float64(r.Intn(40)-20))
			}
		}},
	}
	timings := []struct {
		name string
		dt   func(r *rand.Rand) int64
	}{
		{"regular-1s", func(r *rand.Rand) int64 { return 1000 }},
		{"jitter", func(r *rand.Rand) int64 { return 950 + r.Int63n(100) }},
		{"gappy", func(r *rand.Rand) int64 {
			if r.Intn(20) == 0 {
				return 3_600_000 // an hour-long outage
			}
			return 1000
		}},
	}
	for _, tc := range cases {
		for _, tg := range timings {
			t.Run(tc.name+"/"+tg.name, func(t *testing.T) {
				r := rand.New(rand.NewSource(7))
				const n = 2000 // several 256-point blocks
				s := newSeries(1, 256, 0)
				wantT := make([]int64, n)
				wantV := make([]float64, n)
				tm, prev := int64(0), 90.0
				for i := 0; i < n; i++ {
					v := tc.gen(r, i, prev)
					if !math.IsNaN(v) {
						prev = v
					}
					wantT[i], wantV[i] = tm, v
					s.append(tm, []float64{v})
					tm += tg.dt(r)
				}
				gotT, gotV := collect(t, s)
				if len(gotT) != n {
					t.Fatalf("decoded %d points, want %d", len(gotT), n)
				}
				for i := range gotT {
					if gotT[i] != wantT[i] {
						t.Fatalf("point %d: time %d, want %d", i, gotT[i], wantT[i])
					}
					if !sameBits(gotV[i][0], wantV[i]) {
						t.Fatalf("point %d: value %x, want %x (%g vs %g)",
							i, math.Float64bits(gotV[i][0]), math.Float64bits(wantV[i]), gotV[i][0], wantV[i])
					}
				}
			})
		}
	}
}

// TestBlockMultiChainRoundTrip exercises the k=4 rollup layout: four
// independent XOR chains interleaved behind one timestamp chain.
func TestBlockMultiChainRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	const n = 700
	s := newSeries(4, 128, 0)
	want := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := []float64{
			90 + r.NormFloat64(),
			math.NaN(),
			float64(i),
			math.Float64frombits(r.Uint64()), // adversarial bit patterns
		}
		want[i] = append([]float64(nil), row...)
		s.append(int64(i)*1000, row)
	}
	ts, vals := collect(t, s)
	if len(ts) != n {
		t.Fatalf("decoded %d points, want %d", len(ts), n)
	}
	for i := range vals {
		for j := range vals[i] {
			if !sameBits(vals[i][j], want[i][j]) {
				t.Fatalf("point %d chain %d: %x want %x", i, j,
					math.Float64bits(vals[i][j]), math.Float64bits(want[i][j]))
			}
		}
	}
}

// TestSeriesRangeQuery checks the [from, to] filter and early cutoff.
func TestSeriesRangeQuery(t *testing.T) {
	s := newSeries(1, 64, 0)
	for i := 0; i < 500; i++ {
		s.append(int64(i)*1000, []float64{float64(i)})
	}
	var got []int64
	if err := s.query(100_000, 199_000, func(tm int64, _ []float64) {
		got = append(got, tm)
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 || got[0] != 100_000 || got[len(got)-1] != 199_000 {
		t.Fatalf("range query returned %d points [%d..%d]", len(got), got[0], got[len(got)-1])
	}
}

// TestSeriesRetentionEvictsOldest: the ring must keep at least maxPoints
// and drop whole old blocks, never the newest data.
func TestSeriesRetentionEvictsOldest(t *testing.T) {
	s := newSeries(1, 50, 200)
	const n = 1000
	for i := 0; i < n; i++ {
		s.append(int64(i)*1000, []float64{float64(i)})
	}
	if s.points < 200 || s.points > 200+50 {
		t.Fatalf("retained %d points, want within [200, 250]", s.points)
	}
	ts, vals := func() ([]int64, [][]float64) {
		var ts []int64
		var vals [][]float64
		s.query(math.MinInt64, math.MaxInt64, func(tm int64, v []float64) {
			ts = append(ts, tm)
			vals = append(vals, append([]float64(nil), v...))
		})
		return ts, vals
	}()
	if len(ts) != s.points {
		t.Fatalf("decoded %d, accounting says %d", len(ts), s.points)
	}
	// The newest point must survive; the oldest must be gone.
	if last := vals[len(vals)-1][0]; last != n-1 {
		t.Fatalf("newest retained value %g, want %d", last, n-1)
	}
	if first := vals[0][0]; first < float64(n-250) {
		t.Fatalf("oldest retained value %g; eviction lagging", first)
	}
}

// TestBitstreamTruncationDetected: a corrupted (short) stream must error,
// not fabricate points.
func TestBitstreamTruncationDetected(t *testing.T) {
	b := newBlock(1)
	for i := 0; i < 100; i++ {
		b.append(int64(i)*1000, []float64{float64(i) * 1.7})
	}
	b.bs.b = b.bs.b[:len(b.bs.b)/2]
	err := b.decode(func(int64, []float64) bool { return true })
	if err == nil {
		t.Fatal("decode of truncated stream succeeded")
	}
}
