package tsdb

import (
	"bytes"
	"math"
	"testing"
)

// FuzzWALRecord drives the WAL segment scanner with arbitrary bytes. Two
// properties must hold for every input: the scan classifies cleanly
// (torn and damage are mutually exclusive, applied matches the callback
// count), and whatever it decoded re-encodes to a segment that scans back
// to the identical records — the decoder never hands out a record the
// encoder could not have produced.
func FuzzWALRecord(f *testing.F) {
	f.Add([]byte(walMagic))
	f.Add([]byte("XXXXWAL9 not a segment"))
	one := walRecord{seq: 1, ts: 1_700_000_000_000, node: "node-a",
		vals: [NumChannels]float64{101.5, 55.25, 9.75, 102, math.NaN()}}
	valid, err := appendWALRecord([]byte(walMagic), &one)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	two := walRecord{seq: 2, ts: 1_700_000_001_000, node: "node-b",
		vals: [NumChannels]float64{0, math.Inf(1), -0.0, 1e-300, 2}}
	valid2, err := appendWALRecord(valid, &two)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid2)

	f.Fuzz(func(t *testing.T, data []byte) {
		var recs []walRecord
		applied, torn, damage := scanWALBytes(data, func(r *walRecord) bool {
			recs = append(recs, *r)
			return true
		})
		if applied != len(recs) {
			t.Fatalf("applied %d but callback saw %d", applied, len(recs))
		}
		if torn && damage != "" {
			t.Fatalf("scan reported both torn and damage %q", damage)
		}
		out := []byte(walMagic)
		for i := range recs {
			if out, err = appendWALRecord(out, &recs[i]); err != nil {
				t.Fatalf("decoded record %d does not re-encode: %v", i, err)
			}
		}
		var again []walRecord
		applied2, torn2, damage2 := scanWALBytes(out, func(r *walRecord) bool {
			again = append(again, *r)
			return true
		})
		if applied2 != len(recs) || torn2 || damage2 != "" {
			t.Fatalf("re-encoded segment scans to %d records (torn=%v damage=%q), want %d clean", applied2, torn2, damage2, len(recs))
		}
		for i := range recs {
			a, b := recs[i], again[i]
			if a.seq != b.seq || a.ts != b.ts || a.node != b.node {
				t.Fatalf("record %d round-trip mismatch: %+v vs %+v", i, a, b)
			}
			for c := range a.vals {
				if math.Float64bits(a.vals[c]) != math.Float64bits(b.vals[c]) {
					t.Fatalf("record %d channel %d: %x vs %x", i, c, math.Float64bits(a.vals[c]), math.Float64bits(b.vals[c]))
				}
			}
		}
	})
}

// FuzzSnapshotFile drives the snapshot loader with arbitrary bytes: it
// must reject or accept without panicking, and anything it accepts must
// install into a store whose every series then queries without error —
// a snapshot that validates can never poison the read path.
func FuzzSnapshotFile(f *testing.F) {
	opts := Options{BlockPoints: 16}.withDefaults()
	// Seed with a real snapshot of a small populated store.
	func() {
		dir := f.TempDir()
		o := opts
		o.Dir = dir
		o.Fsync = FsyncNever
		o.SnapshotEvery = -1
		st, _, err := Open(o)
		if err != nil {
			f.Fatal(err)
		}
		defer func() {
			if err := st.Close(); err != nil {
				f.Error(err)
			}
		}()
		fillSeeded(f, st, 11, 50)
		_, body := st.snapshotNow()
		file := append([]byte(snapMagic), body...)
		f.Add(append(file, crcTrailer(body)...))
		f.Add(file[:len(file)/2])
	}()
	f.Add([]byte(snapMagic))
	f.Add([]byte("not a snapshot at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := decodeSnapshot(data, opts)
		if err != nil {
			return
		}
		st := New(opts)
		st.installSnapshot(snap)
		for _, node := range st.Nodes() {
			for _, ch := range Channels() {
				for _, res := range Resolutions() {
					if _, qerr := st.Query(node, ch, -4e9, 4e9, res); qerr != nil {
						t.Fatalf("validated snapshot fails %s/%s/%d: %v", node, ch, res, qerr)
					}
				}
			}
		}
		// An accepted snapshot must also re-validate: decode is a pure
		// function of the bytes.
		if _, err := decodeSnapshot(bytes.Clone(data), opts); err != nil {
			t.Fatalf("accepted snapshot fails a second decode: %v", err)
		}
	})
}
