package tsdb

import (
	"math"
	"math/rand"
	"testing"
)

// ingestRamp stores n seconds of a simple deterministic workload for node:
// p_node ramps, components split it 70/30, ipmi fires every missInterval.
func ingestRamp(t *testing.T, st *Store, node string, n, missInterval int) {
	t.Helper()
	for i := 0; i < n; i++ {
		p := 80 + float64(i%40)
		ipmi := math.NaN()
		if i%missInterval == 0 {
			ipmi = p
		}
		err := st.Ingest(node, float64(i), Sample{
			PNode: p, PCPU: 0.7 * p, PMEM: 0.3 * p, PNodePrime: p - 0.5, IPMI: ipmi,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestStoreRawRoundTrip(t *testing.T) {
	st := New(Options{})
	ingestRamp(t, st, "node-a", 120, 10)
	for _, ch := range Channels() {
		pts, err := st.Query("node-a", ch, 0, 119, Raw)
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) != 120 {
			t.Fatalf("%s: %d raw points, want 120", ch, len(pts))
		}
	}
	pts, err := st.Query("node-a", ChanIPMI, 0, 119, Raw)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if p.Time != float64(i) {
			t.Fatalf("point %d time %g", i, p.Time)
		}
		want := math.NaN()
		if i%10 == 0 {
			want = 80 + float64(i%40)
		}
		if !sameBits(p.Value, want) {
			t.Fatalf("ipmi[%d] = %x want %x", i, math.Float64bits(p.Value), math.Float64bits(want))
		}
		if p.Count != 1 || !sameBits(p.Min, want) || !sameBits(p.Max, want) {
			t.Fatalf("raw point %d not self-describing: %+v", i, p)
		}
	}
}

func TestStoreRollups(t *testing.T) {
	st := New(Options{})
	ingestRamp(t, st, "n", 65, 10)
	pts, err := st.Query("n", ChanPNode, 0, 64, TenSeconds)
	if err != nil {
		t.Fatal(err)
	}
	// Six sealed buckets plus the open [60,70) one.
	if len(pts) != 7 {
		t.Fatalf("%d buckets, want 7", len(pts))
	}
	// Bucket [0,10): values 80..89 → min 80, max 89, mean 84.5, count 10.
	b0 := pts[0]
	if b0.Time != 0 || b0.Min != 80 || b0.Max != 89 || b0.Count != 10 || math.Abs(b0.Value-84.5) > 1e-9 {
		t.Fatalf("bucket 0 = %+v", b0)
	}
	// Open bucket [60,70) holds t=60..64 → values 100..104.
	open := pts[6]
	if open.Time != 60 || open.Count != 5 || open.Min != 100 || open.Max != 104 {
		t.Fatalf("open bucket = %+v", open)
	}
	// The sparse ipmi channel: each sealed bucket has exactly one reading.
	ipts, err := st.Query("n", ChanIPMI, 0, 59, TenSeconds)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ipts {
		if p.Count != 1 {
			t.Fatalf("ipmi bucket %d count %d, want 1", i, p.Count)
		}
	}
	// Minute rollup: one sealed bucket [0,60) with all 60 points.
	mpts, err := st.Query("n", ChanPNode, 0, 59, Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(mpts) != 1 || mpts[0].Count != 60 || mpts[0].Min != 80 || mpts[0].Max != 119 {
		t.Fatalf("minute buckets = %+v", mpts)
	}
}

func TestStoreAllNaNBucket(t *testing.T) {
	st := New(Options{})
	// 20 s of ipmi silence: both sealed 10 s buckets are gap buckets.
	for i := 0; i < 21; i++ {
		if err := st.Ingest("n", float64(i), Sample{PNode: 90, PCPU: 60, PMEM: 30, PNodePrime: 90, IPMI: math.NaN()}); err != nil {
			t.Fatal(err)
		}
	}
	pts, err := st.Query("n", ChanIPMI, 0, 19, TenSeconds)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d buckets, want 2", len(pts))
	}
	for _, p := range pts {
		if p.Count != 0 || !math.IsNaN(p.Value) || !math.IsNaN(p.Min) || !math.IsNaN(p.Max) {
			t.Fatalf("gap bucket = %+v", p)
		}
	}
}

func TestStoreQueryValidation(t *testing.T) {
	st := New(Options{})
	ingestRamp(t, st, "n", 5, 10)
	if _, err := st.Query("n", Channel("bogus"), 0, 10, Raw); err == nil {
		t.Fatal("unknown channel accepted")
	}
	if _, err := st.Query("n", ChanPNode, 0, 10, Resolution(7)); err == nil {
		t.Fatal("bad resolution accepted")
	}
	if _, err := st.Query("ghost", ChanPNode, 0, 10, Raw); err == nil {
		t.Fatal("unknown node accepted")
	}
	if _, err := ParseResolution(30); err == nil {
		t.Fatal("ParseResolution(30) accepted")
	}
	if r, err := ParseResolution(0); err != nil || r != Raw {
		t.Fatalf("ParseResolution(0) = %v, %v", r, err)
	}
}

func TestStoreAggregate(t *testing.T) {
	checkNoLeaks(t)
	st := New(Options{})
	for i := 0; i < 30; i++ {
		if err := st.Ingest("a", float64(i), Sample{PNode: 100, PCPU: 70, PMEM: 30, PNodePrime: 100, IPMI: math.NaN()}); err != nil {
			t.Fatal(err)
		}
		if err := st.Ingest("b", float64(i), Sample{PNode: 50, PCPU: 35, PMEM: 15, PNodePrime: 50, IPMI: math.NaN()}); err != nil {
			t.Fatal(err)
		}
	}
	pts, err := st.Aggregate(ChanPNode, 0, 29, Raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 30 {
		t.Fatalf("%d aggregate points, want 30", len(pts))
	}
	for _, p := range pts {
		if p.Value != 150 || p.Count != 2 {
			t.Fatalf("aggregate point = %+v, want cluster power 150 from 2 nodes", p)
		}
	}
	// Rollup aggregate: sealed buckets sum per-node means.
	rpts, err := st.Aggregate(ChanPCPU, 0, 19, TenSeconds)
	if err != nil {
		t.Fatal(err)
	}
	if len(rpts) != 2 || rpts[0].Value != 105 || rpts[0].Count != 20 {
		t.Fatalf("rollup aggregate = %+v", rpts)
	}
}

func TestStoreRetentionOption(t *testing.T) {
	st := New(Options{BlockPoints: 32, RetainRaw: 100, Retain10s: 100, Retain60s: 100})
	ingestRamp(t, st, "n", 1000, 10)
	pts, err := st.Query("n", ChanPNode, 0, 999, Raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 100 || len(pts) > 132 {
		t.Fatalf("retained %d raw points, want ≈100", len(pts))
	}
	if pts[len(pts)-1].Time != 999 {
		t.Fatalf("newest point at t=%g, want 999", pts[len(pts)-1].Time)
	}
	st2 := New(Options{BlockPoints: 512, RetainRaw: 100})
	if got := st2.Options().BlockPoints; got != 512 {
		t.Fatalf("store options clobbered: %d", got)
	}
	ingestRamp(t, st2, "n", 1000, 10)
	pts2, err := st2.Query("n", ChanPNode, 0, 999, Raw)
	if err != nil {
		t.Fatal(err)
	}
	// BlockPoints must have been clamped per-series so retention works.
	if len(pts2) > 200 {
		t.Fatalf("retention ineffective with oversized blocks: %d points", len(pts2))
	}
}

func TestStoreCloseSealsAndRefuses(t *testing.T) {
	st := New(Options{})
	ingestRamp(t, st, "n", 15, 10)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Ingest("n", 15, Sample{}); err != ErrClosed {
		t.Fatalf("ingest after close: %v, want ErrClosed", err)
	}
	if err := st.Ingest("new-node", 0, Sample{}); err != ErrClosed {
		t.Fatalf("new-node ingest after close: %v, want ErrClosed", err)
	}
	// The partial [10,20) bucket must have been flushed and stay queryable.
	pts, err := st.Query("n", ChanPNode, 0, 14, TenSeconds)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[1].Count != 5 {
		t.Fatalf("post-close buckets = %+v", pts)
	}
	if err := st.Close(); err != nil {
		t.Fatal("second close not idempotent:", err)
	}
}

func TestStoreStats(t *testing.T) {
	st := New(Options{})
	if s := st.Stats(); s.Nodes != 0 || s.BytesPerPoint != 0 || s.CompressionRatio != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
	ingestRamp(t, st, "a", 600, 10)
	ingestRamp(t, st, "b", 600, 10)
	s := st.Stats()
	if s.Nodes != 2 || s.Series != 2*NumChannels {
		t.Fatalf("stats = %+v", s)
	}
	if s.Points != int64(2*NumChannels*600) {
		t.Fatalf("points = %d", s.Points)
	}
	if s.Bytes <= 0 || s.RawBytes <= 0 || s.Bytes < s.RawBytes {
		t.Fatalf("byte accounting = %+v", s)
	}
	if s.BytesPerPoint >= 16 {
		t.Fatalf("no compression at all: %.1f B/point", s.BytesPerPoint)
	}
}

// quantize rounds to the sensors' 0.1 W resolution (the DirectProbe error
// floor; the IPMI path quantises too — see internal/platform).
func quantize(v float64) float64 { return math.Round(v*10) / 10 }

// monitorWorkload generates the synthetic monitor workload used by the
// compression acceptance test and the BenchmarkStoreIngest benchmark:
// phase-programmed power (plateaus like the workload suite's phases) with
// sensor-grade 0.1 W quantisation and sparse IPMI readings.
func monitorWorkload(r *rand.Rand, i int, prev *Sample) Sample {
	base := 70 + 15*float64((i/30)%3) // 30 s phases at three levels
	node := prev.PNode
	if i%30 == 0 || r.Float64() < 0.4 {
		node = quantize(base + 2*r.NormFloat64())
	}
	cpu := prev.PCPU
	mem := prev.PMEM
	if r.Float64() < 0.4 {
		cpu = quantize(0.65 * node)
		mem = quantize(0.25 * node)
	}
	ipmi := math.NaN()
	if i%10 == 0 {
		ipmi = node
	}
	s := Sample{PNode: node, PCPU: cpu, PMEM: mem, PNodePrime: quantize(node + 0.3), IPMI: ipmi}
	*prev = s
	return s
}

// TestCompressionRatioMonitorWorkload pins the ≤ 4 B/sample budget on the
// synthetic monitor workload (deterministic seed), vs 16 B uncompressed.
func TestCompressionRatioMonitorWorkload(t *testing.T) {
	st := New(Options{})
	r := rand.New(rand.NewSource(42))
	prev := Sample{PNode: 70, PCPU: 45, PMEM: 17, PNodePrime: 70, IPMI: math.NaN()}
	const n = 20000
	for i := 0; i < n; i++ {
		if err := st.Ingest("node-00", float64(i), monitorWorkload(r, i, &prev)); err != nil {
			t.Fatal(err)
		}
	}
	s := st.Stats()
	t.Logf("monitor workload: %.2f B/point (%.1fx vs 16 B uncompressed)", s.BytesPerPoint, s.CompressionRatio)
	if s.BytesPerPoint > 4 {
		t.Fatalf("compression budget blown: %.2f B/point > 4", s.BytesPerPoint)
	}
	// Compression must not cost correctness: spot-check bit-exact recovery.
	pts, err := st.Query("node-00", ChanPNode, 0, n-1, Raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != n {
		t.Fatalf("%d points, want %d", len(pts), n)
	}
}
