package tsdb

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

// TestConcurrentIngestAndQuery drives the locking design the store exists
// for: N goroutines ingesting into distinct nodes (per-shard mutexes, no
// global lock on the ingest path) while M goroutines run raw queries,
// rollup queries, aggregates and stats over the same store. Run under
// `go test -race ./internal/tsdb` (wired into scripts/verify.sh).
func TestConcurrentIngestAndQuery(t *testing.T) {
	checkNoLeaks(t)
	const (
		writers = 8
		readers = 4
		seconds = 400
	)
	st := New(Options{BlockPoints: 64, RetainRaw: 300, Retain10s: 100, Retain60s: 100})
	errc := make(chan error, writers+readers)

	var wWg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wWg.Add(1)
		go func(w int) {
			defer wWg.Done()
			node := fmt.Sprintf("node-%02d", w)
			for i := 0; i < seconds; i++ {
				p := 80 + float64((i+w)%25)
				ipmi := math.NaN()
				if i%10 == 0 {
					ipmi = p
				}
				if err := st.Ingest(node, float64(i), Sample{
					PNode: p, PCPU: 0.7 * p, PMEM: 0.3 * p, PNodePrime: p, IPMI: ipmi,
				}); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}

	done := make(chan struct{})
	var rWg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rWg.Add(1)
		go func(r int) {
			defer rWg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				node := fmt.Sprintf("node-%02d", (i+r)%writers)
				ch := channelOrder[i%NumChannels]
				res := Resolutions()[i%3]
				pts, err := st.Query(node, ch, 0, seconds, res)
				if err != nil {
					// Racing ahead of a writer's first sample is fine.
					continue
				}
				for j := 1; j < len(pts); j++ {
					if pts[j].Time <= pts[j-1].Time {
						errc <- fmt.Errorf("unordered points from %s/%s", node, ch)
						return
					}
				}
				if _, err := st.Aggregate(ChanPNode, 0, seconds, TenSeconds); err != nil {
					errc <- err
					return
				}
				_ = st.Stats()
			}
		}(r)
	}

	wWg.Wait()
	close(done)
	rWg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Every shard must answer a consistent final query.
	for w := 0; w < writers; w++ {
		node := fmt.Sprintf("node-%02d", w)
		pts, err := st.Query(node, ChanPNode, 0, seconds, Raw)
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) < 300 {
			t.Fatalf("%s retained %d points, want ≥ 300", node, len(pts))
		}
	}
}
