// Package tsdb is an embedded, stdlib-only time-series store for the power
// histories HighRPM restores. The cluster service computes a 1 Sa/s
// estimate per node (§4.2 TRR, §4.3 SRR) — this package keeps those
// estimates so operators can ask "what did node-17 draw between 10:00 and
// 10:05, split into CPU/MEM?" instead of watching the samples scroll by.
//
// Layout: one shard per node ID with its own mutex (ingest for different
// nodes never contends), five channels per shard (p_node, p_cpu, p_mem,
// p_node_prime, ipmi), and per channel a raw 1 s series plus incrementally
// maintained 10 s and 60 s rollups (min/mean/max/count per bucket).
// Series are rings of Gorilla-compressed blocks (see gorilla.go); the
// encoding is lossless, so raw queries return bit-identical float64
// values, NaN gaps included. Retention is a per-resolution point budget
// with oldest-block eviction.
package tsdb

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Channel names one stored power series per node.
type Channel string

// The five channels recorded per node.
const (
	// ChanPNode is the restored 1 Sa/s node power (IM reading on seconds
	// that have one, DynamicTRR prediction otherwise).
	ChanPNode Channel = "p_node"
	// ChanPCPU is the SRR CPU component.
	ChanPCPU Channel = "p_cpu"
	// ChanPMEM is the SRR memory component.
	ChanPMEM Channel = "p_mem"
	// ChanPNodePrime is the P'_Node trend feature (the last IM reading
	// extrapolated by the inter-reading slope) fed to DynamicTRR.
	ChanPNodePrime Channel = "p_node_prime"
	// ChanIPMI is the sparse IM reading itself; NaN on the seconds without
	// one (the common case — that is the whole problem).
	ChanIPMI Channel = "ipmi"
)

var channelOrder = [...]Channel{ChanPNode, ChanPCPU, ChanPMEM, ChanPNodePrime, ChanIPMI}

// NumChannels is the number of series stored per node.
const NumChannels = len(channelOrder)

// Channels lists the stored channels in ingest order.
func Channels() []Channel {
	out := make([]Channel, NumChannels)
	copy(out, channelOrder[:])
	return out
}

func channelIndex(ch Channel) (int, error) {
	for i, c := range channelOrder {
		if c == ch {
			return i, nil
		}
	}
	return 0, fmt.Errorf("tsdb: unknown channel %q", ch)
}

// Resolution is a query granularity in seconds.
type Resolution int

// The three stored resolutions.
const (
	// Raw is the ingested 1 Sa/s series, returned bit-exactly.
	Raw Resolution = 1
	// TenSeconds buckets raw points into 10 s min/mean/max rollups.
	TenSeconds Resolution = 10
	// Minute buckets raw points into 60 s min/mean/max rollups.
	Minute Resolution = 60
)

// Resolutions lists the stored resolutions, finest first.
func Resolutions() []Resolution { return []Resolution{Raw, TenSeconds, Minute} }

// ParseResolution validates a resolution given in seconds; 0 selects Raw.
func ParseResolution(seconds int) (Resolution, error) {
	switch Resolution(seconds) {
	case Raw, TenSeconds, Minute:
		return Resolution(seconds), nil
	case 0:
		return Raw, nil
	}
	return 0, fmt.Errorf("tsdb: unsupported resolution %ds (want 1, 10 or 60)", seconds)
}

// Sample is one second of restored power for one node. IPMI is NaN on
// seconds without an IM reading; NaN round-trips losslessly.
type Sample struct {
	PNode      float64
	PCPU       float64
	PMEM       float64
	PNodePrime float64
	IPMI       float64
}

// Options sizes a Store.
type Options struct {
	// BlockPoints is the number of points per compressed block (the
	// eviction granule). Values above half the smallest retention budget
	// are clamped so retention stays meaningful.
	BlockPoints int
	// RetainRaw / Retain10s / Retain60s are per-series point budgets for
	// the three resolutions; 0 keeps everything.
	RetainRaw int
	Retain10s int
	Retain60s int
	// CachePoints budgets the decoded-block cache in points: sealed
	// Gorilla blocks touched by queries are kept decoded (LRU) so repeat
	// reads skip the bit-level decode. 0 selects DefaultCachePoints;
	// negative disables the cache.
	CachePoints int

	// Dir is the durability directory holding the write-ahead log and
	// snapshots. Only Open uses it; New always builds a memory-only store.
	Dir string
	// Fsync selects when the WAL reaches stable storage (see FsyncPolicy);
	// the zero value is FsyncBatch.
	Fsync FsyncPolicy
	// SnapshotEvery is the automatic snapshot cadence in WAL records (one
	// record per Ingest). 0 selects DefaultSnapshotEvery; negative
	// disables automatic snapshots (Snapshot still works manually).
	SnapshotEvery int
	// FlushEvery is the FsyncBatch flush interval — the loss bound under
	// that policy. 0 selects DefaultFlushEvery.
	FlushEvery time.Duration
}

// DefaultCachePoints is the default decoded-block cache budget: a million
// decoded points (~16 MiB of raw points) — a day of 1 Sa/s history for a
// ten-node cluster stays hot.
const DefaultCachePoints = 1 << 20

// DefaultOptions retains a day of raw samples, a week of 10 s buckets and
// a month of 60 s buckets per node channel.
func DefaultOptions() Options {
	return Options{
		BlockPoints: 512,
		RetainRaw:   86400,
		Retain10s:   60480,
		Retain60s:   43200,
		CachePoints: DefaultCachePoints,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.BlockPoints <= 0 {
		o.BlockPoints = d.BlockPoints
	}
	if o.RetainRaw < 0 {
		o.RetainRaw = 0
	}
	if o.Retain10s < 0 {
		o.Retain10s = 0
	}
	if o.Retain60s < 0 {
		o.Retain60s = 0
	}
	if o.CachePoints == 0 {
		o.CachePoints = DefaultCachePoints
	}
	if o.CachePoints < 0 {
		o.CachePoints = 0 // disabled
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = DefaultSnapshotEvery
	}
	if o.SnapshotEvery < 0 {
		o.SnapshotEvery = 0 // automatic snapshots disabled
	}
	if o.FlushEvery <= 0 {
		o.FlushEvery = DefaultFlushEvery
	}
	return o
}

// blockPointsFor clamps the block size so a series can actually honour its
// retention budget (eviction is whole-block).
func blockPointsFor(blockPoints, maxPoints int) int {
	if maxPoints > 0 && blockPoints > maxPoints/2 {
		blockPoints = maxPoints / 2
		if blockPoints < 16 {
			blockPoints = 16
		}
	}
	return blockPoints
}

// ErrClosed is returned by Ingest after Close.
var ErrClosed = errors.New("tsdb: store is closed")

// channelSeries is one channel of one node: the raw series plus its
// rollups.
type channelSeries struct {
	raw *series
	r10 *rollup
	r60 *rollup
}

func newChannelSeries(o Options, evicted *atomic.Int64, cache *blockCache) *channelSeries {
	cs := &channelSeries{
		raw: newSeries(1, blockPointsFor(o.BlockPoints, o.RetainRaw), o.RetainRaw),
		r10: newRollup(10_000, blockPointsFor(o.BlockPoints, o.Retain10s), o.Retain10s),
		r60: newRollup(60_000, blockPointsFor(o.BlockPoints, o.Retain60s), o.Retain60s),
	}
	cs.raw.evicted = evicted
	cs.r10.ser.evicted = evicted
	cs.r60.ser.evicted = evicted
	cs.raw.cache = cache
	cs.r10.ser.cache = cache
	cs.r60.ser.cache = cache
	return cs
}

func (cs *channelSeries) add(t int64, v float64) {
	var buf [1]float64
	buf[0] = v
	cs.raw.append(t, buf[:])
	cs.r10.add(t, v)
	cs.r60.add(t, v)
}

func (cs *channelSeries) rollupFor(res Resolution) *rollup {
	if res == Minute {
		return cs.r60
	}
	return cs.r10
}

// shard holds one node's series under its own lock, so ingest from
// different nodes never serialises.
type shard struct {
	mu    sync.Mutex
	chans [NumChannels]*channelSeries
}

func newShard(o Options, evicted *atomic.Int64, cache *blockCache) *shard {
	sh := &shard{}
	for i := range sh.chans {
		sh.chans[i] = newChannelSeries(o, evicted, cache)
	}
	return sh
}

// Store is the embedded time-series store. All methods are safe for
// concurrent use.
type Store struct {
	opts   Options
	mu     sync.RWMutex // guards the shard map, not the shards
	shards map[string]*shard
	closed atomic.Bool

	// cache is the store-wide decoded-block cache shared by every series;
	// nil when Options.CachePoints is negative.
	cache *blockCache

	// Activity counters surfaced through Stats (and from there the obs
	// /metrics endpoint): ingested samples, served point reads, points
	// returned, and raw+rollup points evicted by retention.
	ingested  atomic.Int64
	queries   atomic.Int64
	pointsOut atomic.Int64
	evicted   atomic.Int64

	// Durability state, set only by Open; all nil/zero on a memory-only
	// store. snapMu serialises Snapshot (and the pruning it does);
	// nextSnapAt is the WAL sequence that triggers the next automatic
	// snapshot; flushStop/flushDone bracket the FsyncBatch flusher.
	wal          *wal
	dir          string
	snapMu       sync.Mutex
	replayed     atomic.Int64
	snapshots    atomic.Int64
	lastSnapUnix atomic.Int64 // ms since epoch of the newest snapshot; 0 none
	nextSnapAt   atomic.Uint64
	flushStop    chan struct{}
	flushDone    chan struct{}
}

// New creates an empty store.
func New(opts Options) *Store {
	st := &Store{opts: opts.withDefaults(), shards: map[string]*shard{}}
	if st.opts.CachePoints > 0 {
		st.cache = newBlockCache(st.opts.CachePoints)
	}
	return st
}

// Options reports the store's effective (defaulted) options.
func (st *Store) Options() Options { return st.opts }

func (st *Store) shardFor(node string) *shard {
	st.mu.RLock()
	sh := st.shards[node]
	st.mu.RUnlock()
	if sh != nil {
		return sh
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if sh = st.shards[node]; sh == nil {
		sh = newShard(st.opts, &st.evicted, st.cache)
		st.shards[node] = sh
	}
	return sh
}

// Ingest records one second of restored power for node. t is in seconds
// (stored at millisecond resolution); values round-trip bit-exactly.
// Ingest for distinct nodes runs concurrently — only the node's own shard
// is locked. On a durable store the sample is logged to the WAL before it
// touches the in-memory series; a WAL error fails the ingest without
// applying anything.
func (st *Store) Ingest(node string, t float64, s Sample) error {
	if st.closed.Load() {
		return ErrClosed
	}
	ts := int64(math.Round(t * 1000))
	vals := [NumChannels]float64{s.PNode, s.PCPU, s.PMEM, s.PNodePrime, s.IPMI}
	seq, err := st.ingest(node, ts, &vals, true)
	if err != nil {
		return err
	}
	st.maybeSnapshot(seq)
	return nil
}

// ingest applies one sample under the node's shard lock. WAL replay calls
// it with logWAL false (the record is already durable); live Ingest logs
// first, so the WAL is always a superset of the in-memory state. Holding
// the shard lock across both keeps per-node WAL order identical to apply
// order.
func (st *Store) ingest(node string, ts int64, vals *[NumChannels]float64, logWAL bool) (uint64, error) {
	sh := st.shardFor(node)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if st.closed.Load() {
		return 0, ErrClosed
	}
	var seq uint64
	if logWAL && st.wal != nil {
		var err error
		if seq, err = st.wal.append(node, ts, vals); err != nil {
			return 0, err
		}
	}
	for i, v := range vals {
		sh.chans[i].add(ts, v)
	}
	st.ingested.Add(1)
	return seq, nil
}

// Nodes lists the node IDs with recorded history, sorted.
func (st *Store) Nodes() []string {
	st.mu.RLock()
	out := make([]string, 0, len(st.shards))
	for n := range st.shards {
		out = append(out, n)
	}
	st.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Close seals the open rollup buckets and refuses further ingest; on a
// durable store it then stops the flusher and drains the WAL (flush +
// fsync + close), so a clean shutdown loses nothing regardless of fsync
// policy. Queries keep working on the frozen history. Close is idempotent.
func (st *Store) Close() error {
	if st.closed.Swap(true) {
		return nil
	}
	st.mu.RLock()
	shards := make([]*shard, 0, len(st.shards))
	//lint:ignore maporder shards are independent; seal order does not matter
	for _, sh := range st.shards {
		shards = append(shards, sh)
	}
	st.mu.RUnlock()
	for _, sh := range shards {
		sh.mu.Lock()
		for _, cs := range sh.chans {
			cs.r10.flush()
			cs.r60.flush()
		}
		sh.mu.Unlock()
	}
	if st.flushStop != nil {
		close(st.flushStop)
		<-st.flushDone
	}
	if st.wal != nil {
		return st.wal.close()
	}
	return nil
}
