// Write-ahead log for the durable store. Every accepted Ingest appends one
// record — node ID, millisecond timestamp, and the five channel values —
// to the current WAL segment before it touches the in-memory series, so a
// process crash loses at most the records not yet flushed (bounded by the
// fsync policy). Records are length-prefixed and CRC32-checked; replay
// stops at the first torn or corrupt frame and everything before it is a
// valid prefix of the ingest history.
//
// Segment layout:
//
//	wal-<first seq, 16 hex digits>.log
//	magic "HRPMWAL1"
//	record*: u32 payload length | u32 CRC32(payload) | payload
//	payload: u64 seq | u64 timestamp (int64 ms bits) | u8 node length |
//	         node bytes | NumChannels × u64 (float64 bits)
//
// All integers are big-endian, matching the cluster wire framing. Sequence
// numbers are global, strictly increasing, and continue across segments;
// snapshots record the last sequence they cover so recovery replays only
// the tail.
package tsdb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

const walMagic = "HRPMWAL1"

// maxWALRecord caps one record's payload so a corrupted length prefix can
// never force a large allocation: the real maximum is 8+8+1+255+8×5 bytes.
const maxWALRecord = 4096

// maxNodeIDLen bounds the node ID a WAL record can carry (u8 length field).
const maxNodeIDLen = 255

// FsyncPolicy selects when the WAL is fsynced to stable storage.
type FsyncPolicy int

const (
	// FsyncBatch (the default) groups fsyncs: appends land in the OS
	// buffer immediately and a background flusher fsyncs every
	// Options.FlushEvery. A crash loses at most one flush interval of
	// unsealed tail.
	FsyncBatch FsyncPolicy = iota
	// FsyncAlways fsyncs after every append: no acknowledged sample is
	// ever lost, at the cost of one fsync per ingest.
	FsyncAlways
	// FsyncNever leaves flushing to the OS page cache: a process crash
	// loses nothing (appends are written through on every call), a machine
	// crash loses whatever the kernel had not written back.
	FsyncNever
)

// String renders the policy as its flag spelling (batch, always, never).
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		return "batch"
	}
}

// ParseFsyncPolicy parses the flag spelling produced by String.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "batch":
		return FsyncBatch, nil
	case "always":
		return FsyncAlways, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("tsdb: unknown fsync policy %q (want always, batch or never)", s)
}

// walRecord is one decoded WAL entry: the arguments of one Ingest call
// after timestamp rounding, plus its global sequence number.
type walRecord struct {
	seq  uint64
	ts   int64 // milliseconds
	node string
	vals [NumChannels]float64
}

// appendWALRecord serialises rec onto dst (framing included) and returns
// the extended slice.
func appendWALRecord(dst []byte, rec *walRecord) ([]byte, error) {
	if len(rec.node) > maxNodeIDLen {
		return dst, fmt.Errorf("tsdb: node ID %q exceeds %d bytes", rec.node, maxNodeIDLen)
	}
	payloadLen := 8 + 8 + 1 + len(rec.node) + 8*NumChannels
	base := len(dst)
	dst = append(dst, make([]byte, 8+payloadLen)...)
	binary.BigEndian.PutUint32(dst[base:], uint32(payloadLen))
	p := dst[base+8:]
	binary.BigEndian.PutUint64(p[0:], rec.seq)
	binary.BigEndian.PutUint64(p[8:], uint64(rec.ts))
	p[16] = byte(len(rec.node))
	copy(p[17:], rec.node)
	off := 17 + len(rec.node)
	for i, v := range rec.vals {
		binary.BigEndian.PutUint64(p[off+8*i:], math.Float64bits(v))
	}
	binary.BigEndian.PutUint32(dst[base+4:], crc32.ChecksumIEEE(p))
	return dst, nil
}

// decodeWALRecord parses one payload. The payload length must match the
// declared node length exactly — trailing garbage is corruption, not slack.
func decodeWALRecord(p []byte, rec *walRecord) error {
	if len(p) < 17 {
		return fmt.Errorf("tsdb: wal record payload %d bytes, want >= 17", len(p))
	}
	nodeLen := int(p[16])
	want := 17 + nodeLen + 8*NumChannels
	if len(p) != want {
		return fmt.Errorf("tsdb: wal record payload %d bytes, want %d for node length %d", len(p), want, nodeLen)
	}
	rec.seq = binary.BigEndian.Uint64(p[0:])
	rec.ts = int64(binary.BigEndian.Uint64(p[8:]))
	rec.node = string(p[17 : 17+nodeLen])
	off := 17 + nodeLen
	for i := range rec.vals {
		rec.vals[i] = math.Float64frombits(binary.BigEndian.Uint64(p[off+8*i:]))
	}
	return nil
}

// scanWALBytes replays one segment's bytes. apply returning false stops the
// scan. The return values classify how the scan ended: applied is the
// number of records handed to apply, torn reports a clean truncation mid-
// record (the expected shape of a crash during an append), and damage is a
// non-empty description for anything else that stopped the scan early (bad
// magic, CRC mismatch, oversized or malformed frame). torn and damage are
// both zero on a clean end-of-segment.
func scanWALBytes(data []byte, apply func(rec *walRecord) bool) (applied int, torn bool, damage string) {
	if len(data) < len(walMagic) {
		// A crash between creating the segment and completing the header
		// leaves a short (possibly empty) file: a torn tail, not damage.
		return 0, true, ""
	}
	if string(data[:len(walMagic)]) != walMagic {
		return 0, false, "bad segment magic"
	}
	off := len(walMagic)
	var rec walRecord
	for off < len(data) {
		if len(data)-off < 8 {
			return applied, true, ""
		}
		payloadLen := int(binary.BigEndian.Uint32(data[off:]))
		crc := binary.BigEndian.Uint32(data[off+4:])
		if payloadLen > maxWALRecord {
			return applied, false, fmt.Sprintf("record at offset %d claims %d bytes (max %d)", off, payloadLen, maxWALRecord)
		}
		if len(data)-off-8 < payloadLen {
			return applied, true, ""
		}
		payload := data[off+8 : off+8+payloadLen]
		if crc32.ChecksumIEEE(payload) != crc {
			return applied, false, fmt.Sprintf("CRC mismatch at offset %d", off)
		}
		if err := decodeWALRecord(payload, &rec); err != nil {
			return applied, false, fmt.Sprintf("record at offset %d: %v", off, err)
		}
		off += 8 + payloadLen
		applied++
		if !apply(&rec) {
			return applied, false, ""
		}
	}
	return applied, false, ""
}

// walSegmentName renders the canonical segment filename for a first
// sequence number.
func walSegmentName(firstSeq uint64) string {
	return fmt.Sprintf("wal-%016x.log", firstSeq)
}

// walSegment is one discovered segment file.
type walSegment struct {
	path     string
	firstSeq uint64
}

// listWALSegments finds the dir's segments sorted by first sequence.
// Filenames that merely look similar are ignored.
func listWALSegments(dir string) ([]walSegment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []walSegment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		hexpart := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
		if len(hexpart) != 16 {
			continue
		}
		seq, perr := strconv.ParseUint(hexpart, 16, 64)
		if perr != nil {
			continue
		}
		segs = append(segs, walSegment{path: filepath.Join(dir, name), firstSeq: seq})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	return segs, nil
}

// wal is the open write side of the log: the current segment file behind a
// buffered writer, the global sequence counter, and the accounting the
// store surfaces through Stats. All methods are called with mu held by the
// owning persister unless documented otherwise.
type wal struct {
	mu      sync.Mutex
	dir     string
	policy  FsyncPolicy
	f       *os.File
	w       *bufio.Writer
	seq     uint64 // last assigned sequence number
	scratch []byte
	stuck   error // sticky I/O error; once set every append fails with it

	bytes   atomic.Int64
	fsyncs  atomic.Int64
	records atomic.Int64
}

// openWALSegment starts a fresh segment whose first record will carry
// firstSeq. An existing file of the same name is truncated — that only
// happens when a previous Open crashed before appending anything, so its
// contents are at most a bare header.
func openWALSegment(dir string, lastSeq uint64, policy FsyncPolicy) (*wal, error) {
	path := filepath.Join(dir, walSegmentName(lastSeq+1))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("tsdb: open wal segment: %w", err)
	}
	w := &wal{dir: dir, policy: policy, f: f, w: bufio.NewWriterSize(f, 1<<16), seq: lastSeq}
	if _, err := w.w.WriteString(walMagic); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("tsdb: write wal header: %w", err)
	}
	w.bytes.Add(int64(len(walMagic)))
	return w, nil
}

// append logs one ingest and returns its sequence number. Callers hold the
// ingesting shard's lock, which is what keeps per-node WAL order identical
// to in-memory apply order.
func (w *wal) append(node string, ts int64, vals *[NumChannels]float64) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.stuck != nil {
		return 0, w.stuck
	}
	rec := walRecord{seq: w.seq + 1, ts: ts, node: node, vals: *vals}
	var err error
	w.scratch, err = appendWALRecord(w.scratch[:0], &rec)
	if err != nil {
		return 0, err
	}
	if _, err := w.w.Write(w.scratch); err != nil {
		w.stuck = fmt.Errorf("tsdb: wal append: %w", err)
		return 0, w.stuck
	}
	w.seq = rec.seq
	w.bytes.Add(int64(len(w.scratch)))
	w.records.Add(1)
	switch w.policy {
	case FsyncAlways:
		if err := w.syncLocked(); err != nil {
			return 0, err
		}
	case FsyncNever:
		if err := w.w.Flush(); err != nil {
			w.stuck = fmt.Errorf("tsdb: wal flush: %w", err)
			return 0, w.stuck
		}
	}
	return rec.seq, nil
}

// lastSeq reports the newest assigned sequence number. Safe without the
// persister's coordination (it takes the wal's own lock).
func (w *wal) lastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// sync flushes the buffer and fsyncs the segment (the batch flusher's
// tick, and the drain on Close).
func (w *wal) sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.stuck != nil {
		return w.stuck
	}
	return w.syncLocked()
}

func (w *wal) syncLocked() error {
	if err := w.w.Flush(); err != nil {
		w.stuck = fmt.Errorf("tsdb: wal flush: %w", err)
		return w.stuck
	}
	if err := w.f.Sync(); err != nil {
		w.stuck = fmt.Errorf("tsdb: wal fsync: %w", err)
		return w.stuck
	}
	w.fsyncs.Add(1)
	return nil
}

// rotate seals the current segment (flush + fsync + close) and starts a
// fresh one continuing the sequence. Called after a snapshot so the sealed
// segments become eligible for deletion.
func (w *wal) rotate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.stuck != nil {
		return w.stuck
	}
	if err := w.syncLocked(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		w.stuck = fmt.Errorf("tsdb: wal close: %w", err)
		return w.stuck
	}
	path := filepath.Join(w.dir, walSegmentName(w.seq+1))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		w.stuck = fmt.Errorf("tsdb: open wal segment: %w", err)
		return w.stuck
	}
	w.f = f
	w.w.Reset(f)
	if _, err := w.w.WriteString(walMagic); err != nil {
		w.stuck = fmt.Errorf("tsdb: write wal header: %w", err)
		return w.stuck
	}
	w.bytes.Add(int64(len(walMagic)))
	return nil
}

// close drains and closes the segment. The WAL is unusable afterwards.
func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.stuck != nil {
		// Still release the descriptor; the sticky error is the story.
		_ = w.f.Close()
		return w.stuck
	}
	err := w.syncLocked()
	if cerr := w.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("tsdb: wal close: %w", cerr)
	}
	w.stuck = ErrClosed
	return err
}
