package tracefile

import (
	"bytes"
	"math"
	"testing"

	"highrpm/internal/tsdb"
)

func TestSeriesCSVRoundTrip(t *testing.T) {
	in := []tsdb.Point{
		{Time: 0, Value: 90.125, Min: 88.5, Max: 93.25, Count: 10},
		{Time: 10, Value: math.NaN(), Min: math.NaN(), Max: math.NaN(), Count: 0},
		{Time: 20, Value: 101.5, Min: 101.5, Max: 101.5, Count: 1},
	}
	var buf bytes.Buffer
	if err := WriteSeries(&buf, "p_cpu", in); err != nil {
		t.Fatal(err)
	}
	ch, out, err := ReadSeries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ch != "p_cpu" {
		t.Fatalf("channel %q", ch)
	}
	if len(out) != len(in) {
		t.Fatalf("%d rows, want %d", len(out), len(in))
	}
	for i, p := range out {
		want := in[i]
		if p.Time != want.Time || p.Count != want.Count {
			t.Fatalf("row %d = %+v", i, p)
		}
		if math.IsNaN(want.Value) != math.IsNaN(p.Value) {
			t.Fatalf("row %d NaN mismatch: %+v", i, p)
		}
		if !math.IsNaN(want.Value) && (p.Value != want.Value || p.Min != want.Min || p.Max != want.Max) {
			t.Fatalf("row %d = %+v, want %+v", i, p, want)
		}
	}
}

func TestReadSeriesRejectsTraceFile(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("time_s,foo,bar,baz,qux\n")
	if _, _, err := ReadSeries(&buf); err == nil {
		t.Fatal("bogus header accepted")
	}
}
