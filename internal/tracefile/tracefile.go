// Package tracefile persists and replays monitoring traces as CSV. It is
// the bridge between live collection and offline analysis: highrpm-trace
// writes these files, highrpm-analyze restores them with StaticTRR, and
// operators can feed logs from real collectors in the same layout.
//
// Column layout (header required):
//
//	time_s, p_node_w, p_cpu_w, p_mem_w, p_other_w, freq_ghz, ipmi_w,
//	<the ten Table 2 PMC events>
//
// p_cpu_w/p_mem_w/p_other_w are optional ground truth (empty when the rig
// is absent); ipmi_w is non-empty only on seconds with an IM reading.
package tracefile

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"

	"highrpm/internal/dataset"
	"highrpm/internal/platform"
	"highrpm/internal/pmu"
	"highrpm/internal/tsdb"
)

// ErrCorruptHeader marks a file whose header line is missing, truncated,
// or not a trace/series header at all — the caller handed us something
// that was never (or is no longer) a tracefile, as opposed to a tracefile
// with a bad data row. Callers distinguish the two with errors.Is: a
// corrupt header usually means "wrong file", a bad row means "damaged
// file".
var ErrCorruptHeader = errors.New("tracefile: corrupt or missing header")

// Row is one second of a persisted trace.
type Row struct {
	Time   float64
	PNode  float64 // NaN when unknown
	PCPU   float64 // NaN when unknown
	PMEM   float64 // NaN when unknown
	POther float64 // NaN when unknown
	Freq   float64 // NaN when unknown
	// IPMI is the IM reading visible this second; NaN otherwise.
	IPMI float64
	PMC  [pmu.NumEvents]float64
}

// File is a parsed trace file.
type File struct {
	Rows []Row
}

// Header returns the canonical column names.
func Header() []string {
	h := []string{"time_s", "p_node_w", "p_cpu_w", "p_mem_w", "p_other_w", "freq_ghz", "ipmi_w"}
	return append(h, pmu.EventNames()...)
}

// Write serialises a platform trace plus its sensor readings.
func Write(w io.Writer, tr *platform.Trace, readings []platform.Reading) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(Header()); err != nil {
		return err
	}
	readingAt := map[int]float64{}
	for _, r := range readings {
		readingAt[int(r.Time/tr.Dt)] = r.Power
	}
	for i, s := range tr.Samples {
		row := []string{
			fmtFloat(s.Time), fmtFloat(s.PNode), fmtFloat(s.PCPU),
			fmtFloat(s.PMEM), fmtFloat(s.POther), fmtFloat(s.Freq),
		}
		if v, ok := readingAt[i]; ok {
			row = append(row, fmtFloat(v))
		} else {
			row = append(row, "")
		}
		for _, c := range s.Counters.Slice() {
			row = append(row, strconv.FormatFloat(c, 'g', 10, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

// Read parses a trace file, validating the header and field counts.
func Read(r io.Reader) (*File, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(Header())
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptHeader, err)
	}
	want := Header()
	for i, h := range header {
		if h != want[i] {
			return nil, fmt.Errorf("%w: column %d is %q, want %q", ErrCorruptHeader, i, h, want[i])
		}
	}
	f := &File{}
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("tracefile: line %d: %w", line+1, err)
		}
		line++
		var row Row
		row.Time, err = parseFloat(rec[0], false)
		if err != nil {
			return nil, fmt.Errorf("tracefile: line %d time: %w", line, err)
		}
		fields := []*float64{&row.PNode, &row.PCPU, &row.PMEM, &row.POther, &row.Freq, &row.IPMI}
		for k, dst := range fields {
			*dst, err = parseFloat(rec[1+k], true)
			if err != nil {
				return nil, fmt.Errorf("tracefile: line %d column %s: %w", line, want[1+k], err)
			}
		}
		for e := 0; e < pmu.NumEvents; e++ {
			v, err := parseFloat(rec[7+e], false)
			if err != nil {
				return nil, fmt.Errorf("tracefile: line %d column %s: %w", line, want[7+e], err)
			}
			row.PMC[e] = v
		}
		f.Rows = append(f.Rows, row)
	}
	if len(f.Rows) == 0 {
		return nil, fmt.Errorf("tracefile: no data rows")
	}
	return f, nil
}

func parseFloat(s string, optional bool) (float64, error) {
	if s == "" {
		if optional {
			return math.NaN(), nil
		}
		return 0, fmt.Errorf("empty required field")
	}
	return strconv.ParseFloat(s, 64)
}

// Dataset converts the file into a model-ready set. Missing ground truth
// stays NaN; the metrics layer skips NaN observations.
func (f *File) Dataset(suite, bench string) *dataset.Set {
	out := &dataset.Set{}
	for _, r := range f.Rows {
		out.Samples = append(out.Samples, dataset.Sample{
			Time:  r.Time,
			PMC:   append([]float64(nil), r.PMC[:]...),
			PNode: r.PNode,
			PCPU:  r.PCPU,
			PMEM:  r.PMEM,
		})
		out.Suites = append(out.Suites, suite)
		out.Benchmarks = append(out.Benchmarks, bench)
	}
	return out
}

// Readings extracts the IM readings (index, value) recorded in the file.
func (f *File) Readings() (idx []int, vals []float64) {
	for i, r := range f.Rows {
		if !math.IsNaN(r.IPMI) {
			idx = append(idx, i)
			vals = append(vals, r.IPMI)
		}
	}
	return idx, vals
}

// SeriesHeader returns the column names WriteSeries emits for a queried
// power channel, following the trace layout conventions (time_s first,
// watt columns suffixed _w, empty cells for NaN).
func SeriesHeader(channel string) []string {
	return []string{"time_s", channel + "_w", "min_w", "max_w", "count"}
}

// WriteSeries serialises a store query result (highrpm-query's -csv
// output). At raw resolution min/max repeat the value and count is 1; NaN
// gaps become empty cells exactly like the optional trace columns.
func WriteSeries(w io.Writer, channel string, pts []tsdb.Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(SeriesHeader(channel)); err != nil {
		return err
	}
	for _, p := range pts {
		row := []string{
			fmtFloat(p.Time),
			fmtOptFloat(p.Value),
			fmtOptFloat(p.Min),
			fmtOptFloat(p.Max),
			strconv.Itoa(p.Count),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtOptFloat(v float64) string {
	if math.IsNaN(v) {
		return ""
	}
	return fmtFloat(v)
}

// ReadSeries parses a WriteSeries file back into store points; the
// returned channel name is recovered from the header.
func ReadSeries(r io.Reader) (channel string, pts []tsdb.Point, err error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 5
	header, err := cr.Read()
	if err != nil {
		return "", nil, fmt.Errorf("%w: %v", ErrCorruptHeader, err)
	}
	if header[0] != "time_s" || len(header[1]) < 3 || header[1][len(header[1])-2:] != "_w" {
		return "", nil, fmt.Errorf("%w: not a series file (header %v)", ErrCorruptHeader, header)
	}
	channel = header[1][:len(header[1])-2]
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return "", nil, fmt.Errorf("tracefile: series line %d: %w", line+1, err)
		}
		line++
		var p tsdb.Point
		if p.Time, err = parseFloat(rec[0], false); err != nil {
			return "", nil, fmt.Errorf("tracefile: series line %d time: %w", line, err)
		}
		if p.Value, err = parseFloat(rec[1], true); err != nil {
			return "", nil, fmt.Errorf("tracefile: series line %d value: %w", line, err)
		}
		if p.Min, err = parseFloat(rec[2], true); err != nil {
			return "", nil, fmt.Errorf("tracefile: series line %d min: %w", line, err)
		}
		if p.Max, err = parseFloat(rec[3], true); err != nil {
			return "", nil, fmt.Errorf("tracefile: series line %d max: %w", line, err)
		}
		if p.Count, err = strconv.Atoi(rec[4]); err != nil {
			return "", nil, fmt.Errorf("tracefile: series line %d count: %w", line, err)
		}
		pts = append(pts, p)
	}
	return channel, pts, nil
}

// HasGroundTruth reports whether every row carries node power.
func (f *File) HasGroundTruth() bool {
	for _, r := range f.Rows {
		if math.IsNaN(r.PNode) {
			return false
		}
	}
	return true
}
