package tracefile

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"highrpm/internal/platform"
	"highrpm/internal/workload"
)

func sampleTrace(t *testing.T) (*platform.Trace, []platform.Reading) {
	t.Helper()
	node, err := platform.NewNode(platform.ARMConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.Find("HPCC/FFT")
	if err != nil {
		t.Fatal(err)
	}
	tr := node.RunFor(b, 60, 1)
	sensor := platform.NewIPMISensor(10, 2)
	return tr, sensor.Readings(tr)
}

func TestWriteReadRoundTrip(t *testing.T) {
	tr, readings := sampleTrace(t)
	var buf bytes.Buffer
	if err := Write(&buf, tr, readings); err != nil {
		t.Fatal(err)
	}
	f, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 60 {
		t.Fatalf("%d rows want 60", len(f.Rows))
	}
	// Power round-trips to the 3-decimal precision of the writer.
	for i, r := range f.Rows {
		if math.Abs(r.PNode-tr.Samples[i].PNode) > 0.001 {
			t.Fatalf("row %d PNode %g vs %g", i, r.PNode, tr.Samples[i].PNode)
		}
	}
	idx, vals := f.Readings()
	if len(idx) != len(readings) {
		t.Fatalf("%d readings want %d", len(idx), len(readings))
	}
	if len(vals) > 0 && math.Abs(vals[0]-readings[0].Power) > 0.001 {
		t.Fatalf("reading value %g vs %g", vals[0], readings[0].Power)
	}
	if !f.HasGroundTruth() {
		t.Fatal("simulated trace must carry ground truth")
	}
}

func TestDatasetConversion(t *testing.T) {
	tr, readings := sampleTrace(t)
	var buf bytes.Buffer
	if err := Write(&buf, tr, readings); err != nil {
		t.Fatal(err)
	}
	f, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	set := f.Dataset("HPCC", "FFT")
	if set.Len() != 60 {
		t.Fatalf("dataset len %d", set.Len())
	}
	if len(set.Samples[0].PMC) != 10 {
		t.Fatal("PMC width wrong")
	}
	if set.Suites[0] != "HPCC" || set.Benchmarks[0] != "FFT" {
		t.Fatal("tags wrong")
	}
}

func TestReadRejectsBadHeader(t *testing.T) {
	if _, err := Read(strings.NewReader("a,b,c\n1,2,3\n")); err == nil {
		t.Fatal("expected header error")
	}
}

func TestReadRejectsWrongFieldCount(t *testing.T) {
	head := strings.Join(Header(), ",")
	if _, err := Read(strings.NewReader(head + "\n1,2\n")); err == nil {
		t.Fatal("expected field-count error")
	}
}

func TestReadRejectsEmpty(t *testing.T) {
	head := strings.Join(Header(), ",")
	if _, err := Read(strings.NewReader(head + "\n")); err == nil {
		t.Fatal("expected no-rows error")
	}
}

func TestReadOptionalFields(t *testing.T) {
	// A log from a real collector: no component ground truth, no IPMI on
	// most rows.
	head := strings.Join(Header(), ",")
	rows := head + "\n"
	rows += "0.000,90.0,,,,2.2,90.5,1,2,3,4,5,6,7,8,9,10\n"
	rows += "1.000,91.0,,,,2.2,,1,2,3,4,5,6,7,8,9,10\n"
	f, err := Read(strings.NewReader(rows))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(f.Rows[0].PCPU) {
		t.Fatal("missing PCPU should be NaN")
	}
	idx, _ := f.Readings()
	if len(idx) != 1 || idx[0] != 0 {
		t.Fatalf("readings = %v", idx)
	}
	if f.HasGroundTruth() != true {
		t.Fatal("node power present on all rows")
	}
}

func TestReadRejectsGarbageNumbers(t *testing.T) {
	head := strings.Join(Header(), ",")
	rows := head + "\nnope,90,,,,2.2,,1,2,3,4,5,6,7,8,9,10\n"
	if _, err := Read(strings.NewReader(rows)); err == nil {
		t.Fatal("expected parse error")
	}
}
