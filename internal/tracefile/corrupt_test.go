package tracefile

import (
	"errors"
	"strings"
	"testing"
)

// TestReadCorruptHeader drives Read with truncated and garbage input: the
// typed ErrCorruptHeader must fire for everything that is not a trace
// file, and must NOT fire for a trace file with a damaged data row —
// callers use the distinction to tell "wrong file" from "damaged file".
func TestReadCorruptHeader(t *testing.T) {
	goodHead := strings.Join(Header(), ",")
	cases := []struct {
		name    string
		in      string
		corrupt bool // want ErrCorruptHeader
	}{
		{"empty file", "", true},
		{"whitespace only", "\n\n", true},
		{"binary garbage", "\x00\x01\x7fPK\x03\x04\xff\xfe", true},
		{"truncated header", "time_s,p_node_w,p_cpu", true},
		{"wrong first column", strings.Replace(goodHead, "time_s", "timestamp", 1), true},
		{"reordered columns", strings.Replace(goodHead, "p_node_w,p_cpu_w", "p_cpu_w,p_node_w", 1), true},
		{"header from another csv", "name,age,city\nbob,4,berlin\n", true},
		{"bad data row, good header", goodHead + "\nnope,90,,,,2.2,,1,2,3,4,5,6,7,8,9,10\n", false},
		{"short data row, good header", goodHead + "\n0.0,90\n", false},
		{"no data rows, good header", goodHead + "\n", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(tc.in))
			if err == nil {
				t.Fatal("corrupt input was accepted")
			}
			if got := errors.Is(err, ErrCorruptHeader); got != tc.corrupt {
				t.Fatalf("errors.Is(err, ErrCorruptHeader) = %v, want %v (err: %v)", got, tc.corrupt, err)
			}
		})
	}
}

// TestReadSeriesCorruptHeader is the same table for the series reader.
func TestReadSeriesCorruptHeader(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		corrupt bool
	}{
		{"empty file", "", true},
		{"binary garbage", "\xff\xfe\x00\x00\x01", true},
		{"wrong first column", "when,p_node_w,min_w,max_w,count\n", true},
		{"channel without _w suffix", "time_s,p_node,min_w,max_w,count\n", true},
		{"header too short for a channel", "time_s,w,min_w,max_w,count\n", true},
		{"unrelated csv header", "name,age,city,zip,phone\nbob,4,berlin,1,2\n", true},
		{"bad data row, good header", "time_s,p_node_w,min_w,max_w,count\nnope,1,1,1,1\n", false},
		{"short data row, good header", "time_s,p_node_w,min_w,max_w,count\n0.0,1\n", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ReadSeries(strings.NewReader(tc.in))
			if err == nil {
				t.Fatal("corrupt input was accepted")
			}
			if got := errors.Is(err, ErrCorruptHeader); got != tc.corrupt {
				t.Fatalf("errors.Is(err, ErrCorruptHeader) = %v, want %v (err: %v)", got, tc.corrupt, err)
			}
		})
	}
}
