package svm

import (
	"math"
	"math/rand"
	"testing"

	"highrpm/internal/linmodel"
	"highrpm/internal/mat"
	"highrpm/internal/model"
)

// sineData is a smooth nonlinear target a linear model cannot fit.
func sineData(n int, seed int64) (*mat.Dense, []float64) {
	rng := rand.New(rand.NewSource(seed))
	x := mat.NewDense(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := rng.Float64()*6 - 3
		x.Set(i, 0, v)
		y[i] = math.Sin(2*v) + rng.NormFloat64()*0.02
	}
	return x, y
}

func rmseOf(m model.Regressor, x *mat.Dense, y []float64) float64 {
	var sq float64
	for i := 0; i < x.Rows(); i++ {
		d := m.Predict(x.Row(i)) - y[i]
		sq += d * d
	}
	return math.Sqrt(sq / float64(x.Rows()))
}

func TestSVRBeatsLinearOnNonlinearTarget(t *testing.T) {
	x, y := sineData(400, 1)
	tx, ty := sineData(100, 2)
	s := NewSVR(3)
	s.Gamma = 2 // the 1-D sine needs a narrower kernel than 1/num_features
	if err := s.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	lr := linmodel.NewLinear()
	if err := lr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	sErr, lErr := rmseOf(s, tx, ty), rmseOf(lr, tx, ty)
	if sErr >= lErr {
		t.Fatalf("SVR RMSE %g must beat linear %g on sin(2x)", sErr, lErr)
	}
	if sErr > 0.35 {
		t.Fatalf("SVR RMSE %g too high", sErr)
	}
}

func TestSVRFitsLinearTargetToo(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := mat.NewDense(300, 2)
	y := make([]float64, 300)
	for i := 0; i < 300; i++ {
		x.Set(i, 0, rng.NormFloat64())
		x.Set(i, 1, rng.NormFloat64())
		y[i] = 2*x.At(i, 0) - x.At(i, 1)
	}
	s := NewSVR(5)
	if err := s.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if got := rmseOf(s, x, y); got > 0.5 {
		t.Fatalf("SVR RMSE on linear data = %g", got)
	}
}

func TestSVRDeterministicPerSeed(t *testing.T) {
	x, y := sineData(100, 6)
	a, b := NewSVR(9), NewSVR(9)
	if err := a.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if a.Predict([]float64{0.5}) != b.Predict([]float64{0.5}) {
		t.Fatal("same seed must give identical SVR fits")
	}
}

func TestSVRShapeMismatch(t *testing.T) {
	if err := NewSVR(1).Fit(mat.NewDense(3, 1), []float64{1}); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestSVRUnfittedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSVR(1).Predict([]float64{1})
}

func TestSVRConstantTarget(t *testing.T) {
	x := mat.NewDense(50, 1)
	y := make([]float64, 50)
	for i := range y {
		x.Set(i, 0, float64(i))
		y[i] = 7
	}
	s := NewSVR(2)
	if err := s.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if got := s.Predict([]float64{25}); math.Abs(got-7) > 0.5 {
		t.Fatalf("constant target predicted as %g", got)
	}
}

func TestSVRPersistenceRoundTrips(t *testing.T) {
	x, y := sineData(150, 7)
	s := NewSVR(8)
	if err := s.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	data, err := model.Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := model.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{1.2}
	if got, want := back.(model.Regressor).Predict(probe), s.Predict(probe); math.Abs(got-want) > 1e-12 {
		t.Fatalf("round trip: %g vs %g", got, want)
	}
}
