// Package svm implements the SVM baseline of Table 4 as an ε-insensitive
// support-vector regressor over an RBF kernel. Because the repository is
// stdlib-only, the RBF kernel is approximated with random Fourier features
// (Rahimi & Recht), turning the kernel machine into a linear SVR in feature
// space trained with averaged stochastic subgradient descent. DESIGN.md §4
// documents this substitution; the hypothesis class (shift-invariant kernel
// machine) is preserved.
package svm

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"

	"highrpm/internal/mat"
	"highrpm/internal/model"
)

// SVR is an epsilon-insensitive RBF support-vector regressor using random
// Fourier features. Inputs should be standardized (wrap with
// model.ScaledRegressor) so the default Gamma is meaningful.
type SVR struct {
	C        float64 `json:"c"`        // regularisation weight (sklearn default 1.0)
	Epsilon  float64 `json:"epsilon"`  // insensitive-tube half width (default 0.1)
	Gamma    float64 `json:"gamma"`    // RBF bandwidth; 0 means 1/num_features
	Features int     `json:"features"` // number of random Fourier features (default 128)
	Epochs   int     `json:"epochs"`   // SGD epochs (default 40)
	Seed     int64   `json:"seed"`

	// Fitted state.
	Omega   [][]float64 `json:"omega"` // feature projection frequencies
	Phase   []float64   `json:"phase"` // feature phases
	Weights []float64   `json:"weights"`
	Bias    float64     `json:"bias"`
	YMean   float64     `json:"y_mean"`
	YScale  float64     `json:"y_scale"`
}

// NewSVR returns an SVR with scikit-like defaults.
func NewSVR(seed int64) *SVR {
	return &SVR{C: 1.0, Epsilon: 0.1, Features: 128, Epochs: 40, Seed: seed}
}

// Fit draws the random feature map and trains the linear SVR on top of it.
func (s *SVR) Fit(x *mat.Dense, y []float64) error {
	r, c := x.Dims()
	if r != len(y) {
		return fmt.Errorf("svm: %d rows vs %d targets", r, len(y))
	}
	if s.Features <= 0 {
		s.Features = 128
	}
	if s.Epochs <= 0 {
		s.Epochs = 40
	}
	if s.C <= 0 {
		s.C = 1
	}
	gamma := s.Gamma
	if gamma <= 0 {
		gamma = 1 / float64(c)
	}
	rng := rand.New(rand.NewSource(s.Seed))

	// ω ~ N(0, 2γ·I), b ~ U[0, 2π): φ(x) = √(2/D)·cos(ωᵀx + b).
	s.Omega = make([][]float64, s.Features)
	s.Phase = make([]float64, s.Features)
	sigma := math.Sqrt(2 * gamma)
	for d := range s.Omega {
		w := make([]float64, c)
		for j := range w {
			w[j] = rng.NormFloat64() * sigma
		}
		s.Omega[d] = w
		s.Phase[d] = rng.Float64() * 2 * math.Pi
	}

	// Standardize the target like sklearn users typically do for SVR; the
	// epsilon tube is defined in scaled units.
	s.YMean = mat.Mean(y)
	s.YScale = math.Sqrt(mat.Variance(y))
	if s.YScale == 0 {
		s.YScale = 1
	}
	ys := make([]float64, r)
	for i := range ys {
		ys[i] = (y[i] - s.YMean) / s.YScale
	}

	// Pre-compute feature vectors once; r×Features is small at our scale.
	feats := make([][]float64, r)
	for i := 0; i < r; i++ {
		feats[i] = s.featurize(x.Row(i))
	}

	// Averaged stochastic subgradient descent on
	//   (1/2)‖w‖² + C·Σ max(0, |wᵀφ+b − y| − ε).
	lambda := 1 / (s.C * float64(r))
	w := make([]float64, s.Features)
	avgW := make([]float64, s.Features)
	var b, avgB float64
	order := rng.Perm(r)
	t := 1.0
	var updates float64
	for e := 0; e < s.Epochs; e++ {
		rng.Shuffle(r, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			eta := 1 / (lambda * t)
			if eta > 10 {
				eta = 10
			}
			pred := mat.Dot(w, feats[i]) + b
			err := pred - ys[i]
			// Regularisation shrink.
			mat.Scale(1-eta*lambda, w)
			switch {
			case err > s.Epsilon:
				mat.AXPY(-eta, feats[i], w)
				b -= eta
			case err < -s.Epsilon:
				mat.AXPY(eta, feats[i], w)
				b += eta
			}
			mat.AXPY(1, w, avgW)
			avgB += b
			updates++
			t++
		}
	}
	mat.Scale(1/updates, avgW)
	s.Weights = avgW
	s.Bias = avgB / updates
	return nil
}

// featurize maps x through the random Fourier feature map.
func (s *SVR) featurize(x []float64) []float64 {
	out := make([]float64, s.Features)
	scale := math.Sqrt(2 / float64(s.Features))
	for d, w := range s.Omega {
		out[d] = scale * math.Cos(mat.Dot(w, x)+s.Phase[d])
	}
	return out
}

// Predict evaluates the SVR on one (standardized) feature vector.
func (s *SVR) Predict(features []float64) float64 {
	if s.Weights == nil {
		panic("svm: model is not fitted")
	}
	phi := s.featurize(features)
	return (mat.Dot(s.Weights, phi)+s.Bias)*s.YScale + s.YMean
}

// Kind implements model.Persistable.
func (s *SVR) Kind() string { return "svm.svr" }

// MarshalState implements model.Persistable.
func (s *SVR) MarshalState() ([]byte, error) { return json.Marshal(s) }

func init() {
	model.RegisterKind("svm.svr", func(b []byte) (any, error) {
		m := &SVR{}
		return m, json.Unmarshal(b, m)
	})
}

var _ model.Regressor = (*SVR)(nil)
