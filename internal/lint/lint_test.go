package lint

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// fixtureResult loads the fixture module once for every test in this
// file; package discovery shells out to `go list`, so the run is shared.
var (
	fixtureOnce sync.Once
	fixtureRes  *Result
	fixtureErr  error
)

func fixture(t *testing.T) *Result {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureRes, fixtureErr = Run("testdata/fixture", []string{"./..."}, Default())
	})
	if fixtureErr != nil {
		t.Fatalf("Run: %v", fixtureErr)
	}
	if len(fixtureRes.TypeErrors) > 0 {
		t.Fatalf("fixture must type-check cleanly, got: %v", fixtureRes.TypeErrors)
	}
	return fixtureRes
}

// key renders a diagnostic as "rule file:line" with the path relative to
// the fixture root.
func key(d Diagnostic) string {
	name := d.Pos.Filename
	if i := strings.Index(name, "fixture/"); i >= 0 {
		name = name[i+len("fixture/"):]
	}
	return fmt.Sprintf("%s %s:%d", d.Rule, name, d.Pos.Line)
}

func TestFixtureFiresEveryAnalyzer(t *testing.T) {
	res := fixture(t)
	want := []string{
		"errdrop internal/cluster/codec.go:16",
		"errdrop internal/cluster/drop.go:8",
		"leakcheck internal/cluster/svc_test.go:13",
		"determinism internal/core/core.go:14",
		"determinism internal/core/core.go:17",
		"determinism internal/core/core.go:20",
		"floateq internal/core/core.go:32",
		"maporder internal/core/core.go:37",
		"maporder internal/core/core.go:46",
		"errdrop internal/fleet/router.go:34",
		"errdrop internal/fleet/router.go:39",
		"leakcheck internal/fleet/router_test.go:10",
		"layering internal/mat/mat.go:5",
		"leakcheck internal/obs/obs_test.go:10",
		"errdrop internal/obs/server.go:32",
		"errdrop internal/obs/server.go:37",
		"leakcheck internal/tsdb/store_test.go:10",
		"errdrop internal/tsdb/wal.go:9",
		"leakcheck internal/tsdb/wal_test.go:7",
		"layering internal/util/util.go:4",
	}
	got := make([]string, 0, len(res.Diagnostics))
	for _, d := range res.Diagnostics {
		got = append(got, key(d))
	}
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diagnostic %d: got %q, want %q", i, got[i], want[i])
		}
	}
}

func TestCleanIdiomsNotFlagged(t *testing.T) {
	res := fixture(t)
	for _, d := range res.Diagnostics {
		switch {
		case d.Rule == "maporder" && d.Pos.Line > 50:
			t.Errorf("collect-then-sort idiom flagged: %s", d)
		case d.Rule == "errdrop" && strings.Contains(d.Pos.Filename, "drop.go") && d.Pos.Line > 10:
			t.Errorf("explicit _ = or defer flagged: %s", d)
		case d.Rule == "errdrop" && strings.Contains(d.Pos.Filename, "obs/server.go") && d.Pos.Line > 38:
			t.Errorf("propagated or deferred close flagged: %s", d)
		case d.Rule == "errdrop" && strings.Contains(d.Pos.Filename, "tsdb/wal.go") && d.Pos.Line > 10:
			t.Errorf("propagated or acknowledged fsync flagged: %s", d)
		case d.Rule == "leakcheck" && !strings.Contains(d.Message, "Leaky"):
			t.Errorf("guarded or pure test flagged: %s", d)
		}
	}
}

func TestSuppressionAndStaleAccounting(t *testing.T) {
	res := fixture(t)
	// The suppressed rand.Intn must not surface as a diagnostic.
	for _, d := range res.Diagnostics {
		if d.Rule == "determinism" && d.Pos.Line == 25 {
			t.Errorf("suppressed finding surfaced: %s", d)
		}
	}
	if len(res.Ignores) != 2 {
		t.Fatalf("got %d directives, want 2", len(res.Ignores))
	}
	var used, stale int
	for _, ig := range res.Ignores {
		if !ig.Evaluated {
			t.Errorf("directive %v not evaluated although its rule ran", ig.Rules)
		}
		if ig.Used {
			used++
		} else {
			stale++
		}
	}
	if used != 1 || stale != 1 {
		t.Errorf("got %d used / %d stale directives, want 1 / 1", used, stale)
	}
}

func TestRuleSubset(t *testing.T) {
	var det Analyzer
	for _, a := range Default() {
		if a.Name() == "determinism" {
			det = a
		}
	}
	res, err := Run("testdata/fixture", []string{"./..."}, []Analyzer{det})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Diagnostics) != 3 {
		t.Fatalf("got %d diagnostics, want 3: %v", len(res.Diagnostics), res.Diagnostics)
	}
	for _, d := range res.Diagnostics {
		if d.Rule != "determinism" {
			t.Errorf("unexpected rule %q with subset enabled", d.Rule)
		}
	}
	// The floateq directive's rule did not run, so it must not count as
	// stale.
	for _, ig := range res.Ignores {
		for _, r := range ig.Rules {
			if r == "floateq" && ig.Evaluated {
				t.Errorf("floateq directive marked evaluated although the rule was disabled")
			}
		}
	}
}

func TestDefaultHasSixRules(t *testing.T) {
	names := make(map[string]bool)
	for _, a := range Default() {
		if a.Doc() == "" {
			t.Errorf("rule %s has no doc line", a.Name())
		}
		names[a.Name()] = true
	}
	for _, want := range []string{"determinism", "maporder", "floateq", "leakcheck", "errdrop", "layering"} {
		if !names[want] {
			t.Errorf("rule %s missing from Default()", want)
		}
	}
	if len(names) != 6 {
		t.Errorf("got %d rules, want 6", len(names))
	}
}
