package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath   string
	Dir          string
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Standard     bool
	DepOnly      bool
	// ForTest marks the synthetic per-test-binary package variants
	// ("pkg [pkg.test]") that `go list -test` fabricates.
	ForTest string
}

// load discovers every package matched by patterns below dir, parses its
// sources (including test files) and type-checks each unit against the
// compiler's export data for its dependencies. One `go list` invocation
// supplies both the file lists for the matched packages and the export
// data for the whole dependency graph (test dependencies included), so no
// non-stdlib machinery is needed.
func load(dir string, patterns []string) (*token.FileSet, []*Package, []string, error) {
	args := append([]string{"list", "-deps", "-test", "-export", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, nil, nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	var roots []*listPackage
	seen := make(map[string]bool)
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.ForTest != "" || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && !seen[p.ImportPath] {
			seen[p.ImportPath] = true
			cp := p
			roots = append(roots, &cp)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	})

	var typeErrs []string
	var pkgs []*Package
	for _, lp := range roots {
		units := []struct {
			path  string
			names []string
			tests []string
			xtest bool
		}{
			{lp.ImportPath, lp.GoFiles, lp.TestGoFiles, false},
			{lp.ImportPath + "_test", lp.XTestGoFiles, nil, true},
		}
		for _, u := range units {
			if len(u.names)+len(u.tests) == 0 {
				continue
			}
			pkg := &Package{ImportPath: u.path, Dir: lp.Dir, XTest: u.xtest}
			var files []*ast.File
			parse := func(names []string, test bool) error {
				for _, name := range names {
					path := filepath.Join(lp.Dir, name)
					af, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
					if err != nil {
						return fmt.Errorf("parsing %s: %v", path, err)
					}
					files = append(files, af)
					pkg.Files = append(pkg.Files, &File{Ast: af, Name: path, Test: test || strings.HasSuffix(name, "_test.go")})
				}
				return nil
			}
			if err := parse(u.names, u.xtest); err != nil {
				return nil, nil, nil, err
			}
			if err := parse(u.tests, true); err != nil {
				return nil, nil, nil, err
			}
			conf := types.Config{
				Importer: imp,
				Error: func(err error) {
					typeErrs = append(typeErrs, err.Error())
				},
			}
			info := &types.Info{
				Types:      make(map[ast.Expr]types.TypeAndValue),
				Uses:       make(map[*ast.Ident]types.Object),
				Defs:       make(map[*ast.Ident]types.Object),
				Selections: make(map[*ast.SelectorExpr]*types.Selection),
			}
			tpkg, _ := conf.Check(u.path, fset, files, info)
			pkg.Types = tpkg
			pkg.Info = info
			pkgs = append(pkgs, pkg)
		}
	}
	return fset, pkgs, typeErrs, nil
}
