package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// leakcheck enforces the goroutine-guard test-suite convention introduced
// with the fault-tolerance work and since extended to the observability
// server, the tsdb read path, and the fleet router: every Test* under
// internal/cluster/..., internal/obs/..., internal/tsdb/... or
// internal/fleet/... that spawns goroutines — directly, through package
// helpers, by starting a service, agent, router, or HTTP server, or by
// driving the store's parallel fan-out — must arm the checkNoLeaks
// goroutine-leak guard so a handler, reconnect loop, serve goroutine, or
// stuck query worker that outlives its test fails the suite.
type leakcheck struct{}

func (leakcheck) Name() string { return "leakcheck" }
func (leakcheck) Doc() string {
	return "cluster, obs, tsdb and fleet tests that spawn goroutines or start servers must call checkNoLeaks"
}

// spawnAPINames are cluster/obs/tsdb entry points known to start
// background goroutines even when the call resolves outside the analyzed
// unit (e.g. an external test package dialing a service, listening an
// obs server, or opening a durable store — tsdb.Open starts the WAL
// batch flusher under the default fsync policy).
var spawnAPINames = map[string]bool{
	"Listen": true, "Serve": true, "Dial": true,
	"DialResilientService": true, "Start": true, "Open": true,
}

// leakcheckedPrefixes are the package trees the convention covers.
var leakcheckedPrefixes = []string{
	modulePath + "/internal/cluster",
	modulePath + "/internal/obs",
	// The tsdb read path fans queries out across per-shard worker
	// goroutines and hands out pooled decode state; a test that wedges a
	// worker would leak it silently without the guard.
	modulePath + "/internal/tsdb",
	// The fleet router spawns a goroutine per accepted connection, per
	// replica forward, and per scatter-gather shard; a test that leaves a
	// router or its pooled agents running would leak all of them.
	modulePath + "/internal/fleet",
}

func leakcheckedPkg(path string) bool {
	for _, p := range leakcheckedPrefixes {
		if strings.HasPrefix(path, p) {
			return true
		}
	}
	return false
}

func (leakcheck) Run(pass *Pass) {
	if !leakcheckedPkg(pass.Pkg.BasePath()) {
		return
	}
	info := pass.Pkg.Info

	decls := make(map[*types.Func]*ast.FuncDecl)
	declFile := make(map[*types.Func]*File)
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Ast.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
				declFile[obj] = f
			}
		}
	}

	callee := func(call *ast.CallExpr) *types.Func {
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			fn, _ := info.Uses[fun].(*types.Func)
			return fn
		case *ast.SelectorExpr:
			fn, _ := info.Uses[fun.Sel].(*types.Func)
			return fn
		}
		return nil
	}

	spawns := make(map[*types.Func]bool)
	guards := make(map[*types.Func]bool)
	calls := make(map[*types.Func][]*types.Func)
	for obj, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.GoStmt:
				spawns[obj] = true
			case *ast.CallExpr:
				fn := callee(s)
				if fn == nil {
					return true
				}
				if fn.Name() == "checkNoLeaks" {
					guards[obj] = true
				}
				if fn.Pkg() != nil && leakcheckedPkg(fn.Pkg().Path()) && spawnAPINames[fn.Name()] {
					spawns[obj] = true
				}
				if _, local := decls[fn]; local {
					calls[obj] = append(calls[obj], fn)
				}
			}
			return true
		})
	}

	// Propagate both properties through package-local helpers to a
	// fixpoint: a test spawning via startService(t) is still a spawner,
	// and a setup helper that arms checkNoLeaks still guards its caller.
	for changed := true; changed; {
		changed = false
		for obj, cs := range calls {
			for _, c := range cs {
				if spawns[c] && !spawns[obj] {
					spawns[obj] = true
					changed = true
				}
				if guards[c] && !guards[obj] {
					guards[obj] = true
					changed = true
				}
			}
		}
	}

	for obj, fd := range decls {
		f := declFile[obj]
		if !f.Test || !strings.HasPrefix(obj.Name(), "Test") {
			continue
		}
		if fd.Type.Params == nil || len(fd.Type.Params.List) != 1 {
			continue
		}
		if spawns[obj] && !guards[obj] {
			pass.Reportf(fd.Pos(), "%s spawns goroutines or starts a service but never arms checkNoLeaks", obj.Name())
		}
	}
}
