package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strconv"
	"strings"
)

// modulePath is the import-path root the project-specific rules key off.
const modulePath = "highrpm"

// deterministicPkgs are the model/estimation packages where every source
// of randomness or time must be injected (seeded *rand.Rand, explicit
// clock): the paper requires TRR/SRR estimates to be reproducible per
// seed, and the golden SHA-256 determinism tests depend on it.
var deterministicPkgs = map[string]bool{
	modulePath + "/internal/core":     true,
	modulePath + "/internal/neural":   true,
	modulePath + "/internal/tree":     true,
	modulePath + "/internal/linmodel": true,
	modulePath + "/internal/svm":      true,
	modulePath + "/internal/model":    true,
	modulePath + "/internal/interp":   true,
	modulePath + "/internal/stats":    true,
}

// leafPkgs must depend on the standard library and each other only.
var leafPkgs = map[string]bool{
	modulePath + "/internal/mat":    true,
	modulePath + "/internal/stats":  true,
	modulePath + "/internal/interp": true,
}

// Default returns the full project rule set.
func Default() []Analyzer {
	return []Analyzer{
		determinism{},
		maporder{},
		floateq{},
		leakcheck{},
		errdrop{},
		layering{},
	}
}

// pkgNameOf resolves an identifier to the imported package it names, or
// nil when it is not a package qualifier.
func pkgNameOf(pass *Pass, e ast.Expr) *types.PkgName {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, _ := pass.Pkg.Info.Uses[id].(*types.PkgName)
	return pn
}

// qualifiedCall returns the package path and function name of a call to a
// package-level function of an imported package ("math/rand", "Intn").
func qualifiedCall(pass *Pass, call *ast.CallExpr) (pkg, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	pn := pkgNameOf(pass, sel.X)
	if pn == nil {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// inspectNonTest walks every non-test file of the unit.
func inspectNonTest(pass *Pass, fn func(ast.Node) bool) {
	for _, f := range pass.Pkg.Files {
		if f.Test {
			continue
		}
		ast.Inspect(f.Ast, fn)
	}
}

// ---------------------------------------------------------------------------
// determinism

type determinism struct{}

func (determinism) Name() string { return "determinism" }
func (determinism) Doc() string {
	return "forbid global math/rand, wall-clock time.Now/time.Since and os.Getenv in the deterministic model packages"
}

// seededRandCtors are the math/rand entry points that construct an
// explicitly seeded generator rather than drawing from the global source.
var seededRandCtors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors.
	"NewPCG": true, "NewChaCha8": true,
}

func (determinism) Run(pass *Pass) {
	if !deterministicPkgs[pass.Pkg.BasePath()] || pass.Pkg.XTest {
		return
	}
	inspectNonTest(pass, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name, ok := qualifiedCall(pass, call)
		if !ok {
			return true
		}
		switch pkg {
		case "math/rand", "math/rand/v2":
			if !seededRandCtors[name] {
				pass.Reportf(call.Pos(), "call to rand.%s draws from the global source; use a *rand.Rand seeded from an injected seed", name)
			}
		case "time":
			if name == "Now" || name == "Since" {
				pass.Reportf(call.Pos(), "wall-clock time.%s in a deterministic package; inject a clock or move the measurement out of the model", name)
			}
		case "os":
			if name == "Getenv" || name == "LookupEnv" || name == "Environ" {
				pass.Reportf(call.Pos(), "os.%s makes model behavior depend on the environment; plumb the value through Options", name)
			}
		}
		return true
	})
}

// ---------------------------------------------------------------------------
// floateq

type floateq struct{}

func (floateq) Name() string { return "floateq" }
func (floateq) Doc() string {
	return "forbid ==/!= between floating-point operands outside tests (exact-zero guards and x!=x NaN checks allowed)"
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func (f floateq) Run(pass *Pass) {
	info := pass.Pkg.Info
	isZeroConst := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		if !ok || tv.Value == nil {
			return false
		}
		k := tv.Value.Kind()
		return (k == constant.Int || k == constant.Float) && constant.Sign(tv.Value) == 0
	}
	inspectNonTest(pass, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op.String() != "==" && be.Op.String() != "!=") {
			return true
		}
		tx, ty := info.TypeOf(be.X), info.TypeOf(be.Y)
		if tx == nil || ty == nil || !isFloat(tx) || !isFloat(ty) {
			return true
		}
		// Exact-zero guards (division, "unset" sentinels) are
		// well-defined float comparisons.
		if isZeroConst(be.X) || isZeroConst(be.Y) {
			return true
		}
		// x != x is the idiomatic NaN check.
		if types.ExprString(be.X) == types.ExprString(be.Y) {
			return true
		}
		pass.Reportf(be.OpPos, "floating-point %s comparison; compare within an epsilon, use math.IsNaN, or justify with lint:ignore", be.Op)
		return true
	})
}

// ---------------------------------------------------------------------------
// errdrop

type errdrop struct{}

func (errdrop) Name() string { return "errdrop" }
func (errdrop) Doc() string {
	return "forbid silently discarding the error returned by Close/Flush/Write/Sync/Shutdown in non-test code"
}

var errdropNames = map[string]bool{
	// Sync joined the list with the WAL: a dropped fsync error silently
	// voids the durability guarantee the call was there to buy.
	"Close": true, "Flush": true, "Write": true, "Sync": true, "Shutdown": true,
}

var errType = types.Universe.Lookup("error").Type()

func (errdrop) Run(pass *Pass) {
	info := pass.Pkg.Info
	inspectNonTest(pass, func(n ast.Node) bool {
		stmt, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := stmt.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		default:
			return true
		}
		if !errdropNames[name] {
			return true
		}
		sig, ok := info.TypeOf(call.Fun).(*types.Signature)
		if !ok || sig.Results().Len() == 0 {
			return true
		}
		last := sig.Results().At(sig.Results().Len() - 1).Type()
		if !types.Identical(last, errType) {
			return true
		}
		pass.Reportf(call.Pos(), "error returned by %s is silently discarded; handle it or assign to _ explicitly", name)
		return true
	})
}

// ---------------------------------------------------------------------------
// layering

type layering struct{}

func (layering) Name() string { return "layering" }
func (layering) Doc() string {
	return "internal packages must not import the highrpm facade; mat/stats/interp must stay leaf packages"
}

func (layering) Run(pass *Pass) {
	base := pass.Pkg.BasePath()
	internalPkg := strings.HasPrefix(base, modulePath+"/internal/")
	leaf := leafPkgs[base]
	if !internalPkg && !leaf {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Ast.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if internalPkg && path == modulePath {
				pass.Reportf(imp.Pos(), "internal package %s imports the highrpm facade; depend on internal packages directly", base)
				continue
			}
			// Leaf packages may depend on each other (interp builds on
			// mat), and an external test package importing the package
			// under test is not a layering edge.
			if leaf && path != base && !leafPkgs[path] && strings.HasPrefix(path, modulePath+"/") {
				pass.Reportf(imp.Pos(), "leaf package %s must only depend on the standard library or other leaf packages, but imports %s", base, path)
			}
		}
	}
}
