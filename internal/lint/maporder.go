package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// maporder flags `for range` over a map whose body is order-sensitive:
// appending to a slice, accumulating floats, or writing ordered output.
// Go randomizes map iteration order, so any of these makes the result
// differ run to run — the bug class that breaks bit-exact gradient
// reduction and golden-output tests. The canonical collect-then-sort
// idiom (append keys, sort immediately after the loop) is recognized and
// exempt.
type maporder struct{}

func (maporder) Name() string { return "maporder" }
func (maporder) Doc() string {
	return "flag map iteration whose body appends, accumulates floats, or writes ordered output"
}

func (m maporder) Run(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		if f.Test {
			continue
		}
		ast.Inspect(f.Ast, func(n ast.Node) bool {
			var list []ast.Stmt
			switch b := n.(type) {
			case *ast.BlockStmt:
				list = b.List
			case *ast.CaseClause:
				list = b.Body
			case *ast.CommClause:
				list = b.Body
			default:
				return true
			}
			for i, stmt := range list {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok {
					continue
				}
				t := info.TypeOf(rs.X)
				if t == nil {
					continue
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					continue
				}
				checkMapRange(pass, rs, list[i+1:])
			}
			return true
		})
	}
}

func checkMapRange(pass *Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	info := pass.Pkg.Info
	objOf := func(e ast.Expr) types.Object {
		id, ok := e.(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := info.Uses[id]; obj != nil {
			return obj
		}
		return info.Defs[id]
	}
	declaredInBody := func(e ast.Expr) bool {
		obj := objOf(e)
		return obj != nil && obj.Pos() >= rs.Body.Pos() && obj.Pos() <= rs.Body.End()
	}
	// Writes indexed by the loop's own key/value variables touch a
	// distinct element per iteration, so their order cannot matter.
	loopVars := make(map[types.Object]bool)
	for _, v := range []ast.Expr{rs.Key, rs.Value} {
		if v != nil {
			if obj := objOf(v); obj != nil {
				loopVars[obj] = true
			}
		}
	}
	perKeyIndexed := func(e ast.Expr) bool {
		ix, ok := e.(*ast.IndexExpr)
		if !ok {
			return false
		}
		found := false
		ast.Inspect(ix.Index, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && loopVars[info.Uses[id]] {
				found = true
				return false
			}
			return true
		})
		return found
	}

	var reasons []string
	seen := make(map[string]bool)
	add := func(r string) {
		if !seen[r] {
			seen[r] = true
			reasons = append(reasons, r)
		}
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return true
			}
			lhs := s.Lhs[0]
			if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
				return true
			}
			if declaredInBody(lhs) || perKeyIndexed(lhs) {
				return true
			}
			target := types.ExprString(lhs)
			switch s.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if t := info.TypeOf(lhs); t != nil && isFloat(t) {
					add(fmt.Sprintf("accumulates into float %s (order-dependent rounding)", target))
				}
			case token.ASSIGN:
				if call, ok := s.Rhs[0].(*ast.CallExpr); ok && isAppendCall(pass, call) && !sortedAfter(pass, rest, target) {
					add(fmt.Sprintf("appends to %s", target))
				}
			}
		case *ast.CallExpr:
			if pkg, name, ok := qualifiedCall(pass, s); ok {
				if pkg == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
					add("writes formatted output")
				}
				return true
			}
			if sel, ok := s.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Write", "WriteString", "WriteByte", "WriteRune":
					add(fmt.Sprintf("writes ordered output via %s", sel.Sel.Name))
				}
			}
		}
		return true
	})
	if len(reasons) > 0 {
		pass.Reportf(rs.For, "map iteration order is nondeterministic but the body %s; iterate a sorted key slice instead", strings.Join(reasons, "; "))
	}
}

func isAppendCall(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == "append"
}

// sortedAfter recognizes the collect-then-sort idiom: a statement later
// in the same block sorts the slice the loop appended to
// (sort.Strings(keys), sort.Slice(keys, ...), slices.Sort(keys),
// sort.Sort(byKey(keys)), ...). Intervening statements (an unlock, a
// length check) are allowed; what matters is that the slice is sorted
// before the block ends.
func sortedAfter(pass *Pass, rest []ast.Stmt, target string) bool {
	for _, next := range rest {
		es, ok := next.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		pkg, _, ok := qualifiedCall(pass, call)
		if !ok || (pkg != "sort" && pkg != "slices") {
			continue
		}
		for _, arg := range call.Args {
			found := false
			ast.Inspect(arg, func(n ast.Node) bool {
				if e, ok := n.(ast.Expr); ok && types.ExprString(e) == target {
					found = true
					return false
				}
				return true
			})
			if found {
				return true
			}
		}
	}
	return false
}
