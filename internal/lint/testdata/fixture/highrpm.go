// Package highrpm is the fixture facade: internal packages importing it
// violate the layering rule.
package highrpm

// Version identifies the fixture module.
func Version() string { return "fixture" }
