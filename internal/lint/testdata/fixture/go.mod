module highrpm

go 1.22
