package obs

import "testing"

// checkNoLeaks stands in for the real goroutine-leak guard.
func checkNoLeaks(t testing.TB) { t.Helper() }

// TestServeLeaky starts the server's goroutine without arming the guard:
// leakcheck violation.
func TestServeLeaky(t *testing.T) {
	s := &Server{}
	s.Listen()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServeGuarded arms the guard and must not be flagged.
func TestServeGuarded(t *testing.T) {
	checkNoLeaks(t)
	s := &Server{}
	s.Listen()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
