// Package obs carries the errdrop and leakcheck fixtures for the
// observability server layer: discarded (*http.Server).Shutdown and
// obs-style Server Close errors, and tests that start the serve
// goroutine without arming the guard.
package obs

import (
	"context"
	"net/http"
)

// Server is an obs-like embeddable HTTP server.
type Server struct {
	done chan struct{}
}

// Listen starts the serve goroutine.
func (s *Server) Listen() {
	s.done = make(chan struct{})
	go func() { <-s.done }()
}

// Close stops the server.
func (s *Server) Close() error {
	close(s.done)
	return nil
}

// stopDropped discards the (*http.Server).Shutdown error: errdrop
// violation.
func stopDropped(ctx context.Context, h *http.Server) {
	h.Shutdown(ctx)
}

// closeDropped discards the Server Close error: errdrop violation.
func closeDropped(s *Server) {
	s.Close()
}

// stopOK propagates both errors and must not be flagged.
func stopOK(ctx context.Context, h *http.Server, s *Server) error {
	if err := h.Shutdown(ctx); err != nil {
		return err
	}
	return s.Close()
}

// closeDeferred defers cleanup, which is exempt by design.
func closeDeferred(s *Server) {
	defer s.Close()
}
