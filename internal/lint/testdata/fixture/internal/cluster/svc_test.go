package cluster

import (
	"os"
	"testing"
)

// checkNoLeaks stands in for the real goroutine-leak guard.
func checkNoLeaks(t testing.TB) { t.Helper() }

// TestLeaky spawns via a helper without arming the guard: leakcheck
// violation.
func TestLeaky(t *testing.T) {
	done := make(chan struct{})
	spin(done)
	close(done)
}

// TestGuarded arms the guard and must not be flagged.
func TestGuarded(t *testing.T) {
	checkNoLeaks(t)
	done := make(chan struct{})
	spin(done)
	close(done)
}

// TestPure spawns nothing and needs no guard.
func TestPure(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "pure")
	if err != nil {
		t.Fatal(err)
	}
	dropOK(f)
}
