package cluster

import "bufio"

// framer stands in for the binary codec's buffered frame writer.
type framer struct {
	w *bufio.Writer
}

// Flush drains the buffered frame to the connection.
func (f *framer) Flush() error { return f.w.Flush() }

// sendBad drops the codec Flush error, losing a short write: errdrop
// violation.
func sendBad(f *framer) {
	f.Flush()
}

// sendGood propagates the Flush error and must not be flagged.
func sendGood(f *framer) error {
	return f.Flush()
}
