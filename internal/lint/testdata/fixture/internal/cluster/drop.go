// Package cluster carries the errdrop and leakcheck fixtures.
package cluster

import "os"

// drop discards the Close error: errdrop violation.
func drop(f *os.File) {
	f.Close()
}

// dropOK acknowledges the error explicitly and must not be flagged.
func dropOK(f *os.File) {
	_ = f.Close()
}

// dropDeferred defers cleanup, which is exempt by design.
func dropDeferred(f *os.File) {
	defer f.Close()
}

// spin starts a goroutine that parks until released.
func spin(done chan struct{}) {
	go func() { <-done }()
}
