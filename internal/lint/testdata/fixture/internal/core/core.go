// Package core carries one deliberate violation per determinism-class
// rule, plus a suppressed finding and a stale directive, so the analyzer
// tests can assert exact diagnostics.
package core

import (
	"math/rand"
	"os"
	"sort"
	"time"
)

// Jitter draws from the global math/rand source: determinism violation.
func Jitter() float64 { return rand.Float64() }

// Stamp reads the wall clock: determinism violation.
func Stamp() int64 { return time.Now().UnixNano() }

// Env reads the environment: determinism violation.
func Env() string { return os.Getenv("HIGHRPM_SEED") }

// Suppressed is a violation silenced by a justified directive.
func Suppressed() int {
	//lint:ignore determinism fixture demonstrates suppression
	return rand.Intn(3)
}

//lint:ignore floateq fixture stale directive that suppresses nothing
var pi = 3.14

// Equal compares floats exactly: floateq violation.
func Equal(a, b float64) bool { return a == b }

// Keys collects map keys without sorting: maporder violation.
func Keys(m map[string]float64) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Sum accumulates floats in map order: maporder violation.
func Sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}

// SortedKeys uses the collect-then-sort idiom and must not be flagged.
func SortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// use keeps the stale-directive variable referenced.
func use() float64 { return pi }
