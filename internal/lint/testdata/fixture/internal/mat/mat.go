// Package mat is a leaf package that deliberately grows a non-leaf
// dependency to trip the layering rule.
package mat

import "highrpm/internal/util"

// Tag returns a label derived from the forbidden dependency.
func Tag() string { return "mat-" + util.V() }
