// Package util deliberately imports the facade to trip the layering rule.
package util

import "highrpm"

// V reports the facade version through the forbidden import.
func V() string { return highrpm.Version() }
