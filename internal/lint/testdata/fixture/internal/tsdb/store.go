// Package tsdb carries the leakcheck fixture for the store's parallel
// query fan-out.
package tsdb

import "sync"

// Store stands in for the time-series store.
type Store struct{}

// Aggregate fans per-node reads out across worker goroutines, like the
// real store's parallel query path.
func (st *Store) Aggregate(nodes int) {
	var wg sync.WaitGroup
	for i := 0; i < nodes; i++ {
		wg.Add(1)
		go func() { defer wg.Done() }()
	}
	wg.Wait()
}
