package tsdb

import "testing"

// checkNoLeaks stands in for the real goroutine-leak guard.
func checkNoLeaks(t testing.TB) { t.Helper() }

// TestAggregateLeaky drives the parallel fan-out without arming the
// guard: leakcheck violation.
func TestAggregateLeaky(t *testing.T) {
	var st Store
	st.Aggregate(4)
}

// TestAggregateGuarded arms the guard and must not be flagged.
func TestAggregateGuarded(t *testing.T) {
	checkNoLeaks(t)
	var st Store
	st.Aggregate(4)
}
