// WAL fixture: a dropped fsync error voids the durability guarantee, so
// errdrop must flag it; Open stands in for the durable store constructor.
package tsdb

import "os"

// syncBad drops the fsync error: errdrop violation.
func syncBad(f *os.File) {
	f.Sync()
}

// syncOK propagates the error and must not be flagged.
func syncOK(f *os.File) error {
	return f.Sync()
}

// syncAck acknowledges the error explicitly, which is exempt by design.
func syncAck(f *os.File) {
	_ = f.Sync()
}

// Open stands in for the durable store constructor. It is a spawn API by
// name: the real Open starts the WAL batch flusher goroutine under the
// default fsync policy, so tests calling it must arm checkNoLeaks even
// though no go statement is visible at the call site.
func Open() *Store {
	return &Store{}
}
