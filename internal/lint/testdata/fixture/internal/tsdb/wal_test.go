package tsdb

import "testing"

// TestOpenLeaky opens the durable store — a spawn API: Open starts the
// batch flusher — without arming the guard: leakcheck violation.
func TestOpenLeaky(t *testing.T) {
	st := Open()
	_ = st
}

// TestOpenGuarded arms the guard first and must not be flagged.
func TestOpenGuarded(t *testing.T) {
	checkNoLeaks(t)
	st := Open()
	_ = st
}
