package fleet

import "testing"

// checkNoLeaks stands in for the real goroutine-leak guard.
func checkNoLeaks(t testing.TB) { t.Helper() }

// TestRouterLeaky starts the router's accept goroutine without arming the
// guard: leakcheck violation.
func TestRouterLeaky(t *testing.T) {
	r := &Router{}
	r.Listen()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRouterGuarded arms the guard and must not be flagged.
func TestRouterGuarded(t *testing.T) {
	checkNoLeaks(t)
	r := &Router{}
	r.Listen()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}
