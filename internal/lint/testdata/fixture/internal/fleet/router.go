// Package fleet carries the errdrop and leakcheck fixtures for the
// scale-out router layer: discarded Router Shutdown/Close errors and
// tests that start the accept goroutine without arming the guard.
package fleet

import "time"

// Router is a fleet-like front-end that owns an accept goroutine.
type Router struct {
	done chan struct{}
}

// Listen starts the accept goroutine.
func (r *Router) Listen() {
	r.done = make(chan struct{})
	go func() { <-r.done }()
}

// Shutdown drains in-flight requests and stops the router.
func (r *Router) Shutdown(grace time.Duration) error {
	_ = grace
	close(r.done)
	return nil
}

// Close stops the router immediately.
func (r *Router) Close() error {
	close(r.done)
	return nil
}

// shutdownDropped discards the Shutdown error: errdrop violation.
func shutdownDropped(r *Router) {
	r.Shutdown(time.Second)
}

// closeDropped discards the Close error: errdrop violation.
func closeDropped(r *Router) {
	r.Close()
}

// shutdownOK propagates the error and must not be flagged.
func shutdownOK(r *Router) error {
	return r.Shutdown(time.Second)
}

// closeDeferred defers cleanup, which is exempt by design.
func closeDeferred(r *Router) {
	defer r.Close()
}
