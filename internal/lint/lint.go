// Package lint is a project-aware static-analysis engine for the HighRPM
// tree. It enforces the invariants no compiler checks — bit-exact
// determinism of the training engine, goroutine-leak hygiene in the
// cluster tests, float-equality discipline, and the package layering that
// keeps internal/{mat,stats,interp} leaf dependencies — so regressions
// surface on every verify run instead of in review.
//
// The engine is stdlib-only: packages are discovered with
// `go list -deps -test -export -json`, parsed with go/parser, and
// type-checked with go/types against the compiler's export data.
// Analyzers implement the Analyzer interface and report position-accurate
// diagnostics through a Pass. Individual findings are suppressed in
// source with
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// placed on, or on the line directly above, the offending line, or for a
// whole file with //lint:file-ignore. A reason is mandatory; directives
// that suppress nothing are tracked so `highrpm-vet -fix-ignore` can list
// stale ones.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a resolved source position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the canonical file:line:col: rule: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Analyzer is one pluggable rule. Run inspects a single type-checked
// package unit and reports findings through the Pass.
type Analyzer interface {
	// Name is the rule identifier used in diagnostics, -rules selection
	// and lint:ignore directives.
	Name() string
	// Doc is a one-line description for the CLI rule catalogue.
	Doc() string
	// Run analyzes one package unit.
	Run(*Pass)
}

// Pass hands one analyzer one type-checked package unit.
type Pass struct {
	Fset *token.FileSet
	Pkg  *Package

	rule   string
	report func(Diagnostic)
}

// Reportf records a diagnostic at pos under the running analyzer's rule.
// Suppression via lint:ignore directives is applied by the engine.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// File is one parsed source file inside a package unit.
type File struct {
	Ast *ast.File
	// Name is the path as registered in the FileSet.
	Name string
	// Test reports whether this is a _test.go file.
	Test bool
}

// Package is one type-checked unit: either a package's GoFiles plus its
// in-package test files, or the external (xtest) test package.
type Package struct {
	// ImportPath is the canonical import path; external test units carry
	// the real package's path with a "_test" suffix.
	ImportPath string
	Dir        string
	Files      []*File
	Types      *types.Package
	Info       *types.Info
	// XTest reports an external test unit (package foo_test).
	XTest bool
}

// BasePath returns the import path with any xtest "_test" suffix removed,
// i.e. the path rules should match against.
func (p *Package) BasePath() string {
	if p.XTest {
		return strings.TrimSuffix(p.ImportPath, "_test")
	}
	return p.ImportPath
}

// Ignore is one lint:ignore / lint:file-ignore directive found in source.
type Ignore struct {
	Pos   token.Position
	Rules []string
	// Reason is the mandatory justification text.
	Reason string
	// File marks a file-scoped directive (lint:file-ignore).
	File bool
	// Used is set when the directive suppressed at least one diagnostic
	// of an enabled rule.
	Used bool
	// Evaluated is set when at least one of the directive's rules was
	// enabled for the run; unused-but-unevaluated directives are not
	// stale, the rule just wasn't selected.
	Evaluated bool
}

func (ig *Ignore) matches(rule string, pos token.Position) bool {
	ruleOK := false
	for _, r := range ig.Rules {
		if r == rule {
			ruleOK = true
			break
		}
	}
	if !ruleOK || ig.Pos.Filename != pos.Filename {
		return false
	}
	if ig.File {
		return true
	}
	return ig.Pos.Line == pos.Line || ig.Pos.Line == pos.Line-1
}

// Result is the outcome of one engine run.
type Result struct {
	Diagnostics []Diagnostic
	// Ignores lists every directive seen, with usage accounting.
	Ignores []*Ignore
	// TypeErrors collects go/types errors; the tree is expected to
	// compile (verify.sh builds before vetting), so these indicate an
	// engine or environment problem rather than a lint finding.
	TypeErrors []string
}

// directiveMarker is the comment prefix shared by both directive forms.
const directiveMarker = "//lint:"

// parseIgnores extracts lint directives from a file. Malformed directives
// (no rule, or no reason) are reported as diagnostics under the "lint"
// pseudo-rule so they cannot silently suppress nothing.
func parseIgnores(fset *token.FileSet, f *ast.File, report func(Diagnostic)) []*Ignore {
	var out []*Ignore
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, directiveMarker) {
				continue
			}
			rest := strings.TrimPrefix(text, directiveMarker)
			isFile := false
			switch {
			case strings.HasPrefix(rest, "file-ignore"):
				isFile = true
				rest = strings.TrimPrefix(rest, "file-ignore")
			case strings.HasPrefix(rest, "ignore"):
				rest = strings.TrimPrefix(rest, "ignore")
			default:
				report(Diagnostic{
					Pos:     fset.Position(c.Pos()),
					Rule:    "lint",
					Message: fmt.Sprintf("unknown lint directive %q", text),
				})
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				report(Diagnostic{
					Pos:     fset.Position(c.Pos()),
					Rule:    "lint",
					Message: "malformed lint:ignore directive: want //lint:ignore <rule> <reason>",
				})
				continue
			}
			out = append(out, &Ignore{
				Pos:    fset.Position(c.Pos()),
				Rules:  strings.Split(fields[0], ","),
				Reason: strings.Join(fields[1:], " "),
				File:   isFile,
			})
		}
	}
	return out
}

// Run loads the packages matched by patterns (relative to dir) and runs
// every analyzer over every loaded unit. Diagnostics are returned sorted
// by position; suppressed findings are dropped and accounted on their
// directive.
func Run(dir string, patterns []string, analyzers []Analyzer) (*Result, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	fset, pkgs, typeErrs, err := load(dir, patterns)
	if err != nil {
		return nil, err
	}
	res := &Result{TypeErrors: typeErrs}

	enabled := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name()] = true
	}

	var ignores []*Ignore
	collect := func(d Diagnostic) { res.Diagnostics = append(res.Diagnostics, d) }
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ignores = append(ignores, parseIgnores(fset, f.Ast, collect)...)
		}
	}
	for _, ig := range ignores {
		for _, r := range ig.Rules {
			if enabled[r] {
				ig.Evaluated = true
			}
		}
	}
	res.Ignores = ignores

	suppressed := func(d Diagnostic) bool {
		for _, ig := range ignores {
			if ig.matches(d.Rule, d.Pos) {
				ig.Used = true
				return true
			}
		}
		return false
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Fset: fset,
				Pkg:  pkg,
				rule: a.Name(),
				report: func(d Diagnostic) {
					if !suppressed(d) {
						res.Diagnostics = append(res.Diagnostics, d)
					}
				},
			}
			a.Run(pass)
		}
	}
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return res, nil
}
