package core

import (
	"encoding/json"
	"fmt"
	"os"

	"highrpm/internal/model"
	"highrpm/internal/neural"
	"highrpm/internal/tree"
)

// frameworkState is the JSON schema of a trained HighRPM instance.
type frameworkState struct {
	Opts    Options         `json:"opts"`
	Static  staticState     `json:"static"`
	Dynamic json.RawMessage `json:"dynamic"` // neural.LSTM envelope
	SRR     json.RawMessage `json:"srr"`     // neural.MLP envelope
}

// staticState persists StaticTRR: the residual tree with its scaler plus
// the power band. The spline itself is per-trace, not part of the model.
type staticState struct {
	Opts    StaticTRROptions      `json:"opts"`
	PUpper  float64               `json:"p_upper"`
	PBottom float64               `json:"p_bottom"`
	Scaler  *model.StandardScaler `json:"scaler"`
	Tree    *tree.Regressor       `json:"tree"`
}

// Save writes a trained framework to path as JSON.
func Save(path string, h *HighRPM) error {
	data, err := Marshal(h)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Marshal serialises a trained framework.
func Marshal(h *HighRPM) ([]byte, error) {
	if h.Static == nil || h.Dynamic == nil || h.SRR == nil {
		return nil, fmt.Errorf("core: marshal of incompletely trained framework")
	}
	scaled, ok := h.Static.Res.(*model.ScaledRegressor)
	if !ok {
		return nil, fmt.Errorf("core: unexpected ResModel type %T", h.Static.Res)
	}
	dt, ok := scaled.Inner.(*tree.Regressor)
	if !ok {
		return nil, fmt.Errorf("core: unexpected ResModel inner type %T", scaled.Inner)
	}
	dyn, err := model.Encode(h.Dynamic.Net)
	if err != nil {
		return nil, fmt.Errorf("core: encode DynamicTRR: %w", err)
	}
	srr, err := model.Encode(h.SRR.Net)
	if err != nil {
		return nil, fmt.Errorf("core: encode SRR: %w", err)
	}
	st := frameworkState{
		Opts: h.Opts,
		Static: staticState{
			Opts: h.Static.Opts, PUpper: h.Static.PUpper, PBottom: h.Static.PBottom,
			Scaler: scaled.Scaler, Tree: dt,
		},
		Dynamic: dyn,
		SRR:     srr,
	}
	return json.MarshalIndent(st, "", " ")
}

// Load reads a trained framework from path.
func Load(path string) (*HighRPM, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Unmarshal(data)
}

// Unmarshal deserialises a trained framework.
func Unmarshal(data []byte) (*HighRPM, error) {
	var st frameworkState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("core: bad framework state: %w", err)
	}
	dynAny, err := model.Decode(st.Dynamic)
	if err != nil {
		return nil, fmt.Errorf("core: decode DynamicTRR: %w", err)
	}
	srrAny, err := model.Decode(st.SRR)
	if err != nil {
		return nil, fmt.Errorf("core: decode SRR: %w", err)
	}
	h := &HighRPM{Opts: st.Opts}
	h.Static = &StaticTRR{
		Opts:    st.Static.Opts,
		PUpper:  st.Static.PUpper,
		PBottom: st.Static.PBottom,
		Res:     &model.ScaledRegressor{Inner: st.Static.Tree, Scaler: st.Static.Scaler},
	}
	dyn, ok := dynAny.(*neural.LSTM)
	if !ok {
		return nil, fmt.Errorf("core: DynamicTRR payload has type %T", dynAny)
	}
	h.Dynamic = &DynamicTRR{Opts: st.Opts.Dynamic, Net: dyn}
	srrNet, ok := srrAny.(*neural.MLP)
	if !ok {
		return nil, fmt.Errorf("core: SRR payload has type %T", srrAny)
	}
	h.SRR = &SRR{Opts: st.Opts.SRR, Net: srrNet}
	return h, nil
}
