package core

import (
	"fmt"

	"highrpm/internal/dataset"
	"highrpm/internal/interp"
	"highrpm/internal/neural"
	"highrpm/internal/pmu"
	"highrpm/internal/stats"
)

// DynamicTRROptions configures DynamicTRR training.
type DynamicTRROptions struct {
	// MissInterval is the window length in samples (§4.2.2 sets the
	// sliding window size to miss_interval so every window contains one
	// measured reading).
	MissInterval int
	// Hidden and Layers shape the LSTM (paper: two hidden layers; §6.4.3
	// found small networks best).
	Hidden, Layers int
	// Epochs and MaxWindows bound offline training cost.
	Epochs     int
	MaxWindows int
	// FineTuneOnline enables per-measurement refinement during Run.
	FineTuneOnline bool
	Seed           int64
	// Workers shards LSTM mini-batches across a worker pool: 0 uses every
	// CPU, 1 forces the bit-exact serial path (see internal/neural).
	Workers int
}

// DefaultDynamicTRROptions returns the §6.1 configuration sized for the
// single-core evaluation machine.
func DefaultDynamicTRROptions() DynamicTRROptions {
	return DynamicTRROptions{
		MissInterval: 10, Hidden: 16, Layers: 2,
		Epochs: 18, MaxWindows: 1200, FineTuneOnline: true, Seed: 17,
	}
}

func (o *DynamicTRROptions) fill() {
	if o.MissInterval < 2 {
		o.MissInterval = 10
	}
	if o.Hidden <= 0 {
		o.Hidden = 16
	}
	if o.Layers <= 0 {
		o.Layers = 2
	}
	if o.Epochs <= 0 {
		o.Epochs = 18
	}
}

// DynamicTRR is the real-time temporal restoration model: a compact LSTM
// over windows of (PMCs, previous node-power estimate) that predicts the
// node power between IM readings and fine-tunes itself whenever a measured
// reading arrives (§4.2.2).
type DynamicTRR struct {
	Opts DynamicTRROptions
	Net  *neural.LSTM
}

// FitDynamicTRR trains the LSTM offline on the labeled initial samples.
// The previous-node-power feature is taken from the spline estimate over
// the set's IM-visible readings, exactly the information available at run
// time ("P'_Node at the (i−1)-th moment ... can be determined from either
// the observed value or the spline model").
func FitDynamicTRR(train *dataset.Set, opts DynamicTRROptions) (*DynamicTRR, error) {
	opts.fill()
	if train.Len() < 3*opts.MissInterval {
		return nil, fmt.Errorf("core: DynamicTRR needs at least %d samples, got %d", 3*opts.MissInterval, train.Len())
	}
	prev, err := splineEstimate(train, train.MeasuredIndices(opts.MissInterval), nil)
	if err != nil {
		return nil, fmt.Errorf("core: DynamicTRR spline feature: %w", err)
	}
	windows := dataset.BuildWindows(train, prev, opts.MissInterval)
	windows = dataset.SubsampleWindows(windows, opts.MaxWindows)
	seqs, targets := dataset.WindowsToSeqs(windows)
	net := neural.NewLSTM(opts.Hidden, opts.Layers, opts.Seed)
	net.Epochs = opts.Epochs
	net.Workers = opts.Workers
	if err := net.FitSeq(seqs, targets); err != nil {
		return nil, fmt.Errorf("core: DynamicTRR fit: %w", err)
	}
	return &DynamicTRR{Opts: opts, Net: net}, nil
}

// Run performs online restoration over an ordered set: at each step the
// model predicts the node power from the trailing window; at measured steps
// the IM reading overrides the estimate and, when FineTuneOnline is set,
// the window anchored at the previous measurement fine-tunes the network
// (labels are the spline-anchored estimates with the measured step exact,
// the best labels available online). vals supplies IM readings for
// measuredIdx; nil uses ground truth at those indices.
func (d *DynamicTRR) Run(set *dataset.Set, measuredIdx []int, vals []float64) ([]float64, error) {
	n := set.Len()
	if n == 0 {
		return nil, fmt.Errorf("core: empty set")
	}
	measured := make(map[int]float64, len(measuredIdx))
	for k, i := range measuredIdx {
		if vals != nil {
			measured[i] = vals[k]
		} else {
			measured[i] = set.Samples[i].PNode
		}
	}
	miss := d.Opts.MissInterval
	est := make([]float64, n)
	times := set.Times()

	// Spline over the measurements seen so far, for fine-tune labels.
	var seenX, seenY []float64

	// The previous-node feature follows §4.2.2: "P'_Node at the (i−1)-th
	// moment ... can be determined from either the observed value or the
	// spline model". Online, the spline model over *past* readings is a
	// linear trend extrapolation; feeding it instead of the network's own
	// recursive output keeps per-step errors from compounding across the
	// gap and matches the splined feature used during offline training.
	var lastIdx = -1       // most recent measured index ≤ current step
	var lastVal float64    // its reading
	var trendSlope float64 // watts per step from the last two readings
	trendAt := func(i int) float64 {
		if lastIdx < 0 {
			return est[0]
		}
		return lastVal + trendSlope*float64(i-lastIdx)
	}
	prevAt := func(i int) float64 {
		if i <= 0 {
			if v, ok := measured[0]; ok {
				return v
			}
			return est[0]
		}
		if v, ok := measured[i-1]; ok {
			return v
		}
		return trendAt(i - 1)
	}
	// Rolling window buffer. Each prediction needs the trailing miss rows of
	// (PMC, prevAt) features. PMCs never change, and a row's prev feature is
	// frozen once it comes from a measurement; only trend-extrapolated prev
	// features change, and only when the trend state advances (a new
	// measurement, or est[0] being written at step 0). So instead of
	// rebuilding miss rows per step, the window slides one reused row per
	// step and refreshes exactly the rows whose prev feature went stale,
	// tracked with an epoch counter. The emitted features — and therefore
	// the estimates — are identical to rebuilding every window from scratch.
	prevEpoch := 1
	win := make([][]float64, miss)
	winIdx := make([]int, miss)    // sample index of each row
	winEpoch := make([]int, miss)  // prevEpoch when the row's prev was computed
	winFixed := make([]bool, miss) // prev came from a measurement: never stale
	for j := range win {
		win[j] = make([]float64, pmu.NumEvents+1)
	}
	winEnd := -2 // sample index of the window's last row; -2 = unfilled
	fillRow := func(j, i int) {
		copy(win[j], set.Samples[i].PMC)
		win[j][pmu.NumEvents] = prevAt(i)
		winIdx[j] = i
		winEpoch[j] = prevEpoch
		_, m0 := measured[0]
		_, mp := measured[i-1]
		winFixed[j] = (i <= 0 && m0) || (i > 0 && mp)
	}
	window := func(end int) [][]float64 {
		if winEnd < 0 || winEnd < end-miss { // unfilled or too far behind: refill outright
			for j := 0; j < miss; j++ {
				fillRow(j, max(0, end-miss+1+j))
			}
		} else {
			for winEnd < end { // slide, reusing the evicted row's buffer
				winEnd++
				first := win[0]
				copy(win, win[1:])
				copy(winIdx, winIdx[1:])
				copy(winEpoch, winEpoch[1:])
				copy(winFixed, winFixed[1:])
				win[miss-1] = first
				fillRow(miss-1, winEnd)
			}
			for j := 0; j < miss; j++ {
				if !winFixed[j] && winEpoch[j] != prevEpoch {
					win[j][pmu.NumEvents] = prevAt(winIdx[j])
					winEpoch[j] = prevEpoch
				}
			}
		}
		winEnd = end
		return win
	}

	var lastMeasured = -1
	for i := 0; i < n; i++ {
		if v, ok := measured[i]; ok {
			est[i] = v
			seenX = append(seenX, times[i])
			seenY = append(seenY, v)
			if d.Opts.FineTuneOnline && lastMeasured >= 0 && i-lastMeasured >= 2 && len(seenX) >= 2 {
				if err := d.fineTuneSegment(set, prevAt, seenX, seenY, lastMeasured, i); err != nil {
					return nil, err
				}
			}
			if lastMeasured >= 0 && i > lastMeasured {
				trendSlope = (v - lastVal) / float64(i-lastMeasured)
			}
			lastMeasured = i
			lastIdx, lastVal = i, v
			prevEpoch++ // trend state advanced: extrapolated rows are stale
		} else {
			preds := d.Net.PredictSeq(window(i))
			est[i] = preds[len(preds)-1]
		}
		if i == 0 {
			prevEpoch++ // est[0] was just written; prevAt(0) reads it
		}
	}
	return est, nil
}

// fineTuneSegment refines the network on the just-completed segment
// [lo, hi] between two measurements. prevAt supplies the same previous-node
// feature the online windows used for that segment.
func (d *DynamicTRR) fineTuneSegment(set *dataset.Set, prevAt func(int) float64, seenX, seenY []float64, lo, hi int) error {
	sp, err := interp.NewCubicSpline(seenX, seenY)
	if err != nil {
		if err == interp.ErrTooFewPoints {
			return nil
		}
		return err
	}
	times := set.Times()
	win := make([][]float64, 0, hi-lo+1)
	labels := make([]float64, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		f := make([]float64, pmu.NumEvents+1)
		copy(f, set.Samples[i].PMC)
		f[pmu.NumEvents] = prevAt(i)
		win = append(win, f)
		labels = append(labels, sp.At(times[i]))
	}
	// Measured endpoints are exact.
	labels[0] = seenY[len(seenY)-2]
	labels[len(labels)-1] = seenY[len(seenY)-1]
	return d.Net.FineTune([][][]float64{win}, [][]float64{labels})
}

// Evaluate runs online restoration with a perfect sensor at the configured
// miss interval and scores against ground truth.
func (d *DynamicTRR) Evaluate(set *dataset.Set) (stats.Metrics, error) {
	idx := set.MeasuredIndices(d.Opts.MissInterval)
	est, err := d.Run(set, idx, nil)
	if err != nil {
		return stats.Metrics{}, err
	}
	return stats.Evaluate(set.NodePower(), est), nil
}
