package core

import (
	"math"
	"path/filepath"
	"testing"
)

func TestFrameworkPersistenceRoundTrip(t *testing.T) {
	train := trainSet(t, 150)
	opts := DefaultOptions()
	opts.Dynamic.Epochs = 4
	opts.Dynamic.MaxWindows = 150
	h, err := Train(train, opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := Save(path, h); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}

	test := testSet(t, 100)
	idx := test.MeasuredIndices(10)
	// StaticTRR restorations must match exactly.
	a, err := h.Static.Restore(test, idx, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Static.Restore(test, idx, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("StaticTRR diverged at %d: %g vs %g", i, a[i], b[i])
		}
	}
	// DynamicTRR predictions (without online fine-tuning, which mutates
	// the nets differently once they diverge) must match.
	h.Dynamic.Opts.FineTuneOnline = false
	back.Dynamic.Opts.FineTuneOnline = false
	da, err := h.Dynamic.Run(test, idx, nil)
	if err != nil {
		t.Fatal(err)
	}
	db, err := back.Dynamic.Run(test, idx, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range da {
		if math.Abs(da[i]-db[i]) > 1e-9 {
			t.Fatalf("DynamicTRR diverged at %d: %g vs %g", i, da[i], db[i])
		}
	}
	// SRR predictions must match.
	ca, ma := h.SRR.PredictSet(test, nil)
	cb, mb := back.SRR.PredictSet(test, nil)
	for i := range ca {
		if math.Abs(ca[i]-cb[i]) > 1e-9 || math.Abs(ma[i]-mb[i]) > 1e-9 {
			t.Fatalf("SRR diverged at %d", i)
		}
	}
}

func TestMarshalIncompleteFramework(t *testing.T) {
	if _, err := Marshal(&HighRPM{}); err == nil {
		t.Fatal("expected error for untrained framework")
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("nope")); err == nil {
		t.Fatal("expected error")
	}
}

func TestLoadMissing(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("expected error")
	}
}
