package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func defaultPPConfig() PostProcessConfig {
	return PostProcessConfig{PUpper: 120, PBottom: 40, Alpha: 0.05, Beta: 0.20, MissInterval: 10}
}

func TestPostProcessAgreementUsesSpline(t *testing.T) {
	spl := []float64{80, 80, 80}
	res := []float64{81, 80.5, 79} // within 5% of min
	out := PostProcess(spl, res, defaultPPConfig())
	for i := range out {
		if out[i] != spl[i] {
			t.Fatalf("close agreement must keep the spline at %d: %g", i, out[i])
		}
	}
}

func TestPostProcessMidDisagreementAverages(t *testing.T) {
	spl := []float64{80}
	res := []float64{88} // 10% gap: between alpha and beta
	out := PostProcess(spl, res, defaultPPConfig())
	if out[0] != 84 {
		t.Fatalf("mid disagreement must average: %g want 84", out[0])
	}
}

func TestPostProcessLargeDisagreementTrustsSpline(t *testing.T) {
	spl := []float64{80}
	res := []float64{110} // far beyond beta
	out := PostProcess(spl, res, defaultPPConfig())
	if out[0] != 80 {
		t.Fatalf("large disagreement must fall back to spline: %g", out[0])
	}
}

func TestPostProcessClampsImplausibleResidual(t *testing.T) {
	// Residual estimates beyond the power band are replaced by the spline
	// (Operations 2 and 3), so the output equals the spline.
	spl := []float64{80, 80}
	res := []float64{130, 20} // above PUpper, below PBottom
	out := PostProcess(spl, res, defaultPPConfig())
	for i := range out {
		if out[i] != 80 {
			t.Fatalf("clamp failed at %d: %g", i, out[i])
		}
	}
}

func TestPostProcessSpikePropagation(t *testing.T) {
	// A single spline spike well beyond 30% of the range must be held
	// across the half window (Operation 1).
	n := 21
	spl := make([]float64, n)
	res := make([]float64, n)
	for i := range spl {
		spl[i] = 60
		res[i] = 60
	}
	spl[10] = 118 // deviation 58 ≥ 0.3·80
	cfg := defaultPPConfig()
	out := PostProcess(spl, res, cfg)
	for i := 10 - cfg.MissInterval/2; i <= 10+cfg.MissInterval/2; i++ {
		if out[i] < 100 {
			t.Fatalf("spike not propagated to %d: %g", i, out[i])
		}
	}
	if out[0] != 60 {
		t.Fatalf("spike leaked to the start: %g", out[0])
	}
}

func TestPostProcessLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PostProcess([]float64{1}, []float64{1, 2}, defaultPPConfig())
}

func TestPostProcessDoesNotMutateInputs(t *testing.T) {
	spl := []float64{80, 90}
	res := []float64{130, 95}
	PostProcess(spl, res, defaultPPConfig())
	if res[0] != 130 || spl[0] != 80 {
		t.Fatal("inputs were mutated")
	}
}

// Property: output is always within [min, max] of the two (clamped) input
// estimates per element — blending never extrapolates.
func TestPostProcessBlendBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(50)
		cfg := defaultPPConfig()
		spl := make([]float64, n)
		res := make([]float64, n)
		for i := range spl {
			spl[i] = 60 + rng.Float64()*20 // keep spline tame so Op1 is quiet
			res[i] = 40 + rng.Float64()*80
		}
		out := PostProcess(spl, res, cfg)
		for i := range out {
			lo := math.Min(spl[i], res[i])
			hi := math.Max(spl[i], res[i])
			// After clamping, res may be replaced by spl; widen with spl.
			lo = math.Min(lo, spl[i])
			hi = math.Max(hi, spl[i])
			if out[i] < lo-1e-9 || out[i] > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPostProcessDefaultsFill(t *testing.T) {
	// Zero alpha/beta/missInterval must not panic or divide by zero.
	out := PostProcess([]float64{50, 60}, []float64{55, 62}, PostProcessConfig{PUpper: 100, PBottom: 10})
	for _, v := range out {
		if math.IsNaN(v) {
			t.Fatal("NaN from default config")
		}
	}
}
