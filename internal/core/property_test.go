package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: StaticTRR restoration always honours the sensor readings at the
// measured indices exactly, for arbitrary measured subsets and values, and
// never emits values wildly outside the plausible band.
func TestStaticTRRHonorsReadingsProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped in -short")
	}
	train := trainSet(t, 150)
	st, err := FitStaticTRR(train, DefaultStaticTRROptions())
	if err != nil {
		t.Fatal(err)
	}
	test := testSet(t, 120)
	band := st.PUpper - st.PBottom

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random measured subset: strictly increasing indices, gaps 3..20.
		var idx []int
		for i := 0; i < test.Len(); i += 3 + rng.Intn(18) {
			idx = append(idx, i)
		}
		if len(idx) < 2 {
			return true
		}
		vals := make([]float64, len(idx))
		for k := range vals {
			vals[k] = st.PBottom + rng.Float64()*band
		}
		est, err := st.Restore(test, idx, vals)
		if err != nil {
			return false
		}
		for k, i := range idx {
			if est[i] != vals[k] {
				return false
			}
		}
		lo := st.PBottom - 0.5*band
		hi := st.PUpper + 0.5*band
		for _, v := range est {
			if v < lo || v > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: Algorithm 1's output length always matches its input and the
// function is deterministic.
func TestPostProcessDeterministicProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(80)
		spl := make([]float64, n)
		res := make([]float64, n)
		for i := range spl {
			spl[i] = 50 + rng.Float64()*60
			res[i] = 50 + rng.Float64()*60
		}
		cfg := PostProcessConfig{PUpper: 120, PBottom: 40, Alpha: 0.05, Beta: 0.2, MissInterval: 10}
		a := PostProcess(spl, res, cfg)
		b := PostProcess(spl, res, cfg)
		if len(a) != n {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
