package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"testing"
)

// Golden hashes of a fixed-seed online DynamicTRR run (float64 bit patterns
// of the estimate series, and the persisted network after its online
// fine-tunes), captured before the rolling-window buffer and the parallel
// training engine landed. With Workers=1 the run must reproduce both
// byte-for-byte: the incremental window refresh emits exactly the features
// the full per-step rebuild emitted.
const (
	goldenDynRunBitsHash = "41c0fc0e97c7f58f5e113a018bff9fb14efa58e3936c1a76712ad3961f3327cb"
	goldenDynNetHash     = "7146bb72468d812da6aec84f316ce1cf8cfa42e29396ef94c1b797037601f496"
)

func TestDynamicRunMatchesGolden(t *testing.T) {
	train := trainSet(t, 160)
	opts := DefaultDynamicTRROptions()
	opts.Epochs = 3
	opts.MaxWindows = 200
	opts.Workers = 1
	dyn, err := FitDynamicTRR(train, opts)
	if err != nil {
		t.Fatal(err)
	}
	eval := testSet(t, 120)
	idx := eval.MeasuredIndices(opts.MissInterval)
	est, err := dyn.Run(eval, idx, nil)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	var buf [8]byte
	for _, v := range est {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	if got := hex.EncodeToString(h.Sum(nil)); got != goldenDynRunBitsHash {
		t.Errorf("DynamicTRR.Run estimate bits hash = %s, want golden %s", got, goldenDynRunBitsHash)
	}
	b, err := dyn.Net.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(b)
	if got := hex.EncodeToString(sum[:]); got != goldenDynNetHash {
		t.Errorf("DynamicTRR fine-tuned net hash = %s, want golden %s", got, goldenDynNetHash)
	}
}
