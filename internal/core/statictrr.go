// Package core implements the paper's contribution: the HighRPM framework
// combining integrated measurement with software power modeling. It
// contains the two Temporal Resolution Restoration models — StaticTRR
// (spline + PMC residual model, §4.2.1) and DynamicTRR (windowed LSTM,
// §4.2.2) — the Spatial Resolution Restoration model (SRR, §4.3), and the
// two-stage initial/active learning pipeline of §4.1.
package core

import (
	"fmt"
	"math"

	"highrpm/internal/dataset"
	"highrpm/internal/interp"
	"highrpm/internal/model"
	"highrpm/internal/stats"
	"highrpm/internal/tree"
)

// StaticTRROptions configures StaticTRR training.
type StaticTRROptions struct {
	// MissInterval is the number of 1 Sa/s steps between IM readings
	// (paper default 10 ⇒ 0.1 Sa/s restored to 1 Sa/s).
	MissInterval int
	// Alpha and Beta are the Algorithm 1 agreement thresholds. The paper
	// leaves the constants unspecified; defaults 0.05 and 0.20 were chosen
	// by the hyperparameter sweep in internal/experiments.
	Alpha, Beta float64
	// Seed drives the ResModel's internal randomness.
	Seed int64
	// Workers bounds the goroutines the ResModel's split scan may use:
	// 0 uses every CPU, 1 forces serial fitting. The fitted tree is
	// identical either way.
	Workers int
}

// DefaultStaticTRROptions returns the §6.1 configuration.
func DefaultStaticTRROptions() StaticTRROptions {
	return StaticTRROptions{MissInterval: 10, Alpha: 0.05, Beta: 0.20, Seed: 11}
}

func (o *StaticTRROptions) fill() {
	if o.MissInterval < 2 {
		o.MissInterval = 10
	}
	if o.Alpha <= 0 {
		o.Alpha = 0.05
	}
	if o.Beta <= o.Alpha {
		o.Beta = o.Alpha * 4
	}
}

// StaticTRR restores the temporal resolution of historical power logs. The
// spline component captures the long-term trend through the sparse IM
// readings; the ResModel — a decision tree over PMCs, which the paper found
// to work best among Table 4's methods — captures short-term deviations
// from that trend. Algorithm 1 reconciles the two estimates.
type StaticTRR struct {
	Opts StaticTRROptions
	// Res predicts the signed deviation P_Node − P_splined from PMCs. The
	// paper's prose targets ABS(P_splined−P_Node); the signed variant is
	// required for Algorithm 1's P_residual to be a power estimate, so we
	// model the signed residual (documented in DESIGN.md).
	Res model.Regressor
	// PUpper and PBottom are the node power limits observed in training,
	// used by Algorithm 1's plausibility clamps.
	PUpper, PBottom float64
}

// FitStaticTRR trains the ResModel on a labeled set (the initial samples of
// §4.1, where the direct probe provides 1 Sa/s node power). Following
// §4.2.1, the spline is built from the set's own IM-visible readings and
// 50% of the labeled samples train the residual tree.
func FitStaticTRR(train *dataset.Set, opts StaticTRROptions) (*StaticTRR, error) {
	opts.fill()
	if train.Len() < 2*opts.MissInterval {
		return nil, fmt.Errorf("core: StaticTRR needs at least %d samples, got %d", 2*opts.MissInterval, train.Len())
	}
	splined, err := splineEstimate(train, train.MeasuredIndices(opts.MissInterval), nil)
	if err != nil {
		return nil, fmt.Errorf("core: StaticTRR spline: %w", err)
	}
	// Residual targets on 50% of the labeled samples ("we select 50% of
	// them as the training set"). Even-index sampling spreads the half
	// across every program in the concatenated set — a contiguous half
	// would omit whole suites from the ResModel's training distribution.
	idxs := make([]int, 0, train.Len()/2)
	for i := 0; i < train.Len(); i += 2 {
		idxs = append(idxs, i)
	}
	x := train.PMCMatrix()
	xTrain, _ := model.Subset(x, nil, idxs)
	resid := make([]float64, len(idxs))
	for k, i := range idxs {
		resid[k] = train.Samples[i].PNode - splined[i]
	}
	dt := tree.NewRegressor()
	dt.Seed = opts.Seed
	dt.MaxDepth = 16
	dt.MinSamplesLeaf = 3
	dt.Workers = opts.Workers
	res := &model.ScaledRegressor{Inner: dt}
	if err := res.Fit(xTrain, resid); err != nil {
		return nil, fmt.Errorf("core: StaticTRR ResModel: %w", err)
	}
	node := train.NodePower()
	s := &StaticTRR{Opts: opts, Res: res}
	s.PBottom, s.PUpper = minMax(node)
	return s, nil
}

func minMax(v []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// splineEstimate fits a cubic spline through the measured readings of the
// set and samples it at every step. vals overrides the node power at the
// measured indices (IM readings); nil uses ground truth.
func splineEstimate(s *dataset.Set, measuredIdx []int, vals []float64) ([]float64, error) {
	if len(measuredIdx) < 2 {
		return nil, interp.ErrTooFewPoints
	}
	times := s.Times()
	xs := make([]float64, len(measuredIdx))
	ys := make([]float64, len(measuredIdx))
	for k, i := range measuredIdx {
		xs[k] = times[i]
		if vals != nil {
			ys[k] = vals[k]
		} else {
			ys[k] = s.Samples[i].PNode
		}
	}
	sp, err := interp.NewCubicSpline(xs, ys)
	if err != nil {
		return nil, err
	}
	return sp.Sample(times), nil
}

// SplineOnly returns the bare spline estimate for the set given its IM
// readings; Table 6 and Fig. 7 compare against this.
func SplineOnly(s *dataset.Set, measuredIdx []int, vals []float64) ([]float64, error) {
	return splineEstimate(s, measuredIdx, vals)
}

// Restore estimates the full 1 Sa/s node power series of a set from its IM
// readings: measuredIdx are the sample indices with readings and vals the
// reading values (nil uses ground truth at those indices, i.e. a perfect
// sensor).
func (s *StaticTRR) Restore(set *dataset.Set, measuredIdx []int, vals []float64) ([]float64, error) {
	splined, err := splineEstimate(set, measuredIdx, vals)
	if err != nil {
		return nil, err
	}
	residual := make([]float64, set.Len())
	for i := range residual {
		residual[i] = splined[i] + s.Res.Predict(set.Samples[i].PMC)
	}
	out := PostProcess(splined, residual, PostProcessConfig{
		PUpper:       s.PUpper,
		PBottom:      s.PBottom,
		Alpha:        s.Opts.Alpha,
		Beta:         s.Opts.Beta,
		MissInterval: s.Opts.MissInterval,
	})
	// Measured points are authoritative.
	for k, i := range measuredIdx {
		if vals != nil {
			out[i] = vals[k]
		} else {
			out[i] = set.Samples[i].PNode
		}
	}
	return out, nil
}

// Evaluate restores the set and scores it against ground truth.
func (s *StaticTRR) Evaluate(set *dataset.Set) (stats.Metrics, error) {
	idx := set.MeasuredIndices(s.Opts.MissInterval)
	est, err := s.Restore(set, idx, nil)
	if err != nil {
		return stats.Metrics{}, err
	}
	return stats.Evaluate(set.NodePower(), est), nil
}
