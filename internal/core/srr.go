package core

import (
	"fmt"

	"highrpm/internal/dataset"
	"highrpm/internal/mat"
	"highrpm/internal/neural"
	"highrpm/internal/stats"
)

// SRROptions configures the spatial restoration model.
type SRROptions struct {
	// Hidden is the width of the single hidden layer (§4.3: a shallow MLP;
	// §6.4.3 found deeper nets dilute the node-power signal).
	Hidden int
	// Epochs bounds training cost.
	Epochs int
	// UseNode includes P_Node as an input feature; disabling it reproduces
	// the Table 8 ablation.
	UseNode bool
	Seed    int64
	// Workers shards MLP mini-batches across a worker pool: 0 uses every
	// CPU, 1 forces the bit-exact serial path (see internal/neural).
	Workers int
}

// DefaultSRROptions returns the §6.2 configuration.
func DefaultSRROptions() SRROptions {
	return SRROptions{Hidden: 32, Epochs: 60, UseNode: true, Seed: 23}
}

func (o *SRROptions) fill() {
	if o.Hidden <= 0 {
		o.Hidden = 32
	}
	if o.Epochs <= 0 {
		o.Epochs = 60
	}
}

// SRR distributes node-level power to the CPU and memory components with a
// shallow MLP whose inputs are the PMCs plus the node power estimated by
// the TRR models, closing the paper's bi-directional modeling loop
// (Fig. 5c).
type SRR struct {
	Opts SRROptions
	Net  *neural.MLP
}

// FitSRR trains the MLP on a labeled set. nodeFeature supplies the
// node-power input per sample — ground truth during the initial learning
// stage, TRR estimates during active learning; nil uses the set's own
// (measured) node power. When Opts.UseNode is false the feature is omitted
// entirely (Table 8's "without P_Node" column).
func FitSRR(train *dataset.Set, nodeFeature []float64, opts SRROptions) (*SRR, error) {
	opts.fill()
	if train.Len() == 0 {
		return nil, fmt.Errorf("core: SRR training set is empty")
	}
	s := &SRR{Opts: opts}
	x := s.features(train, nodeFeature)
	y := mat.NewDense(train.Len(), 2)
	for i, sm := range train.Samples {
		y.Set(i, 0, sm.PCPU)
		y.Set(i, 1, sm.PMEM)
	}
	net := neural.NewMLP([]int{opts.Hidden}, 2, opts.Seed)
	net.Epochs = opts.Epochs
	net.Workers = opts.Workers
	if err := net.FitMulti(x, y); err != nil {
		return nil, fmt.Errorf("core: SRR fit: %w", err)
	}
	s.Net = net
	return s, nil
}

func (s *SRR) features(set *dataset.Set, nodeFeature []float64) *mat.Dense {
	if !s.Opts.UseNode {
		return set.PMCMatrix()
	}
	if nodeFeature == nil {
		nodeFeature = set.NodePower()
	}
	return set.PMCWithNode(nodeFeature)
}

// Predict splits one sample's node power into (P_CPU, P_MEM). pnode is
// ignored when the model was trained without the node feature.
func (s *SRR) Predict(pmcs []float64, pnode float64) (pcpu, pmem float64) {
	if s.Net == nil {
		panic("core: SRR is not fitted")
	}
	var in []float64
	if s.Opts.UseNode {
		in = make([]float64, len(pmcs)+1)
		copy(in, pmcs)
		in[len(pmcs)] = pnode
	} else {
		in = pmcs
	}
	out := s.Net.PredictMulti(in)
	return out[0], out[1]
}

// PredictSet splits every sample of the set using nodePower as the node
// feature (nil uses the set's measured node power).
func (s *SRR) PredictSet(set *dataset.Set, nodePower []float64) (pcpu, pmem []float64) {
	if nodePower == nil {
		nodePower = set.NodePower()
	}
	pcpu = make([]float64, set.Len())
	pmem = make([]float64, set.Len())
	for i, sm := range set.Samples {
		pcpu[i], pmem[i] = s.Predict(sm.PMC, nodePower[i])
	}
	return pcpu, pmem
}

// FineTune runs additional epochs on reinforcement samples whose node
// feature comes from TRR estimates (the §4.1 active-learning stage).
func (s *SRR) FineTune(set *dataset.Set, nodeFeature []float64, epochs int) error {
	if s.Net == nil {
		return fmt.Errorf("core: FineTune before FitSRR")
	}
	if epochs <= 0 {
		epochs = 5
	}
	x := s.features(set, nodeFeature)
	y := mat.NewDense(set.Len(), 2)
	for i, sm := range set.Samples {
		y.Set(i, 0, sm.PCPU)
		y.Set(i, 1, sm.PMEM)
	}
	return s.Net.TrainMore(x, y, epochs)
}

// Evaluate scores component predictions against ground truth. nodePower is
// the node feature used for prediction (nil = measured).
func (s *SRR) Evaluate(set *dataset.Set, nodePower []float64) (cpu, mem stats.Metrics) {
	pcpu, pmem := s.PredictSet(set, nodePower)
	return stats.Evaluate(set.CPUPower(), pcpu), stats.Evaluate(set.MemPower(), pmem)
}
