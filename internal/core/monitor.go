package core

import (
	"fmt"

	"highrpm/internal/pmu"
)

// Monitor is the streaming form of HighRPM used by the cluster service and
// the live monitoring tools: samples arrive one second at a time, IM
// readings arrive every miss_interval seconds, and each Push returns the
// restored node power plus the CPU/memory breakdown for that second.
//
// The previous-node feature fed to the DynamicTRR network is the same
// trend value DynamicTRR.Run uses online: the last IM reading extrapolated
// with the slope of the last two readings (§4.2.2 allows "the observed
// value or the spline model"); recursive feedback of the network's own
// outputs would compound drift across the gap.
type Monitor struct {
	h    *HighRPM
	miss int

	hist []monitorStep // trailing window, most recent last
	n    int64         // samples seen

	winBuf [][]float64 // reusable DynamicTRR input rows, built lazily

	lastIdx  int64   // sample index of the last IM reading (-1: none yet)
	lastVal  float64 // its value
	slope    float64 // watts per step from the last two readings
	haveMeas bool
}

type monitorStep struct {
	pmc  []float64
	prev float64 // the previous-node feature used at this step
}

// NewMonitor wraps a trained HighRPM model for streaming use.
func NewMonitor(h *HighRPM) *Monitor {
	return &Monitor{h: h, miss: h.Opts.Dynamic.MissInterval, lastIdx: -1}
}

// MonitorEstimate is one second's restored power.
type MonitorEstimate struct {
	PNode float64
	PCPU  float64
	PMEM  float64
	// PNodePrime is the P'_Node trend value for this second — the last IM
	// reading extrapolated by the inter-reading slope (§4.2.2). It is the
	// feature DynamicTRR conditions on and is recorded alongside the
	// estimates so stored history can explain what the model saw.
	PNodePrime float64
	// FromMeasurement reports whether PNode came from an IM reading rather
	// than the DynamicTRR prediction.
	FromMeasurement bool
}

// trendAt extrapolates the node power at sample index i from the readings
// seen so far.
func (m *Monitor) trendAt(i int64) float64 {
	if !m.haveMeas {
		// Cold start: the training power band's midpoint.
		return 0.5 * (m.h.Static.PBottom + m.h.Static.PUpper)
	}
	return m.lastVal + m.slope*float64(i-m.lastIdx)
}

// Push processes one second of telemetry. measured carries the IM reading
// when one arrived this second (nil otherwise). pmc must hold the Table 2
// events in feature order.
func (m *Monitor) Push(pmc []float64, measured *float64) (MonitorEstimate, error) {
	if len(pmc) != pmu.NumEvents {
		return MonitorEstimate{}, fmt.Errorf("core: monitor expects %d PMC features, got %d", pmu.NumEvents, len(pmc))
	}
	var est MonitorEstimate
	prevFeature := m.trendAt(m.n - 1)
	switch {
	case measured != nil:
		est.PNode = *measured
		est.FromMeasurement = true
		if m.haveMeas && m.n > m.lastIdx {
			m.slope = (*measured - m.lastVal) / float64(m.n-m.lastIdx)
		}
		m.lastIdx, m.lastVal, m.haveMeas = m.n, *measured, true
	case !m.haveMeas:
		// Nothing to predict from before the first IM reading.
		est.PNode = m.trendAt(m.n)
	default:
		window := m.window(pmc, prevFeature)
		preds := m.h.Dynamic.Net.PredictSeq(window)
		est.PNode = preds[len(preds)-1]
	}
	est.PNodePrime = m.trendAt(m.n)
	est.PCPU, est.PMEM = m.h.SRR.Predict(pmc, est.PNode)
	if len(m.hist) >= m.miss && m.miss > 0 {
		// Steady state: rotate the window and recycle the evicted front
		// slot's pmc buffer, so a long-running monitor stops allocating.
		front := m.hist[0]
		copy(m.hist, m.hist[1:])
		front.pmc = append(front.pmc[:0], pmc...)
		front.prev = prevFeature
		m.hist[len(m.hist)-1] = front
	} else {
		m.hist = append(m.hist, monitorStep{pmc: append([]float64(nil), pmc...), prev: prevFeature})
		if len(m.hist) > m.miss {
			m.hist = m.hist[1:]
		}
	}
	m.n++
	return est, nil
}

// window assembles the DynamicTRR input ending at the incoming sample into
// a buffer reused across pushes (PredictSeq copies what it reads, so the
// rows may be rewritten on the next call). Shorter histories front-pad to
// the window length with the oldest step.
func (m *Monitor) window(pmc []float64, prevFeature float64) [][]float64 {
	if m.winBuf == nil {
		m.winBuf = make([][]float64, m.miss)
		for i := range m.winBuf {
			m.winBuf[i] = make([]float64, pmu.NumEvents+1)
		}
	}
	fill := func(dst []float64, src []float64, prev float64) {
		copy(dst, src)
		dst[pmu.NumEvents] = prev
	}
	have := len(m.hist) + 1 // history plus the incoming sample
	drop := 0
	if have > m.miss {
		drop = have - m.miss
	}
	pad := m.miss - (have - drop)
	for i, st := range m.hist[drop:] {
		fill(m.winBuf[pad+i], st.pmc, st.prev)
	}
	fill(m.winBuf[m.miss-1], pmc, prevFeature)
	for i := 0; i < pad; i++ {
		copy(m.winBuf[i], m.winBuf[pad])
	}
	return m.winBuf
}

// Samples returns how many seconds of telemetry the monitor has processed.
func (m *Monitor) Samples() int64 { return m.n }
