package core

import "math"

// PostProcessConfig parameterises Algorithm 1.
type PostProcessConfig struct {
	// PUpper and PBottom bound plausible node power.
	PUpper, PBottom float64
	// Alpha and Beta are the relative-agreement thresholds: estimates that
	// agree within Alpha·min trust the spline, between Alpha and Beta they
	// are averaged, and beyond Beta the spline wins again (the residual
	// model is treated as unreliable at large disagreement).
	Alpha, Beta float64
	// MissInterval sizes the spike-propagation window of Operation 1.
	MissInterval int
}

// PostProcess implements the paper's Algorithm 1, reconciling the spline
// and ResModel estimates of StaticTRR:
//
//   - Operation 1 propagates spline-detected spikes: where the spline
//     deviates from its local neighbourhood by more than 30% of the power
//     range, the spike value is held across ±miss_interval/2. (The paper
//     states the trigger as "P_splined[i] ≥ 30%·(P_upper − P_bottom)",
//     which as an absolute test would always fire; we read it as a
//     deviation test, documented in DESIGN.md.)
//   - Operations 2 and 3 clamp residual-model outputs outside the
//     plausible power band back to the spline value.
//   - The final three rules blend the two estimates by their relative
//     disagreement using Alpha and Beta.
//
// The input slices are not modified; the blended P_trr series is returned.
func PostProcess(psplined, presidual []float64, cfg PostProcessConfig) []float64 {
	n := len(psplined)
	if len(presidual) != n {
		panic("core: PostProcess length mismatch")
	}
	if cfg.MissInterval < 2 {
		cfg.MissInterval = 10
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = 0.05
	}
	if cfg.Beta <= cfg.Alpha {
		cfg.Beta = 4 * cfg.Alpha
	}
	spl := append([]float64(nil), psplined...)
	res := append([]float64(nil), presidual...)
	prange := cfg.PUpper - cfg.PBottom
	if prange <= 0 {
		prange = 1
	}
	half := cfg.MissInterval / 2

	// Operation 1: spike propagation on the spline estimate.
	if half > 0 {
		base := append([]float64(nil), spl...)
		for i := 0; i < n; i++ {
			lo, hi := i-half, i+half
			if lo < 0 {
				lo = 0
			}
			if hi >= n {
				hi = n - 1
			}
			local := localMean(base, lo, hi, i)
			if math.Abs(base[i]-local) >= 0.30*prange {
				for j := lo; j <= hi; j++ {
					spl[j] = base[i]
				}
			}
		}
	}

	out := make([]float64, n)
	for i := 0; i < n; i++ {
		// Operations 2 and 3: implausible residual estimates fall back to
		// the spline.
		if res[i] >= cfg.PUpper || res[i] <= cfg.PBottom {
			res[i] = spl[i]
		}
		diff := math.Abs(spl[i] - res[i])
		ref := math.Min(math.Abs(spl[i]), math.Abs(res[i]))
		switch {
		case diff <= cfg.Alpha*ref:
			out[i] = spl[i]
		case diff <= cfg.Beta*ref:
			out[i] = 0.5 * (spl[i] + res[i])
		default:
			out[i] = spl[i]
		}
		// Final plausibility clamp: when the reading interval aliases a
		// workload's internal loop, the cubic spline overshoots far past
		// any power the node can draw; the training power band bounds the
		// estimate (with a small margin for unseen extremes).
		margin := 0.10 * prange
		if out[i] > cfg.PUpper+margin {
			out[i] = cfg.PUpper + margin
		}
		if out[i] < cfg.PBottom-margin {
			out[i] = cfg.PBottom - margin
		}
	}
	return out
}

// localMean averages v[lo..hi] excluding index skip.
func localMean(v []float64, lo, hi, skip int) float64 {
	var s float64
	var k int
	for j := lo; j <= hi; j++ {
		if j == skip {
			continue
		}
		s += v[j]
		k++
	}
	if k == 0 {
		return v[skip]
	}
	return s / float64(k)
}
