package core

import (
	"math"
	"testing"

	"highrpm/internal/dataset"
	"highrpm/internal/platform"
	"highrpm/internal/workload"
)

// trainSet builds a compact multi-suite training set for core tests.
func trainSet(t *testing.T, perSuite int) *dataset.Set {
	t.Helper()
	cfg := dataset.DefaultGenerateConfig()
	cfg.SamplesPerSuite = perSuite
	out := &dataset.Set{}
	for _, s := range []string{workload.SuiteHPCC, workload.SuiteSPEC, workload.SuiteSMG2000} {
		set, err := dataset.GenerateSuite(cfg, s)
		if err != nil {
			t.Fatal(err)
		}
		out.Append(set)
	}
	return out
}

// testSet builds an evaluation trace from a program outside trainSet.
func testSet(t *testing.T, n int) *dataset.Set {
	t.Helper()
	node, err := platform.NewNode(platform.ARMConfig(), 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.Find("HPCG/hpcg")
	if err != nil {
		t.Fatal(err)
	}
	tr := node.RunFor(b, float64(n), 1)
	return dataset.FromTrace(tr, "HPCG", b.Name)
}

func TestStaticTRRRestore(t *testing.T) {
	train := trainSet(t, 200)
	st, err := FitStaticTRR(train, DefaultStaticTRROptions())
	if err != nil {
		t.Fatal(err)
	}
	test := testSet(t, 200)
	idx := test.MeasuredIndices(10)
	est, err := st.Restore(test, idx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(est) != test.Len() {
		t.Fatalf("restored %d values for %d samples", len(est), test.Len())
	}
	// Measured points are authoritative.
	for _, i := range idx {
		if est[i] != test.Samples[i].PNode {
			t.Fatalf("measured point %d not exact: %g vs %g", i, est[i], test.Samples[i].PNode)
		}
	}
	m, err := st.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if m.MAPE > 12 {
		t.Fatalf("StaticTRR MAPE %.2f%% too high for a smooth workload", m.MAPE)
	}
}

func TestStaticTRRWithSensorReadings(t *testing.T) {
	train := trainSet(t, 200)
	st, err := FitStaticTRR(train, DefaultStaticTRROptions())
	if err != nil {
		t.Fatal(err)
	}
	test := testSet(t, 150)
	idx := test.MeasuredIndices(10)
	// Noisy IM readings instead of ground truth.
	vals := make([]float64, len(idx))
	for k, i := range idx {
		vals[k] = test.Samples[i].PNode + 1.0
	}
	est, err := st.Restore(test, idx, vals)
	if err != nil {
		t.Fatal(err)
	}
	for k, i := range idx {
		if est[i] != vals[k] {
			t.Fatal("sensor values must override ground truth at measured points")
		}
	}
}

func TestStaticTRRTooFewSamples(t *testing.T) {
	small := testSet(t, 5)
	if _, err := FitStaticTRR(small, DefaultStaticTRROptions()); err == nil {
		t.Fatal("expected error for tiny training set")
	}
}

func TestSplineOnlyBeatsNothing(t *testing.T) {
	test := testSet(t, 200)
	idx := test.MeasuredIndices(10)
	spl, err := SplineOnly(test, idx, nil)
	if err != nil {
		t.Fatal(err)
	}
	truth := test.NodePower()
	var sq, sqMean float64
	mean := 0.0
	for _, v := range truth {
		mean += v
	}
	mean /= float64(len(truth))
	for i := range truth {
		sq += (spl[i] - truth[i]) * (spl[i] - truth[i])
		sqMean += (mean - truth[i]) * (mean - truth[i])
	}
	if sq >= sqMean {
		t.Fatal("spline must beat the constant-mean predictor")
	}
}

func TestDynamicTRRRunShapes(t *testing.T) {
	train := trainSet(t, 150)
	opts := DefaultDynamicTRROptions()
	opts.Epochs = 6
	opts.MaxWindows = 200
	dyn, err := FitDynamicTRR(train, opts)
	if err != nil {
		t.Fatal(err)
	}
	test := testSet(t, 120)
	idx := test.MeasuredIndices(10)
	est, err := dyn.Run(test, idx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(est) != test.Len() {
		t.Fatalf("Run returned %d values", len(est))
	}
	for _, i := range idx {
		if est[i] != test.Samples[i].PNode {
			t.Fatal("measured points must be exact in Run output")
		}
	}
	for i, v := range est {
		if math.IsNaN(v) || v <= 0 {
			t.Fatalf("estimate %d = %g", i, v)
		}
	}
}

func TestDynamicTRREmptySet(t *testing.T) {
	train := trainSet(t, 150)
	opts := DefaultDynamicTRROptions()
	opts.Epochs = 2
	opts.MaxWindows = 100
	dyn, err := FitDynamicTRR(train, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dyn.Run(&dataset.Set{}, nil, nil); err == nil {
		t.Fatal("expected error for empty set")
	}
}

func TestSRRPredictsComponents(t *testing.T) {
	train := trainSet(t, 200)
	srr, err := FitSRR(train, nil, DefaultSRROptions())
	if err != nil {
		t.Fatal(err)
	}
	test := testSet(t, 150)
	pcpu, pmem := srr.PredictSet(test, nil)
	if len(pcpu) != test.Len() || len(pmem) != test.Len() {
		t.Fatal("prediction lengths wrong")
	}
	cpuM, memM := srr.Evaluate(test, nil)
	if cpuM.MAPE > 30 || memM.MAPE > 30 {
		t.Fatalf("SRR errors too high: cpu %.1f%% mem %.1f%%", cpuM.MAPE, memM.MAPE)
	}
	// The split must roughly conserve node power minus peripherals.
	for i := 0; i < test.Len(); i += 25 {
		sum := pcpu[i] + pmem[i] + 25
		if math.Abs(sum-test.Samples[i].PNode) > 30 {
			t.Fatalf("component sum %g far from node power %g", sum, test.Samples[i].PNode)
		}
	}
}

func TestSRRWithoutNodeFeature(t *testing.T) {
	train := trainSet(t, 150)
	opts := DefaultSRROptions()
	opts.UseNode = false
	srr, err := FitSRR(train, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	test := testSet(t, 100)
	pcpu, _ := srr.PredictSet(test, nil)
	if len(pcpu) != 100 {
		t.Fatal("ablated SRR must still predict")
	}
}

func TestSRRNodeFeatureImproves(t *testing.T) {
	// Table 8's claim as a unit test: with P_Node beats without.
	train := trainSet(t, 250)
	test := testSet(t, 200)

	with, err := FitSRR(train, nil, DefaultSRROptions())
	if err != nil {
		t.Fatal(err)
	}
	noOpts := DefaultSRROptions()
	noOpts.UseNode = false
	without, err := FitSRR(train, nil, noOpts)
	if err != nil {
		t.Fatal(err)
	}
	cpuWith, _ := with.Evaluate(test, nil)
	cpuWithout, _ := without.Evaluate(test, nil)
	if cpuWith.MAPE >= cpuWithout.MAPE {
		t.Fatalf("P_Node feature must improve P_CPU: %.2f%% vs %.2f%%", cpuWith.MAPE, cpuWithout.MAPE)
	}
}

func TestSRRFineTune(t *testing.T) {
	train := trainSet(t, 150)
	srr, err := FitSRR(train, nil, DefaultSRROptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := srr.FineTune(train, nil, 2); err != nil {
		t.Fatal(err)
	}
	unfitted := &SRR{Opts: DefaultSRROptions()}
	if err := unfitted.FineTune(train, nil, 2); err == nil {
		t.Fatal("expected error for unfitted fine-tune")
	}
}

func TestSRREmptySet(t *testing.T) {
	if _, err := FitSRR(&dataset.Set{}, nil, DefaultSRROptions()); err == nil {
		t.Fatal("expected error")
	}
}

func TestTrainFullFramework(t *testing.T) {
	train := trainSet(t, 150)
	opts := DefaultOptions()
	opts.Dynamic.Epochs = 5
	opts.Dynamic.MaxWindows = 150
	h, err := Train(train, opts)
	if err != nil {
		t.Fatal(err)
	}
	if h.Static == nil || h.Dynamic == nil || h.SRR == nil {
		t.Fatal("incomplete framework")
	}
	if h.TrainStats.InitialSamples != train.Len() {
		t.Fatal("train stats wrong")
	}
	if opts.ActiveLearning && h.TrainStats.ReinforceCount == 0 {
		t.Fatal("active learning drew no reinforcement samples")
	}

	test := testSet(t, 120)
	rep, err := h.Evaluate(test, ModeStatic)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Node.N == 0 || rep.CPU.N == 0 || rep.Mem.N == 0 {
		t.Fatal("empty evaluation report")
	}
	node, pcpu, pmem, err := h.Restore(test, test.MeasuredIndices(10), nil, ModeDynamic)
	if err != nil {
		t.Fatal(err)
	}
	if len(node) != 120 || len(pcpu) != 120 || len(pmem) != 120 {
		t.Fatal("restore lengths wrong")
	}
}

func TestTrainEmptySet(t *testing.T) {
	if _, err := Train(&dataset.Set{}, DefaultOptions()); err == nil {
		t.Fatal("expected error")
	}
}

func TestRestoreUnknownMode(t *testing.T) {
	train := trainSet(t, 150)
	opts := DefaultOptions()
	opts.ActiveLearning = false
	opts.Dynamic.Epochs = 2
	opts.Dynamic.MaxWindows = 100
	h, err := Train(train, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.RestoreTemporal(testSet(t, 50), []int{0, 10}, nil, RestoreMode(99)); err == nil {
		t.Fatal("expected unknown-mode error")
	}
}

func TestSetMissInterval(t *testing.T) {
	opts := DefaultOptions()
	opts.SetMissInterval(25)
	if opts.Static.MissInterval != 25 || opts.Dynamic.MissInterval != 25 {
		t.Fatal("SetMissInterval must update both models")
	}
}
