package core

import (
	"fmt"
	"math/rand"
	"time"

	"highrpm/internal/dataset"
	"highrpm/internal/stats"
)

// Options configures a full HighRPM instance.
type Options struct {
	Static  StaticTRROptions
	Dynamic DynamicTRROptions
	SRR     SRROptions
	// ActiveLearning enables the §4.1 second stage: restored samples join
	// the initial samples, a sampler draws reinforcement samples, and the
	// models are fine-tuned on them.
	ActiveLearning bool
	// ReinforceFraction is the share of the combined sample set drawn as
	// reinforcement samples (default 0.3).
	ReinforceFraction float64
	// FineTuneEpochs bounds fine-tuning cost (default 5 for SRR).
	FineTuneEpochs int
	Seed           int64
}

// DefaultOptions returns the paper's evaluation configuration
// (miss_interval 10 s, active learning on).
func DefaultOptions() Options {
	return Options{
		Static:            DefaultStaticTRROptions(),
		Dynamic:           DefaultDynamicTRROptions(),
		SRR:               DefaultSRROptions(),
		ActiveLearning:    true,
		ReinforceFraction: 0.3,
		FineTuneEpochs:    5,
		Seed:              1,
	}
}

// SetMissInterval adjusts every sub-model's miss interval together.
func (o *Options) SetMissInterval(samples int) {
	o.Static.MissInterval = samples
	o.Dynamic.MissInterval = samples
}

// SetWorkers adjusts every sub-model's training worker count together:
// 0 uses every CPU, 1 forces the bit-exact serial paths.
func (o *Options) SetWorkers(workers int) {
	o.Static.Workers = workers
	o.Dynamic.Workers = workers
	o.SRR.Workers = workers
}

// HighRPM bundles the trained TRR and SRR models (Fig. 3).
type HighRPM struct {
	Opts    Options
	Static  *StaticTRR
	Dynamic *DynamicTRR
	SRR     *SRR
	// TrainStats records wall-clock training cost (§6.4.5 reports < 10 min
	// offline and < 2 s fine-tune on the paper's machine).
	TrainStats TrainStats
}

// TrainStats records the cost of the learning stages.
type TrainStats struct {
	InitialDuration time.Duration
	ActiveDuration  time.Duration
	InitialSamples  int
	ReinforceCount  int
}

// Train runs the initial learning stage — fitting StaticTRR, DynamicTRR and
// SRR on the labeled initial samples — followed, when enabled, by the
// active learning stage of §4.1.
func Train(initial *dataset.Set, opts Options) (*HighRPM, error) {
	if initial.Len() == 0 {
		return nil, fmt.Errorf("core: empty initial sample set")
	}
	start := wallClock()
	h := &HighRPM{Opts: opts}

	st, err := FitStaticTRR(initial, opts.Static)
	if err != nil {
		return nil, err
	}
	h.Static = st

	dyn, err := FitDynamicTRR(initial, opts.Dynamic)
	if err != nil {
		return nil, err
	}
	h.Dynamic = dyn

	srr, err := FitSRR(initial, nil, opts.SRR)
	if err != nil {
		return nil, err
	}
	h.SRR = srr
	h.TrainStats.InitialDuration = wallClock().Sub(start)
	h.TrainStats.InitialSamples = initial.Len()

	if opts.ActiveLearning {
		start = wallClock()
		if err := h.activeLearn(initial); err != nil {
			return nil, err
		}
		h.TrainStats.ActiveDuration = wallClock().Sub(start)
	}
	return h, nil
}

// wallClock is the single wall-clock read in this package. TrainStats
// reports real training cost (§6.4.5) and deliberately never feeds an
// estimate, so it is the one justified exception to the determinism rule.
func wallClock() time.Time {
	//lint:ignore determinism TrainStats wall-clock cost reporting; never feeds an estimate
	return time.Now()
}

// activeLearn implements the §4.1 second stage. The initial samples are
// re-labeled with StaticTRR's restored node power — the feature the SRR
// model will actually see in deployment — combined with the original
// samples, and a random sampler draws reinforcement samples to fine-tune
// SRR. DynamicTRR is refreshed on windows built from the restored series.
func (h *HighRPM) activeLearn(initial *dataset.Set) error {
	frac := h.Opts.ReinforceFraction
	if frac <= 0 || frac > 1 {
		frac = 0.3
	}
	idx := initial.MeasuredIndices(h.Opts.Static.MissInterval)
	restored, err := h.Static.Restore(initial, idx, nil)
	if err != nil {
		return fmt.Errorf("core: active learning restore: %w", err)
	}
	// Reinforcement sampler over the *combined* pool (§4.1: "the initial
	// and restored samples are combined to create a new sample set"): each
	// draw picks a sample index plus whether its node feature is the
	// original measurement or the restored estimate, so fine-tuning sees
	// both the clean and the deployment-realistic feature distribution.
	rng := rand.New(rand.NewSource(h.Opts.Seed*2654435761 + 97))
	n := initial.Len()
	count := int(frac * float64(n))
	if count < 1 {
		count = 1
	}
	re := &dataset.Set{}
	reNode := make([]float64, 0, count)
	for k := 0; k < count; k++ {
		i := rng.Intn(n)
		re.Samples = append(re.Samples, initial.Samples[i])
		re.Suites = append(re.Suites, initial.Suites[i])
		re.Benchmarks = append(re.Benchmarks, initial.Benchmarks[i])
		if rng.Intn(2) == 0 {
			reNode = append(reNode, initial.Samples[i].PNode)
		} else {
			reNode = append(reNode, restored[i])
		}
	}
	h.TrainStats.ReinforceCount = count
	if err := h.SRR.FineTune(re, reNode, h.Opts.FineTuneEpochs); err != nil {
		return fmt.Errorf("core: active learning SRR fine-tune: %w", err)
	}
	// Refresh DynamicTRR with windows whose previous-node feature is the
	// restored series (what it sees online).
	windows := dataset.BuildWindows(initial, restored, h.Opts.Dynamic.MissInterval)
	windows = dataset.SubsampleWindows(windows, count/2+1)
	seqs, targets := dataset.WindowsToSeqs(windows)
	if len(seqs) > 0 {
		if err := h.Dynamic.Net.FineTune(seqs, targets); err != nil {
			return fmt.Errorf("core: active learning DynamicTRR fine-tune: %w", err)
		}
	}
	return nil
}

// RestoreMode selects the temporal restoration model.
type RestoreMode int

// Temporal restoration modes.
const (
	// ModeStatic uses StaticTRR — offline analysis of complete logs.
	ModeStatic RestoreMode = iota
	// ModeDynamic uses DynamicTRR — online monitoring with look-ahead-free
	// prediction.
	ModeDynamic
)

// RestoreTemporal estimates the 1 Sa/s node-power series of a set from IM
// readings at measuredIdx (vals nil = perfect sensor at those indices).
func (h *HighRPM) RestoreTemporal(set *dataset.Set, measuredIdx []int, vals []float64, mode RestoreMode) ([]float64, error) {
	switch mode {
	case ModeStatic:
		return h.Static.Restore(set, measuredIdx, vals)
	case ModeDynamic:
		return h.Dynamic.Run(set, measuredIdx, vals)
	default:
		return nil, fmt.Errorf("core: unknown restore mode %d", mode)
	}
}

// RestoreSpatial splits a node-power series into component power using the
// SRR model. nodePower is typically the output of RestoreTemporal.
func (h *HighRPM) RestoreSpatial(set *dataset.Set, nodePower []float64) (pcpu, pmem []float64) {
	return h.SRR.PredictSet(set, nodePower)
}

// Restore runs the full pipeline — temporal then spatial restoration — and
// returns node, CPU and memory series.
func (h *HighRPM) Restore(set *dataset.Set, measuredIdx []int, vals []float64, mode RestoreMode) (node, pcpu, pmem []float64, err error) {
	node, err = h.RestoreTemporal(set, measuredIdx, vals, mode)
	if err != nil {
		return nil, nil, nil, err
	}
	pcpu, pmem = h.RestoreSpatial(set, node)
	return node, pcpu, pmem, nil
}

// Report bundles full-pipeline accuracy metrics.
type Report struct {
	Node stats.Metrics
	CPU  stats.Metrics
	Mem  stats.Metrics
}

// Evaluate runs the full pipeline against ground truth with a perfect
// sensor at the configured miss interval.
func (h *HighRPM) Evaluate(set *dataset.Set, mode RestoreMode) (Report, error) {
	idx := set.MeasuredIndices(h.Opts.Static.MissInterval)
	node, pcpu, pmem, err := h.Restore(set, idx, nil, mode)
	if err != nil {
		return Report{}, err
	}
	return Report{
		Node: stats.Evaluate(set.NodePower(), node),
		CPU:  stats.Evaluate(set.CPUPower(), pcpu),
		Mem:  stats.Evaluate(set.MemPower(), pmem),
	}, nil
}
