package core

import (
	"math"
	"testing"
)

func trainedModel(t *testing.T) *HighRPM {
	t.Helper()
	train := trainSet(t, 150)
	opts := DefaultOptions()
	opts.Dynamic.Epochs = 6
	opts.Dynamic.MaxWindows = 200
	opts.ActiveLearning = false
	h, err := Train(train, opts)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestMonitorStreaming(t *testing.T) {
	h := trainedModel(t)
	mon := NewMonitor(h)
	test := testSet(t, 80)

	var absErr float64
	for i, sm := range test.Samples {
		var measured *float64
		if i%10 == 0 {
			v := sm.PNode
			measured = &v
		}
		est, err := mon.Push(sm.PMC, measured)
		if err != nil {
			t.Fatal(err)
		}
		if measured != nil {
			if !est.FromMeasurement || est.PNode != *measured {
				t.Fatalf("step %d: measurement not passed through", i)
			}
		} else if est.FromMeasurement {
			t.Fatalf("step %d: claims measurement without one", i)
		}
		if est.PCPU <= 0 || est.PMEM <= 0 || math.IsNaN(est.PNode) {
			t.Fatalf("step %d: implausible estimate %+v", i, est)
		}
		absErr += math.Abs(est.PNode - sm.PNode)
	}
	if mon.Samples() != int64(test.Len()) {
		t.Fatalf("Samples = %d want %d", mon.Samples(), test.Len())
	}
	mean := absErr / float64(test.Len())
	if mean > 15 {
		t.Fatalf("streaming mean abs error %.1f W too high", mean)
	}
}

func TestMonitorRejectsBadFeatureWidth(t *testing.T) {
	h := trainedModel(t)
	mon := NewMonitor(h)
	if _, err := mon.Push([]float64{1, 2}, nil); err == nil {
		t.Fatal("expected feature-width error")
	}
}

func TestMonitorFirstSampleWithoutMeasurement(t *testing.T) {
	h := trainedModel(t)
	mon := NewMonitor(h)
	test := testSet(t, 5)
	est, err := mon.Push(test.Samples[0].PMC, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Neutral estimate: midpoint of the training power band.
	want := 0.5 * (h.Static.PBottom + h.Static.PUpper)
	if est.PNode != want {
		t.Fatalf("cold-start estimate %g want %g", est.PNode, want)
	}
}
