package neural

import (
	"crypto/sha256"
	"encoding/hex"
	"math"
	"math/rand"
	"sync"
	"testing"

	"highrpm/internal/mat"
)

// Golden hashes of fixed-seed serially-trained models, captured from the
// pre-parallelism implementation. Workers=1 must keep reproducing them
// byte-for-byte: the determinism contract promises that the serial path is
// bit-exact with single-threaded training regardless of the buffer-reuse
// and worker machinery added around it.
const (
	goldenLSTMHash = "8ede5d794035210fe2e4903404aad6ad543a6cb46ad1d7ec39c9cab13eadcf96"
	goldenGRUHash  = "d9e3cd4433cacffcc066cc3eef723c7e190ec1a97b2115b740e615728ae34e6b"
	goldenMLPHash  = "7905cdf505689f59c4bb7fe0a73943f52e82560aac55447540f1f4a9fd50bf87"
)

func goldenData(seed int64, wins, T, feat int) ([][][]float64, [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	seqs := make([][][]float64, wins)
	targets := make([][]float64, wins)
	for w := range seqs {
		seqs[w] = make([][]float64, T)
		targets[w] = make([]float64, T)
		for t := 0; t < T; t++ {
			row := make([]float64, feat)
			for j := range row {
				row[j] = rng.NormFloat64()
			}
			seqs[w][t] = row
			targets[w][t] = rng.NormFloat64()*5 + 40
		}
	}
	return seqs, targets
}

func stateHash(t *testing.T, m interface{ MarshalState() ([]byte, error) }) string {
	t.Helper()
	b, err := m.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

func fitLSTM(t *testing.T, workers int) *LSTM {
	t.Helper()
	seqs, targets := goldenData(42, 24, 12, 6)
	l := NewLSTM(8, 2, 7)
	l.Epochs = 4
	l.Workers = workers
	if err := l.FitSeq(seqs, targets); err != nil {
		t.Fatal(err)
	}
	if err := l.FineTune(seqs[:4], targets[:4]); err != nil {
		t.Fatal(err)
	}
	return l
}

func fitGRU(t *testing.T, workers int) *GRU {
	t.Helper()
	seqs, targets := goldenData(42, 24, 12, 6)
	g := NewGRU(8, 2, 7)
	g.Epochs = 4
	g.Workers = workers
	if err := g.FitSeq(seqs, targets); err != nil {
		t.Fatal(err)
	}
	if err := g.FineTune(seqs[:4], targets[:4]); err != nil {
		t.Fatal(err)
	}
	return g
}

func mlpData() (*mat.Dense, *mat.Dense) {
	rng := rand.New(rand.NewSource(9))
	n, c := 120, 7
	x := mat.NewDense(n, c)
	y := mat.NewDense(n, 2)
	for i := 0; i < n; i++ {
		for j := 0; j < c; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
		y.Set(i, 0, rng.NormFloat64()*3+20)
		y.Set(i, 1, rng.NormFloat64()*2+10)
	}
	return x, y
}

func fitMLP(t *testing.T, workers int) *MLP {
	t.Helper()
	x, y := mlpData()
	m := NewMLP([]int{16}, 2, 5)
	m.Epochs = 6
	m.Workers = workers
	if err := m.FitMulti(x, y); err != nil {
		t.Fatal(err)
	}
	if err := m.TrainMore(x, y, 2); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSerialTrainingMatchesGolden(t *testing.T) {
	if h := stateHash(t, fitLSTM(t, 1)); h != goldenLSTMHash {
		t.Errorf("LSTM Workers=1 hash = %s, want golden %s", h, goldenLSTMHash)
	}
	if h := stateHash(t, fitGRU(t, 1)); h != goldenGRUHash {
		t.Errorf("GRU Workers=1 hash = %s, want golden %s", h, goldenGRUHash)
	}
	if h := stateHash(t, fitMLP(t, 1)); h != goldenMLPHash {
		t.Errorf("MLP Workers=1 hash = %s, want golden %s", h, goldenMLPHash)
	}
}

// TestParallelTrainingDeterministic pins the weaker contract for Workers>1:
// for a fixed worker count, repeated fixed-seed runs are bit-identical
// (gradient shards are reduced in fixed order), and the result stays within
// numerical tolerance of the serial model — the shard reduction reorders
// floating-point sums but changes nothing else.
func TestParallelTrainingDeterministic(t *testing.T) {
	serialL := fitLSTM(t, 1)
	serialM := fitMLP(t, 1)
	seqs, _ := goldenData(42, 24, 12, 6)
	x, _ := mlpData()
	for _, w := range []int{2, 4} {
		la, lb := fitLSTM(t, w), fitLSTM(t, w)
		if ha, hb := stateHash(t, la), stateHash(t, lb); ha != hb {
			t.Errorf("LSTM Workers=%d: run-to-run hashes differ: %s vs %s", w, ha, hb)
		}
		assertClose(t, serialL.PredictSeq(seqs[0]), la.PredictSeq(seqs[0]), 1e-2, "LSTM", w)

		ma, mb := fitMLP(t, w), fitMLP(t, w)
		if ha, hb := stateHash(t, ma), stateHash(t, mb); ha != hb {
			t.Errorf("MLP Workers=%d: run-to-run hashes differ: %s vs %s", w, ha, hb)
		}
		assertClose(t, serialM.PredictMulti(x.Row(0)), ma.PredictMulti(x.Row(0)), 1e-2, "MLP", w)
	}
}

func assertClose(t *testing.T, want, got []float64, tol float64, label string, workers int) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s Workers=%d: %d vs %d outputs", label, workers, len(want), len(got))
	}
	for i := range want {
		if d := math.Abs(want[i] - got[i]); d > tol*(1+math.Abs(want[i])) {
			t.Errorf("%s Workers=%d: output %d diverged from serial: %g vs %g", label, workers, i, want[i], got[i])
		}
	}
}

// TestConcurrentPrediction exercises the pooled prediction executors the way
// the cluster service does: many goroutines sharing one fitted model. Run
// under -race this is the regression test for scratch sharing.
func TestConcurrentPrediction(t *testing.T) {
	l := fitLSTM(t, 1)
	m := fitMLP(t, 1)
	seqs, _ := goldenData(42, 24, 12, 6)
	x, _ := mlpData()
	wantSeq := l.PredictSeq(seqs[1])
	wantOut := m.PredictMulti(x.Row(3))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				got := l.PredictSeq(seqs[1])
				for i := range wantSeq {
					if got[i] != wantSeq[i] {
						t.Errorf("concurrent PredictSeq diverged at %d", i)
						return
					}
				}
				out := m.PredictMulti(x.Row(3))
				for i := range wantOut {
					if out[i] != wantOut[i] {
						t.Errorf("concurrent PredictMulti diverged at %d", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
