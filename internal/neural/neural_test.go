package neural

import (
	"math"
	"math/rand"
	"testing"

	"highrpm/internal/mat"
	"highrpm/internal/model"
)

func TestMLPFitsLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := mat.NewDense(400, 2)
	y := make([]float64, 400)
	for i := 0; i < 400; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		y[i] = 3*a - 2*b + 5
	}
	n := NewMLP([]int{16}, 1, 2)
	if err := n.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	var sq float64
	for i := 0; i < 400; i++ {
		d := n.Predict(x.Row(i)) - y[i]
		sq += d * d
	}
	if rmse := math.Sqrt(sq / 400); rmse > 0.3 {
		t.Fatalf("MLP RMSE = %g on linear data", rmse)
	}
}

func TestMLPFitsNonlinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := mat.NewDense(600, 1)
	y := make([]float64, 600)
	for i := 0; i < 600; i++ {
		v := rng.Float64()*4 - 2
		x.Set(i, 0, v)
		y[i] = v * v
	}
	n := NewMLP([]int{30}, 1, 4)
	n.Epochs = 120
	if err := n.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if got := n.Predict([]float64{1.5}); math.Abs(got-2.25) > 0.4 {
		t.Fatalf("MLP(1.5) = %g want ~2.25", got)
	}
	if got := n.Predict([]float64{0}); math.Abs(got) > 0.4 {
		t.Fatalf("MLP(0) = %g want ~0", got)
	}
}

func TestMLPMultiOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := mat.NewDense(300, 2)
	y := mat.NewDense(300, 2)
	for i := 0; i < 300; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		y.Set(i, 0, a+b)
		y.Set(i, 1, a-b)
	}
	n := NewMLP([]int{16}, 2, 6)
	if err := n.FitMulti(x, y); err != nil {
		t.Fatal(err)
	}
	out := n.PredictMulti([]float64{1, 0.5})
	if math.Abs(out[0]-1.5) > 0.3 || math.Abs(out[1]-0.5) > 0.3 {
		t.Fatalf("PredictMulti = %v want ~[1.5 0.5]", out)
	}
}

func TestMLPOutputDimMismatch(t *testing.T) {
	n := NewMLP([]int{4}, 2, 1)
	if err := n.FitMulti(mat.NewDense(5, 2), mat.NewDense(5, 3)); err == nil {
		t.Fatal("expected output-dim mismatch error")
	}
	if err := n.FitMulti(mat.NewDense(5, 2), mat.NewDense(4, 2)); err == nil {
		t.Fatal("expected row mismatch error")
	}
}

func TestMLPTrainMoreImproves(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := mat.NewDense(300, 1)
	y := make([]float64, 300)
	for i := 0; i < 300; i++ {
		v := rng.Float64()*2 - 1
		x.Set(i, 0, v)
		y[i] = math.Sin(3 * v)
	}
	n := NewMLP([]int{20}, 1, 8)
	n.Epochs = 5 // deliberately undertrained
	if err := n.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	before := rmseOn(n, x, y)
	if err := n.TrainMore(x, yToDense(y), 60); err != nil {
		t.Fatal(err)
	}
	after := rmseOn(n, x, y)
	if after >= before {
		t.Fatalf("TrainMore did not improve: %g -> %g", before, after)
	}
}

func TestMLPTrainMoreBeforeFit(t *testing.T) {
	n := NewMLP([]int{4}, 1, 1)
	if err := n.TrainMore(mat.NewDense(2, 1), mat.NewDense(2, 1), 1); err == nil {
		t.Fatal("expected error")
	}
}

func rmseOn(n *MLP, x *mat.Dense, y []float64) float64 {
	var sq float64
	for i := 0; i < x.Rows(); i++ {
		d := n.Predict(x.Row(i)) - y[i]
		sq += d * d
	}
	return math.Sqrt(sq / float64(x.Rows()))
}

func yToDense(y []float64) *mat.Dense {
	m := mat.NewDense(len(y), 1)
	for i, v := range y {
		m.Set(i, 0, v)
	}
	return m
}

// seqProblem builds windows where the target is a running weighted sum of
// the inputs — solvable only with memory of previous steps.
func seqProblem(n, T int, seed int64) (seqs [][][]float64, targets [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	for k := 0; k < n; k++ {
		win := make([][]float64, T)
		lab := make([]float64, T)
		acc := 0.0
		for t := 0; t < T; t++ {
			v := rng.Float64()*2 - 1
			win[t] = []float64{v}
			acc = 0.6*acc + v
			lab[t] = acc
		}
		seqs = append(seqs, win)
		targets = append(targets, lab)
	}
	return seqs, targets
}

func seqRMSE(m model.SeqRegressor, seqs [][][]float64, targets [][]float64) float64 {
	var sq float64
	var n int
	for i, s := range seqs {
		out := m.PredictSeq(s)
		for t := range out {
			d := out[t] - targets[i][t]
			sq += d * d
			n++
		}
	}
	return math.Sqrt(sq / float64(n))
}

func TestLSTMLearnsRunningSum(t *testing.T) {
	seqs, targets := seqProblem(300, 8, 1)
	tseqs, ttargets := seqProblem(50, 8, 2)
	l := NewLSTM(12, 2, 3)
	l.Epochs = 25
	if err := l.FitSeq(seqs, targets); err != nil {
		t.Fatal(err)
	}
	if got := seqRMSE(l, tseqs, ttargets); got > 0.25 {
		t.Fatalf("LSTM RMSE = %g want < 0.25", got)
	}
}

func TestGRULearnsRunningSum(t *testing.T) {
	seqs, targets := seqProblem(300, 8, 4)
	tseqs, ttargets := seqProblem(50, 8, 5)
	g := NewGRU(12, 2, 6)
	g.Epochs = 25
	if err := g.FitSeq(seqs, targets); err != nil {
		t.Fatal(err)
	}
	if got := seqRMSE(g, tseqs, ttargets); got > 0.25 {
		t.Fatalf("GRU RMSE = %g want < 0.25", got)
	}
}

func TestFineTuneImproves(t *testing.T) {
	seqs, targets := seqProblem(200, 8, 7)
	l := NewLSTM(12, 2, 8)
	l.Epochs = 3 // undertrained
	if err := l.FitSeq(seqs, targets); err != nil {
		t.Fatal(err)
	}
	before := seqRMSE(l, seqs, targets)
	l.FineTuneEpochs = 10
	if err := l.FineTune(seqs, targets); err != nil {
		t.Fatal(err)
	}
	after := seqRMSE(l, seqs, targets)
	if after >= before {
		t.Fatalf("FineTune did not improve: %g -> %g", before, after)
	}
}

func TestFineTuneBeforeFit(t *testing.T) {
	if err := NewLSTM(4, 1, 1).FineTune(nil, nil); err == nil {
		t.Fatal("expected error for LSTM")
	}
	if err := NewGRU(4, 1, 1).FineTune(nil, nil); err == nil {
		t.Fatal("expected error for GRU")
	}
}

func TestSeqShapeValidation(t *testing.T) {
	l := NewLSTM(4, 1, 1)
	if err := l.FitSeq(nil, nil); err == nil {
		t.Fatal("expected error for empty windows")
	}
	seqs := [][][]float64{{{1}, {2}}}
	bad := [][]float64{{1}} // label length mismatch
	if err := l.FitSeq(seqs, bad); err == nil {
		t.Fatal("expected label-length error")
	}
}

func TestRNNPersistenceRoundTrips(t *testing.T) {
	seqs, targets := seqProblem(80, 6, 9)
	probe := seqs[0]
	l := NewLSTM(8, 2, 10)
	l.Epochs = 5
	if err := l.FitSeq(seqs, targets); err != nil {
		t.Fatal(err)
	}
	g := NewGRU(8, 2, 11)
	g.Epochs = 5
	if err := g.FitSeq(seqs, targets); err != nil {
		t.Fatal(err)
	}
	for _, m := range []interface {
		model.SeqRegressor
		model.Persistable
	}{l, g} {
		data, err := model.Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		back, err := model.Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		sr, ok := back.(model.SeqRegressor)
		if !ok {
			t.Fatalf("decoded %T is not a SeqRegressor", back)
		}
		want := m.PredictSeq(probe)
		got := sr.PredictSeq(probe)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("%T round trip diverged at step %d: %g vs %g", m, i, got[i], want[i])
			}
		}
	}
}

func TestMLPPersistenceRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := mat.NewDense(100, 2)
	y := make([]float64, 100)
	for i := 0; i < 100; i++ {
		x.Set(i, 0, rng.NormFloat64())
		x.Set(i, 1, rng.NormFloat64())
		y[i] = x.At(i, 0) * 2
	}
	n := NewMLP([]int{8}, 1, 13)
	n.Epochs = 10
	if err := n.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	data, err := model.Encode(n)
	if err != nil {
		t.Fatal(err)
	}
	back, err := model.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.4, -0.6}
	if got, want := back.(*MLP).Predict(probe), n.Predict(probe); math.Abs(got-want) > 1e-12 {
		t.Fatalf("round trip: %g vs %g", got, want)
	}
}

func TestDeterministicTraining(t *testing.T) {
	seqs, targets := seqProblem(60, 6, 14)
	a := NewLSTM(8, 2, 15)
	a.Epochs = 4
	b := NewLSTM(8, 2, 15)
	b.Epochs = 4
	if err := a.FitSeq(seqs, targets); err != nil {
		t.Fatal(err)
	}
	if err := b.FitSeq(seqs, targets); err != nil {
		t.Fatal(err)
	}
	pa := a.PredictSeq(seqs[0])
	pb := b.PredictSeq(seqs[0])
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("same seed must give identical training")
		}
	}
}
