package neural

import (
	"encoding/json"
	"fmt"
	"math"

	"highrpm/internal/model"
)

// gruCell is one GRU layer. Gate blocks in the 3H dimension are ordered
// [update z, reset r, candidate n]; the candidate follows the PyTorch
// convention n = tanh(Wn·x + bn + r ⊙ (Un·h)).
type gruCell struct {
	in, hid int
	wx      *tensor // in × 3H
	wh      *tensor // H × 3H
	b       *tensor // 1 × 3H
}

func newGRUCell(in, hid int, rng interface{ NormFloat64() float64 }) *gruCell {
	c := &gruCell{in: in, hid: hid,
		wx: newTensor(in, 3*hid), wh: newTensor(hid, 3*hid), b: newTensor(1, 3*hid)}
	scaleX := 1 / math.Sqrt(float64(in))
	scaleH := 1 / math.Sqrt(float64(hid))
	for i := range c.wx.W {
		c.wx.W[i] = rng.NormFloat64() * scaleX
	}
	for i := range c.wh.W {
		c.wh.W[i] = rng.NormFloat64() * scaleH
	}
	return c
}

type gruCache struct {
	x, hPrev []float64
	z, r, n  []float64
	a        []float64 // Un·h (candidate recurrent term before reset gating)
}

func (g *gruCell) zeroState() cellState { return cellState{h: make([]float64, g.hid)} }
func (g *gruCell) inputSize() int       { return g.in }
func (g *gruCell) hiddenSize() int      { return g.hid }
func (g *gruCell) tensors() []*tensor   { return []*tensor{g.wx, g.wh, g.b} }

func (g *gruCell) step(x []float64, st cellState) (cellState, any) {
	H := g.hid
	// zx = Wx·x + b for all three blocks; ah = Uh·h for all three blocks.
	zx := make([]float64, 3*H)
	copy(zx, g.b.W)
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		row := g.wx.W[i*3*H : (i+1)*3*H]
		for j, wv := range row {
			zx[j] += xv * wv
		}
	}
	ah := make([]float64, 3*H)
	for i, hv := range st.h {
		if hv == 0 {
			continue
		}
		row := g.wh.W[i*3*H : (i+1)*3*H]
		for j, wv := range row {
			ah[j] += hv * wv
		}
	}
	cache := &gruCache{
		x: x, hPrev: st.h,
		z: make([]float64, H), r: make([]float64, H),
		n: make([]float64, H), a: ah[2*H : 3*H],
	}
	h := make([]float64, H)
	for j := 0; j < H; j++ {
		cache.z[j] = sigmoid(zx[j] + ah[j])
		cache.r[j] = sigmoid(zx[H+j] + ah[H+j])
		cache.n[j] = math.Tanh(zx[2*H+j] + cache.r[j]*cache.a[j])
		h[j] = (1-cache.z[j])*cache.n[j] + cache.z[j]*st.h[j]
	}
	return cellState{h: h}, cache
}

func (g *gruCell) back(cacheAny any, dst cellState) ([]float64, cellState) {
	cache := cacheAny.(*gruCache)
	H := g.hid
	// dzPre has the pre-activation gradients for the three gate blocks; the
	// candidate block's recurrent path is gated by r, handled separately.
	dzPre := make([]float64, 3*H)
	dhPrev := make([]float64, H)
	da := make([]float64, H)
	for j := 0; j < H; j++ {
		dh := dst.h[j]
		dz := dh * (cache.hPrev[j] - cache.n[j])
		dn := dh * (1 - cache.z[j])
		dhPrev[j] += dh * cache.z[j]
		dnPre := dn * (1 - cache.n[j]*cache.n[j])
		dr := dnPre * cache.a[j]
		da[j] = dnPre * cache.r[j]
		dzPre[j] = dz * cache.z[j] * (1 - cache.z[j])
		dzPre[H+j] = dr * cache.r[j] * (1 - cache.r[j])
		dzPre[2*H+j] = dnPre
	}
	// Bias gradients (bias feeds zx for all blocks).
	for j, d := range dzPre {
		g.b.G[j] += d
	}
	// Input weights and dx.
	dx := make([]float64, g.in)
	for i, xv := range cache.x {
		wrow := g.wx.W[i*3*H : (i+1)*3*H]
		grow := g.wx.G[i*3*H : (i+1)*3*H]
		var acc float64
		for j, d := range dzPre {
			grow[j] += d * xv
			acc += d * wrow[j]
		}
		dx[i] = acc
	}
	// Recurrent weights: blocks z and r receive dzPre directly; block n
	// receives da (the reset-gated path).
	for i, hv := range cache.hPrev {
		wrow := g.wh.W[i*3*H : (i+1)*3*H]
		grow := g.wh.G[i*3*H : (i+1)*3*H]
		var acc float64
		for j := 0; j < 2*H; j++ {
			grow[j] += dzPre[j] * hv
			acc += dzPre[j] * wrow[j]
		}
		for j := 0; j < H; j++ {
			grow[2*H+j] += da[j] * hv
			acc += da[j] * wrow[2*H+j]
		}
		dhPrev[i] += acc
	}
	return dx, cellState{h: dhPrev}
}

// GRU is the gated-recurrent-unit baseline of Table 4, structured like the
// paper's DynamicTRR network (two recurrent layers + linear readout).
type GRU struct {
	Hidden         int     `json:"hidden"`
	Layers         int     `json:"layers"`
	LR             float64 `json:"lr"`
	Epochs         int     `json:"epochs"`
	BatchSize      int     `json:"batch_size"`
	FineTuneEpochs int     `json:"fine_tune_epochs"`
	Seed           int64   `json:"seed"`

	inputDim int
	net      *seqNet
}

// NewGRU returns a GRU with the paper's two layers; hidden defaults to 16.
func NewGRU(hidden, layers int, seed int64) *GRU {
	if hidden <= 0 {
		hidden = 16
	}
	if layers <= 0 {
		layers = 2
	}
	return &GRU{Hidden: hidden, Layers: layers, LR: 0.01, Epochs: 30, BatchSize: 16, FineTuneEpochs: 2, Seed: seed}
}

func (g *GRU) build(inputDim int) {
	g.inputDim = inputDim
	rng := newDetRand(g.Seed)
	var cells []cell
	in := inputDim
	for k := 0; k < g.Layers; k++ {
		cells = append(cells, newGRUCell(in, g.Hidden, rng))
		in = g.Hidden
	}
	g.net = newSeqNet(cells, g.LR, g.Seed+1)
}

// FitSeq trains the network on windows with per-step targets.
func (g *GRU) FitSeq(seqs [][][]float64, targets [][]float64) error {
	if len(seqs) == 0 {
		return fmt.Errorf("neural: no training windows")
	}
	g.build(len(seqs[0][0]))
	g.net.fitScalers(seqs, targets)
	return g.net.trainWindows(seqs, targets, g.Epochs, g.BatchSize)
}

// FineTune runs a few additional epochs without re-initialising.
func (g *GRU) FineTune(seqs [][][]float64, targets [][]float64) error {
	if g.net == nil || !g.net.fitted {
		return fmt.Errorf("neural: FineTune before FitSeq")
	}
	epochs := g.FineTuneEpochs
	if epochs <= 0 {
		epochs = 2
	}
	return g.net.trainWindows(seqs, targets, epochs, g.BatchSize)
}

// PredictSeq returns one prediction per window step.
func (g *GRU) PredictSeq(window [][]float64) []float64 {
	if g.net == nil {
		panic("neural: GRU is not fitted")
	}
	return g.net.predictWindow(window)
}

// Kind implements model.Persistable.
func (g *GRU) Kind() string { return "neural.gru" }

// MarshalState implements model.Persistable.
func (g *GRU) MarshalState() ([]byte, error) {
	if g.net == nil {
		return nil, fmt.Errorf("neural: marshal of unfitted GRU")
	}
	st := rnnState{
		Hidden: g.Hidden, Layers: g.Layers, LR: g.LR, Epochs: g.Epochs,
		Batch: g.BatchSize, Seed: g.Seed, InputDim: g.inputDim,
		Wy: g.net.wy.W, By: g.net.by.W[0],
		XScaler: g.net.xScaler, YScaler: g.net.yScaler,
	}
	for _, c := range g.net.layers {
		gc := c.(*gruCell)
		st.Tensors = append(st.Tensors, [][]float64{gc.wx.W, gc.wh.W, gc.b.W})
	}
	return json.Marshal(st)
}

func decodeGRU(b []byte) (any, error) {
	var st rnnState
	if err := json.Unmarshal(b, &st); err != nil {
		return nil, err
	}
	g := NewGRU(st.Hidden, st.Layers, st.Seed)
	g.LR, g.Epochs, g.BatchSize = st.LR, st.Epochs, st.Batch
	g.build(st.InputDim)
	for k, c := range g.net.layers {
		gc := c.(*gruCell)
		copy(gc.wx.W, st.Tensors[k][0])
		copy(gc.wh.W, st.Tensors[k][1])
		copy(gc.b.W, st.Tensors[k][2])
	}
	copy(g.net.wy.W, st.Wy)
	g.net.by.W[0] = st.By
	g.net.xScaler, g.net.yScaler = st.XScaler, st.YScaler
	g.net.fitted = true
	return g, nil
}

func init() {
	model.RegisterKind("neural.gru", decodeGRU)
}

var (
	_ model.SeqRegressor = (*GRU)(nil)
	_ model.FineTuner    = (*GRU)(nil)
)
