package neural

import (
	"encoding/json"
	"fmt"
	"math"

	"highrpm/internal/model"
)

// gruCell is one GRU layer. Gate blocks in the 3H dimension are ordered
// [update z, reset r, candidate n]; the candidate follows the PyTorch
// convention n = tanh(Wn·x + bn + r ⊙ (Un·h)).
type gruCell struct {
	in, hid int
	wx      *tensor // in × 3H
	wh      *tensor // H × 3H
	b       *tensor // 1 × 3H
}

func newGRUCell(in, hid int, rng interface{ NormFloat64() float64 }) *gruCell {
	c := &gruCell{in: in, hid: hid,
		wx: newTensor(in, 3*hid), wh: newTensor(hid, 3*hid), b: newTensor(1, 3*hid)}
	scaleX := 1 / math.Sqrt(float64(in))
	scaleH := 1 / math.Sqrt(float64(hid))
	for i := range c.wx.W {
		c.wx.W[i] = rng.NormFloat64() * scaleX
	}
	for i := range c.wh.W {
		c.wh.W[i] = rng.NormFloat64() * scaleH
	}
	return c
}

// gruStep records one timestep's activations for backprop. a holds its own
// copy of the candidate recurrent term Un·h because the 3H matvec buffer is
// reused every step.
type gruStep struct {
	x, hPrev []float64
	z, r, n  []float64
	a        []float64 // Un·h (candidate recurrent term before reset gating)
}

// gruScratch is the reusable per-executor workspace of one GRU layer.
type gruScratch struct {
	in, hid int
	zx, ah  []float64    // 3H pre-activation slabs, reused each step
	dzPre   []float64    // 3H
	da      []float64    // H
	dx      []float64    // input gradient
	dbuf    [2]cellState // ping-pong backward state gradients
	hs      [][]float64  // states; hs[0] stays all-zero
	steps   []gruStep
}

func (g *gruCell) newScratch() cellScratch {
	H := g.hid
	return &gruScratch{
		in: g.in, hid: H,
		zx: make([]float64, 3*H), ah: make([]float64, 3*H),
		dzPre: make([]float64, 3*H), da: make([]float64, H),
		dx: make([]float64, g.in),
		dbuf: [2]cellState{
			{h: make([]float64, H)},
			{h: make([]float64, H)},
		},
	}
}

func (s *gruScratch) begin(T int) (cellState, cellState) {
	H := s.hid
	for len(s.hs) < T+1 {
		s.hs = append(s.hs, make([]float64, H))
	}
	for len(s.steps) < T {
		s.steps = append(s.steps, gruStep{
			z: make([]float64, H), r: make([]float64, H),
			n: make([]float64, H), a: make([]float64, H),
		})
	}
	d0 := s.dbuf[T&1]
	clear(d0.h)
	return cellState{h: s.hs[0]}, d0
}

func (g *gruCell) inputSize() int     { return g.in }
func (g *gruCell) hiddenSize() int    { return g.hid }
func (g *gruCell) tensors() []*tensor { return []*tensor{g.wx, g.wh, g.b} }

func (g *gruCell) shadow() cell {
	return &gruCell{in: g.in, hid: g.hid,
		wx: g.wx.shadow(), wh: g.wh.shadow(), b: g.b.shadow()}
}

func (g *gruCell) step(scr cellScratch, t int, x []float64, st cellState) cellState {
	s := scr.(*gruScratch)
	H := g.hid
	// zx = Wx·x + b for all three blocks; ah = Uh·h for all three blocks.
	zx := s.zx
	copy(zx, g.b.W)
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		row := g.wx.W[i*3*H : (i+1)*3*H]
		for j, wv := range row {
			zx[j] += xv * wv
		}
	}
	ah := s.ah
	clear(ah)
	for i, hv := range st.h {
		if hv == 0 {
			continue
		}
		row := g.wh.W[i*3*H : (i+1)*3*H]
		for j, wv := range row {
			ah[j] += hv * wv
		}
	}
	c := &s.steps[t]
	c.x, c.hPrev = x, st.h
	copy(c.a, ah[2*H:3*H])
	h := s.hs[t+1]
	for j := 0; j < H; j++ {
		c.z[j] = sigmoid(zx[j] + ah[j])
		c.r[j] = sigmoid(zx[H+j] + ah[H+j])
		c.n[j] = math.Tanh(zx[2*H+j] + c.r[j]*c.a[j])
		h[j] = (1-c.z[j])*c.n[j] + c.z[j]*st.h[j]
	}
	return cellState{h: h}
}

func (g *gruCell) back(scr cellScratch, t int, dst cellState) ([]float64, cellState) {
	s := scr.(*gruScratch)
	c := &s.steps[t]
	H := g.hid
	// dzPre has the pre-activation gradients for the three gate blocks; the
	// candidate block's recurrent path is gated by r, handled separately.
	dzPre := s.dzPre
	da := s.da
	dhPrev := s.dbuf[t&1].h
	for j := 0; j < H; j++ {
		dh := dst.h[j]
		dz := dh * (c.hPrev[j] - c.n[j])
		dn := dh * (1 - c.z[j])
		dhPrev[j] = dh * c.z[j]
		dnPre := dn * (1 - c.n[j]*c.n[j])
		dr := dnPre * c.a[j]
		da[j] = dnPre * c.r[j]
		dzPre[j] = dz * c.z[j] * (1 - c.z[j])
		dzPre[H+j] = dr * c.r[j] * (1 - c.r[j])
		dzPre[2*H+j] = dnPre
	}
	// Bias gradients (bias feeds zx for all blocks).
	for j, d := range dzPre {
		g.b.G[j] += d
	}
	// Input weights and dx.
	dx := s.dx
	for i, xv := range c.x {
		wrow := g.wx.W[i*3*H : (i+1)*3*H]
		grow := g.wx.G[i*3*H : (i+1)*3*H]
		var acc float64
		for j, d := range dzPre {
			grow[j] += d * xv
			acc += d * wrow[j]
		}
		dx[i] = acc
	}
	// Recurrent weights: blocks z and r receive dzPre directly; block n
	// receives da (the reset-gated path).
	for i, hv := range c.hPrev {
		wrow := g.wh.W[i*3*H : (i+1)*3*H]
		grow := g.wh.G[i*3*H : (i+1)*3*H]
		var acc float64
		for j := 0; j < 2*H; j++ {
			grow[j] += dzPre[j] * hv
			acc += dzPre[j] * wrow[j]
		}
		for j := 0; j < H; j++ {
			grow[2*H+j] += da[j] * hv
			acc += da[j] * wrow[2*H+j]
		}
		dhPrev[i] += acc
	}
	return dx, cellState{h: dhPrev}
}

// GRU is the gated-recurrent-unit baseline of Table 4, structured like the
// paper's DynamicTRR network (two recurrent layers + linear readout).
type GRU struct {
	Hidden         int     `json:"hidden"`
	Layers         int     `json:"layers"`
	LR             float64 `json:"lr"`
	Epochs         int     `json:"epochs"`
	BatchSize      int     `json:"batch_size"`
	FineTuneEpochs int     `json:"fine_tune_epochs"`
	Seed           int64   `json:"seed"`
	// Workers shards mini-batches across a worker pool during FitSeq and
	// FineTune: 0 uses every CPU, 1 forces the bit-exact serial path, N>1
	// uses N workers (deterministic for a fixed N). Never persisted.
	Workers int `json:"-"`

	inputDim int
	net      *seqNet
}

// NewGRU returns a GRU with the paper's two layers; hidden defaults to 16.
func NewGRU(hidden, layers int, seed int64) *GRU {
	if hidden <= 0 {
		hidden = 16
	}
	if layers <= 0 {
		layers = 2
	}
	return &GRU{Hidden: hidden, Layers: layers, LR: 0.01, Epochs: 30, BatchSize: 16, FineTuneEpochs: 2, Seed: seed}
}

func (g *GRU) build(inputDim int) {
	g.inputDim = inputDim
	rng := newDetRand(g.Seed)
	var cells []cell
	in := inputDim
	for k := 0; k < g.Layers; k++ {
		cells = append(cells, newGRUCell(in, g.Hidden, rng))
		in = g.Hidden
	}
	g.net = newSeqNet(cells, g.LR, g.Seed+1)
}

// FitSeq trains the network on windows with per-step targets.
func (g *GRU) FitSeq(seqs [][][]float64, targets [][]float64) error {
	if len(seqs) == 0 {
		return fmt.Errorf("neural: no training windows")
	}
	g.build(len(seqs[0][0]))
	g.net.workers = resolveWorkers(g.Workers)
	g.net.fitScalers(seqs, targets)
	return g.net.trainWindows(seqs, targets, g.Epochs, g.BatchSize)
}

// FineTune runs a few additional epochs without re-initialising.
func (g *GRU) FineTune(seqs [][][]float64, targets [][]float64) error {
	if g.net == nil || !g.net.fitted {
		return fmt.Errorf("neural: FineTune before FitSeq")
	}
	epochs := g.FineTuneEpochs
	if epochs <= 0 {
		epochs = 2
	}
	g.net.workers = resolveWorkers(g.Workers)
	return g.net.trainWindows(seqs, targets, epochs, g.BatchSize)
}

// PredictSeq returns one prediction per window step.
func (g *GRU) PredictSeq(window [][]float64) []float64 {
	if g.net == nil {
		panic("neural: GRU is not fitted")
	}
	return g.net.predictWindow(window)
}

// Kind implements model.Persistable.
func (g *GRU) Kind() string { return "neural.gru" }

// MarshalState implements model.Persistable.
func (g *GRU) MarshalState() ([]byte, error) {
	if g.net == nil {
		return nil, fmt.Errorf("neural: marshal of unfitted GRU")
	}
	st := rnnState{
		Hidden: g.Hidden, Layers: g.Layers, LR: g.LR, Epochs: g.Epochs,
		Batch: g.BatchSize, Seed: g.Seed, InputDim: g.inputDim,
		Wy: g.net.wy.W, By: g.net.by.W[0],
		XScaler: g.net.xScaler, YScaler: g.net.yScaler,
	}
	for _, c := range g.net.layers {
		gc := c.(*gruCell)
		st.Tensors = append(st.Tensors, [][]float64{gc.wx.W, gc.wh.W, gc.b.W})
	}
	return json.Marshal(st)
}

func decodeGRU(b []byte) (any, error) {
	var st rnnState
	if err := json.Unmarshal(b, &st); err != nil {
		return nil, err
	}
	g := NewGRU(st.Hidden, st.Layers, st.Seed)
	g.LR, g.Epochs, g.BatchSize = st.LR, st.Epochs, st.Batch
	g.build(st.InputDim)
	for k, c := range g.net.layers {
		gc := c.(*gruCell)
		copy(gc.wx.W, st.Tensors[k][0])
		copy(gc.wh.W, st.Tensors[k][1])
		copy(gc.b.W, st.Tensors[k][2])
	}
	copy(g.net.wy.W, st.Wy)
	g.net.by.W[0] = st.By
	g.net.xScaler, g.net.yScaler = st.XScaler, st.YScaler
	g.net.fitted = true
	return g, nil
}

func init() {
	model.RegisterKind("neural.gru", decodeGRU)
}

var (
	_ model.SeqRegressor = (*GRU)(nil)
	_ model.FineTuner    = (*GRU)(nil)
)
