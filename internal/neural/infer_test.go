package neural

import (
	"math"
	"math/rand"
	"testing"
)

// TestLSTMInferPathBitExact pins the fused inference step to the generic
// recording step: PredictSeq (which runs stepInfer via the prediction
// pool) must produce bit-identical outputs to a forward pass through the
// training executor's step path, before and after further training moves
// the weights.
func TestLSTMInferPathBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const dim, T, nwin = 7, 12, 24
	makeData := func() ([][][]float64, [][]float64) {
		seqs := make([][][]float64, nwin)
		targets := make([][]float64, nwin)
		for w := range seqs {
			seqs[w] = make([][]float64, T)
			targets[w] = make([]float64, T)
			for s := range seqs[w] {
				row := make([]float64, dim)
				for j := range row {
					row[j] = rng.NormFloat64()
				}
				seqs[w][s] = row
				targets[w][s] = rng.NormFloat64()
			}
		}
		return seqs, targets
	}
	seqs, targets := makeData()
	l := NewLSTM(8, 2, 3)
	l.Epochs = 2
	l.Workers = 1
	if err := l.FitSeq(seqs, targets); err != nil {
		t.Fatal(err)
	}

	// Reference: the generic step path, exactly as training runs it.
	reference := func(window [][]float64) []float64 {
		e := newSeqExec(l.net.layers, l.net.wy, l.net.by) // inferVer nil
		preds := e.forward(window, &l.net.xScaler)
		out := make([]float64, len(preds))
		for i, p := range preds {
			out[i] = l.net.yScaler.inv(p)
		}
		return out
	}
	check := func(stage string) {
		t.Helper()
		for w := 0; w < 4; w++ {
			want := reference(seqs[w])
			got := l.PredictSeq(seqs[w])
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("%s: window %d step %d: infer path %x != step path %x",
						stage, w, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
				}
			}
		}
	}
	check("after fit")

	// Move the weights and confirm the cached transposes refresh.
	if err := l.FineTune(seqs[:8], targets[:8]); err != nil {
		t.Fatal(err)
	}
	check("after fine-tune")
}
