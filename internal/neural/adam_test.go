package neural

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAdamStepClearsGradients(t *testing.T) {
	w := newTensor(2, 2)
	opt := newAdam(0.1, w)
	for i := range w.G {
		w.G[i] = 1
	}
	opt.Step(1, 0)
	for i, g := range w.G {
		if g != 0 {
			t.Fatalf("gradient %d not cleared: %g", i, g)
		}
	}
}

func TestAdamDescendsQuadratic(t *testing.T) {
	// Minimise f(w) = ½(w−3)²: Adam must converge to w = 3.
	w := newTensor(1, 1)
	opt := newAdam(0.1, w)
	for i := 0; i < 500; i++ {
		w.G[0] = w.W[0] - 3
		opt.Step(1, 0)
	}
	if math.Abs(w.W[0]-3) > 0.05 {
		t.Fatalf("converged to %g want 3", w.W[0])
	}
}

func TestAdamGradientClipping(t *testing.T) {
	w := newTensor(1, 4)
	opt := newAdam(1.0, w)
	for i := range w.G {
		w.G[i] = 1e9
	}
	opt.Step(1, 5)
	// With bias-corrected Adam the per-parameter step is bounded by ~LR
	// regardless of gradient scale; clipping keeps the moments sane too.
	for i, v := range w.W {
		if math.Abs(v) > 1.5 {
			t.Fatalf("param %d moved %g after one clipped step", i, v)
		}
	}
}

func TestSigmoidProperties(t *testing.T) {
	if got := sigmoid(0); got != 0.5 {
		t.Fatalf("sigmoid(0) = %g", got)
	}
	// Symmetric: σ(−x) = 1 − σ(x); bounded in (0,1); no overflow.
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		if math.Abs(x) > 500 {
			x = math.Mod(x, 500)
		}
		s := sigmoid(x)
		if s < 0 || s > 1 || math.IsNaN(s) {
			return false
		}
		return math.Abs(sigmoid(-x)-(1-s)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if sigmoid(1000) != 1 || sigmoid(-1000) >= 1e-300 {
		// Extremes must saturate without NaN/Inf.
		t.Fatalf("sigmoid extremes: %g / %g", sigmoid(1000), sigmoid(-1000))
	}
}

func TestScaler1dRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := make([]float64, 5+rng.Intn(50))
		for i := range vals {
			vals[i] = rng.NormFloat64()*50 + 100
		}
		s := fitScaler1d(vals)
		for _, v := range vals {
			if math.Abs(s.inv(s.fwd(v))-v) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScaler1dConstantInput(t *testing.T) {
	s := fitScaler1d([]float64{7, 7, 7})
	if s.Std != 1 {
		t.Fatalf("constant input std = %g want 1 (guard)", s.Std)
	}
	if s.fwd(7) != 0 || s.inv(0) != 7 {
		t.Fatal("constant scaler round trip broken")
	}
}

func TestScalerNDStandardizes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows := make([][]float64, 300)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64()*10 + 4, 42} // col 1 constant
	}
	s := fitScalerND(rows)
	var sum, sq float64
	for _, r := range rows {
		v := s.fwd(r)[0]
		sum += v
		sq += v * v
	}
	mean := sum / float64(len(rows))
	if math.Abs(mean) > 1e-9 {
		t.Fatalf("scaled mean = %g", mean)
	}
	if v := sq/float64(len(rows)) - mean*mean; math.Abs(v-1) > 1e-6 {
		t.Fatalf("scaled variance = %g", v)
	}
	// Constant column must not produce NaN.
	if out := s.fwd(rows[0]); math.IsNaN(out[1]) {
		t.Fatal("constant column scaled to NaN")
	}
}

func TestXavierInitBounded(t *testing.T) {
	w := newTensor(10, 20)
	w.initXavier(newDetRand(1))
	limit := math.Sqrt(6.0 / 30.0)
	for i, v := range w.W {
		if math.Abs(v) > limit {
			t.Fatalf("weight %d = %g exceeds Glorot limit %g", i, v, limit)
		}
	}
}
