package neural

import (
	"fmt"
	"math/rand"
)

// cell is one recurrent layer's step function with backpropagation.
// Implementations: lstmCell, gruCell.
type cell interface {
	// step advances one timestep: given input x and previous hidden state,
	// it returns the new hidden state and an opaque cache for backprop.
	step(x []float64, st cellState) (cellState, any)
	// back consumes the cache and the gradients flowing into the produced
	// state, accumulates parameter gradients, and returns gradients for the
	// input and the previous state.
	back(cache any, dst cellState) (dx []float64, dprev cellState)
	// zeroState returns the initial (all-zero) state.
	zeroState() cellState
	// tensors exposes the layer's parameters for the optimizer.
	tensors() []*tensor
	// inputSize and hiddenSize describe the layer shape.
	inputSize() int
	hiddenSize() int
}

// cellState is a recurrent layer state: h for GRU, (h, c) for LSTM (c nil
// for GRU).
type cellState struct {
	h []float64
	c []float64
}

func (s cellState) clone() cellState {
	out := cellState{h: append([]float64(nil), s.h...)}
	if s.c != nil {
		out.c = append([]float64(nil), s.c...)
	}
	return out
}

// seqNet is a stack of recurrent layers with a per-step linear readout,
// trained on windows with full backpropagation through time. It backs both
// the LSTM and GRU public types.
type seqNet struct {
	layers []cell
	wy     *tensor // hidden × 1 readout
	by     *tensor
	opt    *adam
	rng    *rand.Rand

	xScaler scalerND
	yScaler scaler1d
	fitted  bool
}

func newSeqNet(layers []cell, lr float64, seed int64) *seqNet {
	n := &seqNet{layers: layers, rng: rand.New(rand.NewSource(seed))}
	h := layers[len(layers)-1].hiddenSize()
	n.wy = newTensor(h, 1)
	n.wy.initXavier(n.rng)
	n.by = newTensor(1, 1)
	var tensors []*tensor
	for _, l := range layers {
		tensors = append(tensors, l.tensors()...)
	}
	tensors = append(tensors, n.wy, n.by)
	n.opt = newAdam(lr, tensors...)
	return n
}

// stepCache stores everything needed to backprop one timestep.
type stepCache struct {
	layerCaches []any
	lastH       []float64 // top layer output at this step
}

// forwardWindow runs a window through all layers, returning per-step
// standardized predictions and the caches for BPTT.
func (n *seqNet) forwardWindow(window [][]float64, train bool) (preds []float64, caches []stepCache, states []cellState) {
	states = make([]cellState, len(n.layers))
	for li, l := range n.layers {
		states[li] = l.zeroState()
	}
	preds = make([]float64, len(window))
	if train {
		caches = make([]stepCache, len(window))
	}
	for t, raw := range window {
		x := n.xScaler.fwd(raw)
		var sc stepCache
		if train {
			sc.layerCaches = make([]any, len(n.layers))
		}
		for li, l := range n.layers {
			var cache any
			states[li], cache = l.step(x, states[li])
			if train {
				sc.layerCaches[li] = cache
			}
			x = states[li].h
		}
		if train {
			sc.lastH = x
			caches[t] = sc
		}
		var y float64
		for i, hv := range x {
			y += n.wy.W[i] * hv
		}
		y += n.by.W[0]
		preds[t] = y
	}
	return preds, caches, states
}

// trainWindows runs epochs of BPTT over the given windows.
func (n *seqNet) trainWindows(seqs [][][]float64, targets [][]float64, epochs, batch int) error {
	if len(seqs) != len(targets) {
		return fmt.Errorf("neural: %d windows vs %d target rows", len(seqs), len(targets))
	}
	if len(seqs) == 0 {
		return fmt.Errorf("neural: no training windows")
	}
	for i, s := range seqs {
		if len(s) != len(targets[i]) {
			return fmt.Errorf("neural: window %d has %d steps but %d targets", i, len(s), len(targets[i]))
		}
	}
	if batch <= 0 {
		batch = 16
	}
	order := n.rng.Perm(len(seqs))
	for e := 0; e < epochs; e++ {
		n.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += batch {
			end := start + batch
			if end > len(order) {
				end = len(order)
			}
			steps := 0
			for _, i := range order[start:end] {
				steps += len(seqs[i])
				n.backpropWindow(seqs[i], targets[i])
			}
			n.opt.Step(steps, 5)
		}
	}
	n.fitted = true
	return nil
}

// backpropWindow accumulates gradients for one window.
func (n *seqNet) backpropWindow(window [][]float64, target []float64) {
	preds, caches, _ := n.forwardWindow(window, true)
	T := len(window)
	// State gradients carried backward through time, one per layer.
	dstates := make([]cellState, len(n.layers))
	for li, l := range n.layers {
		dstates[li] = l.zeroState()
	}
	for t := T - 1; t >= 0; t-- {
		dy := preds[t] - n.yScaler.fwd(target[t])
		// Readout gradients.
		h := caches[t].lastH
		for i, hv := range h {
			n.wy.G[i] += dy * hv
		}
		n.by.G[0] += dy
		// Gradient into the top layer's hidden output at step t: readout
		// contribution plus the recurrent gradient from step t+1.
		top := len(n.layers) - 1
		for i := range dstates[top].h {
			dstates[top].h[i] += dy * n.wy.W[i]
		}
		// Backprop through the layer stack.
		var dxBelow []float64
		for li := top; li >= 0; li-- {
			if li < top {
				for i := range dstates[li].h {
					dstates[li].h[i] += dxBelow[i]
				}
			}
			var dprev cellState
			dxBelow, dprev = n.layers[li].back(caches[t].layerCaches[li], dstates[li])
			dstates[li] = dprev
		}
	}
}

// predictWindow evaluates the network on a window, de-standardizing outputs.
func (n *seqNet) predictWindow(window [][]float64) []float64 {
	if !n.fitted {
		panic("neural: sequence model is not fitted")
	}
	preds, _, _ := n.forwardWindow(window, false)
	out := make([]float64, len(preds))
	for i, p := range preds {
		out[i] = n.yScaler.inv(p)
	}
	return out
}

// fitScalers computes the input/target scalers from the training windows.
func (n *seqNet) fitScalers(seqs [][][]float64, targets [][]float64) {
	var rows [][]float64
	var ys []float64
	for i, s := range seqs {
		rows = append(rows, s...)
		ys = append(ys, targets[i]...)
	}
	n.xScaler = fitScalerND(rows)
	n.yScaler = fitScaler1d(ys)
}
