package neural

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
)

// cell is one recurrent layer's parameters with step/backprop functions.
// Implementations: lstmCell, gruCell. Cells hold no per-window state: all
// scratch lives in a cellScratch so several executors (the serial trainer,
// parallel workers, pooled predictors) can share one parameter set without
// races.
type cell interface {
	// newScratch allocates the per-executor workspace for this layer.
	newScratch() cellScratch
	// step advances timestep t: given input x and the previous state, it
	// writes activations into the scratch and returns the new state (whose
	// buffers are owned by the scratch and valid until the next begin).
	step(sc cellScratch, t int, x []float64, st cellState) cellState
	// back backpropagates timestep t using the activations recorded by
	// step, accumulates parameter gradients into the cell's tensors, and
	// returns gradients for the input and the previous state.
	back(sc cellScratch, t int, dst cellState) (dx []float64, dprev cellState)
	// tensors exposes the layer's parameters for the optimizer.
	tensors() []*tensor
	// shadow returns a cell sharing this cell's weights with private
	// gradient buffers, for worker-local accumulation.
	shadow() cell
	// inputSize and hiddenSize describe the layer shape.
	inputSize() int
	hiddenSize() int
}

// cellScratch is a layer's reusable per-executor workspace. begin grows it
// for a window of T steps and returns the zero initial state plus the zero
// initial backward-state gradient.
type cellScratch interface {
	begin(T int) (state0, dstate0 cellState)
}

// cellState is a recurrent layer state: h for GRU, (h, c) for LSTM (c nil
// for GRU).
type cellState struct {
	h []float64
	c []float64
}

func (s cellState) clone() cellState {
	out := cellState{h: append([]float64(nil), s.h...)}
	if s.c != nil {
		out.c = append([]float64(nil), s.c...)
	}
	return out
}

// growRows ensures dst has at least n rows of width w, reusing existing
// buffers.
func growRows(dst [][]float64, n, w int) [][]float64 {
	for len(dst) < n {
		dst = append(dst, make([]float64, w))
	}
	return dst
}

// seqExec runs forward/backward passes for one goroutine. It owns every
// intermediate buffer (scaled inputs, per-layer activations, state-gradient
// ping-pong buffers), so a whole training epoch allocates nothing per step.
// The cells it references may be the network's primary cells (serial
// training, prediction) or shadows with private gradients (workers).
type seqExec struct {
	layers []cell
	scr    []cellScratch
	wy, by *tensor

	// inferVer, when non-nil, marks this executor as prediction-only and
	// points at the owning network's weights version; layers that provide a
	// fused inference step (lstmCell.stepInfer) run it instead of the
	// recording step. Training executors leave it nil.
	inferVer *atomic.Int64

	xrows   [][]float64 // standardized input per timestep
	topH    [][]float64 // top-layer output per timestep
	preds   []float64
	states  []cellState
	dstates []cellState
}

func newSeqExec(layers []cell, wy, by *tensor) *seqExec {
	e := &seqExec{
		layers:  layers,
		wy:      wy,
		by:      by,
		states:  make([]cellState, len(layers)),
		dstates: make([]cellState, len(layers)),
	}
	for _, l := range layers {
		e.scr = append(e.scr, l.newScratch())
	}
	return e
}

// forward runs a window through all layers, returning per-step standardized
// predictions. The returned slice and the recorded activations are valid
// until the next forward on this executor.
func (e *seqExec) forward(window [][]float64, xs *scalerND) []float64 {
	T := len(window)
	if T == 0 {
		return e.preds[:0]
	}
	e.xrows = growRows(e.xrows, T, len(window[0]))
	for len(e.topH) < T {
		e.topH = append(e.topH, nil)
	}
	for len(e.preds) < T {
		e.preds = append(e.preds, 0)
	}
	for li := range e.layers {
		e.states[li], e.dstates[li] = e.scr[li].begin(T)
	}
	preds := e.preds[:T]
	for t, raw := range window {
		if cap(e.xrows[t]) < len(raw) {
			e.xrows[t] = make([]float64, len(raw))
		}
		x := e.xrows[t][:len(raw)]
		xs.fwdInto(x, raw)
		for li, l := range e.layers {
			if e.inferVer != nil {
				if lc, ok := l.(*lstmCell); ok {
					e.states[li] = lc.stepInfer(e.scr[li], t, x, e.states[li], e.inferVer.Load())
					x = e.states[li].h
					continue
				}
			}
			e.states[li] = l.step(e.scr[li], t, x, e.states[li])
			x = e.states[li].h
		}
		e.topH[t] = x
		var y float64
		for i, hv := range x {
			y += e.wy.W[i] * hv
		}
		y += e.by.W[0]
		preds[t] = y
	}
	return preds
}

// backprop accumulates gradients for one window into the executor's
// tensors (the primary tensors for the serial path, shadow gradients for
// workers).
func (e *seqExec) backprop(window [][]float64, target []float64, xs *scalerND, ys scaler1d) {
	preds := e.forward(window, xs)
	top := len(e.layers) - 1
	for t := len(window) - 1; t >= 0; t-- {
		dy := preds[t] - ys.fwd(target[t])
		// Readout gradients.
		h := e.topH[t]
		for i, hv := range h {
			e.wy.G[i] += dy * hv
		}
		e.by.G[0] += dy
		// Gradient into the top layer's hidden output at step t: readout
		// contribution plus the recurrent gradient from step t+1.
		for i := range e.dstates[top].h {
			e.dstates[top].h[i] += dy * e.wy.W[i]
		}
		// Backprop through the layer stack.
		var dxBelow []float64
		for li := top; li >= 0; li-- {
			if li < top {
				for i := range e.dstates[li].h {
					e.dstates[li].h[i] += dxBelow[i]
				}
			}
			var dprev cellState
			dxBelow, dprev = e.layers[li].back(e.scr[li], t, e.dstates[li])
			e.dstates[li] = dprev
		}
	}
}

// seqWorker is one parallel training worker: shadow cells sharing the
// network weights with private gradient buffers, plus the executor scratch.
type seqWorker struct {
	exec  *seqExec
	grads []*tensor // shadow tensors in the optimizer's reduce order
}

// seqNet is a stack of recurrent layers with a per-step linear readout,
// trained on windows with full backpropagation through time. It backs both
// the LSTM and GRU public types.
type seqNet struct {
	layers []cell
	wy     *tensor // hidden × 1 readout
	by     *tensor
	opt    *adam
	rng    *rand.Rand

	// workers is the effective worker count for training (set by the
	// public model types before each fit).
	workers int
	exec    *seqExec     // serial-path executor, lazily built
	pool    []*seqWorker // parallel workers, lazily built

	// predPool recycles prediction executors so concurrent PredictSeq
	// callers (e.g. per-connection cluster goroutines sharing one model)
	// stay race-free without per-call allocation of the whole workspace.
	predPool sync.Pool

	// weightsVer versions the parameter tensors for the inference fast
	// path: trainWindows bumps it when an optimisation pass finishes, and
	// cells rebuild their transposed inference weights when the version
	// they cached falls behind. It starts at 1 so freshly built (or
	// freshly decoded) weights are always newer than a cell's zero.
	weightsVer atomic.Int64

	xScaler scalerND
	yScaler scaler1d
	fitted  bool
}

func newSeqNet(layers []cell, lr float64, seed int64) *seqNet {
	n := &seqNet{layers: layers, rng: rand.New(rand.NewSource(seed))}
	h := layers[len(layers)-1].hiddenSize()
	n.wy = newTensor(h, 1)
	n.wy.initXavier(n.rng)
	n.by = newTensor(1, 1)
	var tensors []*tensor
	for _, l := range layers {
		tensors = append(tensors, l.tensors()...)
	}
	tensors = append(tensors, n.wy, n.by)
	n.opt = newAdam(lr, tensors...)
	n.weightsVer.Store(1)
	n.predPool.New = func() any {
		e := newSeqExec(n.layers, n.wy, n.by)
		e.inferVer = &n.weightsVer
		return e
	}
	return n
}

// trainExec returns the serial-path executor, building it on first use.
func (n *seqNet) trainExec() *seqExec {
	if n.exec == nil {
		n.exec = newSeqExec(n.layers, n.wy, n.by)
	}
	return n.exec
}

// workerPool grows the worker set to w and returns the first w workers.
func (n *seqNet) workerPool(w int) []*seqWorker {
	for len(n.pool) < w {
		shadows := make([]cell, len(n.layers))
		var grads []*tensor
		for i, l := range n.layers {
			sl := l.shadow()
			shadows[i] = sl
			grads = append(grads, sl.tensors()...)
		}
		swy, sby := n.wy.shadow(), n.by.shadow()
		grads = append(grads, swy, sby)
		n.pool = append(n.pool, &seqWorker{exec: newSeqExec(shadows, swy, sby), grads: grads})
	}
	return n.pool[:w]
}

// trainWindows runs epochs of BPTT over the given windows. Mini-batches are
// sharded across the configured workers; with one worker the exact serial
// path runs, keeping fixed-seed results bit-identical to single-threaded
// training.
func (n *seqNet) trainWindows(seqs [][][]float64, targets [][]float64, epochs, batch int) error {
	if len(seqs) != len(targets) {
		return fmt.Errorf("neural: %d windows vs %d target rows", len(seqs), len(targets))
	}
	if len(seqs) == 0 {
		return fmt.Errorf("neural: no training windows")
	}
	for i, s := range seqs {
		if len(s) != len(targets[i]) {
			return fmt.Errorf("neural: window %d has %d steps but %d targets", i, len(s), len(targets[i]))
		}
	}
	if batch <= 0 {
		batch = 16
	}
	workers := n.workers
	if workers < 1 {
		workers = 1
	}
	order := n.rng.Perm(len(seqs))
	for e := 0; e < epochs; e++ {
		n.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += batch {
			end := start + batch
			if end > len(order) {
				end = len(order)
			}
			idxs := order[start:end]
			steps := 0
			for _, i := range idxs {
				steps += len(seqs[i])
			}
			if w := min(workers, len(idxs)); w <= 1 {
				ex := n.trainExec()
				for _, i := range idxs {
					ex.backprop(seqs[i], targets[i], &n.xScaler, n.yScaler)
				}
			} else {
				n.parallelBatch(idxs, seqs, targets, w)
			}
			n.opt.Step(steps, 5)
		}
	}
	n.fitted = true
	n.weightsVer.Add(1)
	return nil
}

// parallelBatch shards one mini-batch across w workers, each accumulating
// into its own shadow gradients, then reduces the shadows into the primary
// tensors in fixed shard order so results are deterministic for a given w.
func (n *seqNet) parallelBatch(idxs []int, seqs [][][]float64, targets [][]float64, w int) {
	pool := n.workerPool(w)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		lo, hi := shardRange(len(idxs), w, k)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(wk *seqWorker, part []int) {
			defer wg.Done()
			for _, i := range part {
				wk.exec.backprop(seqs[i], targets[i], &n.xScaler, n.yScaler)
			}
		}(pool[k], idxs[lo:hi])
	}
	wg.Wait()
	for _, wk := range pool {
		for ti, sh := range wk.grads {
			dst := n.opt.tensors[ti].G
			for i, g := range sh.G {
				dst[i] += g
			}
			clear(sh.G)
		}
	}
}

// predictWindow evaluates the network on a window, de-standardizing
// outputs. Safe for concurrent use: each call borrows an executor from the
// pool, so no scratch is shared between goroutines.
func (n *seqNet) predictWindow(window [][]float64) []float64 {
	if !n.fitted {
		panic("neural: sequence model is not fitted")
	}
	e := n.predPool.Get().(*seqExec)
	preds := e.forward(window, &n.xScaler)
	out := make([]float64, len(preds))
	for i, p := range preds {
		out[i] = n.yScaler.inv(p)
	}
	n.predPool.Put(e)
	return out
}

// fitScalers computes the input/target scalers from the training windows.
func (n *seqNet) fitScalers(seqs [][][]float64, targets [][]float64) {
	var rows [][]float64
	var ys []float64
	for i, s := range seqs {
		rows = append(rows, s...)
		ys = append(ys, targets[i]...)
	}
	n.xScaler = fitScalerND(rows)
	n.yScaler = fitScaler1d(ys)
}
