package neural

import "runtime"

// resolveWorkers maps a model's Workers knob to an effective worker count:
// 0 (the default) uses every available CPU, anything else is taken as-is
// with a floor of one. Training with one worker follows the exact serial
// code path, so `Workers: 1` keeps bit-for-bit seed reproducibility.
func resolveWorkers(w int) int {
	if w == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		return 1
	}
	return w
}

// shardRange splits n items into w contiguous shards and returns the
// half-open range of shard k. The first n%w shards get one extra item, so
// the assignment is deterministic for any fixed (n, w) — gradient reduction
// in shard order therefore sums in a fixed order run over run.
func shardRange(n, w, k int) (lo, hi int) {
	base := n / w
	rem := n % w
	lo = k*base + min(k, rem)
	hi = lo + base
	if k < rem {
		hi++
	}
	return lo, hi
}
