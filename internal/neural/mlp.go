package neural

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"

	"highrpm/internal/mat"
	"highrpm/internal/model"
)

// MLP is a feed-forward network with ReLU hidden layers and a linear output
// layer, trained with mini-batch Adam on mean squared error. It serves as
// the "NN" baseline of Table 4 (one hidden layer of 30 units) and, with two
// outputs, as HighRPM's SRR model (§4.3: input layer = PMCs + P_Node,
// hidden layer, output layer = P_CPU and P_MEM).
//
// The network standardizes its own inputs and targets during Fit, so raw
// counter values and watt-scale targets can be passed directly.
type MLP struct {
	Hidden    []int   `json:"hidden"`     // hidden layer widths
	Outputs   int     `json:"outputs"`    // number of output units (≥1)
	LR        float64 `json:"lr"`         // Adam learning rate
	Epochs    int     `json:"epochs"`     // training epochs
	BatchSize int     `json:"batch_size"` // mini-batch size
	Seed      int64   `json:"seed"`
	// Workers shards mini-batches across a worker pool during Fit and
	// TrainMore: 0 uses every CPU, 1 forces the bit-exact serial path, N>1
	// uses N workers (deterministic for a fixed N). Never persisted.
	Workers int `json:"-"`

	// Fitted state.
	Win     []*tensor // weight matrices, layer l: (in_l × out_l)
	Bin     []*tensor // biases
	XScaler scalerND
	YScaler []scaler1d

	rng  *rand.Rand
	opt  *adam
	exec *mlpExec   // serial-path training executor, lazily built
	pool []*mlpExec // parallel training workers, lazily built

	// predPool recycles prediction scratch so concurrent Predict callers
	// stay race-free without reallocating activations per call.
	predPool sync.Pool
}

// mlpExec owns the forward/backward scratch of one training goroutine: the
// standardized input, per-layer activations and per-layer deltas. Workers
// additionally carry shadow tensors sharing the network weights with
// private gradients.
type mlpExec struct {
	win, bin []*tensor
	sx       []float64
	acts     [][]float64 // acts[0] = sx, acts[l+1] = layer l output
	deltas   [][]float64 // deltas[l] = dL/d(layer l output)
}

func newMLPExec(win, bin []*tensor, inputs int) *mlpExec {
	e := &mlpExec{win: win, bin: bin, sx: make([]float64, inputs)}
	e.acts = append(e.acts, e.sx)
	for _, w := range win {
		e.acts = append(e.acts, make([]float64, w.C))
		e.deltas = append(e.deltas, make([]float64, w.C))
	}
	return e
}

// shadowMLPExec clones the layer tensors with private gradients.
func shadowMLPExec(win, bin []*tensor, inputs int) *mlpExec {
	sw := make([]*tensor, len(win))
	sb := make([]*tensor, len(bin))
	for l := range win {
		sw[l] = win[l].shadow()
		sb[l] = bin[l].shadow()
	}
	return newMLPExec(sw, sb, inputs)
}

// forward runs the network on a raw input, standardizing into the exec's
// scratch; acts[last] is the output in standardized target space.
func (e *mlpExec) forward(xs *scalerND, rawX []float64) [][]float64 {
	xs.fwdInto(e.sx, rawX)
	cur := e.sx
	for l, w := range e.win {
		out := e.acts[l+1]
		copy(out, e.bin[l].W)
		for i, xv := range cur {
			if xv == 0 {
				continue
			}
			row := w.W[i*w.C : (i+1)*w.C]
			for j, wv := range row {
				out[j] += xv * wv
			}
		}
		if l < len(e.win)-1 { // hidden: ReLU
			for j := range out {
				if out[j] < 0 {
					out[j] = 0
				}
			}
		}
		cur = out
	}
	return e.acts
}

// backprop accumulates gradients for one sample into the exec's tensors.
func (e *mlpExec) backprop(xs *scalerND, ys []scaler1d, rawX, rawY []float64) {
	acts := e.forward(xs, rawX)
	out := acts[len(acts)-1]
	// dL/dout for MSE in standardized target space.
	last := len(e.win) - 1
	delta := e.deltas[last]
	for j := range out {
		delta[j] = out[j] - ys[j].fwd(rawY[j])
	}
	for l := last; l >= 0; l-- {
		w := e.win[l]
		in := acts[l]
		// Bias grads.
		for j, d := range delta {
			e.bin[l].G[j] += d
		}
		// Weight grads and input deltas.
		var prev []float64
		if l > 0 {
			prev = e.deltas[l-1]
		}
		for i, xv := range in {
			row := w.W[i*w.C : (i+1)*w.C]
			grow := w.G[i*w.C : (i+1)*w.C]
			var acc float64
			for j, d := range delta {
				grow[j] += d * xv
				acc += d * row[j]
			}
			if l > 0 {
				prev[i] = acc
			}
		}
		if l > 0 {
			// ReLU derivative on the hidden pre-activation output.
			for i := range prev {
				if in[i] <= 0 {
					prev[i] = 0
				}
			}
			delta = prev
		}
	}
}

// mlpState is the JSON form of a trained MLP.
type mlpState struct {
	Hidden  []int       `json:"hidden"`
	Outputs int         `json:"outputs"`
	LR      float64     `json:"lr"`
	Epochs  int         `json:"epochs"`
	Batch   int         `json:"batch_size"`
	Seed    int64       `json:"seed"`
	Weights [][]float64 `json:"weights"`
	Biases  [][]float64 `json:"biases"`
	Dims    [][2]int    `json:"dims"`
	XScaler scalerND    `json:"x_scaler"`
	YScaler []scaler1d  `json:"y_scaler"`
}

// NewMLP returns an MLP with the given hidden widths and output count.
// Defaults: LR 0.005, 60 epochs, batch 32.
func NewMLP(hidden []int, outputs int, seed int64) *MLP {
	if outputs <= 0 {
		outputs = 1
	}
	return &MLP{
		Hidden:    append([]int(nil), hidden...),
		Outputs:   outputs,
		LR:        0.005,
		Epochs:    60,
		BatchSize: 32,
		Seed:      seed,
	}
}

// NewBaselineNN returns the Table 4 "NN" configuration: one hidden layer of
// 30 units, single output.
func NewBaselineNN(seed int64) *MLP { return NewMLP([]int{30}, 1, seed) }

func (n *MLP) initNet(inputs int) {
	n.rng = rand.New(rand.NewSource(n.Seed))
	widths := append([]int{inputs}, n.Hidden...)
	widths = append(widths, n.Outputs)
	n.Win = nil
	n.Bin = nil
	var tensors []*tensor
	for l := 0; l+1 < len(widths); l++ {
		w := newTensor(widths[l], widths[l+1])
		w.initXavier(n.rng)
		b := newTensor(1, widths[l+1])
		n.Win = append(n.Win, w)
		n.Bin = append(n.Bin, b)
		tensors = append(tensors, w, b)
	}
	n.opt = newAdam(n.LR, tensors...)
	// The layer tensors changed identity: drop executors bound to the old
	// ones (stale prediction executors age out of predPool via the pointer
	// check in predExec).
	n.exec = nil
	n.pool = nil
}

// Fit trains a single-output network (model.Regressor).
func (n *MLP) Fit(x *mat.Dense, y []float64) error {
	ym := mat.NewDense(len(y), 1)
	for i, v := range y {
		ym.Set(i, 0, v)
	}
	return n.FitMulti(x, ym)
}

// FitMulti trains the network on rows of x against rows of y.
func (n *MLP) FitMulti(x, y *mat.Dense) error {
	r, c := x.Dims()
	yr, yc := y.Dims()
	if r != yr {
		return fmt.Errorf("neural: %d rows vs %d target rows", r, yr)
	}
	if yc != n.Outputs {
		return fmt.Errorf("neural: network has %d outputs, targets have %d", n.Outputs, yc)
	}
	if r == 0 {
		return fmt.Errorf("neural: empty training set")
	}
	rows := make([][]float64, r)
	for i := range rows {
		rows[i] = x.Row(i)
	}
	n.XScaler = fitScalerND(rows)
	n.YScaler = make([]scaler1d, yc)
	for j := 0; j < yc; j++ {
		n.YScaler[j] = fitScaler1d(y.Col(j))
	}
	n.initNet(c)
	return n.train(x, y, n.Epochs)
}

// TrainMore runs additional epochs on new data without re-initialising the
// network; the active-learning stage (§4.1) uses this for fine-tuning.
func (n *MLP) TrainMore(x, y *mat.Dense, epochs int) error {
	if n.Win == nil {
		return fmt.Errorf("neural: TrainMore before Fit")
	}
	return n.train(x, y, epochs)
}

func (n *MLP) train(x, y *mat.Dense, epochs int) error {
	r, _ := x.Dims()
	batch := n.BatchSize
	if batch <= 0 {
		batch = 32
	}
	workers := resolveWorkers(n.Workers)
	order := n.rng.Perm(r)
	for e := 0; e < epochs; e++ {
		n.rng.Shuffle(r, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < r; start += batch {
			end := start + batch
			if end > r {
				end = r
			}
			idxs := order[start:end]
			if w := min(workers, len(idxs)); w <= 1 {
				ex := n.trainExec()
				for _, i := range idxs {
					ex.backprop(&n.XScaler, n.YScaler, x.Row(i), y.Row(i))
				}
			} else {
				n.parallelBatch(idxs, x, y, w)
			}
			n.opt.Step(end-start, 5)
		}
	}
	return nil
}

// trainExec returns the serial-path executor, building it on first use.
func (n *MLP) trainExec() *mlpExec {
	if n.exec == nil {
		n.exec = newMLPExec(n.Win, n.Bin, n.Win[0].R)
	}
	return n.exec
}

// parallelBatch shards one mini-batch across w workers, each accumulating
// into shadow gradients, then reduces the shadows into the primary tensors
// in fixed shard order so results are deterministic for a given w.
func (n *MLP) parallelBatch(idxs []int, x, y *mat.Dense, w int) {
	for len(n.pool) < w {
		n.pool = append(n.pool, shadowMLPExec(n.Win, n.Bin, n.Win[0].R))
	}
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		lo, hi := shardRange(len(idxs), w, k)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(ex *mlpExec, part []int) {
			defer wg.Done()
			for _, i := range part {
				ex.backprop(&n.XScaler, n.YScaler, x.Row(i), y.Row(i))
			}
		}(n.pool[k], idxs[lo:hi])
	}
	wg.Wait()
	for _, ex := range n.pool[:w] {
		for l := range n.Win {
			for i, g := range ex.win[l].G {
				n.Win[l].G[i] += g
			}
			clear(ex.win[l].G)
			for i, g := range ex.bin[l].G {
				n.Bin[l].G[i] += g
			}
			clear(ex.bin[l].G)
		}
	}
}

// predExec borrows a prediction executor, dropping pooled ones built
// against superseded tensors (initNet replaces Win/Bin wholesale).
func (n *MLP) predExec() *mlpExec {
	if e, ok := n.predPool.Get().(*mlpExec); ok && len(e.win) == len(n.Win) && e.win[0] == n.Win[0] {
		return e
	}
	return newMLPExec(n.Win, n.Bin, n.Win[0].R)
}

// Predict evaluates a single-output network.
func (n *MLP) Predict(features []float64) float64 {
	return n.PredictMulti(features)[0]
}

// PredictMulti evaluates the network, returning de-standardized outputs.
// Safe for concurrent use: each call borrows pooled scratch, so goroutines
// sharing one fitted model never share buffers.
func (n *MLP) PredictMulti(features []float64) []float64 {
	if n.Win == nil {
		panic("neural: MLP is not fitted")
	}
	e := n.predExec()
	acts := e.forward(&n.XScaler, features)
	out := acts[len(acts)-1]
	res := make([]float64, len(out))
	for j, v := range out {
		res[j] = n.YScaler[j].inv(v)
	}
	n.predPool.Put(e)
	return res
}

// Kind implements model.Persistable.
func (n *MLP) Kind() string { return "neural.mlp" }

// MarshalState implements model.Persistable.
func (n *MLP) MarshalState() ([]byte, error) {
	st := mlpState{
		Hidden: n.Hidden, Outputs: n.Outputs, LR: n.LR, Epochs: n.Epochs,
		Batch: n.BatchSize, Seed: n.Seed, XScaler: n.XScaler, YScaler: n.YScaler,
	}
	for l, w := range n.Win {
		st.Weights = append(st.Weights, w.W)
		st.Biases = append(st.Biases, n.Bin[l].W)
		st.Dims = append(st.Dims, [2]int{w.R, w.C})
	}
	return json.Marshal(st)
}

func decodeMLP(b []byte) (any, error) {
	var st mlpState
	if err := json.Unmarshal(b, &st); err != nil {
		return nil, err
	}
	n := NewMLP(st.Hidden, st.Outputs, st.Seed)
	n.LR, n.Epochs, n.BatchSize = st.LR, st.Epochs, st.Batch
	n.XScaler, n.YScaler = st.XScaler, st.YScaler
	for l, dims := range st.Dims {
		w := newTensor(dims[0], dims[1])
		copy(w.W, st.Weights[l])
		bt := newTensor(1, dims[1])
		copy(bt.W, st.Biases[l])
		n.Win = append(n.Win, w)
		n.Bin = append(n.Bin, bt)
	}
	return n, nil
}

func init() {
	model.RegisterKind("neural.mlp", decodeMLP)
}

var (
	_ model.Regressor      = (*MLP)(nil)
	_ model.MultiRegressor = (*MLP)(nil)
)
