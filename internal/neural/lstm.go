package neural

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"

	"highrpm/internal/model"
)

// lstmCell is one LSTM layer. Gate blocks in the 4H dimension are ordered
// [input, forget, cell, output].
type lstmCell struct {
	in, hid int
	wx      *tensor // in × 4H
	wh      *tensor // H × 4H
	b       *tensor // 1 × 4H

	// inf caches the weights transposed to [4H][in] / [4H][hid] (row =
	// gate*H+unit) for the fused inference step. ver is the network
	// weightsVer the transposes were built at; 0 means never built.
	inf struct {
		mu       sync.Mutex
		ver      int64
		wxT, whT []float64
	}
}

func newLSTMCell(in, hid int, rng interface{ NormFloat64() float64 }) *lstmCell {
	c := &lstmCell{in: in, hid: hid,
		wx: newTensor(in, 4*hid), wh: newTensor(hid, 4*hid), b: newTensor(1, 4*hid)}
	scaleX := 1 / math.Sqrt(float64(in))
	scaleH := 1 / math.Sqrt(float64(hid))
	for i := range c.wx.W {
		c.wx.W[i] = rng.NormFloat64() * scaleX
	}
	for i := range c.wh.W {
		c.wh.W[i] = rng.NormFloat64() * scaleH
	}
	// Forget-gate bias starts at 1 so early training does not forget.
	for j := hid; j < 2*hid; j++ {
		c.b.W[j] = 1
	}
	return c
}

// lstmStep records one timestep's activations for backprop. The gate
// slices are owned by the scratch; x, hPrev, cPrev and c reference buffers
// that stay live for the whole window.
type lstmStep struct {
	x, hPrev, cPrev []float64
	i, f, g, o, tc  []float64
	c               []float64
}

// lstmScratch is the reusable per-executor workspace of one LSTM layer:
// pre-activation and gradient slabs plus per-timestep state and gate
// buffers, grown once to the window length and reused for every window.
type lstmScratch struct {
	in, hid int
	z, dz   []float64    // 4H pre-activations / their gradients
	dx      []float64    // input gradient
	dbuf    [2]cellState // ping-pong backward state gradients
	hs, cs  [][]float64  // states; hs[0]/cs[0] stay all-zero
	steps   []lstmStep
}

func (l *lstmCell) newScratch() cellScratch {
	H := l.hid
	return &lstmScratch{
		in: l.in, hid: H,
		z: make([]float64, 4*H), dz: make([]float64, 4*H),
		dx: make([]float64, l.in),
		dbuf: [2]cellState{
			{h: make([]float64, H), c: make([]float64, H)},
			{h: make([]float64, H), c: make([]float64, H)},
		},
	}
}

func (s *lstmScratch) begin(T int) (cellState, cellState) {
	H := s.hid
	for len(s.hs) < T+1 {
		s.hs = append(s.hs, make([]float64, H))
		s.cs = append(s.cs, make([]float64, H))
	}
	for len(s.steps) < T {
		s.steps = append(s.steps, lstmStep{
			i: make([]float64, H), f: make([]float64, H),
			g: make([]float64, H), o: make([]float64, H),
			tc: make([]float64, H),
		})
	}
	d0 := s.dbuf[T&1]
	clear(d0.h)
	clear(d0.c)
	return cellState{h: s.hs[0], c: s.cs[0]}, d0
}

func (l *lstmCell) inputSize() int     { return l.in }
func (l *lstmCell) hiddenSize() int    { return l.hid }
func (l *lstmCell) tensors() []*tensor { return []*tensor{l.wx, l.wh, l.b} }

func (l *lstmCell) shadow() cell {
	return &lstmCell{in: l.in, hid: l.hid,
		wx: l.wx.shadow(), wh: l.wh.shadow(), b: l.b.shadow()}
}

func (l *lstmCell) step(scr cellScratch, t int, x []float64, st cellState) cellState {
	s := scr.(*lstmScratch)
	H := l.hid
	z := s.z
	copy(z, l.b.W)
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		row := l.wx.W[i*4*H : (i+1)*4*H]
		for j, wv := range row {
			z[j] += xv * wv
		}
	}
	for i, hv := range st.h {
		if hv == 0 {
			continue
		}
		row := l.wh.W[i*4*H : (i+1)*4*H]
		for j, wv := range row {
			z[j] += hv * wv
		}
	}
	g := &s.steps[t]
	g.x, g.hPrev, g.cPrev = x, st.h, st.c
	c, h := s.cs[t+1], s.hs[t+1]
	g.c = c
	for j := 0; j < H; j++ {
		g.i[j] = sigmoid(z[j])
		g.f[j] = sigmoid(z[H+j])
		g.g[j] = math.Tanh(z[2*H+j])
		g.o[j] = sigmoid(z[3*H+j])
		c[j] = g.f[j]*st.c[j] + g.i[j]*g.g[j]
		g.tc[j] = math.Tanh(c[j])
		h[j] = g.o[j] * g.tc[j]
	}
	return cellState{h: h, c: c}
}

// inferWeights returns the transposed weight copies for version ver,
// rebuilding them when training has moved the weights since the last
// build. The transpose is ~4H·(in+H) copies — trivial next to one window
// of inference — and is amortized across every prediction at that version.
func (l *lstmCell) inferWeights(ver int64) (wxT, whT []float64) {
	l.inf.mu.Lock()
	defer l.inf.mu.Unlock()
	if l.inf.ver != ver {
		H := l.hid
		if l.inf.wxT == nil {
			l.inf.wxT = make([]float64, l.in*4*H)
			l.inf.whT = make([]float64, H*4*H)
		}
		for i := 0; i < l.in; i++ {
			for j := 0; j < 4*H; j++ {
				l.inf.wxT[j*l.in+i] = l.wx.W[i*4*H+j]
			}
		}
		for i := 0; i < H; i++ {
			for j := 0; j < 4*H; j++ {
				l.inf.whT[j*H+i] = l.wh.W[i*4*H+j]
			}
		}
		l.inf.ver = ver
	}
	return l.inf.wxT, l.inf.whT
}

// stepInfer is the prediction-only fast path of step: the four gate
// pre-activations of each hidden unit accumulate in registers over
// transposed weight rows, so the 4H-wide z slab and the per-gate recording
// for backprop disappear. Every accumulator sums the same terms in the
// same order as step (bias, then x contributions in input order, then h
// contributions in hidden order), so the produced states are bit-identical
// — PredictSeq through this path equals PredictSeq through step exactly.
func (l *lstmCell) stepInfer(scr cellScratch, t int, x []float64, st cellState, ver int64) cellState {
	s := scr.(*lstmScratch)
	H := l.hid
	in := l.in
	wxT, whT := l.inferWeights(ver)
	bw := l.b.W
	hPrev := st.h
	c, h := s.cs[t+1], s.hs[t+1]
	for j := 0; j < H; j++ {
		zi, zf, zg, zo := bw[j], bw[H+j], bw[2*H+j], bw[3*H+j]
		// Re-slicing each row to len(x)/len(hPrev) lets the compiler prove
		// i is in range for all four rows and drop the bounds checks (the
		// rows are in/H long; inputs are never longer in a well-formed net,
		// and a malformed one panics here just as step would index past wx).
		rxi := wxT[j*in : (j+1)*in][:len(x)]
		rxf := wxT[(H+j)*in : (H+j+1)*in][:len(x)]
		rxg := wxT[(2*H+j)*in : (2*H+j+1)*in][:len(x)]
		rxo := wxT[(3*H+j)*in : (3*H+j+1)*in][:len(x)]
		for i, xv := range x {
			if xv == 0 {
				continue
			}
			zi += xv * rxi[i]
			zf += xv * rxf[i]
			zg += xv * rxg[i]
			zo += xv * rxo[i]
		}
		rhi := whT[j*H : (j+1)*H][:len(hPrev)]
		rhf := whT[(H+j)*H : (H+j+1)*H][:len(hPrev)]
		rhg := whT[(2*H+j)*H : (2*H+j+1)*H][:len(hPrev)]
		rho := whT[(3*H+j)*H : (3*H+j+1)*H][:len(hPrev)]
		for i, hv := range hPrev {
			if hv == 0 {
				continue
			}
			zi += hv * rhi[i]
			zf += hv * rhf[i]
			zg += hv * rhg[i]
			zo += hv * rho[i]
		}
		cj := sigmoid(zf)*st.c[j] + sigmoid(zi)*math.Tanh(zg)
		c[j] = cj
		h[j] = sigmoid(zo) * math.Tanh(cj)
	}
	return cellState{h: h, c: c}
}

func (l *lstmCell) back(scr cellScratch, t int, dst cellState) ([]float64, cellState) {
	s := scr.(*lstmScratch)
	g := &s.steps[t]
	H := l.hid
	dz := s.dz
	out := s.dbuf[t&1]
	dhPrev, dcPrev := out.h, out.c
	for j := 0; j < H; j++ {
		dh := dst.h[j]
		do := dh * g.tc[j]
		dc := dst.c[j] + dh*g.o[j]*(1-g.tc[j]*g.tc[j])
		di := dc * g.g[j]
		df := dc * g.cPrev[j]
		dg := dc * g.i[j]
		dcPrev[j] = dc * g.f[j]
		dz[j] = di * g.i[j] * (1 - g.i[j])
		dz[H+j] = df * g.f[j] * (1 - g.f[j])
		dz[2*H+j] = dg * (1 - g.g[j]*g.g[j])
		dz[3*H+j] = do * g.o[j] * (1 - g.o[j])
	}
	// Parameter gradients.
	for j, d := range dz {
		l.b.G[j] += d
	}
	dx := s.dx
	for i, xv := range g.x {
		wrow := l.wx.W[i*4*H : (i+1)*4*H]
		grow := l.wx.G[i*4*H : (i+1)*4*H]
		var acc float64
		for j, d := range dz {
			grow[j] += d * xv
			acc += d * wrow[j]
		}
		dx[i] = acc
	}
	for i, hv := range g.hPrev {
		wrow := l.wh.W[i*4*H : (i+1)*4*H]
		grow := l.wh.G[i*4*H : (i+1)*4*H]
		var acc float64
		for j, d := range dz {
			grow[j] += d * hv
			acc += d * wrow[j]
		}
		dhPrev[i] = acc
	}
	return dx, cellState{h: dhPrev, c: dcPrev}
}

// LSTM is the recurrent sequence model used by DynamicTRR (§4.2.2: "a
// compact LSTM model with an input layer, two hidden layers, and a fully
// connected layer") and as the Table 4 LSTM baseline.
type LSTM struct {
	Hidden    int     `json:"hidden"`
	Layers    int     `json:"layers"`
	LR        float64 `json:"lr"`
	Epochs    int     `json:"epochs"`
	BatchSize int     `json:"batch_size"`
	// FineTuneEpochs controls how many passes FineTune runs (default 2).
	FineTuneEpochs int   `json:"fine_tune_epochs"`
	Seed           int64 `json:"seed"`
	// Workers shards mini-batches across a worker pool during FitSeq and
	// FineTune: 0 uses every CPU, 1 forces the bit-exact serial path, N>1
	// uses N workers (deterministic for a fixed N). Not part of the model
	// state: it never persists.
	Workers int `json:"-"`

	inputDim int
	net      *seqNet
}

// NewLSTM returns an LSTM with the paper's two layers; hidden defaults to 16
// when non-positive (kept compact per §6.4.3's finding that small networks
// work best).
func NewLSTM(hidden, layers int, seed int64) *LSTM {
	if hidden <= 0 {
		hidden = 16
	}
	if layers <= 0 {
		layers = 2
	}
	return &LSTM{Hidden: hidden, Layers: layers, LR: 0.01, Epochs: 30, BatchSize: 16, FineTuneEpochs: 2, Seed: seed}
}

func (l *LSTM) build(inputDim int) {
	l.inputDim = inputDim
	var cells []cell
	// One shared RNG via a throwaway seqNet would be circular; build the
	// net first with empty layers is awkward, so seed a local source.
	rng := newDetRand(l.Seed)
	in := inputDim
	for k := 0; k < l.Layers; k++ {
		cells = append(cells, newLSTMCell(in, l.Hidden, rng))
		in = l.Hidden
	}
	l.net = newSeqNet(cells, l.LR, l.Seed+1)
}

// FitSeq trains the network on windows with per-step targets.
func (l *LSTM) FitSeq(seqs [][][]float64, targets [][]float64) error {
	if len(seqs) == 0 {
		return fmt.Errorf("neural: no training windows")
	}
	l.build(len(seqs[0][0]))
	l.net.workers = resolveWorkers(l.Workers)
	l.net.fitScalers(seqs, targets)
	return l.net.trainWindows(seqs, targets, l.Epochs, l.BatchSize)
}

// FineTune runs a few additional epochs without re-initialising (§4.2.2:
// per-window refinement when a measured reading arrives; §6.4.5 reports this
// costs < 2 s).
func (l *LSTM) FineTune(seqs [][][]float64, targets [][]float64) error {
	if l.net == nil || !l.net.fitted {
		return fmt.Errorf("neural: FineTune before FitSeq")
	}
	epochs := l.FineTuneEpochs
	if epochs <= 0 {
		epochs = 2
	}
	l.net.workers = resolveWorkers(l.Workers)
	return l.net.trainWindows(seqs, targets, epochs, l.BatchSize)
}

// PredictSeq returns one prediction per window step.
func (l *LSTM) PredictSeq(window [][]float64) []float64 {
	if l.net == nil {
		panic("neural: LSTM is not fitted")
	}
	return l.net.predictWindow(window)
}

var (
	_ model.SeqRegressor = (*LSTM)(nil)
	_ model.FineTuner    = (*LSTM)(nil)
)

// rnnState is the shared JSON schema for LSTM and GRU persistence.
type rnnState struct {
	Hidden   int           `json:"hidden"`
	Layers   int           `json:"layers"`
	LR       float64       `json:"lr"`
	Epochs   int           `json:"epochs"`
	Batch    int           `json:"batch_size"`
	Seed     int64         `json:"seed"`
	InputDim int           `json:"input_dim"`
	Tensors  [][][]float64 `json:"tensors"` // per layer: wx, wh, b
	Wy       []float64     `json:"wy"`
	By       float64       `json:"by"`
	XScaler  scalerND      `json:"x_scaler"`
	YScaler  scaler1d      `json:"y_scaler"`
}

func (l *LSTM) snapshot() rnnState {
	st := rnnState{
		Hidden: l.Hidden, Layers: l.Layers, LR: l.LR, Epochs: l.Epochs,
		Batch: l.BatchSize, Seed: l.Seed, InputDim: l.inputDim,
		Wy: l.net.wy.W, By: l.net.by.W[0],
		XScaler: l.net.xScaler, YScaler: l.net.yScaler,
	}
	for _, c := range l.net.layers {
		lc := c.(*lstmCell)
		st.Tensors = append(st.Tensors, [][]float64{lc.wx.W, lc.wh.W, lc.b.W})
	}
	return st
}

// Kind implements model.Persistable.
func (l *LSTM) Kind() string { return "neural.lstm" }

// MarshalState implements model.Persistable.
func (l *LSTM) MarshalState() ([]byte, error) {
	if l.net == nil {
		return nil, fmt.Errorf("neural: marshal of unfitted LSTM")
	}
	return json.Marshal(l.snapshot())
}

func decodeLSTM(b []byte) (any, error) {
	var st rnnState
	if err := json.Unmarshal(b, &st); err != nil {
		return nil, err
	}
	l := NewLSTM(st.Hidden, st.Layers, st.Seed)
	l.LR, l.Epochs, l.BatchSize = st.LR, st.Epochs, st.Batch
	l.build(st.InputDim)
	for k, c := range l.net.layers {
		lc := c.(*lstmCell)
		copy(lc.wx.W, st.Tensors[k][0])
		copy(lc.wh.W, st.Tensors[k][1])
		copy(lc.b.W, st.Tensors[k][2])
	}
	copy(l.net.wy.W, st.Wy)
	l.net.by.W[0] = st.By
	l.net.xScaler, l.net.yScaler = st.XScaler, st.YScaler
	l.net.fitted = true
	return l, nil
}

func init() {
	model.RegisterKind("neural.lstm", decodeLSTM)
}
