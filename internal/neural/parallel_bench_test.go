package neural

import (
	"fmt"
	"testing"
)

// BenchmarkLSTMFit measures a full fixed-seed LSTM fit at several worker
// counts. Workers=1 is the allocation-lean serial path (the allocs/op figure
// is the PR 3 acceptance metric); higher counts show the data-parallel
// speedup on multi-core machines.
func BenchmarkLSTMFit(b *testing.B) {
	seqs, targets := goldenData(42, 32, 16, 8)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				l := NewLSTM(16, 2, 7)
				l.Epochs = 2
				l.Workers = w
				if err := l.FitSeq(seqs, targets); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFineTuneLatency measures one online fine-tune step — the
// operation DynamicTRR performs at every measured sample, whose latency
// bounds the monitoring loop (§6.4.5 reports sub-2 s fine-tuning).
func BenchmarkFineTuneLatency(b *testing.B) {
	seqs, targets := goldenData(42, 32, 16, 8)
	l := NewLSTM(16, 2, 7)
	l.Epochs = 2
	l.Workers = 1
	if err := l.FitSeq(seqs, targets); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.FineTune(seqs[:1], targets[:1]); err != nil {
			b.Fatal(err)
		}
	}
}
