// Package neural implements the neural models of Table 4 from scratch:
// the MLP baseline ("NN", hidden=30) which is also HighRPM's SRR head
// (§4.3), and the LSTM/GRU recurrent baselines which also provide
// DynamicTRR's sequence model (§4.2.2). All training uses hand-written
// backpropagation with the Adam optimiser; no external libraries.
package neural

import (
	"math"
	"math/rand"
)

// tensor is a parameter block with its gradient and Adam moment buffers.
type tensor struct {
	W []float64 // parameters, row-major when 2-D
	G []float64 // accumulated gradient
	m []float64 // Adam first moment
	v []float64 // Adam second moment
	R int       // rows (R=1 for bias vectors)
	C int       // cols
}

func newTensor(rows, cols int) *tensor {
	n := rows * cols
	return &tensor{
		W: make([]float64, n),
		G: make([]float64, n),
		m: make([]float64, n),
		v: make([]float64, n),
		R: rows, C: cols,
	}
}

// initXavier fills the tensor with Glorot-uniform values.
func (t *tensor) initXavier(rng *rand.Rand) {
	limit := math.Sqrt(6 / float64(t.R+t.C))
	for i := range t.W {
		t.W[i] = (rng.Float64()*2 - 1) * limit
	}
}

// zeroGrad clears the accumulated gradient.
func (t *tensor) zeroGrad() {
	for i := range t.G {
		t.G[i] = 0
	}
}

// shadow returns a view sharing this tensor's parameters with a private
// gradient buffer. Parallel training workers accumulate into shadows and
// the reducer folds them back into the primary tensor in shard order.
func (t *tensor) shadow() *tensor {
	return &tensor{W: t.W, G: make([]float64, len(t.G)), R: t.R, C: t.C}
}

// adam holds optimizer state shared by all tensors of a network.
type adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Eps     float64
	step    int
	tensors []*tensor
}

func newAdam(lr float64, tensors ...*tensor) *adam {
	if lr <= 0 {
		lr = 1e-3
	}
	return &adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, tensors: tensors}
}

// Step applies one Adam update using each tensor's accumulated gradient
// divided by batchSize, then clears the gradients. Gradients are clipped to
// a global norm of clip (0 disables clipping) to keep RNN training stable.
func (a *adam) Step(batchSize int, clip float64) {
	a.step++
	inv := 1 / float64(batchSize)
	if clip > 0 {
		var norm float64
		for _, t := range a.tensors {
			for _, g := range t.G {
				g *= inv
				norm += g * g
			}
		}
		norm = math.Sqrt(norm)
		if norm > clip {
			inv *= clip / norm
		}
	}
	c1 := 1 - math.Pow(a.Beta1, float64(a.step))
	c2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for _, t := range a.tensors {
		for i := range t.W {
			g := t.G[i] * inv
			t.m[i] = a.Beta1*t.m[i] + (1-a.Beta1)*g
			t.v[i] = a.Beta2*t.v[i] + (1-a.Beta2)*g*g
			mh := t.m[i] / c1
			vh := t.v[i] / c2
			t.W[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
			t.G[i] = 0
		}
	}
}

// newDetRand returns a deterministic rand.Rand for weight initialisation.
func newDetRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// sigmoid is the logistic function.
func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// scaler1d standardizes a single stream of values.
type scaler1d struct {
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
}

func fitScaler1d(vals []float64) scaler1d {
	var s, sq float64
	for _, v := range vals {
		s += v
	}
	mean := s / float64(len(vals))
	for _, v := range vals {
		d := v - mean
		sq += d * d
	}
	std := math.Sqrt(sq / float64(len(vals)))
	if std == 0 {
		std = 1
	}
	return scaler1d{Mean: mean, Std: std}
}

func (s scaler1d) fwd(v float64) float64 { return (v - s.Mean) / s.Std }
func (s scaler1d) inv(v float64) float64 { return v*s.Std + s.Mean }

// scalerND standardizes feature vectors column-wise.
type scalerND struct {
	Mean []float64 `json:"mean"`
	Std  []float64 `json:"std"`
}

func fitScalerND(rows [][]float64) scalerND {
	if len(rows) == 0 {
		return scalerND{}
	}
	c := len(rows[0])
	s := scalerND{Mean: make([]float64, c), Std: make([]float64, c)}
	n := float64(len(rows))
	for _, r := range rows {
		for j, v := range r {
			s.Mean[j] += v
		}
	}
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, r := range rows {
		for j, v := range r {
			d := v - s.Mean[j]
			s.Std[j] += d * d
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		if s.Std[j] == 0 {
			s.Std[j] = 1
		}
	}
	return s
}

func (s scalerND) fwd(row []float64) []float64 {
	out := make([]float64, len(row))
	s.fwdInto(out, row)
	return out
}

// fwdInto standardizes row into dst, which must have the same length.
func (s scalerND) fwdInto(dst, row []float64) {
	for j, v := range row {
		dst[j] = (v - s.Mean[j]) / s.Std[j]
	}
}
