package neural

import (
	"math"
	"math/rand"
	"testing"
)

// seqLoss runs a window through a single cell and returns
// L = Σ_t ½‖h_t‖², the simplest loss touching every gate path.
func seqLoss(c cell, xs [][]float64) float64 {
	sc := c.newScratch()
	st, _ := sc.begin(len(xs))
	var loss float64
	for t, x := range xs {
		st = c.step(sc, t, x, st)
		for _, h := range st.h {
			loss += 0.5 * h * h
		}
	}
	return loss
}

// seqBackward accumulates analytic gradients of seqLoss into the cell's
// tensors via backpropagation through time.
func seqBackward(c cell, xs [][]float64) {
	sc := c.newScratch()
	st, dst := sc.begin(len(xs))
	states := make([]cellState, 0, len(xs))
	for t, x := range xs {
		st = c.step(sc, t, x, st)
		states = append(states, st.clone())
	}
	for t := len(xs) - 1; t >= 0; t-- {
		for i, h := range states[t].h {
			dst.h[i] += h // dL/dh_t from the loss
		}
		_, dprev := c.back(sc, t, dst)
		dst = dprev
	}
}

// gradCheck compares analytic and numeric gradients for every parameter.
func gradCheck(t *testing.T, build func() cell) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	c := build()
	xs := make([][]float64, 3)
	for i := range xs {
		x := make([]float64, c.inputSize())
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		xs[i] = x
	}
	for _, tns := range c.tensors() {
		tns.zeroGrad()
	}
	seqBackward(c, xs)
	const eps = 1e-5
	for ti, tns := range c.tensors() {
		for k := range tns.W {
			orig := tns.W[k]
			tns.W[k] = orig + eps
			lp := seqLoss(c, xs)
			tns.W[k] = orig - eps
			lm := seqLoss(c, xs)
			tns.W[k] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := tns.G[k]
			denom := math.Max(1, math.Abs(numeric)+math.Abs(analytic))
			if math.Abs(numeric-analytic)/denom > 1e-4 {
				t.Fatalf("tensor %d param %d: analytic %g vs numeric %g", ti, k, analytic, numeric)
			}
		}
	}
}

func TestLSTMCellGradients(t *testing.T) {
	gradCheck(t, func() cell { return newLSTMCell(3, 4, newDetRand(1)) })
}

func TestGRUCellGradients(t *testing.T) {
	gradCheck(t, func() cell { return newGRUCell(3, 4, newDetRand(2)) })
}

// TestStackedInputGradient verifies dx from the top cell is correct by
// finite-differencing the input of a one-step sequence.
func TestStackedInputGradient(t *testing.T) {
	for name, build := range map[string]func() cell{
		"lstm": func() cell { return newLSTMCell(3, 4, newDetRand(3)) },
		"gru":  func() cell { return newGRUCell(3, 4, newDetRand(4)) },
	} {
		c := build()
		x := []float64{0.3, -0.5, 0.7}
		sc := c.newScratch()
		st0, dst := sc.begin(1)
		st := c.step(sc, 0, x, st0)
		copy(dst.h, st.h) // loss = ½‖h‖²
		dxRef, _ := c.back(sc, 0, dst)
		dx := append([]float64(nil), dxRef...)

		// stepLoss evaluates ½‖h‖² for one perturbed step; the loss must be
		// read before the next step reuses the scratch state buffer.
		stepLoss := func() float64 {
			s0, _ := sc.begin(1)
			h := c.step(sc, 0, x, s0)
			var l float64
			for _, hv := range h.h {
				l += 0.5 * hv * hv
			}
			return l
		}
		const eps = 1e-5
		for j := range x {
			orig := x[j]
			x[j] = orig + eps
			lp := stepLoss()
			x[j] = orig - eps
			lm := stepLoss()
			x[j] = orig
			numeric := (lp - lm) / (2 * eps)
			if math.Abs(numeric-dx[j]) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("%s dx[%d]: analytic %g vs numeric %g", name, j, dx[j], numeric)
			}
		}
	}
}

// TestMLPGradients finite-differences the MLP's backprop on one sample.
func TestMLPGradients(t *testing.T) {
	n := NewMLP([]int{5}, 2, 7)
	// Initialise with a tiny fit so scalers exist, then grad-check.
	rngData := rand.New(rand.NewSource(8))
	xs := make([]float64, 3)
	ys := make([]float64, 2)
	for j := range xs {
		xs[j] = rngData.NormFloat64()
	}
	for j := range ys {
		ys[j] = rngData.NormFloat64()
	}
	n.XScaler = scalerND{Mean: []float64{0, 0, 0}, Std: []float64{1, 1, 1}}
	n.YScaler = []scaler1d{{Mean: 0, Std: 1}, {Mean: 0, Std: 1}}
	n.initNet(3)
	for _, tns := range append(append([]*tensor{}, n.Win...), n.Bin...) {
		tns.zeroGrad()
	}
	ex := n.trainExec()
	ex.backprop(&n.XScaler, n.YScaler, xs, ys)

	loss := func() float64 {
		acts := ex.forward(&n.XScaler, xs)
		out := acts[len(acts)-1]
		var l float64
		for j := range out {
			d := out[j] - ys[j]
			l += 0.5 * d * d
		}
		return l
	}
	const eps = 1e-6
	check := func(tns *tensor, label string) {
		for k := range tns.W {
			orig := tns.W[k]
			tns.W[k] = orig + eps
			lp := loss()
			tns.W[k] = orig - eps
			lm := loss()
			tns.W[k] = orig
			numeric := (lp - lm) / (2 * eps)
			if math.Abs(numeric-tns.G[k]) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("%s[%d]: analytic %g vs numeric %g", label, k, tns.G[k], numeric)
			}
		}
	}
	for l := range n.Win {
		check(n.Win[l], "W")
		check(n.Bin[l], "b")
	}
}
