package cluster

import "time"

// BatchOptions tunes agent-side sample coalescing: instead of one frame
// (and one reply) per second, Record queues samples and flushes them as a
// KindRecordBatch once MaxSamples are pending or the oldest has waited
// MaxDelay. Batching trades per-sample latency for frames — the service
// processes a batch in order through the same per-sample path, so the
// estimates are exactly what individual Sends would have returned.
type BatchOptions struct {
	// MaxSamples flushes when this many samples are pending. Values below 2
	// disable batching (Record behaves like Send).
	MaxSamples int
	// MaxDelay flushes when the oldest pending sample has waited this long,
	// bounding the latency a slow sample rate adds (0: size-only flushes).
	MaxDelay time.Duration
}

// enabled reports whether Record should coalesce at all.
func (o BatchOptions) enabled() bool { return o.MaxSamples > 1 }

// batchSlot is one pending sample. The PMC slice is owned by the batcher
// (copied from the caller on add, reused across flushes), so callers may
// reuse their own buffers between Record calls — a stronger contract than
// Send, which borrows the caller's slice only for the round trip.
type batchSlot struct {
	t           float64
	pmc         []float64
	measured    float64
	hasMeasured bool
}

// batcher accumulates pending samples for one agent. Like the agents that
// embed it, it is single-goroutine.
type batcher struct {
	opts   BatchOptions
	slots  []batchSlot
	n      int
	oldest time.Time     // wall-clock arrival of the oldest pending sample
	wire   []BatchSample // reused wire form handed to writeRecordBatch
}

func (b *batcher) add(t float64, pmc []float64, measured *float64) {
	if b.n == len(b.slots) {
		b.slots = append(b.slots, batchSlot{})
	}
	s := &b.slots[b.n]
	s.t = t
	s.pmc = append(s.pmc[:0], pmc...)
	s.hasMeasured = measured != nil
	if s.hasMeasured {
		s.measured = *measured
	}
	if b.n == 0 {
		b.oldest = time.Now()
	}
	b.n++
}

// full reports a size-triggered flush; due a delay-triggered one.
func (b *batcher) full() bool { return b.n >= b.opts.MaxSamples }
func (b *batcher) due() bool {
	return b.opts.MaxDelay > 0 && b.n > 0 && time.Since(b.oldest) >= b.opts.MaxDelay
}

// wireSamples builds the batch's wire form. The returned slice (and the
// Measured pointers in it, which point into the slots) is valid until the
// next add or reset.
func (b *batcher) wireSamples() []BatchSample {
	w := b.wire[:0]
	for i := 0; i < b.n; i++ {
		s := &b.slots[i]
		bs := BatchSample{Time: s.t, PMC: s.pmc}
		if s.hasMeasured {
			bs.Measured = &s.measured
		}
		w = append(w, bs)
	}
	b.wire = w
	return w
}

func (b *batcher) reset() { b.n = 0 }
