package cluster

import (
	"bufio"
	"net"
	"testing"
	"time"
)

// Failure-injection tests: the service must survive misbehaving peers and
// shut down cleanly under load (the §6.4.6 robustness theme applied to the
// deployment layer).

func TestServiceSurvivesAbruptDisconnect(t *testing.T) {
	checkNoLeaks(t)
	svc := startService(t)
	// Connect and slam the connection shut mid-handshake.
	conn, err := net.Dial("tcp", svc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte{0, 0, 0}); err != nil { // truncated frame
		t.Fatal(err)
	}
	conn.Close()

	// The service must still accept new agents.
	agent, err := Dial(svc.Addr(), "survivor")
	if err != nil {
		t.Fatalf("service dead after abrupt disconnect: %v", err)
	}
	defer agent.Close()
	pmc := make([]float64, 10)
	v := 80.0
	if _, err := agent.Send(0, pmc, &v); err != nil {
		t.Fatal(err)
	}
}

func TestServiceRejectsOversizedFrame(t *testing.T) {
	checkNoLeaks(t)
	svc := startService(t)
	conn, err := net.Dial("tcp", svc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Claim a 512 MiB frame; the service must drop the connection rather
	// than allocate.
	if _, err := conn.Write([]byte{0x20, 0x00, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("expected the connection to be closed")
	}
	// And keep serving others.
	agent, err := Dial(svc.Addr(), "after-bomb")
	if err != nil {
		t.Fatal(err)
	}
	agent.Close()
}

func TestServiceSurvivesGarbageJSON(t *testing.T) {
	checkNoLeaks(t)
	svc := startService(t)
	conn, err := net.Dial("tcp", svc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload := []byte("this is not json")
	frame := append([]byte{0, 0, 0, byte(len(payload))}, payload...)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	// Connection drops; the service stays alive.
	agent, err := Dial(svc.Addr(), "after-garbage")
	if err != nil {
		t.Fatal(err)
	}
	agent.Close()
}

func TestServiceCloseUnblocksAgents(t *testing.T) {
	checkNoLeaks(t)
	svc := NewService(sharedModel(t))
	svc.Logf = t.Logf
	if err := svc.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	agent, err := Dial(svc.Addr(), "doomed")
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	done := make(chan error, 1)
	go func() { done <- svc.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung with an idle agent connected")
	}
	// The agent's next send must fail, not hang.
	pmc := make([]float64, 10)
	errCh := make(chan error, 1)
	go func() {
		_, err := agent.Send(0, pmc, nil)
		errCh <- err
	}()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("send to closed service succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("send to closed service hung")
	}
}

func TestReadMsgTruncatedBody(t *testing.T) {
	checkNoLeaks(t)
	conn1, conn2 := net.Pipe()
	go func() {
		conn1.Write([]byte{0, 0, 0, 50, 'x'}) // claims 50 bytes, sends 1
		conn1.Close()
	}()
	if _, err := ReadMsg(bufio.NewReader(conn2)); err == nil {
		t.Fatal("expected truncation error")
	}
}
