package cluster

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"highrpm/internal/core"
)

// Agent is a compute-node client of the HighRPM service. It is not safe
// for concurrent use; run one agent per node goroutine. For automatic
// reconnects and the §6.4.6 degraded-mode fallback, wrap the connection in
// a ResilientAgent instead.
type Agent struct {
	nodeID string
	conn   net.Conn
	r      *bufio.Reader
	w      *bufio.Writer
}

// Dial connects an agent to the service and registers the node.
func Dial(addr, nodeID string) (*Agent, error) {
	return DialTimeout(addr, nodeID, 0)
}

// DialTimeout connects like Dial but bounds both the TCP dial and the
// Hello handshake by timeout (0 disables the bound, matching Dial).
func DialTimeout(addr, nodeID string, timeout time.Duration) (*Agent, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	a := &Agent{nodeID: nodeID, conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
	if timeout > 0 {
		conn.SetDeadline(time.Now().Add(timeout))
		defer conn.SetDeadline(time.Time{})
	}
	if err := WriteMsg(a.w, KindHello, Hello{NodeID: nodeID}); err != nil {
		_ = conn.Close()
		return nil, err
	}
	if err := a.w.Flush(); err != nil {
		_ = conn.Close()
		return nil, err
	}
	env, err := ReadMsg(a.r)
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("cluster: hello reply: %w", err)
	}
	if env.Kind != KindHello {
		_ = conn.Close()
		return nil, fmt.Errorf("cluster: unexpected hello reply kind %q", env.Kind)
	}
	return a, nil
}

// NodeID returns the registered node identity.
func (a *Agent) NodeID() string { return a.nodeID }

// setDeadline bounds the next request round trip (zero time clears it).
func (a *Agent) setDeadline(t time.Time) { a.conn.SetDeadline(t) }

// Send streams one second of telemetry and returns the service's estimate.
// measured carries this second's IPMI reading if one arrived (nil usually).
// A *ServiceError return means the service rejected the sample but the
// connection is still healthy.
func (a *Agent) Send(t float64, pmc []float64, measured *float64) (Estimate, error) {
	smp := Sample{NodeID: a.nodeID, Time: t, PMC: pmc, Measured: measured}
	if err := WriteMsg(a.w, KindSample, smp); err != nil {
		return Estimate{}, err
	}
	if err := a.w.Flush(); err != nil {
		return Estimate{}, err
	}
	env, err := ReadMsg(a.r)
	if err != nil {
		return Estimate{}, err
	}
	switch env.Kind {
	case KindEstimate:
		var est Estimate
		if err := DecodeBody(env, &est); err != nil {
			return Estimate{}, err
		}
		return est, nil
	case KindError:
		var eb ErrorBody
		if err := DecodeBody(env, &eb); err != nil {
			return Estimate{}, err
		}
		return Estimate{}, &ServiceError{Message: eb.Message}
	default:
		return Estimate{}, fmt.Errorf("cluster: unexpected reply kind %q", env.Kind)
	}
}

// Stats fetches service statistics.
func (a *Agent) Stats() (Stats, error) {
	if err := WriteMsg(a.w, KindStats, struct{}{}); err != nil {
		return Stats{}, err
	}
	if err := a.w.Flush(); err != nil {
		return Stats{}, err
	}
	env, err := ReadMsg(a.r)
	if err != nil {
		return Stats{}, err
	}
	if env.Kind != KindStats {
		return Stats{}, fmt.Errorf("cluster: unexpected stats reply kind %q", env.Kind)
	}
	var st Stats
	if err := DecodeBody(env, &st); err != nil {
		return Stats{}, err
	}
	return st, nil
}

// Query fetches stored power history from the service: one node's series
// when req.NodeID is set, the cluster-wide aggregate otherwise. NaN gaps
// (sparse IPMI seconds, all-NaN rollup buckets) arrive as NaN.
func (a *Agent) Query(req QueryRequest) (SeriesBody, error) {
	if err := WriteMsg(a.w, KindQuery, req); err != nil {
		return SeriesBody{}, err
	}
	if err := a.w.Flush(); err != nil {
		return SeriesBody{}, err
	}
	env, err := ReadMsg(a.r)
	if err != nil {
		return SeriesBody{}, err
	}
	switch env.Kind {
	case KindSeries:
		var body SeriesBody
		if err := DecodeBody(env, &body); err != nil {
			return SeriesBody{}, err
		}
		return body, nil
	case KindError:
		var eb ErrorBody
		if err := DecodeBody(env, &eb); err != nil {
			return SeriesBody{}, err
		}
		return SeriesBody{}, &ServiceError{Message: eb.Message}
	default:
		return SeriesBody{}, fmt.Errorf("cluster: unexpected reply kind %q", env.Kind)
	}
}

// FetchModel downloads the service's trained model for local inference —
// the fallback path when the control node is unreachable between samples.
func (a *Agent) FetchModel() (*core.HighRPM, error) {
	if err := WriteMsg(a.w, KindModel, struct{}{}); err != nil {
		return nil, err
	}
	if err := a.w.Flush(); err != nil {
		return nil, err
	}
	env, err := ReadMsg(a.r)
	if err != nil {
		return nil, err
	}
	switch env.Kind {
	case KindModel:
		var mb ModelBody
		if err := DecodeBody(env, &mb); err != nil {
			return nil, err
		}
		return core.Unmarshal(mb.Data)
	case KindError:
		var eb ErrorBody
		if err := DecodeBody(env, &eb); err != nil {
			return nil, err
		}
		return nil, &ServiceError{Message: eb.Message}
	default:
		return nil, fmt.Errorf("cluster: unexpected reply kind %q", env.Kind)
	}
}

// Close terminates the connection.
func (a *Agent) Close() error { return a.conn.Close() }
