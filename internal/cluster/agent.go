package cluster

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"highrpm/internal/core"
)

// Agent is a compute-node client of the HighRPM service. It is not safe
// for concurrent use; run one agent per node goroutine. For automatic
// reconnects and the §6.4.6 degraded-mode fallback, wrap the connection in
// a ResilientAgent instead.
//
// By default Dial offers the binary wire codec and falls back to JSON when
// the service predates it; DialCodec pins the choice. Codec affects
// framing only — estimates, stats and series are identical either way.
type Agent struct {
	nodeID string
	conn   net.Conn
	r      *bufio.Reader
	w      *bufio.Writer
	// bin is non-nil once the Hello handshake settled on the binary codec;
	// it owns the connection's encode/decode scratch.
	bin   *binFramer
	batch batcher
}

// Dial connects an agent to the service and registers the node, preferring
// the binary codec.
func Dial(addr, nodeID string) (*Agent, error) {
	return DialTimeout(addr, nodeID, 0)
}

// DialTimeout connects like Dial but bounds both the TCP dial and the
// Hello handshake by timeout (0 disables the bound, matching Dial).
func DialTimeout(addr, nodeID string, timeout time.Duration) (*Agent, error) {
	return DialCodec(addr, nodeID, CodecBinary, timeout)
}

// DialCodec connects with an explicit codec preference: CodecBinary offers
// the binary framing (the service may still answer JSON if it predates
// it), CodecJSON ("" too) skips the offer and speaks JSON outright.
func DialCodec(addr, nodeID, codec string, timeout time.Duration) (*Agent, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	a := &Agent{nodeID: nodeID, conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
	if timeout > 0 {
		conn.SetDeadline(time.Now().Add(timeout))
		defer conn.SetDeadline(time.Time{})
	}
	hello := Hello{NodeID: nodeID}
	if codec == CodecBinary {
		hello.Codecs = []string{CodecBinary}
	}
	if err := WriteMsg(a.w, KindHello, hello); err != nil {
		_ = conn.Close()
		return nil, err
	}
	if err := a.w.Flush(); err != nil {
		_ = conn.Close()
		return nil, err
	}
	env, err := ReadMsg(a.r)
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("cluster: hello reply: %w", err)
	}
	if env.Kind != KindHello {
		_ = conn.Close()
		return nil, fmt.Errorf("cluster: unexpected hello reply kind %q", env.Kind)
	}
	var reply Hello
	if err := DecodeBody(env, &reply); err != nil {
		_ = conn.Close()
		return nil, err
	}
	if reply.Codec == CodecBinary {
		a.bin = newBinFramer(a.r, a.w, DefaultMaxFrame)
	}
	return a, nil
}

// NodeID returns the registered node identity.
func (a *Agent) NodeID() string { return a.nodeID }

// Codec reports the wire codec the Hello handshake settled on.
func (a *Agent) Codec() string {
	if a.bin != nil {
		return CodecBinary
	}
	return CodecJSON
}

// setDeadline bounds the next request round trip (zero time clears it).
func (a *Agent) setDeadline(t time.Time) { a.conn.SetDeadline(t) }

// writeEnv sends one envelope in the connection's codec: natively in JSON
// mode, wrapped in a binKindJSON frame in binary mode. It carries the
// message kinds without a hot-path binary layout (stats, model).
func (a *Agent) writeEnv(kind MsgKind, body any) error {
	if a.bin != nil {
		return a.bin.writeJSONEnvelope(kind, body)
	}
	return WriteMsg(a.w, kind, body)
}

// readEnv reads one envelope in the connection's codec. In binary mode a
// native error frame is also understood (the service answers errors in
// binary even for JSON-wrapped requests).
func (a *Agent) readEnv() (Envelope, error) {
	if a.bin == nil {
		return ReadMsg(a.r)
	}
	kind, payload, err := a.bin.readFrame()
	if err != nil {
		return Envelope{}, err
	}
	switch kind {
	case binKindJSON:
		return readJSONEnvelope(payload)
	case binKindError:
		msg, err := a.bin.readError(payload)
		if err != nil {
			return Envelope{}, err
		}
		return Envelope{}, &ServiceError{Message: msg}
	default:
		return Envelope{}, fmt.Errorf("cluster: unexpected binary frame kind %d", kind)
	}
}

// Send streams one second of telemetry and returns the service's estimate.
// measured carries this second's IPMI reading if one arrived (nil usually).
// A *ServiceError return means the service rejected the sample but the
// connection is still healthy.
func (a *Agent) Send(t float64, pmc []float64, measured *float64) (Estimate, error) {
	if a.bin != nil {
		return a.sendBinary(t, pmc, measured)
	}
	smp := Sample{NodeID: a.nodeID, Time: t, PMC: pmc, Measured: measured}
	if err := WriteMsg(a.w, KindSample, smp); err != nil {
		return Estimate{}, err
	}
	if err := a.w.Flush(); err != nil {
		return Estimate{}, err
	}
	env, err := ReadMsg(a.r)
	if err != nil {
		return Estimate{}, err
	}
	switch env.Kind {
	case KindEstimate:
		var est Estimate
		if err := DecodeBody(env, &est); err != nil {
			return Estimate{}, err
		}
		return est, nil
	case KindError:
		var eb ErrorBody
		if err := DecodeBody(env, &eb); err != nil {
			return Estimate{}, err
		}
		return Estimate{}, &ServiceError{Message: eb.Message}
	default:
		return Estimate{}, fmt.Errorf("cluster: unexpected reply kind %q", env.Kind)
	}
}

// sendBinary is the zero-allocation sample round trip: encode into the
// framer's write scratch, decode the reply from its read scratch, intern
// the node ID. Steady state allocates nothing.
func (a *Agent) sendBinary(t float64, pmc []float64, measured *float64) (Estimate, error) {
	f := a.bin
	if err := f.writeSample(a.nodeID, t, pmc, measured); err != nil {
		return Estimate{}, err
	}
	if err := a.w.Flush(); err != nil {
		return Estimate{}, err
	}
	kind, payload, err := f.readFrame()
	if err != nil {
		return Estimate{}, err
	}
	switch kind {
	case binKindEstimate:
		return f.readEstimate(payload)
	case binKindError:
		msg, err := f.readError(payload)
		if err != nil {
			return Estimate{}, err
		}
		return Estimate{}, &ServiceError{Message: msg}
	default:
		return Estimate{}, fmt.Errorf("cluster: unexpected binary reply kind %d", kind)
	}
}

// SetBatching configures sample coalescing for Record. Call it once after
// dialing; MaxSamples < 2 keeps Record unbatched.
func (a *Agent) SetBatching(o BatchOptions) { a.batch.opts = o }

// Record queues one second of telemetry for batched delivery and returns
// the service's estimates when a flush happened — nil estimates with a nil
// error means the sample is pending. Without batching configured it
// behaves like Send (one estimate per call). Unlike Send, Record copies
// pmc, so callers may reuse their buffer immediately.
func (a *Agent) Record(t float64, pmc []float64, measured *float64) ([]Estimate, error) {
	if !a.batch.opts.enabled() {
		est, err := a.Send(t, pmc, measured)
		if err != nil {
			return nil, err
		}
		return []Estimate{est}, nil
	}
	a.batch.add(t, pmc, measured)
	if a.batch.full() || a.batch.due() {
		return a.Flush()
	}
	return nil, nil
}

// Flush sends the pending batch now and returns its estimates (nil when
// nothing was pending). The pending samples are consumed either way: a
// *ServiceError means the service rejected the whole batch, and a
// transport error means the connection is gone — a plain Agent cannot
// retry either (wrap in a ResilientAgent for replay).
func (a *Agent) Flush() ([]Estimate, error) {
	if a.batch.n == 0 {
		return nil, nil
	}
	ests, err := a.sendBatchSamples(a.batch.wireSamples())
	a.batch.reset()
	return ests, err
}

// sendBatchSamples performs one RecordBatch round trip in the connection's
// codec. ResilientAgent calls it directly for its own batch replay.
func (a *Agent) sendBatchSamples(samples []BatchSample) ([]Estimate, error) {
	if a.bin != nil {
		f := a.bin
		if err := f.writeRecordBatch(a.nodeID, samples); err != nil {
			return nil, err
		}
		if err := a.w.Flush(); err != nil {
			return nil, err
		}
		kind, payload, err := f.readFrame()
		if err != nil {
			return nil, err
		}
		switch kind {
		case binKindEstimateBatch:
			return f.readEstimateBatch(payload)
		case binKindError:
			msg, err := f.readError(payload)
			if err != nil {
				return nil, err
			}
			return nil, &ServiceError{Message: msg}
		default:
			return nil, fmt.Errorf("cluster: unexpected binary reply kind %d", kind)
		}
	}
	rb := RecordBatch{NodeID: a.nodeID, Samples: samples}
	if err := WriteMsg(a.w, KindRecordBatch, rb); err != nil {
		return nil, err
	}
	if err := a.w.Flush(); err != nil {
		return nil, err
	}
	env, err := ReadMsg(a.r)
	if err != nil {
		return nil, err
	}
	switch env.Kind {
	case KindEstimateBatch:
		var eb EstimateBatch
		if err := DecodeBody(env, &eb); err != nil {
			return nil, err
		}
		return eb.Estimates, nil
	case KindError:
		var eb ErrorBody
		if err := DecodeBody(env, &eb); err != nil {
			return nil, err
		}
		return nil, &ServiceError{Message: eb.Message}
	default:
		return nil, fmt.Errorf("cluster: unexpected reply kind %q", env.Kind)
	}
}

// Stats fetches service statistics.
func (a *Agent) Stats() (Stats, error) {
	if err := a.writeEnv(KindStats, struct{}{}); err != nil {
		return Stats{}, err
	}
	if err := a.w.Flush(); err != nil {
		return Stats{}, err
	}
	env, err := a.readEnv()
	if err != nil {
		return Stats{}, err
	}
	if env.Kind != KindStats {
		return Stats{}, fmt.Errorf("cluster: unexpected stats reply kind %q", env.Kind)
	}
	var st Stats
	if err := DecodeBody(env, &st); err != nil {
		return Stats{}, err
	}
	return st, nil
}

// Query fetches stored power history from the service: one node's series
// when req.NodeID is set, the cluster-wide aggregate otherwise. NaN gaps
// (sparse IPMI seconds, all-NaN rollup buckets) arrive as NaN.
func (a *Agent) Query(req QueryRequest) (SeriesBody, error) {
	if a.bin != nil {
		return a.queryBinary(req)
	}
	if err := WriteMsg(a.w, KindQuery, req); err != nil {
		return SeriesBody{}, err
	}
	if err := a.w.Flush(); err != nil {
		return SeriesBody{}, err
	}
	env, err := ReadMsg(a.r)
	if err != nil {
		return SeriesBody{}, err
	}
	switch env.Kind {
	case KindSeries:
		var body SeriesBody
		if err := DecodeBody(env, &body); err != nil {
			return SeriesBody{}, err
		}
		return body, nil
	case KindError:
		var eb ErrorBody
		if err := DecodeBody(env, &eb); err != nil {
			return SeriesBody{}, err
		}
		return SeriesBody{}, &ServiceError{Message: eb.Message}
	default:
		return SeriesBody{}, fmt.Errorf("cluster: unexpected reply kind %q", env.Kind)
	}
}

func (a *Agent) queryBinary(req QueryRequest) (SeriesBody, error) {
	f := a.bin
	if err := f.writeQuery(req); err != nil {
		return SeriesBody{}, err
	}
	if err := a.w.Flush(); err != nil {
		return SeriesBody{}, err
	}
	kind, payload, err := f.readFrame()
	if err != nil {
		return SeriesBody{}, err
	}
	switch kind {
	case binKindSeries:
		return f.readSeries(payload)
	case binKindError:
		msg, err := f.readError(payload)
		if err != nil {
			return SeriesBody{}, err
		}
		return SeriesBody{}, &ServiceError{Message: msg}
	default:
		return SeriesBody{}, fmt.Errorf("cluster: unexpected binary reply kind %d", kind)
	}
}

// FetchModel downloads the service's trained model for local inference —
// the fallback path when the control node is unreachable between samples.
func (a *Agent) FetchModel() (*core.HighRPM, error) {
	if err := a.writeEnv(KindModel, struct{}{}); err != nil {
		return nil, err
	}
	if err := a.w.Flush(); err != nil {
		return nil, err
	}
	env, err := a.readEnv()
	if err != nil {
		return nil, err
	}
	switch env.Kind {
	case KindModel:
		var mb ModelBody
		if err := DecodeBody(env, &mb); err != nil {
			return nil, err
		}
		return core.Unmarshal(mb.Data)
	case KindError:
		var eb ErrorBody
		if err := DecodeBody(env, &eb); err != nil {
			return nil, err
		}
		return nil, &ServiceError{Message: eb.Message}
	default:
		return nil, fmt.Errorf("cluster: unexpected reply kind %q", env.Kind)
	}
}

// Close terminates the connection. Pending batched samples are dropped;
// call Flush first if they matter.
func (a *Agent) Close() error { return a.conn.Close() }
