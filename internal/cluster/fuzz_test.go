package cluster

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"runtime"
	"testing"
	"unicode/utf8"
)

// frameFor frames raw bytes with a length prefix, bypassing WriteMsg's JSON
// marshalling so fuzzing can reach the decoder with arbitrary bodies.
func frameFor(body []byte) []byte {
	out := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(out, uint32(len(body)))
	copy(out[4:], body)
	return out
}

// FuzzReadEnvelope throws arbitrary byte streams at the frame decoder. The
// contract under attack: never panic, never allocate anywhere near the
// claimed frame length for bytes that did not arrive, and either return a
// well-formed envelope or an error — nothing in between.
func FuzzReadEnvelope(f *testing.F) {
	// A valid hello frame.
	var ok bytes.Buffer
	if err := WriteMsg(&ok, KindHello, Hello{NodeID: "seed"}); err != nil {
		f.Fatal(err)
	}
	f.Add(ok.Bytes())
	// Length prefix claims 4 GiB with no body behind it.
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	// Claims exactly the cap plus one byte.
	var over [4]byte
	binary.BigEndian.PutUint32(over[:], uint32(DefaultMaxFrame)+1)
	f.Add(over[:])
	// Truncated body: claims 100 bytes, delivers 3.
	f.Add(append([]byte{0, 0, 0, 100}, '{', '"', 'k'))
	// Well-framed garbage JSON.
	f.Add(frameFor([]byte(`{"kind": 12, "body": [`)))
	// Zero-length frame.
	f.Add([]byte{0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := ReadMsg(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		// A successful decode must re-frame within the cap: the decoder may
		// not hand back more than it was allowed to read.
		var out bytes.Buffer
		if werr := WriteMsg(&out, env.Kind, env.Body); werr != nil && !errors.Is(werr, ErrFrameTooLarge) {
			t.Fatalf("decoded envelope does not re-frame: %v", werr)
		}
	})
}

// FuzzEnvelopeRoundTrip checks WriteMsg/ReadMsg are inverses for any kind
// string and any JSON-encodable body. encoding/json coerces invalid UTF-8
// to U+FFFD replacement runes, so the byte-exact half of the invariant
// applies only to valid UTF-8 input; for the rest the decode must still
// succeed.
func FuzzEnvelopeRoundTrip(f *testing.F) {
	f.Add("hello", `{"node_id":"n1"}`)
	f.Add("sample", `{"node_id":"n","time":3,"pmc":[1,2,3]}`)
	f.Add("", ``)
	f.Add("error", `{"message":"boom"}`)
	f.Add("series", `{"points":[{"t":1,"v":null,"min":null,"max":null,"n":0}]}`)

	f.Fuzz(func(t *testing.T, kind, body string) {
		var buf bytes.Buffer
		err := WriteMsg(&buf, MsgKind(kind), body)
		if err != nil {
			if errors.Is(err, ErrFrameTooLarge) {
				return // correctly refused to emit an unreadable frame
			}
			t.Fatalf("WriteMsg(%q): %v", kind, err)
		}
		env, err := ReadMsg(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("ReadMsg after WriteMsg(%q): %v", kind, err)
		}
		var got string
		if err := DecodeBody(env, &got); err != nil {
			t.Fatalf("DecodeBody: %v", err)
		}
		if utf8.ValidString(kind) && env.Kind != MsgKind(kind) {
			t.Fatalf("kind round trip: wrote %q read %q", kind, env.Kind)
		}
		if utf8.ValidString(body) && got != body {
			t.Fatalf("body round trip: wrote %q read %q", body, got)
		}
	})
}

// TestReadMsgNoOverAllocation is the deterministic regression test for the
// adversarial-length-prefix fix: a peer that claims a frame just under the
// cap but sends only a handful of bytes must cost at most one read chunk of
// memory, not the claimed length.
func TestReadMsgNoOverAllocation(t *testing.T) {
	checkNoLeaks(t)
	claim := DefaultMaxFrame - 1
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(claim))
	stream := io.MultiReader(bytes.NewReader(hdr[:]), bytes.NewReader([]byte(`{"kind"`)))
	r := bufio.NewReader(stream)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	_, err := ReadMsg(r)
	runtime.ReadMemStats(&after)
	if err == nil {
		t.Fatal("truncated frame decoded successfully")
	}
	if errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("claim of %d bytes is under the cap, got %v", claim, err)
	}
	grew := after.TotalAlloc - before.TotalAlloc
	// One chunk is 64 KiB; leave room for unrelated runtime allocation but
	// stay far below the ~8 MiB an eager pre-allocation would show.
	if grew > 1<<20 {
		t.Fatalf("ReadMsg allocated %d bytes for a frame that never arrived", grew)
	}
}
