package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"highrpm/internal/core"
)

// Mode reports how a ResilientAgent is currently serving estimates.
type Mode int32

const (
	// ModeConnected: estimates come from the service (the normal path).
	ModeConnected Mode = iota
	// ModeDegraded: the service is unreachable; estimates come from the
	// agent's local model snapshot and samples are buffered for replay
	// (§6.4.6's far-away / congested-network fallback).
	ModeDegraded
)

// String names the mode for logs.
func (m Mode) String() string {
	if m == ModeDegraded {
		return "degraded"
	}
	return "connected"
}

// ErrAgentClosed reports use of a ResilientAgent after Close.
var ErrAgentClosed = errors.New("cluster: resilient agent closed")

// AgentOptions tunes ResilientAgent's reconnect and fallback behaviour.
type AgentOptions struct {
	// DialTimeout bounds each TCP dial plus Hello/model handshake.
	DialTimeout time.Duration
	// RequestTimeout bounds one request round trip (0: unbounded — not
	// recommended; a blackholed service then blocks Send forever).
	RequestTimeout time.Duration
	// BackoffMin/BackoffMax bound the jittered exponential delay between
	// recovery attempts: the first retry waits BackoffMin, doubling per
	// consecutive failure up to BackoffMax.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// Jitter spreads each backoff delay by ±Jitter (fraction of the
	// delay) so a cluster of agents does not reconnect in lockstep.
	Jitter float64
	// SendRetries is how many network attempts one Send makes (first try
	// included) before falling back to the local model.
	SendRetries int
	// FailThreshold is how many consecutive Sends must fail before the
	// agent flips to ModeDegraded and stops trying the network on every
	// sample (it then only probes on the backoff schedule).
	FailThreshold int
	// BufferLimit caps the samples buffered while degraded; beyond it the
	// oldest sample is dropped (and counted) so memory stays bounded.
	BufferLimit int
	// Seed feeds the jitter RNG, keeping backoff sequences reproducible.
	Seed int64
	// Codec is the wire codec preference passed to each dial: "" or
	// CodecBinary offers the binary framing (falling back to JSON against
	// older services), CodecJSON pins JSON.
	Codec string
	// Batch configures sample coalescing for Record (zero: disabled).
	Batch BatchOptions
}

// DefaultAgentOptions returns production defaults for 1 Sa/s telemetry.
func DefaultAgentOptions() AgentOptions {
	return AgentOptions{
		DialTimeout:    2 * time.Second,
		RequestTimeout: 5 * time.Second,
		BackoffMin:     100 * time.Millisecond,
		BackoffMax:     30 * time.Second,
		Jitter:         0.2,
		SendRetries:    2,
		FailThreshold:  3,
		BufferLimit:    4096,
		Seed:           1,
	}
}

// AgentCounters snapshots a ResilientAgent's activity.
type AgentCounters struct {
	// Sent counts samples acknowledged by the service live (replays not
	// included).
	Sent int64
	// LocalServed counts estimates answered from the local snapshot.
	LocalServed int64
	// Buffered counts samples queued for replay (cumulative).
	Buffered int64
	// Replayed counts buffered samples later acknowledged by the service.
	Replayed int64
	// Dropped counts buffered samples lost to the BufferLimit cap.
	Dropped int64
	// Reconnects counts successful re-dials (each includes a fresh Hello
	// and a model resync).
	Reconnects int64
	// DialFailures counts failed dial/handshake attempts.
	DialFailures int64
	// SendFailures counts network round trips that errored or timed out.
	SendFailures int64
	// Degradations counts connected→degraded flips.
	Degradations int64
	// ModelSyncs counts model snapshot fetches (1 from the initial
	// connect, +1 per reconnect).
	ModelSyncs int64
}

// ResilientAgent wraps Agent with reconnection, bounded retries, request
// deadlines, and the §6.4.6 degraded-mode fallback: after FailThreshold
// consecutive failures it serves estimates from its last fetched model
// snapshot, buffers up to BufferLimit samples, and replays them in order
// (then resyncs the snapshot) once the service is reachable again.
//
// Degraded estimates are bit-for-bit what a fresh core.Monitor over the
// snapshot model would produce for the episode's samples — each degraded
// episode starts a fresh local monitor, so estimates cold-start from the
// snapshot's trend midpoint until an IM reading arrives, exactly like a
// node that never had the service.
//
// Like Agent it is not safe for concurrent use; run one per node
// goroutine. Send never returns transport errors — only *ServiceError
// (the service rejected the sample) or a local-inference error escapes.
type ResilientAgent struct {
	addr   string
	nodeID string
	opts   AgentOptions

	agent    *Agent        // nil while disconnected
	model    *core.HighRPM // last fetched snapshot
	localMon *core.Monitor // per-episode fallback monitor (nil between episodes)
	buffer   []Sample      // degraded samples awaiting replay, oldest first
	batch    batcher       // pending Record samples awaiting a flush
	mode     Mode
	closed   bool

	consecFails int // consecutive Sends that fell back locally
	backoff     time.Duration
	nextProbe   time.Time // earliest next recovery attempt
	rng         *rand.Rand

	counters AgentCounters
}

// DialResilient connects a ResilientAgent to the service: it dials,
// registers the node, and fetches the model snapshot the degraded-mode
// fallback will run on. The initial connect must succeed — without a
// snapshot there is nothing to degrade to.
func DialResilient(addr, nodeID string, opts AgentOptions) (*ResilientAgent, error) {
	if opts.SendRetries < 1 {
		opts.SendRetries = 1
	}
	if opts.FailThreshold < 1 {
		opts.FailThreshold = 1
	}
	if opts.BufferLimit < 1 {
		opts.BufferLimit = 1
	}
	if opts.BackoffMin <= 0 {
		opts.BackoffMin = time.Millisecond
	}
	if opts.BackoffMax < opts.BackoffMin {
		opts.BackoffMax = opts.BackoffMin
	}
	if opts.Codec == "" {
		opts.Codec = CodecBinary
	}
	ra := &ResilientAgent{
		addr:    addr,
		nodeID:  nodeID,
		opts:    opts,
		backoff: opts.BackoffMin,
		rng:     rand.New(rand.NewSource(opts.Seed)),
	}
	ra.batch.opts = opts.Batch
	agent, model, err := ra.connect()
	if err != nil {
		return nil, err
	}
	ra.agent, ra.model = agent, model
	ra.counters.ModelSyncs++
	return ra, nil
}

// connect dials, says Hello, and fetches a model snapshot. The whole
// handshake is bounded by DialTimeout: once for dial+Hello, once more for
// the model fetch (models are bigger than samples, so RequestTimeout would
// be too tight a bound on a slow link).
func (ra *ResilientAgent) connect() (*Agent, *core.HighRPM, error) {
	agent, err := DialCodec(ra.addr, ra.nodeID, ra.opts.Codec, ra.opts.DialTimeout)
	if err != nil {
		return nil, nil, err
	}
	if ra.opts.DialTimeout > 0 {
		agent.setDeadline(time.Now().Add(ra.opts.DialTimeout))
	}
	model, err := agent.FetchModel()
	agent.setDeadline(time.Time{})
	if err != nil {
		_ = agent.Close()
		return nil, nil, fmt.Errorf("cluster: model snapshot: %w", err)
	}
	return agent, model, nil
}

// NodeID returns the registered node identity.
func (ra *ResilientAgent) NodeID() string { return ra.nodeID }

// Mode reports whether estimates currently come from the service or from
// the local snapshot.
func (ra *ResilientAgent) Mode() Mode { return ra.mode }

// Counters snapshots the agent's activity counters.
func (ra *ResilientAgent) Counters() AgentCounters { return ra.counters }

// Model returns the last fetched model snapshot (never nil after a
// successful DialResilient).
func (ra *ResilientAgent) Model() *core.HighRPM { return ra.model }

// Pending reports how many buffered samples still await replay.
func (ra *ResilientAgent) Pending() int { return len(ra.buffer) }

// Send streams one second of telemetry. It returns the service's estimate
// when the network cooperates, and otherwise a local-snapshot estimate
// with Estimate.Local set — transport failures are absorbed, not
// returned. A *ServiceError (the service rejected the sample over a
// healthy connection) is returned as-is.
func (ra *ResilientAgent) Send(t float64, pmc []float64, measured *float64) (Estimate, error) {
	if ra.closed {
		return Estimate{}, ErrAgentClosed
	}
	smp := Sample{NodeID: ra.nodeID, Time: t, PMC: pmc, Measured: measured}
	// Degraded fast path: skip the network entirely until a probe is due.
	if ra.mode == ModeDegraded && time.Now().Before(ra.nextProbe) {
		return ra.serveLocal(smp)
	}
	for attempt := 0; attempt < ra.opts.SendRetries; attempt++ {
		if !ra.ensureLive() {
			break
		}
		est, err := ra.sendOnce(smp)
		if err == nil {
			ra.onHealthy()
			ra.counters.Sent++
			return est, nil
		}
		var se *ServiceError
		if errors.As(err, &se) {
			// The transport is fine; the service said no. Reset failure
			// accounting and surface the rejection.
			ra.onHealthy()
			return Estimate{}, err
		}
		ra.counters.SendFailures++
		ra.failProbe()
		ra.dropConn()
	}
	return ra.serveLocal(smp)
}

// SetBatching configures sample coalescing for Record (overriding
// AgentOptions.Batch); MaxSamples < 2 keeps Record unbatched.
func (ra *ResilientAgent) SetBatching(o BatchOptions) { ra.batch.opts = o }

// Record queues one second of telemetry for batched delivery, returning
// the estimates when a flush happened (nil estimates, nil error while the
// sample is pending). Without batching it behaves like Send. Record copies
// pmc, so callers may reuse their buffer immediately — unlike Send, which
// buffers the caller's slice when degraded.
func (ra *ResilientAgent) Record(t float64, pmc []float64, measured *float64) ([]Estimate, error) {
	if ra.closed {
		return nil, ErrAgentClosed
	}
	if !ra.batch.opts.enabled() {
		est, err := ra.Send(t, pmc, measured)
		if err != nil {
			return nil, err
		}
		return []Estimate{est}, nil
	}
	ra.batch.add(t, pmc, measured)
	if ra.batch.full() || ra.batch.due() {
		return ra.Flush()
	}
	return nil, nil
}

// Flush delivers the pending batch now. Like Send it absorbs transport
// failures: when the service is unreachable the batch is served from the
// local snapshot and its samples join the replay buffer in order, so
// in-order replay is preserved across degraded episodes. A *ServiceError
// (the service rejected the batch) drops it and is returned as-is.
func (ra *ResilientAgent) Flush() ([]Estimate, error) {
	if ra.closed {
		return nil, ErrAgentClosed
	}
	if ra.batch.n == 0 {
		return nil, nil
	}
	// Degraded fast path: skip the network entirely until a probe is due,
	// mirroring Send.
	if !(ra.mode == ModeDegraded && time.Now().Before(ra.nextProbe)) {
		for attempt := 0; attempt < ra.opts.SendRetries; attempt++ {
			if !ra.ensureLive() {
				break
			}
			ests, err := ra.sendBatchOnce()
			if err == nil {
				ra.onHealthy()
				ra.counters.Sent += int64(len(ests))
				ra.batch.reset()
				return ests, nil
			}
			var se *ServiceError
			if errors.As(err, &se) {
				ra.onHealthy()
				ra.batch.reset()
				return nil, err
			}
			ra.counters.SendFailures++
			ra.failProbe()
			ra.dropConn()
		}
	}
	return ra.flushLocal()
}

// SendSamples delivers a prepared batch of samples in order through the
// resilience machinery: the samples join any pending Record batch and the
// whole thing is flushed immediately, so a transport failure buffers them
// for in-order replay exactly like Flush. The fleet router uses this to
// forward a front-end RecordBatch to a backend shard without re-batching.
func (ra *ResilientAgent) SendSamples(samples []BatchSample) ([]Estimate, error) {
	if ra.closed {
		return nil, ErrAgentClosed
	}
	for i := range samples {
		ra.batch.add(samples[i].Time, samples[i].PMC, samples[i].Measured)
	}
	return ra.Flush()
}

// sendBatchOnce performs one deadline-bounded batch round trip on the
// current connection.
func (ra *ResilientAgent) sendBatchOnce() ([]Estimate, error) {
	if ra.opts.RequestTimeout > 0 {
		ra.agent.setDeadline(time.Now().Add(ra.opts.RequestTimeout))
		defer ra.agent.setDeadline(time.Time{})
	}
	return ra.agent.sendBatchSamples(ra.batch.wireSamples())
}

// flushLocal serves the pending batch from the model snapshot, one sample
// at a time through serveLocal — each joins the replay buffer in batch
// order, so the later replay delivers every sample to the service in the
// exact order it was recorded. PMC slices are copied out of the batcher's
// reused slots before buffering.
func (ra *ResilientAgent) flushLocal() ([]Estimate, error) {
	ests := make([]Estimate, 0, ra.batch.n)
	for i := 0; i < ra.batch.n; i++ {
		s := &ra.batch.slots[i]
		pmc := append([]float64(nil), s.pmc...)
		var measured *float64
		if s.hasMeasured {
			m := s.measured
			measured = &m
		}
		est, err := ra.serveLocal(Sample{NodeID: ra.nodeID, Time: s.t, PMC: pmc, Measured: measured})
		if err != nil {
			ra.batch.reset()
			return ests, err
		}
		ests = append(ests, est)
	}
	ra.batch.reset()
	return ests, nil
}

// ensureLive reports whether a connected, fully-replayed link is ready for
// a live send. It redials (respecting the backoff schedule) and replays
// the degraded-mode buffer as needed.
func (ra *ResilientAgent) ensureLive() bool {
	if ra.agent == nil && !ra.redial() {
		return false
	}
	return ra.replay()
}

// redial attempts one reconnect if the backoff schedule allows it.
func (ra *ResilientAgent) redial() bool {
	if time.Now().Before(ra.nextProbe) {
		return false
	}
	agent, model, err := ra.connect()
	if err != nil {
		ra.counters.DialFailures++
		ra.failProbe()
		return false
	}
	ra.agent, ra.model = agent, model
	ra.counters.Reconnects++
	ra.counters.ModelSyncs++
	return true
}

// replay drains the degraded-mode buffer in order. Every acknowledged
// sample leaves the buffer for good; a failure keeps the rest for the next
// attempt.
func (ra *ResilientAgent) replay() bool {
	for len(ra.buffer) > 0 {
		if _, err := ra.sendOnce(ra.buffer[0]); err != nil {
			var se *ServiceError
			if errors.As(err, &se) {
				// The service rejected a buffered sample (e.g. recorded
				// with a stale feature layout). It will never be
				// accepted; drop it rather than wedge the replay.
				ra.buffer = ra.buffer[1:]
				ra.counters.Dropped++
				continue
			}
			ra.counters.SendFailures++
			ra.failProbe()
			ra.dropConn()
			return false
		}
		ra.buffer = ra.buffer[1:]
		ra.counters.Replayed++
	}
	return true
}

// sendOnce performs one deadline-bounded sample round trip on the current
// connection.
func (ra *ResilientAgent) sendOnce(smp Sample) (Estimate, error) {
	if ra.opts.RequestTimeout > 0 {
		ra.agent.setDeadline(time.Now().Add(ra.opts.RequestTimeout))
		defer ra.agent.setDeadline(time.Time{})
	}
	return ra.agent.Send(smp.Time, smp.PMC, smp.Measured)
}

// serveLocal answers one sample from the model snapshot and buffers it for
// replay. It also advances the failure accounting that flips the agent to
// ModeDegraded.
func (ra *ResilientAgent) serveLocal(smp Sample) (Estimate, error) {
	ra.consecFails++
	if ra.mode == ModeConnected && ra.consecFails >= ra.opts.FailThreshold {
		ra.mode = ModeDegraded
		ra.counters.Degradations++
	}
	if ra.localMon == nil {
		ra.localMon = core.NewMonitor(ra.model)
	}
	est, err := ra.localMon.Push(smp.PMC, smp.Measured)
	if err != nil {
		return Estimate{}, err
	}
	if len(ra.buffer) >= ra.opts.BufferLimit {
		ra.buffer = ra.buffer[1:]
		ra.counters.Dropped++
	}
	ra.buffer = append(ra.buffer, smp)
	ra.counters.Buffered++
	ra.counters.LocalServed++
	return Estimate{
		NodeID: ra.nodeID, Time: smp.Time,
		PNode: est.PNode, PCPU: est.PCPU, PMEM: est.PMEM,
		FromMeasurement: est.FromMeasurement,
		Local:           true,
	}, nil
}

// onHealthy records a successful round trip: failure accounting resets,
// the backoff collapses, and a degraded episode (its buffer was already
// replayed) ends.
func (ra *ResilientAgent) onHealthy() {
	ra.consecFails = 0
	ra.backoff = ra.opts.BackoffMin
	ra.nextProbe = time.Time{}
	ra.localMon = nil
	if ra.mode == ModeDegraded {
		ra.mode = ModeConnected
	}
}

// failProbe schedules the next recovery attempt with jittered exponential
// backoff.
func (ra *ResilientAgent) failProbe() {
	d := ra.backoff
	if ra.opts.Jitter > 0 {
		f := 1 + ra.opts.Jitter*(2*ra.rng.Float64()-1)
		d = time.Duration(float64(d) * f)
	}
	ra.nextProbe = time.Now().Add(d)
	ra.backoff *= 2
	if ra.backoff > ra.opts.BackoffMax {
		ra.backoff = ra.opts.BackoffMax
	}
}

// dropConn discards the current connection after a transport failure.
func (ra *ResilientAgent) dropConn() {
	if ra.agent != nil {
		_ = ra.agent.Close()
		ra.agent = nil
	}
}

// Stats fetches service statistics over the current connection (redialing
// first if necessary). Unlike Send it has no local fallback: when the
// service is unreachable it returns the transport error.
func (ra *ResilientAgent) Stats() (Stats, error) {
	if ra.closed {
		return Stats{}, ErrAgentClosed
	}
	if ra.agent == nil && !ra.redial() {
		return Stats{}, fmt.Errorf("cluster: disconnected (next probe in %v)", time.Until(ra.nextProbe).Round(time.Millisecond))
	}
	if ra.opts.RequestTimeout > 0 {
		ra.agent.setDeadline(time.Now().Add(ra.opts.RequestTimeout))
		defer ra.agent.setDeadline(time.Time{})
	}
	st, err := ra.agent.Stats()
	if err != nil {
		var se *ServiceError
		if !errors.As(err, &se) {
			ra.counters.SendFailures++
			ra.failProbe()
			ra.dropConn()
		}
		return Stats{}, err
	}
	return st, nil
}

// Query fetches stored power history over the current connection
// (redialing first if necessary). Like Stats it has no local fallback:
// when the service is unreachable it returns the transport error and
// schedules the next probe.
func (ra *ResilientAgent) Query(req QueryRequest) (SeriesBody, error) {
	if ra.closed {
		return SeriesBody{}, ErrAgentClosed
	}
	if ra.agent == nil && !ra.redial() {
		return SeriesBody{}, fmt.Errorf("cluster: disconnected (next probe in %v)", time.Until(ra.nextProbe).Round(time.Millisecond))
	}
	if ra.opts.RequestTimeout > 0 {
		ra.agent.setDeadline(time.Now().Add(ra.opts.RequestTimeout))
		defer ra.agent.setDeadline(time.Time{})
	}
	body, err := ra.agent.Query(req)
	if err != nil {
		var se *ServiceError
		if !errors.As(err, &se) {
			ra.counters.SendFailures++
			ra.failProbe()
			ra.dropConn()
		}
		return SeriesBody{}, err
	}
	return body, nil
}

// Close terminates the connection. Buffered samples not yet replayed and
// batched samples not yet flushed are lost; check Pending and call Flush
// first if that matters.
func (ra *ResilientAgent) Close() error {
	if ra.closed {
		return nil
	}
	ra.closed = true
	if ra.agent != nil {
		return ra.agent.Close()
	}
	return nil
}
