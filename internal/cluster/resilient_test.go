package cluster

import (
	"errors"
	"math"
	"testing"
	"time"

	"highrpm/internal/cluster/faultnet"
	"highrpm/internal/core"
	"highrpm/internal/platform"
	"highrpm/internal/workload"
)

// faultAgentOptions returns aggressive timings so fault tests converge in
// milliseconds instead of the production seconds.
func faultAgentOptions() AgentOptions {
	opts := DefaultAgentOptions()
	opts.DialTimeout = time.Second
	opts.RequestTimeout = 150 * time.Millisecond
	opts.BackoffMin = time.Millisecond
	opts.BackoffMax = 20 * time.Millisecond
	opts.SendRetries = 2
	opts.FailThreshold = 2
	opts.BufferLimit = 256
	opts.Seed = 7
	return opts
}

// localRecord captures one degraded-mode sample and what the agent
// answered for it, so the reference monitor can be replayed against it.
type localRecord struct {
	pmc      []float64
	measured *float64
	est      Estimate
}

// runFaultScenario drives total samples through a ResilientAgent behind a
// scripted faultnet proxy, then keeps nudging until the agent is
// reconnected with an empty replay buffer. It returns the degraded-mode
// records in arrival order.
func runFaultScenario(t *testing.T, svc *Service, scripts []faultnet.ConnScript, opts AgentOptions, total int) (*ResilientAgent, []localRecord) {
	t.Helper()
	proxy := faultnet.New(svc.Addr(), scripts...)
	if err := proxy.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })

	ra, err := DialResilient(proxy.Addr(), "node-ft", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ra.Close() })

	node, err := platform.NewNode(platform.ARMConfig(), 21)
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.Find("HPCC/FFT")
	if err != nil {
		t.Fatal(err)
	}
	node.Attach(b)

	var locals []localRecord
	push := func(i int) {
		s := node.Step(1)
		var measured *float64
		if i%10 == 0 {
			v := s.PNode
			measured = &v
		}
		pmc := s.Counters.Slice()
		est, err := ra.Send(s.Time, pmc, measured)
		if err != nil {
			t.Fatalf("sample %d: Send must absorb transport faults, got %v", i, err)
		}
		if est.NodeID != "node-ft" {
			t.Fatalf("sample %d: estimate for %q", i, est.NodeID)
		}
		// No estimate may be silently wrong: an IM reading always wins,
		// locally and remotely.
		if measured != nil && est.PNode != *measured {
			t.Fatalf("sample %d: measured %g not honoured (got %g, local=%v)", i, *measured, est.PNode, est.Local)
		}
		if math.IsNaN(est.PNode) || math.IsNaN(est.PCPU) || math.IsNaN(est.PMEM) {
			t.Fatalf("sample %d: NaN estimate %+v", i, est)
		}
		if est.Local {
			locals = append(locals, localRecord{pmc: append([]float64(nil), pmc...), measured: measured, est: est})
		}
		// Give the backoff schedule room: back-to-back sends would
		// otherwise outrun even a 1 ms probe delay.
		time.Sleep(2 * time.Millisecond)
	}
	for i := 0; i < total; i++ {
		push(i)
	}
	// Nudge until recovered: reconnected, buffer drained.
	for i := total; i < total+200; i++ {
		if ra.Mode() == ModeConnected && ra.Pending() == 0 {
			break
		}
		push(i)
	}
	return ra, locals
}

// verifyRecovered asserts the common post-fault invariants of the
// acceptance criteria.
func verifyRecovered(t *testing.T, ra *ResilientAgent, locals []localRecord, wantDegraded bool) {
	t.Helper()
	c := ra.Counters()
	if ra.Mode() != ModeConnected {
		t.Fatalf("agent ended %v (counters %+v)", ra.Mode(), c)
	}
	if ra.Pending() != 0 {
		t.Fatalf("%d samples still buffered (counters %+v)", ra.Pending(), c)
	}
	if c.Reconnects < 1 {
		t.Fatalf("agent never reconnected (counters %+v)", c)
	}
	if c.Dropped != 0 {
		t.Fatalf("%d buffered samples dropped (counters %+v)", c.Dropped, c)
	}
	if c.Replayed != c.Buffered {
		t.Fatalf("buffered %d but replayed %d — not every sample was acknowledged", c.Buffered, c.Replayed)
	}
	if wantDegraded && c.Degradations < 1 {
		t.Fatalf("scenario should have degraded the agent (counters %+v)", c)
	}
	if int64(len(locals)) != c.LocalServed {
		t.Fatalf("recorded %d local estimates, counters say %d", len(locals), c.LocalServed)
	}
	// The §6.4.6 contract: every degraded estimate is bit-for-bit what a
	// fresh Monitor over the fetched snapshot produces for the episode's
	// samples. All locals belong to one episode here (the fault scripts
	// hit connection 0 only, so after recovery nothing degrades again).
	if len(locals) > 0 {
		ref := core.NewMonitor(ra.Model())
		for i, rec := range locals {
			want, err := ref.Push(rec.pmc, rec.measured)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(rec.est.PNode) != math.Float64bits(want.PNode) ||
				math.Float64bits(rec.est.PCPU) != math.Float64bits(want.PCPU) ||
				math.Float64bits(rec.est.PMEM) != math.Float64bits(want.PMEM) ||
				rec.est.FromMeasurement != want.FromMeasurement {
				t.Fatalf("degraded estimate %d diverges from the snapshot model: got (%x,%x,%x) want (%x,%x,%x)",
					i,
					math.Float64bits(rec.est.PNode), math.Float64bits(rec.est.PCPU), math.Float64bits(rec.est.PMEM),
					math.Float64bits(want.PNode), math.Float64bits(want.PCPU), math.Float64bits(want.PMEM))
			}
		}
	}
}

// TestResilientAgentFaults is the fault-injection matrix of the PR 4
// acceptance criteria: for every scripted fault the agent must end the
// test reconnected with all buffered samples acknowledged and every
// degraded estimate bit-exact against the snapshot model.
//
// Connection numbering: the agent's initial connect is proxied connection
// 0 (its Hello is up-frame 1 and its model fetch up-frame 2, with the
// matching replies down-frames 1 and 2); each reconnect is the next
// connection.
func TestResilientAgentFaults(t *testing.T) {
	checkNoLeaks(t)
	cases := []struct {
		name    string
		scripts []faultnet.ConnScript
		tune    func(*AgentOptions)
		total   int
		// wantDegraded: the script is severe enough that the agent must
		// have flipped to ModeDegraded at least once.
		wantDegraded bool
	}{
		{
			// A latency spike beyond the request deadline: sends time out
			// until the reconnect lands on the clean connection 1.
			name: "latency-spike",
			scripts: []faultnet.ConnScript{
				{Up: faultnet.Fault{Latency: 400 * time.Millisecond}},
			},
			total: 12,
		},
		{
			// The first estimate reply is cut off after 5 bytes: a
			// byte-level truncated frame.
			name: "truncated-reply",
			scripts: []faultnet.ConnScript{
				{Down: faultnet.Fault{AfterFrames: 3, AfterBytes: 5, Action: faultnet.ActClose}},
			},
			total: 12,
		},
		{
			// The first sample is reset mid-message (10 bytes into the
			// frame, then RST).
			name: "mid-message-reset",
			scripts: []faultnet.ConnScript{
				{Up: faultnet.Fault{AfterFrames: 3, AfterBytes: 10, Action: faultnet.ActReset}},
			},
			total: 12,
		},
		{
			// Accept-then-silence, twice: the service's replies vanish on
			// connection 0 after the handshake and connection 1 is
			// blackholed from its first reply, so the agent must degrade,
			// serve locally, and recover on connection 2.
			name: "blackhole",
			scripts: []faultnet.ConnScript{
				{Down: faultnet.Fault{AfterFrames: 3, Action: faultnet.ActBlackhole}},
				{Down: faultnet.Fault{AfterFrames: 1, Action: faultnet.ActBlackhole}},
			},
			tune: func(o *AgentOptions) {
				o.SendRetries = 1                      // one timeout per send keeps the test fast
				o.DialTimeout = 300 * time.Millisecond // bounds the blackholed re-Hello
			},
			total:        12,
			wantDegraded: true,
		},
		{
			// Drop-at-message-N: the connection dies the moment the agent
			// sends its 4th frame (= 2 handshake frames + sample 3).
			name: "drop-at-N",
			scripts: []faultnet.ConnScript{
				{Up: faultnet.Fault{AfterFrames: 6, Action: faultnet.ActClose}},
			},
			total: 12,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkNoLeaks(t)
			svc := startServiceWith(t, ServiceOptions{
				ReadTimeout:  2 * time.Second,
				WriteTimeout: 2 * time.Second,
			})
			opts := faultAgentOptions()
			if tc.tune != nil {
				tc.tune(&opts)
			}
			ra, locals := runFaultScenario(t, svc, tc.scripts, opts, tc.total)
			verifyRecovered(t, ra, locals, tc.wantDegraded)
			// Every sample was delivered at least once (live, retried, or
			// replayed) — the service's count may exceed the agent's on
			// lost-reply retries, but can never fall short.
			if st := svc.Stats(); st.Samples < int64(tc.total) {
				t.Fatalf("service saw %d samples, agent sent at least %d", st.Samples, tc.total)
			}
		})
	}
}

// TestResilientAgentDegradedBuffersAndReplays pins the degraded-mode
// bookkeeping on a long outage: the service dies mid-stream (listener and
// all), the agent flips to degraded and buffers, and a fresh service on
// the same address gets the whole backlog on reconnect.
func TestResilientAgentDegradedBuffersAndReplays(t *testing.T) {
	checkNoLeaks(t)
	svc := NewService(sharedModel(t))
	svc.Logf = t.Logf
	if err := svc.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := svc.Addr()

	opts := faultAgentOptions()
	opts.SendRetries = 1
	ra, err := DialResilient(addr, "node-out", opts)
	if err != nil {
		svc.Close()
		t.Fatal(err)
	}
	defer ra.Close()

	node, err := platform.NewNode(platform.ARMConfig(), 33)
	if err != nil {
		svc.Close()
		t.Fatal(err)
	}
	b, err := workload.Find("HPCC/FFT")
	if err != nil {
		svc.Close()
		t.Fatal(err)
	}
	node.Attach(b)
	send := func(i int) Estimate {
		s := node.Step(1)
		var measured *float64
		if i%5 == 0 {
			v := s.PNode
			measured = &v
		}
		est, err := ra.Send(s.Time, s.Counters.Slice(), measured)
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		time.Sleep(2 * time.Millisecond)
		return est
	}

	for i := 0; i < 5; i++ {
		if est := send(i); est.Local {
			t.Fatalf("sample %d served locally while the service was up", i)
		}
	}
	// Outage: everything about the service goes away.
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	degradedSeen := false
	for i := 5; i < 15; i++ {
		est := send(i)
		if !est.Local {
			t.Fatalf("sample %d not served locally during the outage", i)
		}
		if ra.Mode() == ModeDegraded {
			degradedSeen = true
		}
	}
	if !degradedSeen {
		t.Fatal("agent never entered degraded mode during a 10-sample outage")
	}
	if ra.Pending() != 10 {
		t.Fatalf("%d samples buffered, want 10", ra.Pending())
	}

	// Recovery: a new service appears on the same address.
	svc2 := NewServiceWith(sharedModel(t), DefaultServiceOptions())
	svc2.Logf = t.Logf
	if err := svc2.Listen(addr); err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	t.Cleanup(func() { svc2.Close() })
	deadline := time.Now().Add(10 * time.Second)
	for i := 15; ra.Mode() != ModeConnected || ra.Pending() > 0; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("agent never recovered: mode %v, %d pending, counters %+v", ra.Mode(), ra.Pending(), ra.Counters())
		}
		send(i)
	}
	c := ra.Counters()
	if c.Replayed != c.Buffered || c.Dropped != 0 {
		t.Fatalf("replay incomplete: %+v", c)
	}
	// The replayed backlog reached the new service's monitor and store.
	if st := svc2.Stats(); st.Samples < c.Replayed {
		t.Fatalf("new service saw %d samples, expected at least the %d replayed", st.Samples, c.Replayed)
	}
	if c.ModelSyncs < 2 {
		t.Fatalf("model not resynced on reconnect: %+v", c)
	}
}

// TestResilientAgentBufferCap: the replay buffer must stay bounded, with
// overflow counted, not crashed on.
func TestResilientAgentBufferCap(t *testing.T) {
	checkNoLeaks(t)
	svc := NewService(sharedModel(t))
	svc.Logf = t.Logf
	if err := svc.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	opts := faultAgentOptions()
	opts.SendRetries = 1
	opts.BufferLimit = 4
	// Long backoff so the outage loop below never probes the dead
	// address.
	opts.BackoffMin = time.Hour
	opts.BackoffMax = time.Hour
	ra, err := DialResilient(svc.Addr(), "node-cap", opts)
	if err != nil {
		svc.Close()
		t.Fatal(err)
	}
	defer ra.Close()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	pmc := make([]float64, 10)
	for i := 0; i < 10; i++ {
		v := 80.0
		if _, err := ra.Send(float64(i), pmc, &v); err != nil {
			t.Fatal(err)
		}
	}
	if ra.Pending() != 4 {
		t.Fatalf("buffer holds %d, cap is 4", ra.Pending())
	}
	if c := ra.Counters(); c.Dropped != 6 || c.Buffered != 10 {
		t.Fatalf("counters %+v, want 10 buffered / 6 dropped", c)
	}
}

// TestResilientAgentServiceErrorPassesThrough: a KindError reply is a
// healthy transport — it must surface to the caller, not trigger
// reconnects or local fallback.
func TestResilientAgentServiceErrorPassesThrough(t *testing.T) {
	checkNoLeaks(t)
	svc := startService(t)
	ra, err := DialResilient(svc.Addr(), "node-se", faultAgentOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()
	if _, err := ra.Send(0, []float64{1, 2}, nil); err == nil {
		t.Fatal("expected a service error for the wrong feature width")
	} else {
		var se *ServiceError
		if !errors.As(err, &se) {
			t.Fatalf("want *ServiceError, got %T: %v", err, err)
		}
	}
	c := ra.Counters()
	if c.Reconnects != 0 || c.LocalServed != 0 || ra.Mode() != ModeConnected {
		t.Fatalf("service error mis-handled: %+v", c)
	}
	// The connection is still live.
	pmc := make([]float64, 10)
	v := 80.0
	est, err := ra.Send(1, pmc, &v)
	if err != nil || est.Local {
		t.Fatalf("connection dead after service error: %v (local=%v)", err, est.Local)
	}
}
