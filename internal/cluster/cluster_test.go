package cluster

import (
	"bufio"
	"bytes"
	"math"
	"net"
	"sync"
	"testing"

	"highrpm/internal/core"
	"highrpm/internal/dataset"
	"highrpm/internal/platform"
	"highrpm/internal/workload"
)

// trainedModel builds one compact model shared by the tests in this file.
var (
	modelOnce sync.Once
	testModel *core.HighRPM
	modelErr  error
)

func sharedModel(t testing.TB) *core.HighRPM {
	t.Helper()
	modelOnce.Do(func() {
		cfg := dataset.DefaultGenerateConfig()
		cfg.SamplesPerSuite = 150
		train := &dataset.Set{}
		for _, s := range []string{workload.SuiteHPCC, workload.SuiteSPEC} {
			set, err := dataset.GenerateSuite(cfg, s)
			if err != nil {
				modelErr = err
				return
			}
			train.Append(set)
		}
		opts := core.DefaultOptions()
		opts.ActiveLearning = false
		opts.Dynamic.Epochs = 4
		opts.Dynamic.MaxWindows = 120
		testModel, modelErr = core.Train(train, opts)
	})
	if modelErr != nil {
		t.Fatal(modelErr)
	}
	return testModel
}

func startService(t testing.TB) *Service {
	return startServiceWith(t, DefaultServiceOptions())
}

func startServiceWith(t testing.TB, opts ServiceOptions) *Service {
	t.Helper()
	svc := NewServiceWith(sharedModel(t), opts)
	svc.Logf = t.Logf
	if err := svc.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc
}

func TestServiceAgentRoundTrip(t *testing.T) {
	checkNoLeaks(t)
	svc := startService(t)
	agent, err := Dial(svc.Addr(), "node-a")
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	node, err := platform.NewNode(platform.ARMConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.Find("HPCC/FFT")
	if err != nil {
		t.Fatal(err)
	}
	node.Attach(b)
	var measuredSeen bool
	for i := 0; i < 30; i++ {
		s := node.Step(1)
		var measured *float64
		if i%10 == 0 {
			v := s.PNode
			measured = &v
		}
		est, err := agent.Send(s.Time, s.Counters.Slice(), measured)
		if err != nil {
			t.Fatal(err)
		}
		if est.NodeID != "node-a" {
			t.Fatalf("estimate for %q", est.NodeID)
		}
		if measured != nil {
			if !est.FromMeasurement || est.PNode != *measured {
				t.Fatal("measured reading not honoured")
			}
			measuredSeen = true
		}
		if math.IsNaN(est.PCPU) || math.IsNaN(est.PMEM) {
			t.Fatal("NaN component estimate")
		}
	}
	if !measuredSeen {
		t.Fatal("no measured reading exercised")
	}
	st, err := agent.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Nodes != 1 || st.Samples != 30 || st.Measured != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestServiceIsolatesNodes(t *testing.T) {
	checkNoLeaks(t)
	svc := startService(t)
	a, err := Dial(svc.Addr(), "node-1")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Dial(svc.Addr(), "node-2")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Feed node-1 high power and node-2 low power; monitors must not mix.
	pmcHigh := make([]float64, 10)
	pmcLow := make([]float64, 10)
	for i := range pmcHigh {
		pmcHigh[i] = 1e10
		pmcLow[i] = 1e7
	}
	high, low := 110.0, 50.0
	if _, err := a.Send(0, pmcHigh, &high); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Send(0, pmcLow, &low); err != nil {
		t.Fatal(err)
	}
	ea, err := a.Send(1, pmcHigh, nil)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := b.Send(1, pmcLow, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ea.PNode <= eb.PNode {
		t.Fatalf("per-node history mixed: %g vs %g", ea.PNode, eb.PNode)
	}
	st := svc.Stats()
	if st.Nodes != 2 {
		t.Fatalf("stats nodes = %d", st.Nodes)
	}
}

func TestServiceRejectsBadSample(t *testing.T) {
	checkNoLeaks(t)
	svc := startService(t)
	agent, err := Dial(svc.Addr(), "node-x")
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	if _, err := agent.Send(0, []float64{1, 2}, nil); err == nil {
		t.Fatal("expected service error for wrong feature width")
	}
	// The connection must survive the error.
	pmc := make([]float64, 10)
	v := 80.0
	if _, err := agent.Send(1, pmc, &v); err != nil {
		t.Fatalf("connection dead after service error: %v", err)
	}
}

func TestServiceUnknownKind(t *testing.T) {
	checkNoLeaks(t)
	svc := startService(t)
	conn, err := net.Dial("tcp", svc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	w := bufio.NewWriter(conn)
	if err := WriteMsg(w, MsgKind("bogus"), struct{}{}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	env, err := ReadMsg(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	if env.Kind != KindError {
		t.Fatalf("reply kind %q want error", env.Kind)
	}
}

func TestProtocolFrameRoundTrip(t *testing.T) {
	checkNoLeaks(t)
	var buf bytes.Buffer
	want := Sample{NodeID: "n", Time: 3, PMC: []float64{1, 2, 3}}
	if err := WriteMsg(&buf, KindSample, want); err != nil {
		t.Fatal(err)
	}
	env, err := ReadMsg(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	var got Sample
	if err := DecodeBody(env, &got); err != nil {
		t.Fatal(err)
	}
	if got.NodeID != want.NodeID || got.Time != want.Time || len(got.PMC) != 3 {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestProtocolOversizedFrameRejected(t *testing.T) {
	checkNoLeaks(t)
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // 4 GiB frame length
	if _, err := ReadMsg(bufio.NewReader(&buf)); err == nil {
		t.Fatal("expected frame-size error")
	}
}

func TestDialUnreachable(t *testing.T) {
	checkNoLeaks(t)
	if _, err := Dial("127.0.0.1:1", "x"); err == nil {
		t.Fatal("expected dial error")
	}
}

func TestAgentFetchModel(t *testing.T) {
	checkNoLeaks(t)
	svc := startService(t)
	agent, err := Dial(svc.Addr(), "fetcher")
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	local, err := agent.FetchModel()
	if err != nil {
		t.Fatal(err)
	}
	// The downloaded model must predict identically to the service's.
	pmc := make([]float64, 10)
	for i := range pmc {
		pmc[i] = 1e9
	}
	a, am := sharedModel(t).SRR.Predict(pmc, 90)
	b, bm := local.SRR.Predict(pmc, 90)
	if a != b || am != bm {
		t.Fatalf("local model diverges: (%g,%g) vs (%g,%g)", a, am, b, bm)
	}
	// The connection stays usable for normal samples afterwards.
	v := 85.0
	if _, err := agent.Send(0, pmc, &v); err != nil {
		t.Fatal(err)
	}
}
