package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"highrpm/internal/core"
	"highrpm/internal/obs"
	"highrpm/internal/tsdb"
)

// ServiceOptions hardens the service against slow, dead, or hostile peers.
// The zero value disables every limit; DefaultServiceOptions gives the
// deployment defaults.
type ServiceOptions struct {
	// ReadTimeout is the longest the service waits between messages on one
	// connection before reaping it (0: wait forever). Agents stream
	// 1 Sa/s, so anything over a few sample intervals means the peer is
	// gone or blackholed.
	ReadTimeout time.Duration
	// WriteTimeout bounds writing one reply (0: no bound). It protects the
	// handler from a peer that stops draining its socket.
	WriteTimeout time.Duration
	// MaxFrame caps one wire frame in bytes (0: DefaultMaxFrame).
	MaxFrame int
	// MaxConns caps concurrent connections service-wide (0: unlimited);
	// excess connections are dropped at accept and counted in
	// Stats.Rejected.
	MaxConns int
}

// DefaultServiceOptions returns the deployment defaults: generous enough
// for 1 Sa/s telemetry with sparse gaps, tight enough to reap dead peers.
func DefaultServiceOptions() ServiceOptions {
	return ServiceOptions{
		ReadTimeout:  5 * time.Minute,
		WriteTimeout: time.Minute,
		MaxFrame:     DefaultMaxFrame,
		MaxConns:     0,
	}
}

// Service is the control-node HighRPM service. One trained model is shared
// by every compute node; each node gets its own streaming Monitor so power
// histories never mix. Every estimate is recorded into an embedded tsdb
// store so agents and tools can query power history (KindQuery) instead of
// only watching the live stream.
type Service struct {
	model *core.HighRPM
	store *tsdb.Store
	opts  ServiceOptions

	ln     net.Listener
	mu     sync.Mutex
	mons   map[string]*core.Monitor
	conns  map[net.Conn]string // conn -> node ID ("" before Hello)
	peak   int
	closed bool
	wg     sync.WaitGroup

	samples   atomic.Int64
	estimates atomic.Int64
	measured  atomic.Int64
	rejected  atomic.Int64
	timedOut  atomic.Int64

	// Codec and batching accounting: connections that negotiated binary,
	// frames handled per codec, and record batches with their sample count.
	binConns     atomic.Int64
	binFrames    atomic.Int64
	jsonFrames   atomic.Int64
	batches      atomic.Int64
	batchSamples atomic.Int64

	// batchHist, when set (RegisterMetrics), observes the size of each
	// record batch — the coalescing factor agents actually achieve.
	batchHist atomic.Pointer[obs.Histogram]

	// lmu guards latest, the newest estimate per node — what the obs
	// highrpm_node_power_watts gauges and dashboards read. A dedicated
	// mutex keeps the per-sample update off the connection-table lock.
	lmu    sync.Mutex
	latest map[string]LatestEstimate

	// meter, when set (RegisterMetrics), prices each estimation tick for
	// the highrpm_overhead_* self-metering series.
	meter atomic.Pointer[obs.SelfMeter]

	// Logf sinks service logs (defaults to log.Printf).
	Logf func(format string, args ...any)
}

// NewService wraps a trained model with DefaultServiceOptions. The service
// records history into a store with tsdb.DefaultOptions(); use SetStore
// before Listen to size it differently.
func NewService(model *core.HighRPM) *Service {
	return NewServiceWith(model, DefaultServiceOptions())
}

// NewServiceWith wraps a trained model with explicit robustness options.
func NewServiceWith(model *core.HighRPM, opts ServiceOptions) *Service {
	if opts.MaxFrame <= 0 {
		opts.MaxFrame = DefaultMaxFrame
	}
	return &Service{
		model: model,
		store: tsdb.New(tsdb.DefaultOptions()),
		opts:  opts,
		mons:  map[string]*core.Monitor{},
		conns: map[net.Conn]string{},
		Logf:  log.Printf,
	}
}

// NewDurableService wraps a trained model with a durable history store:
// storeOpts.Dir names the data directory and the store is opened through
// tsdb.Open, replaying any snapshot and WAL left by a previous run. The
// returned Recovery reports what was restored (and any corruption
// tolerated). Close and Shutdown drain the WAL — the store's Close
// flushes and fsyncs the live segment — so a graceful stop loses
// nothing and a crash loses at most one flush interval.
func NewDurableService(model *core.HighRPM, opts ServiceOptions, storeOpts tsdb.Options) (*Service, *tsdb.Recovery, error) {
	st, rec, err := tsdb.Open(storeOpts)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: open durable store: %w", err)
	}
	s := NewServiceWith(model, opts)
	s.store = st
	return s, rec, nil
}

// SetStore replaces the history store. Call before Listen; the previous
// store is discarded.
func (s *Service) SetStore(st *tsdb.Store) { s.store = st }

// Store exposes the history store for in-process queries (the monitor CLI
// reads stats from it; tests query it directly).
func (s *Service) Store() *tsdb.Store { return s.store }

// Options reports the robustness options the service runs with.
func (s *Service) Options() ServiceOptions { return s.opts }

// Listen starts accepting agents on addr ("host:port"; ":0" picks a free
// port). It returns immediately; Addr reports the bound address.
func (s *Service) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: listen: %w", err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound listen address.
func (s *Service) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener, terminates open agent connections immediately,
// waits for the handlers to finish, and only then closes the store — so
// every in-flight sample is flushed into the history (open rollup buckets
// are sealed) and no per-connection goroutine can write to a closed store.
// Use Shutdown for a graceful drain.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.wg.Wait()
	if cerr := s.store.Close(); err == nil {
		err = cerr
	}
	return err
}

// Shutdown drains the service gracefully: it stops accepting, lets every
// handler finish the request it is processing (replies are still written),
// reaps idle connections immediately, and force-closes whatever remains
// after grace. Like Close it seals the store last, so drained samples land
// in history.
func (s *Service) Shutdown(grace time.Duration) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	//lint:ignore maporder teardown order over the connection set is immaterial
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	// An expired read deadline unblocks handlers parked between requests
	// without cutting off a reply in flight: a handler mid-request
	// finishes computing, writes its reply (write deadlines are separate),
	// and exits on its next read.
	now := time.Now()
	for _, c := range conns {
		c.SetReadDeadline(now)
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(grace):
		s.mu.Lock()
		for c := range s.conns {
			_ = c.Close()
		}
		s.mu.Unlock()
		<-done
	}
	if cerr := s.store.Close(); err == nil {
		err = cerr
	}
	return err
}

// track registers a live connection; it reports false when the service is
// already closing or at its MaxConns cap and the connection should be
// dropped immediately.
func (s *Service) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if s.opts.MaxConns > 0 && len(s.conns) >= s.opts.MaxConns {
		s.rejected.Add(1)
		return false
	}
	s.conns[conn] = ""
	if len(s.conns) > s.peak {
		s.peak = len(s.conns)
	}
	return true
}

func (s *Service) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// identify binds a connection to the node that said Hello on it, for the
// per-node accounting in Stats.
func (s *Service) identify(conn net.Conn, nodeID string) {
	s.mu.Lock()
	if _, ok := s.conns[conn]; ok {
		s.conns[conn] = nodeID
	}
	s.mu.Unlock()
}

func (s *Service) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Service) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if !s.isClosed() {
				s.Logf("cluster: accept: %v", err)
			}
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if err := s.handle(conn); err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.Logf("cluster: connection %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// monitorFor returns the per-node monitor, creating it on first use.
func (s *Service) monitorFor(nodeID string) *core.Monitor {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.mons[nodeID]
	if !ok {
		m = core.NewMonitor(s.model)
		s.mons[nodeID] = m
	}
	return m
}

func (s *Service) handle(conn net.Conn) error {
	defer conn.Close()
	if !s.track(conn) {
		return nil
	}
	defer s.untrack(conn)
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		if s.opts.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.opts.ReadTimeout))
		}
		env, err := ReadMsgLimit(r, s.opts.MaxFrame)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() && !s.isClosed() {
				s.timedOut.Add(1)
			}
			return err
		}
		if s.opts.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
		}
		s.jsonFrames.Add(1)
		switch env.Kind {
		case KindHello:
			var h Hello
			if err := DecodeBody(env, &h); err != nil {
				return err
			}
			s.monitorFor(h.NodeID)
			s.identify(conn, h.NodeID)
			reply := Hello{NodeID: h.NodeID}
			for _, c := range h.Codecs {
				if c == CodecBinary {
					reply.Codec = CodecBinary
					break
				}
			}
			if err := WriteMsg(w, KindHello, reply); err != nil {
				return err
			}
			if reply.Codec == CodecBinary {
				// Handshake settled on binary: flush the JSON reply and hand
				// the connection to the binary loop for good.
				if err := w.Flush(); err != nil {
					return err
				}
				return s.handleBinary(conn, newBinFramer(r, w, s.opts.MaxFrame))
			}
		case KindSample:
			var smp Sample
			if err := DecodeBody(env, &smp); err != nil {
				return err
			}
			out, err := s.processSample(smp.NodeID, smp.Time, smp.PMC, smp.Measured)
			if err != nil {
				if werr := WriteMsg(w, KindError, ErrorBody{Message: err.Error()}); werr != nil {
					return werr
				}
				break
			}
			if err := WriteMsg(w, KindEstimate, out); err != nil {
				return err
			}
		case KindRecordBatch:
			var rb RecordBatch
			if err := DecodeBody(env, &rb); err != nil {
				return err
			}
			ests, err := s.processBatch(&rb, nil)
			if err != nil {
				if werr := WriteMsg(w, KindError, ErrorBody{Message: err.Error()}); werr != nil {
					return werr
				}
				break
			}
			if err := WriteMsg(w, KindEstimateBatch, EstimateBatch{Estimates: ests}); err != nil {
				return err
			}
		case KindStats:
			if err := WriteMsg(w, KindStats, s.Stats()); err != nil {
				return err
			}
		case KindQuery:
			var q QueryRequest
			if err := DecodeBody(env, &q); err != nil {
				return err
			}
			body, err := s.answerQuery(q)
			if err != nil {
				if werr := WriteMsg(w, KindError, ErrorBody{Message: err.Error()}); werr != nil {
					return werr
				}
				break
			}
			if err := WriteMsg(w, KindSeries, body); err != nil {
				if errors.Is(err, ErrFrameTooLarge) {
					// Nothing was written yet; tell the agent to narrow
					// the window instead of killing the connection.
					if werr := WriteMsg(w, KindError, ErrorBody{Message: "series reply too large; narrow the query window or coarsen the resolution"}); werr != nil {
						return werr
					}
					break
				}
				return err
			}
		case KindModel:
			data, err := core.Marshal(s.model)
			if err != nil {
				if werr := WriteMsg(w, KindError, ErrorBody{Message: err.Error()}); werr != nil {
					return werr
				}
				break
			}
			if err := WriteMsg(w, KindModel, ModelBody{Data: data}); err != nil {
				return err
			}
		default:
			if err := WriteMsg(w, KindError, ErrorBody{Message: fmt.Sprintf("unknown kind %q", env.Kind)}); err != nil {
				return err
			}
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
}

// handleBinary serves one connection after its Hello negotiated the binary
// codec. The hot kinds (sample, batch, query) decode and reply natively on
// the framer's scratch; everything else arrives as a JSON envelope inside
// a binKindJSON frame and is answered the same way.
func (s *Service) handleBinary(conn net.Conn, f *binFramer) error {
	s.binConns.Add(1)
	var ests []Estimate // reused batch-reply scratch
	for {
		if s.opts.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.opts.ReadTimeout))
		}
		kind, payload, err := f.readFrame()
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() && !s.isClosed() {
				s.timedOut.Add(1)
			}
			return err
		}
		if s.opts.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
		}
		s.binFrames.Add(1)
		switch kind {
		case binKindSample:
			smp, err := f.readSample(payload)
			if err != nil {
				return err
			}
			out, perr := s.processSample(smp.NodeID, smp.Time, smp.PMC, smp.Measured)
			if perr != nil {
				if werr := f.writeError(perr.Error()); werr != nil {
					return werr
				}
				break
			}
			if err := f.writeEstimate(&out); err != nil {
				return err
			}
		case binKindRecordBatch:
			rb, err := f.readRecordBatch(payload)
			if err != nil {
				return err
			}
			ests, err = s.processBatch(rb, ests[:0])
			if err != nil {
				if werr := f.writeError(err.Error()); werr != nil {
					return werr
				}
				break
			}
			if err := f.writeEstimateBatch(ests); err != nil {
				return err
			}
		case binKindQuery:
			q, err := f.readQuery(payload)
			if err != nil {
				return err
			}
			body, qerr := s.answerQuery(q)
			if qerr != nil {
				if werr := f.writeError(qerr.Error()); werr != nil {
					return werr
				}
				break
			}
			if err := f.writeSeries(body); err != nil {
				if errors.Is(err, ErrFrameTooLarge) {
					// Nothing was written yet (the frame is built before the
					// length prefix goes out); tell the agent to narrow the
					// window instead of killing the connection.
					if werr := f.writeError("series reply too large; narrow the query window or coarsen the resolution"); werr != nil {
						return werr
					}
					break
				}
				return err
			}
		case binKindJSON:
			env, err := readJSONEnvelope(payload)
			if err != nil {
				return err
			}
			if err := s.handleEnvelopeBinary(f, env); err != nil {
				return err
			}
		default:
			if err := f.writeError(fmt.Sprintf("unknown binary kind %d", kind)); err != nil {
				return err
			}
		}
		if err := f.w.Flush(); err != nil {
			return err
		}
	}
}

// handleEnvelopeBinary answers the JSON-wrapped kinds on a binary
// connection (stats, model, a redundant hello); replies travel wrapped the
// same way so the agent's envelope reader stays symmetric.
func (s *Service) handleEnvelopeBinary(f *binFramer, env Envelope) error {
	switch env.Kind {
	case KindHello:
		var h Hello
		if err := DecodeBody(env, &h); err != nil {
			return err
		}
		s.monitorFor(h.NodeID)
		return f.writeJSONEnvelope(KindHello, Hello{NodeID: h.NodeID, Codec: CodecBinary})
	case KindStats:
		return f.writeJSONEnvelope(KindStats, s.Stats())
	case KindModel:
		data, err := core.Marshal(s.model)
		if err != nil {
			return f.writeJSONEnvelope(KindError, ErrorBody{Message: err.Error()})
		}
		return f.writeJSONEnvelope(KindModel, ModelBody{Data: data})
	default:
		return f.writeJSONEnvelope(KindError, ErrorBody{Message: fmt.Sprintf("unknown kind %q", env.Kind)})
	}
}

// processSample runs one second of telemetry through the per-node monitor
// and into the history store — the one path every framing (JSON, binary,
// batched) funnels into. It borrows pmc only for the call.
func (s *Service) processSample(nodeID string, tm float64, pmc []float64, measured *float64) (Estimate, error) {
	s.samples.Add(1)
	if measured != nil {
		s.measured.Add(1)
	}
	mon := s.monitorFor(nodeID)
	// One estimation tick — model inference plus the history record — is
	// the unit the overhead self-metering prices.
	tickDone := s.meter.Load().Tick()
	est, err := mon.Push(pmc, measured)
	if err != nil {
		tickDone()
		return Estimate{}, err
	}
	s.estimates.Add(1)
	s.record(Sample{NodeID: nodeID, Time: tm, PMC: pmc, Measured: measured}, est)
	tickDone()
	return Estimate{
		NodeID: nodeID, Time: tm,
		PNode: est.PNode, PCPU: est.PCPU, PMEM: est.PMEM,
		FromMeasurement: est.FromMeasurement,
	}, nil
}

// processBatch runs a record batch through processSample in order,
// appending the estimates to dst (reused by the binary loop). A batch is
// all-or-nothing on the wire: the first rejected sample fails the whole
// batch and none of the estimates are sent — but the samples before it
// were already recorded, exactly as if they had been sent individually and
// the connection then broke.
func (s *Service) processBatch(rb *RecordBatch, dst []Estimate) ([]Estimate, error) {
	s.batches.Add(1)
	s.batchSamples.Add(int64(len(rb.Samples)))
	if h := s.batchHist.Load(); h != nil {
		h.Observe(float64(len(rb.Samples)))
	}
	for i := range rb.Samples {
		bs := &rb.Samples[i]
		est, err := s.processSample(rb.NodeID, bs.Time, bs.PMC, bs.Measured)
		if err != nil {
			return dst, fmt.Errorf("batch sample %d (t=%g): %w", i, bs.Time, err)
		}
		dst = append(dst, est)
	}
	return dst, nil
}

// record stores one estimate into the history store. An ErrClosed during
// shutdown is expected (Close is racing the last samples); anything else
// is logged but never fails the connection — history is best-effort,
// estimates are not.
func (s *Service) record(smp Sample, est core.MonitorEstimate) {
	ipmi := math.NaN()
	if smp.Measured != nil {
		ipmi = *smp.Measured
	}
	s.lmu.Lock()
	if s.latest == nil {
		s.latest = map[string]LatestEstimate{}
	}
	s.latest[smp.NodeID] = LatestEstimate{
		Time:            smp.Time,
		PNode:           est.PNode,
		PCPU:            est.PCPU,
		PMEM:            est.PMEM,
		PNodePrime:      est.PNodePrime,
		IPMI:            ipmi,
		FromMeasurement: est.FromMeasurement,
	}
	s.lmu.Unlock()
	err := s.store.Ingest(smp.NodeID, smp.Time, tsdb.Sample{
		PNode:      est.PNode,
		PCPU:       est.PCPU,
		PMEM:       est.PMEM,
		PNodePrime: est.PNodePrime,
		IPMI:       ipmi,
	})
	if err != nil && !errors.Is(err, tsdb.ErrClosed) {
		s.Logf("cluster: store ingest %s: %v", smp.NodeID, err)
	}
}

// answerQuery resolves a KindQuery against the store, through the same
// tsdb.QuerySeries path the obs HTTP endpoints use — one code path, one
// JSON encoding.
func (s *Service) answerQuery(q QueryRequest) (SeriesBody, error) {
	return s.store.QuerySeries(q.NodeID, q.Channel, q.From, q.To, q.ResolutionS)
}

// LatestEstimate is the newest restored power the service computed for
// one node — what the per-node power gauges export.
type LatestEstimate struct {
	Time            float64
	PNode           float64
	PCPU            float64
	PMEM            float64
	PNodePrime      float64
	IPMI            float64 // NaN when the sample carried no IM reading
	FromMeasurement bool
}

// LatestEstimates snapshots the newest estimate per node (a copy; safe to
// range without holding service locks).
func (s *Service) LatestEstimates() map[string]LatestEstimate {
	s.lmu.Lock()
	defer s.lmu.Unlock()
	out := make(map[string]LatestEstimate, len(s.latest))
	for k, v := range s.latest {
		out[k] = v
	}
	return out
}

// Stats snapshots service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	nodes := len(s.mons)
	conns := len(s.conns)
	peak := s.peak
	var nodeConns map[string]int
	for _, id := range s.conns {
		if id == "" {
			continue
		}
		if nodeConns == nil {
			nodeConns = map[string]int{}
		}
		nodeConns[id]++
	}
	s.mu.Unlock()
	return Stats{
		Nodes:        nodes,
		Samples:      s.samples.Load(),
		Estimates:    s.estimates.Load(),
		Measured:     s.measured.Load(),
		Conns:        conns,
		PeakConns:    peak,
		Rejected:     s.rejected.Load(),
		TimedOut:     s.timedOut.Load(),
		NodeConns:    nodeConns,
		BinConns:     s.binConns.Load(),
		BinFrames:    s.binFrames.Load(),
		JSONFrames:   s.jsonFrames.Load(),
		Batches:      s.batches.Load(),
		BatchSamples: s.batchSamples.Load(),
		Store:        s.store.Stats(),
	}
}
