package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"

	"highrpm/internal/core"
)

// Service is the control-node HighRPM service. One trained model is shared
// by every compute node; each node gets its own streaming Monitor so power
// histories never mix.
type Service struct {
	model *core.HighRPM

	ln     net.Listener
	mu     sync.Mutex
	mons   map[string]*core.Monitor
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	samples   atomic.Int64
	estimates atomic.Int64
	measured  atomic.Int64

	// Logf sinks service logs (defaults to log.Printf).
	Logf func(format string, args ...any)
}

// NewService wraps a trained model.
func NewService(model *core.HighRPM) *Service {
	return &Service{
		model: model,
		mons:  map[string]*core.Monitor{},
		conns: map[net.Conn]struct{}{},
		Logf:  log.Printf,
	}
}

// Listen starts accepting agents on addr ("host:port"; ":0" picks a free
// port). It returns immediately; Addr reports the bound address.
func (s *Service) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: listen: %w", err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound listen address.
func (s *Service) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener, terminates open agent connections, and waits
// for the handlers to finish.
func (s *Service) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.wg.Wait()
	return err
}

// track registers a live connection; it reports false when the service is
// already closing and the connection should be dropped immediately.
func (s *Service) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Service) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *Service) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if !closed {
				s.Logf("cluster: accept: %v", err)
			}
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if err := s.handle(conn); err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.Logf("cluster: connection %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// monitorFor returns the per-node monitor, creating it on first use.
func (s *Service) monitorFor(nodeID string) *core.Monitor {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.mons[nodeID]
	if !ok {
		m = core.NewMonitor(s.model)
		s.mons[nodeID] = m
	}
	return m
}

func (s *Service) handle(conn net.Conn) error {
	defer conn.Close()
	if !s.track(conn) {
		return nil
	}
	defer s.untrack(conn)
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		env, err := ReadMsg(r)
		if err != nil {
			return err
		}
		switch env.Kind {
		case KindHello:
			var h Hello
			if err := DecodeBody(env, &h); err != nil {
				return err
			}
			s.monitorFor(h.NodeID)
			if err := WriteMsg(w, KindHello, h); err != nil {
				return err
			}
		case KindSample:
			var smp Sample
			if err := DecodeBody(env, &smp); err != nil {
				return err
			}
			s.samples.Add(1)
			if smp.Measured != nil {
				s.measured.Add(1)
			}
			mon := s.monitorFor(smp.NodeID)
			est, err := mon.Push(smp.PMC, smp.Measured)
			if err != nil {
				if werr := WriteMsg(w, KindError, ErrorBody{Message: err.Error()}); werr != nil {
					return werr
				}
				break
			}
			s.estimates.Add(1)
			out := Estimate{
				NodeID: smp.NodeID, Time: smp.Time,
				PNode: est.PNode, PCPU: est.PCPU, PMEM: est.PMEM,
				FromMeasurement: est.FromMeasurement,
			}
			if err := WriteMsg(w, KindEstimate, out); err != nil {
				return err
			}
		case KindStats:
			if err := WriteMsg(w, KindStats, s.Stats()); err != nil {
				return err
			}
		case KindModel:
			data, err := core.Marshal(s.model)
			if err != nil {
				if werr := WriteMsg(w, KindError, ErrorBody{Message: err.Error()}); werr != nil {
					return werr
				}
				break
			}
			if err := WriteMsg(w, KindModel, ModelBody{Data: data}); err != nil {
				return err
			}
		default:
			if err := WriteMsg(w, KindError, ErrorBody{Message: fmt.Sprintf("unknown kind %q", env.Kind)}); err != nil {
				return err
			}
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
}

// Stats snapshots service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	nodes := len(s.mons)
	s.mu.Unlock()
	return Stats{
		Nodes:     nodes,
		Samples:   s.samples.Load(),
		Estimates: s.estimates.Load(),
		Measured:  s.measured.Load(),
	}
}
