package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"sync"
	"sync/atomic"

	"highrpm/internal/core"
	"highrpm/internal/tsdb"
)

// Service is the control-node HighRPM service. One trained model is shared
// by every compute node; each node gets its own streaming Monitor so power
// histories never mix. Every estimate is recorded into an embedded tsdb
// store so agents and tools can query power history (KindQuery) instead of
// only watching the live stream.
type Service struct {
	model *core.HighRPM
	store *tsdb.Store

	ln     net.Listener
	mu     sync.Mutex
	mons   map[string]*core.Monitor
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	samples   atomic.Int64
	estimates atomic.Int64
	measured  atomic.Int64

	// Logf sinks service logs (defaults to log.Printf).
	Logf func(format string, args ...any)
}

// NewService wraps a trained model. The service records history into a
// store with tsdb.DefaultOptions(); use SetStore before Listen to size it
// differently.
func NewService(model *core.HighRPM) *Service {
	return &Service{
		model: model,
		store: tsdb.New(tsdb.DefaultOptions()),
		mons:  map[string]*core.Monitor{},
		conns: map[net.Conn]struct{}{},
		Logf:  log.Printf,
	}
}

// SetStore replaces the history store. Call before Listen; the previous
// store is discarded.
func (s *Service) SetStore(st *tsdb.Store) { s.store = st }

// Store exposes the history store for in-process queries (the monitor CLI
// reads stats from it; tests query it directly).
func (s *Service) Store() *tsdb.Store { return s.store }

// Listen starts accepting agents on addr ("host:port"; ":0" picks a free
// port). It returns immediately; Addr reports the bound address.
func (s *Service) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: listen: %w", err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound listen address.
func (s *Service) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener, terminates open agent connections, waits for
// the handlers to finish, and only then closes the store — so every
// in-flight sample is flushed into the history (open rollup buckets are
// sealed) and no per-connection goroutine can write to a closed store.
func (s *Service) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.wg.Wait()
	s.store.Close()
	return err
}

// track registers a live connection; it reports false when the service is
// already closing and the connection should be dropped immediately.
func (s *Service) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Service) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *Service) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if !closed {
				s.Logf("cluster: accept: %v", err)
			}
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if err := s.handle(conn); err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.Logf("cluster: connection %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// monitorFor returns the per-node monitor, creating it on first use.
func (s *Service) monitorFor(nodeID string) *core.Monitor {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.mons[nodeID]
	if !ok {
		m = core.NewMonitor(s.model)
		s.mons[nodeID] = m
	}
	return m
}

func (s *Service) handle(conn net.Conn) error {
	defer conn.Close()
	if !s.track(conn) {
		return nil
	}
	defer s.untrack(conn)
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		env, err := ReadMsg(r)
		if err != nil {
			return err
		}
		switch env.Kind {
		case KindHello:
			var h Hello
			if err := DecodeBody(env, &h); err != nil {
				return err
			}
			s.monitorFor(h.NodeID)
			if err := WriteMsg(w, KindHello, h); err != nil {
				return err
			}
		case KindSample:
			var smp Sample
			if err := DecodeBody(env, &smp); err != nil {
				return err
			}
			s.samples.Add(1)
			if smp.Measured != nil {
				s.measured.Add(1)
			}
			mon := s.monitorFor(smp.NodeID)
			est, err := mon.Push(smp.PMC, smp.Measured)
			if err != nil {
				if werr := WriteMsg(w, KindError, ErrorBody{Message: err.Error()}); werr != nil {
					return werr
				}
				break
			}
			s.estimates.Add(1)
			s.record(smp, est)
			out := Estimate{
				NodeID: smp.NodeID, Time: smp.Time,
				PNode: est.PNode, PCPU: est.PCPU, PMEM: est.PMEM,
				FromMeasurement: est.FromMeasurement,
			}
			if err := WriteMsg(w, KindEstimate, out); err != nil {
				return err
			}
		case KindStats:
			if err := WriteMsg(w, KindStats, s.Stats()); err != nil {
				return err
			}
		case KindQuery:
			var q QueryRequest
			if err := DecodeBody(env, &q); err != nil {
				return err
			}
			body, err := s.answerQuery(q)
			if err != nil {
				if werr := WriteMsg(w, KindError, ErrorBody{Message: err.Error()}); werr != nil {
					return werr
				}
				break
			}
			if err := WriteMsg(w, KindSeries, body); err != nil {
				return err
			}
		case KindModel:
			data, err := core.Marshal(s.model)
			if err != nil {
				if werr := WriteMsg(w, KindError, ErrorBody{Message: err.Error()}); werr != nil {
					return werr
				}
				break
			}
			if err := WriteMsg(w, KindModel, ModelBody{Data: data}); err != nil {
				return err
			}
		default:
			if err := WriteMsg(w, KindError, ErrorBody{Message: fmt.Sprintf("unknown kind %q", env.Kind)}); err != nil {
				return err
			}
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
}

// record stores one estimate into the history store. An ErrClosed during
// shutdown is expected (Close is racing the last samples); anything else
// is logged but never fails the connection — history is best-effort,
// estimates are not.
func (s *Service) record(smp Sample, est core.MonitorEstimate) {
	ipmi := math.NaN()
	if smp.Measured != nil {
		ipmi = *smp.Measured
	}
	err := s.store.Ingest(smp.NodeID, smp.Time, tsdb.Sample{
		PNode:      est.PNode,
		PCPU:       est.PCPU,
		PMEM:       est.PMEM,
		PNodePrime: est.PNodePrime,
		IPMI:       ipmi,
	})
	if err != nil && !errors.Is(err, tsdb.ErrClosed) {
		s.Logf("cluster: store ingest %s: %v", smp.NodeID, err)
	}
}

// answerQuery resolves a KindQuery against the store.
func (s *Service) answerQuery(q QueryRequest) (SeriesBody, error) {
	res, err := tsdb.ParseResolution(q.ResolutionS)
	if err != nil {
		return SeriesBody{}, err
	}
	var pts []tsdb.Point
	if q.NodeID == "" {
		pts, err = s.store.Aggregate(tsdb.Channel(q.Channel), q.From, q.To, res)
	} else {
		pts, err = s.store.Query(q.NodeID, tsdb.Channel(q.Channel), q.From, q.To, res)
	}
	if err != nil {
		return SeriesBody{}, err
	}
	return SeriesBody{
		NodeID:      q.NodeID,
		Channel:     q.Channel,
		ResolutionS: int(res),
		Points:      toSeriesPoints(pts),
	}, nil
}

// Stats snapshots service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	nodes := len(s.mons)
	s.mu.Unlock()
	return Stats{
		Nodes:     nodes,
		Samples:   s.samples.Load(),
		Estimates: s.estimates.Load(),
		Measured:  s.measured.Load(),
		Store:     s.store.Stats(),
	}
}
