package cluster

import (
	"sort"
	"sync"

	"highrpm/internal/obs"
)

// This file wires the cluster layer into the obs subsystem: service and
// store counters, the per-node highrpm_node_power_watts gauges fed from
// the latest TRR/SRR estimates, the overhead self-meter on the estimation
// tick, and the ResilientAgent mode/counter gauges.

// powerComponents maps the LatestEstimate fields onto the component label
// of highrpm_node_power_watts, in exposition order.
var powerComponents = []string{"cpu", "ipmi", "mem", "node", "node_prime"}

// RegisterMetrics exports the service onto reg: Stats counters, store
// stats, per-node power gauges, and the highrpm_overhead_* self-metering
// of the estimation tick. Gauges are refreshed from one Stats snapshot
// per scrape via the registry's gather hook. Call once, before or after
// Listen; the meter attaches atomically.
func (s *Service) RegisterMetrics(reg *obs.Registry) {
	s.meter.Store(obs.NewSelfMeter(reg))

	nodes := reg.Gauge("highrpm_service_nodes", "Nodes with a live monitor on the service.")
	samples := reg.Counter("highrpm_service_samples_total", "Telemetry samples received.")
	estimates := reg.Counter("highrpm_service_estimates_total", "Estimates computed and answered.")
	measured := reg.Counter("highrpm_service_measured_total", "Samples that carried an IM (IPMI) reading.")
	conns := reg.Gauge("highrpm_service_connections", "Live agent connections.")
	peak := reg.Gauge("highrpm_service_connections_peak", "Highwater mark of live connections.")
	rejected := reg.Counter("highrpm_service_rejected_total", "Connections dropped at accept by the MaxConns cap.")
	timedOut := reg.Counter("highrpm_service_timed_out_total", "Connections reaped by the read deadline.")

	binConns := reg.Counter("highrpm_service_binary_connections_total", "Connections that negotiated the binary codec.")
	frames := reg.CounterVec("highrpm_service_frames_total", "Requests handled, by wire codec.", "codec")
	batches := reg.Counter("highrpm_service_batches_total", "Record batches handled.")
	batchSamples := reg.Counter("highrpm_service_batch_samples_total", "Samples delivered inside record batches.")
	batchHist := reg.Histogram("highrpm_service_batch_size",
		"Samples per record batch (the coalescing factor agents achieve).",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256})
	s.batchHist.Store(&batchHist)

	storeNodes := reg.Gauge("highrpm_store_nodes", "Nodes with recorded history.")
	storeSeries := reg.Gauge("highrpm_store_series", "Raw series retained (channels x nodes).")
	storePoints := reg.Gauge("highrpm_store_points", "Raw points currently retained.")
	storeBytes := reg.Gauge("highrpm_store_bytes", "Compressed footprint including rollups.")
	storeRatio := reg.Gauge("highrpm_store_compression_ratio", "16 B baseline over compressed bytes per raw point.")
	storeIngested := reg.Counter("highrpm_store_ingested_samples_total", "Samples ingested into the history store.")
	storeQueries := reg.Counter("highrpm_store_queries_total", "Per-series reads served by the store.")
	storePointsOut := reg.Counter("highrpm_store_points_returned_total", "Points returned by store reads.")
	storeEvicted := reg.Counter("highrpm_store_evicted_points_total", "Raw and rollup points dropped by retention.")
	cacheHits := reg.Counter("highrpm_store_cache_hits_total", "Decoded-block cache hits on sealed-block reads.")
	cacheMisses := reg.Counter("highrpm_store_cache_misses_total", "Decoded-block cache misses (block decoded and inserted).")
	cachePoints := reg.Gauge("highrpm_store_cache_points", "Decoded points currently held by the block cache.")

	walBytes := reg.Counter("highrpm_store_wal_bytes_total", "Bytes appended to the write-ahead log since open (0 on in-memory stores).")
	walFsyncs := reg.Counter("highrpm_store_wal_fsyncs_total", "fsync calls issued by the write-ahead log.")
	walRecords := reg.Counter("highrpm_store_wal_records_total", "Records appended to the write-ahead log since open.")
	walReplayed := reg.Gauge("highrpm_store_wal_replayed_records", "WAL records replayed into the store at startup recovery.")
	snapshots := reg.Counter("highrpm_store_snapshots_total", "Snapshots written since open.")
	snapshotAge := reg.Gauge("highrpm_store_snapshot_age_seconds", "Seconds since the newest snapshot was written (-1 when none exists).")

	power := reg.GaugeVec("highrpm_node_power_watts",
		"Latest restored power per node: component=node is the TRR estimate, cpu/mem the SRR split, node_prime the trend feature, ipmi the last IM reading (NaN between readings).",
		"node", "component")
	measuredFlag := reg.GaugeVec("highrpm_node_from_measurement",
		"1 when the node's latest estimate is an IM reading, 0 when it is a model prediction.", "node")

	reg.OnGather(func() {
		st := s.Stats()
		nodes.Set(float64(st.Nodes))
		samples.Set(float64(st.Samples))
		estimates.Set(float64(st.Estimates))
		measured.Set(float64(st.Measured))
		conns.Set(float64(st.Conns))
		peak.Set(float64(st.PeakConns))
		rejected.Set(float64(st.Rejected))
		timedOut.Set(float64(st.TimedOut))

		binConns.Set(float64(st.BinConns))
		frames.With("binary").Set(float64(st.BinFrames))
		frames.With("json").Set(float64(st.JSONFrames))
		batches.Set(float64(st.Batches))
		batchSamples.Set(float64(st.BatchSamples))

		storeNodes.Set(float64(st.Store.Nodes))
		storeSeries.Set(float64(st.Store.Series))
		storePoints.Set(float64(st.Store.Points))
		storeBytes.Set(float64(st.Store.Bytes))
		storeRatio.Set(st.Store.CompressionRatio)
		storeIngested.Set(float64(st.Store.Ingested))
		storeQueries.Set(float64(st.Store.Queries))
		storePointsOut.Set(float64(st.Store.PointsReturned))
		storeEvicted.Set(float64(st.Store.EvictedPoints))
		cacheHits.Set(float64(st.Store.CacheHits))
		cacheMisses.Set(float64(st.Store.CacheMisses))
		cachePoints.Set(float64(st.Store.CachePoints))

		walBytes.Set(float64(st.Store.WALBytes))
		walFsyncs.Set(float64(st.Store.WALFsyncs))
		walRecords.Set(float64(st.Store.WALRecords))
		walReplayed.Set(float64(st.Store.ReplayedRecords))
		snapshots.Set(float64(st.Store.Snapshots))
		snapshotAge.Set(st.Store.SnapshotAgeSeconds)

		latest := s.LatestEstimates()
		ids := make([]string, 0, len(latest))
		for id := range latest {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			est := latest[id]
			vals := map[string]float64{
				"cpu": est.PCPU, "ipmi": est.IPMI, "mem": est.PMEM,
				"node": est.PNode, "node_prime": est.PNodePrime,
			}
			for _, comp := range powerComponents {
				power.With(id, comp).Set(vals[comp])
			}
			flag := 0.0
			if est.FromMeasurement {
				flag = 1
			}
			measuredFlag.With(id).Set(flag)
		}
	})
}

// Health reports the service's readiness for the obs /readyz probe:
// ready while the listener is up and the service has not been closed.
func (s *Service) Health() obs.Health {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed || s.ln == nil {
		return obs.Health{Ready: false, Detail: "service not listening"}
	}
	return obs.Health{Ready: true}
}

// AgentMetrics exports ResilientAgent activity as per-node gauges.
// ResilientAgent is single-goroutine by contract, so it cannot publish
// its own counters safely; instead each node loop calls Observe after a
// Send and the snapshot lands in gauges (atomic cells) that any scrape
// can read. Degraded state is additionally tracked for the ready-but-
// degraded /readyz posture.
type AgentMetrics struct {
	mode        obs.GaugeVec
	sent        obs.GaugeVec
	localServed obs.GaugeVec
	buffered    obs.GaugeVec
	replayed    obs.GaugeVec
	dropped     obs.GaugeVec
	reconnects  obs.GaugeVec
	sendFails   obs.GaugeVec
	degrads     obs.GaugeVec
	pending     obs.GaugeVec

	mu       sync.Mutex
	degraded map[string]bool
}

// NewAgentMetrics registers the highrpm_agent_* gauges on reg.
func NewAgentMetrics(reg *obs.Registry) *AgentMetrics {
	return &AgentMetrics{
		mode: reg.GaugeVec("highrpm_agent_mode",
			"Agent serving mode: 0 connected, 1 degraded (local estimates, samples buffered).", "node"),
		sent:        reg.GaugeVec("highrpm_agent_sent_total", "Samples acknowledged by the service live.", "node"),
		localServed: reg.GaugeVec("highrpm_agent_local_served_total", "Estimates answered from the local model snapshot.", "node"),
		buffered:    reg.GaugeVec("highrpm_agent_buffered_total", "Samples queued for replay (cumulative).", "node"),
		replayed:    reg.GaugeVec("highrpm_agent_replayed_total", "Buffered samples later acknowledged by the service.", "node"),
		dropped:     reg.GaugeVec("highrpm_agent_dropped_total", "Buffered samples lost to the buffer cap.", "node"),
		reconnects:  reg.GaugeVec("highrpm_agent_reconnects_total", "Successful re-dials (Hello + model resync).", "node"),
		sendFails:   reg.GaugeVec("highrpm_agent_send_failures_total", "Network round trips that errored or timed out.", "node"),
		degrads:     reg.GaugeVec("highrpm_agent_degradations_total", "Connected-to-degraded flips.", "node"),
		pending:     reg.GaugeVec("highrpm_agent_pending", "Buffered samples still awaiting replay.", "node"),
		degraded:    map[string]bool{},
	}
}

// Observe publishes one agent's current mode and counters. Call it from
// the goroutine that owns the agent (e.g. after each Send).
func (am *AgentMetrics) Observe(ra *ResilientAgent) {
	node := ra.NodeID()
	mode := ra.Mode()
	c := ra.Counters()
	var m float64
	if mode == ModeDegraded {
		m = 1
	}
	am.mode.With(node).Set(m)
	am.sent.With(node).Set(float64(c.Sent))
	am.localServed.With(node).Set(float64(c.LocalServed))
	am.buffered.With(node).Set(float64(c.Buffered))
	am.replayed.With(node).Set(float64(c.Replayed))
	am.dropped.With(node).Set(float64(c.Dropped))
	am.reconnects.With(node).Set(float64(c.Reconnects))
	am.sendFails.With(node).Set(float64(c.SendFailures))
	am.degrads.With(node).Set(float64(c.Degradations))
	am.pending.With(node).Set(float64(ra.Pending()))
	am.mu.Lock()
	am.degraded[node] = mode == ModeDegraded
	am.mu.Unlock()
}

// AnyDegraded reports whether any observed agent is currently degraded —
// the input to the ready-but-degraded /readyz answer.
func (am *AgentMetrics) AnyDegraded() bool {
	am.mu.Lock()
	defer am.mu.Unlock()
	for _, d := range am.degraded {
		if d {
			return true
		}
	}
	return false
}
