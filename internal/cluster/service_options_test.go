package cluster

import (
	"net"
	"testing"
	"time"

	"highrpm/internal/tsdb"
)

// TestServiceReadTimeoutReapsIdle: a peer that connects and goes silent is
// reaped by the per-connection read deadline and counted in Stats.
func TestServiceReadTimeoutReapsIdle(t *testing.T) {
	checkNoLeaks(t)
	svc := startServiceWith(t, ServiceOptions{ReadTimeout: 100 * time.Millisecond})
	conn, err := net.Dial("tcp", svc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Say nothing. The service must hang up on us.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("silent connection not reaped")
	}
	waitFor(t, func() bool { return svc.Stats().TimedOut == 1 && svc.Stats().Conns == 0 })
}

// TestServiceMaxConns: connections beyond the cap are dropped at accept
// and counted; a freed slot is reusable.
func TestServiceMaxConns(t *testing.T) {
	checkNoLeaks(t)
	svc := startServiceWith(t, ServiceOptions{MaxConns: 1})
	first, err := Dial(svc.Addr(), "holder")
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	if _, err := Dial(svc.Addr(), "excess"); err == nil {
		t.Fatal("second connection admitted past MaxConns=1")
	}
	waitFor(t, func() bool { return svc.Stats().Rejected == 1 })
	if st := svc.Stats(); st.Conns != 1 || st.PeakConns != 1 {
		t.Fatalf("conn accounting = %+v", st)
	}
	// Release the slot; the next agent must get in.
	first.Close()
	waitFor(t, func() bool { return svc.Stats().Conns == 0 })
	second, err := Dial(svc.Addr(), "retry")
	if err != nil {
		t.Fatalf("slot not released: %v", err)
	}
	second.Close()
}

// TestServiceStatsNodeConns: Stats maps node IDs to their live connection
// counts once agents have said Hello.
func TestServiceStatsNodeConns(t *testing.T) {
	checkNoLeaks(t)
	svc := startService(t)
	a, err := Dial(svc.Addr(), "nc-a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b1, err := Dial(svc.Addr(), "nc-b")
	if err != nil {
		t.Fatal(err)
	}
	defer b1.Close()
	b2, err := Dial(svc.Addr(), "nc-b")
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	st := svc.Stats()
	if st.Conns != 3 || st.PeakConns != 3 {
		t.Fatalf("conns = %+v", st)
	}
	if st.NodeConns["nc-a"] != 1 || st.NodeConns["nc-b"] != 2 {
		t.Fatalf("node conns = %+v", st.NodeConns)
	}
}

// TestServiceShutdownDrains: Shutdown answers the in-flight request, then
// lets the handler go; the drained sample is flushed into the store.
func TestServiceShutdownDrains(t *testing.T) {
	checkNoLeaks(t)
	svc := NewService(sharedModel(t))
	svc.Logf = t.Logf
	if err := svc.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	agent, err := Dial(svc.Addr(), "drainee")
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	streamSamples(t, agent, 5, 10, 13)

	done := make(chan error, 1)
	go func() { done <- svc.Shutdown(5 * time.Second) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown hung with an idle agent connected")
	}
	// The drained samples are sealed into the now read-only store.
	pts, err := svc.Store().Query("drainee", tsdb.ChanPNode, 0, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("store kept %d points, want 5", len(pts))
	}
	// Idempotent with Close.
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
}

// waitFor polls cond for up to 5 s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
