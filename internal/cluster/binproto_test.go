package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"net"
	"testing"
)

// pipeFramer builds a framer whose writes land in buf (read side unset;
// tests wire it per use).
func pipeFramer(buf *bytes.Buffer) *binFramer {
	return newBinFramer(bufio.NewReader(bytes.NewReader(nil)), bufio.NewWriter(buf), DefaultMaxFrame)
}

// encodeBinFrame encodes one message through the framer's write methods and
// returns the complete frame bytes (length prefix included).
func encodeBinFrame(t testing.TB, write func(f *binFramer) error) []byte {
	t.Helper()
	var buf bytes.Buffer
	f := pipeFramer(&buf)
	if err := write(f); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := f.w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// decodeBinPayload dispatches one payload to the kind's decoder, returning
// false when the kind has no native decoder. On success it returns a
// re-encode function that must reproduce the frame byte-for-byte.
func decodeBinPayload(f *binFramer, kind byte, payload []byte) (func(g *binFramer) error, bool, error) {
	switch kind {
	case binKindHello:
		h, err := f.readHello(payload)
		if err != nil {
			return nil, true, err
		}
		return func(g *binFramer) error { return g.writeHello(h) }, true, nil
	case binKindSample:
		smp, err := f.readSample(payload)
		if err != nil {
			return nil, true, err
		}
		// Copy out of the framer scratch: the re-encode runs after further
		// framer use in some tests.
		node, tm := smp.NodeID, smp.Time
		pmc := append([]float64(nil), smp.PMC...)
		var measured *float64
		if smp.Measured != nil {
			m := *smp.Measured
			measured = &m
		}
		return func(g *binFramer) error { return g.writeSample(node, tm, pmc, measured) }, true, nil
	case binKindEstimate:
		est, err := f.readEstimate(payload)
		if err != nil {
			return nil, true, err
		}
		return func(g *binFramer) error { return g.writeEstimate(&est) }, true, nil
	case binKindQuery:
		q, err := f.readQuery(payload)
		if err != nil {
			return nil, true, err
		}
		return func(g *binFramer) error { return g.writeQuery(q) }, true, nil
	case binKindSeries:
		body, err := f.readSeries(payload)
		if err != nil {
			return nil, true, err
		}
		return func(g *binFramer) error { return g.writeSeries(body) }, true, nil
	case binKindError:
		msg, err := f.readError(payload)
		if err != nil {
			return nil, true, err
		}
		return func(g *binFramer) error { return g.writeError(msg) }, true, nil
	case binKindRecordBatch:
		rb, err := f.readRecordBatch(payload)
		if err != nil {
			return nil, true, err
		}
		node := rb.NodeID
		samples := make([]BatchSample, len(rb.Samples))
		for i, s := range rb.Samples {
			samples[i] = BatchSample{Time: s.Time, PMC: append([]float64(nil), s.PMC...)}
			if s.Measured != nil {
				m := *s.Measured
				samples[i].Measured = &m
			}
		}
		return func(g *binFramer) error { return g.writeRecordBatch(node, samples) }, true, nil
	case binKindEstimateBatch:
		ests, err := f.readEstimateBatch(payload)
		if err != nil {
			return nil, true, err
		}
		return func(g *binFramer) error { return g.writeEstimateBatch(ests) }, true, nil
	}
	return nil, false, nil
}

// FuzzBinaryEnvelopeRoundTrip is the binary codec's round-trip law: for
// every payload a decoder accepts, re-encoding the decoded message must
// reproduce the original frame byte-for-byte (the encodings are canonical
// — decoders reject non-canonical flag bytes rather than normalise them).
func FuzzBinaryEnvelopeRoundTrip(f *testing.F) {
	meas := 90.5
	seeds := [][]byte{
		encodeBinFrame(f, func(g *binFramer) error { return g.writeHello(Hello{NodeID: "n1"}) }),
		encodeBinFrame(f, func(g *binFramer) error {
			return g.writeSample("node-a", 1.5, []float64{1e9, 2e9, math.NaN()}, &meas)
		}),
		encodeBinFrame(f, func(g *binFramer) error {
			return g.writeEstimate(&Estimate{NodeID: "n", Time: 2, PNode: 90, PCPU: 40, PMEM: 12, FromMeasurement: true})
		}),
		encodeBinFrame(f, func(g *binFramer) error {
			return g.writeQuery(QueryRequest{NodeID: "n", Channel: "p_node", From: 0, To: 100, ResolutionS: 10})
		}),
		encodeBinFrame(f, func(g *binFramer) error {
			return g.writeSeries(SeriesBody{Channel: "p_node", ResolutionS: 1, Points: []SeriesPoint{
				{Time: 1, Value: 90, Min: 90, Max: 90, Count: 1},
				{Time: 2, Value: NullFloat(math.NaN()), Min: NullFloat(math.Inf(1)), Count: 0},
			}})
		}),
		encodeBinFrame(f, func(g *binFramer) error { return g.writeError("boom") }),
		encodeBinFrame(f, func(g *binFramer) error {
			return g.writeRecordBatch("node-b", []BatchSample{
				{Time: 1, PMC: []float64{1, 2}},
				{Time: 2, PMC: []float64{3, 4}, Measured: &meas},
			})
		}),
		encodeBinFrame(f, func(g *binFramer) error {
			return g.writeEstimateBatch([]Estimate{{NodeID: "n", Time: 1, PNode: 90}, {NodeID: "n", Time: 2, Local: true}})
		}),
	}
	for _, frame := range seeds {
		// Seeds are whole frames; the fuzz input is (kind, payload).
		f.Add(frame[4], frame[5:])
	}
	f.Add(byte(250), []byte{})                     // unknown kind
	f.Add(binKindSample, []byte{})                 // truncated
	f.Add(binKindError, []byte{0, 0, 0, 200, 'x'}) // claims more than it has

	f.Fuzz(func(t *testing.T, kind byte, payload []byte) {
		fr := newBinFramer(bufio.NewReader(bytes.NewReader(nil)), nil, DefaultMaxFrame)
		reencode, known, err := decodeBinPayload(fr, kind, payload)
		if !known || err != nil {
			return
		}
		frame := encodeBinFrame(t, reencode)
		if frame[4] != kind || !bytes.Equal(frame[5:], payload) {
			t.Fatalf("re-encode of kind %d changed the payload:\n in:  %x\n out: %x", kind, payload, frame[5:])
		}
	})
}

// FuzzCrossCodecSample pins the two codecs to each other: a sample sent
// through the JSON framing and through the binary framing must decode to
// bit-identical fields. JSON cannot carry non-finite floats (WriteMsg
// fails), so the agreement check applies when both paths accept the value;
// the binary path must round-trip regardless.
func FuzzCrossCodecSample(f *testing.F) {
	f.Add("node-1", 1.5, 1e9, 2e9, 3e9, true, 90.5)
	f.Add("", 0.0, 0.0, 0.0, 0.0, false, 0.0)
	f.Add("n", math.Inf(1), math.NaN(), -1e308, 5e-324, false, 0.0)
	f.Add("node-\xff", -3.25, 7.0, 8.0, 9.0, true, math.NaN())

	f.Fuzz(func(t *testing.T, node string, tm, p0, p1, p2 float64, hasMeasured bool, m float64) {
		if len(node) > math.MaxUint16 {
			return
		}
		pmc := []float64{p0, p1, p2}
		var measured *float64
		if hasMeasured {
			measured = &m
		}

		// Binary path: must always round-trip bit-exactly.
		frame := encodeBinFrame(t, func(g *binFramer) error { return g.writeSample(node, tm, pmc, measured) })
		fr := newBinFramer(bufio.NewReader(bytes.NewReader(frame)), nil, DefaultMaxFrame)
		kind, payload, err := fr.readFrame()
		if err != nil || kind != binKindSample {
			t.Fatalf("binary frame read: kind %d err %v", kind, err)
		}
		got, err := fr.readSample(payload)
		if err != nil {
			t.Fatalf("binary decode: %v", err)
		}
		checkSample := func(dec Sample, codec string) {
			if dec.NodeID != node {
				t.Fatalf("%s node: wrote %q read %q", codec, node, dec.NodeID)
			}
			if math.Float64bits(dec.Time) != math.Float64bits(tm) {
				t.Fatalf("%s time: wrote %x read %x", codec, math.Float64bits(tm), math.Float64bits(dec.Time))
			}
			if len(dec.PMC) != len(pmc) {
				t.Fatalf("%s pmc length: wrote %d read %d", codec, len(pmc), len(dec.PMC))
			}
			for i := range pmc {
				if math.Float64bits(dec.PMC[i]) != math.Float64bits(pmc[i]) {
					t.Fatalf("%s pmc[%d]: wrote %x read %x", codec, i, math.Float64bits(pmc[i]), math.Float64bits(dec.PMC[i]))
				}
			}
			if (dec.Measured != nil) != hasMeasured {
				t.Fatalf("%s measured presence: wrote %v read %v", codec, hasMeasured, dec.Measured != nil)
			}
			if hasMeasured && math.Float64bits(*dec.Measured) != math.Float64bits(m) {
				t.Fatalf("%s measured: wrote %x read %x", codec, math.Float64bits(m), math.Float64bits(*dec.Measured))
			}
		}
		checkSample(*got, "binary")

		// JSON path: agree with the binary decode whenever JSON can carry
		// the values at all (NaN/Inf and invalid-UTF-8 node IDs cannot ride
		// JSON losslessly).
		var buf bytes.Buffer
		smp := Sample{NodeID: node, Time: tm, PMC: pmc, Measured: measured}
		if err := WriteMsg(&buf, KindSample, smp); err != nil {
			return
		}
		env, err := ReadMsg(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("JSON read after write: %v", err)
		}
		var jdec Sample
		if err := DecodeBody(env, &jdec); err != nil {
			t.Fatalf("JSON decode: %v", err)
		}
		if jdec.NodeID != node {
			return // JSON coerced invalid UTF-8; codecs legitimately differ
		}
		checkSample(jdec, "json")
	})
}

// TestCodecNegotiation pins the handshake outcomes: a binary offer against
// this service lands on binary, a JSON dial stays JSON, and both speak to
// the same service concurrently.
func TestCodecNegotiation(t *testing.T) {
	checkNoLeaks(t)
	svc := startService(t)
	bin, err := Dial(svc.Addr(), "node-bin")
	if err != nil {
		t.Fatal(err)
	}
	defer bin.Close()
	if bin.Codec() != CodecBinary {
		t.Fatalf("default dial negotiated %q, want binary", bin.Codec())
	}
	js, err := DialCodec(svc.Addr(), "node-json", CodecJSON, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer js.Close()
	if js.Codec() != CodecJSON {
		t.Fatalf("JSON dial negotiated %q", js.Codec())
	}
	st, err := bin.Stats()
	if err != nil {
		t.Fatalf("stats over binary: %v", err)
	}
	if st.BinConns < 1 {
		t.Fatalf("service counted %d binary connections, want >= 1", st.BinConns)
	}
	if _, err := bin.FetchModel(); err != nil {
		t.Fatalf("model fetch over binary: %v", err)
	}
}

// TestCodecInteropByteIdentical drives two agents — one per codec — with
// the same deterministic sample stream and requires identical estimates,
// then queries the same stored series through both connections and
// requires the JSON renderings to match byte-for-byte. This is the
// acceptance gate for the binary codec: framing changed, results did not.
func TestCodecInteropByteIdentical(t *testing.T) {
	checkNoLeaks(t)
	svc := startService(t)
	bin, err := DialCodec(svc.Addr(), "node-bin", CodecBinary, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer bin.Close()
	js, err := DialCodec(svc.Addr(), "node-json", CodecJSON, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer js.Close()

	pmc := benchPMC()
	for i := 0; i < 40; i++ {
		tm := float64(i)
		for j := range pmc {
			pmc[j] = 1e9 + float64(i*7+j)*1e6
		}
		var measured *float64
		if i%5 == 0 {
			v := 90 + float64(i)*0.25
			measured = &v
		}
		be, err := bin.Send(tm, pmc, measured)
		if err != nil {
			t.Fatalf("binary send %d: %v", i, err)
		}
		je, err := js.Send(tm, pmc, measured)
		if err != nil {
			t.Fatalf("json send %d: %v", i, err)
		}
		// Identical inputs through identical per-node monitors: every field
		// must agree bit-for-bit across codecs.
		if math.Float64bits(be.PNode) != math.Float64bits(je.PNode) ||
			math.Float64bits(be.PCPU) != math.Float64bits(je.PCPU) ||
			math.Float64bits(be.PMEM) != math.Float64bits(je.PMEM) ||
			be.FromMeasurement != je.FromMeasurement {
			t.Fatalf("sample %d: binary estimate %+v != json estimate %+v", i, be, je)
		}
	}

	// The same stored series fetched over both codecs must render to the
	// same JSON bytes — for the node histories and the cluster aggregate,
	// at raw and rollup resolutions.
	for _, req := range []QueryRequest{
		{NodeID: "node-bin", Channel: "p_node", From: 0, To: 100},
		{NodeID: "node-bin", Channel: "ipmi", From: 0, To: 100},
		{NodeID: "node-json", Channel: "p_cpu", From: 0, To: 100, ResolutionS: 10},
		{Channel: "p_node", From: 0, To: 100, ResolutionS: 10},
	} {
		bb, err := bin.Query(req)
		if err != nil {
			t.Fatalf("binary query %+v: %v", req, err)
		}
		jb, err := js.Query(req)
		if err != nil {
			t.Fatalf("json query %+v: %v", req, err)
		}
		bjson, err := json.Marshal(bb)
		if err != nil {
			t.Fatal(err)
		}
		jjson, err := json.Marshal(jb)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bjson, jjson) {
			t.Fatalf("query %+v not byte-identical across codecs:\n binary: %s\n json:   %s", req, bjson, jjson)
		}
		if len(bb.Points) == 0 {
			t.Fatalf("query %+v returned no points", req)
		}
	}
}

// TestRecordBatch runs the batched ingest path over both codecs: Record
// coalesces, the flush returns one estimate per sample in order, and the
// estimates equal what unbatched Sends produce for the same stream.
func TestRecordBatch(t *testing.T) {
	checkNoLeaks(t)
	svc := startService(t)
	for _, codec := range []string{CodecBinary, CodecJSON} {
		t.Run(codec, func(t *testing.T) {
			batched, err := DialCodec(svc.Addr(), "batch-"+codec, codec, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer batched.Close()
			batched.SetBatching(BatchOptions{MaxSamples: 4})
			single, err := DialCodec(svc.Addr(), "single-"+codec, codec, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer single.Close()

			pmc := benchPMC()
			var fromBatch, fromSingle []Estimate
			for i := 0; i < 10; i++ {
				tm := float64(i)
				for j := range pmc {
					pmc[j] = 1e9 + float64(i*13+j)*1e6
				}
				var measured *float64
				if i%3 == 0 {
					v := 88 + float64(i)
					measured = &v
				}
				ests, err := batched.Record(tm, pmc, measured)
				if err != nil {
					t.Fatalf("record %d: %v", i, err)
				}
				if i%4 != 3 && ests != nil {
					t.Fatalf("record %d flushed early: %d estimates", i, len(ests))
				}
				fromBatch = append(fromBatch, ests...)
				se, err := single.Send(tm, pmc, measured)
				if err != nil {
					t.Fatalf("send %d: %v", i, err)
				}
				fromSingle = append(fromSingle, se)
			}
			tail, err := batched.Flush()
			if err != nil {
				t.Fatal(err)
			}
			fromBatch = append(fromBatch, tail...)
			if len(fromBatch) != len(fromSingle) {
				t.Fatalf("batched path returned %d estimates, single path %d", len(fromBatch), len(fromSingle))
			}
			for i := range fromBatch {
				b, s := fromBatch[i], fromSingle[i]
				if math.Float64bits(b.PNode) != math.Float64bits(s.PNode) ||
					math.Float64bits(b.PCPU) != math.Float64bits(s.PCPU) ||
					math.Float64bits(b.PMEM) != math.Float64bits(s.PMEM) ||
					b.Time != s.Time || b.FromMeasurement != s.FromMeasurement {
					t.Fatalf("estimate %d: batched %+v != single %+v", i, b, s)
				}
			}
		})
	}
	st := svc.Stats()
	if st.Batches < 4 || st.BatchSamples < 20 {
		t.Fatalf("batch accounting: %d batches, %d samples", st.Batches, st.BatchSamples)
	}
}

// TestResilientBatchDegradedReplay: a batched ResilientAgent whose service
// dies must serve flushes locally, keep the samples in order in the replay
// buffer, and deliver the whole backlog in order once a service returns.
func TestResilientBatchDegradedReplay(t *testing.T) {
	checkNoLeaks(t)
	svc := NewService(sharedModel(t))
	svc.Logf = t.Logf
	if err := svc.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := svc.Addr()
	opts := DefaultAgentOptions()
	opts.DialTimeout = 500 * 1e6 // 500ms
	opts.RequestTimeout = 500 * 1e6
	opts.BackoffMin = 1e6 // 1ms
	opts.BackoffMax = 10e6
	opts.SendRetries = 1
	opts.FailThreshold = 1
	opts.Batch = BatchOptions{MaxSamples: 3}
	ra, err := DialResilient(addr, "node-batch-ft", opts)
	if err != nil {
		svc.Close()
		t.Fatal(err)
	}
	defer ra.Close()

	pmc := benchPMC()
	record := func(i int) []Estimate {
		t.Helper()
		ests, err := ra.Record(float64(i), pmc, nil)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		return ests
	}
	var live []Estimate
	for i := 0; i < 6; i++ {
		live = append(live, record(i)...)
	}
	if len(live) != 6 {
		t.Fatalf("%d live estimates, want 6", len(live))
	}
	for _, e := range live {
		if e.Local {
			t.Fatal("live flush served locally while the service was up")
		}
	}

	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	var local []Estimate
	for i := 6; i < 12; i++ {
		local = append(local, record(i)...)
	}
	if len(local) != 6 {
		t.Fatalf("%d estimates during outage, want 6", len(local))
	}
	for _, e := range local {
		if !e.Local {
			t.Fatalf("outage estimate not local: %+v", e)
		}
	}
	if ra.Pending() != 6 {
		t.Fatalf("%d samples pending replay, want 6", ra.Pending())
	}

	svc2 := NewService(sharedModel(t))
	svc2.Logf = t.Logf
	if err := svc2.Listen(addr); err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	t.Cleanup(func() { svc2.Close() })
	for i := 12; ra.Mode() != ModeConnected || ra.Pending() > 0; i++ {
		if i > 2000 {
			t.Fatalf("agent never recovered: mode %v, %d pending", ra.Mode(), ra.Pending())
		}
		record(i)
	}
	// The recovery loop keeps batching while degraded, so more than the
	// original 6 samples pass through the buffer; what matters is that the
	// whole backlog replays and nothing is lost.
	c := ra.Counters()
	if c.Replayed < 6 || c.Replayed != c.Buffered || c.Dropped != 0 {
		t.Fatalf("replay incomplete: %+v", c)
	}
}

// TestBinaryCodecZeroAlloc is the allocation-regression guard for the
// binary record path: one steady-state encode → frame read → decode of a
// sample must not allocate at all. Everything lives in the framer scratch
// — the write buffer, the read buffer, the PMC slice, the interned node.
func TestBinaryCodecZeroAlloc(t *testing.T) {
	pmc := benchPMC()
	meas := 90.5
	var buf bytes.Buffer
	fw := pipeFramer(&buf)
	br := bytes.NewReader(nil)
	rr := bufio.NewReader(br)
	fr := newBinFramer(rr, nil, DefaultMaxFrame)

	iter := func() {
		buf.Reset()
		fw.w.Reset(&buf)
		if err := fw.writeSample("node-alloc", 42.5, pmc, &meas); err != nil {
			t.Fatal(err)
		}
		if err := fw.w.Flush(); err != nil {
			t.Fatal(err)
		}
		br.Reset(buf.Bytes())
		rr.Reset(br)
		kind, payload, err := fr.readFrame()
		if err != nil || kind != binKindSample {
			t.Fatalf("frame: kind %d err %v", kind, err)
		}
		smp, err := fr.readSample(payload)
		if err != nil {
			t.Fatal(err)
		}
		if smp.NodeID != "node-alloc" || len(smp.PMC) != len(pmc) {
			t.Fatalf("bad decode: %+v", smp)
		}
	}
	iter() // warm the scratch buffers and the intern slot
	if allocs := testing.AllocsPerRun(200, iter); allocs != 0 {
		t.Fatalf("binary sample round trip allocates %.1f times per op, want 0", allocs)
	}
}

// BenchmarkServiceHandleBinary is BenchmarkServiceHandle's binary twin:
// the full service handler over net.Pipe, negotiated onto the binary
// codec. Compare with BenchmarkServiceHandle for the codec's win.
func BenchmarkServiceHandleBinary(b *testing.B) {
	svc := NewServiceWith(sharedModel(b), ServiceOptions{})
	svc.Logf = func(string, ...any) {}
	defer svc.Close()

	client, server := net.Pipe()
	defer client.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		svc.handle(server)
	}()
	r := bufio.NewReader(client)
	w := bufio.NewWriter(client)
	// JSON handshake with a binary offer, then the framer takes over.
	if err := WriteMsg(w, KindHello, Hello{NodeID: "bench-bin", Codecs: []string{CodecBinary}}); err != nil {
		b.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	env, err := ReadMsg(r)
	if err != nil {
		b.Fatal(err)
	}
	var reply Hello
	if err := DecodeBody(env, &reply); err != nil {
		b.Fatal(err)
	}
	if reply.Codec != CodecBinary {
		b.Fatalf("negotiated %q, want binary", reply.Codec)
	}
	f := newBinFramer(r, w, DefaultMaxFrame)
	pmc := benchPMC()
	send := func(tm float64, measured *float64) Estimate {
		if err := f.writeSample("bench-bin", tm, pmc, measured); err != nil {
			b.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
		kind, payload, err := f.readFrame()
		if err != nil || kind != binKindEstimate {
			b.Fatalf("reply kind %d err %v", kind, err)
		}
		est, err := f.readEstimate(payload)
		if err != nil {
			b.Fatal(err)
		}
		return est
	}
	seed := 90.0
	send(0, &seed)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		send(float64(i+1), nil)
	}
	b.StopTimer()
	client.Close()
	<-done
}

// BenchmarkRecordBatch measures batched ingest end to end over loopback
// TCP at a realistic coalescing factor: 16 samples per frame, binary
// codec. Per-sample cost divides by the batch size reported in ns/op.
func BenchmarkRecordBatch(b *testing.B) {
	svc := startService(b)
	agent, err := Dial(svc.Addr(), "bench-batch")
	if err != nil {
		b.Fatal(err)
	}
	defer agent.Close()
	const batchSize = 16
	agent.SetBatching(BatchOptions{MaxSamples: batchSize})
	pmc := benchPMC()
	seed := 90.0
	if _, err := agent.Send(0, pmc, &seed); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	tm := 1.0
	for i := 0; i < b.N; i++ {
		// One op = one full batch: batchSize Records, the last one flushes.
		for j := 0; j < batchSize; j++ {
			ests, err := agent.Record(tm, pmc, nil)
			if err != nil {
				b.Fatal(err)
			}
			if j < batchSize-1 && ests != nil {
				b.Fatal("early flush")
			}
			tm++
		}
	}
}
