// Package faultnet is a deterministic fault-injecting TCP middlebox for
// testing the cluster layer. A Proxy sits between an agent and the
// service, forwarding bytes in both directions while a per-connection
// script injects latency, byte-level frame truncation, mid-message resets,
// blackholes (accept-then-silence), and drop-at-message-N faults.
//
// The proxy understands the cluster wire format only as far as the 4-byte
// big-endian length prefix, which is enough to trigger faults at exact
// frame boundaries ("drop the Nth message") or at exact byte offsets
// inside a frame ("truncate the reply mid-message") without depending on
// JSON contents.
package faultnet

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Action is what a Fault does once its trigger fires.
type Action int

const (
	// ActNone leaves the stream alone (latency may still apply).
	ActNone Action = iota
	// ActClose closes the whole connection cleanly (FIN). Fired mid-frame
	// it yields a truncated frame at the receiver.
	ActClose
	// ActReset aborts the connection with an RST (SetLinger(0)), the
	// "mid-message reset" a crashing peer produces.
	ActReset
	// ActBlackhole keeps the connection open and keeps draining the
	// sender, but forwards nothing more in this direction — the
	// accept-then-silence failure that only deadlines can detect.
	ActBlackhole
)

// Fault scripts one direction of one proxied connection.
type Fault struct {
	// Latency delays each forwarded chunk (0: none).
	Latency time.Duration
	// AfterFrames triggers the Action at the 1-based Nth length-prefixed
	// frame: before its first byte when AfterBytes is 0, or after
	// AfterBytes bytes of that frame (byte-level truncation inside a
	// chosen message) when AfterBytes > 0.
	AfterFrames int
	// AfterBytes without AfterFrames triggers after N bytes total.
	AfterBytes int
	// Action fires once the trigger is reached.
	Action Action
}

// ConnScript pairs the two directions of one proxied connection.
type ConnScript struct {
	// Up faults the agent→service direction, Down the service→agent one.
	Up, Down Fault
}

// Proxy is the middlebox. The i-th accepted connection runs scripts[i];
// connections beyond the script are forwarded untouched, so "fault the
// first connection, let the reconnect through" is the natural default.
type Proxy struct {
	target  string
	scripts []ConnScript

	ln net.Listener
	wg sync.WaitGroup

	// silenceAll, while set, blackholes the proxy shard-wide: every
	// forwarder latches silent the next time it wakes, and connections
	// accepted meanwhile start silent (see BlackholeAll).
	silenceAll atomic.Bool

	mu       sync.Mutex
	accepted int
	conns    map[net.Conn]struct{}
	closed   bool
}

// New builds a proxy forwarding to target with the given per-connection
// scripts. Call Listen to start it.
func New(target string, scripts ...ConnScript) *Proxy {
	return &Proxy{target: target, scripts: scripts, conns: map[net.Conn]struct{}{}}
}

// Listen binds the proxy ("127.0.0.1:0" picks a free port) and starts
// accepting.
func (p *Proxy) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("faultnet: listen: %w", err)
	}
	p.ln = ln
	p.wg.Add(1)
	go p.acceptLoop()
	return nil
}

// Addr reports the proxy's bound address — dial this instead of the
// service.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Accepted reports how many connections the proxy has accepted so far.
func (p *Proxy) Accepted() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.accepted
}

// BlackholeAll silences the proxy shard-wide: every currently proxied
// connection stops forwarding (in both directions) the moment its
// forwarder next wakes, and connections accepted while the blackhole
// holds start silent. Dials still succeed — the accept-then-silence
// failure of ActBlackhole, but applied to the whole shard rather than one
// scripted connection, which is what "blackhole one shard mid-ingest"
// needs.
func (p *Proxy) BlackholeAll() { p.silenceAll.Store(true) }

// Restore lifts a BlackholeAll for subsequently accepted connections.
// Already-silenced connections stay dead (bytes they drained were never
// forwarded, so their streams have holes), exactly like TCP flows across
// a healed partition: peers must redial.
func (p *Proxy) Restore() { p.silenceAll.Store(false) }

// SeverAll severs every currently proxied connection (reset: RST instead
// of FIN) while the listener keeps accepting, modelling a service restart
// that kills in-flight connections but lets redials through.
func (p *Proxy) SeverAll(reset bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for c := range p.conns {
		if reset {
			if tc, ok := c.(*net.TCPConn); ok {
				tc.SetLinger(0)
			}
		}
		_ = c.Close()
	}
}

// Close stops the listener, severs every proxied connection, and waits for
// the forwarding goroutines to drain.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	for c := range p.conns {
		_ = c.Close()
	}
	p.mu.Unlock()
	var err error
	if p.ln != nil {
		err = p.ln.Close()
	}
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			_ = client.Close()
			return
		}
		idx := p.accepted
		p.accepted++
		p.mu.Unlock()
		var script ConnScript
		if idx < len(p.scripts) {
			script = p.scripts[idx]
		}
		upstream, err := net.Dial("tcp", p.target)
		if err != nil {
			_ = client.Close()
			continue
		}
		p.track(client)
		p.track(upstream)
		p.wg.Add(2)
		go p.forward(upstream, client, script.Up)
		go p.forward(client, upstream, script.Down)
	}
}

func (p *Proxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// sever ends a proxied connection pair; reset aborts with RST instead of
// FIN. Linger is set on both conns before either closes so a concurrent
// plain Close from the opposite direction's goroutine still produces an
// RST.
func sever(a, b net.Conn, reset bool) {
	if reset {
		for _, c := range []net.Conn{a, b} {
			if tc, ok := c.(*net.TCPConn); ok {
				tc.SetLinger(0)
			}
		}
	}
	_ = a.Close()
	_ = b.Close()
}

// forward copies src→dst applying one direction's fault script. It owns
// closing the pair when the stream or the script ends (except for
// blackholes, which leave the pair open and silent).
func (p *Proxy) forward(dst, src net.Conn, f Fault) {
	defer p.wg.Done()
	defer p.untrack(src)
	defer p.untrack(dst)

	var (
		buf       = make([]byte, 32<<10)
		sent      int     // bytes forwarded so far
		frame     int     // 1-based index of the frame being forwarded
		frameSent int     // payload+header bytes of the current frame already forwarded
		hdr       [4]byte // length prefix under assembly
		hdrGot    int
		bodyRem   int // body bytes left in the current frame
		silenced  bool
	)
	for {
		n, err := src.Read(buf)
		// A shard-wide blackhole latches before any forwarding decision, so
		// bytes read after BlackholeAll never leak through.
		if !silenced && p.silenceAll.Load() {
			silenced = true
		}
		if n > 0 && !silenced {
			chunk := buf[:n]
			for len(chunk) > 0 {
				// How many bytes may pass before the next trigger?
				allow := len(chunk)
				fire := false
				if f.Action != ActNone {
					switch {
					case f.AfterFrames > 0:
						if frame == 0 {
							frame = 1
						}
						// Never forward past the current frame's end in
						// one step, so every frame transition is seen.
						if hdrGot < 4 {
							allow = min(allow, 4-hdrGot)
						} else {
							allow = min(allow, bodyRem)
						}
						if frame == f.AfterFrames {
							cut := f.AfterBytes - frameSent
							if cut <= 0 {
								allow, fire = 0, true
							} else if cut <= allow {
								allow, fire = cut, true
							}
						}
					case f.AfterBytes > 0:
						cut := f.AfterBytes - sent
						if cut <= 0 {
							allow, fire = 0, true
						} else if cut <= allow {
							allow, fire = cut, true
						}
					default:
						// Action with no trigger fires immediately.
						allow, fire = 0, true
					}
				}
				if allow > 0 {
					if f.Latency > 0 {
						time.Sleep(f.Latency)
					}
					if _, werr := dst.Write(chunk[:allow]); werr != nil {
						sever(dst, src, false)
						return
					}
					sent += allow
					if frame > 0 {
						account(chunk[:allow], &frame, &frameSent, &hdr, &hdrGot, &bodyRem)
					}
					chunk = chunk[allow:]
				}
				if fire {
					switch f.Action {
					case ActClose:
						sever(dst, src, false)
						return
					case ActReset:
						sever(dst, src, true)
						return
					case ActBlackhole:
						silenced = true
						chunk = nil
					}
				}
			}
		}
		if err != nil {
			// Tear the pair down even when silenced: a blackholed
			// connection is silent only while its source lives. Leaving
			// the far side open once the peer gave up would strand the
			// opposite forwarder — and Proxy.Close behind it — on a read
			// nothing will ever finish (the deferred untracks have already
			// hidden both conns from Close).
			sever(dst, src, false)
			return
		}
	}
}

// account advances the frame-parsing state over one forwarded chunk.
func account(chunk []byte, frame, frameSent *int, hdr *[4]byte, hdrGot, bodyRem *int) {
	for len(chunk) > 0 {
		if *hdrGot < 4 {
			n := copy(hdr[*hdrGot:], chunk)
			*hdrGot += n
			*frameSent += n
			chunk = chunk[n:]
			if *hdrGot == 4 {
				*bodyRem = int(binary.BigEndian.Uint32(hdr[:]))
				if *bodyRem == 0 {
					*frame++
					*frameSent = 0
					*hdrGot = 0
				}
			}
			continue
		}
		n := min(len(chunk), *bodyRem)
		*bodyRem -= n
		*frameSent += n
		chunk = chunk[n:]
		if *bodyRem == 0 {
			*frame++
			*frameSent = 0
			*hdrGot = 0
		}
	}
}
