package faultnet

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"runtime"
	"testing"
	"time"
)

// checkNoLeaks fails the test if goroutines outlive its cleanup phase.
func checkNoLeaks(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= before {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak: %d before, %d after\n%s", before, n, buf)
	})
}

// startEcho runs a TCP echo server and returns its address.
func startEcho(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(c, c)
				c.Close()
			}()
		}
	}()
	t.Cleanup(func() { ln.Close(); <-done })
	return ln.Addr().String()
}

func startProxy(t *testing.T, target string, scripts ...ConnScript) *Proxy {
	t.Helper()
	p := New(target, scripts...)
	if err := p.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// frame builds one length-prefixed message of n payload bytes.
func frame(n int) []byte {
	out := make([]byte, 4+n)
	binary.BigEndian.PutUint32(out, uint32(n))
	for i := range out[4:] {
		out[4+i] = byte('a' + i%26)
	}
	return out
}

func TestProxyPassthrough(t *testing.T) {
	checkNoLeaks(t)
	p := startProxy(t, startEcho(t))
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := frame(100)
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("echo corrupted through passthrough proxy")
	}
	if p.Accepted() != 1 {
		t.Fatalf("accepted = %d", p.Accepted())
	}
}

// startSink runs a TCP server that records everything it receives; the
// returned function reports the total bytes received once the (single)
// connection has ended.
func startSink(t *testing.T) (addr string, received func() int) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	total := make(chan int, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			total <- -1
			return
		}
		n, _ := io.Copy(io.Discard, c)
		c.Close()
		total <- int(n)
	}()
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String(), func() int {
		select {
		case n := <-total:
			return n
		case <-time.After(5 * time.Second):
			t.Fatal("sink never saw its connection end")
			return -1
		}
	}
}

func TestProxyDropAtFrame(t *testing.T) {
	checkNoLeaks(t)
	addr, received := startSink(t)
	p := startProxy(t, addr, ConnScript{Up: Fault{AfterFrames: 3, Action: ActClose}})
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Frames 1 and 2 pass; frame 3 must never arrive.
	for i := 0; i < 3; i++ {
		if _, err := conn.Write(frame(50)); err != nil {
			break // the proxy may have severed already
		}
	}
	if n := received(); n != 2*54 {
		t.Fatalf("sink received %d bytes, want 2 whole frames (108)", n)
	}
}

func TestProxyTruncatesMidFrame(t *testing.T) {
	checkNoLeaks(t)
	// Cut after 10 bytes of frame 2: the receiver sees frame 1 whole and
	// a truncated frame 2.
	addr, received := startSink(t)
	p := startProxy(t, addr, ConnScript{Up: Fault{AfterFrames: 2, AfterBytes: 10, Action: ActClose}})
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write(frame(20))
	conn.Write(frame(20))
	if n := received(); n != 24+10 {
		t.Fatalf("sink received %d bytes, want 24 whole + 10 truncated", n)
	}
}

func TestProxyReset(t *testing.T) {
	checkNoLeaks(t)
	p := startProxy(t, startEcho(t), ConnScript{Up: Fault{AfterBytes: 8, Action: ActReset}})
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write(frame(100))
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadAll(conn); err == nil {
		// A clean FIN yields err == nil from ReadAll; an RST errors.
		t.Fatal("expected a connection reset, got clean EOF")
	}
}

func TestProxyBlackhole(t *testing.T) {
	checkNoLeaks(t)
	p := startProxy(t, startEcho(t), ConnScript{Up: Fault{Action: ActBlackhole}})
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(frame(50)); err != nil {
		t.Fatal(err)
	}
	// The connection stays open but nothing ever comes back.
	conn.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("blackholed proxy forwarded data")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("want a read timeout (open but silent), got %v", err)
	}
}

func TestProxyLatency(t *testing.T) {
	checkNoLeaks(t)
	delay := 150 * time.Millisecond
	p := startProxy(t, startEcho(t), ConnScript{Up: Fault{Latency: delay}})
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	msg := frame(10)
	conn.Write(msg)
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took < delay {
		t.Fatalf("round trip took %v, want >= %v", took, delay)
	}
}

func TestProxySecondConnectionClean(t *testing.T) {
	checkNoLeaks(t)
	// Only connection 0 is scripted; connection 1 must pass untouched.
	p := startProxy(t, startEcho(t), ConnScript{Up: Fault{Action: ActClose}})
	c0, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c0.Write(frame(5))
	c0.Close()
	c1, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	msg := frame(30)
	c1.Write(msg)
	got := make([]byte, len(msg))
	c1.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(c1, got); err != nil {
		t.Fatalf("second connection faulted: %v", err)
	}
}
