package cluster

import (
	"runtime"
	"testing"
	"time"
)

// checkNoLeaks arms a goroutine-leak assertion for the calling test: at
// cleanup time the goroutine count must return to (at most) what it was
// when the test started. Call it first thing in a test, before
// t.Cleanup-registered servers — cleanups run LIFO, so the leak check runs
// after every server has shut down.
//
// The count is polled with a deadline rather than compared once: handler
// goroutines finish asynchronously after a listener closes, and the first
// test in the package also pays the one-off cost of training the shared
// model (whose worker goroutines wind down on their own schedule).
func checkNoLeaks(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= before {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak: %d before, %d after\n%s", before, n, buf)
	})
}
