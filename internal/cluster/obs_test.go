package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"highrpm/internal/obs"
	"highrpm/internal/platform"
	"highrpm/internal/workload"
)

// startObsServer attaches an observability endpoint to svc and returns it
// with an HTTP client whose idle pool is flushed before the leak check.
func startObsServer(t *testing.T, svc *Service, reg *obs.Registry) (*obs.Server, *http.Client) {
	t.Helper()
	srv := obs.NewServer(reg, obs.DefaultServerOptions())
	srv.SetStore(svc.Store())
	srv.SetHealth(svc.Health)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := srv.Shutdown(2 * time.Second); err != nil {
			t.Errorf("obs shutdown: %v", err)
		}
	})
	tr := &http.Transport{}
	t.Cleanup(tr.CloseIdleConnections)
	return srv, &http.Client{Transport: tr}
}

func scrape(t *testing.T, c *http.Client, url string) []byte {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestObsEndToEndScrape drives real telemetry through a live service and
// scrapes the attached observability endpoint over HTTP: the per-node
// power gauges, the service/store counters, and the monitoring-overhead
// self-metering must all be present, and the JSON series endpoint must
// return byte-for-byte the same encoding as the TCP query path.
func TestObsEndToEndScrape(t *testing.T) {
	checkNoLeaks(t)
	svc := startService(t)
	reg := obs.NewRegistry()
	svc.RegisterMetrics(reg)
	osrv, client := startObsServer(t, svc, reg)

	agent, err := Dial(svc.Addr(), "node-a")
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	node, err := platform.NewNode(platform.ARMConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.Find("HPCC/FFT")
	if err != nil {
		t.Fatal(err)
	}
	node.Attach(b)
	const ticks = 20
	for i := 0; i < ticks; i++ {
		s := node.Step(1)
		var measured *float64
		if i%10 == 0 {
			v := s.PNode
			measured = &v
		}
		if _, err := agent.Send(s.Time, s.Counters.Slice(), measured); err != nil {
			t.Fatal(err)
		}
	}

	base := "http://" + osrv.Addr()
	out := string(scrape(t, client, base+"/metrics"))
	for _, want := range []string{
		// Per-node power gauges from the latest estimate.
		`highrpm_node_power_watts{node="node-a",component="node"} `,
		`highrpm_node_power_watts{node="node-a",component="cpu"} `,
		`highrpm_node_power_watts{node="node-a",component="mem"} `,
		`highrpm_node_power_watts{node="node-a",component="node_prime"} `,
		`highrpm_node_from_measurement{node="node-a"} `,
		// Service and store counters mirrored from Stats.
		"highrpm_service_nodes 1",
		"highrpm_service_samples_total 20",
		"highrpm_store_ingested_samples_total 20",
		// Self-metering: one overhead tick per estimation.
		"highrpm_overhead_ticks_total 20",
		"highrpm_overhead_wall_seconds_total ",
		"highrpm_overhead_tick_seconds_count 20",
		"highrpm_overhead_alloc_bytes_total ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", out)
	}

	// The last sample carried no IM reading, so the ipmi component of the
	// latest estimate is NaN on the exposition.
	if !strings.Contains(out, `highrpm_node_power_watts{node="node-a",component="ipmi"} NaN`) {
		t.Errorf("ipmi component should be NaN between measurements")
	}

	// /api/v1/series must agree byte-for-byte with the TCP query path.
	tcpBody, err := agent.Query(QueryRequest{NodeID: "node-a", Channel: "p_node", From: 0, To: 1e12})
	if err != nil {
		t.Fatal(err)
	}
	var tcpJSON bytes.Buffer
	if err := json.NewEncoder(&tcpJSON).Encode(tcpBody); err != nil {
		t.Fatal(err)
	}
	httpJSON := scrape(t, client, base+"/api/v1/series?node=node-a&channel=p_node&from=0&to=1e12")
	if !bytes.Equal(tcpJSON.Bytes(), httpJSON) {
		t.Errorf("TCP and HTTP series encodings differ:\ntcp:  %s\nhttp: %s", tcpJSON.Bytes(), httpJSON)
	}

	// Readiness tracks the service lifecycle.
	resp, err := client.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/readyz while serving = %d, want 200", resp.StatusCode)
	}
	agent.Close()
	if err := svc.Shutdown(time.Second); err != nil {
		t.Fatal(err)
	}
	resp, err = client.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz after shutdown = %d, want 503", resp.StatusCode)
	}
}

// TestObsAgentMetricsDegraded exercises the AgentMetrics adapter through a
// ResilientAgent degradation: gauges must reflect the flip and readiness
// must report ready-but-degraded.
func TestObsAgentMetricsDegraded(t *testing.T) {
	checkNoLeaks(t)
	svc := startService(t)
	reg := obs.NewRegistry()
	svc.RegisterMetrics(reg)
	am := NewAgentMetrics(reg)

	srv := obs.NewServer(reg, obs.DefaultServerOptions())
	srv.SetStore(svc.Store())
	srv.SetHealth(func() obs.Health {
		h := svc.Health()
		if h.Ready && am.AnyDegraded() {
			h.Degraded = true
			h.Detail = "agent(s) serving local estimates"
		}
		return h
	})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := srv.Shutdown(2 * time.Second); err != nil {
			t.Errorf("obs shutdown: %v", err)
		}
	})
	tr := &http.Transport{}
	t.Cleanup(tr.CloseIdleConnections)
	client := &http.Client{Transport: tr}

	ra, err := DialResilient(svc.Addr(), "node-r", DefaultAgentOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()

	node, err := platform.NewNode(platform.ARMConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.Find("HPCC/FFT")
	if err != nil {
		t.Fatal(err)
	}
	node.Attach(b)

	send := func(i int) {
		s := node.Step(1)
		if _, err := ra.Send(s.Time, s.Counters.Slice(), nil); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		am.Observe(ra)
	}
	for i := 0; i < 5; i++ {
		send(i)
	}
	if am.AnyDegraded() {
		t.Fatal("degraded before service loss")
	}

	// Kill the service; the resilient agent degrades to local estimates.
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 5; i < 10; i++ {
		send(i)
	}
	if ra.Mode() != ModeDegraded {
		t.Fatalf("agent mode = %v, want degraded", ra.Mode())
	}
	if !am.AnyDegraded() {
		t.Fatal("AgentMetrics did not record degradation")
	}

	out := string(scrape(t, client, "http://"+srv.Addr()+"/metrics"))
	for _, want := range []string{
		`highrpm_agent_mode{node="node-r"} 1`,
		`highrpm_agent_local_served_total{node="node-r"} 5`,
		`highrpm_agent_sent_total{node="node-r"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q:\n%s", want, out)
		}
	}

	// Service down: not ready outranks degraded.
	resp, err := client.Get("http://" + srv.Addr() + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz with service down = %d %s", resp.StatusCode, body)
	}
}
