package cluster

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"highrpm/internal/obs"
	"highrpm/internal/platform"
	"highrpm/internal/tsdb"
	"highrpm/internal/workload"
)

// durableStoreOpts sizes a small durable store rooted at dir. FsyncAlways
// keeps the test deterministic (no background flusher timing) and
// exercises the strictest policy on the real service path.
func durableStoreOpts(dir string) tsdb.Options {
	o := tsdb.DefaultOptions()
	o.BlockPoints = 16
	o.Dir = dir
	o.Fsync = tsdb.FsyncAlways
	o.SnapshotEvery = -1
	return o
}

// driveSamples streams n seconds of real telemetry into svc as node-a,
// with an IM reading every tenth sample.
func driveSamples(t *testing.T, svc *Service, n int) {
	t.Helper()
	agent, err := Dial(svc.Addr(), "node-a")
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	node, err := platform.NewNode(platform.ARMConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.Find("HPCC/FFT")
	if err != nil {
		t.Fatal(err)
	}
	node.Attach(b)
	for i := 0; i < n; i++ {
		s := node.Step(1)
		var measured *float64
		if i%10 == 0 {
			v := s.PNode
			measured = &v
		}
		if _, err := agent.Send(s.Time, s.Counters.Slice(), measured); err != nil {
			t.Fatal(err)
		}
	}
}

// historyImage renders every channel of node-a's history at every
// resolution through the same QuerySeries path agents use.
func historyImage(t *testing.T, st *tsdb.Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, ch := range tsdb.Channels() {
		for _, res := range tsdb.Resolutions() {
			body, err := st.QuerySeries("node-a", string(ch), 0, 4e9, int(res))
			if err != nil {
				t.Fatalf("query %s/%d: %v", ch, res, err)
			}
			b, err := json.Marshal(body)
			if err != nil {
				t.Fatal(err)
			}
			buf.Write(b)
			buf.WriteByte('\n')
		}
	}
	return buf.Bytes()
}

// TestDurableServiceRecovery restarts the service on a durable store: a
// graceful Shutdown drains the WAL, and the next NewDurableService on
// the same directory must replay every recorded estimate and answer the
// exact same history queries.
func TestDurableServiceRecovery(t *testing.T) {
	checkNoLeaks(t)
	dir := t.TempDir()
	const n = 25

	svc, rec, err := NewDurableService(sharedModel(t), DefaultServiceOptions(), durableStoreOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Replayed != 0 || rec.SnapshotPath != "" {
		t.Fatalf("fresh directory recovered state: %+v", rec)
	}
	svc.Logf = t.Logf
	if err := svc.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	driveSamples(t, svc, n)
	before := historyImage(t, svc.Store())
	if err := svc.Shutdown(2 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	svc2, rec2, err := NewDurableService(sharedModel(t), DefaultServiceOptions(), durableStoreOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := svc2.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	if rec2.LastSeq != n || rec2.Replayed != n {
		t.Fatalf("recovery = %+v, want %d records replayed", rec2, n)
	}
	if rec2.TornTail || len(rec2.Damage) != 0 || len(rec2.CorruptSnapshots) != 0 {
		t.Fatalf("graceful shutdown left a dirty log: %+v", rec2)
	}
	after := historyImage(t, svc2.Store())
	if !bytes.Equal(before, after) {
		t.Fatal("recovered history differs from the pre-shutdown image")
	}
}

// TestDurableMetricsExposition checks the WAL/snapshot gauges reach the
// Prometheus exposition with live values from the durable store.
func TestDurableMetricsExposition(t *testing.T) {
	checkNoLeaks(t)
	opts := durableStoreOpts(t.TempDir())
	svc, _, err := NewDurableService(sharedModel(t), DefaultServiceOptions(), opts)
	if err != nil {
		t.Fatal(err)
	}
	svc.Logf = t.Logf
	if err := svc.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := svc.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	reg := obs.NewRegistry()
	svc.RegisterMetrics(reg)
	driveSamples(t, svc, 10)
	if err := svc.Store().Snapshot(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	expo := buf.String()
	for _, want := range []string{
		"highrpm_store_wal_records_total 10",
		"highrpm_store_wal_replayed_records 0",
		"highrpm_store_snapshots_total 1",
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	for _, name := range []string{
		"highrpm_store_wal_bytes_total",
		"highrpm_store_wal_fsyncs_total",
		"highrpm_store_snapshot_age_seconds",
	} {
		if !strings.Contains(expo, name+" ") {
			t.Errorf("exposition missing metric %s", name)
		}
	}
}
