package cluster

import (
	"math"
	"testing"

	"highrpm/internal/platform"
	"highrpm/internal/tsdb"
	"highrpm/internal/workload"
)

// streamSamples pushes n seconds of telemetry for nodeID through agent,
// returning the estimates the service produced. Every missInterval-th
// second carries an IPMI reading.
func streamSamples(t *testing.T, agent *Agent, n, missInterval int, seed int64) []Estimate {
	t.Helper()
	node, err := platform.NewNode(platform.ARMConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.Find("HPCC/FFT")
	if err != nil {
		t.Fatal(err)
	}
	node.Attach(b)
	ests := make([]Estimate, 0, n)
	for i := 0; i < n; i++ {
		s := node.Step(1)
		var measured *float64
		if i%missInterval == 0 {
			v := s.PNode
			measured = &v
		}
		est, err := agent.Send(s.Time, s.Counters.Slice(), measured)
		if err != nil {
			t.Fatal(err)
		}
		ests = append(ests, est)
	}
	return ests
}

// TestServiceRecordsAndServesHistory is the end-to-end acceptance path:
// stream 60 s of telemetry, then fetch a 60 s window of p_cpu at 10 s
// rollup over TCP and check it against the live estimates.
func TestServiceRecordsAndServesHistory(t *testing.T) {
	checkNoLeaks(t)
	svc := startService(t)
	agent, err := Dial(svc.Addr(), "node-h")
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	ests := streamSamples(t, agent, 60, 10, 7)

	// Raw query must return the service's estimates bit-exactly.
	raw, err := agent.Query(QueryRequest{NodeID: "node-h", Channel: "p_node", From: 0, To: 59, ResolutionS: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(raw.Points) != 60 {
		t.Fatalf("%d raw points, want 60", len(raw.Points))
	}
	for i, p := range raw.Points {
		if math.Float64bits(float64(p.Value)) != math.Float64bits(ests[i].PNode) {
			t.Fatalf("raw p_node[%d] = %g, estimate was %g", i, float64(p.Value), ests[i].PNode)
		}
	}

	// The acceptance criterion: a 60 s window of p_cpu at 10 s rollup.
	body, err := agent.Query(QueryRequest{NodeID: "node-h", Channel: "p_cpu", From: 0, To: 59, ResolutionS: 10})
	if err != nil {
		t.Fatal(err)
	}
	if body.ResolutionS != 10 || body.Channel != "p_cpu" {
		t.Fatalf("series header = %+v", body)
	}
	if len(body.Points) != 6 {
		t.Fatalf("%d buckets, want 6", len(body.Points))
	}
	for bi, p := range body.Points {
		if p.Count != 10 {
			t.Fatalf("bucket %d count %d, want 10", bi, p.Count)
		}
		var lo, hi, sum float64 = math.Inf(1), math.Inf(-1), 0
		for i := bi * 10; i < (bi+1)*10; i++ {
			v := ests[i].PCPU
			lo, hi, sum = math.Min(lo, v), math.Max(hi, v), sum+v
		}
		if float64(p.Min) != lo || float64(p.Max) != hi || math.Abs(float64(p.Value)-sum/10) > 1e-9 {
			t.Fatalf("bucket %d = %+v, want min %g max %g mean %g", bi, p, lo, hi, sum/10)
		}
	}

	// The sparse ipmi channel survives the wire: NaN on 54 of 60 seconds.
	ipmi, err := agent.Query(QueryRequest{NodeID: "node-h", Channel: "ipmi", From: 0, To: 59})
	if err != nil {
		t.Fatal(err)
	}
	var readings int
	for i, p := range ipmi.Points {
		if math.IsNaN(float64(p.Value)) {
			continue
		}
		readings++
		if i%10 != 0 {
			t.Fatalf("ipmi reading on second %d", i)
		}
	}
	if readings != 6 {
		t.Fatalf("%d ipmi readings, want 6", readings)
	}

	// Stats now carry store figures.
	st, err := agent.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Store.Nodes != 1 || st.Store.Series != tsdb.NumChannels || st.Store.Points != int64(tsdb.NumChannels*60) {
		t.Fatalf("store stats = %+v", st.Store)
	}
}

// TestServiceAggregateQuery sums a channel across nodes with an empty
// NodeID.
func TestServiceAggregateQuery(t *testing.T) {
	checkNoLeaks(t)
	svc := startService(t)
	a, err := Dial(svc.Addr(), "agg-1")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Dial(svc.Addr(), "agg-2")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	estA := streamSamples(t, a, 20, 10, 11)
	estB := streamSamples(t, b, 20, 10, 12)

	body, err := a.Query(QueryRequest{Channel: "p_node", From: 0, To: 19})
	if err != nil {
		t.Fatal(err)
	}
	if len(body.Points) != 20 || body.NodeID != "" {
		t.Fatalf("aggregate = %d points, node %q", len(body.Points), body.NodeID)
	}
	for i, p := range body.Points {
		want := estA[i].PNode + estB[i].PNode
		if math.Abs(float64(p.Value)-want) > 1e-9 || p.Count != 2 {
			t.Fatalf("aggregate[%d] = %+v, want %g from 2 nodes", i, p, want)
		}
	}
}

// TestServiceQueryErrors: bad channel / node / resolution come back as
// KindError without killing the connection.
func TestServiceQueryErrors(t *testing.T) {
	checkNoLeaks(t)
	svc := startService(t)
	agent, err := Dial(svc.Addr(), "node-q")
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	streamSamples(t, agent, 5, 10, 3)
	for _, req := range []QueryRequest{
		{NodeID: "node-q", Channel: "bogus", To: 10},
		{NodeID: "ghost", Channel: "p_node", To: 10},
		{NodeID: "node-q", Channel: "p_node", To: 10, ResolutionS: 30},
	} {
		if _, err := agent.Query(req); err == nil {
			t.Fatalf("query %+v succeeded, want error", req)
		}
	}
	// The connection must survive the errors.
	if _, err := agent.Query(QueryRequest{NodeID: "node-q", Channel: "p_node", To: 10}); err != nil {
		t.Fatalf("connection dead after query errors: %v", err)
	}
}

// TestServiceCloseFlushesStore pins the shutdown ordering: Close waits for
// the per-connection handlers, seals the open rollup buckets, and leaves
// the store queryable but read-only.
func TestServiceCloseFlushesStore(t *testing.T) {
	checkNoLeaks(t)
	svc := NewService(sharedModel(t))
	svc.Logf = func(string, ...any) {}
	if err := svc.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	agent, err := Dial(svc.Addr(), "node-c")
	if err != nil {
		t.Fatal(err)
	}
	streamSamples(t, agent, 15, 10, 5)
	agent.Close()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	store := svc.Store()
	if err := store.Ingest("node-c", 99, tsdb.Sample{}); err == nil {
		t.Fatal("store writable after service close")
	}
	// The partial [10,20) bucket was flushed by Close.
	pts, err := store.Query("node-c", tsdb.ChanPNode, 0, 14, tsdb.TenSeconds)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Count != 10 || pts[1].Count != 5 {
		t.Fatalf("post-close buckets = %+v", pts)
	}
}

// TestServiceSetStore: a custom-sized store (the monitor CLI's -retain
// flag) is honoured and enforces retention.
func TestServiceSetStore(t *testing.T) {
	checkNoLeaks(t)
	svc := NewService(sharedModel(t))
	svc.Logf = func(string, ...any) {}
	opts := tsdb.Options{BlockPoints: 16, RetainRaw: 40, Retain10s: 40, Retain60s: 40}
	svc.SetStore(tsdb.New(opts))
	if err := svc.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	agent, err := Dial(svc.Addr(), "node-r")
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	streamSamples(t, agent, 120, 10, 9)
	body, err := agent.Query(QueryRequest{NodeID: "node-r", Channel: "p_node", From: 0, To: 119})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(body.Points); n < 40 || n > 56 {
		t.Fatalf("retained %d points, want ≈40", n)
	}
	if last := body.Points[len(body.Points)-1].Time; last != 119 {
		t.Fatalf("newest point at t=%g, want 119", last)
	}
}
