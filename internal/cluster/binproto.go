// The binary wire codec: the serving hot path's alternative to JSON
// framing. Frames keep the 4-byte big-endian length prefix, but the body is
// a 1-byte kind followed by a fixed-layout payload — big-endian integers,
// float64s as raw bit patterns (NaN payloads survive), length-prefixed
// strings. Messages without a hot-path payoff (stats, model transfer) ride
// inside binKindJSON frames carrying one ordinary JSON envelope, so only
// the per-second telemetry and query paths needed native encodings.
//
// A binFramer owns one connection's scratch: the read buffer, the write
// buffer, the decoded-sample slices and the node-ID intern slot. Nothing
// escapes a frame unless the caller copies it, which is what makes the
// steady-state sample round trip allocation-free on both sides.
package cluster

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Binary frame kinds (the byte after the length prefix).
const (
	// binKindJSON wraps one JSON envelope — the escape hatch for message
	// kinds without a native binary layout.
	binKindJSON          byte = 0
	binKindHello         byte = 1
	binKindSample        byte = 2
	binKindEstimate      byte = 3
	binKindQuery         byte = 4
	binKindSeries        byte = 5
	binKindError         byte = 6
	binKindRecordBatch   byte = 7
	binKindEstimateBatch byte = 8
)

// Estimate flag bits (binKindEstimate payloads).
const (
	estFlagFromMeasurement byte = 1 << 0
	estFlagLocal           byte = 1 << 1
)

// nodeIntern caches the one node-ID string a connection keeps repeating.
// string(b) == ni.s compiles to a comparison without conversion, so the
// steady state is a byte compare, not an allocation.
type nodeIntern struct{ s string }

func (ni *nodeIntern) intern(b []byte) string {
	if string(b) == ni.s {
		return ni.s
	}
	ni.s = string(b)
	return ni.s
}

// binFramer frames and parses binary messages on one connection. It is
// owned by a single goroutine (the agent, or the service's per-connection
// handler) — none of its scratch is synchronised.
type binFramer struct {
	r        *bufio.Reader
	w        *bufio.Writer
	maxFrame int

	rbuf []byte // frame payload scratch, reused across reads
	wbuf []byte // frame build scratch, reused across writes

	// lenBuf is the length-prefix scratch. A local would do, but locals
	// handed to io.ReadFull / Writer.Write escape to the heap (the byte
	// slice leaks into an interface call), costing an allocation per
	// frame; a field rides the framer's own allocation instead.
	lenBuf [4]byte
	node   nodeIntern

	// Decoded-message scratch: the sample/batch handed to the caller reuses
	// these slices, so callers must finish with one message before reading
	// the next (the request/response protocol guarantees that).
	sample      Sample
	measuredVal float64
	batch       RecordBatch
	batchVals   []float64 // backing for the batch samples' PMC slices
	batchMeas   []float64 // backing for the batch samples' Measured pointers
	batchOffs   []int     // PMC [start,end) offsets into batchVals
}

func newBinFramer(r *bufio.Reader, w *bufio.Writer, maxFrame int) *binFramer {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	return &binFramer{r: r, w: w, maxFrame: maxFrame}
}

// readFrame reads one binary frame, returning the kind and its payload.
// The payload aliases the framer's scratch — valid until the next read.
func (f *binFramer) readFrame() (byte, []byte, error) {
	if _, err := io.ReadFull(f.r, f.lenBuf[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(f.lenBuf[:])
	if n > uint32(f.maxFrame) {
		return 0, nil, fmt.Errorf("%w: length prefix claims %d bytes, cap %d", ErrFrameTooLarge, n, f.maxFrame)
	}
	if n == 0 {
		return 0, nil, fmt.Errorf("cluster: empty binary frame")
	}
	kind, err := f.r.ReadByte()
	if err != nil {
		return 0, nil, err
	}
	buf, err := readFrameInto(f.r, f.rbuf, int(n)-1)
	if buf != nil {
		f.rbuf = buf
	}
	if err != nil {
		return 0, nil, err
	}
	return kind, buf, nil
}

// begin starts building one outgoing frame; end length-prefixes and writes
// it. Nothing reaches the connection until end, so a frame that trips the
// size cap is dropped whole and the caller can send an error instead.
func (f *binFramer) begin(kind byte) {
	f.wbuf = append(f.wbuf[:0], kind)
}

func (f *binFramer) end() error {
	if len(f.wbuf) > f.maxFrame {
		return fmt.Errorf("%w: binary frame is %d bytes, cap %d", ErrFrameTooLarge, len(f.wbuf), f.maxFrame)
	}
	binary.BigEndian.PutUint32(f.lenBuf[:], uint32(len(f.wbuf)))
	if _, err := f.w.Write(f.lenBuf[:]); err != nil {
		return err
	}
	_, err := f.w.Write(f.wbuf)
	return err
}

// Append primitives (big-endian, fixed width).

func (f *binFramer) u8(v byte)    { f.wbuf = append(f.wbuf, v) }
func (f *binFramer) u16(v uint16) { f.wbuf = binary.BigEndian.AppendUint16(f.wbuf, v) }
func (f *binFramer) u32(v uint32) { f.wbuf = binary.BigEndian.AppendUint32(f.wbuf, v) }
func (f *binFramer) f64(v float64) {
	f.wbuf = binary.BigEndian.AppendUint64(f.wbuf, math.Float64bits(v))
}

func (f *binFramer) str(s string) error {
	if len(s) > math.MaxUint16 {
		return fmt.Errorf("cluster: string field of %d bytes exceeds the 64 KiB wire limit", len(s))
	}
	f.u16(uint16(len(s)))
	f.wbuf = append(f.wbuf, s...)
	return nil
}

// binReader consumes a frame payload. Reads past the end set err; callers
// check once at the end (and that the payload was consumed exactly).
type binReader struct {
	b   []byte
	off int
	err bool
}

func (r *binReader) u8() byte {
	if r.off+1 > len(r.b) {
		r.err = true
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *binReader) u16() uint16 {
	if r.off+2 > len(r.b) {
		r.err = true
		return 0
	}
	v := binary.BigEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *binReader) u32() uint32 {
	if r.off+4 > len(r.b) {
		r.err = true
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *binReader) f64() float64 {
	if r.off+8 > len(r.b) {
		r.err = true
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

func (r *binReader) bytes(n int) []byte {
	if n < 0 || r.off+n > len(r.b) {
		r.err = true
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

// done reports whether the payload parsed cleanly and was consumed exactly
// (trailing bytes are a protocol error, which keeps the codec fuzzable:
// decode ∘ encode is the identity on every accepted payload).
func (r *binReader) done() error {
	if r.err {
		return fmt.Errorf("cluster: truncated binary payload")
	}
	if r.off != len(r.b) {
		return fmt.Errorf("cluster: %d trailing bytes in binary payload", len(r.b)-r.off)
	}
	return nil
}

// --- message encodings ---

// Sample: node string, f64 time, u16 count + f64 PMC values, u8 presence
// flag + optional f64 measured.

func (f *binFramer) writeSample(nodeID string, t float64, pmc []float64, measured *float64) error {
	f.begin(binKindSample)
	if err := f.str(nodeID); err != nil {
		return err
	}
	f.f64(t)
	if len(pmc) > math.MaxUint16 {
		return fmt.Errorf("cluster: %d PMC values exceed the wire limit", len(pmc))
	}
	f.u16(uint16(len(pmc)))
	for _, v := range pmc {
		f.f64(v)
	}
	if measured != nil {
		f.u8(1)
		f.f64(*measured)
	} else {
		f.u8(0)
	}
	return f.end()
}

// readSample decodes a binKindSample payload into the framer's scratch
// Sample. The returned pointer (its PMC slice, its Measured pointer) is
// valid until the next readSample/readRecordBatch on this framer.
func (f *binFramer) readSample(payload []byte) (*Sample, error) {
	r := binReader{b: payload}
	node := r.bytes(int(r.u16()))
	t := r.f64()
	npmc := int(r.u16())
	if npmc > len(payload)/8 {
		return nil, fmt.Errorf("cluster: sample claims %d PMC values in a %d-byte payload", npmc, len(payload))
	}
	pmc := f.sample.PMC[:0]
	for i := 0; i < npmc; i++ {
		pmc = append(pmc, r.f64())
	}
	var measured *float64
	switch r.u8() {
	case 0:
	case 1:
		f.measuredVal = r.f64()
		measured = &f.measuredVal
	default:
		// Strict on the presence flag: every accepted payload re-encodes to
		// the same bytes, which is the round-trip law the fuzzer enforces.
		return nil, fmt.Errorf("cluster: bad measured flag in binary sample")
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	f.sample = Sample{NodeID: f.node.intern(node), Time: t, PMC: pmc, Measured: measured}
	return &f.sample, nil
}

// Estimate: node string, 4 × f64, u8 flags.

func (f *binFramer) writeEstimate(est *Estimate) error {
	f.begin(binKindEstimate)
	if err := f.str(est.NodeID); err != nil {
		return err
	}
	f.f64(est.Time)
	f.f64(est.PNode)
	f.f64(est.PCPU)
	f.f64(est.PMEM)
	var flags byte
	if est.FromMeasurement {
		flags |= estFlagFromMeasurement
	}
	if est.Local {
		flags |= estFlagLocal
	}
	f.u8(flags)
	return f.end()
}

func (f *binFramer) readEstimate(payload []byte) (Estimate, error) {
	r := binReader{b: payload}
	node := r.bytes(int(r.u16()))
	est := Estimate{
		Time:  r.f64(),
		PNode: r.f64(),
		PCPU:  r.f64(),
		PMEM:  r.f64(),
	}
	flags := r.u8()
	if err := r.done(); err != nil {
		return Estimate{}, err
	}
	if flags&^(estFlagFromMeasurement|estFlagLocal) != 0 {
		return Estimate{}, fmt.Errorf("cluster: unknown estimate flag bits %#x", flags)
	}
	est.NodeID = f.node.intern(node)
	est.FromMeasurement = flags&estFlagFromMeasurement != 0
	est.Local = flags&estFlagLocal != 0
	return est, nil
}

// RecordBatch: node string, u32 count, then per sample f64 time, u16 PMC
// count + values, u8 presence flag + optional f64 measured.

func (f *binFramer) writeRecordBatch(nodeID string, samples []BatchSample) error {
	f.begin(binKindRecordBatch)
	if err := f.str(nodeID); err != nil {
		return err
	}
	f.u32(uint32(len(samples)))
	for i := range samples {
		s := &samples[i]
		f.f64(s.Time)
		if len(s.PMC) > math.MaxUint16 {
			return fmt.Errorf("cluster: %d PMC values exceed the wire limit", len(s.PMC))
		}
		f.u16(uint16(len(s.PMC)))
		for _, v := range s.PMC {
			f.f64(v)
		}
		if s.Measured != nil {
			f.u8(1)
			f.f64(*s.Measured)
		} else {
			f.u8(0)
		}
	}
	return f.end()
}

// readRecordBatch decodes into the framer's scratch batch; the result and
// every slice in it are valid until the next read on this framer.
func (f *binFramer) readRecordBatch(payload []byte) (*RecordBatch, error) {
	r := binReader{b: payload}
	node := r.bytes(int(r.u16()))
	n := int(r.u32())
	if n > len(payload)/9 {
		return nil, fmt.Errorf("cluster: batch claims %d samples in a %d-byte payload", n, len(payload))
	}
	samples := f.batch.Samples[:0]
	vals := f.batchVals[:0]
	meas := f.batchMeas[:0]
	// PMC and Measured slices are carved out of single backing arrays after
	// the loop (the arrays may move while growing), so the loop records
	// offsets: per sample [pmcStart, pmcEnd, measuredIdx] with -1 for "no
	// measurement".
	offs := f.batchOffs[:0]
	for i := 0; i < n; i++ {
		t := r.f64()
		npmc := int(r.u16())
		if npmc > len(payload)/8 {
			return nil, fmt.Errorf("cluster: batch sample claims %d PMC values in a %d-byte payload", npmc, len(payload))
		}
		start := len(vals)
		for j := 0; j < npmc; j++ {
			vals = append(vals, r.f64())
		}
		mi := -1
		switch r.u8() {
		case 0:
		case 1:
			mi = len(meas)
			meas = append(meas, r.f64())
		default:
			return nil, fmt.Errorf("cluster: bad measured flag in binary batch")
		}
		offs = append(offs, start, len(vals), mi)
		samples = append(samples, BatchSample{Time: t})
	}
	f.batchVals, f.batchMeas, f.batchOffs = vals, meas, offs
	if err := r.done(); err != nil {
		return nil, err
	}
	for i := range samples {
		samples[i].PMC = vals[offs[3*i]:offs[3*i+1]:offs[3*i+1]]
		if mi := offs[3*i+2]; mi >= 0 {
			samples[i].Measured = &meas[mi]
		}
	}
	f.batch = RecordBatch{NodeID: f.node.intern(node), Samples: samples}
	return &f.batch, nil
}

// EstimateBatch: u32 count, then each estimate in the binKindEstimate
// layout.

func (f *binFramer) writeEstimateBatch(ests []Estimate) error {
	f.begin(binKindEstimateBatch)
	f.u32(uint32(len(ests)))
	for i := range ests {
		est := &ests[i]
		if err := f.str(est.NodeID); err != nil {
			return err
		}
		f.f64(est.Time)
		f.f64(est.PNode)
		f.f64(est.PCPU)
		f.f64(est.PMEM)
		var flags byte
		if est.FromMeasurement {
			flags |= estFlagFromMeasurement
		}
		if est.Local {
			flags |= estFlagLocal
		}
		f.u8(flags)
	}
	return f.end()
}

func (f *binFramer) readEstimateBatch(payload []byte) ([]Estimate, error) {
	r := binReader{b: payload}
	n := int(r.u32())
	if n > len(payload)/35 {
		return nil, fmt.Errorf("cluster: estimate batch claims %d entries in a %d-byte payload", n, len(payload))
	}
	ests := make([]Estimate, 0, n)
	for i := 0; i < n; i++ {
		node := r.bytes(int(r.u16()))
		est := Estimate{
			Time:  r.f64(),
			PNode: r.f64(),
			PCPU:  r.f64(),
			PMEM:  r.f64(),
		}
		flags := r.u8()
		if flags&^(estFlagFromMeasurement|estFlagLocal) != 0 {
			return nil, fmt.Errorf("cluster: unknown estimate flag bits %#x", flags)
		}
		est.NodeID = f.node.intern(node)
		est.FromMeasurement = flags&estFlagFromMeasurement != 0
		est.Local = flags&estFlagLocal != 0
		ests = append(ests, est)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return ests, nil
}

// Query: node string, channel string, f64 from, f64 to, u32 resolution.

func (f *binFramer) writeQuery(q QueryRequest) error {
	f.begin(binKindQuery)
	if err := f.str(q.NodeID); err != nil {
		return err
	}
	if err := f.str(q.Channel); err != nil {
		return err
	}
	f.f64(q.From)
	f.f64(q.To)
	f.u32(uint32(q.ResolutionS))
	return f.end()
}

func (f *binFramer) readQuery(payload []byte) (QueryRequest, error) {
	r := binReader{b: payload}
	node := r.bytes(int(r.u16()))
	channel := r.bytes(int(r.u16()))
	q := QueryRequest{
		From: r.f64(),
		To:   r.f64(),
	}
	q.ResolutionS = int(r.u32())
	if err := r.done(); err != nil {
		return QueryRequest{}, err
	}
	q.NodeID = string(node)
	q.Channel = string(channel)
	return q, nil
}

// Series: node string, channel string, u32 resolution, u32 point count,
// then per point f64 time/value/min/max and u32 count. Values travel as
// raw bit patterns, so the decoded SeriesBody is bit-identical to what the
// JSON path produces (JSON round-trips float64 exactly; NaN becomes null
// and back).

func (f *binFramer) writeSeries(body SeriesBody) error {
	f.begin(binKindSeries)
	if err := f.str(body.NodeID); err != nil {
		return err
	}
	if err := f.str(body.Channel); err != nil {
		return err
	}
	f.u32(uint32(body.ResolutionS))
	f.u32(uint32(len(body.Points)))
	for i := range body.Points {
		p := &body.Points[i]
		f.f64(p.Time)
		f.f64(float64(p.Value))
		f.f64(float64(p.Min))
		f.f64(float64(p.Max))
		f.u32(uint32(p.Count))
	}
	return f.end()
}

func (f *binFramer) readSeries(payload []byte) (SeriesBody, error) {
	r := binReader{b: payload}
	node := r.bytes(int(r.u16()))
	channel := r.bytes(int(r.u16()))
	res := int(r.u32())
	n := int(r.u32())
	if n > len(payload)/36 {
		return SeriesBody{}, fmt.Errorf("cluster: series claims %d points in a %d-byte payload", n, len(payload))
	}
	pts := make([]SeriesPoint, 0, n)
	for i := 0; i < n; i++ {
		pts = append(pts, SeriesPoint{
			Time:  r.f64(),
			Value: NullFloat(r.f64()),
			Min:   NullFloat(r.f64()),
			Max:   NullFloat(r.f64()),
			Count: int(r.u32()),
		})
	}
	if err := r.done(); err != nil {
		return SeriesBody{}, err
	}
	return SeriesBody{
		NodeID:      string(node),
		Channel:     string(channel),
		ResolutionS: res,
		Points:      pts,
	}, nil
}

// Error: u32 length + message bytes.

func (f *binFramer) writeError(msg string) error {
	f.begin(binKindError)
	f.u32(uint32(len(msg)))
	f.wbuf = append(f.wbuf, msg...)
	return f.end()
}

func (f *binFramer) readError(payload []byte) (string, error) {
	r := binReader{b: payload}
	msg := r.bytes(int(r.u32()))
	if err := r.done(); err != nil {
		return "", err
	}
	return string(msg), nil
}

// Hello: node string (the binary layout exists for completeness — the
// negotiation handshake itself always runs over JSON).

func (f *binFramer) writeHello(h Hello) error {
	f.begin(binKindHello)
	if err := f.str(h.NodeID); err != nil {
		return err
	}
	return f.end()
}

func (f *binFramer) readHello(payload []byte) (Hello, error) {
	r := binReader{b: payload}
	node := r.bytes(int(r.u16()))
	if err := r.done(); err != nil {
		return Hello{}, err
	}
	return Hello{NodeID: string(node)}, nil
}

// writeJSONEnvelope wraps one JSON envelope in a binKindJSON frame — the
// transport for kinds without a native binary layout (stats, model).
func (f *binFramer) writeJSONEnvelope(kind MsgKind, body any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("cluster: marshal %s: %w", kind, err)
	}
	env, err := json.Marshal(Envelope{Kind: kind, Body: raw})
	if err != nil {
		return err
	}
	f.begin(binKindJSON)
	f.wbuf = append(f.wbuf, env...)
	return f.end()
}

// readJSONEnvelope parses a binKindJSON payload.
func readJSONEnvelope(payload []byte) (Envelope, error) {
	var env Envelope
	if err := json.Unmarshal(payload, &env); err != nil {
		return Envelope{}, fmt.Errorf("cluster: bad envelope: %w", err)
	}
	return env, nil
}
