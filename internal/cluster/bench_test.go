package cluster

import (
	"bufio"
	"net"
	"testing"
)

// benchPMC returns a plausible counter vector for the shared model's width.
func benchPMC() []float64 {
	pmc := make([]float64, 10)
	for i := range pmc {
		pmc[i] = 1e9 + float64(i)*1e7
	}
	return pmc
}

// BenchmarkAgentSendLoopback measures one full request/reply over loopback
// TCP: frame encode, service decode, monitor push, history ingest, estimate
// encode, agent decode. One measured sample seeds the monitor so the steady
// state exercises the DynamicTRR prediction path, not the cold start.
func BenchmarkAgentSendLoopback(b *testing.B) {
	svc := startService(b)
	agent, err := Dial(svc.Addr(), "bench-loopback")
	if err != nil {
		b.Fatal(err)
	}
	defer agent.Close()
	pmc := benchPMC()
	seed := 90.0
	if _, err := agent.Send(0, pmc, &seed); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agent.Send(float64(i+1), pmc, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceHandle measures the service handler alone over an
// in-process net.Pipe — no TCP stack, so the number isolates decode +
// monitor + store + encode.
func BenchmarkServiceHandle(b *testing.B) {
	svc := NewServiceWith(sharedModel(b), ServiceOptions{})
	svc.Logf = func(string, ...any) {}
	defer svc.Close()

	client, server := net.Pipe()
	defer client.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		svc.handle(server)
	}()
	r := bufio.NewReader(client)
	w := bufio.NewWriter(client)
	send := func(kind MsgKind, body any) Envelope {
		b.Helper()
		if err := WriteMsg(w, kind, body); err != nil {
			b.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
		env, err := ReadMsg(r)
		if err != nil {
			b.Fatal(err)
		}
		return env
	}
	send(KindHello, Hello{NodeID: "bench-pipe"})
	pmc := benchPMC()
	seed := 90.0
	send(KindSample, Sample{NodeID: "bench-pipe", Time: 0, PMC: pmc, Measured: &seed})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := send(KindSample, Sample{NodeID: "bench-pipe", Time: float64(i + 1), PMC: pmc})
		if env.Kind != KindEstimate {
			b.Fatalf("reply kind %q", env.Kind)
		}
	}
	b.StopTimer()
	client.Close()
	<-done
}
