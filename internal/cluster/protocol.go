// Package cluster implements the deployment story of §4.1: HighRPM runs as
// a service on the control node of an HPC system and is shared with the
// compute nodes. Compute-node agents stream PMC samples and sparse IPMI
// readings to the service; the service answers with restored node power and
// the CPU/memory breakdown.
//
// The wire protocol is length-prefixed JSON over TCP — stdlib-only, easy to
// debug, and fast enough for 1 Sa/s telemetry from hundreds of nodes.
package cluster

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"highrpm/internal/tsdb"
)

// MsgKind discriminates protocol messages.
type MsgKind string

// Protocol message kinds.
const (
	// KindHello registers an agent with the service.
	KindHello MsgKind = "hello"
	// KindSample carries one second of telemetry from an agent.
	KindSample MsgKind = "sample"
	// KindEstimate is the service's restored power for one sample.
	KindEstimate MsgKind = "estimate"
	// KindStats requests / carries service statistics.
	KindStats MsgKind = "stats"
	// KindModel requests / carries the service's trained model so agents
	// can fall back to local inference when the control node is far away
	// or the network is congested (§6.4.6's failure scenario).
	KindModel MsgKind = "model"
	// KindQuery asks the service for a window of stored power history.
	KindQuery MsgKind = "query"
	// KindSeries carries the decoded points answering a KindQuery.
	KindSeries MsgKind = "series"
	// KindError reports a server-side failure for a request.
	KindError MsgKind = "error"
	// KindRecordBatch carries several coalesced seconds of telemetry in one
	// frame; the service answers with KindEstimateBatch (or one KindError
	// for the whole batch).
	KindRecordBatch MsgKind = "record_batch"
	// KindEstimateBatch answers a KindRecordBatch with one estimate per
	// accepted sample, in batch order.
	KindEstimateBatch MsgKind = "estimate_batch"
)

// Wire codecs an agent can offer in Hello. JSON is the baseline every peer
// speaks; binary is the length-prefixed binary framing in binproto.go.
const (
	// CodecJSON is the length-prefixed JSON framing (the original protocol).
	CodecJSON = "json"
	// CodecBinary is the length-prefixed binary framing: same 4-byte length
	// prefix, then a 1-byte kind and a fixed-layout payload.
	CodecBinary = "binary"
)

// Envelope frames every message.
type Envelope struct {
	Kind MsgKind         `json:"kind"`
	Body json.RawMessage `json:"body,omitempty"`
}

// Hello registers a compute node and negotiates the wire codec. The
// handshake itself is always JSON: an agent offers codecs it speaks in
// Codecs, the service echoes its pick in Codec, and both switch after the
// reply. Peers predating the binary codec simply drop the unknown fields —
// the offer reads as empty, the reply's Codec as "", and both sides keep
// speaking JSON. No version check, no second round trip.
type Hello struct {
	NodeID string `json:"node_id"`
	// Codecs is the agent's offer, most preferred first (request only).
	Codecs []string `json:"codecs,omitempty"`
	// Codec is the service's selection (reply only); "" means JSON.
	Codec string `json:"codec,omitempty"`
}

// Sample is one second of telemetry from a compute node agent.
type Sample struct {
	NodeID string    `json:"node_id"`
	Time   float64   `json:"time"`
	PMC    []float64 `json:"pmc"`
	// Measured carries the IPMI reading when one is available this second;
	// nil otherwise (the common case — that is the whole problem).
	Measured *float64 `json:"measured,omitempty"`
}

// Estimate is the service's answer for one sample.
type Estimate struct {
	NodeID string  `json:"node_id"`
	Time   float64 `json:"time"`
	PNode  float64 `json:"p_node"`
	PCPU   float64 `json:"p_cpu"`
	PMEM   float64 `json:"p_mem"`
	// FromMeasurement reports whether PNode is an IM reading (true) or a
	// DynamicTRR prediction (false).
	FromMeasurement bool `json:"from_measurement"`
	// Local reports that the estimate was computed on the agent from its
	// fetched model snapshot (the §6.4.6 degraded-mode fallback) rather
	// than by the service. The service never sets it on wire replies.
	Local bool `json:"local,omitempty"`
}

// BatchSample is one coalesced second inside a RecordBatch; the node ID
// lives on the batch, everything else matches Sample.
type BatchSample struct {
	Time float64   `json:"time"`
	PMC  []float64 `json:"pmc"`
	// Measured carries the second's IPMI reading when one arrived.
	Measured *float64 `json:"measured,omitempty"`
}

// RecordBatch carries several seconds of telemetry from one node in a
// single frame (KindRecordBatch). Samples are in time order; the service
// processes them in order, so batching changes framing, not semantics.
type RecordBatch struct {
	NodeID  string        `json:"node_id"`
	Samples []BatchSample `json:"samples"`
}

// EstimateBatch answers a RecordBatch: one estimate per sample, in order.
// A batch is all-or-nothing — if any sample is rejected the service
// replies KindError for the whole batch instead.
type EstimateBatch struct {
	Estimates []Estimate `json:"estimates"`
}

// Stats summarises service activity.
type Stats struct {
	Nodes     int   `json:"nodes"`
	Samples   int64 `json:"samples"`
	Estimates int64 `json:"estimates"`
	Measured  int64 `json:"measured"`
	// Conns is the number of currently tracked connections; PeakConns the
	// highwater mark since the service started.
	Conns     int `json:"conns"`
	PeakConns int `json:"peak_conns"`
	// Rejected counts connections dropped at accept by the MaxConns cap;
	// TimedOut counts connections reaped by the per-connection read
	// deadline (dead or blackholed peers).
	Rejected int64 `json:"rejected"`
	TimedOut int64 `json:"timed_out"`
	// NodeConns maps node ID to its live connection count (connections
	// that have said Hello); nil when no node is connected.
	NodeConns map[string]int `json:"node_conns,omitempty"`
	// BinConns counts connections that negotiated the binary codec
	// (cumulative); BinFrames/JSONFrames count requests handled per codec,
	// so operators can see which peers still speak JSON.
	BinConns   int64 `json:"bin_conns"`
	BinFrames  int64 `json:"bin_frames"`
	JSONFrames int64 `json:"json_frames"`
	// Batches counts KindRecordBatch requests and BatchSamples the samples
	// they carried (BatchSamples/Batches is the mean coalescing factor).
	Batches      int64 `json:"batches"`
	BatchSamples int64 `json:"batch_samples"`
	// Store summarises the embedded history store (series count,
	// compressed bytes, compression ratio).
	Store tsdb.Stats `json:"store"`
}

// QueryRequest asks for stored power history over [From, To] seconds.
type QueryRequest struct {
	// NodeID selects one node's history; empty aggregates the channel
	// across every node (cluster-level power).
	NodeID  string  `json:"node_id,omitempty"`
	Channel string  `json:"channel"`
	From    float64 `json:"from_s"`
	To      float64 `json:"to_s"`
	// ResolutionS is the bucket width in seconds: 1 (raw, the default
	// when 0), 10 or 60.
	ResolutionS int `json:"resolution_s,omitempty"`
}

// The series wire encoding lives in tsdb (tsdb/json.go) so the TCP
// protocol, the obs HTTP API, and the highrpm-query -json output all
// marshal one set of types and agree byte-for-byte. The aliases keep the
// cluster names every existing caller uses.
type (
	// NullFloat marshals NaN/Inf as JSON null and restores null as NaN.
	NullFloat = tsdb.NullFloat
	// SeriesPoint is one wire-encoded store point (see tsdb.Point).
	SeriesPoint = tsdb.SeriesPoint
	// SeriesBody answers a KindQuery.
	SeriesBody = tsdb.SeriesBody
)

// ErrorBody carries a server-side error message.
type ErrorBody struct {
	Message string `json:"message"`
}

// ServiceError is a KindError reply decoded by an agent: the transport is
// healthy but the service rejected the request. ResilientAgent propagates
// these to the caller instead of reconnecting.
type ServiceError struct {
	Message string
}

// Error renders the service-side message.
func (e *ServiceError) Error() string { return "cluster: service error: " + e.Message }

// ModelBody carries a serialised model (core.Marshal output).
type ModelBody struct {
	Data []byte `json:"data"`
}

// DefaultMaxFrame bounds a frame to keep a misbehaving peer from
// ballooning memory; 8 MiB accommodates model transfers with ample headroom
// while still rejecting length-prefix garbage. Service operators can lower
// the cap per deployment via ServiceOptions.MaxFrame.
const DefaultMaxFrame = 8 << 20

// ErrFrameTooLarge reports a frame whose length prefix exceeds the
// configured cap. Both sides use it: ReadMsg refuses to read such a frame
// and WriteMsg refuses to emit one a default peer would reject.
var ErrFrameTooLarge = errors.New("cluster: frame exceeds size limit")

// frameChunk is the largest single allocation ReadMsg makes before bytes
// actually arrive. A peer that claims a huge frame but never sends it costs
// at most one chunk, not the claimed length.
const frameChunk = 64 << 10

// WriteMsg frames and writes one message.
func WriteMsg(w io.Writer, kind MsgKind, body any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("cluster: marshal %s: %w", kind, err)
	}
	env, err := json.Marshal(Envelope{Kind: kind, Body: raw})
	if err != nil {
		return err
	}
	if len(env) > DefaultMaxFrame {
		return fmt.Errorf("%w: %s frame is %d bytes, cap %d", ErrFrameTooLarge, kind, len(env), DefaultMaxFrame)
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(env)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err = w.Write(env)
	return err
}

// ReadMsg reads one framed message, capping frames at DefaultMaxFrame.
func ReadMsg(r *bufio.Reader) (Envelope, error) {
	return ReadMsgLimit(r, DefaultMaxFrame)
}

// ReadMsgLimit reads one framed message, rejecting frames over maxFrame
// bytes with ErrFrameTooLarge. The frame body is read incrementally so an
// adversarial length prefix cannot force a large up-front allocation.
func ReadMsgLimit(r *bufio.Reader, maxFrame int) (Envelope, error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return Envelope{}, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > uint32(maxFrame) {
		return Envelope{}, fmt.Errorf("%w: length prefix claims %d bytes, cap %d", ErrFrameTooLarge, n, maxFrame)
	}
	buf, err := readFrame(r, int(n))
	if err != nil {
		return Envelope{}, err
	}
	var env Envelope
	if err := json.Unmarshal(buf, &env); err != nil {
		return Envelope{}, fmt.Errorf("cluster: bad envelope: %w", err)
	}
	return env, nil
}

// readFrame reads exactly n bytes, growing the buffer only as data arrives
// (at most frameChunk ahead of what the peer has sent).
func readFrame(r io.Reader, n int) ([]byte, error) {
	return readFrameInto(r, nil, n)
}

// readFrameInto reads exactly n bytes into buf (reusing its capacity; the
// binary framer passes its per-connection scratch so steady-state reads do
// not allocate). Growth stays chunked, so a peer that claims a huge frame
// but never sends it costs at most frameChunk beyond what arrived.
func readFrameInto(r io.Reader, buf []byte, n int) ([]byte, error) {
	buf = buf[:0]
	if cap(buf) == 0 {
		buf = make([]byte, 0, min(n, frameChunk))
	}
	for len(buf) < n {
		take := min(n-len(buf), frameChunk)
		if cap(buf)-len(buf) < take {
			grown := make([]byte, len(buf), min(n, 2*cap(buf)+take))
			copy(grown, buf)
			buf = grown
		}
		m, err := io.ReadFull(r, buf[len(buf):len(buf)+take])
		buf = buf[:len(buf)+m]
		if err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// DecodeBody unmarshals an envelope body into dst.
func DecodeBody(env Envelope, dst any) error {
	if err := json.Unmarshal(env.Body, dst); err != nil {
		return fmt.Errorf("cluster: bad %s body: %w", env.Kind, err)
	}
	return nil
}
