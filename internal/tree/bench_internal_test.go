package tree

import (
	"math/rand"
	"testing"

	"highrpm/internal/mat"
)

func BenchmarkFitLarge(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n, c := 7000, 11
	x := mat.NewDense(n, c)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < c; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
		y[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := NewRegressor()
		tr.MinSamplesLeaf = 3
		tr.MaxDepth = 16
		if err := tr.Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
