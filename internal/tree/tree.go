// Package tree implements the CART regression tree used both as the
// Table 4 "DT" baseline and as StaticTRR's ResModel (§4.2.1 — "we tested
// all the linear and nonlinear methods ... but found that DT worked best"),
// plus the Random Forest and Gradient Boosting ensembles built on it.
package tree

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"highrpm/internal/mat"
	"highrpm/internal/model"
)

// Node is one node of a serialised regression tree. Leaves have Feature == -1.
type Node struct {
	Feature   int     `json:"feature"`             // split feature, -1 for leaf
	Threshold float64 `json:"threshold,omitempty"` // go left when x ≤ threshold
	Left      int32   `json:"left,omitempty"`      // child indices into Nodes
	Right     int32   `json:"right,omitempty"`
	Value     float64 `json:"value"` // leaf prediction (mean of targets)
}

// Regressor is a CART regression tree minimising squared error, grown
// depth-first with variance-reduction splits.
type Regressor struct {
	MaxDepth       int `json:"max_depth"`        // 0 means unbounded
	MinSamplesLeaf int `json:"min_samples_leaf"` // defaults to 1
	// MaxFeatures limits the features considered per split; 0 means all.
	// Random Forest sets this for decorrelation.
	MaxFeatures int    `json:"max_features"`
	Seed        int64  `json:"seed"`
	Nodes       []Node `json:"nodes"`
	// Workers bounds the goroutines used to scan split candidates on large
	// nodes: 0 uses every CPU, 1 forces the serial path. Either way the
	// fitted tree is bit-identical — the feature scan is reduced in fixed
	// feature order. Never persisted.
	Workers int `json:"-"`

	rng *rand.Rand
	par int // resolved worker count for the current Fit
}

// NewRegressor returns a tree with scikit-like defaults
// (criterion=squared_error, unbounded depth, min_samples_leaf=1).
func NewRegressor() *Regressor { return &Regressor{MinSamplesLeaf: 1} }

// workspace carries the presorted CART state: for every feature, the
// sample indices of the current node's range sorted by that feature. The
// arrays are stable-partitioned on each split, so no node ever re-sorts —
// total work is O(n·features·depth) instead of O(n log n·features·nodes).
// A workspace is rebindable: Forest reuses one per worker across member
// trees and GradientBoosting reuses one across stages, so ensemble fits
// stop re-allocating O(rows·features) index state per tree.
type workspace struct {
	x *mat.Dense
	y []float64
	// sorted[j][lo:hi] holds the node's samples ordered by feature j.
	sorted [][]int32
	// scratch buffers the right-hand side during stable partitions.
	scratch []int32
	// left flags per sample index whether it goes to the left child.
	left []bool
	// keys buffers one feature column during the presort.
	keys []float64
	// featGain/featThr hold per-feature results of a parallel split scan.
	featGain []float64
	featThr  []float64
}

// indexByKey sorts sample indices by their key (one feature column). A
// concrete sort.Interface keeps the presort allocation-free per call: unlike
// a sort.Slice closure it needs no per-invocation func value, and comparing
// through a flat key slice replaces two matrix lookups per comparison.
type indexByKey struct {
	idx []int32
	key []float64
}

func (s indexByKey) Len() int           { return len(s.idx) }
func (s indexByKey) Less(a, b int) bool { return s.key[s.idx[a]] < s.key[s.idx[b]] }
func (s indexByKey) Swap(a, b int)      { s.idx[a], s.idx[b] = s.idx[b], s.idx[a] }

// bind points the workspace at a dataset and rebuilds the presorted index
// arrays, growing buffers only when the shape exceeds anything seen before.
func (ws *workspace) bind(x *mat.Dense, y []float64) {
	r, c := x.Dims()
	ws.x, ws.y = x, y
	if cap(ws.scratch) < r {
		ws.scratch = make([]int32, r)
		ws.left = make([]bool, r)
		ws.keys = make([]float64, r)
	}
	ws.scratch, ws.left, ws.keys = ws.scratch[:r], ws.left[:r], ws.keys[:r]
	for len(ws.sorted) < c {
		ws.sorted = append(ws.sorted, nil)
	}
	ws.sorted = ws.sorted[:c]
	if cap(ws.featGain) < c {
		ws.featGain = make([]float64, c)
		ws.featThr = make([]float64, c)
	}
	ws.featGain, ws.featThr = ws.featGain[:c], ws.featThr[:c]
	for j := 0; j < c; j++ {
		if cap(ws.sorted[j]) < r {
			ws.sorted[j] = make([]int32, r)
		}
		idx := ws.sorted[j][:r]
		ws.sorted[j] = idx
		for i := range idx {
			idx[i] = int32(i)
			ws.keys[i] = x.At(i, j)
		}
		sort.Sort(indexByKey{idx: idx, key: ws.keys})
	}
}

// Fit grows the tree on the rows of x against targets y.
func (t *Regressor) Fit(x *mat.Dense, y []float64) error {
	r, _ := x.Dims()
	if r != len(y) {
		return fmt.Errorf("tree: %d rows vs %d targets", r, len(y))
	}
	if r == 0 {
		return fmt.Errorf("tree: empty training set")
	}
	ws := &workspace{}
	ws.bind(x, y)
	t.fitBound(ws)
	return nil
}

// fitBound grows the tree using a workspace already bound to its dataset.
func (t *Regressor) fitBound(ws *workspace) {
	if t.MinSamplesLeaf <= 0 {
		t.MinSamplesLeaf = 1
	}
	t.rng = rand.New(rand.NewSource(t.Seed))
	t.par = resolveWorkers(t.Workers)
	t.Nodes = t.Nodes[:0]
	t.grow(ws, 0, len(ws.y), 1)
}

// grow builds the subtree over the presorted range [lo, hi) and returns its
// node index.
func (t *Regressor) grow(ws *workspace, lo, hi, depth int) int32 {
	n := hi - lo
	mean, sse := meanSSE(ws, lo, hi)
	id := int32(len(t.Nodes))
	t.Nodes = append(t.Nodes, Node{Feature: -1, Value: mean})
	if n < 2*t.MinSamplesLeaf || sse <= 1e-12 {
		return id
	}
	if t.MaxDepth > 0 && depth >= t.MaxDepth {
		return id
	}
	feat, thr, gain := t.bestSplit(ws, lo, hi, sse)
	if feat < 0 || gain <= 0 {
		return id
	}
	mid := t.partition(ws, lo, hi, feat, thr)
	if mid-lo < t.MinSamplesLeaf || hi-mid < t.MinSamplesLeaf {
		return id
	}
	left := t.grow(ws, lo, mid, depth+1)
	right := t.grow(ws, mid, hi, depth+1)
	t.Nodes[id] = Node{Feature: feat, Threshold: thr, Left: left, Right: right, Value: mean}
	return id
}

func meanSSE(ws *workspace, lo, hi int) (mean, sse float64) {
	var s float64
	for _, i := range ws.sorted[0][lo:hi] {
		s += ws.y[i]
	}
	mean = s / float64(hi-lo)
	for _, i := range ws.sorted[0][lo:hi] {
		d := ws.y[i] - mean
		sse += d * d
	}
	return mean, sse
}

// bestSplit scans candidate features for the split maximising variance
// reduction over the presorted range. Large nodes shard the feature scan
// across goroutines; per-feature results are reduced in fixed feature order
// with a strict > comparison, which selects exactly the candidate the serial
// scan selects (the first boundary, in scan order, attaining the maximum
// gain), so parallel and serial fits are bit-identical.
func (t *Regressor) bestSplit(ws *workspace, lo, hi int, parentSSE float64) (feat int, thr, gain float64) {
	_, cols := ws.x.Dims()
	features := make([]int, cols)
	for j := range features {
		features[j] = j
	}
	if t.MaxFeatures > 0 && t.MaxFeatures < cols {
		t.rng.Shuffle(cols, func(a, b int) { features[a], features[b] = features[b], features[a] })
		features = features[:t.MaxFeatures]
	}
	n := hi - lo
	var sumAll, sumSqAll float64
	for _, i := range ws.sorted[0][lo:hi] {
		sumAll += ws.y[i]
		sumSqAll += ws.y[i] * ws.y[i]
	}
	feat = -1
	if w := min(t.par, len(features)); w > 1 && n >= parallelSplitCutoff {
		var wg sync.WaitGroup
		for k := 0; k < w; k++ {
			flo, fhi := shardRange(len(features), w, k)
			if flo >= fhi {
				continue
			}
			wg.Add(1)
			go func(flo, fhi int) {
				defer wg.Done()
				for fi := flo; fi < fhi; fi++ {
					ws.featGain[fi], ws.featThr[fi] =
						t.scanFeature(ws, lo, hi, features[fi], parentSSE, sumAll, sumSqAll)
				}
			}(flo, fhi)
		}
		wg.Wait()
		for fi, j := range features {
			if ws.featGain[fi] > gain {
				gain, feat, thr = ws.featGain[fi], j, ws.featThr[fi]
			}
		}
		return feat, thr, gain
	}
	for _, j := range features {
		g, th := t.scanFeature(ws, lo, hi, j, parentSSE, sumAll, sumSqAll)
		if g > gain {
			gain, feat, thr = g, j, th
		}
	}
	return feat, thr, gain
}

// scanFeature evaluates every split boundary of one feature over the
// presorted range, returning the best gain (0 if no valid boundary) and its
// threshold. Within a feature the strict > keeps the first boundary
// attaining the feature's maximum gain, matching the legacy global scan.
func (t *Regressor) scanFeature(ws *workspace, lo, hi, j int, parentSSE, sumAll, sumSqAll float64) (gain, thr float64) {
	order := ws.sorted[j][lo:hi]
	n := hi - lo
	// Prefix scan: evaluate every boundary between distinct values.
	var sumL, sumSqL float64
	for k := 0; k < n-1; k++ {
		yi := ws.y[order[k]]
		sumL += yi
		sumSqL += yi * yi
		xv := ws.x.At(int(order[k]), j)
		nx := ws.x.At(int(order[k+1]), j)
		if nx <= xv {
			continue // cannot split between equal values
		}
		nl := float64(k + 1)
		nr := float64(n - k - 1)
		if int(nl) < t.MinSamplesLeaf || int(nr) < t.MinSamplesLeaf {
			continue
		}
		sseL := sumSqL - sumL*sumL/nl
		sumR := sumAll - sumL
		sseR := (sumSqAll - sumSqL) - sumR*sumR/nr
		g := parentSSE - sseL - sseR
		if g > gain {
			gain = g
			thr = 0.5 * (xv + nx)
		}
	}
	return gain, thr
}

// partition stable-partitions every feature's presorted range so left-child
// samples (x[feat] ≤ thr) precede right-child samples while each side stays
// sorted, returning the boundary index.
func (t *Regressor) partition(ws *workspace, lo, hi, feat int, thr float64) int {
	for _, i := range ws.sorted[feat][lo:hi] {
		ws.left[i] = ws.x.At(int(i), feat) <= thr
	}
	mid := lo
	for _, arr := range ws.sorted {
		seg := arr[lo:hi]
		right := ws.scratch[:0]
		w := 0
		for _, i := range seg {
			if ws.left[i] {
				seg[w] = i
				w++
			} else {
				right = append(right, i)
			}
		}
		copy(seg[w:], right)
		mid = lo + w
	}
	return mid
}

// Predict walks the tree for one feature vector.
func (t *Regressor) Predict(features []float64) float64 {
	if len(t.Nodes) == 0 {
		panic("tree: model is not fitted")
	}
	id := int32(0)
	for {
		n := t.Nodes[id]
		if n.Feature < 0 {
			return n.Value
		}
		if features[n.Feature] <= n.Threshold {
			id = n.Left
		} else {
			id = n.Right
		}
	}
}

// Depth returns the maximum depth of the fitted tree (root = 1).
func (t *Regressor) Depth() int {
	if len(t.Nodes) == 0 {
		return 0
	}
	var walk func(id int32) int
	walk = func(id int32) int {
		n := t.Nodes[id]
		if n.Feature < 0 {
			return 1
		}
		l, r := walk(n.Left), walk(n.Right)
		if l > r {
			return 1 + l
		}
		return 1 + r
	}
	return walk(0)
}

// Forest is a bagged ensemble of regression trees (Table 4: RF, 10 trees).
type Forest struct {
	NumTrees    int          `json:"num_trees"`
	MaxDepth    int          `json:"max_depth"`
	MaxFeatures int          `json:"max_features"` // 0: ceil(cols/3), sklearn-style for regression
	Seed        int64        `json:"seed"`
	Trees       []*Regressor `json:"trees"`
	// Workers bounds the goroutines fitting member trees: 0 uses every CPU,
	// 1 fits serially. Bootstrap draws and member seeds are taken from the
	// forest rng before any tree is grown, so the fitted forest is identical
	// at every worker count. Never persisted.
	Workers int `json:"-"`
}

// NewForest returns a Random Forest with the paper's 10 trees.
func NewForest(numTrees int, seed int64) *Forest {
	if numTrees <= 0 {
		numTrees = 10
	}
	return &Forest{NumTrees: numTrees, Seed: seed}
}

// Fit grows NumTrees trees on bootstrap resamples of (x, y).
func (f *Forest) Fit(x *mat.Dense, y []float64) error {
	r, c := x.Dims()
	if r != len(y) {
		return fmt.Errorf("tree: %d rows vs %d targets", r, len(y))
	}
	if r == 0 {
		return fmt.Errorf("tree: empty training set")
	}
	maxFeat := f.MaxFeatures
	if maxFeat <= 0 {
		maxFeat = (c + 2) / 3
		if maxFeat < 1 {
			maxFeat = 1
		}
	}
	rng := rand.New(rand.NewSource(f.Seed))
	f.Trees = make([]*Regressor, f.NumTrees)
	// Draw every bootstrap sample and member seed serially, in the same rng
	// order as the legacy loop, so the fitted forest does not depend on how
	// many workers grow the trees afterwards.
	type bootstrap struct {
		bx *mat.Dense
		by []float64
	}
	boots := make([]bootstrap, f.NumTrees)
	for k := range f.Trees {
		bx := mat.NewDense(r, c)
		by := make([]float64, r)
		for i := 0; i < r; i++ {
			j := rng.Intn(r)
			copy(bx.Row(i), x.Row(j))
			by[i] = y[j]
		}
		boots[k] = bootstrap{bx: bx, by: by}
		t := NewRegressor()
		t.MaxDepth = f.MaxDepth
		t.MaxFeatures = maxFeat
		t.Seed = rng.Int63()
		t.Workers = 1 // the forest parallelises at tree granularity
		f.Trees[k] = t
	}
	w := min(resolveWorkers(f.Workers), f.NumTrees)
	if w <= 1 {
		// Serial path: one workspace rebinds across members, so a forest fit
		// allocates its presorted index state once instead of per tree.
		ws := &workspace{}
		for k, t := range f.Trees {
			ws.bind(boots[k].bx, boots[k].by)
			t.fitBound(ws)
		}
		return nil
	}
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ws := &workspace{} // per-worker, rebinds across this worker's trees
			for k := g; k < f.NumTrees; k += w {
				ws.bind(boots[k].bx, boots[k].by)
				f.Trees[k].fitBound(ws)
			}
		}(g)
	}
	wg.Wait()
	return nil
}

// Predict averages the member trees.
func (f *Forest) Predict(features []float64) float64 {
	if len(f.Trees) == 0 {
		panic("tree: forest is not fitted")
	}
	var s float64
	for _, t := range f.Trees {
		s += t.Predict(features)
	}
	return s / float64(len(f.Trees))
}

// GradientBoosting is a squared-error gradient-boosted tree ensemble
// (Table 4: GB, 10 trees).
type GradientBoosting struct {
	NumTrees     int          `json:"num_trees"`
	LearningRate float64      `json:"learning_rate"`
	MaxDepth     int          `json:"max_depth"`
	Seed         int64        `json:"seed"`
	Base         float64      `json:"base"`
	Trees        []*Regressor `json:"trees"`
	// Workers is passed to each stage tree's split scan (stages themselves
	// are inherently sequential: each fits the previous stages' residuals).
	// Never persisted.
	Workers int `json:"-"`
}

// NewGradientBoosting returns a GB ensemble with the paper's 10 trees and
// scikit-like defaults (learning_rate=0.1, max_depth=3).
func NewGradientBoosting(numTrees int, seed int64) *GradientBoosting {
	if numTrees <= 0 {
		numTrees = 10
	}
	return &GradientBoosting{NumTrees: numTrees, LearningRate: 0.1, MaxDepth: 3, Seed: seed}
}

// Fit builds the stage-wise ensemble on squared-error residuals.
func (g *GradientBoosting) Fit(x *mat.Dense, y []float64) error {
	r, _ := x.Dims()
	if r != len(y) {
		return fmt.Errorf("tree: %d rows vs %d targets", r, len(y))
	}
	if r == 0 {
		return fmt.Errorf("tree: empty training set")
	}
	if g.LearningRate <= 0 {
		g.LearningRate = 0.1
	}
	if g.MaxDepth <= 0 {
		g.MaxDepth = 3
	}
	g.Base = mat.Mean(y)
	resid := make([]float64, r)
	pred := make([]float64, r)
	for i := range pred {
		pred[i] = g.Base
	}
	rng := rand.New(rand.NewSource(g.Seed))
	g.Trees = make([]*Regressor, 0, g.NumTrees)
	// Every stage fits the same x, so presort once and snapshot the pristine
	// index order; later stages restore it with an O(rows·features) copy
	// instead of re-sorting.
	ws := &workspace{}
	ws.bind(x, resid)
	pristine := make([][]int32, len(ws.sorted))
	for j, s := range ws.sorted {
		pristine[j] = append([]int32(nil), s...)
	}
	for k := 0; k < g.NumTrees; k++ {
		for i := range resid {
			resid[i] = y[i] - pred[i]
		}
		if k > 0 {
			for j := range ws.sorted {
				copy(ws.sorted[j], pristine[j])
			}
		}
		t := NewRegressor()
		t.MaxDepth = g.MaxDepth
		t.MinSamplesLeaf = 2
		t.Seed = rng.Int63()
		t.Workers = g.Workers
		t.fitBound(ws)
		g.Trees = append(g.Trees, t)
		for i := 0; i < r; i++ {
			pred[i] += g.LearningRate * t.Predict(x.Row(i))
		}
	}
	return nil
}

// Predict sums the stage predictions.
func (g *GradientBoosting) Predict(features []float64) float64 {
	if len(g.Trees) == 0 {
		panic("tree: boosting model is not fitted")
	}
	s := g.Base
	for _, t := range g.Trees {
		s += g.LearningRate * t.Predict(features)
	}
	return s
}

// --- persistence -----------------------------------------------------------

// Kind implements model.Persistable.
func (t *Regressor) Kind() string { return "tree.regressor" }

// MarshalState implements model.Persistable.
func (t *Regressor) MarshalState() ([]byte, error) { return json.Marshal(t) }

// Kind implements model.Persistable.
func (f *Forest) Kind() string { return "tree.forest" }

// MarshalState implements model.Persistable.
func (f *Forest) MarshalState() ([]byte, error) { return json.Marshal(f) }

// Kind implements model.Persistable.
func (g *GradientBoosting) Kind() string { return "tree.gboost" }

// MarshalState implements model.Persistable.
func (g *GradientBoosting) MarshalState() ([]byte, error) { return json.Marshal(g) }

func init() {
	model.RegisterKind("tree.regressor", func(b []byte) (any, error) {
		m := &Regressor{}
		return m, json.Unmarshal(b, m)
	})
	model.RegisterKind("tree.forest", func(b []byte) (any, error) {
		m := &Forest{}
		return m, json.Unmarshal(b, m)
	})
	model.RegisterKind("tree.gboost", func(b []byte) (any, error) {
		m := &GradientBoosting{}
		return m, json.Unmarshal(b, m)
	})
}

var (
	_ model.Regressor = (*Regressor)(nil)
	_ model.Regressor = (*Forest)(nil)
	_ model.Regressor = (*GradientBoosting)(nil)
)
