package tree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"highrpm/internal/mat"
	"highrpm/internal/model"
)

func TestTreeFitsPiecewiseConstantExactly(t *testing.T) {
	// y = 1 for x<0, y = 5 for x≥0: one split suffices.
	x := mat.NewDense(20, 1)
	y := make([]float64, 20)
	for i := 0; i < 20; i++ {
		v := float64(i - 10)
		x.Set(i, 0, v)
		if v < 0 {
			y[i] = 1
		} else {
			y[i] = 5
		}
	}
	tr := NewRegressor()
	if err := tr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if got := tr.Predict([]float64{-3}); got != 1 {
		t.Fatalf("Predict(-3) = %g want 1", got)
	}
	if got := tr.Predict([]float64{3}); got != 5 {
		t.Fatalf("Predict(3) = %g want 5", got)
	}
}

func TestTreeConstantTargetIsLeaf(t *testing.T) {
	x := mat.NewDense(10, 2)
	y := make([]float64, 10)
	for i := range y {
		y[i] = 4.2
		x.Set(i, 0, float64(i))
	}
	tr := NewRegressor()
	if err := tr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if len(tr.Nodes) != 1 || tr.Nodes[0].Feature != -1 {
		t.Fatalf("constant target should give a single leaf, got %d nodes", len(tr.Nodes))
	}
	if got := tr.Predict([]float64{99, 99}); math.Abs(got-4.2) > 1e-12 {
		t.Fatalf("leaf value = %g want 4.2", got)
	}
}

func TestTreeMaxDepthRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := mat.NewDense(200, 1)
	y := make([]float64, 200)
	for i := range y {
		x.Set(i, 0, rng.Float64())
		y[i] = rng.NormFloat64()
	}
	tr := NewRegressor()
	tr.MaxDepth = 3
	if err := tr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if d := tr.Depth(); d > 3 {
		t.Fatalf("depth = %d exceeds MaxDepth 3", d)
	}
}

func TestTreeMinSamplesLeaf(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := mat.NewDense(100, 1)
	y := make([]float64, 100)
	for i := range y {
		x.Set(i, 0, rng.Float64())
		y[i] = rng.NormFloat64()
	}
	tr := NewRegressor()
	tr.MinSamplesLeaf = 20
	if err := tr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	// With 100 samples and min leaf 20, at most 5 leaves exist.
	leaves := 0
	for _, n := range tr.Nodes {
		if n.Feature == -1 {
			leaves++
		}
	}
	if leaves > 5 {
		t.Fatalf("%d leaves with MinSamplesLeaf=20 on 100 samples", leaves)
	}
}

// Property: tree predictions are always within the target range (each leaf
// is a mean of a target subset).
func TestTreePredictionWithinRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(100)
		x := mat.NewDense(n, 2)
		y := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < n; i++ {
			x.Set(i, 0, rng.NormFloat64())
			x.Set(i, 1, rng.NormFloat64())
			y[i] = rng.NormFloat64() * 100
			if y[i] < lo {
				lo = y[i]
			}
			if y[i] > hi {
				hi = y[i]
			}
		}
		tr := NewRegressor()
		tr.Seed = seed
		if err := tr.Fit(x, y); err != nil {
			return false
		}
		for k := 0; k < 20; k++ {
			p := tr.Predict([]float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3})
			if p < lo-1e-9 || p > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeDeterministicPerSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := mat.NewDense(100, 3)
	y := make([]float64, 100)
	for i := range y {
		for j := 0; j < 3; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
		y[i] = rng.NormFloat64()
	}
	a, b := NewRegressor(), NewRegressor()
	a.Seed, b.Seed = 7, 7
	a.MaxFeatures, b.MaxFeatures = 2, 2
	if err := a.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.1, -0.2, 0.3}
	if a.Predict(probe) != b.Predict(probe) {
		t.Fatal("same seed must give identical trees")
	}
}

func TestTreeEmptyAndMismatch(t *testing.T) {
	tr := NewRegressor()
	if err := tr.Fit(mat.NewDense(1, 1), nil); err == nil {
		t.Fatal("expected mismatch error")
	}
}

// nonlinearData produces y = sin(2x0) + x1² with small noise.
func nonlinearData(n int, seed int64) (*mat.Dense, []float64) {
	rng := rand.New(rand.NewSource(seed))
	x := mat.NewDense(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float64()*3, rng.Float64()*2-1
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		y[i] = math.Sin(2*a) + b*b + rng.NormFloat64()*0.05
	}
	return x, y
}

func rmseOf(m model.Regressor, x *mat.Dense, y []float64) float64 {
	var sq float64
	for i := 0; i < x.Rows(); i++ {
		d := m.Predict(x.Row(i)) - y[i]
		sq += d * d
	}
	return math.Sqrt(sq / float64(x.Rows()))
}

func TestForestBeatsMeanPredictor(t *testing.T) {
	x, y := nonlinearData(400, 4)
	tx, ty := nonlinearData(100, 5)
	f := NewForest(10, 1)
	if err := f.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	baseline := math.Sqrt(mat.Variance(ty))
	if got := rmseOf(f, tx, ty); got > 0.6*baseline {
		t.Fatalf("forest RMSE %g vs mean-predictor %g", got, baseline)
	}
}

func TestForestHasTenTrees(t *testing.T) {
	x, y := nonlinearData(100, 6)
	f := NewForest(0, 1) // default
	if err := f.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if len(f.Trees) != 10 {
		t.Fatalf("forest has %d trees want 10 (Table 4)", len(f.Trees))
	}
}

func TestGradientBoostingImprovesWithStages(t *testing.T) {
	x, y := nonlinearData(400, 7)
	tx, ty := nonlinearData(100, 8)
	few := NewGradientBoosting(2, 1)
	many := NewGradientBoosting(10, 1)
	if err := few.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := many.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if rmseOf(many, tx, ty) >= rmseOf(few, tx, ty) {
		t.Fatal("more boosting stages must not hurt on this smooth target")
	}
}

func TestPredictUnfittedPanics(t *testing.T) {
	for _, m := range []model.Regressor{NewRegressor(), NewForest(3, 1), NewGradientBoosting(3, 1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%T: expected panic", m)
				}
			}()
			m.Predict([]float64{1})
		}()
	}
}

func TestTreePersistenceRoundTrips(t *testing.T) {
	x, y := nonlinearData(150, 9)
	probe := []float64{1.5, 0.3}
	for _, m := range []interface {
		model.Regressor
		model.Persistable
	}{NewRegressor(), NewForest(5, 2), NewGradientBoosting(5, 2)} {
		if err := m.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		data, err := model.Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		back, err := model.Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := back.(model.Regressor).Predict(probe), m.Predict(probe); got != want {
			t.Fatalf("%T round trip: %g vs %g", m, got, want)
		}
	}
}
