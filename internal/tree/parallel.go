package tree

import "runtime"

// parallelSplitCutoff is the minimum node size (rows in the presorted range)
// before bestSplit shards its feature scan across goroutines. Below it the
// per-node goroutine handoff costs more than the scan itself.
const parallelSplitCutoff = 2048

// resolveWorkers maps a public Workers knob to an effective worker count:
// 0 (the default) uses every CPU, anything below 1 degrades to serial.
func resolveWorkers(w int) int {
	if w == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		return 1
	}
	return w
}

// shardRange splits n items into w contiguous shards and returns shard k's
// half-open range. The first n%w shards get one extra item.
func shardRange(n, w, k int) (lo, hi int) {
	base := n / w
	ext := n % w
	lo = k*base + min(k, ext)
	hi = lo + base
	if k < ext {
		hi++
	}
	return lo, hi
}
