package tree

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"testing"

	"highrpm/internal/mat"
)

// Golden hashes of fixed-seed fitted ensembles, captured from the
// pre-parallelism implementation (sort.Slice presort, per-tree workspaces,
// global-gain split scan). The refactored code must keep reproducing them
// byte-for-byte: the presort's comparison order, the workspace rebinding and
// the per-feature split reduction are all provably bit-exact rewrites.
const (
	goldenTreeHash   = "fcfa25b9a78fd6138bca3be3bc8938daf0a666f3083790c71d5c2e73fde04e1a"
	goldenForestHash = "0a4c84935a2d1ab94c331bfea345be70b6c2c9e07f6c034632b4dc098ea715b1"
	goldenGBHash     = "cf5a97eda4e28b4fc21fd271b32c4a7a263ae7ee626e2c4cc01431501099f008"
)

func goldenXY(seed int64, n, c int) (*mat.Dense, []float64) {
	rng := rand.New(rand.NewSource(seed))
	x := mat.NewDense(n, c)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < c; j++ {
			// Mix of continuous and low-cardinality columns to exercise ties.
			if j%3 == 0 {
				x.Set(i, j, float64(rng.Intn(8)))
			} else {
				x.Set(i, j, rng.NormFloat64())
			}
		}
		y[i] = rng.NormFloat64()*4 + 30
	}
	return x, y
}

func marshalHash(t *testing.T, m interface{ MarshalState() ([]byte, error) }) string {
	t.Helper()
	b, err := m.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

func TestFittedModelsMatchGolden(t *testing.T) {
	x, y := goldenXY(3, 600, 9)
	for _, workers := range []int{1, 4} {
		tr := NewRegressor()
		tr.MaxDepth = 12
		tr.MinSamplesLeaf = 2
		tr.Seed = 11
		tr.Workers = workers
		if err := tr.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		if h := marshalHash(t, tr); h != goldenTreeHash {
			t.Errorf("Regressor Workers=%d hash = %s, want golden %s", workers, h, goldenTreeHash)
		}

		f := NewForest(5, 13)
		f.MaxDepth = 10
		f.Workers = workers
		if err := f.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		if h := marshalHash(t, f); h != goldenForestHash {
			t.Errorf("Forest Workers=%d hash = %s, want golden %s", workers, h, goldenForestHash)
		}

		g := NewGradientBoosting(5, 17)
		g.Workers = workers
		if err := g.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		if h := marshalHash(t, g); h != goldenGBHash {
			t.Errorf("GradientBoosting Workers=%d hash = %s, want golden %s", workers, h, goldenGBHash)
		}
	}
}

// TestParallelSplitScanExact fits a dataset large enough to cross the
// parallel split-scan cutoff and asserts the sharded feature scan produces
// a bit-identical tree: the per-feature maxima and fixed-order reduction
// select exactly the candidate the serial scan selects.
func TestParallelSplitScanExact(t *testing.T) {
	x, y := goldenXY(21, 2*parallelSplitCutoff, 8)
	fit := func(workers int) string {
		tr := NewRegressor()
		tr.MaxDepth = 8
		tr.MinSamplesLeaf = 2
		tr.Seed = 5
		tr.Workers = workers
		if err := tr.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		return marshalHash(t, tr)
	}
	serial := fit(1)
	for _, w := range []int{2, 4, 7} {
		if h := fit(w); h != serial {
			t.Errorf("Workers=%d tree differs from serial: %s vs %s", w, h, serial)
		}
	}
}

// BenchmarkTreeFit measures a deep single-tree fit at several worker counts
// on a node-count large enough to keep the split scan parallel for the top
// of the tree.
func BenchmarkTreeFit(b *testing.B) {
	x, y := goldenXY(21, 3*parallelSplitCutoff, 10)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr := NewRegressor()
				tr.MaxDepth = 10
				tr.MinSamplesLeaf = 2
				tr.Seed = 5
				tr.Workers = w
				if err := tr.Fit(x, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
