package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSuiteCounts(t *testing.T) {
	all := Suite()
	if len(all) != 96 {
		t.Fatalf("suite has %d benchmarks, paper §5.3 lists 96", len(all))
	}
	counts := map[string]int{}
	for _, b := range all {
		counts[b.Suite]++
	}
	want := map[string]int{
		SuiteSPEC: 43, SuitePARSEC: 36, SuiteHPCC: 12,
		SuiteGraph500: 2, SuiteHPLAI: 1, SuiteSMG2000: 1, SuiteHPCG: 1,
	}
	for s, n := range want {
		if counts[s] != n {
			t.Fatalf("%s has %d members want %d", s, counts[s], n)
		}
	}
}

func TestSuiteNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, b := range Suite() {
		key := b.String()
		if seen[key] {
			t.Fatalf("duplicate benchmark %s", key)
		}
		seen[key] = true
	}
}

func TestSuiteDeterministic(t *testing.T) {
	a, b := Suite(), Suite()
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].Phases) != len(b[i].Phases) {
			t.Fatal("Suite() must be deterministic")
		}
		for p := range a[i].Phases {
			if a[i].Phases[p] != b[i].Phases[p] {
				t.Fatalf("%s phase %d differs between calls", a[i], p)
			}
		}
	}
}

func TestPowerFactorsAssigned(t *testing.T) {
	var minCPU, maxCPU = 10.0, 0.0
	for _, b := range Suite() {
		for _, p := range b.Phases {
			if p.CPUPowerFactor <= 0 || p.MemPowerFactor <= 0 {
				t.Fatalf("%s has unset power factors", b)
			}
			if p.CPUPowerFactor < minCPU {
				minCPU = p.CPUPowerFactor
			}
			if p.CPUPowerFactor > maxCPU {
				maxCPU = p.CPUPowerFactor
			}
		}
	}
	// The population must actually spread — that spread is what defeats
	// PMC-only models on unseen programs.
	if maxCPU-minCPU < 0.3 {
		t.Fatalf("CPU power factor spread %g too narrow", maxCPU-minCPU)
	}
}

func TestFind(t *testing.T) {
	if _, err := Find("HPCC/FFT"); err != nil {
		t.Fatal(err)
	}
	if _, err := Find("FFT"); err != nil {
		t.Fatal(err)
	}
	if _, err := Find("no-such-benchmark"); err == nil {
		t.Fatal("expected error")
	}
}

func TestFig2WorkloadsExist(t *testing.T) {
	// The Fig. 2 experiment depends on these two being present.
	for _, n := range []string{"HPCC/FFT", "HPCC/STREAM"} {
		if _, err := Find(n); err != nil {
			t.Fatalf("%s missing: %v", n, err)
		}
	}
}

func TestInstanceProgressAndDone(t *testing.T) {
	b := Benchmark{Name: "x", Suite: "t", Phases: []Phase{{Duration: 10, Util: 0.5, IPC: 1, Mem: 0.2}}, Repeat: 1}
	in := NewInstance(b, 1)
	for i := 0; i < 10; i++ {
		if in.Done() {
			t.Fatalf("done after %d s of a 10 s program", i)
		}
		st := in.Advance(1, 1)
		if st.Done {
			t.Fatalf("state done at step %d", i)
		}
	}
	if !in.Done() {
		t.Fatal("not done after 10 s at full speed")
	}
	if in.Progress() != 1 {
		t.Fatalf("progress = %g want 1", in.Progress())
	}
}

func TestFrequencyCappingSlowsComputeBoundWork(t *testing.T) {
	compute := Benchmark{Name: "c", Suite: "t", Phases: []Phase{{Duration: 100, Util: 0.9, IPC: 2, Mem: 0}}, Repeat: 1}
	in := NewInstance(compute, 1)
	steps := 0
	for !in.Done() && steps < 1000 {
		in.Advance(1, 0.5) // half speed
		steps++
	}
	if steps < 190 || steps > 210 {
		t.Fatalf("compute-bound work at half speed took %d s want ~200", steps)
	}
	// Memory-bound work is insensitive to core frequency.
	memory := Benchmark{Name: "m", Suite: "t", Phases: []Phase{{Duration: 100, Util: 0.3, IPC: 0.5, Mem: 1}}, Repeat: 1}
	in = NewInstance(memory, 1)
	steps = 0
	for !in.Done() && steps < 1000 {
		in.Advance(1, 0.5)
		steps++
	}
	if steps > 110 {
		t.Fatalf("memory-bound work at half speed took %d s want ~100", steps)
	}
}

// Property: workload state is always physically plausible.
func TestStateBoundsProperty(t *testing.T) {
	benches := Suite()
	f := func(seed int64, pick uint8) bool {
		b := benches[int(pick)%len(benches)]
		in := NewInstance(b, seed)
		for i := 0; i < 200; i++ {
			st := in.Advance(1, 1)
			if st.Done {
				break
			}
			if st.Util < 0 || st.Util > 1 || st.Mem < 0 || st.Mem > 1 {
				return false
			}
			if st.IPC <= 0 || st.CPUPowerScale <= 0 || st.MemPowerScale <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestInstanceDeterministicPerSeed(t *testing.T) {
	b, err := Find("Graph500/bfs")
	if err != nil {
		t.Fatal(err)
	}
	a1 := NewInstance(b, 42)
	a2 := NewInstance(b, 42)
	for i := 0; i < 50; i++ {
		s1 := a1.Advance(1, 1)
		s2 := a2.Advance(1, 1)
		if s1 != s2 {
			t.Fatalf("divergence at step %d: %+v vs %+v", i, s1, s2)
		}
	}
}

func TestTotalDuration(t *testing.T) {
	b := Benchmark{Phases: []Phase{{Duration: 10}, {Duration: 5}}, Repeat: 3}
	if got := b.TotalDuration(); got != 45 {
		t.Fatalf("TotalDuration = %g want 45", got)
	}
	b.Repeat = 0
	if got := b.TotalDuration(); got != 15 {
		t.Fatalf("TotalDuration = %g want 15 (repeat clamps to 1)", got)
	}
}

func TestSpikesOccur(t *testing.T) {
	// Graph500 is configured with a strong spike process; over a long run
	// utilisation must exceed the base level at least occasionally.
	b, err := Find("Graph500/bfs")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInstance(b, rand.Int63())
	base := b.Phases[0].Util + b.Phases[0].LoopAmp + 0.05
	spikes := 0
	for i := 0; i < 300 && !in.Done(); i++ {
		if in.Advance(1, 1).Util > base {
			spikes++
		}
	}
	if spikes == 0 {
		t.Fatal("no spikes observed in 300 s of Graph500")
	}
}
