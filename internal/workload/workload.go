// Package workload models the benchmark programs the paper trains and
// evaluates on (§5.3: 96 benchmarks across SPEC CPU 2017, PARSEC, HPCC,
// Graph500, HPL-AI, SMG2000 and HPCG).
//
// A benchmark is a program of phases. Each phase fixes a compute/memory
// character — CPU utilisation, IPC, memory traffic intensity — plus a loop
// period producing the long-term periodic trends the paper attributes to
// program loops, and a spike process producing the unforeseen short-term
// fluctuations (§4.2). The platform simulator turns this state into power
// and performance-counter readings.
package workload

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
)

// Phase is one execution phase of a benchmark.
type Phase struct {
	// Duration is the nominal phase length in seconds at maximum frequency.
	Duration float64
	// Util is the mean CPU utilisation in [0, 1].
	Util float64
	// IPC is the mean instructions-per-cycle of the phase.
	IPC float64
	// Mem is the memory-traffic intensity in [0, 1]; 1 saturates DRAM.
	Mem float64
	// LoopPeriod is the period in seconds of the phase's internal loop
	// oscillation (0 disables it).
	LoopPeriod float64
	// LoopAmp is the utilisation/memory swing of the loop oscillation.
	LoopAmp float64
	// SpikeRate is the expected number of short power spikes per second.
	SpikeRate float64
	// SpikeAmp is the extra utilisation during a spike.
	SpikeAmp float64
	// BranchFrac is the fraction of instructions that are branches.
	BranchFrac float64
	// CPUPowerFactor scales CPU dynamic power relative to what the PMCs
	// suggest (0 means 1.0). Real programs differ in per-instruction energy
	// — vector width, port pressure, data toggling — in ways the ten
	// Table 2 counters cannot see; this is why PMC-only power models
	// degrade on unseen programs (§6.1.1).
	CPUPowerFactor float64
	// MemPowerFactor likewise scales DRAM power per unit of traffic
	// (row-buffer locality, read/write mix).
	MemPowerFactor float64
}

// Benchmark is a named phase program belonging to a suite.
type Benchmark struct {
	Name   string
	Suite  string
	Phases []Phase
	// Repeat loops the phase program this many times (≥1).
	Repeat int
}

// TotalDuration returns the nominal duration of one full run in seconds at
// maximum frequency.
func (b Benchmark) TotalDuration() float64 {
	var d float64
	for _, p := range b.Phases {
		d += p.Duration
	}
	r := b.Repeat
	if r < 1 {
		r = 1
	}
	return d * float64(r)
}

// String implements fmt.Stringer.
func (b Benchmark) String() string { return fmt.Sprintf("%s/%s", b.Suite, b.Name) }

// State is the instantaneous demand a workload places on the node.
type State struct {
	// Util is the effective CPU utilisation in [0, 1] including loop
	// oscillation and spikes.
	Util float64
	// IPC is the current instructions-per-cycle.
	IPC float64
	// Mem is the current memory-traffic intensity in [0, 1].
	Mem float64
	// BranchFrac is the branch fraction of the instruction mix.
	BranchFrac float64
	// CPUPowerScale and MemPowerScale are the phase's PMC-invisible power
	// factors (1.0 when the phase leaves them unset).
	CPUPowerScale float64
	MemPowerScale float64
	// Done reports whether the program has finished.
	Done bool
}

// Instance is a running workload: a benchmark plus a position within its
// phase program and a private noise source. Advance progresses program time
// by wall time scaled with the node's speed factor so frequency capping
// stretches execution, which is how the Fig. 1 energy effect arises.
type Instance struct {
	bench    Benchmark
	rng      *rand.Rand
	progress float64 // program-time seconds completed (at nominal speed)
	total    float64
	spikeEnd float64 // wall-clock end of the active spike
	wall     float64 // wall-clock seconds elapsed
	curAmp   float64 // current spike amplitude
}

// NewInstance starts the benchmark with a deterministic noise stream.
func NewInstance(b Benchmark, seed int64) *Instance {
	if b.Repeat < 1 {
		b.Repeat = 1
	}
	return &Instance{
		bench: b,
		rng:   rand.New(rand.NewSource(seed ^ int64(hashName(b.String())))),
		total: b.TotalDuration(),
	}
}

func hashName(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// phaseAt locates the phase containing program-time t (wrapping repeats).
func (in *Instance) phaseAt(t float64) (Phase, float64) {
	var single float64
	for _, p := range in.bench.Phases {
		single += p.Duration
	}
	if single <= 0 {
		return Phase{}, 0
	}
	t = math.Mod(t, single)
	var acc float64
	for _, p := range in.bench.Phases {
		if t < acc+p.Duration {
			return p, t - acc
		}
		acc += p.Duration
	}
	last := in.bench.Phases[len(in.bench.Phases)-1]
	return last, last.Duration
}

// Advance moves the workload forward by dt wall-clock seconds executing at
// speed (1 = nominal frequency; capped frequency gives < 1 for
// compute-bound phases) and returns the state during that interval.
func (in *Instance) Advance(dt, speed float64) State {
	if in.progress >= in.total {
		return State{Done: true}
	}
	p, tin := in.phaseAt(in.progress)
	// Memory-bound work is insensitive to core frequency: blend the
	// progress rate between full speed and frequency-scaled speed.
	rate := p.Mem*1 + (1-p.Mem)*speed
	in.progress += dt * rate
	in.wall += dt

	util := p.Util
	mem := p.Mem
	if p.LoopPeriod > 0 {
		osc := math.Sin(2 * math.Pi * tin / p.LoopPeriod)
		util += p.LoopAmp * osc
		mem += 0.5 * p.LoopAmp * osc
	}
	// Spike process: Poisson arrivals, ~1–2 s duration.
	if in.wall >= in.spikeEnd && p.SpikeRate > 0 {
		if in.rng.Float64() < p.SpikeRate*dt {
			in.spikeEnd = in.wall + 1 + in.rng.Float64()
			in.curAmp = p.SpikeAmp * (0.5 + in.rng.Float64())
		}
	}
	if in.wall < in.spikeEnd {
		util += in.curAmp
		mem += 0.5 * in.curAmp
	}
	// Small white jitter so no two seconds are identical.
	util += in.rng.NormFloat64() * 0.015
	mem += in.rng.NormFloat64() * 0.01

	cpuScale := p.CPUPowerFactor
	if cpuScale == 0 {
		cpuScale = 1
	}
	memScale := p.MemPowerFactor
	if memScale == 0 {
		memScale = 1
	}
	return State{
		Util:          clamp01(util),
		IPC:           math.Max(0.1, p.IPC*(1+in.rng.NormFloat64()*0.03)),
		Mem:           clamp01(mem),
		BranchFrac:    p.BranchFrac,
		CPUPowerScale: cpuScale,
		MemPowerScale: memScale,
	}
}

// Done reports whether the program has completed.
func (in *Instance) Done() bool { return in.progress >= in.total }

// Progress returns the fraction of the program completed in [0, 1].
func (in *Instance) Progress() float64 {
	if in.total == 0 {
		return 1
	}
	f := in.progress / in.total
	if f > 1 {
		return 1
	}
	return f
}

// Elapsed returns wall-clock seconds since the instance started.
func (in *Instance) Elapsed() float64 { return in.wall }

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
