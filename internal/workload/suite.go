package workload

import (
	"fmt"
	"math/rand"
)

// Suite names used throughout the evaluation (paper Table 3).
const (
	SuiteSPEC     = "SPEC"
	SuitePARSEC   = "PARSEC"
	SuiteHPCC     = "HPCC"
	SuiteGraph500 = "Graph500"
	SuiteHPLAI    = "HPL-AI"
	SuiteSMG2000  = "SMG2000"
	SuiteHPCG     = "HPCG"
)

// SuiteNames returns the seven suites in the paper's order.
func SuiteNames() []string {
	return []string{SuiteSPEC, SuitePARSEC, SuiteHPCC, SuiteGraph500, SuiteHPLAI, SuiteSMG2000, SuiteHPCG}
}

var specNames = []string{
	// SPECspeed 2017 integer and floating point.
	"600.perlbench_s", "602.gcc_s", "605.mcf_s", "620.omnetpp_s", "623.xalancbmk_s",
	"625.x264_s", "631.deepsjeng_s", "641.leela_s", "648.exchange2_s", "657.xz_s",
	"603.bwaves_s", "607.cactuBSSN_s", "619.lbm_s", "621.wrf_s", "627.cam4_s",
	"628.pop2_s", "638.imagick_s", "644.nab_s", "649.fotonik3d_s", "654.roms_s",
	// SPECrate 2017 integer and floating point.
	"500.perlbench_r", "502.gcc_r", "505.mcf_r", "520.omnetpp_r", "523.xalancbmk_r",
	"525.x264_r", "531.deepsjeng_r", "541.leela_r", "548.exchange2_r", "557.xz_r",
	"503.bwaves_r", "507.cactuBSSN_r", "508.namd_r", "510.parest_r", "511.povray_r",
	"519.lbm_r", "521.wrf_r", "526.blender_r", "527.cam4_r", "538.imagick_r",
	"544.nab_r", "549.fotonik3d_r", "554.roms_r",
}

var parsecNames = []string{
	"blackscholes", "bodytrack", "canneal", "dedup", "facesim", "ferret",
	"fluidanimate", "freqmine", "raytrace", "streamcluster", "swaptions", "vips", "x264",
	"splash2x.barnes", "splash2x.fmm", "splash2x.ocean_cp", "splash2x.ocean_ncp",
	"splash2x.radiosity", "splash2x.raytrace", "splash2x.volrend",
	"splash2x.water_nsquared", "splash2x.water_spatial", "splash2x.cholesky",
	"splash2x.fft", "splash2x.lu_cb", "splash2x.lu_ncb", "splash2x.radix",
	"netapps.netdedup", "netapps.netferret", "netapps.netstreamcluster",
	"blackscholes.large", "canneal.large", "fluidanimate.large",
	"streamcluster.large", "freqmine.large", "facesim.large",
}

var hpccNames = []string{
	"HPL", "DGEMM", "PTRANS", "RandomAccess", "FFT", "STREAM",
	"LatencyBandwidth", "StarDGEMM", "SingleFFT", "StarSTREAM",
	"MPIRandomAccess", "SingleDGEMM",
}

// memIntensive classifies HPCC kernels whose power is DRAM-dominated.
var hpccMemBound = map[string]bool{
	"STREAM": true, "StarSTREAM": true, "PTRANS": true,
	"RandomAccess": true, "MPIRandomAccess": true, "LatencyBandwidth": true,
}

// Suite returns all 96 benchmarks of §5.3: SPEC(43), PARSEC(36), HPCC(12),
// Graph500(2), HPL-AI(1), SMG2000(1), HPCG(1). Generation is deterministic:
// every benchmark's phase program is derived from its name.
func Suite() []Benchmark {
	var out []Benchmark
	for _, n := range specNames {
		out = append(out, specBenchmark(n))
	}
	for _, n := range parsecNames {
		out = append(out, parsecBenchmark(n))
	}
	for _, n := range hpccNames {
		out = append(out, hpccBenchmark(n))
	}
	out = append(out,
		graph500Benchmark("bfs"),
		graph500Benchmark("sssp"),
		hplAIBenchmark(),
		smg2000Benchmark(),
		hpcgBenchmark(),
	)
	for i := range out {
		out[i] = withPowerCharacter(out[i])
	}
	return out
}

// withPowerCharacter assigns the benchmark's PMC-invisible power factors —
// each program draws per-instruction CPU energy and per-access DRAM energy
// from a deterministic distribution keyed by its name. These factors are
// what makes PMC-only power models fragile on unseen programs while
// node-power-aware models transfer (§6.1.1, §6.2.1).
func withPowerCharacter(b Benchmark) Benchmark {
	r := nameRNG("power/" + b.String())
	cpu := 0.55 + 0.90*r.Float64()
	mem := 0.85 + 0.30*r.Float64()
	for i := range b.Phases {
		b.Phases[i].CPUPowerFactor = cpu
		b.Phases[i].MemPowerFactor = mem
	}
	return b
}

// BySuite groups the full suite by suite name.
func BySuite() map[string][]Benchmark {
	out := map[string][]Benchmark{}
	for _, b := range Suite() {
		out[b.Suite] = append(out[b.Suite], b)
	}
	return out
}

// Find returns the benchmark with the given name (suite-qualified names such
// as "HPCC/FFT" are also accepted).
func Find(name string) (Benchmark, error) {
	for _, b := range Suite() {
		if b.Name == name || b.String() == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// nameRNG derives a deterministic noise source from a benchmark name, so
// every member of a suite gets its own stable character.
func nameRNG(name string) *rand.Rand {
	return rand.New(rand.NewSource(int64(hashName(name))))
}

func specBenchmark(name string) Benchmark {
	r := nameRNG("spec/" + name)
	fp := name[0] == '5' && name[1] == '0' || name[0] == '6' && name[1] == '0' // crude fp-heavy marker
	util := 0.60 + 0.35*r.Float64()
	ipc := 1.2 + 1.2*r.Float64()
	mem := 0.10 + 0.35*r.Float64()
	if fp {
		ipc += 0.4
		mem += 0.10
	}
	return Benchmark{
		Name:  name,
		Suite: SuiteSPEC,
		Phases: []Phase{{
			Duration:   180 + 120*r.Float64(),
			Util:       util,
			IPC:        ipc,
			Mem:        mem,
			LoopPeriod: 20 + 40*r.Float64(),
			LoopAmp:    0.05 + 0.08*r.Float64(),
			SpikeRate:  0.02 + 0.03*r.Float64(),
			SpikeAmp:   0.10 + 0.15*r.Float64(),
			BranchFrac: 0.12 + 0.08*r.Float64(),
		}},
		Repeat: 1,
	}
}

func parsecBenchmark(name string) Benchmark {
	r := nameRNG("parsec/" + name)
	// Parallel region / barrier structure: alternate a hot phase with a
	// short synchronisation lull.
	hot := Phase{
		Duration:   40 + 50*r.Float64(),
		Util:       0.80 + 0.18*r.Float64(),
		IPC:        1.4 + 1.0*r.Float64(),
		Mem:        0.15 + 0.45*r.Float64(),
		LoopPeriod: 8 + 15*r.Float64(),
		LoopAmp:    0.08 + 0.10*r.Float64(),
		SpikeRate:  0.03 + 0.05*r.Float64(),
		SpikeAmp:   0.10 + 0.10*r.Float64(),
		BranchFrac: 0.10 + 0.06*r.Float64(),
	}
	barrier := Phase{
		Duration:   5 + 8*r.Float64(),
		Util:       0.25 + 0.15*r.Float64(),
		IPC:        0.8,
		Mem:        0.10 + 0.10*r.Float64(),
		BranchFrac: 0.15,
	}
	return Benchmark{Name: name, Suite: SuitePARSEC, Phases: []Phase{hot, barrier}, Repeat: 4}
}

func hpccBenchmark(name string) Benchmark {
	r := nameRNG("hpcc/" + name)
	var p Phase
	if hpccMemBound[name] {
		p = Phase{
			Duration:   150 + 60*r.Float64(),
			Util:       0.30 + 0.15*r.Float64(),
			IPC:        0.5 + 0.3*r.Float64(),
			Mem:        0.80 + 0.18*r.Float64(),
			LoopPeriod: 15 + 10*r.Float64(),
			LoopAmp:    0.04 + 0.04*r.Float64(),
			SpikeRate:  0.02,
			SpikeAmp:   0.08,
			BranchFrac: 0.08,
		}
	} else {
		p = Phase{
			Duration:   150 + 60*r.Float64(),
			Util:       0.88 + 0.10*r.Float64(),
			IPC:        2.2 + 0.8*r.Float64(),
			Mem:        0.12 + 0.15*r.Float64(),
			LoopPeriod: 25 + 15*r.Float64(),
			LoopAmp:    0.04 + 0.05*r.Float64(),
			SpikeRate:  0.015,
			SpikeAmp:   0.08,
			BranchFrac: 0.06,
		}
	}
	// FFT flavours alternate transform (compute) and transpose (memory).
	if name == "FFT" || name == "SingleFFT" {
		compute := p
		compute.Util, compute.Mem, compute.IPC = 0.85, 0.35, 2.0
		compute.Duration = 30
		transpose := p
		transpose.Util, transpose.Mem, transpose.IPC = 0.45, 0.75, 0.8
		transpose.Duration = 15
		return Benchmark{Name: name, Suite: SuiteHPCC, Phases: []Phase{compute, transpose}, Repeat: 6}
	}
	return Benchmark{Name: name, Suite: SuiteHPCC, Phases: []Phase{p}, Repeat: 1}
}

func graph500Benchmark(kernel string) Benchmark {
	r := nameRNG("graph500/" + kernel)
	// BFS/SSSP: irregular, memory-heavy traversal with bursty frontier
	// expansion — the Fig. 1 motivating workload with pronounced spikes.
	traverse := Phase{
		Duration:   25 + 10*r.Float64(),
		Util:       0.55,
		IPC:        0.7,
		Mem:        0.70,
		LoopPeriod: 6,
		LoopAmp:    0.12,
		SpikeRate:  0.12,
		SpikeAmp:   0.30,
		BranchFrac: 0.20,
	}
	compact := Phase{
		Duration:   8,
		Util:       0.85,
		IPC:        1.6,
		Mem:        0.35,
		SpikeRate:  0.05,
		SpikeAmp:   0.15,
		BranchFrac: 0.12,
	}
	return Benchmark{Name: kernel, Suite: SuiteGraph500, Phases: []Phase{traverse, compact}, Repeat: 10}
}

func hplAIBenchmark() Benchmark {
	// Mixed-precision LU: near-peak compute with a short panel phase.
	factor := Phase{
		Duration: 60, Util: 0.96, IPC: 3.2, Mem: 0.20,
		LoopPeriod: 30, LoopAmp: 0.03, SpikeRate: 0.01, SpikeAmp: 0.05, BranchFrac: 0.04,
	}
	panel := Phase{
		Duration: 10, Util: 0.70, IPC: 1.8, Mem: 0.40, BranchFrac: 0.08,
	}
	return Benchmark{Name: "hpl-ai", Suite: SuiteHPLAI, Phases: []Phase{factor, panel}, Repeat: 5}
}

func smg2000Benchmark() Benchmark {
	// Semicoarsening multigrid: V-cycles alternating smoothing (memory)
	// and restriction/prolongation (compute), strongly periodic.
	smooth := Phase{
		Duration: 20, Util: 0.50, IPC: 0.9, Mem: 0.70,
		LoopPeriod: 10, LoopAmp: 0.10, SpikeRate: 0.03, SpikeAmp: 0.12, BranchFrac: 0.10,
	}
	transfer := Phase{
		Duration: 10, Util: 0.75, IPC: 1.6, Mem: 0.40,
		LoopPeriod: 5, LoopAmp: 0.06, BranchFrac: 0.08,
	}
	return Benchmark{Name: "smg2000", Suite: SuiteSMG2000, Phases: []Phase{smooth, transfer}, Repeat: 10}
}

func hpcgBenchmark() Benchmark {
	// Conjugate gradient: bandwidth-bound SpMV with a steady rhythm.
	p := Phase{
		Duration: 240, Util: 0.48, IPC: 0.6, Mem: 0.88,
		LoopPeriod: 12, LoopAmp: 0.05, SpikeRate: 0.02, SpikeAmp: 0.10, BranchFrac: 0.07,
	}
	return Benchmark{Name: "hpcg", Suite: SuiteHPCG, Phases: []Phase{p}, Repeat: 1}
}
