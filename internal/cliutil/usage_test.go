package cliutil

import (
	"bytes"
	"flag"
	"strings"
	"testing"
)

func TestGroupedUsage(t *testing.T) {
	fs := flag.NewFlagSet("demo", flag.ContinueOnError)
	fs.String("addr", "", "service `address`")
	fs.Int("nodes", 2, "node count")
	fs.Duration("grace", 0, "drain window")
	fs.Bool("surprise", false, "registered but ungrouped")
	var out bytes.Buffer
	fs.SetOutput(&out)

	GroupedUsage(fs, "demo", []Group{
		{Title: "Connection", Names: []string{"addr", "missing-flag"}},
		{Title: "Shutdown", Names: []string{"grace", "nodes"}},
	})()
	text := out.String()

	for _, want := range []string{
		"Usage of demo:",
		"Connection:",
		"  -addr address",
		"Shutdown:",
		"Other:",
		"-surprise",
		"(default 2)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("usage missing %q:\n%s", want, text)
		}
	}
	// Groups print in declaration order, ungrouped flags last.
	if c, s, o := strings.Index(text, "Connection:"), strings.Index(text, "Shutdown:"), strings.Index(text, "Other:"); !(c < s && s < o) {
		t.Errorf("sections out of order (%d, %d, %d):\n%s", c, s, o, text)
	}
	// Zero-ish defaults are not echoed.
	if strings.Contains(text, "default false") || strings.Contains(text, "default 0s") {
		t.Errorf("zero default echoed:\n%s", text)
	}
	// A name not registered on the set is skipped, not printed empty.
	if strings.Contains(text, "missing-flag") {
		t.Errorf("unregistered flag printed:\n%s", text)
	}
}
