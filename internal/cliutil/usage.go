// Package cliutil carries the command-line conventions shared by the
// highrpm binaries — chiefly -help output ordered by subsystem instead of
// flag.PrintDefaults' alphabetical interleaving, so related knobs (wire
// protocol, durability, observability) read as one block.
package cliutil

import (
	"flag"
	"fmt"
)

// Group names one -help section and the registered flags it collects, in
// display order.
type Group struct {
	Title string
	Names []string
}

// GroupedUsage returns a flag.Usage implementation for fs that prints the
// binary's flags grouped by subsystem. Flags registered on fs but not
// listed in any group surface under a final "Other" section, so a newly
// added knob can never silently vanish from the help text.
func GroupedUsage(fs *flag.FlagSet, name string, groups []Group) func() {
	return func() {
		w := fs.Output()
		fmt.Fprintf(w, "Usage of %s:\n", name)
		listed := map[string]bool{}
		printFlag := func(f *flag.Flag) {
			arg, usage := flag.UnquoteUsage(f)
			line := "  -" + f.Name
			if arg != "" {
				line += " " + arg
			}
			fmt.Fprintf(w, "%s\n    \t%s", line, usage)
			if f.DefValue != "" && f.DefValue != "false" && f.DefValue != "0" && f.DefValue != "0s" {
				fmt.Fprintf(w, " (default %s)", f.DefValue)
			}
			fmt.Fprintln(w)
		}
		for _, g := range groups {
			fmt.Fprintf(w, "\n%s:\n", g.Title)
			for _, n := range g.Names {
				if f := fs.Lookup(n); f != nil {
					printFlag(f)
					listed[n] = true
				}
			}
		}
		var rest []*flag.Flag
		fs.VisitAll(func(f *flag.Flag) {
			if !listed[f.Name] {
				rest = append(rest, f)
			}
		})
		if len(rest) > 0 {
			fmt.Fprintln(w, "\nOther:")
			for _, f := range rest {
				printFlag(f)
			}
		}
	}
}
