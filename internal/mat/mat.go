// Package mat provides the small dense linear-algebra kernel used by the
// regression models in this repository: vectors, row-major matrices, and the
// factorizations (Cholesky, QR) needed to solve least-squares systems.
//
// The package is deliberately minimal — it implements exactly what the power
// models require and nothing more — but every operation validates its shapes
// and the solvers detect rank deficiency instead of silently producing NaNs.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned by solvers when the system matrix is singular or
// numerically rank-deficient.
var ErrSingular = errors.New("mat: matrix is singular to working precision")

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense allocates a rows×cols zero matrix.
func NewDense(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewDenseData wraps data (length rows*cols, row-major) without copying.
func NewDenseData(rows, cols int, data []float64) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: data length %d does not match %dx%d", len(data), rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: data}
}

// FromRows builds a matrix by copying the given rows, which must all have the
// same length.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		panic("mat: FromRows with no rows")
	}
	c := len(rows[0])
	m := NewDense(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic(fmt.Sprintf("mat: ragged row %d (len %d, want %d)", i, len(r), c))
		}
		copy(m.data[i*c:(i+1)*c], r)
	}
	return m
}

// Dims returns the matrix dimensions.
func (m *Dense) Dims() (rows, cols int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at (i, j).
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add increments the element at (i, j) by v.
func (m *Dense) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns a view (not a copy) of row i.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Col copies column j into a new slice.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: col %d out of range %d", j, m.cols))
	}
	out := make([]float64, m.rows)
	for i := range out {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Clone returns a deep copy of the matrix.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		ri := m.data[i*m.cols:]
		for j := 0; j < m.cols; j++ {
			out.data[j*m.rows+i] = ri[j]
		}
	}
	return out
}

// Mul returns a*b.
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul shape mismatch %dx%d · %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := NewDense(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		ar := a.data[i*a.cols : (i+1)*a.cols]
		or := out.data[i*out.cols : (i+1)*out.cols]
		for k, av := range ar {
			if av == 0 {
				continue
			}
			br := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range br {
				or[j] += av * bv
			}
		}
	}
	return out
}

// MulVec returns a·x for a vector x of length a.cols.
func MulVec(a *Dense, x []float64) []float64 {
	if a.cols != len(x) {
		panic(fmt.Sprintf("mat: MulVec shape mismatch %dx%d · %d", a.rows, a.cols, len(x)))
	}
	out := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		out[i] = Dot(a.data[i*a.cols:(i+1)*a.cols], x)
	}
	return out
}

// MulTVec returns aᵀ·x for a vector x of length a.rows.
func MulTVec(a *Dense, x []float64) []float64 {
	if a.rows != len(x) {
		panic(fmt.Sprintf("mat: MulTVec shape mismatch %dx%dᵀ · %d", a.rows, a.cols, len(x)))
	}
	out := make([]float64, a.cols)
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		ar := a.data[i*a.cols : (i+1)*a.cols]
		for j, av := range ar {
			out[j] += xi * av
		}
	}
	return out
}

// Gram returns aᵀ·a (cols×cols, symmetric).
func Gram(a *Dense) *Dense {
	out := NewDense(a.cols, a.cols)
	for i := 0; i < a.rows; i++ {
		r := a.data[i*a.cols : (i+1)*a.cols]
		for p, rp := range r {
			if rp == 0 {
				continue
			}
			orow := out.data[p*a.cols:]
			for q := p; q < a.cols; q++ {
				orow[q] += rp * r[q]
			}
		}
	}
	for p := 0; p < a.cols; p++ { // mirror upper triangle
		for q := p + 1; q < a.cols; q++ {
			out.data[q*a.cols+p] = out.data[p*a.cols+q]
		}
	}
	return out
}

// Dot returns the inner product of equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// AXPY computes y += alpha*x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: AXPY length mismatch %d vs %d", len(x), len(y)))
	}
	for i, xv := range x {
		y[i] += alpha * xv
	}
}

// Scale multiplies every element of v by alpha in place.
func Scale(alpha float64, v []float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// SolveCholesky solves the symmetric positive-definite system a·x = b using
// a Cholesky factorization. a is not modified.
func SolveCholesky(a *Dense, b []float64) ([]float64, error) {
	n := a.rows
	if a.cols != n {
		panic(fmt.Sprintf("mat: SolveCholesky on non-square %dx%d", a.rows, a.cols))
	}
	if len(b) != n {
		panic(fmt.Sprintf("mat: SolveCholesky rhs length %d, want %d", len(b), n))
	}
	// Factor a = L·Lᵀ.
	l := a.Clone()
	for j := 0; j < n; j++ {
		d := l.data[j*n+j]
		for k := 0; k < j; k++ {
			ljk := l.data[j*n+k]
			d -= ljk * ljk
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrSingular
		}
		d = math.Sqrt(d)
		l.data[j*n+j] = d
		for i := j + 1; i < n; i++ {
			s := l.data[i*n+j]
			for k := 0; k < j; k++ {
				s -= l.data[i*n+k] * l.data[j*n+k]
			}
			l.data[i*n+j] = s / d
		}
	}
	// Forward substitution L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.data[i*n+k] * y[k]
		}
		y[i] = s / l.data[i*n+i]
	}
	// Back substitution Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.data[k*n+i] * x[k]
		}
		x[i] = s / l.data[i*n+i]
	}
	return x, nil
}

// SolveLeastSquares solves min‖a·x − b‖₂ via the normal equations with a tiny
// ridge term for numerical safety. a is n×p with n ≥ p.
func SolveLeastSquares(a *Dense, b []float64) ([]float64, error) {
	if a.rows != len(b) {
		panic(fmt.Sprintf("mat: SolveLeastSquares rhs length %d, want %d", len(b), a.rows))
	}
	g := Gram(a)
	// Jitter scaled to the trace keeps the factorization stable without
	// visibly biasing the solution.
	var tr float64
	for j := 0; j < g.cols; j++ {
		tr += g.At(j, j)
	}
	eps := 1e-12 * (tr/float64(g.cols) + 1)
	for j := 0; j < g.cols; j++ {
		g.Add(j, j, eps)
	}
	rhs := MulTVec(a, b)
	return SolveCholesky(g, rhs)
}

// Mean returns the arithmetic mean of v (0 for empty input).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Variance returns the population variance of v.
func Variance(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s / float64(len(v))
}
