package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewDenseZeroed(t *testing.T) {
	m := NewDense(3, 4)
	r, c := m.Dims()
	if r != 3 || c != 4 {
		t.Fatalf("Dims = %d,%d want 3,4", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("new matrix not zeroed at (%d,%d)", i, j)
			}
		}
	}
}

func TestSetAtAdd(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 1, 3.5)
	m.Add(0, 1, 1.5)
	if got := m.At(0, 1); got != 5 {
		t.Fatalf("At(0,1) = %g want 5", got)
	}
}

func TestIndexPanics(t *testing.T) {
	m := NewDense(2, 2)
	for _, fn := range []func(){
		func() { m.At(2, 0) },
		func() { m.At(0, -1) },
		func() { m.Set(0, 2, 1) },
		func() { m.Row(5) },
		func() { m.Col(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range access")
				}
			}()
			fn()
		}()
	}
}

func TestFromRowsRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestRowIsView(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	m.Row(1)[0] = 9
	if m.At(1, 0) != 9 {
		t.Fatal("Row must be a view, not a copy")
	}
}

func TestColIsCopy(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	col := m.Col(0)
	col[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("Col must copy")
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	r, c := tr.Dims()
	if r != 3 || c != 2 {
		t.Fatalf("T dims = %d,%d", r, c)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := Mul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %g want %g", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewDense(5, 3)
	x := make([]float64, 3)
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	for j := range x {
		x[j] = rng.NormFloat64()
	}
	xm := NewDense(3, 1)
	for j, v := range x {
		xm.Set(j, 0, v)
	}
	want := Mul(a, xm)
	got := MulVec(a, x)
	for i := range got {
		if !almostEq(got[i], want.At(i, 0), 1e-12) {
			t.Fatalf("MulVec[%d] = %g want %g", i, got[i], want.At(i, 0))
		}
	}
}

func TestMulTVecMatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewDense(4, 3)
	y := make([]float64, 4)
	for i := 0; i < 4; i++ {
		y[i] = rng.NormFloat64()
		for j := 0; j < 3; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	want := MulVec(a.T(), y)
	got := MulTVec(a, y)
	for j := range got {
		if !almostEq(got[j], want[j], 1e-12) {
			t.Fatalf("MulTVec[%d] = %g want %g", j, got[j], want[j])
		}
	}
}

// Property: Gram(a) equals aᵀ·a and is symmetric.
func TestGramProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 2 + rng.Intn(6)
		c := 1 + rng.Intn(5)
		a := NewDense(r, c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
		}
		g := Gram(a)
		want := Mul(a.T(), a)
		for p := 0; p < c; p++ {
			for q := 0; q < c; q++ {
				if !almostEq(g.At(p, q), want.At(p, q), 1e-9) {
					return false
				}
				if g.At(p, q) != g.At(q, p) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSolveCholeskyKnown(t *testing.T) {
	// SPD system with a known solution.
	a := FromRows([][]float64{{4, 2}, {2, 3}})
	x, err := SolveCholesky(a, []float64{10, 8})
	if err != nil {
		t.Fatal(err)
	}
	// 4x + 2y = 10, 2x + 3y = 8 → x = 1.75, y = 1.5
	if !almostEq(x[0], 1.75, 1e-10) || !almostEq(x[1], 1.5, 1e-10) {
		t.Fatalf("solution = %v want [1.75 1.5]", x)
	}
}

func TestSolveCholeskySingular(t *testing.T) {
	a := FromRows([][]float64{{1, 1}, {1, 1}})
	if _, err := SolveCholesky(a, []float64{1, 1}); err == nil {
		t.Fatal("expected ErrSingular for rank-deficient matrix")
	}
}

// Property: SolveCholesky solves random SPD systems to high accuracy.
func TestSolveCholeskyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		b := NewDense(n+2, n) // tall random matrix → bᵀb is SPD a.s.
		for i := 0; i < n+2; i++ {
			for j := 0; j < n; j++ {
				b.Set(i, j, rng.NormFloat64()+1e-3)
			}
		}
		a := Gram(b)
		for j := 0; j < n; j++ {
			a.Add(j, j, 0.1) // guarantee positive definiteness
		}
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		x, err := SolveCholesky(a, rhs)
		if err != nil {
			return false
		}
		back := MulVec(a, x)
		for i := range back {
			if !almostEq(back[i], rhs[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSolveLeastSquaresRecovers(t *testing.T) {
	// Noise-free linear data: least squares must recover the coefficients.
	rng := rand.New(rand.NewSource(3))
	coef := []float64{2, -1, 0.5}
	a := NewDense(40, 3)
	b := make([]float64, 40)
	for i := 0; i < 40; i++ {
		for j := 0; j < 3; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
		b[i] = Dot(a.Row(i), coef)
	}
	x, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for j := range coef {
		if !almostEq(x[j], coef[j], 1e-6) {
			t.Fatalf("coef[%d] = %g want %g", j, x[j], coef[j])
		}
	}
}

func TestDotAXPYScaleNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	y := []float64{1, 1}
	AXPY(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("AXPY = %v", y)
	}
	Scale(0.5, y)
	if y[0] != 3.5 || y[1] != 4.5 {
		t.Fatalf("Scale = %v", y)
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Fatal("Norm2 wrong")
	}
}

func TestMeanVariance(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(v) != 5 {
		t.Fatalf("Mean = %g", Mean(v))
	}
	if Variance(v) != 4 {
		t.Fatalf("Variance = %g", Variance(v))
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty input must give 0")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must deep-copy")
	}
}
