package interp

import (
	"fmt"

	"highrpm/internal/mat"
)

// AR is an autoregressive model of order p fitted by least squares —
// the "ARIMA"-style alternative the paper contrasts with splines (§4.2.1:
// "interpolation techniques like splines and ARIMA can only estimate
// missing data points based on long-term trends"). It predicts the next
// value from the previous p values and is used by the ablation experiments
// to show why HighRPM does not rely on pure time-series extrapolation.
type AR struct {
	// Order is the number of lags p.
	Order int
	// Coef are the fitted lag coefficients (Coef[0] multiplies the most
	// recent value).
	Coef []float64
	// Intercept is the fitted constant term.
	Intercept float64
	// Mean of the training series, used as the cold-start prediction.
	Mean float64
}

// NewAR returns an untrained AR(p) model; order defaults to 3 when
// non-positive.
func NewAR(order int) *AR {
	if order <= 0 {
		order = 3
	}
	return &AR{Order: order}
}

// Fit estimates the coefficients on a regularly sampled series.
func (a *AR) Fit(series []float64) error {
	p := a.Order
	n := len(series) - p
	if n < p+2 {
		return fmt.Errorf("interp: AR(%d) needs at least %d points, got %d", p, 2*p+2, len(series))
	}
	x := mat.NewDense(n, p+1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for k := 0; k < p; k++ {
			row[k] = series[p+i-1-k]
		}
		row[p] = 1
		y[i] = series[p+i]
	}
	w, err := mat.SolveLeastSquares(x, y)
	if err != nil {
		return fmt.Errorf("interp: AR fit: %w", err)
	}
	a.Coef = w[:p]
	a.Intercept = w[p]
	a.Mean = mat.Mean(series)
	return nil
}

// Next predicts the value following the given history (most recent last).
// Shorter histories are padded with the training mean.
func (a *AR) Next(history []float64) float64 {
	if a.Coef == nil {
		panic("interp: AR is not fitted")
	}
	pred := a.Intercept
	for k := 0; k < a.Order; k++ {
		idx := len(history) - 1 - k
		v := a.Mean
		if idx >= 0 {
			v = history[idx]
		}
		pred += a.Coef[k] * v
	}
	return pred
}

// Forecast iterates Next for steps predictions, feeding each prediction
// back as history — the pure-extrapolation behaviour whose error growth
// motivates DynamicTRR.
func (a *AR) Forecast(history []float64, steps int) []float64 {
	h := append([]float64(nil), history...)
	out := make([]float64, steps)
	for i := 0; i < steps; i++ {
		v := a.Next(h)
		out[i] = v
		h = append(h, v)
	}
	return out
}
