// Package interp implements the interpolation methods StaticTRR builds on
// (§4.2.1): natural cubic splines for recovering the long-term node-power
// trend from sparse integrated-measurement readings, and piecewise-linear
// interpolation as a robust fallback for short inputs.
package interp

import (
	"errors"
	"fmt"
	"sort"
)

// ErrTooFewPoints is returned when a spline is requested through fewer than
// two knots.
var ErrTooFewPoints = errors.New("interp: need at least two points")

// CubicSpline is a natural cubic spline through a set of (x, y) knots.
// Outside the knot range it extrapolates with the boundary cubic segment's
// tangent line, which keeps DynamicTRR-style look-ahead bounded.
type CubicSpline struct {
	xs, ys []float64
	// Per-segment coefficients: y = a + b·dx + c·dx² + d·dx³.
	b, c, d []float64
}

// NewCubicSpline fits a natural cubic spline through the given knots. The
// inputs are copied and sorted by x; duplicate x values are rejected.
func NewCubicSpline(xs, ys []float64) (*CubicSpline, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("interp: %d xs vs %d ys", len(xs), len(ys))
	}
	n := len(xs)
	if n < 2 {
		return nil, ErrTooFewPoints
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	sx := make([]float64, n)
	sy := make([]float64, n)
	for i, j := range idx {
		sx[i] = xs[j]
		sy[i] = ys[j]
	}
	for i := 1; i < n; i++ {
		//lint:ignore floateq exact duplicate-knot detection: any nonzero gap is a valid spline interval
		if sx[i] == sx[i-1] {
			return nil, fmt.Errorf("interp: duplicate knot x=%g", sx[i])
		}
	}
	s := &CubicSpline{xs: sx, ys: sy}
	if n == 2 {
		// Degenerates to the connecting line.
		s.b = []float64{(sy[1] - sy[0]) / (sx[1] - sx[0])}
		s.c = []float64{0}
		s.d = []float64{0}
		return s, nil
	}
	// Solve the tridiagonal system for second derivatives (natural BCs).
	h := make([]float64, n-1)
	for i := 0; i < n-1; i++ {
		h[i] = sx[i+1] - sx[i]
	}
	// Thomas algorithm over interior nodes 1..n-2.
	diag := make([]float64, n)
	rhs := make([]float64, n)
	upper := make([]float64, n)
	diag[0], diag[n-1] = 1, 1
	for i := 1; i < n-1; i++ {
		diag[i] = 2 * (h[i-1] + h[i])
		rhs[i] = 3 * ((sy[i+1]-sy[i])/h[i] - (sy[i]-sy[i-1])/h[i-1])
		upper[i] = h[i]
	}
	// Forward sweep (lower entries are h[i-1]).
	for i := 2; i < n-1; i++ {
		w := h[i-1] / diag[i-1]
		diag[i] -= w * upper[i-1]
		rhs[i] -= w * rhs[i-1]
	}
	c := make([]float64, n)
	for i := n - 2; i >= 1; i-- {
		c[i] = (rhs[i] - upper[i]*c[i+1]) / diag[i]
	}
	s.b = make([]float64, n-1)
	s.c = make([]float64, n-1)
	s.d = make([]float64, n-1)
	for i := 0; i < n-1; i++ {
		s.c[i] = c[i]
		s.b[i] = (sy[i+1]-sy[i])/h[i] - h[i]*(2*c[i]+c[i+1])/3
		s.d[i] = (c[i+1] - c[i]) / (3 * h[i])
	}
	return s, nil
}

// At evaluates the spline at x.
func (s *CubicSpline) At(x float64) float64 {
	n := len(s.xs)
	if x <= s.xs[0] {
		// Linear extrapolation with the left boundary tangent.
		return s.ys[0] + s.b[0]*(x-s.xs[0])
	}
	if x >= s.xs[n-1] {
		i := n - 2
		dx := s.xs[n-1] - s.xs[i]
		// Tangent slope at the last knot.
		slope := s.b[i] + 2*s.c[i]*dx + 3*s.d[i]*dx*dx
		return s.ys[n-1] + slope*(x-s.xs[n-1])
	}
	i := sort.SearchFloat64s(s.xs, x) - 1
	if i < 0 {
		i = 0
	}
	dx := x - s.xs[i]
	return s.ys[i] + dx*(s.b[i]+dx*(s.c[i]+dx*s.d[i]))
}

// Sample evaluates the spline at each x in xs.
func (s *CubicSpline) Sample(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = s.At(x)
	}
	return out
}

// Knots returns copies of the spline's knot coordinates.
func (s *CubicSpline) Knots() (xs, ys []float64) {
	xs = append([]float64(nil), s.xs...)
	ys = append([]float64(nil), s.ys...)
	return xs, ys
}

// Linear is a piecewise-linear interpolant with constant extrapolation.
type Linear struct {
	xs, ys []float64
}

// NewLinear builds a piecewise-linear interpolant; inputs are copied and
// sorted by x.
func NewLinear(xs, ys []float64) (*Linear, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("interp: %d xs vs %d ys", len(xs), len(ys))
	}
	if len(xs) < 1 {
		return nil, ErrTooFewPoints
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	l := &Linear{xs: make([]float64, len(xs)), ys: make([]float64, len(xs))}
	for i, j := range idx {
		l.xs[i] = xs[j]
		l.ys[i] = ys[j]
	}
	return l, nil
}

// At evaluates the interpolant at x; outside the knot range the nearest knot
// value is returned.
func (l *Linear) At(x float64) float64 {
	n := len(l.xs)
	if x <= l.xs[0] {
		return l.ys[0]
	}
	if x >= l.xs[n-1] {
		return l.ys[n-1]
	}
	i := sort.SearchFloat64s(l.xs, x) - 1
	if i < 0 {
		i = 0
	}
	span := l.xs[i+1] - l.xs[i]
	if span == 0 {
		return l.ys[i]
	}
	t := (x - l.xs[i]) / span
	return l.ys[i]*(1-t) + l.ys[i+1]*t
}

// Sample evaluates the interpolant at each x in xs.
func (l *Linear) Sample(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = l.At(x)
	}
	return out
}
