package interp

import (
	"math"
	"math/rand"
	"testing"
)

func TestARRecoversKnownProcess(t *testing.T) {
	// x_t = 0.7·x_{t−1} + 2 with small noise.
	rng := rand.New(rand.NewSource(1))
	series := make([]float64, 500)
	series[0] = 6.6
	for i := 1; i < len(series); i++ {
		series[i] = 0.7*series[i-1] + 2 + rng.NormFloat64()*0.01
	}
	ar := NewAR(1)
	if err := ar.Fit(series); err != nil {
		t.Fatal(err)
	}
	if math.Abs(ar.Coef[0]-0.7) > 0.02 {
		t.Fatalf("coef = %g want ~0.7", ar.Coef[0])
	}
	if math.Abs(ar.Intercept-2) > 0.2 {
		t.Fatalf("intercept = %g want ~2", ar.Intercept)
	}
	// One-step prediction from the stationary point stays there.
	if got := ar.Next([]float64{6.667}); math.Abs(got-6.667) > 0.1 {
		t.Fatalf("Next = %g want ~6.667", got)
	}
}

func TestARForecastConvergesToFixedPoint(t *testing.T) {
	ar := &AR{Order: 1, Coef: []float64{0.5}, Intercept: 5, Mean: 10}
	fc := ar.Forecast([]float64{0}, 50)
	// Fixed point of x = 0.5x + 5 is 10.
	if math.Abs(fc[len(fc)-1]-10) > 1e-6 {
		t.Fatalf("forecast tail = %g want 10", fc[len(fc)-1])
	}
}

func TestARShortHistoryUsesMean(t *testing.T) {
	ar := &AR{Order: 3, Coef: []float64{0.2, 0.2, 0.2}, Intercept: 0, Mean: 50}
	// Empty history: prediction = 0.6·mean.
	if got := ar.Next(nil); math.Abs(got-30) > 1e-9 {
		t.Fatalf("Next(nil) = %g want 30", got)
	}
}

func TestARErrors(t *testing.T) {
	ar := NewAR(5)
	if err := ar.Fit([]float64{1, 2, 3}); err == nil {
		t.Fatal("expected too-short error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unfitted Next")
		}
	}()
	NewAR(2).Next([]float64{1, 2})
}

func TestARDefaultOrder(t *testing.T) {
	if NewAR(0).Order != 3 {
		t.Fatal("default order must be 3")
	}
}
