package interp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSplinePassesThroughKnots(t *testing.T) {
	xs := []float64{0, 1, 2.5, 4, 7}
	ys := []float64{1, 3, -2, 0, 5}
	s, err := NewCubicSpline(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		if got := s.At(x); math.Abs(got-ys[i]) > 1e-9 {
			t.Fatalf("At(%g) = %g want %g", x, got, ys[i])
		}
	}
}

func TestSplineReproducesLine(t *testing.T) {
	// A natural cubic spline through collinear points is the line itself.
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2*x + 1
	}
	s, err := NewCubicSpline(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for x := -1.0; x <= 5; x += 0.1 {
		if got := s.At(x); math.Abs(got-(2*x+1)) > 1e-9 {
			t.Fatalf("At(%g) = %g want %g", x, got, 2*x+1)
		}
	}
}

func TestSplineSmoothFunctionAccuracy(t *testing.T) {
	// Dense knots on a sine: mid-point error must be small.
	var xs, ys []float64
	for x := 0.0; x <= 10; x += 0.5 {
		xs = append(xs, x)
		ys = append(ys, math.Sin(x))
	}
	s, err := NewCubicSpline(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0.25; x < 10; x += 0.5 {
		if got := s.At(x); math.Abs(got-math.Sin(x)) > 1e-2 {
			t.Fatalf("At(%g) = %g want %g", x, got, math.Sin(x))
		}
	}
}

func TestSplineUnsortedInput(t *testing.T) {
	s, err := NewCubicSpline([]float64{2, 0, 1}, []float64{4, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.At(1); math.Abs(got-1) > 1e-9 {
		t.Fatalf("unsorted input mishandled: At(1) = %g", got)
	}
}

func TestSplineErrors(t *testing.T) {
	if _, err := NewCubicSpline([]float64{1}, []float64{1}); err != ErrTooFewPoints {
		t.Fatalf("want ErrTooFewPoints, got %v", err)
	}
	if _, err := NewCubicSpline([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("want duplicate-knot error")
	}
	if _, err := NewCubicSpline([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("want length-mismatch error")
	}
}

func TestSplineTwoPointsIsLine(t *testing.T) {
	s, err := NewCubicSpline([]float64{0, 2}, []float64{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.At(1); math.Abs(got-2) > 1e-12 {
		t.Fatalf("At(1) = %g want 2", got)
	}
	if got := s.At(3); math.Abs(got-6) > 1e-12 {
		t.Fatalf("extrapolated At(3) = %g want 6", got)
	}
}

func TestSplineExtrapolationIsLinear(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{0, 1, 4, 9}
	s, err := NewCubicSpline(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	// Beyond the knots the second difference must vanish (linear).
	d1 := s.At(5) - s.At(4)
	d2 := s.At(6) - s.At(5)
	if math.Abs(d1-d2) > 1e-9 {
		t.Fatalf("extrapolation is not linear: %g vs %g", d1, d2)
	}
}

// Property: spline interpolation of random data always passes through its
// knots and returns finite values in between.
func TestSplineKnotProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		x := 0.0
		for i := range xs {
			x += 0.1 + rng.Float64()
			xs[i] = x
			ys[i] = rng.NormFloat64() * 50
		}
		s, err := NewCubicSpline(xs, ys)
		if err != nil {
			return false
		}
		for i := range xs {
			if math.Abs(s.At(xs[i])-ys[i]) > 1e-6 {
				return false
			}
		}
		for k := 0; k < 20; k++ {
			v := s.At(xs[0] + rng.Float64()*(xs[n-1]-xs[0]))
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplineSampleAndKnots(t *testing.T) {
	s, err := NewCubicSpline([]float64{0, 1, 2}, []float64{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	out := s.Sample([]float64{0, 1, 2})
	if len(out) != 3 || math.Abs(out[1]-1) > 1e-9 {
		t.Fatalf("Sample = %v", out)
	}
	xs, ys := s.Knots()
	xs[0] = 99
	ys[0] = 99
	if s.At(0) != 0 {
		t.Fatal("Knots must return copies")
	}
}

func TestLinearInterp(t *testing.T) {
	l, err := NewLinear([]float64{0, 10}, []float64{0, 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.At(5); got != 50 {
		t.Fatalf("At(5) = %g want 50", got)
	}
	// Constant extrapolation.
	if l.At(-5) != 0 || l.At(20) != 100 {
		t.Fatal("linear extrapolation must clamp to boundary knots")
	}
	out := l.Sample([]float64{2.5, 7.5})
	if out[0] != 25 || out[1] != 75 {
		t.Fatalf("Sample = %v", out)
	}
}

func TestLinearErrors(t *testing.T) {
	if _, err := NewLinear(nil, nil); err != ErrTooFewPoints {
		t.Fatalf("want ErrTooFewPoints, got %v", err)
	}
	if _, err := NewLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("want length-mismatch error")
	}
}

func TestLinearSinglePoint(t *testing.T) {
	l, err := NewLinear([]float64{3}, []float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if l.At(0) != 7 || l.At(100) != 7 {
		t.Fatal("single-knot interpolant must be constant")
	}
}
