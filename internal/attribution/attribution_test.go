package attribution

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"highrpm/internal/platform"
	"highrpm/internal/workload"
)

func TestAttributeConservesPower(t *testing.T) {
	jobs := []JobActivity{
		{JobID: "a", Cycles: 3e10, MemAccesses: 1e8, CoreShare: 0.5},
		{JobID: "b", Cycles: 1e10, MemAccesses: 3e8, CoreShare: 0.25},
	}
	powers, err := Attribute(60, 30, jobs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range powers {
		sum += p.TotalW()
	}
	if math.Abs(sum-90) > 1e-9 {
		t.Fatalf("attributed %.3f W of 90 W", sum)
	}
}

func TestAttributeProportionalToActivity(t *testing.T) {
	cfg := Config{CPUIdleW: 10, MEMIdleW: 5}
	jobs := []JobActivity{
		{JobID: "hot", Cycles: 9e10, MemAccesses: 0, CoreShare: 0.5},
		{JobID: "cold", Cycles: 1e10, MemAccesses: 0, CoreShare: 0.5},
	}
	powers, err := Attribute(110, 5, jobs, cfg) // 100 W dynamic CPU
	if err != nil {
		t.Fatal(err)
	}
	// hot: 5 idle + 90 dyn; cold: 5 idle + 10 dyn.
	if math.Abs(powers[0].CPUW-95) > 1e-9 {
		t.Fatalf("hot CPU = %g want 95", powers[0].CPUW)
	}
	if math.Abs(powers[1].CPUW-15) > 1e-9 {
		t.Fatalf("cold CPU = %g want 15", powers[1].CPUW)
	}
}

func TestAttributeIdleOnlyNode(t *testing.T) {
	cfg := Config{CPUIdleW: 12, MEMIdleW: 8}
	jobs := []JobActivity{
		{JobID: "a", CoreShare: 0.75},
		{JobID: "b", CoreShare: 0.25},
	}
	powers, err := Attribute(12, 8, jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Idle CPU split 9/3 by share; idle MEM split 4/4 evenly.
	if math.Abs(powers[0].CPUW-9) > 1e-9 || math.Abs(powers[1].CPUW-3) > 1e-9 {
		t.Fatalf("idle CPU split = %g/%g want 9/3", powers[0].CPUW, powers[1].CPUW)
	}
	if math.Abs(powers[0].MEMW-4) > 1e-9 {
		t.Fatalf("idle MEM split = %g want 4", powers[0].MEMW)
	}
}

func TestAttributeValidation(t *testing.T) {
	if _, err := Attribute(50, 20, nil, DefaultConfig()); err == nil {
		t.Fatal("no jobs must fail")
	}
	bad := []JobActivity{{JobID: "x", Cycles: -1}}
	if _, err := Attribute(50, 20, bad, DefaultConfig()); err == nil {
		t.Fatal("negative activity must fail")
	}
	over := []JobActivity{{JobID: "a", CoreShare: 0.7}, {JobID: "b", CoreShare: 0.7}}
	if _, err := Attribute(50, 20, over, DefaultConfig()); err == nil {
		t.Fatal("core shares > 1 must fail")
	}
}

// Property: attribution conserves power for arbitrary job mixes.
func TestAttributeConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(6)
		jobs := make([]JobActivity, k)
		share := 1.0
		for i := range jobs {
			s := share * rng.Float64() / 2
			jobs[i] = JobActivity{
				JobID:       string(rune('a' + i)),
				Cycles:      rng.Float64() * 1e11,
				MemAccesses: rng.Float64() * 1e9,
				CoreShare:   s,
			}
			share -= s
		}
		pcpu := 12 + rng.Float64()*80
		pmem := 8 + rng.Float64()*35
		powers, err := Attribute(pcpu, pmem, jobs, DefaultConfig())
		if err != nil {
			return false
		}
		var sum float64
		for _, p := range powers {
			sum += p.TotalW()
		}
		return math.Abs(sum-(pcpu+pmem)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLedger(t *testing.T) {
	l := NewLedger()
	l.Add([]JobPower{{JobID: "a", CPUW: 40, MEMW: 10}, {JobID: "b", CPUW: 20, MEMW: 5}})
	l.Add([]JobPower{{JobID: "a", CPUW: 60, MEMW: 10}})
	entries := l.Entries()
	if len(entries) != 2 || entries[0].JobID != "a" {
		t.Fatalf("entries = %+v", entries)
	}
	if entries[0].EnergyJ != 120 || entries[0].Seconds != 2 || entries[0].MeanW != 60 {
		t.Fatalf("job a = %+v", entries[0])
	}
	if l.TotalJ() != 145 {
		t.Fatalf("total = %g", l.TotalJ())
	}
}

func mustFind(t *testing.T, name string) workload.Benchmark {
	t.Helper()
	b, err := workload.Find(name)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSharedNodeValidation(t *testing.T) {
	n, err := NewSharedNode(platform.ARMConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AddJob("a", mustFind(t, "HPCC/FFT"), 0); err == nil {
		t.Fatal("zero share must fail")
	}
	if err := n.AddJob("a", mustFind(t, "HPCC/FFT"), 0.8); err != nil {
		t.Fatal(err)
	}
	if err := n.AddJob("b", mustFind(t, "HPCC/STREAM"), 0.5); err == nil {
		t.Fatal("over-subscription must fail")
	}
}

func TestSharedNodeTruthConsistency(t *testing.T) {
	n, err := NewSharedNode(platform.ARMConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AddJob("fft", mustFind(t, "HPCC/FFT"), 0.5); err != nil {
		t.Fatal(err)
	}
	if err := n.AddJob("stream", mustFind(t, "HPCC/STREAM"), 0.5); err != nil {
		t.Fatal(err)
	}
	samples := n.Run(120)
	for i, s := range samples {
		var truth float64
		for _, w := range s.TruthW {
			truth += w
		}
		// Per-job truths must sum to the components up to sensor noise.
		if math.Abs(truth-(s.PCPU+s.PMEM)) > 6*platform.ARMConfig().CompNoise+1 {
			t.Fatalf("second %d: truth sum %.1f vs components %.1f", i, truth, s.PCPU+s.PMEM)
		}
	}
}

func TestAttributionAccuracyOnSharedNode(t *testing.T) {
	// End to end: attribute the (here: true) component power by counter
	// shares and compare with per-job ground truth. The compute-heavy job
	// must receive clearly more CPU energy than the memory-bound one.
	n, err := NewSharedNode(platform.ARMConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AddJob("fft", mustFind(t, "HPCC/FFT"), 0.5); err != nil {
		t.Fatal(err)
	}
	if err := n.AddJob("stream", mustFind(t, "HPCC/STREAM"), 0.5); err != nil {
		t.Fatal(err)
	}
	samples := n.Run(200)
	ledger := NewLedger()
	truth := map[string]float64{}
	var absErr, truthSum float64
	for _, s := range samples {
		powers, err := Attribute(s.PCPU, s.PMEM, s.Jobs, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		ledger.Add(powers)
		for i, p := range powers {
			truth[p.JobID] += s.TruthW[i]
			absErr += math.Abs(p.TotalW() - s.TruthW[i])
			truthSum += s.TruthW[i]
		}
	}
	if relErr := absErr / truthSum; relErr > 0.15 {
		t.Fatalf("mean attribution error %.1f%% of energy", 100*relErr)
	}
	entries := ledger.Entries()
	if entries[0].JobID != "fft" {
		t.Fatalf("fft should dominate the ledger, got %+v", entries)
	}
	// Ledger totals track ground truth.
	var truthTotal float64
	for _, v := range truth {
		truthTotal += v
	}
	if math.Abs(ledger.TotalJ()-truthTotal)/truthTotal > 0.05 {
		t.Fatalf("ledger %.0f J vs truth %.0f J", ledger.TotalJ(), truthTotal)
	}
}
