// Package attribution splits restored node power among the jobs sharing a
// node and accounts their energy — the scheduling/accounting use case the
// paper's introduction motivates ("power readings help the system quickly
// respond ... important for efficient workload scheduling"). It composes
// with HighRPM: the framework restores P_CPU/P_MEM at 1 Sa/s, and this
// package distributes those watts to jobs by their counter shares, the
// same attribution model production tools (per-cgroup/per-process power
// meters) use.
package attribution

import (
	"fmt"
	"sort"
)

// JobActivity is one job's per-second counter aggregate on a node.
type JobActivity struct {
	JobID string
	// Cycles is the job's active CPU cycles this second (summed over its
	// cores/threads).
	Cycles float64
	// MemAccesses is the job's main-memory access count this second.
	MemAccesses float64
	// CoreShare is the fraction of the node's cores allocated to the job
	// (used to split idle power); shares should sum to ≤ 1.
	CoreShare float64
}

// JobPower is one job's attributed power for a second.
type JobPower struct {
	JobID string
	CPUW  float64
	MEMW  float64
}

// TotalW returns the job's total attributed power.
func (j JobPower) TotalW() float64 { return j.CPUW + j.MEMW }

// Config sets the idle-power split.
type Config struct {
	// CPUIdleW and MEMIdleW are the node's idle power components; they are
	// split by CoreShare (CPU) and evenly (MEM) across jobs. Values of the
	// ARM platform by default.
	CPUIdleW float64
	MEMIdleW float64
}

// DefaultConfig matches the simulated ARM node.
func DefaultConfig() Config { return Config{CPUIdleW: 12, MEMIdleW: 8} }

// Attribute splits one second's component power among jobs:
//
//   - dynamic CPU power (above idle) proportionally to active cycles,
//   - dynamic memory power proportionally to memory accesses,
//   - idle CPU power by core share, idle memory power evenly.
//
// Jobs with zero activity still carry their idle share — holding cores
// costs energy whether or not they retire instructions.
func Attribute(pcpuW, pmemW float64, jobs []JobActivity, cfg Config) ([]JobPower, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("attribution: no jobs")
	}
	var totCycles, totMem, totShare float64
	for _, j := range jobs {
		if j.Cycles < 0 || j.MemAccesses < 0 || j.CoreShare < 0 {
			return nil, fmt.Errorf("attribution: job %s has negative activity", j.JobID)
		}
		totCycles += j.Cycles
		totMem += j.MemAccesses
		totShare += j.CoreShare
	}
	if totShare > 1+1e-9 {
		return nil, fmt.Errorf("attribution: core shares sum to %.3f > 1", totShare)
	}
	dynCPU := pcpuW - cfg.CPUIdleW
	if dynCPU < 0 {
		dynCPU = 0
	}
	dynMEM := pmemW - cfg.MEMIdleW
	if dynMEM < 0 {
		dynMEM = 0
	}
	idleCPU := pcpuW - dynCPU
	idleMEM := pmemW - dynMEM

	out := make([]JobPower, len(jobs))
	for i, j := range jobs {
		p := JobPower{JobID: j.JobID}
		// Idle split.
		if totShare > 0 {
			p.CPUW += idleCPU * j.CoreShare / totShare
		} else {
			p.CPUW += idleCPU / float64(len(jobs))
		}
		p.MEMW += idleMEM / float64(len(jobs))
		// Dynamic split.
		if totCycles > 0 {
			p.CPUW += dynCPU * j.Cycles / totCycles
		} else if totShare > 0 {
			p.CPUW += dynCPU * j.CoreShare / totShare
		}
		if totMem > 0 {
			p.MEMW += dynMEM * j.MemAccesses / totMem
		} else {
			p.MEMW += dynMEM / float64(len(jobs))
		}
		out[i] = p
	}
	return out, nil
}

// Ledger accumulates per-job energy over time.
type Ledger struct {
	energyJ map[string]float64
	seconds map[string]float64
}

// NewLedger returns an empty energy ledger.
func NewLedger() *Ledger {
	return &Ledger{energyJ: map[string]float64{}, seconds: map[string]float64{}}
}

// Add books one second of attributed power.
func (l *Ledger) Add(powers []JobPower) {
	for _, p := range powers {
		l.energyJ[p.JobID] += p.TotalW()
		l.seconds[p.JobID]++
	}
}

// Entry is one job's accumulated accounting record.
type Entry struct {
	JobID   string
	EnergyJ float64
	Seconds float64
	MeanW   float64
}

// Entries returns the ledger sorted by descending energy.
func (l *Ledger) Entries() []Entry {
	out := make([]Entry, 0, len(l.energyJ))
	for id, e := range l.energyJ {
		ent := Entry{JobID: id, EnergyJ: e, Seconds: l.seconds[id]}
		if ent.Seconds > 0 {
			ent.MeanW = e / ent.Seconds
		}
		out = append(out, ent)
	}
	sort.Slice(out, func(i, j int) bool {
		//lint:ignore floateq exact tie-break: only bit-identical energies fall through to the JobID key
		if out[i].EnergyJ != out[j].EnergyJ {
			return out[i].EnergyJ > out[j].EnergyJ
		}
		return out[i].JobID < out[j].JobID
	})
	return out
}

// TotalJ returns the summed energy across jobs. Jobs are visited in
// sorted ID order so the float sum is bit-reproducible run to run.
func (l *Ledger) TotalJ() float64 {
	ids := make([]string, 0, len(l.energyJ))
	for id := range l.energyJ {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var s float64
	for _, id := range ids {
		s += l.energyJ[id]
	}
	return s
}
