package attribution

import (
	"fmt"
	"math"
	"math/rand"

	"highrpm/internal/platform"
	"highrpm/internal/pmu"
	"highrpm/internal/workload"
)

// SharedNode simulates several jobs space-sharing one node's cores. It
// composes the single-workload platform model: each job is a workload
// instance scaled by its core share; the node's component power is the sum
// of per-job dynamic power plus the shared idle/leakage/wander processes.
// Ground-truth per-job power is recorded so attribution accuracy can be
// evaluated.
type SharedNode struct {
	cfg  platform.Config
	rng  *rand.Rand
	jobs []*sharedJob

	temp  float64
	ouCPU float64
	ouMEM float64
	t     float64
}

type sharedJob struct {
	id    string
	share float64
	inst  *workload.Instance
	bench workload.Benchmark
}

// SharedSample is one second of a co-located run.
type SharedSample struct {
	Time float64
	// Node-level observables (what HighRPM sees).
	PCPU, PMEM, PNode float64
	Counters          pmu.Counters
	// Jobs carries each job's per-second counter aggregates.
	Jobs []JobActivity
	// TruthW is the ground-truth per-job total power, aligned with Jobs.
	TruthW []float64
}

// NewSharedNode creates a co-location simulation on the given platform.
func NewSharedNode(cfg platform.Config, seed int64) (*SharedNode, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &SharedNode{cfg: cfg, rng: rand.New(rand.NewSource(seed))}, nil
}

// AddJob places a benchmark on the node with a fraction of its cores.
func (n *SharedNode) AddJob(id string, b workload.Benchmark, coreShare float64) error {
	if coreShare <= 0 || coreShare > 1 {
		return fmt.Errorf("attribution: job %s core share %.2f out of (0,1]", id, coreShare)
	}
	var total float64
	for _, j := range n.jobs {
		total += j.share
	}
	if total+coreShare > 1+1e-9 {
		return fmt.Errorf("attribution: core shares would exceed the node (%.2f + %.2f)", total, coreShare)
	}
	n.jobs = append(n.jobs, &sharedJob{
		id: id, share: coreShare, bench: b,
		inst: workload.NewInstance(b, n.rng.Int63()),
	})
	return nil
}

// Step advances one second, returning node observables and per-job truth.
func (n *SharedNode) Step() SharedSample {
	cfg := n.cfg
	out := SharedSample{Time: n.t}
	fRel := 1.0 // co-location study runs at the maximum DVFS level

	var dynSum, memSum float64
	type jd struct {
		dyn, mem float64
		act      workload.State
	}
	perJob := make([]jd, len(n.jobs))
	for i, j := range n.jobs {
		if j.inst.Done() {
			j.inst = workload.NewInstance(j.bench, n.rng.Int63())
		}
		st := j.inst.Advance(1, fRel)
		activity := 0.7*st.Util + 0.3*st.Util*math.Min(st.IPC, 3.2)/3.2
		dyn := cfg.CPUDyn * activity * st.CPUPowerScale * j.share
		mem := cfg.MemDyn * st.Mem * st.MemPowerScale * j.share
		perJob[i] = jd{dyn: dyn, mem: mem, act: st}
		dynSum += dyn
		memSum += mem
	}

	// Shared node processes (same forms as platform.Node.Step).
	targetTemp := dynSum * 0.45
	n.temp += (targetTemp - n.temp) / 25
	leak := cfg.LeakGain * n.temp
	wtau := cfg.WanderTau
	if wtau <= 0 {
		wtau = 20
	}
	n.ouCPU += -n.ouCPU/wtau + cfg.WanderCPU*math.Sqrt(2/wtau)*n.rng.NormFloat64()
	n.ouMEM += -n.ouMEM/wtau + cfg.WanderMEM*math.Sqrt(2/wtau)*n.rng.NormFloat64()

	out.PCPU = cfg.CPUIdle + dynSum + leak + n.ouCPU + n.rng.NormFloat64()*cfg.CompNoise
	out.PMEM = cfg.MemIdle + memSum + n.ouMEM + 0.30*n.ouCPU + 0.08*leak + n.rng.NormFloat64()*cfg.CompNoise*0.6
	out.PNode = out.PCPU + out.PMEM + cfg.Other + n.rng.NormFloat64()*cfg.NodeNoise

	// Per-job counters and ground-truth power. Shared components (idle,
	// leakage, wander) are attributed the way the Attribute policy defines
	// truth: idle by core share, shared dynamics by activity share.
	var totShare float64
	for _, j := range n.jobs {
		totShare += j.share
	}
	noisy := func(v float64) float64 {
		v *= 1 + n.rng.NormFloat64()*cfg.PMCNoise
		if v < 0 {
			return 0
		}
		return v
	}
	freqHz := cfg.MaxFreq() * 1e9
	for i, j := range n.jobs {
		st := perJob[i].act
		cores := float64(cfg.Cores) * j.share
		cycles := noisy(cores * st.Util * freqHz)
		memAcc := noisy(st.Mem * 2.5e9 * cores / 64)
		out.Jobs = append(out.Jobs, JobActivity{
			JobID: j.id, Cycles: cycles, MemAccesses: memAcc, CoreShare: j.share,
		})
		shareFrac := j.share / totShare
		truth := perJob[i].dyn + perJob[i].mem +
			(cfg.CPUIdle+leak+n.ouCPU)*shareFrac +
			(cfg.MemIdle+n.ouMEM+0.30*n.ouCPU+0.08*leak)/float64(len(n.jobs))
		out.TruthW = append(out.TruthW, truth)

		// Node-level counters accumulate across jobs.
		inst := cycles * st.IPC
		out.Counters[pmu.CPUCycles] += cycles
		out.Counters[pmu.InstRetired] += inst
		out.Counters[pmu.BrPred] += inst * st.BranchFrac
		out.Counters[pmu.UopRetired] += inst * 1.35
		out.Counters[pmu.L1ICacheLD] += inst * 0.92
		out.Counters[pmu.L1ICacheST] += inst * 0.02
		out.Counters[pmu.LxDCacheLD] += inst * (0.22 + 0.30*st.Mem)
		out.Counters[pmu.LxDCacheST] += inst * (0.09 + 0.14*st.Mem)
		out.Counters[pmu.BusAccess] += st.Mem * 4e9 * cores / 64
		out.Counters[pmu.MemAccess] += memAcc
	}
	n.t++
	return out
}

// Run simulates dur seconds.
func (n *SharedNode) Run(dur int) []SharedSample {
	out := make([]SharedSample, dur)
	for i := range out {
		out[i] = n.Step()
	}
	return out
}
