package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"highrpm/internal/mat"
)

func TestFitScalerStandardizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := mat.NewDense(200, 3)
	for i := 0; i < 200; i++ {
		x.Set(i, 0, rng.NormFloat64()*10+5)
		x.Set(i, 1, rng.NormFloat64()*0.01-3)
		x.Set(i, 2, 7) // constant column
	}
	s := FitScaler(x)
	tx := s.Transform(x)
	for j := 0; j < 2; j++ {
		col := tx.Col(j)
		if m := mat.Mean(col); math.Abs(m) > 1e-9 {
			t.Fatalf("col %d mean = %g", j, m)
		}
		if v := mat.Variance(col); math.Abs(v-1) > 1e-6 {
			t.Fatalf("col %d variance = %g", j, v)
		}
	}
	// Constant column passes through shifted but not exploded.
	if got := tx.At(0, 2); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("constant column produced %g", got)
	}
}

func TestTransformRowMatchesTransform(t *testing.T) {
	x := mat.FromRows([][]float64{{1, 10}, {3, 30}, {5, 50}})
	s := FitScaler(x)
	full := s.Transform(x)
	for i := 0; i < 3; i++ {
		row := s.TransformRow(x.Row(i))
		for j := range row {
			if row[j] != full.At(i, j) {
				t.Fatalf("row %d mismatch", i)
			}
		}
	}
}

func TestTransformShapePanics(t *testing.T) {
	s := FitScaler(mat.FromRows([][]float64{{1, 2}}))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.TransformRow([]float64{1})
}

// Property: KFold partitions all indices exactly once across test folds,
// and train/test are disjoint within every fold.
func TestKFoldProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(90)
		k := 2 + rng.Intn(4)
		folds := KFold(n, k, rng)
		if len(folds) != k {
			return false
		}
		seen := map[int]int{}
		for _, fold := range folds {
			train, test := fold[0], fold[1]
			if len(train)+len(test) != n {
				return false
			}
			inTest := map[int]bool{}
			for _, i := range test {
				seen[i]++
				inTest[i] = true
			}
			for _, i := range train {
				if inTest[i] {
					return false
				}
			}
		}
		if len(seen) != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKFoldInvalid(t *testing.T) {
	for _, tc := range [][2]int{{5, 1}, {2, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("KFold(%d,%d) should panic", tc[0], tc[1])
				}
			}()
			KFold(tc[0], tc[1], nil)
		}()
	}
}

func TestSubset(t *testing.T) {
	x := mat.FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	y := []float64{10, 20, 30}
	sx, sy := Subset(x, y, []int{2, 0})
	if sx.At(0, 0) != 5 || sx.At(1, 0) != 1 {
		t.Fatal("Subset rows wrong")
	}
	if sy[0] != 30 || sy[1] != 10 {
		t.Fatal("Subset targets wrong")
	}
	sx2, sy2 := Subset(x, nil, []int{1})
	if sy2 != nil || sx2.Rows() != 1 {
		t.Fatal("Subset with nil y wrong")
	}
}

// meanModel predicts a constant; usable as a trivial Regressor.
type meanModel struct{ mean, bias float64 }

func (m *meanModel) Fit(x *mat.Dense, y []float64) error {
	m.mean = mat.Mean(y) + m.bias
	return nil
}
func (m *meanModel) Predict([]float64) float64 { return m.mean }

func TestGridSearchPicksBetter(t *testing.T) {
	// The "bias" hyperparameter 0 is strictly better than 100.
	x := mat.NewDense(40, 1)
	y := make([]float64, 40)
	for i := range y {
		x.Set(i, 0, float64(i))
		y[i] = 5
	}
	best, score := GridSearch(
		map[string][]float64{"bias": {100, 0, 50}},
		func(p GridPoint) Regressor { return &meanModel{bias: p["bias"]} },
		x, y, 4, rand.New(rand.NewSource(1)),
	)
	if best["bias"] != 0 {
		t.Fatalf("GridSearch picked bias=%g want 0", best["bias"])
	}
	if score > 1e-9 {
		t.Fatalf("best score = %g want ~0", score)
	}
}

func TestGridSearchCrossProduct(t *testing.T) {
	pts := expandGrid(map[string][]float64{"a": {1, 2}, "b": {3, 4, 5}})
	if len(pts) != 6 {
		t.Fatalf("grid size = %d want 6", len(pts))
	}
}

func TestScaledRegressorRoundTrip(t *testing.T) {
	// ScaledRegressor must be transparent for a scale-invariant model.
	x := mat.FromRows([][]float64{{100}, {200}, {300}})
	y := []float64{1, 2, 3}
	s := &ScaledRegressor{Inner: &meanModel{}}
	if err := s.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if got := s.Predict([]float64{150}); got != 2 {
		t.Fatalf("Predict = %g want 2", got)
	}
}

func TestPredictBatch(t *testing.T) {
	m := &meanModel{mean: 7}
	x := mat.NewDense(3, 1)
	out := PredictBatch(m, x)
	if len(out) != 3 || out[0] != 7 {
		t.Fatalf("PredictBatch = %v", out)
	}
}
