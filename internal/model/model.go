// Package model defines the contracts shared by every regression model in
// the repository — the 12 baselines of Table 4 and the HighRPM networks —
// together with the supporting machinery the paper's methodology requires:
// feature standardization, k-fold cross-validation (§5.3 uses 5-fold),
// grid search over hyperparameters (§5.4), and JSON persistence.
package model

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"highrpm/internal/mat"
)

// Regressor is a single-output regression model mapping a feature vector to
// a scalar target (a power reading in watts).
type Regressor interface {
	// Fit trains the model on the rows of x against targets y.
	Fit(x *mat.Dense, y []float64) error
	// Predict evaluates the model on one feature vector.
	Predict(features []float64) float64
}

// MultiRegressor is a multi-output regression model; the SRR MLP emits
// (P_CPU, P_MEM) jointly (§4.3).
type MultiRegressor interface {
	// FitMulti trains on rows of x against rows of y.
	FitMulti(x, y *mat.Dense) error
	// PredictMulti evaluates the model on one feature vector.
	PredictMulti(features []float64) []float64
}

// SeqRegressor is a sequence-to-sequence regression model. DynamicTRR feeds
// windows of miss_interval consecutive samples and reads back the power at
// each step (§4.2.2, Fig. 4).
type SeqRegressor interface {
	// FitSeq trains on sequences; seqs[i] is a window of feature vectors
	// and targets[i] the per-step labels of the same length.
	FitSeq(seqs [][][]float64, targets [][]float64) error
	// PredictSeq returns one prediction per step of the window.
	PredictSeq(window [][]float64) []float64
}

// FineTuner is implemented by models that support cheap online refinement;
// the active-learning stage (§4.1) and DynamicTRR's per-window refresh
// (§4.2.2) rely on it.
type FineTuner interface {
	// FineTune performs a small number of additional optimisation steps on
	// the given sequences without re-initialising the model.
	FineTune(seqs [][][]float64, targets [][]float64) error
}

// PredictBatch evaluates r on every row of x.
func PredictBatch(r Regressor, x *mat.Dense) []float64 {
	out := make([]float64, x.Rows())
	for i := range out {
		out[i] = r.Predict(x.Row(i))
	}
	return out
}

// PredictMultiBatch evaluates r on every row of x, returning a matrix with
// one prediction row per input row.
func PredictMultiBatch(r MultiRegressor, x *mat.Dense) *mat.Dense {
	first := r.PredictMulti(x.Row(0))
	out := mat.NewDense(x.Rows(), len(first))
	copy(out.Row(0), first)
	for i := 1; i < x.Rows(); i++ {
		copy(out.Row(i), r.PredictMulti(x.Row(i)))
	}
	return out
}

// StandardScaler standardizes features to zero mean and unit variance,
// column by column. Columns with zero variance pass through unscaled.
type StandardScaler struct {
	Mean []float64 `json:"mean"`
	Std  []float64 `json:"std"`
}

// FitScaler computes per-column statistics of x.
func FitScaler(x *mat.Dense) *StandardScaler {
	_, c := x.Dims()
	s := &StandardScaler{Mean: make([]float64, c), Std: make([]float64, c)}
	for j := 0; j < c; j++ {
		col := x.Col(j)
		s.Mean[j] = mat.Mean(col)
		v := mat.Variance(col)
		if v <= 0 {
			s.Std[j] = 1
		} else {
			s.Std[j] = math.Sqrt(v)
		}
	}
	return s
}

// Transform returns a standardized copy of x.
func (s *StandardScaler) Transform(x *mat.Dense) *mat.Dense {
	r, c := x.Dims()
	if c != len(s.Mean) {
		panic(fmt.Sprintf("model: scaler fitted on %d columns, got %d", len(s.Mean), c))
	}
	out := mat.NewDense(r, c)
	for i := 0; i < r; i++ {
		row := x.Row(i)
		orow := out.Row(i)
		for j := 0; j < c; j++ {
			orow[j] = (row[j] - s.Mean[j]) / s.Std[j]
		}
	}
	return out
}

// TransformRow standardizes a single feature vector.
func (s *StandardScaler) TransformRow(row []float64) []float64 {
	if len(row) != len(s.Mean) {
		panic(fmt.Sprintf("model: scaler fitted on %d columns, got %d", len(s.Mean), len(row)))
	}
	out := make([]float64, len(row))
	for j := range row {
		out[j] = (row[j] - s.Mean[j]) / s.Std[j]
	}
	return out
}

// ScaledRegressor wraps a Regressor with input standardization so callers
// can feed raw PMC counts without worrying about scale.
type ScaledRegressor struct {
	Inner  Regressor
	Scaler *StandardScaler
}

// Fit standardizes x, remembers the statistics, and fits the inner model.
func (s *ScaledRegressor) Fit(x *mat.Dense, y []float64) error {
	s.Scaler = FitScaler(x)
	return s.Inner.Fit(s.Scaler.Transform(x), y)
}

// Predict standardizes the feature vector and delegates to the inner model.
func (s *ScaledRegressor) Predict(features []float64) float64 {
	return s.Inner.Predict(s.Scaler.TransformRow(features))
}

// KFold yields k train/test index splits over n samples. When shuffle is
// true the order is permuted with rng first (rng may be nil for the
// identity order).
func KFold(n, k int, rng *rand.Rand) [][2][]int {
	if k < 2 || n < k {
		panic(fmt.Sprintf("model: invalid KFold n=%d k=%d", n, k))
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	if rng != nil {
		rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	}
	folds := make([][2][]int, 0, k)
	foldSize := n / k
	rem := n % k
	start := 0
	for f := 0; f < k; f++ {
		size := foldSize
		if f < rem {
			size++
		}
		test := append([]int(nil), idx[start:start+size]...)
		train := make([]int, 0, n-size)
		train = append(train, idx[:start]...)
		train = append(train, idx[start+size:]...)
		folds = append(folds, [2][]int{train, test})
		start += size
	}
	return folds
}

// Subset extracts the given rows of x and entries of y.
func Subset(x *mat.Dense, y []float64, rows []int) (*mat.Dense, []float64) {
	_, c := x.Dims()
	sx := mat.NewDense(len(rows), c)
	var sy []float64
	if y != nil {
		sy = make([]float64, len(rows))
	}
	for i, r := range rows {
		copy(sx.Row(i), x.Row(r))
		if y != nil {
			sy[i] = y[r]
		}
	}
	return sx, sy
}

// GridPoint is one hyperparameter assignment tried by GridSearch.
type GridPoint map[string]float64

// GridSearch exhaustively evaluates factory-built models over the cross
// product of the parameter grid using k-fold CV and returns the assignment
// with the lowest mean validation RMSE. The paper tunes its RNN baselines
// this way (§5.4).
func GridSearch(
	grid map[string][]float64,
	factory func(GridPoint) Regressor,
	x *mat.Dense, y []float64,
	k int, rng *rand.Rand,
) (GridPoint, float64) {
	points := expandGrid(grid)
	bestScore := inf()
	var best GridPoint
	folds := KFold(len(y), k, rng)
	for _, p := range points {
		var total float64
		for _, fold := range folds {
			tx, ty := Subset(x, y, fold[0])
			vx, vy := Subset(x, y, fold[1])
			m := factory(p)
			if err := m.Fit(tx, ty); err != nil {
				total = inf()
				break
			}
			var sq float64
			for i, row := 0, 0; i < len(vy); i, row = i+1, row+1 {
				d := m.Predict(vx.Row(i)) - vy[i]
				sq += d * d
			}
			total += sq / float64(len(vy))
		}
		if total < bestScore {
			bestScore = total
			best = p
		}
	}
	return best, bestScore / float64(len(folds))
}

func inf() float64 { return 1e308 }

func expandGrid(grid map[string][]float64) []GridPoint {
	keys := make([]string, 0, len(grid))
	for k := range grid {
		keys = append(keys, k)
	}
	// Deterministic order: insertion order is unavailable for maps, so sort.
	sort.Strings(keys)
	points := []GridPoint{{}}
	for _, key := range keys {
		vals := grid[key]
		next := make([]GridPoint, 0, len(points)*len(vals))
		for _, p := range points {
			for _, v := range vals {
				np := GridPoint{}
				for k2, v2 := range p {
					np[k2] = v2
				}
				np[key] = v
				next = append(next, np)
			}
		}
		points = next
	}
	return points
}
