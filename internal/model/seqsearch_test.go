package model

import (
	"fmt"
	"math/rand"
	"testing"
)

// constSeq predicts a constant per step; "level" is its hyperparameter.
type constSeq struct{ level float64 }

func (c *constSeq) FitSeq([][][]float64, [][]float64) error { return nil }
func (c *constSeq) PredictSeq(w [][]float64) []float64 {
	out := make([]float64, len(w))
	for i := range out {
		out[i] = c.level
	}
	return out
}

// failSeq always fails to fit.
type failSeq struct{}

func (f *failSeq) FitSeq([][][]float64, [][]float64) error { return fmt.Errorf("nope") }
func (f *failSeq) PredictSeq(w [][]float64) []float64      { return make([]float64, len(w)) }

func seqFixture(n, T int) (seqs [][][]float64, targets [][]float64) {
	for i := 0; i < n; i++ {
		win := make([][]float64, T)
		lab := make([]float64, T)
		for t := 0; t < T; t++ {
			win[t] = []float64{0}
			lab[t] = 7 // the right "level" is 7
		}
		seqs = append(seqs, win)
		targets = append(targets, lab)
	}
	return seqs, targets
}

func TestGridSearchSeqPicksBest(t *testing.T) {
	seqs, targets := seqFixture(20, 4)
	best, score := GridSearchSeq(
		map[string][]float64{"level": {0, 7, 20}},
		func(p GridPoint) SeqRegressor { return &constSeq{level: p["level"]} },
		seqs, targets, 4, rand.New(rand.NewSource(1)),
	)
	if best["level"] != 7 {
		t.Fatalf("picked level=%g want 7", best["level"])
	}
	if score > 1e-9 {
		t.Fatalf("best score = %g want 0", score)
	}
}

func TestGridSearchSeqSkipsFailingFits(t *testing.T) {
	seqs, targets := seqFixture(12, 3)
	grid := map[string][]float64{"which": {0, 1}}
	best, _ := GridSearchSeq(grid,
		func(p GridPoint) SeqRegressor {
			if p["which"] == 0 {
				return &failSeq{}
			}
			return &constSeq{level: 7}
		},
		seqs, targets, 3, rand.New(rand.NewSource(2)),
	)
	if best["which"] != 1 {
		t.Fatalf("failing candidate won: %v", best)
	}
}
