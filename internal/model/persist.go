package model

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Envelope is the on-disk representation of a persisted model: a kind tag
// naming the registered decoder plus the model's own JSON state.
type Envelope struct {
	Kind  string          `json:"kind"`
	State json.RawMessage `json:"state"`
}

// Persistable is implemented by models that can round-trip through JSON.
type Persistable interface {
	// Kind returns the registry tag, e.g. "linmodel.ridge".
	Kind() string
	// MarshalState serialises the trained parameters.
	MarshalState() ([]byte, error)
}

var (
	registryMu sync.RWMutex
	registry   = map[string]func([]byte) (any, error){}
)

// RegisterKind installs a decoder for the given model kind. Packages call
// this from init; duplicate registration panics to surface wiring bugs.
func RegisterKind(kind string, decode func([]byte) (any, error)) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[kind]; dup {
		panic(fmt.Sprintf("model: duplicate kind %q", kind))
	}
	registry[kind] = decode
}

// Save writes the model to path as a JSON envelope.
func Save(path string, p Persistable) error {
	state, err := p.MarshalState()
	if err != nil {
		return fmt.Errorf("model: marshal %s: %w", p.Kind(), err)
	}
	env := Envelope{Kind: p.Kind(), State: state}
	data, err := json.MarshalIndent(env, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads a JSON envelope from path and decodes it with the registered
// decoder for its kind. The caller type-asserts the result.
func Load(path string) (any, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// Decode decodes an in-memory envelope.
func Decode(data []byte) (any, error) {
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("model: bad envelope: %w", err)
	}
	registryMu.RLock()
	dec, ok := registry[env.Kind]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("model: unknown kind %q", env.Kind)
	}
	return dec(env.State)
}

// Encode marshals a Persistable into envelope bytes without touching disk;
// the cluster service ships models this way.
func Encode(p Persistable) ([]byte, error) {
	state, err := p.MarshalState()
	if err != nil {
		return nil, err
	}
	return json.Marshal(Envelope{Kind: p.Kind(), State: state})
}
