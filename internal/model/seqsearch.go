package model

import (
	"math/rand"
)

// GridSearchSeq exhaustively evaluates sequence models over a parameter
// grid with k-fold cross-validation on windows, returning the assignment
// with the lowest mean validation MSE. The paper tunes its GRU/LSTM
// baselines this way ("GridSearch used to tune the hyperparameters in each
// cross-validation", §5.4).
func GridSearchSeq(
	grid map[string][]float64,
	factory func(GridPoint) SeqRegressor,
	seqs [][][]float64, targets [][]float64,
	k int, rng *rand.Rand,
) (GridPoint, float64) {
	points := expandGrid(grid)
	folds := KFold(len(seqs), k, rng)
	bestScore := inf()
	var best GridPoint
	for _, p := range points {
		var total float64
		valid := true
		for _, fold := range folds {
			trainSeqs, trainT := subsetSeqs(seqs, targets, fold[0])
			valSeqs, valT := subsetSeqs(seqs, targets, fold[1])
			m := factory(p)
			if err := m.FitSeq(trainSeqs, trainT); err != nil {
				valid = false
				break
			}
			var sq float64
			var n int
			for i, s := range valSeqs {
				out := m.PredictSeq(s)
				for t := range out {
					d := out[t] - valT[i][t]
					sq += d * d
					n++
				}
			}
			total += sq / float64(n)
		}
		if valid && total < bestScore {
			bestScore = total
			best = p
		}
	}
	return best, bestScore / float64(len(folds))
}

func subsetSeqs(seqs [][][]float64, targets [][]float64, idx []int) ([][][]float64, [][]float64) {
	outS := make([][][]float64, len(idx))
	outT := make([][]float64, len(idx))
	for k, i := range idx {
		outS[k] = seqs[i]
		outT[k] = targets[i]
	}
	return outS, outT
}
