package model

import (
	"encoding/json"
	"path/filepath"
	"testing"
)

// toyModel is a minimal Persistable for registry tests.
type toyModel struct {
	Value float64 `json:"value"`
}

func (m *toyModel) Kind() string                  { return "model.toy" }
func (m *toyModel) MarshalState() ([]byte, error) { return json.Marshal(m) }

func init() {
	RegisterKind("model.toy", func(b []byte) (any, error) {
		m := &toyModel{}
		return m, json.Unmarshal(b, m)
	})
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "toy.json")
	if err := Save(path, &toyModel{Value: 42.5}); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := got.(*toyModel)
	if !ok {
		t.Fatalf("decoded type %T", got)
	}
	if m.Value != 42.5 {
		t.Fatalf("Value = %g want 42.5", m.Value)
	}
}

func TestEncodeDecode(t *testing.T) {
	data, err := Encode(&toyModel{Value: -1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.(*toyModel).Value != -1 {
		t.Fatal("round trip lost the value")
	}
}

func TestDecodeUnknownKind(t *testing.T) {
	if _, err := Decode([]byte(`{"kind":"nope","state":{}}`)); err == nil {
		t.Fatal("expected unknown-kind error")
	}
}

func TestDecodeBadEnvelope(t *testing.T) {
	if _, err := Decode([]byte(`not json`)); err == nil {
		t.Fatal("expected envelope error")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate registration")
		}
	}()
	RegisterKind("model.toy", func(b []byte) (any, error) { return nil, nil })
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("expected error for missing file")
	}
}
