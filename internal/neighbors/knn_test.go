package neighbors

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"highrpm/internal/mat"
	"highrpm/internal/model"
)

func TestKNNExactNeighbors(t *testing.T) {
	// Training points on a line; query at 0.9 with k=3 must average the
	// targets of x = 1, 0 and 2 (distances 0.1, 0.9, 1.1).
	x := mat.FromRows([][]float64{{0}, {1}, {2}, {10}})
	y := []float64{0, 10, 20, 100}
	k := NewKNN(3)
	if err := k.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	want := (0.0 + 10 + 20) / 3
	if got := k.Predict([]float64{0.9}); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Predict = %g want %g", got, want)
	}
}

func TestKNNK1IsNearest(t *testing.T) {
	x := mat.FromRows([][]float64{{0, 0}, {5, 5}, {10, 0}})
	y := []float64{1, 2, 3}
	k := NewKNN(1)
	if err := k.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if got := k.Predict([]float64{9, 1}); got != 3 {
		t.Fatalf("Predict = %g want 3", got)
	}
}

func TestKNNDefaultsToThree(t *testing.T) {
	if NewKNN(0).K != 3 {
		t.Fatal("default k must be 3 (Table 4)")
	}
}

func TestKNNTooFewRows(t *testing.T) {
	if err := NewKNN(3).Fit(mat.NewDense(2, 1), []float64{1, 2}); err == nil {
		t.Fatal("expected error: rows < k")
	}
}

func TestKNNMismatch(t *testing.T) {
	if err := NewKNN(1).Fit(mat.NewDense(3, 1), []float64{1}); err == nil {
		t.Fatal("expected mismatch error")
	}
}

func TestKNNUnfittedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewKNN(1).Predict([]float64{0})
}

// Property: KNN's prediction equals the brute-force sort-based answer.
func TestKNNMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(50)
		kv := 1 + rng.Intn(4)
		x := mat.NewDense(n, 3)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < 3; j++ {
				x.Set(i, j, rng.NormFloat64())
			}
			y[i] = rng.NormFloat64() * 10
		}
		k := NewKNN(kv)
		if err := k.Fit(x, y); err != nil {
			return false
		}
		q := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		got := k.Predict(q)

		type pair struct {
			d float64
			y float64
		}
		pairs := make([]pair, n)
		for i := 0; i < n; i++ {
			pairs[i] = pair{sqDist(x.Row(i), q), y[i]}
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].d < pairs[b].d })
		var want float64
		for i := 0; i < kv; i++ {
			want += pairs[i].y
		}
		want /= float64(kv)
		// Ties in distance can legitimately pick either neighbor.
		tie := kv < len(pairs) && pairs[kv-1].d == pairs[kv].d
		return math.Abs(got-want) < 1e-9 || tie
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestKNNPersistenceRoundTrips(t *testing.T) {
	x := mat.FromRows([][]float64{{0}, {1}, {2}, {3}})
	y := []float64{0, 1, 2, 3}
	k := NewKNN(2)
	if err := k.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	data, err := model.Encode(k)
	if err != nil {
		t.Fatal(err)
	}
	back, err := model.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{1.4}
	if got, want := back.(model.Regressor).Predict(probe), k.Predict(probe); got != want {
		t.Fatalf("round trip: %g vs %g", got, want)
	}
}
