// Package neighbors implements the K-nearest-neighbors regression baseline
// of Table 4 (KNN, #neighbors=3, algo=auto → brute force at this scale).
package neighbors

import (
	"container/heap"
	"encoding/json"
	"fmt"

	"highrpm/internal/mat"
	"highrpm/internal/model"
)

// KNN is a brute-force k-nearest-neighbors regressor over Euclidean
// distance; prediction is the mean target of the k nearest training rows.
type KNN struct {
	K int `json:"k"`
	// Training data is retained verbatim — KNN is a memory-based model.
	X [][]float64 `json:"x"`
	Y []float64   `json:"y"`
}

// NewKNN returns a KNN regressor; k defaults to 3 (the paper's setting)
// when non-positive.
func NewKNN(k int) *KNN {
	if k <= 0 {
		k = 3
	}
	return &KNN{K: k}
}

// Fit stores the training set.
func (k *KNN) Fit(x *mat.Dense, y []float64) error {
	r, _ := x.Dims()
	if r != len(y) {
		return fmt.Errorf("neighbors: %d rows vs %d targets", r, len(y))
	}
	if r < k.K {
		return fmt.Errorf("neighbors: %d rows < k=%d", r, k.K)
	}
	k.X = make([][]float64, r)
	for i := range k.X {
		k.X[i] = append([]float64(nil), x.Row(i)...)
	}
	k.Y = append([]float64(nil), y...)
	return nil
}

// neighborHeap is a max-heap over (distance, index) keeping the k smallest.
type neighborHeap []neighbor

type neighbor struct {
	dist float64
	idx  int
}

func (h neighborHeap) Len() int           { return len(h) }
func (h neighborHeap) Less(i, j int) bool { return h[i].dist > h[j].dist } // max-heap
func (h neighborHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *neighborHeap) Push(x any)        { *h = append(*h, x.(neighbor)) }
func (h *neighborHeap) Pop() (out any) {
	old := *h
	n := len(old)
	out = old[n-1]
	*h = old[:n-1]
	return
}

// Predict returns the mean target over the K nearest stored rows.
func (k *KNN) Predict(features []float64) float64 {
	if len(k.X) == 0 {
		panic("neighbors: model is not fitted")
	}
	h := make(neighborHeap, 0, k.K+1)
	for i, row := range k.X {
		d := sqDist(row, features)
		if len(h) < k.K {
			heap.Push(&h, neighbor{d, i})
		} else if d < h[0].dist {
			h[0] = neighbor{d, i}
			heap.Fix(&h, 0)
		}
	}
	var s float64
	for _, nb := range h {
		s += k.Y[nb.idx]
	}
	return s / float64(len(h))
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i, av := range a {
		d := av - b[i]
		s += d * d
	}
	return s
}

// Kind implements model.Persistable.
func (k *KNN) Kind() string { return "neighbors.knn" }

// MarshalState implements model.Persistable.
func (k *KNN) MarshalState() ([]byte, error) { return json.Marshal(k) }

func init() {
	model.RegisterKind("neighbors.knn", func(b []byte) (any, error) {
		m := &KNN{}
		return m, json.Unmarshal(b, m)
	})
}

var _ model.Regressor = (*KNN)(nil)
