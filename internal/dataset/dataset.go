// Package dataset turns platform traces into the sample matrices the models
// consume, following the paper's methodology (§5.3): 1 Sa/s samples of PMC
// features with node/CPU/memory power labels, the seven seen/unseen
// train-test combinations of Table 3, and the sliding-window construction
// DynamicTRR trains on (§4.2.2, Fig. 4).
package dataset

import (
	"fmt"
	"math/rand"

	"highrpm/internal/mat"
	"highrpm/internal/platform"
	"highrpm/internal/pmu"
	"highrpm/internal/workload"
)

// Sample is one 1 Sa/s observation.
type Sample struct {
	Time  float64
	PMC   []float64 // the ten Table 2 event rates
	PNode float64   // ground-truth node power (direct probe / IPMI when measured)
	PCPU  float64   // ground-truth CPU power (direct probe)
	PMEM  float64   // ground-truth memory power (direct probe)
}

// Set is an ordered collection of samples from one or more programs.
type Set struct {
	Samples []Sample
	// Suites tags, per sample, the suite the sample came from.
	Suites []string
	// Benchmarks tags, per sample, the program the sample came from.
	Benchmarks []string
}

// Len returns the number of samples.
func (s *Set) Len() int { return len(s.Samples) }

// Append adds all samples of other, keeping order. Timestamps are rebased
// so the combined set stays strictly increasing in time (traces all start
// at t = 0; a concatenated log must not repeat timestamps or the spline
// knots collide).
func (s *Set) Append(other *Set) {
	var offset float64
	if len(s.Samples) > 0 && len(other.Samples) > 0 {
		offset = s.Samples[len(s.Samples)-1].Time + 1 - other.Samples[0].Time
	}
	for _, sm := range other.Samples {
		sm.Time += offset
		s.Samples = append(s.Samples, sm)
	}
	s.Suites = append(s.Suites, other.Suites...)
	s.Benchmarks = append(s.Benchmarks, other.Benchmarks...)
}

// Slice returns the subset [lo, hi) as a view-backed copy of headers.
func (s *Set) Slice(lo, hi int) *Set {
	return &Set{
		Samples:    s.Samples[lo:hi],
		Suites:     s.Suites[lo:hi],
		Benchmarks: s.Benchmarks[lo:hi],
	}
}

// FromTrace converts a trace into 1 Sa/s samples with direct-probe power
// labels (probe noise applied by the caller's probe if desired; here the
// ground truth is used directly and a probe can be layered on top).
func FromTrace(tr *platform.Trace, suite, bench string) *Set {
	step := int(1 / tr.Dt)
	if step < 1 {
		step = 1
	}
	out := &Set{}
	for i := 0; i < len(tr.Samples); i += step {
		sm := tr.Samples[i]
		out.Samples = append(out.Samples, Sample{
			Time:  sm.Time,
			PMC:   sm.Counters.Slice(),
			PNode: sm.PNode,
			PCPU:  sm.PCPU,
			PMEM:  sm.PMEM,
		})
		out.Suites = append(out.Suites, suite)
		out.Benchmarks = append(out.Benchmarks, bench)
	}
	return out
}

// FeatureNames returns the PMC feature names in column order.
func FeatureNames() []string { return pmu.EventNames() }

// PMCMatrix assembles the PMC feature matrix (one row per sample).
func (s *Set) PMCMatrix() *mat.Dense {
	x := mat.NewDense(len(s.Samples), pmu.NumEvents)
	for i, sm := range s.Samples {
		copy(x.Row(i), sm.PMC)
	}
	return x
}

// PMCWithNode assembles features [PMC..., PNode] — the SRR input layout
// (§4.3: the input layer is P_Node from the TRR model plus the PMCs).
// nodePower supplies the node-power feature per row (measured or restored).
func (s *Set) PMCWithNode(nodePower []float64) *mat.Dense {
	if len(nodePower) != len(s.Samples) {
		panic(fmt.Sprintf("dataset: %d node-power values for %d samples", len(nodePower), len(s.Samples)))
	}
	x := mat.NewDense(len(s.Samples), pmu.NumEvents+1)
	for i, sm := range s.Samples {
		row := x.Row(i)
		copy(row, sm.PMC)
		row[pmu.NumEvents] = nodePower[i]
	}
	return x
}

// NodePower returns the node-power label vector.
func (s *Set) NodePower() []float64 {
	out := make([]float64, len(s.Samples))
	for i, sm := range s.Samples {
		out[i] = sm.PNode
	}
	return out
}

// CPUPower returns the CPU-power label vector.
func (s *Set) CPUPower() []float64 {
	out := make([]float64, len(s.Samples))
	for i, sm := range s.Samples {
		out[i] = sm.PCPU
	}
	return out
}

// MemPower returns the memory-power label vector.
func (s *Set) MemPower() []float64 {
	out := make([]float64, len(s.Samples))
	for i, sm := range s.Samples {
		out[i] = sm.PMEM
	}
	return out
}

// Times returns the sample timestamps.
func (s *Set) Times() []float64 {
	out := make([]float64, len(s.Samples))
	for i, sm := range s.Samples {
		out[i] = sm.Time
	}
	return out
}

// MeasuredIndices returns the sample indices at which an integrated
// measurement is available given the miss interval in samples (e.g. 10 for
// a 10 s miss_interval at 1 Sa/s). Index 0 is always measured.
func (s *Set) MeasuredIndices(missInterval int) []int {
	if missInterval < 1 {
		missInterval = 1
	}
	var idx []int
	for i := 0; i < len(s.Samples); i += missInterval {
		idx = append(idx, i)
	}
	return idx
}

// GenerateConfig controls trace collection for the evaluation datasets.
type GenerateConfig struct {
	// Platform is the node model (defaults to platform.ARMConfig()).
	Platform platform.Config
	// SamplesPerSuite is the number of 1 Sa/s samples collected per suite
	// (the paper compiles 1000 per set).
	SamplesPerSuite int
	// Seed drives all simulation noise.
	Seed int64
	// Frequency pins the DVFS level in GHz (0 = maximum).
	Frequency float64
}

// DefaultGenerateConfig mirrors §5.3 with the paper's 1000 samples/suite.
func DefaultGenerateConfig() GenerateConfig {
	return GenerateConfig{Platform: platform.ARMConfig(), SamplesPerSuite: 1000, Seed: 1}
}

// GenerateSuite simulates every member of the named suite, collecting an
// equal share of SamplesPerSuite samples across members ("we compile 1000
// samples from each set in order").
func GenerateSuite(cfg GenerateConfig, suite string) (*Set, error) {
	members := workload.BySuite()[suite]
	if len(members) == 0 {
		return nil, fmt.Errorf("dataset: unknown suite %q", suite)
	}
	if cfg.SamplesPerSuite <= 0 {
		cfg.SamplesPerSuite = 1000
	}
	if cfg.Platform.Name == "" {
		cfg.Platform = platform.ARMConfig()
	}
	// Every program runs for at least a minute (§5.3: "every benchmark
	// operates for 60 seconds to an hour") so the spline always sees
	// several IM readings per program; members are taken in order until
	// the suite's sample budget is filled, cycling if necessary.
	per := cfg.SamplesPerSuite / len(members)
	if per < 60 {
		per = 60
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(len(suite))*7919))
	out := &Set{}
	for i := 0; out.Len() < cfg.SamplesPerSuite; i++ {
		b := members[i%len(members)]
		node, err := platform.NewNode(cfg.Platform, rng.Int63())
		if err != nil {
			return nil, err
		}
		if cfg.Frequency > 0 {
			if err := node.SetFrequency(cfg.Frequency); err != nil {
				return nil, err
			}
		}
		dur := per
		if remaining := cfg.SamplesPerSuite - out.Len(); dur > remaining {
			dur = remaining
		}
		tr := node.RunFor(b, float64(dur), 1)
		out.Append(FromTrace(tr, suite, b.Name))
	}
	return out.Slice(0, cfg.SamplesPerSuite), nil
}

// Combo is one Table 3 train/test combination.
type Combo struct {
	// TestSuite is the held-out suite.
	TestSuite string
	// TrainSuites are the remaining six suites.
	TrainSuites []string
}

// Combos returns the seven Table 3 combinations, one per held-out suite.
func Combos() []Combo {
	suites := workload.SuiteNames()
	out := make([]Combo, 0, len(suites))
	for _, test := range suites {
		var train []string
		for _, s := range suites {
			if s != test {
				train = append(train, s)
			}
		}
		out = append(out, Combo{TestSuite: test, TrainSuites: train})
	}
	return out
}

// Split is a materialised train/test dataset pair.
type Split struct {
	Train *Set
	Test  *Set
	// Seen reports whether samples of the target program family appear in
	// the training set (§5.3's two construction methods).
	Seen bool
	// Combo records which Table 3 row produced the split.
	Combo Combo
}

// BuildSplit materialises one combination. For unseen splits the training
// set is the six training suites (6×SamplesPerSuite) and the test set the
// held-out suite. For seen splits the six training suites contribute in
// full and the target suite is cut 30/70 into train/test, matching the
// paper's 6300-sample training and 700-sample test sets at 1000 samples
// per suite (§5.3).
func BuildSplit(cfg GenerateConfig, combo Combo, seen bool) (*Split, error) {
	persuite := map[string]*Set{}
	for _, s := range append(append([]string{}, combo.TrainSuites...), combo.TestSuite) {
		set, err := GenerateSuite(cfg, s)
		if err != nil {
			return nil, err
		}
		persuite[s] = set
	}
	sp := &Split{Seen: seen, Combo: combo, Train: &Set{}, Test: &Set{}}
	if !seen {
		for _, s := range combo.TrainSuites {
			sp.Train.Append(persuite[s])
		}
		sp.Test = persuite[combo.TestSuite]
		return sp, nil
	}
	for _, s := range workload.SuiteNames() {
		set, ok := persuite[s]
		if !ok {
			continue
		}
		cut := set.Len() * 3 / 10
		if s == combo.TestSuite {
			sp.Train.Append(set.Slice(0, cut))
			sp.Test.Append(set.Slice(cut, set.Len()))
		} else {
			sp.Train.Append(set)
		}
	}
	return sp, nil
}

// Window is one DynamicTRR training sample s′: miss_interval consecutive
// steps of features with the per-step node power as labels (Fig. 4).
type Window struct {
	Features [][]float64 // miss_interval × (m+1): PMCs plus previous node power
	Labels   []float64   // miss_interval true node-power values
}

// BuildWindows constructs the sliding-window dataset D_DynamicTRR from an
// ordered set. Each step's feature vector is its PMCs plus P′_Node at the
// previous moment (§4.2.2); prevNode supplies that series — typically the
// StaticTRR/spline estimate, falling back to the true series for offline
// training. The stride is 1, yielding n−miss_interval+1 windows.
func BuildWindows(s *Set, prevNode []float64, missInterval int) []Window {
	if missInterval < 2 {
		missInterval = 2
	}
	if len(prevNode) != s.Len() {
		panic(fmt.Sprintf("dataset: %d prevNode values for %d samples", len(prevNode), s.Len()))
	}
	n := s.Len()
	if n < missInterval {
		return nil
	}
	windows := make([]Window, 0, n-missInterval+1)
	for start := 0; start+missInterval <= n; start++ {
		w := Window{
			Features: make([][]float64, missInterval),
			Labels:   make([]float64, missInterval),
		}
		for j := 0; j < missInterval; j++ {
			i := start + j
			f := make([]float64, pmu.NumEvents+1)
			copy(f, s.Samples[i].PMC)
			if i > 0 {
				f[pmu.NumEvents] = prevNode[i-1]
			} else {
				f[pmu.NumEvents] = prevNode[0]
			}
			w.Features[j] = f
			w.Labels[j] = s.Samples[i].PNode
		}
		windows = append(windows, w)
	}
	return windows
}

// WindowsToSeqs converts windows into the neural package's FitSeq inputs.
func WindowsToSeqs(ws []Window) (seqs [][][]float64, targets [][]float64) {
	for _, w := range ws {
		seqs = append(seqs, w.Features)
		targets = append(targets, w.Labels)
	}
	return seqs, targets
}

// SubsampleWindows keeps at most n windows, evenly spaced, to bound RNN
// training cost on the single-core evaluation machine.
func SubsampleWindows(ws []Window, n int) []Window {
	if n <= 0 || len(ws) <= n {
		return ws
	}
	out := make([]Window, 0, n)
	stride := float64(len(ws)) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, ws[int(float64(i)*stride)])
	}
	return out
}
