package dataset

import (
	"math"
	"testing"
	"testing/quick"

	"highrpm/internal/platform"
	"highrpm/internal/pmu"
	"highrpm/internal/workload"
)

func smallSet(t *testing.T, n int, seed int64) *Set {
	t.Helper()
	node, err := platform.NewNode(platform.ARMConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.Find("HPCC/FFT")
	if err != nil {
		t.Fatal(err)
	}
	tr := node.RunFor(b, float64(n), 1)
	return FromTrace(tr, "HPCC", "FFT")
}

func TestFromTraceShape(t *testing.T) {
	s := smallSet(t, 50, 1)
	if s.Len() != 50 {
		t.Fatalf("Len = %d want 50", s.Len())
	}
	for i, sm := range s.Samples {
		if len(sm.PMC) != pmu.NumEvents {
			t.Fatalf("sample %d has %d PMCs", i, len(sm.PMC))
		}
		if sm.PNode <= 0 || sm.PCPU <= 0 || sm.PMEM <= 0 {
			t.Fatalf("sample %d has non-positive power", i)
		}
	}
	if s.Suites[0] != "HPCC" || s.Benchmarks[0] != "FFT" {
		t.Fatal("tags wrong")
	}
}

func TestAppendRebasesTime(t *testing.T) {
	a := smallSet(t, 20, 2)
	b := smallSet(t, 20, 3)
	a.Append(b)
	if a.Len() != 40 {
		t.Fatalf("Len = %d", a.Len())
	}
	times := a.Times()
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Fatalf("times not strictly increasing at %d: %g then %g", i, times[i-1], times[i])
		}
	}
}

func TestAppendDoesNotMutateSource(t *testing.T) {
	a := smallSet(t, 10, 4)
	b := smallSet(t, 10, 5)
	before := b.Samples[0].Time
	a.Append(b)
	if b.Samples[0].Time != before {
		t.Fatal("Append mutated its argument")
	}
}

func TestMatrixHelpers(t *testing.T) {
	s := smallSet(t, 30, 6)
	x := s.PMCMatrix()
	r, c := x.Dims()
	if r != 30 || c != pmu.NumEvents {
		t.Fatalf("PMCMatrix dims %dx%d", r, c)
	}
	node := s.NodePower()
	xn := s.PMCWithNode(node)
	_, c2 := xn.Dims()
	if c2 != pmu.NumEvents+1 {
		t.Fatalf("PMCWithNode cols = %d", c2)
	}
	if xn.At(5, pmu.NumEvents) != node[5] {
		t.Fatal("node feature misplaced")
	}
	if len(s.CPUPower()) != 30 || len(s.MemPower()) != 30 {
		t.Fatal("label lengths wrong")
	}
}

func TestPMCWithNodePanicsOnMismatch(t *testing.T) {
	s := smallSet(t, 10, 7)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.PMCWithNode([]float64{1})
}

func TestMeasuredIndices(t *testing.T) {
	s := smallSet(t, 35, 8)
	idx := s.MeasuredIndices(10)
	if len(idx) != 4 || idx[0] != 0 || idx[3] != 30 {
		t.Fatalf("MeasuredIndices = %v", idx)
	}
	if got := s.MeasuredIndices(0); len(got) != 35 {
		t.Fatal("interval 0 must clamp to every sample")
	}
}

func TestCombosCoverAllSuites(t *testing.T) {
	combos := Combos()
	if len(combos) != 7 {
		t.Fatalf("Table 3 has 7 combinations, got %d", len(combos))
	}
	seen := map[string]bool{}
	for _, c := range combos {
		if seen[c.TestSuite] {
			t.Fatalf("suite %s held out twice", c.TestSuite)
		}
		seen[c.TestSuite] = true
		if len(c.TrainSuites) != 6 {
			t.Fatalf("combo %s trains on %d suites want 6", c.TestSuite, len(c.TrainSuites))
		}
		for _, tr := range c.TrainSuites {
			if tr == c.TestSuite {
				t.Fatalf("combo %s trains on its own test suite", c.TestSuite)
			}
		}
	}
}

func TestGenerateSuiteBudget(t *testing.T) {
	cfg := DefaultGenerateConfig()
	cfg.SamplesPerSuite = 150
	s, err := GenerateSuite(cfg, workload.SuiteHPCC)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 150 {
		t.Fatalf("Len = %d want 150", s.Len())
	}
	// Every program segment must run ≥ 60 s (§5.3) except a trailing stub.
	runs := map[string]int{}
	for _, b := range s.Benchmarks {
		runs[b]++
	}
	if len(runs) < 2 {
		t.Fatal("suite generation used only one member")
	}
}

func TestGenerateSuiteUnknown(t *testing.T) {
	if _, err := GenerateSuite(DefaultGenerateConfig(), "NOPE"); err == nil {
		t.Fatal("expected error")
	}
}

func TestGenerateSuiteDeterministic(t *testing.T) {
	cfg := DefaultGenerateConfig()
	cfg.SamplesPerSuite = 120
	a, err := GenerateSuite(cfg, workload.SuiteGraph500)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSuite(cfg, workload.SuiteGraph500)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Samples {
		if a.Samples[i].PNode != b.Samples[i].PNode {
			t.Fatalf("non-deterministic generation at sample %d", i)
		}
	}
}

func TestBuildSplitUnseenExcludesTestSuite(t *testing.T) {
	cfg := DefaultGenerateConfig()
	cfg.SamplesPerSuite = 120
	combo := Combos()[0]
	sp, err := BuildSplit(cfg, combo, false)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Train.Len() != 6*120 {
		t.Fatalf("unseen train = %d want %d", sp.Train.Len(), 6*120)
	}
	if sp.Test.Len() != 120 {
		t.Fatalf("unseen test = %d want 120", sp.Test.Len())
	}
	for _, s := range sp.Train.Suites {
		if s == combo.TestSuite {
			t.Fatalf("unseen split leaked %s into training", combo.TestSuite)
		}
	}
	for _, s := range sp.Test.Suites {
		if s != combo.TestSuite {
			t.Fatalf("test set contains %s", s)
		}
	}
}

func TestBuildSplitSeenShape(t *testing.T) {
	cfg := DefaultGenerateConfig()
	cfg.SamplesPerSuite = 100
	combo := Combos()[2]
	sp, err := BuildSplit(cfg, combo, true)
	if err != nil {
		t.Fatal(err)
	}
	// 90% of every suite trains (7×90), target suite's 10% tests.
	if sp.Train.Len() != 630 {
		t.Fatalf("seen train = %d want 630", sp.Train.Len())
	}
	if sp.Test.Len() != 70 {
		t.Fatalf("seen test = %d want 70", sp.Test.Len())
	}
	var leaked bool
	for _, s := range sp.Train.Suites {
		if s == combo.TestSuite {
			leaked = true
		}
	}
	if !leaked {
		t.Fatal("seen split must include target-suite samples in training")
	}
}

func TestBuildWindowsShape(t *testing.T) {
	s := smallSet(t, 40, 9)
	prev := s.NodePower()
	ws := BuildWindows(s, prev, 10)
	if len(ws) != 31 {
		t.Fatalf("windows = %d want n-miss+1 = 31", len(ws))
	}
	for _, w := range ws {
		if len(w.Features) != 10 || len(w.Labels) != 10 {
			t.Fatal("window shape wrong")
		}
		for _, f := range w.Features {
			if len(f) != pmu.NumEvents+1 {
				t.Fatalf("feature width %d want %d", len(f), pmu.NumEvents+1)
			}
		}
	}
	// The prev-node feature at step j is prev[i-1].
	w := ws[5] // starts at sample 5
	if w.Features[3][pmu.NumEvents] != prev[5+3-1] {
		t.Fatal("prev-node feature misaligned")
	}
	if w.Labels[0] != s.Samples[5].PNode {
		t.Fatal("labels misaligned")
	}
}

func TestBuildWindowsTooShort(t *testing.T) {
	s := smallSet(t, 5, 10)
	if ws := BuildWindows(s, s.NodePower(), 10); ws != nil {
		t.Fatal("short set must give no windows")
	}
}

func TestSubsampleWindows(t *testing.T) {
	s := smallSet(t, 60, 11)
	ws := BuildWindows(s, s.NodePower(), 10)
	sub := SubsampleWindows(ws, 7)
	if len(sub) != 7 {
		t.Fatalf("subsample = %d want 7", len(sub))
	}
	if got := SubsampleWindows(ws, 0); len(got) != len(ws) {
		t.Fatal("n=0 must keep everything")
	}
	if got := SubsampleWindows(ws, len(ws)+5); len(got) != len(ws) {
		t.Fatal("n>len must keep everything")
	}
}

// Property: WindowsToSeqs preserves alignment for arbitrary window sets.
func TestWindowsToSeqsProperty(t *testing.T) {
	s := smallSet(t, 50, 12)
	ws := BuildWindows(s, s.NodePower(), 5)
	f := func(pick uint8) bool {
		i := int(pick) % len(ws)
		seqs, targets := WindowsToSeqs(ws)
		if len(seqs) != len(ws) || len(targets) != len(ws) {
			return false
		}
		for j := range seqs[i] {
			if &seqs[i][j][0] != &ws[i].Features[j][0] {
				return false // must share backing arrays, not copy
			}
		}
		return math.Abs(targets[i][0]-ws[i].Labels[0]) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSliceViews(t *testing.T) {
	s := smallSet(t, 30, 13)
	sub := s.Slice(10, 20)
	if sub.Len() != 10 {
		t.Fatalf("Slice len = %d", sub.Len())
	}
	if sub.Samples[0].Time != s.Samples[10].Time {
		t.Fatal("Slice offset wrong")
	}
}
