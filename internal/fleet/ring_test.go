package fleet

import (
	"fmt"
	"testing"
)

func mustRing(t testing.TB, shards []Shard, vnodes int) *ring {
	t.Helper()
	r, err := newRing(shards, vnodes)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func shardList(names ...string) []Shard {
	out := make([]Shard, len(names))
	for i, n := range names {
		out[i] = Shard{Name: n, Addr: "addr-" + n}
	}
	return out
}

func TestRingDeterminism(t *testing.T) {
	shards := shardList("alpha", "beta", "gamma")
	a := mustRing(t, shards, 64)
	b := mustRing(t, shards, 64)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("node-%d", i)
		if a.owner(key) != b.owner(key) {
			t.Fatalf("rebuild moved %s: %d vs %d", key, a.owner(key), b.owner(key))
		}
	}
}

func TestRingOrderIndependence(t *testing.T) {
	fwd := mustRing(t, shardList("alpha", "beta", "gamma"), 64)
	rev := mustRing(t, shardList("gamma", "beta", "alpha"), 64)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("node-%d", i)
		a := fwd.points[fwd.successor(key)].name
		b := rev.points[rev.successor(key)].name
		if a != b {
			t.Fatalf("topology order moved %s: %s vs %s", key, a, b)
		}
	}
}

func TestRingRemoveShardMovesOnlyItsKeys(t *testing.T) {
	names := []string{"alpha", "beta", "gamma", "delta"}
	full := mustRing(t, shardList(names...), 64)
	for _, removed := range names {
		var rest []string
		for _, n := range names {
			if n != removed {
				rest = append(rest, n)
			}
		}
		smaller := mustRing(t, shardList(rest...), 64)
		for i := 0; i < 500; i++ {
			key := fmt.Sprintf("node-%d", i)
			before := full.points[full.successor(key)].name
			after := smaller.points[smaller.successor(key)].name
			if before != removed && before != after {
				t.Fatalf("removing %s moved %s from %s to %s", removed, key, before, after)
			}
			if before == removed {
				// The displaced key must land on its first follower — the
				// failover locality replication relies on.
				owners := full.owners(key, 2)
				follower := shardList(names...)[owners[1]].Name
				if after != follower {
					t.Fatalf("removing %s sent %s to %s, expected follower %s", removed, key, after, follower)
				}
			}
		}
	}
}

func TestRingOwners(t *testing.T) {
	r := mustRing(t, shardList("alpha", "beta", "gamma"), 64)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("node-%d", i)
		owners := r.owners(key, 2)
		if len(owners) != 2 || owners[0] == owners[1] {
			t.Fatalf("owners(%s, 2) = %v", key, owners)
		}
		if owners[0] != r.owner(key) {
			t.Fatalf("primary of %s diverges: %v vs %d", key, owners, r.owner(key))
		}
		all := r.owners(key, 99)
		if len(all) != 3 {
			t.Fatalf("owners clamped wrong: %v", all)
		}
		one := r.owners(key, 0)
		if len(one) != 1 || one[0] != r.owner(key) {
			t.Fatalf("owners(%s, 0) = %v", key, one)
		}
	}
}

func TestRingSpread(t *testing.T) {
	r := mustRing(t, shardList("alpha", "beta", "gamma", "delta"), DefaultVirtualNodes)
	counts := make([]int, 4)
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.owner(fmt.Sprintf("node-%d", i))]++
	}
	for i, c := range counts {
		if c < keys/4/2 || c > keys/4*2 {
			t.Fatalf("shard %d owns %d of %d keys — distribution badly skewed: %v", i, c, keys, counts)
		}
	}
}

// FuzzRingPlacement fuzzes the three placement invariants routing depends
// on: rebuild determinism, topology-order independence, and remove-a-shard
// moving only that shard's keys (each displaced key landing on its first
// follower).
func FuzzRingPlacement(f *testing.F) {
	f.Add([]byte("abc"), "node-1", byte(8))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, "compute-17.rack2", byte(64))
	f.Add([]byte("z"), "", byte(1))
	f.Add([]byte("\xff\xfe\x00duplicated\x00"), "node\x00weird", byte(255))
	f.Fuzz(func(t *testing.T, raw []byte, key string, vb byte) {
		// Derive up to 8 distinct shard names from the raw bytes.
		seen := map[string]bool{}
		var names []string
		for _, b := range raw {
			n := fmt.Sprintf("shard-%02x", b%32)
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
			if len(names) == 8 {
				break
			}
		}
		if len(names) == 0 {
			names = []string{"shard-solo"}
		}
		vnodes := int(vb%64) + 1

		a := mustRing(t, shardList(names...), vnodes)
		b := mustRing(t, shardList(names...), vnodes)
		if an, bn := a.points[a.successor(key)].name, b.points[b.successor(key)].name; an != bn {
			t.Fatalf("rebuild moved %q: %s vs %s", key, an, bn)
		}

		// Reversed topology input: same owner names for the key and for a
		// family of derived keys.
		rev := make([]string, len(names))
		for i, n := range names {
			rev[len(names)-1-i] = n
		}
		c := mustRing(t, shardList(rev...), vnodes)
		for i := 0; i < 16; i++ {
			k := fmt.Sprintf("%s#%d", key, i)
			if an, cn := a.points[a.successor(k)].name, c.points[c.successor(k)].name; an != cn {
				t.Fatalf("topology order moved %q: %s vs %s", k, an, cn)
			}
		}

		if len(names) < 2 {
			return
		}
		// Remove the key's owner: the key lands on its first follower.
		// Remove any other shard: the key does not move.
		ownerName := a.points[a.successor(key)].name
		followerIdx := a.owners(key, 2)[1]
		followerName := names[followerIdx]
		for _, removed := range names {
			var rest []string
			for _, n := range names {
				if n != removed {
					rest = append(rest, n)
				}
			}
			d := mustRing(t, shardList(rest...), vnodes)
			got := d.points[d.successor(key)].name
			if removed == ownerName {
				if got != followerName {
					t.Fatalf("removing owner %s sent %q to %s, expected follower %s", removed, key, got, followerName)
				}
			} else if got != ownerName {
				t.Fatalf("removing %s moved %q from %s to %s", removed, key, ownerName, got)
			}
		}
	})
}
