package fleet

import (
	"fmt"
	"testing"
	"time"

	"highrpm/internal/cluster"
	"highrpm/internal/cluster/faultnet"
)

// faultAgentOptions are tight enough that a faulted shard is detected,
// degraded, probed, and replayed within a test's patience.
func faultAgentOptions() cluster.AgentOptions {
	return cluster.AgentOptions{
		DialTimeout:    300 * time.Millisecond,
		RequestTimeout: 250 * time.Millisecond,
		BackoffMin:     50 * time.Millisecond,
		BackoffMax:     250 * time.Millisecond,
		SendRetries:    1,
		FailThreshold:  1,
		BufferLimit:    4096,
	}
}

// faultFixture is a 2-shard replicated fleet whose backend links run
// through faultnet proxies, plus a reference single service fed the same
// stream.
type faultFixture struct {
	r        *Router
	backends []*cluster.Service
	proxies  []*faultnet.Proxy
	ref      *cluster.Service
}

func startFaultFleet(t *testing.T) *faultFixture {
	t.Helper()
	f := &faultFixture{ref: startBackend(t)}
	top := Topology{}
	for i := 0; i < 2; i++ {
		be := startBackend(t)
		p := faultnet.New(be.Addr())
		if err := p.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		f.backends = append(f.backends, be)
		f.proxies = append(f.proxies, p)
		top.Shards = append(top.Shards, Shard{Name: fmt.Sprintf("shard-%d", i), Addr: p.Addr()})
	}
	opts := DefaultTopologyOptions()
	opts.Replication = 2
	opts.Agent = faultAgentOptions()
	r, err := NewRouter(top, opts)
	if err != nil {
		t.Fatal(err)
	}
	r.Logf = t.Logf
	if err := r.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	f.r = r
	return f
}

// runFaultScenario streams replicated (R=2) traffic for two nodes through
// the fleet, injects fault(shard) mid-ingest, heals with heal(), keeps
// streaming until the router drains its replay buffers, and asserts zero
// sample loss: every backend's store and the fleet's answers stay
// byte-identical to the reference service. Faults are injected between
// samples — the at-least-once replay cannot duplicate a frame that was
// never in flight — which is exactly the boundary a paused or partitioned
// shard presents in production.
func runFaultScenario(t *testing.T, fault func(f *faultFixture, shard int), heal func(f *faultFixture, shard int)) {
	checkNoLeaks(t)
	f := startFaultFleet(t)

	nodes := balancedNodes(t, f.r, 1) // one node owned by each shard
	const seconds = 40
	const faultAt, healAt = 10, 25
	const faultShard = 0

	type stream struct {
		samples []cluster.Sample
		fa, ra  *cluster.Agent
	}
	streams := make([]*stream, len(nodes))
	for ni, node := range nodes {
		fa, err := cluster.Dial(f.r.Addr(), node)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { fa.Close() })
		ra, err := cluster.Dial(f.ref.Addr(), node)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ra.Close() })
		streams[ni] = &stream{samples: genSamples(t, int64(500+ni), seconds+600), fa: fa, ra: ra}
	}

	sendSecond := func(i int) {
		t.Helper()
		for ni, s := range streams {
			smp := s.samples[i]
			fest, err := s.fa.Send(smp.Time, smp.PMC, smp.Measured)
			if err != nil {
				t.Fatalf("fleet send %s[%d]: %v", nodes[ni], i, err)
			}
			rest, err := s.ra.Send(smp.Time, smp.PMC, smp.Measured)
			if err != nil {
				t.Fatalf("ref send %s[%d]: %v", nodes[ni], i, err)
			}
			// The front-end keeps receiving service-grade estimates through
			// the outage: the live replica answers when the primary is down.
			if !sameEstimate(fest, rest) {
				t.Fatalf("estimate %s[%d]: fleet %+v, ref %+v", nodes[ni], i, fest, rest)
			}
		}
	}

	for i := 0; i < seconds; i++ {
		switch i {
		case faultAt:
			t.Logf("fault: injecting on shard %d at second %d", faultShard, i)
			fault(f, faultShard)
		case healAt:
			t.Logf("fault: healing shard %d at second %d", faultShard, i)
			heal(f, faultShard)
		}
		sendSecond(i)
	}
	t.Logf("fault: main stream done, stats %+v", f.r.Stats())

	// Queries during the tail of the outage-recovery window still merge
	// correctly: reads drain to live replicas.
	fq, err := cluster.Dial(f.r.Addr(), "query-client")
	if err != nil {
		t.Fatal(err)
	}
	defer fq.Close()
	rq, err := cluster.Dial(f.ref.Addr(), "query-client")
	if err != nil {
		t.Fatal(err)
	}
	defer rq.Close()
	agg := cluster.QueryRequest{Channel: "p_node", From: 0, To: seconds - 1, ResolutionS: 1}
	fb, err := fq.Query(agg)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := rq.Query(agg)
	if err != nil {
		t.Fatal(err)
	}
	if fj, rj := mustJSON(t, fb), mustJSON(t, rb); fj != rj {
		t.Fatalf("post-fault aggregate diverges:\nfleet %s\nref   %s", fj, rj)
	}

	// Keep streaming until the degraded replicas replay their buffers —
	// replay rides the probe schedule, which only advances while samples
	// flow. Every extra second also goes to the reference so the stores
	// stay comparable.
	deadline := time.Now().Add(30 * time.Second)
	extra := seconds
	for {
		st := f.r.Stats()
		pending, degraded := 0, 0
		for _, sh := range st.Shards {
			pending += sh.Pending
			degraded += sh.Degraded
		}
		if pending == 0 && degraded == 0 {
			t.Logf("fault: drained after %d extra seconds", extra-seconds)
			break
		}
		if (extra-seconds)%50 == 0 {
			t.Logf("fault: draining, extra=%d pending=%d degraded=%d", extra-seconds, pending, degraded)
		}
		if time.Now().After(deadline) {
			t.Fatalf("replay never drained: %+v", st)
		}
		if extra >= seconds+600 {
			t.Fatalf("replay not drained after %d extra seconds: %+v", extra-seconds, st)
		}
		sendSecond(extra)
		extra++
		time.Sleep(10 * time.Millisecond)
	}
	total := extra

	if st := f.r.Stats(); st.FailedOver == 0 {
		t.Fatalf("no failovers counted through the outage: %+v", st)
	}

	// Zero loss: each backend's store independently holds every node's
	// complete series, byte-identical to the reference, and the fleet's
	// merged answers match.
	for _, node := range nodes {
		nq := cluster.QueryRequest{NodeID: node, Channel: "p_node", From: 0, To: float64(total - 1), ResolutionS: 1}
		want, err := rq.Query(nq)
		if err != nil {
			t.Fatal(err)
		}
		if len(want.Points) != total {
			t.Fatalf("reference has %d points for %s, want %d", len(want.Points), node, total)
		}
		for bi, be := range f.backends {
			ba, err := cluster.Dial(be.Addr(), "verify-client")
			if err != nil {
				t.Fatal(err)
			}
			got, err := ba.Query(nq)
			ba.Close()
			if err != nil {
				t.Fatalf("backend %d query %s: %v", bi, node, err)
			}
			if gj, wj := mustJSON(t, got), mustJSON(t, want); gj != wj {
				t.Fatalf("backend %d lost samples for %s:\ngot  %s\nwant %s", bi, node, gj, wj)
			}
		}
		gotFleet, err := fq.Query(nq)
		if err != nil {
			t.Fatal(err)
		}
		if gj, wj := mustJSON(t, gotFleet), mustJSON(t, want); gj != wj {
			t.Fatalf("fleet series for %s diverges:\ngot  %s\nwant %s", node, gj, wj)
		}
	}
	agg = cluster.QueryRequest{Channel: "p_node", From: 0, To: float64(total - 1), ResolutionS: 1}
	fb, err = fq.Query(agg)
	if err != nil {
		t.Fatal(err)
	}
	rb, err = rq.Query(agg)
	if err != nil {
		t.Fatal(err)
	}
	if fj, rj := mustJSON(t, fb), mustJSON(t, rb); fj != rj {
		t.Fatalf("final aggregate diverges:\nfleet %s\nref   %s", fj, rj)
	}
}

// TestFleetSurvivesShardKill kills one shard's network mid-ingest (the
// proxy closes its listener and every connection) and rejoins it on the
// same address 15 seconds of traffic later.
func TestFleetSurvivesShardKill(t *testing.T) {
	var killedAddr string
	runFaultScenario(t,
		func(f *faultFixture, shard int) {
			killedAddr = f.proxies[shard].Addr()
			f.proxies[shard].Close()
		},
		func(f *faultFixture, shard int) {
			p := faultnet.New(f.backends[shard].Addr())
			var err error
			for attempt := 0; attempt < 100; attempt++ {
				if err = p.Listen(killedAddr); err == nil {
					break
				}
				time.Sleep(20 * time.Millisecond)
			}
			if err != nil {
				t.Fatalf("rebind %s: %v", killedAddr, err)
			}
			f.proxies[shard] = p
			t.Cleanup(func() { p.Close() })
		})
}

// TestFleetSurvivesShardBlackhole partitions one shard mid-ingest — the
// proxy keeps accepting but silently drops every byte, the failure only
// deadlines can detect — and lifts the partition 15 seconds later.
func TestFleetSurvivesShardBlackhole(t *testing.T) {
	runFaultScenario(t,
		func(f *faultFixture, shard int) { f.proxies[shard].BlackholeAll() },
		func(f *faultFixture, shard int) { f.proxies[shard].Restore() })
}
