package fleet

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"highrpm/internal/cluster"
	"highrpm/internal/obs"
)

// Router fronts N cluster.Service backends behind one listener speaking
// the ordinary cluster wire protocol (JSON framing; the binary codec is
// negotiated per backend hop by the pooled agents, and a binary-capable
// front-end agent falls back to JSON gracefully). See the package comment
// for the routing, replication, and federation semantics.
type Router struct {
	top    Topology
	opts   TopologyOptions
	ring   *ring
	shards []*shardState

	ln     net.Listener
	mu     sync.Mutex
	conns  map[net.Conn]string // conn -> node ID ("" before Hello)
	peak   int
	closed bool
	wg     sync.WaitGroup

	// nmu guards routes, the per-node forwarding registry. The registry is
	// also the scatter-gather working set: a node joins it the first time
	// an estimate is produced for it.
	nmu    sync.Mutex
	routes map[string]*nodeRoute

	frames      atomic.Int64
	timedOut    atomic.Int64
	routed      atomic.Int64
	replicated  atomic.Int64
	failedOver  atomic.Int64
	routeErrors atomic.Int64
	scatters    atomic.Int64

	// scatterHist, when set (RegisterMetrics), observes each
	// scatter-gather's wall-clock latency.
	scatterHist atomic.Pointer[obs.Histogram]

	// Logf sinks router logs (defaults to log.Printf).
	Logf func(format string, args ...any)
}

// shardState is the router's view of one backend: the health bit the
// drain/failover decisions read, and the shard's pooled query connection.
// Per-node forwarding connections live on the nodeRoutes instead.
type shardState struct {
	shard Shard
	up    atomic.Bool

	qmu      sync.Mutex
	query    *cluster.ResilientAgent // lazily dialed; serves queries, stats, model
	nextDial time.Time
}

// nodeRoute is one node's forwarding state: the owning shards (primary
// first) and one pooled ResilientAgent per owner. mu serializes the
// node's whole ingest path — that is what preserves per-node sample order
// across retries, degraded buffering, and replay — while distinct nodes
// forward in parallel.
type nodeRoute struct {
	mu       sync.Mutex
	owners   []int
	agents   []*cluster.ResilientAgent
	nextDial []time.Time
	recorded atomic.Bool // an estimate was produced: the node exists for scatter-gather
}

// NewRouter validates the topology, builds the ring, and returns a router
// ready to Listen. Option zero values take the documented defaults.
func NewRouter(top Topology, opts TopologyOptions) (*Router, error) {
	if opts.VirtualNodes <= 0 {
		opts.VirtualNodes = DefaultVirtualNodes
	}
	rg, err := newRing(top.Shards, opts.VirtualNodes)
	if err != nil {
		return nil, err
	}
	if opts.Replication < 1 {
		opts.Replication = 1
	}
	if opts.Replication > len(top.Shards) {
		opts.Replication = len(top.Shards)
	}
	if opts.Agent == (cluster.AgentOptions{}) {
		opts.Agent = cluster.DefaultAgentOptions()
	}
	if opts.FrontEnd == (cluster.ServiceOptions{}) {
		opts.FrontEnd = cluster.DefaultServiceOptions()
	}
	if opts.FrontEnd.MaxFrame <= 0 {
		opts.FrontEnd.MaxFrame = cluster.DefaultMaxFrame
	}
	if opts.DialRetry <= 0 {
		opts.DialRetry = DefaultDialRetry
	}
	r := &Router{
		top:    top,
		opts:   opts,
		ring:   rg,
		conns:  map[net.Conn]string{},
		routes: map[string]*nodeRoute{},
		Logf:   log.Printf,
	}
	for _, sh := range top.Shards {
		st := &shardState{shard: sh}
		st.up.Store(true)
		r.shards = append(r.shards, st)
	}
	return r, nil
}

// Topology reports the shard list the router was built with.
func (r *Router) Topology() Topology { return r.top }

// Options reports the resolved options the router runs with.
func (r *Router) Options() TopologyOptions { return r.opts }

// Listen starts accepting front-end agents on addr ("host:port"; ":0"
// picks a free port). It returns immediately; Addr reports the bound
// address.
func (r *Router) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("fleet: listen: %w", err)
	}
	r.ln = ln
	r.wg.Add(1)
	go r.acceptLoop()
	return nil
}

// Addr returns the bound listen address.
func (r *Router) Addr() string {
	if r.ln == nil {
		return ""
	}
	return r.ln.Addr().String()
}

// Close stops the listener, terminates open front-end connections
// immediately, waits for the handlers to finish, and only then closes the
// pooled backend connections — so no handler can touch a closed agent.
// Samples a degraded agent buffered but never replayed are lost, exactly
// as if that agent's node had gone away; use Shutdown for a draining
// stop.
func (r *Router) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	for c := range r.conns {
		_ = c.Close()
	}
	r.mu.Unlock()
	var err error
	if r.ln != nil {
		err = r.ln.Close()
	}
	r.wg.Wait()
	r.closeAgents()
	return err
}

// Shutdown drains the router gracefully: it stops accepting, lets every
// handler finish the request it is processing (replies are still
// written), reaps idle front-end connections immediately, and
// force-closes whatever remains after grace. Backend connections close
// last.
func (r *Router) Shutdown(grace time.Duration) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	conns := make([]net.Conn, 0, len(r.conns))
	//lint:ignore maporder teardown order over the connection set is immaterial
	for c := range r.conns {
		conns = append(conns, c)
	}
	r.mu.Unlock()
	var err error
	if r.ln != nil {
		err = r.ln.Close()
	}
	// An expired read deadline unblocks handlers parked between requests
	// without cutting off a reply in flight (the same drain discipline
	// cluster.Service.Shutdown uses).
	now := time.Now()
	for _, c := range conns {
		c.SetReadDeadline(now)
	}
	done := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(grace):
		r.mu.Lock()
		for c := range r.conns {
			_ = c.Close()
		}
		r.mu.Unlock()
		<-done
	}
	r.closeAgents()
	return err
}

// closeAgents tears down every pooled backend connection. Only called
// after the handler WaitGroup drained, so nothing can race the agents.
func (r *Router) closeAgents() {
	r.nmu.Lock()
	routes := make([]*nodeRoute, 0, len(r.routes))
	//lint:ignore maporder teardown order over the route set is immaterial
	for _, nr := range r.routes {
		routes = append(routes, nr)
	}
	r.nmu.Unlock()
	for _, nr := range routes {
		nr.mu.Lock()
		for _, ag := range nr.agents {
			if ag != nil {
				_ = ag.Close()
			}
		}
		nr.mu.Unlock()
	}
	for _, st := range r.shards {
		st.qmu.Lock()
		if st.query != nil {
			_ = st.query.Close()
		}
		st.qmu.Unlock()
	}
}

// track registers a live front-end connection; false means the router is
// closing or at its MaxConns cap and the connection should be dropped.
func (r *Router) track(conn net.Conn) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return false
	}
	if r.opts.FrontEnd.MaxConns > 0 && len(r.conns) >= r.opts.FrontEnd.MaxConns {
		return false
	}
	r.conns[conn] = ""
	if len(r.conns) > r.peak {
		r.peak = len(r.conns)
	}
	return true
}

func (r *Router) untrack(conn net.Conn) {
	r.mu.Lock()
	delete(r.conns, conn)
	r.mu.Unlock()
}

// identify binds a connection to the node that said Hello on it.
func (r *Router) identify(conn net.Conn, nodeID string) {
	r.mu.Lock()
	if _, ok := r.conns[conn]; ok {
		r.conns[conn] = nodeID
	}
	r.mu.Unlock()
}

func (r *Router) isClosed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

func (r *Router) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			if !r.isClosed() {
				r.Logf("fleet: accept: %v", err)
			}
			return
		}
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			if err := r.handle(conn); err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				r.Logf("fleet: connection %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// handle serves one front-end connection: the same request loop a
// cluster.Service runs, except every answer comes from the fleet instead
// of a local model and store.
func (r *Router) handle(conn net.Conn) error {
	defer conn.Close()
	if !r.track(conn) {
		return nil
	}
	defer r.untrack(conn)
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		if r.opts.FrontEnd.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(r.opts.FrontEnd.ReadTimeout))
		}
		env, err := cluster.ReadMsgLimit(br, r.opts.FrontEnd.MaxFrame)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() && !r.isClosed() {
				r.timedOut.Add(1)
			}
			return err
		}
		if r.opts.FrontEnd.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(r.opts.FrontEnd.WriteTimeout))
		}
		r.frames.Add(1)
		switch env.Kind {
		case cluster.KindHello:
			var h cluster.Hello
			if err := cluster.DecodeBody(env, &h); err != nil {
				return err
			}
			r.routeFor(h.NodeID)
			r.identify(conn, h.NodeID)
			// The front-end always answers JSON (no Codec selection): the
			// router re-frames per backend hop anyway, and a
			// binary-preferring agent falls back to JSON on an unselected
			// offer.
			if err := cluster.WriteMsg(bw, cluster.KindHello, cluster.Hello{NodeID: h.NodeID}); err != nil {
				return err
			}
		case cluster.KindSample:
			var smp cluster.Sample
			if err := cluster.DecodeBody(env, &smp); err != nil {
				return err
			}
			est, ferr := r.forwardSample(smp)
			if ferr != nil {
				if werr := r.writeError(bw, ferr); werr != nil {
					return werr
				}
				break
			}
			if err := cluster.WriteMsg(bw, cluster.KindEstimate, est); err != nil {
				return err
			}
		case cluster.KindRecordBatch:
			var rb cluster.RecordBatch
			if err := cluster.DecodeBody(env, &rb); err != nil {
				return err
			}
			ests, ferr := r.forwardBatch(&rb)
			if ferr != nil {
				if werr := r.writeError(bw, ferr); werr != nil {
					return werr
				}
				break
			}
			if err := cluster.WriteMsg(bw, cluster.KindEstimateBatch, cluster.EstimateBatch{Estimates: ests}); err != nil {
				return err
			}
		case cluster.KindQuery:
			var q cluster.QueryRequest
			if err := cluster.DecodeBody(env, &q); err != nil {
				return err
			}
			body, qerr := r.answerQuery(q)
			if qerr != nil {
				if werr := r.writeError(bw, qerr); werr != nil {
					return werr
				}
				break
			}
			if err := cluster.WriteMsg(bw, cluster.KindSeries, body); err != nil {
				if errors.Is(err, cluster.ErrFrameTooLarge) {
					// Nothing was written yet; tell the agent to narrow the
					// window instead of killing the connection.
					if werr := cluster.WriteMsg(bw, cluster.KindError, cluster.ErrorBody{Message: "series reply too large; narrow the query window or coarsen the resolution"}); werr != nil {
						return werr
					}
					break
				}
				return err
			}
		case cluster.KindStats:
			st, serr := r.MergedStats()
			if serr != nil {
				if werr := r.writeError(bw, serr); werr != nil {
					return werr
				}
				break
			}
			if err := cluster.WriteMsg(bw, cluster.KindStats, st); err != nil {
				return err
			}
		case cluster.KindModel:
			data, merr := r.fetchModel()
			if merr != nil {
				if werr := r.writeError(bw, merr); werr != nil {
					return werr
				}
				break
			}
			if err := cluster.WriteMsg(bw, cluster.KindModel, cluster.ModelBody{Data: data}); err != nil {
				return err
			}
		default:
			if err := cluster.WriteMsg(bw, cluster.KindError, cluster.ErrorBody{Message: fmt.Sprintf("unknown kind %q", env.Kind)}); err != nil {
				return err
			}
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
}

// writeError answers one failed request. A backend *ServiceError is
// unwrapped so the front-end sees the service's own message, byte-
// identical to a direct connection; everything else travels verbatim.
func (r *Router) writeError(bw *bufio.Writer, err error) error {
	r.routeErrors.Add(1)
	msg := err.Error()
	var se *cluster.ServiceError
	if errors.As(err, &se) {
		msg = se.Message
	}
	return cluster.WriteMsg(bw, cluster.KindError, cluster.ErrorBody{Message: msg})
}

// routeFor returns the node's forwarding state, computing ring placement
// on first sight.
func (r *Router) routeFor(nodeID string) *nodeRoute {
	r.nmu.Lock()
	defer r.nmu.Unlock()
	nr, ok := r.routes[nodeID]
	if !ok {
		owners := r.ring.owners(nodeID, r.opts.Replication)
		nr = &nodeRoute{
			owners:   owners,
			agents:   make([]*cluster.ResilientAgent, len(owners)),
			nextDial: make([]time.Time, len(owners)),
		}
		r.routes[nodeID] = nr
	}
	return nr
}

// agentFor returns the pooled agent for owner i of nr, dialing on first
// use and again DialRetry after each failed attempt. Nil means the shard
// is unreachable and no model snapshot was ever fetched for this node —
// there is nothing to degrade to. Callers hold nr.mu.
func (r *Router) agentFor(nr *nodeRoute, i int, nodeID string) *cluster.ResilientAgent {
	if nr.agents[i] != nil {
		return nr.agents[i]
	}
	if time.Now().Before(nr.nextDial[i]) {
		return nil
	}
	st := r.shards[nr.owners[i]]
	ag, err := cluster.DialResilient(st.shard.Addr, nodeID, r.opts.Agent)
	if err != nil {
		nr.nextDial[i] = time.Now().Add(r.opts.DialRetry)
		st.up.Store(false)
		return nil
	}
	nr.agents[i] = ag
	st.up.Store(true)
	return ag
}

// errShardUnreachable marks a replica that could not even be dialed.
func errShardUnreachable(name string) error {
	return fmt.Errorf("fleet: shard %s unreachable", name)
}

// forwardSample routes one sample to the node's primary shard and, with
// R > 1, to its followers in parallel (synchronous replication). The
// primary's estimate is the reply; when the primary can only answer from
// its local snapshot (its shard is down, the sample is buffered for
// in-order replay), the first follower with a live service answer takes
// over, so the front-end keeps receiving service-grade estimates through
// single-shard outages.
func (r *Router) forwardSample(smp cluster.Sample) (cluster.Estimate, error) {
	nr := r.routeFor(smp.NodeID)
	nr.mu.Lock()
	defer nr.mu.Unlock()
	n := len(nr.owners)
	agents := make([]*cluster.ResilientAgent, n)
	ests := make([]cluster.Estimate, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		agents[i] = r.agentFor(nr, i, smp.NodeID)
	}
	var wg sync.WaitGroup
	for i := 1; i < n; i++ {
		if agents[i] == nil {
			errs[i] = errShardUnreachable(r.shards[nr.owners[i]].shard.Name)
			continue
		}
		wg.Add(1)
		go func(i int, ag *cluster.ResilientAgent) {
			defer wg.Done()
			ests[i], errs[i] = ag.Send(smp.Time, smp.PMC, smp.Measured)
		}(i, agents[i])
	}
	if agents[0] == nil {
		errs[0] = errShardUnreachable(r.shards[nr.owners[0]].shard.Name)
	} else {
		ests[0], errs[0] = agents[0].Send(smp.Time, smp.PMC, smp.Measured)
	}
	wg.Wait()
	return r.settle(nr, ests, errs)
}

// forwardBatch routes one record batch the same way forwardSample routes
// one sample: primary plus followers in parallel, each through
// ResilientAgent.SendSamples so a degraded replica buffers the whole
// batch in order.
func (r *Router) forwardBatch(rb *cluster.RecordBatch) ([]cluster.Estimate, error) {
	nr := r.routeFor(rb.NodeID)
	nr.mu.Lock()
	defer nr.mu.Unlock()
	n := len(nr.owners)
	agents := make([]*cluster.ResilientAgent, n)
	ests := make([][]cluster.Estimate, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		agents[i] = r.agentFor(nr, i, rb.NodeID)
	}
	var wg sync.WaitGroup
	for i := 1; i < n; i++ {
		if agents[i] == nil {
			errs[i] = errShardUnreachable(r.shards[nr.owners[i]].shard.Name)
			continue
		}
		wg.Add(1)
		go func(i int, ag *cluster.ResilientAgent) {
			defer wg.Done()
			ests[i], errs[i] = ag.SendSamples(rb.Samples)
		}(i, agents[i])
	}
	if agents[0] == nil {
		errs[0] = errShardUnreachable(r.shards[nr.owners[0]].shard.Name)
	} else {
		ests[0], errs[0] = agents[0].SendSamples(rb.Samples)
	}
	wg.Wait()
	flat := make([]cluster.Estimate, n)
	for i := range ests {
		if len(ests[i]) > 0 {
			flat[i] = ests[i][0]
		}
	}
	pick, err := r.settleIdx(nr, flat, errs)
	if err != nil {
		return nil, err
	}
	return ests[pick], nil
}

// settle picks the front-end reply from the per-replica outcomes.
func (r *Router) settle(nr *nodeRoute, ests []cluster.Estimate, errs []error) (cluster.Estimate, error) {
	i, err := r.settleIdx(nr, ests, errs)
	if err != nil {
		return cluster.Estimate{}, err
	}
	return ests[i], nil
}

// settleIdx updates shard health from the per-replica outcomes, advances
// the routing counters, and picks the replica whose answer becomes the
// front-end reply:
//
//  1. a primary *ServiceError is returned as-is (the service rejected the
//     request over a healthy link; followers rejected it identically),
//  2. a live primary estimate wins,
//  3. otherwise the first live follower estimate wins (failover),
//  4. otherwise the primary's local-snapshot estimate is served (Local
//     travels to the front-end so callers can see the degradation),
//  5. otherwise any replica's local estimate, and only when every replica
//     failed outright does the caller get an error.
func (r *Router) settleIdx(nr *nodeRoute, ests []cluster.Estimate, errs []error) (int, error) {
	live := make([]bool, len(errs)) // transport healthy and answer came from the service
	for i, idx := range nr.owners {
		healthy := errs[i] == nil && !ests[i].Local
		if errs[i] != nil {
			var se *cluster.ServiceError
			healthy = errors.As(errs[i], &se)
		}
		live[i] = errs[i] == nil && !ests[i].Local
		r.shards[idx].up.Store(healthy)
	}
	if live[0] {
		r.routed.Add(1)
	}
	for i := 1; i < len(live); i++ {
		if live[i] {
			r.replicated.Add(1)
		}
	}
	var se *cluster.ServiceError
	if errs[0] != nil && errors.As(errs[0], &se) {
		return 0, errs[0]
	}
	if live[0] {
		nr.recorded.Store(true)
		return 0, nil
	}
	for i := 1; i < len(live); i++ {
		if live[i] {
			r.failedOver.Add(1)
			nr.recorded.Store(true)
			return i, nil
		}
	}
	for i := range errs {
		if errs[i] == nil {
			nr.recorded.Store(true)
			return i, nil
		}
	}
	return 0, errs[0]
}
