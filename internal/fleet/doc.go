// Package fleet is HighRPM's horizontal scale-out layer: a Router fronts
// N cluster.Service backends and speaks the same wire protocol agents
// already use, so a fleet is a drop-in replacement for a single service.
//
// Node IDs are consistent-hash-sharded across the backends (ring.go):
// each shard contributes configurable virtual nodes to a deterministic
// FNV-64a ring, so the same topology always yields the same placement and
// removing a shard moves only that shard's keys. Ingest traffic (Hello,
// Sample, RecordBatch) is forwarded over pooled ResilientAgent
// connections — one per (node, shard) so per-node sample order survives
// retries, degraded-mode buffering, and in-order replay — with optional
// replication factor R: the ring owner is the primary and the next R-1
// distinct shards clockwise are followers, written synchronously in
// parallel. When the primary can only answer from its local model
// snapshot, the first follower with a live service answer takes over the
// reply (failover), and the primary's buffered samples replay in order
// once it rejoins, resyncing its model snapshot through the existing
// model-fetch path.
//
// Queries federate instead of forwarding: a single-node KindQuery goes to
// a live replica of its owner, while the cluster-wide aggregate
// scatter-gathers every known node's series from the shards in parallel
// and merges them serially in sorted node order with tsdb.MergeNodeSeries
// — the exact accumulation discipline the tsdb's own parallel Aggregate
// uses. Floating-point addition is not associative, so that shared merge
// is what makes a fleet's QuerySeries, Aggregate and Stats answers
// byte-identical to a single service fed the same samples. KindStats
// scatter-gathers and sums the per-shard statistics the same way.
package fleet
