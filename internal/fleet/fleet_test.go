package fleet

import (
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"highrpm/internal/cluster"
	"highrpm/internal/core"
	"highrpm/internal/dataset"
	"highrpm/internal/platform"
	"highrpm/internal/tsdb"
	"highrpm/internal/workload"
)

// trainedModel builds one compact model shared by every test in the
// package (the same recipe the cluster tests use).
var (
	modelOnce sync.Once
	testModel *core.HighRPM
	modelErr  error
)

func sharedModel(t testing.TB) *core.HighRPM {
	t.Helper()
	modelOnce.Do(func() {
		cfg := dataset.DefaultGenerateConfig()
		cfg.SamplesPerSuite = 150
		train := &dataset.Set{}
		for _, s := range []string{workload.SuiteHPCC, workload.SuiteSPEC} {
			set, err := dataset.GenerateSuite(cfg, s)
			if err != nil {
				modelErr = err
				return
			}
			train.Append(set)
		}
		opts := core.DefaultOptions()
		opts.ActiveLearning = false
		opts.Dynamic.Epochs = 4
		opts.Dynamic.MaxWindows = 120
		testModel, modelErr = core.Train(train, opts)
	})
	if modelErr != nil {
		t.Fatal(modelErr)
	}
	return testModel
}

// checkNoLeaks arms a goroutine-leak assertion for the calling test (the
// cluster package's discipline): call it first, before t.Cleanup-registered
// servers, so the count is checked after every server shut down.
func checkNoLeaks(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= before {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak: %d before, %d after\n%s", before, n, buf)
	})
}

// startBackend spins up one real cluster.Service on a loopback port.
func startBackend(t testing.TB) *cluster.Service {
	t.Helper()
	svc := cluster.NewService(sharedModel(t))
	svc.Logf = t.Logf
	if err := svc.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc
}

// startFleet builds n backends and a router fronting them, returning both.
func startFleet(t testing.TB, n int, opts TopologyOptions) (*Router, []*cluster.Service) {
	t.Helper()
	backends := make([]*cluster.Service, n)
	top := Topology{}
	for i := range backends {
		backends[i] = startBackend(t)
		top.Shards = append(top.Shards, Shard{Name: fmt.Sprintf("shard-%d", i), Addr: backends[i].Addr()})
	}
	r, err := NewRouter(top, opts)
	if err != nil {
		t.Fatal(err)
	}
	r.Logf = t.Logf
	if err := r.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r, backends
}

// balancedNodes picks perShard node names per shard (by ring placement),
// sorted, so equivalence tests exercise every backend.
func balancedNodes(t testing.TB, r *Router, perShard int) []string {
	t.Helper()
	counts := make([]int, len(r.shards))
	nodes := make([]string, 0, perShard*len(r.shards))
	for i := 0; len(nodes) < perShard*len(r.shards); i++ {
		if i > 10000 {
			t.Fatal("could not balance nodes over shards")
		}
		name := fmt.Sprintf("node-%03d", i)
		idx := r.ring.owner(name)
		if counts[idx] < perShard {
			counts[idx]++
			nodes = append(nodes, name)
		}
	}
	sort.Strings(nodes)
	return nodes
}

// genSamples produces n deterministic seconds of telemetry for one
// simulated node; every tenth second carries an IPMI reading.
func genSamples(t testing.TB, seed int64, n int) []cluster.Sample {
	t.Helper()
	node, err := platform.NewNode(platform.ARMConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.Find("HPCC/FFT")
	if err != nil {
		t.Fatal(err)
	}
	node.Attach(b)
	out := make([]cluster.Sample, 0, n)
	for i := 0; i < n; i++ {
		s := node.Step(1)
		smp := cluster.Sample{Time: s.Time, PMC: s.Counters.Slice()}
		if i%10 == 0 {
			v := s.PNode
			smp.Measured = &v
		}
		out = append(out, smp)
	}
	return out
}

func sameEstimate(a, b cluster.Estimate) bool {
	return a.NodeID == b.NodeID &&
		math.Float64bits(a.Time) == math.Float64bits(b.Time) &&
		math.Float64bits(a.PNode) == math.Float64bits(b.PNode) &&
		math.Float64bits(a.PCPU) == math.Float64bits(b.PCPU) &&
		math.Float64bits(a.PMEM) == math.Float64bits(b.PMEM) &&
		a.FromMeasurement == b.FromMeasurement &&
		a.Local == b.Local
}

func mustJSON(t testing.TB, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// stripTransport zeroes the Stats fields that depend on connection count,
// codec negotiation, and framing — everything the extra router hop
// legitimately changes — leaving the sample, estimate, and store
// accounting that must match a single service exactly.
func stripTransport(st *cluster.Stats) {
	st.Conns, st.PeakConns, st.NodeConns = 0, 0, nil
	st.BinConns, st.BinFrames, st.JSONFrames = 0, 0, 0
	st.Rejected, st.TimedOut = 0, 0
	st.Batches, st.BatchSamples = 0, 0
}

// TestFleetEquivalence is the PR's acceptance golden test: a 2-shard
// fleet must answer every estimate, QuerySeries, Aggregate, and Stats
// request byte-identically to a single service fed the same samples.
func TestFleetEquivalence(t *testing.T) {
	checkNoLeaks(t)
	r, _ := startFleet(t, 2, DefaultTopologyOptions())
	ref := startBackend(t)

	nodes := balancedNodes(t, r, 2)
	const seconds = 60
	for ni, node := range nodes {
		samples := genSamples(t, int64(100+ni), seconds)
		fa, err := cluster.Dial(r.Addr(), node)
		if err != nil {
			t.Fatal(err)
		}
		ra, err := cluster.Dial(ref.Addr(), node)
		if err != nil {
			fa.Close()
			t.Fatal(err)
		}
		for i, smp := range samples {
			fest, err := fa.Send(smp.Time, smp.PMC, smp.Measured)
			if err != nil {
				t.Fatalf("fleet send %s[%d]: %v", node, i, err)
			}
			rest, err := ra.Send(smp.Time, smp.PMC, smp.Measured)
			if err != nil {
				t.Fatalf("ref send %s[%d]: %v", node, i, err)
			}
			if !sameEstimate(fest, rest) {
				t.Fatalf("estimate %s[%d]: fleet %+v, ref %+v", node, i, fest, rest)
			}
		}
		fa.Close()
		ra.Close()
	}

	fa, err := cluster.Dial(r.Addr(), "query-client")
	if err != nil {
		t.Fatal(err)
	}
	defer fa.Close()
	ra, err := cluster.Dial(ref.Addr(), "query-client")
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()

	// Stats before any queries touch the stores: the summed fleet answer
	// must equal the single service's, transport accounting aside.
	fst, err := fa.Stats()
	if err != nil {
		t.Fatal(err)
	}
	rst, err := ra.Stats()
	if err != nil {
		t.Fatal(err)
	}
	stripTransport(&fst)
	stripTransport(&rst)
	if !reflect.DeepEqual(fst, rst) {
		t.Fatalf("stats diverge:\nfleet %+v\nref   %+v", fst, rst)
	}

	// Every node, every channel, raw and rolled up: byte-identical wire
	// bodies.
	for _, node := range nodes {
		for _, ch := range tsdb.Channels() {
			for _, res := range []int{1, 10} {
				q := cluster.QueryRequest{NodeID: node, Channel: string(ch), From: 0, To: seconds - 1, ResolutionS: res}
				fb, err := fa.Query(q)
				if err != nil {
					t.Fatalf("fleet query %+v: %v", q, err)
				}
				rb, err := ra.Query(q)
				if err != nil {
					t.Fatalf("ref query %+v: %v", q, err)
				}
				if fj, rj := mustJSON(t, fb), mustJSON(t, rb); fj != rj {
					t.Fatalf("series %s/%s@%ds diverges:\nfleet %s\nref   %s", node, ch, res, fj, rj)
				}
			}
		}
	}

	// The cluster-wide aggregate: scatter-gathered across shards, merged
	// in sorted node order — bit-identical to the single store's own
	// parallel Aggregate.
	for _, ch := range tsdb.Channels() {
		for _, res := range []int{1, 10, 60} {
			q := cluster.QueryRequest{Channel: string(ch), From: 0, To: seconds - 1, ResolutionS: res}
			fb, err := fa.Query(q)
			if err != nil {
				t.Fatalf("fleet aggregate %+v: %v", q, err)
			}
			rb, err := ra.Query(q)
			if err != nil {
				t.Fatalf("ref aggregate %+v: %v", q, err)
			}
			if fj, rj := mustJSON(t, fb), mustJSON(t, rb); fj != rj {
				t.Fatalf("aggregate %s@%ds diverges:\nfleet %s\nref   %s", ch, res, fj, rj)
			}
		}
	}

	// Errors must read byte-identical too: unknown channels and bad
	// resolutions are rejected with the service's own message whether the
	// query names a node or scatters.
	for _, q := range []cluster.QueryRequest{
		{NodeID: nodes[0], Channel: "bogus", From: 0, To: 10},
		{Channel: "bogus", From: 0, To: 10},
		{Channel: "p_node", From: 0, To: 10, ResolutionS: 7},
	} {
		_, ferr := fa.Query(q)
		_, rerr := ra.Query(q)
		if ferr == nil || rerr == nil {
			t.Fatalf("query %+v: fleet err %v, ref err %v", q, ferr, rerr)
		}
		if ferr.Error() != rerr.Error() {
			t.Fatalf("error for %+v diverges: fleet %q, ref %q", q, ferr, rerr)
		}
	}

	st := r.Stats()
	if st.Nodes != len(nodes) {
		t.Fatalf("router nodes = %d, want %d", st.Nodes, len(nodes))
	}
	if st.Routed != int64(len(nodes)*seconds) {
		t.Fatalf("routed = %d, want %d", st.Routed, len(nodes)*seconds)
	}
	if st.Replicated != 0 || st.FailedOver != 0 {
		t.Fatalf("unexpected replication counters: %+v", st)
	}
	if st.ScatterGathers == 0 {
		t.Fatal("no scatter-gathers counted")
	}
}

// TestFleetReplicatedEquivalence repeats the golden path with R=2 on two
// shards: every node's stream lands on both backends, answers stay
// byte-identical, and each backend's store independently holds the full
// fleet history.
func TestFleetReplicatedEquivalence(t *testing.T) {
	checkNoLeaks(t)
	opts := DefaultTopologyOptions()
	opts.Replication = 2
	r, backends := startFleet(t, 2, opts)
	ref := startBackend(t)

	nodes := balancedNodes(t, r, 1)
	const seconds = 40
	for ni, node := range nodes {
		samples := genSamples(t, int64(300+ni), seconds)
		fa, err := cluster.Dial(r.Addr(), node)
		if err != nil {
			t.Fatal(err)
		}
		ra, err := cluster.Dial(ref.Addr(), node)
		if err != nil {
			fa.Close()
			t.Fatal(err)
		}
		for i, smp := range samples {
			fest, err := fa.Send(smp.Time, smp.PMC, smp.Measured)
			if err != nil {
				t.Fatalf("fleet send %s[%d]: %v", node, i, err)
			}
			rest, err := ra.Send(smp.Time, smp.PMC, smp.Measured)
			if err != nil {
				t.Fatalf("ref send %s[%d]: %v", node, i, err)
			}
			if !sameEstimate(fest, rest) {
				t.Fatalf("estimate %s[%d]: fleet %+v, ref %+v", node, i, fest, rest)
			}
		}
		fa.Close()
		ra.Close()
	}

	fa, err := cluster.Dial(r.Addr(), "query-client")
	if err != nil {
		t.Fatal(err)
	}
	defer fa.Close()
	ra, err := cluster.Dial(ref.Addr(), "query-client")
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()

	q := cluster.QueryRequest{Channel: "p_node", From: 0, To: seconds - 1, ResolutionS: 1}
	fb, err := fa.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := ra.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if fj, rj := mustJSON(t, fb), mustJSON(t, rb); fj != rj {
		t.Fatalf("replicated aggregate diverges:\nfleet %s\nref   %s", fj, rj)
	}

	// Every backend holds every node's complete series — that is what
	// failover reads.
	for _, node := range nodes {
		nq := cluster.QueryRequest{NodeID: node, Channel: "p_node", From: 0, To: seconds - 1, ResolutionS: 1}
		want, err := ra.Query(nq)
		if err != nil {
			t.Fatal(err)
		}
		for bi, be := range backends {
			ba, err := cluster.Dial(be.Addr(), "verify-client")
			if err != nil {
				t.Fatal(err)
			}
			got, err := ba.Query(nq)
			ba.Close()
			if err != nil {
				t.Fatalf("backend %d query %s: %v", bi, node, err)
			}
			if gj, wj := mustJSON(t, got), mustJSON(t, want); gj != wj {
				t.Fatalf("backend %d series for %s diverges:\ngot  %s\nwant %s", bi, node, gj, wj)
			}
		}
	}

	st := r.Stats()
	if st.Replicated != int64(len(nodes)*seconds) {
		t.Fatalf("replicated = %d, want %d", st.Replicated, len(nodes)*seconds)
	}
}

// TestFleetBatchForwarding covers the KindRecordBatch path: a batching
// front-end agent must receive the same per-sample estimates through the
// router as against the service directly, and the history must match.
func TestFleetBatchForwarding(t *testing.T) {
	checkNoLeaks(t)
	r, _ := startFleet(t, 2, DefaultTopologyOptions())
	ref := startBackend(t)

	const node = "batch-node"
	const seconds = 32
	samples := genSamples(t, 77, seconds)

	send := func(addr string) []cluster.Estimate {
		t.Helper()
		opts := cluster.DefaultAgentOptions()
		opts.Batch = cluster.BatchOptions{MaxSamples: 8}
		ag, err := cluster.DialResilient(addr, node, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer ag.Close()
		var ests []cluster.Estimate
		for _, smp := range samples {
			got, err := ag.Record(smp.Time, smp.PMC, smp.Measured)
			if err != nil {
				t.Fatal(err)
			}
			ests = append(ests, got...)
		}
		got, err := ag.Flush()
		if err != nil {
			t.Fatal(err)
		}
		return append(ests, got...)
	}

	fests := send(r.Addr())
	rests := send(ref.Addr())
	if len(fests) != seconds || len(rests) != seconds {
		t.Fatalf("estimate counts: fleet %d, ref %d, want %d", len(fests), len(rests), seconds)
	}
	for i := range fests {
		if !sameEstimate(fests[i], rests[i]) {
			t.Fatalf("batch estimate[%d]: fleet %+v, ref %+v", i, fests[i], rests[i])
		}
	}

	fa, err := cluster.Dial(r.Addr(), "query-client")
	if err != nil {
		t.Fatal(err)
	}
	defer fa.Close()
	ra, err := cluster.Dial(ref.Addr(), "query-client")
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()
	q := cluster.QueryRequest{NodeID: node, Channel: "p_cpu", From: 0, To: seconds - 1, ResolutionS: 1}
	fb, err := fa.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := ra.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if fj, rj := mustJSON(t, fb), mustJSON(t, rb); fj != rj {
		t.Fatalf("batched series diverges:\nfleet %s\nref   %s", fj, rj)
	}
}

func TestRouterValidation(t *testing.T) {
	checkNoLeaks(t)
	for _, tc := range []struct {
		name string
		top  Topology
	}{
		{"no shards", Topology{}},
		{"empty name", Topology{Shards: []Shard{{Name: "", Addr: "x"}}}},
		{"duplicate name", Topology{Shards: []Shard{{Name: "a", Addr: "x"}, {Name: "a", Addr: "y"}}}},
	} {
		if _, err := NewRouter(tc.top, TopologyOptions{}); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}

	top := Topology{Shards: []Shard{{Name: "a", Addr: "x"}, {Name: "b", Addr: "y"}}}
	r, err := NewRouter(top, TopologyOptions{Replication: 99})
	if err != nil {
		t.Fatal(err)
	}
	o := r.Options()
	if o.VirtualNodes != DefaultVirtualNodes || o.Replication != 2 || o.DialRetry != DefaultDialRetry {
		t.Fatalf("resolved options = %+v", o)
	}
	if o.Agent.RequestTimeout == 0 || o.FrontEnd.MaxFrame == 0 {
		t.Fatalf("agent/front-end defaults not applied: %+v", o)
	}
	if got := r.Topology(); !reflect.DeepEqual(got, top) {
		t.Fatalf("topology = %+v", got)
	}
	if r.Addr() != "" {
		t.Fatal("unbound router reports an address")
	}
}
