package fleet

import (
	"fmt"

	"highrpm/internal/cluster"
	"highrpm/internal/obs"
)

// ShardStatus is the router's live view of one backend shard.
type ShardStatus struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
	// Up is the health bit routing reads: false drains the shard from the
	// query path and marks its replicas for failover.
	Up bool `json:"up"`
	// NodeAgents is the number of pooled per-node forwarding connections
	// currently open to the shard.
	NodeAgents int `json:"node_agents"`
	// Degraded counts forwarding connections running in degraded mode
	// (buffering samples for in-order replay).
	Degraded int `json:"degraded"`
	// Pending is the total number of buffered samples awaiting replay to
	// the shard across its forwarding connections.
	Pending int `json:"pending"`
}

// Stats is the router's own accounting — the fleet-level counters that do
// not exist on any single backend. Backend-shaped totals come from
// MergedStats instead.
type Stats struct {
	Shards         []ShardStatus `json:"shards"`
	Nodes          int           `json:"nodes"`
	Conns          int           `json:"conns"`
	PeakConns      int           `json:"peak_conns"`
	Frames         int64         `json:"frames"`
	TimedOut       int64         `json:"timed_out"`
	Routed         int64         `json:"routed"`
	Replicated     int64         `json:"replicated"`
	FailedOver     int64         `json:"failed_over"`
	RouteErrors    int64         `json:"route_errors"`
	ScatterGathers int64         `json:"scatter_gathers"`
}

// Stats snapshots the router's routing state: per-shard health and
// connection pools plus the fleet counters.
func (r *Router) Stats() Stats {
	out := Stats{
		Frames:         r.frames.Load(),
		TimedOut:       r.timedOut.Load(),
		Routed:         r.routed.Load(),
		Replicated:     r.replicated.Load(),
		FailedOver:     r.failedOver.Load(),
		RouteErrors:    r.routeErrors.Load(),
		ScatterGathers: r.scatters.Load(),
	}
	agents := make([]int, len(r.shards))
	degraded := make([]int, len(r.shards))
	pending := make([]int, len(r.shards))
	r.nmu.Lock()
	routes := make([]*nodeRoute, 0, len(r.routes))
	//lint:ignore maporder per-shard sums are order-independent
	for _, nr := range r.routes {
		routes = append(routes, nr)
	}
	r.nmu.Unlock()
	for _, nr := range routes {
		nr.mu.Lock()
		for i, idx := range nr.owners {
			ag := nr.agents[i]
			if ag == nil {
				continue
			}
			agents[idx]++
			if ag.Mode() == cluster.ModeDegraded {
				degraded[idx]++
			}
			pending[idx] += ag.Pending()
		}
		nr.mu.Unlock()
	}
	for i, st := range r.shards {
		st.qmu.Lock()
		if st.query != nil {
			agents[i]++
			if st.query.Mode() == cluster.ModeDegraded {
				degraded[i]++
			}
		}
		st.qmu.Unlock()
		out.Shards = append(out.Shards, ShardStatus{
			Name:       st.shard.Name,
			Addr:       st.shard.Addr,
			Up:         st.up.Load(),
			NodeAgents: agents[i],
			Degraded:   degraded[i],
			Pending:    pending[i],
		})
	}
	out.Nodes = len(r.recordedNodes())
	r.mu.Lock()
	out.Conns = len(r.conns)
	out.PeakConns = r.peak
	r.mu.Unlock()
	return out
}

// RegisterMetrics exports the router onto reg: per-shard health and pool
// gauges, routing/replication/failover counters, and the scatter-gather
// latency histogram. Counters are refreshed from one Stats snapshot per
// scrape via the registry's gather hook (the same mirroring discipline
// cluster.Service.RegisterMetrics uses). Call once.
func (r *Router) RegisterMetrics(reg *obs.Registry) {
	shardUp := reg.GaugeVec("highrpm_fleet_shard_up",
		"1 while the shard is routable, 0 while it is drained from reads and failed over on writes.", "shard")
	shardAgents := reg.GaugeVec("highrpm_fleet_shard_agents",
		"Pooled backend connections open to the shard (per-node forwarders plus the query connection).", "shard")
	shardDegraded := reg.GaugeVec("highrpm_fleet_shard_degraded",
		"Pooled connections to the shard running degraded (buffering for in-order replay).", "shard")
	shardPending := reg.GaugeVec("highrpm_fleet_shard_pending",
		"Samples buffered for in-order replay to the shard.", "shard")
	nodes := reg.Gauge("highrpm_fleet_nodes", "Nodes the router has routed estimates for.")
	conns := reg.Gauge("highrpm_fleet_connections", "Live front-end connections.")
	peak := reg.Gauge("highrpm_fleet_connections_peak", "Highwater mark of live front-end connections.")
	frames := reg.Counter("highrpm_fleet_frames_total", "Front-end requests handled.")
	timedOut := reg.Counter("highrpm_fleet_timed_out_total", "Front-end connections reaped by the read deadline.")
	routed := reg.Counter("highrpm_fleet_routed_total", "Samples and batches answered live by their primary shard.")
	replicated := reg.Counter("highrpm_fleet_replicated_total", "Live follower writes (per replica beyond the primary).")
	failedOver := reg.Counter("highrpm_fleet_failovers_total", "Replies taken over by a follower while the primary was down.")
	routeErrors := reg.Counter("highrpm_fleet_route_errors_total", "Front-end requests answered with an error.")
	scatters := reg.Counter("highrpm_fleet_scatter_gathers_total", "Scatter-gather fan-outs (aggregate queries and merged stats).")

	hist := reg.Histogram("highrpm_fleet_scatter_seconds",
		"Wall-clock latency of one scatter-gather fan-out across all shards.",
		[]float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5})
	r.scatterHist.Store(&hist)

	reg.OnGather(func() {
		st := r.Stats()
		for _, sh := range st.Shards {
			up := 0.0
			if sh.Up {
				up = 1
			}
			shardUp.With(sh.Name).Set(up)
			shardAgents.With(sh.Name).Set(float64(sh.NodeAgents))
			shardDegraded.With(sh.Name).Set(float64(sh.Degraded))
			shardPending.With(sh.Name).Set(float64(sh.Pending))
		}
		nodes.Set(float64(st.Nodes))
		conns.Set(float64(st.Conns))
		peak.Set(float64(st.PeakConns))
		frames.Set(float64(st.Frames))
		timedOut.Set(float64(st.TimedOut))
		routed.Set(float64(st.Routed))
		replicated.Set(float64(st.Replicated))
		failedOver.Set(float64(st.FailedOver))
		routeErrors.Set(float64(st.RouteErrors))
		scatters.Set(float64(st.ScatterGathers))
	})
}

// Health reports the router's readiness for the obs /readyz probe:
// not ready while the listener is down or no shard is reachable, ready
// but degraded while any shard is down or any pooled connection is
// buffering, fully ready otherwise.
func (r *Router) Health() obs.Health {
	r.mu.Lock()
	closed := r.closed
	r.mu.Unlock()
	if closed || r.ln == nil {
		return obs.Health{Ready: false, Detail: "router not listening"}
	}
	st := r.Stats()
	up, degraded := 0, 0
	for _, sh := range st.Shards {
		if sh.Up {
			up++
		} else {
			degraded++
		}
		if sh.Degraded > 0 {
			degraded++
		}
	}
	if up == 0 {
		return obs.Health{Ready: false, Detail: "no shard reachable"}
	}
	if degraded > 0 {
		return obs.Health{
			Ready:    true,
			Degraded: true,
			Detail:   fmt.Sprintf("%d/%d shards up", up, len(st.Shards)),
		}
	}
	return obs.Health{Ready: true}
}
