package fleet

import (
	"time"

	"highrpm/internal/cluster"
)

// Shard names one backend cluster.Service.
type Shard struct {
	// Name is the stable identity hashed onto the ring: renaming a shard
	// moves its keys, re-addressing it does not.
	Name string
	// Addr is the backend service's "host:port".
	Addr string
}

// Topology is the static shard list a Router fronts. The ring depends
// only on the shard names, so a later pluggable discovery mechanism can
// replace how the list is produced without touching placement.
type Topology struct {
	Shards []Shard
}

const (
	// DefaultVirtualNodes is the ring points per shard: enough to keep the
	// key distribution within a few percent of even for small fleets,
	// cheap enough that the ring stays a flat sorted slice.
	DefaultVirtualNodes = 64
	// DefaultDialRetry spaces attempts to dial a shard the router has
	// never reached (once connected, reconnects follow the agent backoff).
	DefaultDialRetry = time.Second
)

// TopologyOptions tunes a Router.
type TopologyOptions struct {
	// VirtualNodes is how many ring points each shard contributes
	// (0: DefaultVirtualNodes). More points smooth the key distribution
	// at the cost of a bigger ring.
	VirtualNodes int
	// Replication is the number of distinct shards holding each node's
	// stream (R): the ring owner plus R-1 clockwise followers. 0 and 1
	// both mean no replication; values above the shard count are clamped.
	Replication int
	// Agent tunes the pooled backend connections (codec, timeouts,
	// backoff, degraded-mode buffering and replay). The zero value means
	// cluster.DefaultAgentOptions.
	Agent cluster.AgentOptions
	// FrontEnd hardens the router's own listener exactly like a service's
	// (read/write deadlines, frame cap, connection cap). The zero value
	// means cluster.DefaultServiceOptions.
	FrontEnd cluster.ServiceOptions
	// DialRetry is how long the router waits before re-attempting to dial
	// a shard it has no connection to (0: DefaultDialRetry).
	DialRetry time.Duration
}

// DefaultTopologyOptions returns deployment defaults: 64 virtual nodes,
// no replication, and the cluster layer's default agent and service
// hardening.
func DefaultTopologyOptions() TopologyOptions {
	return TopologyOptions{
		VirtualNodes: DefaultVirtualNodes,
		Replication:  1,
		Agent:        cluster.DefaultAgentOptions(),
		FrontEnd:     cluster.DefaultServiceOptions(),
		DialRetry:    DefaultDialRetry,
	}
}
