package fleet

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"highrpm/internal/cluster"
	"highrpm/internal/obs"
)

func scrape(t *testing.T, c *http.Client, url string) (int, string) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestFleetObsScrape registers a live router onto an observability
// endpoint and scrapes it over HTTP: the per-shard health gauges, the
// routing counters, and the scatter-gather histogram must all be present,
// and /readyz must reflect the router's health callback.
func TestFleetObsScrape(t *testing.T) {
	checkNoLeaks(t)
	r, _ := startFleet(t, 2, DefaultTopologyOptions())

	reg := obs.NewRegistry()
	r.RegisterMetrics(reg)
	osrv := obs.NewServer(reg, obs.DefaultServerOptions())
	osrv.SetHealth(r.Health)
	if err := osrv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := osrv.Shutdown(2 * time.Second); err != nil {
			t.Errorf("obs shutdown: %v", err)
		}
	})
	tr := &http.Transport{}
	t.Cleanup(tr.CloseIdleConnections)
	client := &http.Client{Transport: tr}

	// Route some traffic so the counters have something to mirror, and run
	// one scatter-gather so the histogram records an observation.
	nodes := balancedNodes(t, r, 1)
	const seconds = 5
	for ni, node := range nodes {
		ag, err := cluster.Dial(r.Addr(), node)
		if err != nil {
			t.Fatal(err)
		}
		for _, smp := range genSamples(t, int64(700+ni), seconds) {
			if _, err := ag.Send(smp.Time, smp.PMC, smp.Measured); err != nil {
				t.Fatal(err)
			}
		}
		ag.Close()
	}
	qa, err := cluster.Dial(r.Addr(), "obs-query")
	if err != nil {
		t.Fatal(err)
	}
	defer qa.Close()
	if _, err := qa.Query(cluster.QueryRequest{Channel: "p_node", From: 0, To: seconds - 1, ResolutionS: 1}); err != nil {
		t.Fatal(err)
	}

	base := "http://" + osrv.Addr()
	code, out := scrape(t, client, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		`highrpm_fleet_shard_up{shard="shard-0"} 1`,
		`highrpm_fleet_shard_up{shard="shard-1"} 1`,
		`highrpm_fleet_shard_agents{shard="shard-0"} `,
		`highrpm_fleet_shard_degraded{shard="shard-0"} 0`,
		`highrpm_fleet_shard_pending{shard="shard-0"} 0`,
		"highrpm_fleet_nodes 2",
		"highrpm_fleet_connections ",
		"highrpm_fleet_connections_peak ",
		"highrpm_fleet_frames_total ",
		"highrpm_fleet_routed_total 10",
		"highrpm_fleet_replicated_total 0",
		"highrpm_fleet_failovers_total 0",
		"highrpm_fleet_route_errors_total 0",
		"highrpm_fleet_scatter_gathers_total 1",
		"highrpm_fleet_scatter_seconds_count 1",
		"highrpm_fleet_scatter_seconds_sum ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", out)
	}

	code, body := scrape(t, client, base+"/readyz")
	if code != http.StatusOK {
		t.Fatalf("/readyz status %d: %s", code, body)
	}
	if !strings.Contains(body, `"status"`) {
		t.Fatalf("/readyz body: %s", body)
	}
	if h := r.Health(); !h.Ready || h.Degraded {
		t.Fatalf("health with both shards up: %+v", h)
	}
}

// TestFleetHealthTransitions walks the router health state machine:
// listening with live shards is ready, a closed router is not.
func TestFleetHealthTransitions(t *testing.T) {
	checkNoLeaks(t)
	top := Topology{Shards: []Shard{{Name: "a", Addr: "127.0.0.1:1"}}}
	r, err := NewRouter(top, DefaultTopologyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if h := r.Health(); h.Ready {
		t.Fatalf("unlistened router reports ready: %+v", h)
	}
	live, _ := startFleet(t, 2, DefaultTopologyOptions())
	if h := live.Health(); !h.Ready {
		t.Fatalf("live router not ready: %+v", h)
	}
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}
	if h := live.Health(); h.Ready {
		t.Fatalf("closed router reports ready: %+v", h)
	}
}
