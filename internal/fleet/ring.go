package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is the consistent-hash placement structure: every shard contributes
// VirtualNodes points on a 64-bit circle (FNV-64a of "name#i"), and a node
// ID lands on the first point clockwise of its own hash. Placement depends
// only on the shard *names* — points sort by (hash, name), so shuffling
// the topology's shard order, re-addressing a shard, or rebuilding the
// ring from scratch never moves a key, and removing a shard moves exactly
// the keys that shard owned.
type ring struct {
	points []ringPoint
	shards int
}

// ringPoint is one virtual node. name is the owning shard's stable
// identity (the sort tie-break on the astronomically rare hash collision);
// shard indexes the topology's shard list for O(1) routing.
type ringPoint struct {
	hash  uint64
	name  string
	shard int
}

// hashKey positions a string on the circle with FNV-64a: deterministic
// across processes and platforms, with no seed to drift.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// newRing validates the shard list and builds the sorted point set.
func newRing(shards []Shard, vnodes int) (*ring, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("fleet: topology has no shards")
	}
	seen := make(map[string]bool, len(shards))
	for _, sh := range shards {
		if sh.Name == "" {
			return nil, fmt.Errorf("fleet: shard with empty name (addr %q)", sh.Addr)
		}
		if seen[sh.Name] {
			return nil, fmt.Errorf("fleet: duplicate shard name %q", sh.Name)
		}
		seen[sh.Name] = true
	}
	if vnodes < 1 {
		vnodes = 1
	}
	r := &ring{points: make([]ringPoint, 0, len(shards)*vnodes), shards: len(shards)}
	for i, sh := range shards {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hashKey(fmt.Sprintf("%s#%d", sh.Name, v)),
				name:  sh.Name,
				shard: i,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.name < b.name
	})
	return r, nil
}

// successor finds the first ring point at or clockwise of key's hash.
func (r *ring) successor(key string) int {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// owner returns the index of the shard owning key.
func (r *ring) owner(key string) int {
	return r.points[r.successor(key)].shard
}

// owners returns the n distinct shards holding key's replicas: the owner
// first, then the next distinct shards clockwise (n is clamped to the
// shard count). The clockwise walk is what gives failover its locality:
// removing a shard promotes exactly its keys' first followers.
func (r *ring) owners(key string, n int) []int {
	if n > r.shards {
		n = r.shards
	}
	if n < 1 {
		n = 1
	}
	out := make([]int, 0, n)
	start := r.successor(key)
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		dup := false
		for _, s := range out {
			if s == p.shard {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, p.shard)
		}
	}
	return out
}
