package fleet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"highrpm/internal/cluster"
	"highrpm/internal/core"
	"highrpm/internal/tsdb"
)

// answerQuery resolves a front-end KindQuery: one node's history is read
// from a live replica of its owner shard, the cluster-wide aggregate
// (empty NodeID) is scatter-gathered from every shard.
func (r *Router) answerQuery(q cluster.QueryRequest) (cluster.SeriesBody, error) {
	if q.NodeID != "" {
		return r.queryNode(q)
	}
	return r.scatterAggregate(q)
}

// queryNode reads one node's series, walking its replicas until one
// answers: healthy replicas first (degraded shards are drained from the
// read path), primary order within each class. A *ServiceError does not
// end the walk — the primary may legitimately lack history the follower
// holds while a replay is still catching up — but if every replica
// rejects, the first rejection is returned (so an unknown channel reads
// the same as on a single service).
func (r *Router) queryNode(q cluster.QueryRequest) (cluster.SeriesBody, error) {
	owners := r.ring.owners(q.NodeID, r.opts.Replication)
	ordered := make([]int, 0, len(owners))
	for _, idx := range owners {
		if r.shards[idx].up.Load() {
			ordered = append(ordered, idx)
		}
	}
	for _, idx := range owners {
		if !r.shards[idx].up.Load() {
			ordered = append(ordered, idx)
		}
	}
	var firstRejection, firstErr error
	for _, idx := range ordered {
		body, err := r.shardQuery(idx, q)
		if err == nil {
			return body, nil
		}
		var se *cluster.ServiceError
		if errors.As(err, &se) {
			if firstRejection == nil {
				firstRejection = err
			}
		} else if firstErr == nil {
			firstErr = err
		}
	}
	if firstRejection != nil {
		return cluster.SeriesBody{}, firstRejection
	}
	return cluster.SeriesBody{}, firstErr
}

// shardQuery runs one request on idx's pooled query connection,
// maintaining the shard's health bit.
func (r *Router) shardQuery(idx int, q cluster.QueryRequest) (cluster.SeriesBody, error) {
	st := r.shards[idx]
	st.qmu.Lock()
	defer st.qmu.Unlock()
	ag, err := r.queryAgentLocked(st)
	if err != nil {
		return cluster.SeriesBody{}, err
	}
	body, err := ag.Query(q)
	var se *cluster.ServiceError
	st.up.Store(err == nil || errors.As(err, &se))
	return body, err
}

// queryAgentLocked returns st's query connection, dialing on first use
// and again DialRetry after a failed attempt. Callers hold st.qmu.
func (r *Router) queryAgentLocked(st *shardState) (*cluster.ResilientAgent, error) {
	if st.query != nil {
		return st.query, nil
	}
	if time.Now().Before(st.nextDial) {
		return nil, errShardUnreachable(st.shard.Name)
	}
	ag, err := cluster.DialResilient(st.shard.Addr, "fleet-router", r.opts.Agent)
	if err != nil {
		st.nextDial = time.Now().Add(r.opts.DialRetry)
		st.up.Store(false)
		return nil, fmt.Errorf("fleet: dial shard %s: %w", st.shard.Name, err)
	}
	st.query = ag
	st.up.Store(true)
	return ag, nil
}

// queryTarget picks the shard to read node's history from: the primary
// when healthy, otherwise the first healthy follower, falling back to the
// primary when every replica looks down.
func (r *Router) queryTarget(node string) int {
	owners := r.ring.owners(node, r.opts.Replication)
	for _, idx := range owners {
		if r.shards[idx].up.Load() {
			return idx
		}
	}
	return owners[0]
}

// validChannel mirrors the store's channel validation so an aggregate
// over zero known nodes still rejects unknown channels like a single
// service would.
func validChannel(ch string) bool {
	for _, c := range tsdb.Channels() {
		if c == tsdb.Channel(ch) {
			return true
		}
	}
	return false
}

// scatterAggregate answers the cluster-wide aggregate: every known node's
// series is fetched from a live replica of its owner (nodes grouped by
// target shard, shards read in parallel), then merged serially in sorted
// node order by tsdb.MergeNodeSeries — the exact accumulation a single
// service's Aggregate performs after its own parallel fan-out.
// Floating-point addition is not associative, so fetching per-node series
// and sharing that merge is what keeps a fleet's aggregate byte-identical
// to the single-store answer; merging per-shard pre-aggregates would not
// be.
func (r *Router) scatterAggregate(q cluster.QueryRequest) (cluster.SeriesBody, error) {
	res, err := tsdb.ParseResolution(q.ResolutionS)
	if err != nil {
		return cluster.SeriesBody{}, err
	}
	if !validChannel(q.Channel) {
		return cluster.SeriesBody{}, fmt.Errorf("tsdb: unknown channel %q", q.Channel)
	}
	start := time.Now()
	nodes := r.recordedNodes()
	results := make([][]tsdb.Point, len(nodes))
	errs := make([]error, len(nodes))
	// Group nodes by target shard: each shard's query connection serves
	// its group's reads in order while the groups run in parallel —
	// per-shard serialization is free (the connection is serialized
	// anyway) and cross-shard reads genuinely overlap.
	groups := map[int][]int{}
	order := make([]int, 0, len(r.shards))
	for i, node := range nodes {
		idx := r.queryTarget(node)
		if _, ok := groups[idx]; !ok {
			order = append(order, idx)
		}
		groups[idx] = append(groups[idx], i)
	}
	var wg sync.WaitGroup
	for _, idx := range order {
		batch := groups[idx]
		wg.Add(1)
		go func(batch []int) {
			defer wg.Done()
			for _, i := range batch {
				req := q
				req.NodeID = nodes[i]
				body, err := r.queryNode(req)
				if err != nil {
					errs[i] = err
					continue
				}
				results[i] = body.StorePoints()
			}
		}(batch)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			return cluster.SeriesBody{}, errs[i]
		}
	}
	merged := tsdb.MergeNodeSeries(results)
	r.scatters.Add(1)
	if h := r.scatterHist.Load(); h != nil {
		h.Observe(time.Since(start).Seconds())
	}
	return cluster.SeriesBody{
		Channel:     q.Channel,
		ResolutionS: int(res),
		Points:      tsdb.ToSeriesPoints(merged),
	}, nil
}

// recordedNodes lists the nodes with at least one routed estimate, sorted
// — the scatter-gather working set. The router federates what it routed:
// a restarted router in front of pre-loaded shards re-learns its node set
// as traffic (or replay) flows through it.
func (r *Router) recordedNodes() []string {
	r.nmu.Lock()
	defer r.nmu.Unlock()
	nodes := make([]string, 0, len(r.routes))
	//lint:ignore maporder the slice is sorted before use
	for id, nr := range r.routes {
		if nr.recorded.Load() {
			nodes = append(nodes, id)
		}
	}
	sort.Strings(nodes)
	return nodes
}

// knownNodes counts every node that said Hello or sent a sample — the
// same registration rule cluster.Service applies to its Stats.Nodes
// (a monitor exists from the Hello on), which is what keeps the merged
// answer byte-identical.
func (r *Router) knownNodes() int {
	r.nmu.Lock()
	defer r.nmu.Unlock()
	return len(r.routes)
}

// shardStats fetches one backend's Stats on its query connection,
// maintaining the shard's health bit.
func (r *Router) shardStats(i int) (cluster.Stats, error) {
	st := r.shards[i]
	st.qmu.Lock()
	defer st.qmu.Unlock()
	ag, err := r.queryAgentLocked(st)
	if err != nil {
		return cluster.Stats{}, err
	}
	out, err := ag.Stats()
	var se *cluster.ServiceError
	st.up.Store(err == nil || errors.As(err, &se))
	return out, err
}

// MergedStats scatter-gathers Stats from every shard in parallel and sums
// them into one service-shaped answer, so existing tooling
// (highrpm-query -stats, Agent.Stats) works unchanged against a fleet.
// Nodes and the connection fields are the router's own front-end
// accounting — backends also see the router's pooled connections, and
// with R > 1 each node R times, so their per-shard values are views of
// transport, not of the fleet. Summed sample/store counters count each
// replicated sample once per replica: they measure capacity spent, which
// with R = 1 equals the single-service numbers exactly. Unreachable
// shards are skipped (their health bit drops); only if no shard answers
// does the front-end get an error.
func (r *Router) MergedStats() (cluster.Stats, error) {
	scStart := time.Now()
	per := make([]cluster.Stats, len(r.shards))
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for i := range r.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			per[i], errs[i] = r.shardStats(i)
		}(i)
	}
	wg.Wait()
	var out cluster.Stats
	out.Store.SnapshotAgeSeconds = -1
	reachable := 0
	var firstErr error
	for i := range per {
		if errs[i] != nil {
			if firstErr == nil {
				firstErr = errs[i]
			}
			continue
		}
		reachable++
		st := &per[i]
		out.Samples += st.Samples
		out.Estimates += st.Estimates
		out.Measured += st.Measured
		out.Rejected += st.Rejected
		out.TimedOut += st.TimedOut
		out.BinConns += st.BinConns
		out.BinFrames += st.BinFrames
		out.JSONFrames += st.JSONFrames
		out.Batches += st.Batches
		out.BatchSamples += st.BatchSamples
		mergeStoreStats(&out.Store, st.Store)
	}
	if reachable == 0 {
		if firstErr == nil {
			firstErr = fmt.Errorf("fleet: no shards")
		}
		return cluster.Stats{}, firstErr
	}
	if out.Store.Points > 0 {
		out.Store.BytesPerPoint = float64(out.Store.RawBytes) / float64(out.Store.Points)
		out.Store.CompressionRatio = 16 / out.Store.BytesPerPoint
	}
	out.Nodes = r.knownNodes()
	r.mu.Lock()
	out.Conns = len(r.conns)
	out.PeakConns = r.peak
	for _, id := range r.conns {
		if id == "" {
			continue
		}
		if out.NodeConns == nil {
			out.NodeConns = map[string]int{}
		}
		out.NodeConns[id]++
	}
	r.mu.Unlock()
	r.scatters.Add(1)
	if h := r.scatterHist.Load(); h != nil {
		h.Observe(time.Since(scStart).Seconds())
	}
	return out, nil
}

// mergeStoreStats sums one shard's store footprint into the fleet total.
// Per-node series are disjoint across shards (for R = 1), and Gorilla
// compression is per-series, so the sums equal a single store's numbers
// exactly. The derived ratios are recomputed by the caller from the
// summed totals; SnapshotAgeSeconds keeps the newest snapshot's age.
func mergeStoreStats(dst *tsdb.Stats, s tsdb.Stats) {
	dst.Nodes += s.Nodes
	dst.Series += s.Series
	dst.Points += s.Points
	dst.Bytes += s.Bytes
	dst.RawBytes += s.RawBytes
	dst.Ingested += s.Ingested
	dst.Queries += s.Queries
	dst.PointsReturned += s.PointsReturned
	dst.EvictedPoints += s.EvictedPoints
	dst.CacheHits += s.CacheHits
	dst.CacheMisses += s.CacheMisses
	dst.CachePoints += s.CachePoints
	dst.WALBytes += s.WALBytes
	dst.WALFsyncs += s.WALFsyncs
	dst.WALRecords += s.WALRecords
	dst.ReplayedRecords += s.ReplayedRecords
	dst.Snapshots += s.Snapshots
	if s.SnapshotAgeSeconds >= 0 && (dst.SnapshotAgeSeconds < 0 || s.SnapshotAgeSeconds < dst.SnapshotAgeSeconds) {
		dst.SnapshotAgeSeconds = s.SnapshotAgeSeconds
	}
}

// fetchModel answers a front-end KindModel from a query connection's
// model snapshot — every shard serves the same trained model, and the
// snapshot was fetched through the very model-fetch path agents use, so
// no extra backend round trip is needed.
func (r *Router) fetchModel() ([]byte, error) {
	var firstErr error
	for _, st := range r.shards {
		st.qmu.Lock()
		ag, err := r.queryAgentLocked(st)
		st.qmu.Unlock()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		return core.Marshal(ag.Model())
	}
	return nil, firstErr
}
