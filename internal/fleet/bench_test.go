package fleet

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"highrpm/internal/cluster"
	"highrpm/internal/core"
)

// pacedStub is a minimal wire-compatible shard backend whose sample
// handling is serialized and paced: the whole shard processes one sample
// per serviceTime, whatever the connection count. On this benchmark's
// single-CPU runners a real in-process cluster.Service cannot demonstrate
// horizontal scaling — every shard contends for the same core — so the
// ingest benchmark models what sharding actually buys in deployment:
// independent backends whose service time overlaps. The router under test
// is the real one, doing real framing, routing, and pooling work.
type pacedStub struct {
	ln          net.Listener
	serviceTime time.Duration
	model       []byte

	mu sync.Mutex // the shard-wide pacing token
	wg sync.WaitGroup
}

func startPacedStub(tb testing.TB, serviceTime time.Duration, model []byte) *pacedStub {
	tb.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	s := &pacedStub{ln: ln, serviceTime: serviceTime, model: model}
	s.wg.Add(1)
	go s.acceptLoop()
	tb.Cleanup(s.close)
	return s
}

func (s *pacedStub) close() {
	_ = s.ln.Close()
	s.wg.Wait()
}

func (s *pacedStub) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			_ = s.handle(conn)
		}()
	}
}

func (s *pacedStub) handle(conn net.Conn) error {
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	nodeID := ""
	for {
		env, err := cluster.ReadMsg(br)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		switch env.Kind {
		case cluster.KindHello:
			var h cluster.Hello
			if err := cluster.DecodeBody(env, &h); err != nil {
				return err
			}
			nodeID = h.NodeID
			if err := cluster.WriteMsg(bw, cluster.KindHello, cluster.Hello{NodeID: nodeID}); err != nil {
				return err
			}
		case cluster.KindModel:
			if err := cluster.WriteMsg(bw, cluster.KindModel, cluster.ModelBody{Data: s.model}); err != nil {
				return err
			}
		case cluster.KindSample:
			var smp cluster.Sample
			if err := cluster.DecodeBody(env, &smp); err != nil {
				return err
			}
			s.mu.Lock()
			time.Sleep(s.serviceTime)
			s.mu.Unlock()
			est := cluster.Estimate{NodeID: nodeID, Time: smp.Time, PNode: 100, PCPU: 60, PMEM: 25}
			if err := cluster.WriteMsg(bw, cluster.KindEstimate, est); err != nil {
				return err
			}
		case cluster.KindStats:
			if err := cluster.WriteMsg(bw, cluster.KindStats, cluster.Stats{}); err != nil {
				return err
			}
		default:
			if err := cluster.WriteMsg(bw, cluster.KindError, cluster.ErrorBody{Message: "unsupported"}); err != nil {
				return err
			}
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
}

// BenchmarkRouterIngest measures routed sample throughput against 1, 2,
// and 4 paced stub shards (200µs of serialized service time per sample
// per shard). Throughput should scale with the shard count: that is the
// whole point of the fleet layer — with the ring spreading nodes evenly,
// shard service time overlaps instead of queueing.
func BenchmarkRouterIngest(b *testing.B) {
	modelBytes, err := core.Marshal(sharedModel(b))
	if err != nil {
		b.Fatal(err)
	}
	const serviceTime = 200 * time.Microsecond
	const totalNodes = 8
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			top := Topology{}
			for i := 0; i < shards; i++ {
				stub := startPacedStub(b, serviceTime, modelBytes)
				top.Shards = append(top.Shards, Shard{Name: fmt.Sprintf("shard-%d", i), Addr: stub.ln.Addr().String()})
			}
			r, err := NewRouter(top, DefaultTopologyOptions())
			if err != nil {
				b.Fatal(err)
			}
			r.Logf = b.Logf
			if err := r.Listen("127.0.0.1:0"); err != nil {
				b.Fatal(err)
			}
			defer r.Close()

			nodes := balancedNodes(b, r, totalNodes/shards)
			agents := make([]*cluster.Agent, len(nodes))
			for i, node := range nodes {
				ag, err := cluster.Dial(r.Addr(), node)
				if err != nil {
					b.Fatal(err)
				}
				defer ag.Close()
				agents[i] = ag
			}

			pmc := make([]float64, 8)
			var next atomic.Int64
			b.ResetTimer()
			var wg sync.WaitGroup
			for i := range agents {
				wg.Add(1)
				go func(ag *cluster.Agent) {
					defer wg.Done()
					for {
						n := next.Add(1)
						if n > int64(b.N) {
							return
						}
						if _, err := ag.Send(float64(n), pmc, nil); err != nil {
							b.Error(err)
							return
						}
					}
				}(agents[i])
			}
			wg.Wait()
			b.StopTimer()
		})
	}
}

// BenchmarkScatterQuery measures the cluster-wide aggregate against two
// real backends: every known node's series fetched from its owner shard
// and merged in sorted node order.
func BenchmarkScatterQuery(b *testing.B) {
	r, _ := startFleet(b, 2, DefaultTopologyOptions())
	nodes := balancedNodes(b, r, 2)
	const seconds = 30
	for ni, node := range nodes {
		samples := genSamples(b, int64(900+ni), seconds)
		ag, err := cluster.Dial(r.Addr(), node)
		if err != nil {
			b.Fatal(err)
		}
		for _, smp := range samples {
			if _, err := ag.Send(smp.Time, smp.PMC, smp.Measured); err != nil {
				b.Fatal(err)
			}
		}
		ag.Close()
	}
	fa, err := cluster.Dial(r.Addr(), "bench-client")
	if err != nil {
		b.Fatal(err)
	}
	defer fa.Close()
	q := cluster.QueryRequest{Channel: "p_node", From: 0, To: seconds - 1, ResolutionS: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body, err := fa.Query(q)
		if err != nil {
			b.Fatal(err)
		}
		if len(body.Points) != seconds {
			b.Fatalf("%d points, want %d", len(body.Points), seconds)
		}
	}
}
