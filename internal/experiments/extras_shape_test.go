package experiments

import "testing"

func TestAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains several models; skipped in -short")
	}
	ws := benchWorkspace()
	r, err := RunAblations(ws)
	if err != nil {
		t.Fatal(err)
	}
	if r.StaticNoPost.MAPE <= r.StaticFull.MAPE {
		t.Errorf("Algorithm 1 should reduce StaticTRR error: %.2f vs %.2f",
			r.StaticFull.MAPE, r.StaticNoPost.MAPE)
	}
	if r.DynamicNoPNode.MAPE <= r.DynamicFull.MAPE {
		t.Errorf("P'_Node feature should reduce DynamicTRR error: %.2f vs %.2f",
			r.DynamicFull.MAPE, r.DynamicNoPNode.MAPE)
	}
	if r.ARExtrapolation.N == 0 || r.WithActive.N == 0 || r.WithoutActive.N == 0 {
		t.Fatal("missing ablation results")
	}
	if r.Table().String() == "" {
		t.Fatal("empty table")
	}
}

func TestDVFSShape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains several models; skipped in -short")
	}
	r, err := RunDVFS(NewConfig(ScaleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows want 3 (one per ARM DVFS level)", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.PerLevel.N == 0 || row.Mixed.N == 0 {
			t.Fatalf("missing results at %.1f GHz", row.FreqGHz)
		}
		// The documented finding: per-level training is at least as good.
		if row.PerLevel.MAPE > row.Mixed.MAPE*1.1 {
			t.Errorf("%.1f GHz: per-level %.2f unexpectedly worse than mixed %.2f",
				row.FreqGHz, row.PerLevel.MAPE, row.Mixed.MAPE)
		}
	}
}

func TestGPUExtensionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	r, err := RunGPU(NewConfig(ScaleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("%d rows want 5 (4 kernels + aliasing remedy)", len(r.Rows))
	}
	var aliasing, remedy GPURow
	for _, row := range r.Rows {
		switch row.Kernel {
		case "reduction":
			aliasing = row
		case "reduction (2s readings)":
			remedy = row
		default:
			// Non-aliased kernels: TRR beats the counter-only baseline.
			if row.TRR.MAPE >= row.LinearCO.MAPE {
				t.Errorf("%s: TRR %.2f should beat counter-only LR %.2f",
					row.Kernel, row.TRR.MAPE, row.LinearCO.MAPE)
			}
		}
	}
	// The documented aliasing failure and its remedy.
	if aliasing.TRR.MAPE < 2*remedy.TRR.MAPE {
		t.Errorf("faster readings should strongly reduce the aliasing error: %.2f vs %.2f",
			aliasing.TRR.MAPE, remedy.TRR.MAPE)
	}
}
