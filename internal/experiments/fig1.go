package experiments

import (
	"fmt"

	"highrpm/internal/platform"
	"highrpm/internal/workload"
)

// Fig1Scenario is one power-capping configuration of the motivation figure.
type Fig1Scenario struct {
	Label        string
	ReadInterval float64 // PI, seconds
	ActInterval  float64 // AI, seconds
	Result       *platform.CappingResult
}

// Fig1Result holds the Fig. 1 scenarios.
type Fig1Result struct {
	Scenarios []Fig1Scenario
	CapWatts  float64
}

// RunFig1 reproduces the Fig. 1 motivation: Graph500 BFS under a power cap
// with varying power-reading intervals (PI) and capping-action intervals
// (AI) on the ARM platform. Coarse readings miss spikes; slow actions let
// peak power rise toward the uncapped level and add kilojoule-scale energy.
func RunFig1(cfg Config) (*Fig1Result, error) {
	bench, err := workload.Find("Graph500/bfs")
	if err != nil {
		return nil, err
	}
	// A longer program makes the energy differences visible.
	bench.Repeat = 20
	armCfg := platform.ARMConfig()
	// Cap chosen below the workload's natural peak so capping must act.
	const cap = 95.0
	scenarios := []Fig1Scenario{
		{Label: "(a) PI=1s  AI=1s", ReadInterval: 1, ActInterval: 1},
		{Label: "(b) PI=10s AI=1s", ReadInterval: 10, ActInterval: 1},
		{Label: "(c) PI=1s  AI=1s", ReadInterval: 1, ActInterval: 1},
		{Label: "(d) PI=1s  AI=10s", ReadInterval: 1, ActInterval: 10},
		{Label: "(e) PI=1s  AI=30s", ReadInterval: 1, ActInterval: 30},
	}
	out := &Fig1Result{CapWatts: cap}
	for _, sc := range scenarios {
		node, err := platform.NewNode(armCfg, cfg.Seed+7)
		if err != nil {
			return nil, err
		}
		res, err := platform.RunCapped(node, bench, platform.CappingConfig{
			CapWatts:     cap,
			ReadInterval: sc.ReadInterval,
			ActInterval:  sc.ActInterval,
		})
		if err != nil {
			return nil, err
		}
		sc.Result = res
		out.Scenarios = append(out.Scenarios, sc)
	}
	return out, nil
}

// SpikesObserved counts the monitor readings above the cap — the "spiking
// points" of Fig. 1(a) that a coarse reading interval fails to capture.
func (r *Fig1Result) SpikesObserved(sc Fig1Scenario) int {
	var n int
	for _, rd := range sc.Result.Readings {
		if rd.Power > r.CapWatts {
			n++
		}
	}
	return n
}

// Table renders the Fig. 1 summary rows.
func (r *Fig1Result) Table() *Table {
	t := &Table{
		ID:     "fig1",
		Title:  fmt.Sprintf("Fig. 1: Graph500 power capping at %.0f W, varying PI and AI", r.CapWatts),
		Header: []string{"Scenario", "Peak W", "Energy kJ", "Over-cap s (actual)", "Over-cap readings (seen)", "Runtime s"},
	}
	for _, sc := range r.Scenarios {
		t.AddRow(sc.Label,
			f1(sc.Result.PeakW),
			f2(sc.Result.EnergyJ/1000),
			f1(sc.Result.OverCapSeconds),
			fmt.Sprintf("%d", r.SpikesObserved(sc)),
			f1(sc.Result.CompletionSeconds))
	}
	t.Notes = append(t.Notes,
		"shape target: (b) observes far fewer over-cap spikes than (a) despite identical actual power (PI hides sudden changes);",
		"peak power, over-cap time and energy grow (c) -> (d) -> (e) as AI lengthens")
	return t
}
