package experiments

import "testing"

func TestGovernorExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model and runs 12 governed executions; skipped in -short")
	}
	r, err := RunGovernor(NewConfig(ScaleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("%d stacks want 4", len(r.Rows))
	}
	byKey := map[string]int{}
	for i, row := range r.Rows {
		byKey[row.Source+"/"+row.Policy] = i
		if row.PeakW <= 0 || row.CompletionSeconds <= 0 {
			t.Fatalf("row %d incomplete: %+v", i, row)
		}
		// Every governed run must stay below the uncapped peak.
		if row.PeakW > r.UncappedPeakW {
			t.Fatalf("%s/%s peak %.1f exceeds uncapped %.1f",
				row.Source, row.Policy, row.PeakW, r.UncappedPeakW)
		}
	}
	raw, ok1 := byKey["raw-im/hysteresis"]
	hr, ok2 := byKey["highrpm/hysteresis"]
	pred, ok3 := byKey["highrpm/predictive"]
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("missing stacks: %v", byKey)
	}
	// The headline: fresher estimates cut over-cap time at the same policy,
	// and slope prediction cuts it further.
	if r.Rows[hr].OverCapSeconds > r.Rows[raw].OverCapSeconds {
		t.Errorf("highrpm source over-cap %.1f should not exceed raw IM %.1f",
			r.Rows[hr].OverCapSeconds, r.Rows[raw].OverCapSeconds)
	}
	if r.Rows[pred].OverCapSeconds > r.Rows[hr].OverCapSeconds {
		t.Errorf("predictive over-cap %.1f should not exceed plain hysteresis %.1f",
			r.Rows[pred].OverCapSeconds, r.Rows[hr].OverCapSeconds)
	}
	if r.Table().String() == "" {
		t.Fatal("empty table")
	}
}
