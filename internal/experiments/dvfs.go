package experiments

import (
	"highrpm/internal/core"
	"highrpm/internal/dataset"
	"highrpm/internal/stats"
)

// DVFSResult compares two deployment strategies under frequency scaling:
// Fig. 9 trains HighRPM separately per DVFS level, but a production
// deployment wants one model that survives governor activity. The mixed
// model trains once on traces spanning all levels (CPU_CYCLES exposes the
// clock to the models) and is evaluated at each level against the
// per-level-trained models.
type DVFSResult struct {
	Rows []DVFSRow
}

// DVFSRow is one frequency level's comparison.
type DVFSRow struct {
	FreqGHz  float64
	PerLevel stats.Metrics // SRR P_CPU, model trained at this level only
	Mixed    stats.Metrics // SRR P_CPU, single model trained across levels
}

// RunDVFS evaluates both strategies on unseen Graph500 at every ARM DVFS
// level.
func RunDVFS(cfg Config) (*DVFSResult, error) {
	var combo dataset.Combo
	for _, c := range dataset.Combos() {
		if c.TestSuite == "Graph500" {
			combo = c
		}
	}

	// Mixed training set: the six training suites, budget split evenly
	// across the DVFS levels.
	levels := cfg.Platform.FreqLevels
	mixedTrain := &dataset.Set{}
	for li, f := range levels {
		gen := cfg.genConfig()
		gen.Frequency = f
		gen.Seed = cfg.Seed + int64(li)*1009
		gen.SamplesPerSuite = cfg.SamplesPerSuite / len(levels)
		if gen.SamplesPerSuite < 70 {
			gen.SamplesPerSuite = 70
		}
		for _, s := range combo.TrainSuites {
			set, err := dataset.GenerateSuite(gen, s)
			if err != nil {
				return nil, err
			}
			mixedTrain.Append(set)
		}
	}
	opts := cfg.coreOptions()
	mixedStatic, err := core.FitStaticTRR(mixedTrain, opts.Static)
	if err != nil {
		return nil, err
	}
	mixedSRR, err := core.FitSRR(mixedTrain, nil, opts.SRR)
	if err != nil {
		return nil, err
	}

	out := &DVFSResult{}
	for _, f := range levels {
		gen := cfg.genConfig()
		gen.Frequency = f
		sp, err := dataset.BuildSplit(gen, combo, false)
		if err != nil {
			return nil, err
		}
		idx := sp.Test.MeasuredIndices(cfg.MissInterval)

		// Per-level model (the Fig. 9 strategy).
		plStatic, err := core.FitStaticTRR(sp.Train, opts.Static)
		if err != nil {
			return nil, err
		}
		plSRR, err := core.FitSRR(sp.Train, nil, opts.SRR)
		if err != nil {
			return nil, err
		}
		plRestored, err := plStatic.Restore(sp.Test, idx, nil)
		if err != nil {
			return nil, err
		}
		plCPU, _ := plSRR.Evaluate(sp.Test, plRestored)

		// Mixed model.
		mixRestored, err := mixedStatic.Restore(sp.Test, idx, nil)
		if err != nil {
			return nil, err
		}
		mixCPU, _ := mixedSRR.Evaluate(sp.Test, mixRestored)

		out.Rows = append(out.Rows, DVFSRow{FreqGHz: f, PerLevel: plCPU, Mixed: mixCPU})
	}
	return out, nil
}

// Table renders the DVFS strategy comparison.
func (r *DVFSResult) Table() *Table {
	t := &Table{
		ID:     "dvfs",
		Title:  "DVFS deployment: one mixed-frequency model vs per-level training (Graph500, unseen, P_CPU)",
		Header: []string{"Frequency GHz", "Per-level MAPE(%)", "Per-level MAE", "Mixed MAPE(%)", "Mixed MAE"},
	}
	for _, row := range r.Rows {
		t.AddRow(f2(row.FreqGHz), f2(row.PerLevel.MAPE), f2(row.PerLevel.MAE), f2(row.Mixed.MAPE), f2(row.Mixed.MAE))
	}
	t.Notes = append(t.Notes,
		"finding: per-level training wins at every level, most at the lowest clock — the mixed model's",
		"squared-error training is dominated by the high-frequency/high-power regime, inflating relative",
		"error at low power; deployments that cap aggressively should train per level (or reweight)")
	return t
}
