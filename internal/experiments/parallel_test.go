package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunAndRenderParallel runs two independent experiments concurrently
// through the bounded-semaphore path and checks the rendered output matches
// the serial run exactly — tables must come out in the order the ids were
// given, whatever order the experiments finish in.
func TestRunAndRenderParallel(t *testing.T) {
	cfg := NewConfig(ScaleBench)
	cfg.Workers = 1
	ids := []string{"fig2", "fig1"}

	var serial bytes.Buffer
	if err := RunAndRender(NewWorkspace(cfg), ids, &serial); err != nil {
		t.Fatal(err)
	}
	var par bytes.Buffer
	if err := RunAndRenderParallel(NewWorkspace(cfg), ids, &par, 2); err != nil {
		t.Fatal(err)
	}
	if serial.String() != par.String() {
		t.Errorf("parallel output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial.String(), par.String())
	}
}

func TestRunAndRenderParallelUnknownID(t *testing.T) {
	cfg := NewConfig(ScaleBench)
	var out bytes.Buffer
	err := RunAndRenderParallel(NewWorkspace(cfg), []string{"nope"}, &out, 4)
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("want unknown-experiment error naming the id, got %v", err)
	}
}
