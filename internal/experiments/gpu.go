package experiments

import (
	"highrpm/internal/gpuext"
	"highrpm/internal/linmodel"
	"highrpm/internal/mat"
	"highrpm/internal/model"
	"highrpm/internal/stats"
)

// GPUResult holds the §6.4.4 extension experiment: temporal restoration of
// sparse GPU power readings, per kernel, against a counter-only linear
// baseline.
type GPUResult struct {
	Rows []GPURow
}

// GPURow is one kernel's restoration accuracy.
type GPURow struct {
	Kernel   string
	TRR      stats.Metrics
	LinearCO stats.Metrics // counter-only linear model
}

// RunGPU trains the GPU TRR on a kernel mix and evaluates restoration on
// each kernel individually (training device ≠ test device seed, so wander
// histories differ).
func RunGPU(cfg Config) (*GPUResult, error) {
	dev, err := gpuext.NewDevice(gpuext.DefaultDevice(), cfg.Seed+31)
	if err != nil {
		return nil, err
	}
	perDur := float64(cfg.SamplesPerSuite) / 2
	if perDur < 120 {
		perDur = 120
	}
	train := dev.RunMix(gpuext.Kernels(), perDur)
	trr, err := gpuext.FitTRR(train, cfg.MissInterval)
	if err != nil {
		return nil, err
	}
	// Counter-only linear baseline on the same training data.
	x := mat.NewDense(len(train.Samples), gpuext.NumCounters)
	for i, s := range train.Samples {
		copy(x.Row(i), s.Counters[:])
	}
	lr := &model.ScaledRegressor{Inner: linmodel.NewLinear()}
	if err := lr.Fit(x, train.Power()); err != nil {
		return nil, err
	}

	out := &GPUResult{}
	evalKernel := func(k gpuext.Kernel, label string, t *gpuext.TRR) error {
		testDev, err := gpuext.NewDevice(gpuext.DefaultDevice(), cfg.Seed+97)
		if err != nil {
			return err
		}
		test := testDev.Run(k, 200)
		m, err := t.Evaluate(test)
		if err != nil {
			return err
		}
		pred := make([]float64, len(test.Samples))
		for i, s := range test.Samples {
			pred[i] = lr.Predict(s.Counters[:])
		}
		out.Rows = append(out.Rows, GPURow{
			Kernel:   label,
			TRR:      m,
			LinearCO: stats.Evaluate(test.Power(), pred),
		})
		return nil
	}
	var reduction gpuext.Kernel
	for _, k := range gpuext.Kernels() {
		if k.Name == "reduction" {
			reduction = k
		}
		if err := evalKernel(k, k.Name, trr); err != nil {
			return nil, err
		}
	}
	// The reduction kernel's 16 s relaunch period aliases the 10 s reading
	// interval and defeats trend-based restoration — the GPU analogue of
	// the §6.4.6 limitation. Reading faster than the kernel's shortest
	// phase (2 s vs its 4 s trough) removes the aliasing; the extra row
	// demonstrates the remedy.
	dev5, err := gpuext.NewDevice(gpuext.DefaultDevice(), cfg.Seed+31)
	if err != nil {
		return nil, err
	}
	trr5, err := gpuext.FitTRR(dev5.RunMix(gpuext.Kernels(), perDur), 2)
	if err != nil {
		return nil, err
	}
	if err := evalKernel(reduction, "reduction (2s readings)", trr5); err != nil {
		return nil, err
	}
	return out, nil
}

// Table renders the GPU extension results.
func (r *GPUResult) Table() *Table {
	t := &Table{
		ID:     "gpu",
		Title:  "§6.4.4 extension: GPU power restoration (0.1 Sa/s readings -> 1 Sa/s)",
		Header: []string{"Kernel", "TRR MAPE(%)", "TRR RMSE", "Counter-only LR MAPE(%)", "LR RMSE"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Kernel, f2(row.TRR.MAPE), f2(row.TRR.RMSE), f2(row.LinearCO.MAPE), f2(row.LinearCO.RMSE))
	}
	t.Notes = append(t.Notes,
		"expected: the StaticTRR recipe transfers to GPU counters and beats counter-only modeling, EXCEPT on",
		"kernels whose relaunch period aliases the reading interval (reduction: 16 s vs 10 s) — the GPU analogue",
		"of the paper's §6.4.6 limitation; reading at 2 s — faster than the kernel's shortest phase — removes it (last row)")
	return t
}
