package experiments

import (
	"highrpm/internal/core"
	"highrpm/internal/stats"
)

// Fig7Point is one miss_interval's spline and StaticTRR accuracy.
type Fig7Point struct {
	MissInterval int
	Spline       stats.Metrics
	StaticTRR    stats.Metrics
}

// Fig7Result holds the miss_interval sweep for the offline models.
type Fig7Result struct {
	Points []Fig7Point
}

// RunFig7 reproduces Fig. 7: the spline is most precise at a 10 s
// miss_interval but loses short-term power changes as the interval grows;
// StaticTRR's PMC residual model degrades more slowly.
func RunFig7(ws *Workspace) (*Fig7Result, error) {
	cfg := ws.Config()
	combo := cfg.combos()[0]
	sp, err := ws.Split(combo, false)
	if err != nil {
		return nil, err
	}
	out := &Fig7Result{}
	for _, miss := range []int{10, 30, 60, 100} {
		if sp.Test.Len() < 3*miss {
			break
		}
		opts := cfg.coreOptions().Static
		opts.MissInterval = miss
		st, err := core.FitStaticTRR(sp.Train, opts)
		if err != nil {
			return nil, err
		}
		idx := sp.Test.MeasuredIndices(miss)
		spl, err := core.SplineOnly(sp.Test, idx, nil)
		if err != nil {
			return nil, err
		}
		est, err := st.Restore(sp.Test, idx, nil)
		if err != nil {
			return nil, err
		}
		truth := sp.Test.NodePower()
		out.Points = append(out.Points, Fig7Point{
			MissInterval: miss,
			Spline:       stats.Evaluate(truth, spl),
			StaticTRR:    stats.Evaluate(truth, est),
		})
	}
	return out, nil
}

// Table renders the Fig. 7 series.
func (r *Fig7Result) Table() *Table {
	t := &Table{
		ID:     "fig7",
		Title:  "Fig. 7: Impact of miss_interval on the spline model and StaticTRR (node power)",
		Header: []string{"miss_interval (s)", "Spline MAPE(%)", "Spline RMSE", "StaticTRR MAPE(%)", "StaticTRR RMSE"},
	}
	for _, p := range r.Points {
		t.AddRow(f1(float64(p.MissInterval)), f2(p.Spline.MAPE), f2(p.Spline.RMSE), f2(p.StaticTRR.MAPE), f2(p.StaticTRR.RMSE))
	}
	t.Notes = append(t.Notes,
		"shape target: spline best at 10 s and degrading with the interval; StaticTRR degrades more slowly")
	return t
}
