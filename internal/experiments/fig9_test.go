package experiments

import "testing"

func TestFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains per-frequency models; skipped in -short")
	}
	r, err := RunFig9(NewConfig(ScaleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 3 {
		t.Fatalf("%d frequency points want 3", len(r.Points))
	}
	for i, p := range r.Points {
		if p.CPU.N == 0 || p.MEM.N == 0 || p.CPUBasis.N == 0 {
			t.Fatalf("point %d incomplete", i)
		}
		if i > 0 && p.FreqGHz <= r.Points[i-1].FreqGHz {
			t.Fatal("frequencies must ascend")
		}
	}
	// §6.4.2 shape: the top frequency is the hardest for P_CPU.
	lo, hi := r.Points[0], r.Points[len(r.Points)-1]
	if hi.CPU.MAPE <= lo.CPU.MAPE*0.8 {
		t.Errorf("P_CPU should get harder with frequency: %.2f @%.1f vs %.2f @%.1f",
			lo.CPU.MAPE, lo.FreqGHz, hi.CPU.MAPE, hi.FreqGHz)
	}
	// And HighRPM stays at or below the PMC-only baseline at the top level.
	if hi.CPU.MAPE > hi.CPUBasis.MAPE*1.1 {
		t.Errorf("SRR %.2f should not exceed the NN baseline %.2f at max frequency",
			hi.CPU.MAPE, hi.CPUBasis.MAPE)
	}
	if r.Table().String() == "" {
		t.Fatal("empty table")
	}
}

func TestX86ExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full x86 evaluation; skipped in -short")
	}
	r, err := RunX86(NewConfig(ScaleBench))
	if err != nil {
		t.Fatal(err)
	}
	dyn := r.NodeMetric("DynamicTRR")
	if dyn.N == 0 {
		t.Fatal("no x86 DynamicTRR result")
	}
	// Same headline as the ARM table: DynamicTRR beats every baseline.
	for _, b := range Baselines() {
		if m := r.TRR.Unseen[b.Name]; dyn.MAPE >= m.MAPE {
			t.Errorf("x86: DynamicTRR %.2f must beat %s %.2f", dyn.MAPE, b.Name, m.MAPE)
		}
	}
	// SRR leads on P_CPU as on ARM.
	srr := r.SRR.CPUUnseen["SRR"]
	for _, b := range Baselines() {
		if m := r.SRR.CPUUnseen[b.Name]; srr.MAPE >= m.MAPE {
			t.Errorf("x86: SRR P_CPU %.2f must beat %s %.2f", srr.MAPE, b.Name, m.MAPE)
		}
	}
	if r.Table9().String() == "" {
		t.Fatal("empty table")
	}
}
