package experiments

import (
	"strings"
	"testing"
)

func benchWorkspace() *Workspace {
	cfg := NewConfig(ScaleBench)
	return NewWorkspace(cfg)
}

func TestConfigScales(t *testing.T) {
	b, q, f := NewConfig(ScaleBench), NewConfig(ScaleQuick), NewConfig(ScaleFull)
	if !(b.SamplesPerSuite < q.SamplesPerSuite && q.SamplesPerSuite <= f.SamplesPerSuite) {
		t.Fatal("scales must grow")
	}
	if f.MaxCombos != 0 {
		t.Fatal("full scale must run all combos")
	}
	if len(f.combos()) != 7 {
		t.Fatalf("full combos = %d", len(f.combos()))
	}
	if len(b.combos()) != 1 {
		t.Fatalf("bench combos = %d", len(b.combos()))
	}
}

func TestSeenVariants(t *testing.T) {
	cfg := NewConfig(ScaleBench)
	if len(cfg.seenVariants()) != 2 {
		t.Fatal("default must evaluate seen and unseen")
	}
	cfg.UnseenOnly = true
	if v := cfg.seenVariants(); len(v) != 1 || v[0] {
		t.Fatal("UnseenOnly must evaluate only unseen")
	}
}

func TestWorkspaceCachesSplits(t *testing.T) {
	ws := benchWorkspace()
	combo := ws.Config().combos()[0]
	a, err := ws.Split(combo, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ws.Split(combo, false)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("workspace must cache splits")
	}
}

func TestRegistryComplete(t *testing.T) {
	// Every paper artifact has a registered experiment.
	for _, id := range []string{"fig1", "fig2", "tab5", "tab7", "tab9", "fig7", "fig8", "fig9", "hyper", "overhead", "jitter", "ablation", "gpu", "dvfs", "governor"} {
		if Describe(id) == "" {
			t.Fatalf("experiment %s not registered", id)
		}
	}
	if len(DefaultOrder()) != len(IDs()) {
		t.Fatalf("DefaultOrder lists %d experiments, registry has %d", len(DefaultOrder()), len(IDs()))
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run(benchWorkspace(), "nope"); err == nil {
		t.Fatal("expected unknown-experiment error")
	}
}

func TestBaselinesMatchTable4(t *testing.T) {
	bs := Baselines()
	if len(bs) != 12 {
		t.Fatalf("Table 4 lists 12 baselines, got %d", len(bs))
	}
	counts := map[string]int{}
	for _, b := range bs {
		counts[b.Type]++
		if (b.New == nil) == (b.NewSeq == nil) {
			t.Fatalf("%s must be exactly one of tabular/sequence", b.Name)
		}
	}
	if counts["Linear"] != 4 || counts["Nonlinear"] != 6 || counts["RNN"] != 2 {
		t.Fatalf("baseline groups = %v want 4/6/2", counts)
	}
}

func TestFig2Shape(t *testing.T) {
	r, err := RunFig2(NewConfig(ScaleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Runs) != 2 {
		t.Fatalf("%d runs", len(r.Runs))
	}
	var fft, stream Fig2Run
	for _, run := range r.Runs {
		if strings.Contains(run.Benchmark, "FFT") {
			fft = run
		} else {
			stream = run
		}
	}
	if fft.Dominant != "CPU" {
		t.Fatalf("FFT dominated by %s, paper says CPU", fft.Dominant)
	}
	if stream.Dominant != "MEM" {
		t.Fatalf("Stream dominated by %s, paper says MEM", stream.Dominant)
	}
	// Peripheral draw ~25 W on both.
	for _, run := range []Fig2Run{fft, stream} {
		if run.AvgOther < 20 || run.AvgOther > 30 {
			t.Fatalf("%s other power %g W, paper says ~25 W", run.Benchmark, run.AvgOther)
		}
	}
	if r.Table().String() == "" {
		t.Fatal("empty table")
	}
}

func TestFig1Shape(t *testing.T) {
	r, err := RunFig1(NewConfig(ScaleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Scenarios) != 5 {
		t.Fatalf("%d scenarios", len(r.Scenarios))
	}
	a, b := r.Scenarios[0], r.Scenarios[1]
	// Coarser PI must observe far fewer over-cap spikes.
	if sa, sb := r.SpikesObserved(a), r.SpikesObserved(b); sb*3 > sa {
		t.Fatalf("PI=10s observed %d spikes vs %d at PI=1s — should hide most", sb, sa)
	}
	// Peak power grows with the action interval (c→e).
	c, e := r.Scenarios[2], r.Scenarios[4]
	if e.Result.PeakW <= c.Result.PeakW {
		t.Fatalf("AI=30 peak %g must exceed AI=1 peak %g", e.Result.PeakW, c.Result.PeakW)
	}
	if e.Result.EnergyJ <= c.Result.EnergyJ {
		t.Fatalf("AI=30 energy %g must exceed AI=1 %g", e.Result.EnergyJ, c.Result.EnergyJ)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{ID: "x", Title: "T", Header: []string{"a", "bb"}}
	tbl.AddRow("1", "2")
	tbl.Notes = append(tbl.Notes, "n")
	out := tbl.String()
	for _, want := range []string{"T", "a", "bb", "1", "2", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}
