package experiments

import (
	"time"

	"highrpm/internal/core"
	"highrpm/internal/stats"
)

// HyperPoint is one hyperparameter assignment's accuracy (§6.4.3).
type HyperPoint struct {
	Label string
	Node  stats.Metrics
	CPU   stats.Metrics
}

// HyperResult holds the §6.4.3 hyperparametric analysis.
type HyperResult struct {
	LSTMLayers []HyperPoint
	SRRHidden  []HyperPoint
}

// RunHyper reproduces the §6.4.3 analysis: DynamicTRR accuracy over the
// number of LSTM layers (paper: best at two) and SRR accuracy over hidden
// width (paper: deeper/wider dilutes the node-power signal).
func RunHyper(ws *Workspace) (*HyperResult, error) {
	cfg := ws.Config()
	sp, err := ws.Split(cfg.combos()[0], false)
	if err != nil {
		return nil, err
	}
	out := &HyperResult{}
	for _, layers := range []int{1, 2, 4} {
		opts := cfg.coreOptions().Dynamic
		opts.Layers = layers
		dyn, err := core.FitDynamicTRR(sp.Train, opts)
		if err != nil {
			return nil, err
		}
		m, err := dyn.Evaluate(sp.Test)
		if err != nil {
			return nil, err
		}
		out.LSTMLayers = append(out.LSTMLayers, HyperPoint{Label: label("layers", layers), Node: m})
	}
	st, err := core.FitStaticTRR(sp.Train, cfg.coreOptions().Static)
	if err != nil {
		return nil, err
	}
	idx := sp.Test.MeasuredIndices(cfg.MissInterval)
	restored, err := st.Restore(sp.Test, idx, nil)
	if err != nil {
		return nil, err
	}
	for _, hidden := range []int{8, 32, 128} {
		opts := cfg.coreOptions().SRR
		opts.Hidden = hidden
		srr, err := core.FitSRR(sp.Train, nil, opts)
		if err != nil {
			return nil, err
		}
		cpuM, _ := srr.Evaluate(sp.Test, restored)
		out.SRRHidden = append(out.SRRHidden, HyperPoint{Label: label("hidden", hidden), CPU: cpuM})
	}
	return out, nil
}

func label(name string, v int) string {
	return name + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Table renders the hyperparameter sweep.
func (r *HyperResult) Table() *Table {
	t := &Table{
		ID:     "hyper",
		Title:  "§6.4.3: Hyperparametric analysis",
		Header: []string{"Knob", "P_Node MAPE(%)", "P_CPU MAPE(%)"},
	}
	for _, p := range r.LSTMLayers {
		t.AddRow("DynamicTRR "+p.Label, f2(p.Node.MAPE), "-")
	}
	for _, p := range r.SRRHidden {
		t.AddRow("SRR "+p.Label, "-", f2(p.CPU.MAPE))
	}
	t.Notes = append(t.Notes, "shape target: two LSTM layers near-optimal; modest SRR width suffices")
	return t
}

// OverheadResult holds the §6.4.5 cost measurements.
type OverheadResult struct {
	OfflineTrain   time.Duration
	FineTune       time.Duration
	PredictNode    time.Duration // per-sample DynamicTRR latency
	PredictSpatial time.Duration // per-sample SRR latency
	InitialSamples int
	ReinforceCount int
}

// RunOverhead reproduces the §6.4.5 cost claims: offline training well
// under 10 minutes, fine-tuning around 2 s, prediction latency under 1 ms.
func RunOverhead(ws *Workspace) (*OverheadResult, error) {
	cfg := ws.Config()
	sp, err := ws.Split(cfg.combos()[0], false)
	if err != nil {
		return nil, err
	}
	opts := cfg.coreOptions()
	start := time.Now()
	h, err := core.Train(sp.Train, opts)
	if err != nil {
		return nil, err
	}
	out := &OverheadResult{
		OfflineTrain:   time.Since(start),
		InitialSamples: h.TrainStats.InitialSamples,
		ReinforceCount: h.TrainStats.ReinforceCount,
	}

	// Fine-tune cost: one DynamicTRR refinement pass.
	idx := sp.Test.MeasuredIndices(cfg.MissInterval)
	start = time.Now()
	if _, err := h.Dynamic.Run(sp.Test.Slice(0, 3*cfg.MissInterval), idx[:3], nil); err != nil {
		return nil, err
	}
	out.FineTune = time.Since(start)

	// Prediction latency.
	probe := sp.Test.Slice(0, 2*cfg.MissInterval)
	h.Dynamic.Opts.FineTuneOnline = false
	start = time.Now()
	if _, err := h.Dynamic.Run(probe, probe.MeasuredIndices(cfg.MissInterval), nil); err != nil {
		return nil, err
	}
	out.PredictNode = time.Since(start) / time.Duration(probe.Len())

	start = time.Now()
	const reps = 1000
	for i := 0; i < reps; i++ {
		h.SRR.Predict(probe.Samples[0].PMC, probe.Samples[0].PNode)
	}
	out.PredictSpatial = time.Since(start) / reps
	return out, nil
}

// Table renders the overhead measurements.
func (r *OverheadResult) Table() *Table {
	t := &Table{
		ID:     "overhead",
		Title:  "§6.4.5: Training and prediction overhead",
		Header: []string{"Cost", "Measured", "Paper claim"},
	}
	t.AddRow("offline training", r.OfflineTrain.Round(time.Millisecond).String(), "< 10 min")
	t.AddRow("online fine-tune", r.FineTune.Round(time.Millisecond).String(), "< 2 s")
	t.AddRow("node prediction latency", r.PredictNode.Round(time.Microsecond).String(), "< 1 ms")
	t.AddRow("component prediction latency", r.PredictSpatial.Round(time.Microsecond).String(), "< 1 ms")
	return t
}

// JitterResult holds the §6.4.6 robustness probe.
type JitterResult struct {
	Clean    stats.Metrics
	Jittered stats.Metrics
	Dropped  stats.Metrics
}

// RunJitter reproduces the §6.4.6 limitation: when the miss_interval
// fluctuates (network congestion) or readings drop, DynamicTRR's windows no
// longer contain exactly one measurement and accuracy degrades.
func RunJitter(ws *Workspace) (*JitterResult, error) {
	cfg := ws.Config()
	sp, err := ws.Split(cfg.combos()[0], false)
	if err != nil {
		return nil, err
	}
	opts := cfg.coreOptions()
	dyn, err := core.FitDynamicTRR(sp.Train, opts.Dynamic)
	if err != nil {
		return nil, err
	}
	truth := sp.Test.NodePower()
	clean := sp.Test.MeasuredIndices(cfg.MissInterval)
	est, err := dyn.Run(sp.Test, clean, nil)
	if err != nil {
		return nil, err
	}
	out := &JitterResult{Clean: stats.Evaluate(truth, est)}

	// Jitter: wobble each measurement index by ±40% of the interval.
	jit := make([]int, len(clean))
	for k, i := range clean {
		d := (k%3 - 1) * cfg.MissInterval * 2 / 5
		j := i + d
		if j < 0 {
			j = 0
		}
		if j >= sp.Test.Len() {
			j = sp.Test.Len() - 1
		}
		if k > 0 && j <= jit[k-1] {
			j = jit[k-1] + 1
		}
		jit[k] = j
	}
	est, err = dyn.Run(sp.Test, jit, nil)
	if err != nil {
		return nil, err
	}
	out.Jittered = stats.Evaluate(truth, est)

	// Drops: lose every third reading.
	var dropped []int
	for k, i := range clean {
		if k%3 != 2 {
			dropped = append(dropped, i)
		}
	}
	est, err = dyn.Run(sp.Test, dropped, nil)
	if err != nil {
		return nil, err
	}
	out.Dropped = stats.Evaluate(truth, est)
	return out, nil
}

// Table renders the robustness probe.
func (r *JitterResult) Table() *Table {
	t := &Table{
		ID:     "jitter",
		Title:  "§6.4.6: DynamicTRR robustness to fluctuating miss_interval",
		Header: []string{"Sensor behaviour", "MAPE(%)", "RMSE", "MAE"},
	}
	t.AddRow("clean (fixed interval)", f2(r.Clean.MAPE), f2(r.Clean.RMSE), f2(r.Clean.MAE))
	t.AddRow("jittered timestamps", f2(r.Jittered.MAPE), f2(r.Jittered.RMSE), f2(r.Jittered.MAE))
	t.AddRow("every 3rd reading dropped", f2(r.Dropped.MAPE), f2(r.Dropped.RMSE), f2(r.Dropped.MAE))
	t.Notes = append(t.Notes,
		"paper §6.4.6 expects degradation; this implementation's trend-extrapolated P'_Node feature",
		"degrades gracefully, so jitter/drops stay within noise of the clean sensor (see EXPERIMENTS.md)")
	return t
}
