package experiments

import (
	"highrpm/internal/core"
	"highrpm/internal/dataset"
	"highrpm/internal/interp"
	"highrpm/internal/neural"
	"highrpm/internal/stats"
)

// AblationResult holds the design-choice ablations DESIGN.md calls out.
// They are not paper artifacts; they justify HighRPM's structure on this
// reproduction:
//
//   - StaticTRR without Algorithm 1 (raw spline+residual sum),
//   - DynamicTRR without the P'_Node input feature (PMC-only LSTM windows),
//   - the framework without the active-learning stage,
//   - pure AR extrapolation in place of the TRR models.
type AblationResult struct {
	StaticFull      stats.Metrics // spline + ResModel + Algorithm 1
	StaticNoPost    stats.Metrics // spline + ResModel, no post-processing
	DynamicFull     stats.Metrics // windows carry P'_Node
	DynamicNoPNode  stats.Metrics // PMC-only windows
	WithActive      stats.Metrics // SRR P_CPU with active learning
	WithoutActive   stats.Metrics // SRR P_CPU without active learning
	ARExtrapolation stats.Metrics // AR(5) forecasting between readings
}

// RunAblations evaluates the ablations on the first unseen split.
func RunAblations(ws *Workspace) (*AblationResult, error) {
	cfg := ws.Config()
	sp, err := ws.Split(cfg.combos()[0], false)
	if err != nil {
		return nil, err
	}
	truth := sp.Test.NodePower()
	idx := sp.Test.MeasuredIndices(cfg.MissInterval)
	out := &AblationResult{}

	// StaticTRR with and without Algorithm 1.
	st, err := core.FitStaticTRR(sp.Train, cfg.coreOptions().Static)
	if err != nil {
		return nil, err
	}
	full, err := st.Restore(sp.Test, idx, nil)
	if err != nil {
		return nil, err
	}
	out.StaticFull = stats.Evaluate(truth, full)
	spl, err := core.SplineOnly(sp.Test, idx, nil)
	if err != nil {
		return nil, err
	}
	raw := make([]float64, len(spl))
	for i := range raw {
		raw[i] = spl[i] + st.Res.Predict(sp.Test.Samples[i].PMC)
	}
	out.StaticNoPost = stats.Evaluate(truth, raw)

	// DynamicTRR with and without the P'_Node feature.
	dyn, err := core.FitDynamicTRR(sp.Train, cfg.coreOptions().Dynamic)
	if err != nil {
		return nil, err
	}
	est, err := dyn.Run(sp.Test, idx, nil)
	if err != nil {
		return nil, err
	}
	out.DynamicFull = stats.Evaluate(truth, est)
	out.DynamicNoPNode, err = dynamicWithoutPNode(cfg, sp)
	if err != nil {
		return nil, err
	}

	// Active learning on/off: compare SRR P_CPU with the restored node
	// feature, the path active learning specifically tunes.
	out.WithActive, out.WithoutActive, err = activeLearningAblation(cfg, sp)
	if err != nil {
		return nil, err
	}

	// AR extrapolation between measurements.
	out.ARExtrapolation = arBetweenReadings(sp, idx, cfg.MissInterval)
	return out, nil
}

// dynamicWithoutPNode trains the same LSTM on PMC-only windows.
func dynamicWithoutPNode(cfg Config, sp *dataset.Split) (stats.Metrics, error) {
	miss := cfg.MissInterval
	wins := pmcWindows(sp.Train, targetNode, miss)
	wins = dataset.SubsampleWindows(wins, cfg.RNNMaxWindows)
	seqs, targets := dataset.WindowsToSeqs(wins)
	net := neural.NewLSTM(16, 2, cfg.Seed+5)
	net.Epochs = cfg.RNNEpochs
	if err := net.FitSeq(seqs, targets); err != nil {
		return stats.Metrics{}, err
	}
	truth := sp.Test.NodePower()
	pred := make([]float64, sp.Test.Len())
	for i := range pred {
		out := net.PredictSeq(pmcWindowAt(sp.Test, i, miss))
		pred[i] = out[len(out)-1]
	}
	// Measured points would be available in deployment either way.
	for _, i := range sp.Test.MeasuredIndices(miss) {
		pred[i] = truth[i]
	}
	return stats.Evaluate(truth, pred), nil
}

// activeLearningAblation trains the full framework twice.
func activeLearningAblation(cfg Config, sp *dataset.Split) (with, without stats.Metrics, err error) {
	idx := sp.Test.MeasuredIndices(cfg.MissInterval)
	for _, active := range []bool{true, false} {
		opts := cfg.coreOptions()
		opts.ActiveLearning = active
		h, terr := core.Train(sp.Train, opts)
		if terr != nil {
			return with, without, terr
		}
		restored, rerr := h.Static.Restore(sp.Test, idx, nil)
		if rerr != nil {
			return with, without, rerr
		}
		cpuM, _ := h.SRR.Evaluate(sp.Test, restored)
		if active {
			with = cpuM
		} else {
			without = cpuM
		}
	}
	return with, without, nil
}

// arBetweenReadings forecasts each gap with an AR(5) over the measured
// history, the pure time-series baseline of §4.2.1.
func arBetweenReadings(sp *dataset.Split, idx []int, miss int) stats.Metrics {
	truth := sp.Test.NodePower()
	pred := append([]float64(nil), truth...)
	ar := interp.NewAR(5)
	// Fit on the training set's measured subsamples.
	var hist []float64
	for _, i := range sp.Train.MeasuredIndices(miss) {
		hist = append(hist, sp.Train.Samples[i].PNode)
	}
	if err := ar.Fit(hist); err != nil {
		return stats.Metrics{}
	}
	var seen []float64
	for k, i := range idx {
		seen = append(seen, truth[i])
		end := sp.Test.Len()
		if k+1 < len(idx) {
			end = idx[k+1]
		}
		if gap := end - i - 1; gap > 0 {
			fc := ar.Forecast(seen, gap)
			copy(pred[i+1:end], fc)
		}
	}
	return stats.Evaluate(truth, pred)
}

// Table renders the ablations.
func (r *AblationResult) Table() *Table {
	t := &Table{
		ID:     "ablation",
		Title:  "Design ablations (node power unless noted; unseen split)",
		Header: []string{"Variant", "MAPE(%)", "RMSE", "MAE"},
	}
	row := func(name string, m stats.Metrics) { t.AddRow(name, f2(m.MAPE), f2(m.RMSE), f2(m.MAE)) }
	row("StaticTRR (full, Algorithm 1)", r.StaticFull)
	row("StaticTRR w/o post-processing", r.StaticNoPost)
	row("DynamicTRR (P'_Node feature)", r.DynamicFull)
	row("DynamicTRR w/o P'_Node", r.DynamicNoPNode)
	row("SRR P_CPU with active learning", r.WithActive)
	row("SRR P_CPU w/o active learning", r.WithoutActive)
	row("AR(5) extrapolation", r.ARExtrapolation)
	t.Notes = append(t.Notes,
		"expected: Algorithm 1 and the P'_Node feature each reduce error;",
		"AR tracks the long-term trend about as well as the spline but, like it, is blind to in-gap",
		"fluctuations — the counter-driven residual/LSTM components are what capture those (§4.2.1)")
	return t
}
