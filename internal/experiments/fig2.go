package experiments

import (
	"highrpm/internal/mat"
	"highrpm/internal/platform"
	"highrpm/internal/workload"
)

// Fig2Run summarises one benchmark's power split.
type Fig2Run struct {
	Benchmark string
	AvgNode   float64
	AvgCPU    float64
	AvgMEM    float64
	AvgOther  float64
	Dominant  string // "CPU" or "MEM"
}

// Fig2Result holds the FFT-vs-Stream component divergence data.
type Fig2Result struct {
	Runs []Fig2Run
}

// RunFig2 reproduces Fig. 2: FFT (compute-bound) and STREAM (memory-bound)
// run uncapped on the ARM node. Their node-level powers are similar while
// the component split diverges — the motivation for spatial restoration.
func RunFig2(cfg Config) (*Fig2Result, error) {
	out := &Fig2Result{}
	for _, name := range []string{"HPCC/FFT", "HPCC/STREAM"} {
		b, err := workload.Find(name)
		if err != nil {
			return nil, err
		}
		node, err := platform.NewNode(platform.ARMConfig(), cfg.Seed+13)
		if err != nil {
			return nil, err
		}
		tr := node.RunFor(b, 300, 1)
		run := Fig2Run{
			Benchmark: name,
			AvgNode:   mat.Mean(tr.NodePower()),
			AvgCPU:    mat.Mean(tr.CPUPower()),
			AvgMEM:    mat.Mean(tr.MemPower()),
		}
		run.AvgOther = run.AvgNode - run.AvgCPU - run.AvgMEM
		if run.AvgCPU >= run.AvgMEM {
			run.Dominant = "CPU"
		} else {
			run.Dominant = "MEM"
		}
		out.Runs = append(out.Runs, run)
	}
	return out, nil
}

// Table renders the Fig. 2 summary rows.
func (r *Fig2Result) Table() *Table {
	t := &Table{
		ID:     "fig2",
		Title:  "Fig. 2: CPU/DRAM power split of FFT vs Stream on the ARM node",
		Header: []string{"Benchmark", "Avg Node W", "Avg CPU W", "Avg MEM W", "Avg Other W", "Dominant"},
	}
	for _, run := range r.Runs {
		t.AddRow(run.Benchmark, f1(run.AvgNode), f1(run.AvgCPU), f1(run.AvgMEM), f1(run.AvgOther), run.Dominant)
	}
	t.Notes = append(t.Notes,
		"shape target: node powers comparable (~90 W line); FFT CPU-dominated, Stream DRAM-dominated; Other ~25 W")
	return t
}
