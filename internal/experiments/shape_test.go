package experiments

import (
	"testing"
)

// The shape tests run the heavier evaluation experiments at bench scale and
// assert the paper's qualitative claims. They are skipped under -short.

func TestTRRComparisonShape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains 15 models; skipped in -short")
	}
	ws := benchWorkspace()
	r, err := RunTRRComparison(ws)
	if err != nil {
		t.Fatal(err)
	}
	dyn := r.Unseen["DynamicTRR"]
	if dyn.N == 0 {
		t.Fatal("no DynamicTRR result")
	}
	// Headline claim: DynamicTRR beats every baseline on unseen apps.
	for _, b := range Baselines() {
		if m := r.Unseen[b.Name]; dyn.MAPE >= m.MAPE {
			t.Errorf("DynamicTRR MAPE %.2f must beat %s %.2f (unseen)", dyn.MAPE, b.Name, m.MAPE)
		}
	}
	// Table 6 ordering: spline ≤ StaticTRR ≤ DynamicTRR (loose ≈ checks —
	// spline and StaticTRR are close by construction).
	spl, st := r.Unseen["Spline"], r.Unseen["StaticTRR"]
	if spl.MAPE > st.MAPE*1.3 {
		t.Errorf("spline MAPE %.2f should not exceed StaticTRR %.2f by >30%%", spl.MAPE, st.MAPE)
	}
	if st.MAPE > dyn.MAPE {
		t.Errorf("StaticTRR %.2f should not exceed DynamicTRR %.2f", st.MAPE, dyn.MAPE)
	}
	// Linear models must cluster: max/min within a few percent.
	var lmin, lmax float64 = 1e9, 0
	for _, n := range []string{"LR", "LaR", "RR", "SGD"} {
		m := r.Unseen[n].MAPE
		if m < lmin {
			lmin = m
		}
		if m > lmax {
			lmax = m
		}
	}
	if lmax-lmin > 2 {
		t.Errorf("linear baselines spread too wide: %.2f..%.2f", lmin, lmax)
	}
	if r.Table5().String() == "" || r.Table6().String() == "" {
		t.Fatal("empty tables")
	}
}

func TestSRRComparisonShape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains 25+ models; skipped in -short")
	}
	ws := benchWorkspace()
	r, err := RunSRRComparison(ws)
	if err != nil {
		t.Fatal(err)
	}
	srrCPU := r.CPUUnseen["SRR"]
	if srrCPU.N == 0 {
		t.Fatal("no SRR result")
	}
	// SRR beats every baseline on unseen P_CPU (the paper's strongest
	// spatial claim, 7–24% MAPE reduction).
	for _, b := range Baselines() {
		if m := r.CPUUnseen[b.Name]; srrCPU.MAPE >= m.MAPE {
			t.Errorf("SRR P_CPU MAPE %.2f must beat %s %.2f (unseen)", srrCPU.MAPE, b.Name, m.MAPE)
		}
	}
	// Unseen P_MEM stays within ~2 W MAE (paper §6.2.2).
	if mem := r.MEMUnseen["SRR"]; mem.MAE > 3 {
		t.Errorf("SRR unseen P_MEM MAE %.2f W, paper keeps it ≲ 2 W", mem.MAE)
	}
	// Table 8 ablation: removing P_Node hurts P_CPU substantially.
	with := r.WithNode["cpu/unseen"]
	without := r.WithoutNode["cpu/unseen"]
	if without.MAPE < 1.5*with.MAPE {
		t.Errorf("P_Node ablation too weak: %.2f vs %.2f", with.MAPE, without.MAPE)
	}
	if r.Table7().String() == "" || r.Table8().String() == "" {
		t.Fatal("empty tables")
	}
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	ws := benchWorkspace()
	r, err := RunFig7(ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) < 2 {
		t.Fatalf("only %d sweep points", len(r.Points))
	}
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	if first.MissInterval != 10 {
		t.Fatalf("sweep must start at 10 s")
	}
	// Spline degrades as the interval grows.
	if last.Spline.MAPE <= first.Spline.MAPE {
		t.Errorf("spline MAPE should grow with miss_interval: %.2f -> %.2f",
			first.Spline.MAPE, last.Spline.MAPE)
	}
}

func TestJitterShape(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	ws := benchWorkspace()
	r, err := RunJitter(ws)
	if err != nil {
		t.Fatal(err)
	}
	if r.Clean.N == 0 || r.Jittered.N == 0 || r.Dropped.N == 0 {
		t.Fatal("missing results")
	}
	// §6.4.6 expects degradation; the trend-feature implementation degrades
	// gracefully, so assert only that degraded sensors give no *large*
	// improvement (which would indicate an evaluation bug).
	if r.Dropped.MAPE < r.Clean.MAPE*0.75 {
		t.Errorf("dropping readings improved accuracy substantially: %.2f vs %.2f", r.Dropped.MAPE, r.Clean.MAPE)
	}
}

func TestOverheadClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	ws := benchWorkspace()
	r, err := RunOverhead(ws)
	if err != nil {
		t.Fatal(err)
	}
	// §6.4.5 claims, with slack for the CI machine.
	if r.OfflineTrain.Minutes() > 10 {
		t.Errorf("offline training took %v, paper claims < 10 min", r.OfflineTrain)
	}
	if r.FineTune.Seconds() > 2 {
		t.Errorf("fine-tune took %v, paper claims < 2 s", r.FineTune)
	}
	if r.PredictNode.Milliseconds() > 1 {
		t.Errorf("node prediction latency %v, paper claims < 1 ms", r.PredictNode)
	}
	if r.PredictSpatial.Milliseconds() > 1 {
		t.Errorf("component prediction latency %v, paper claims < 1 ms", r.PredictSpatial)
	}
}
