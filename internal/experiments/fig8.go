package experiments

import (
	"highrpm/internal/core"
	"highrpm/internal/stats"
)

// Fig8Point is one miss_interval's full-HighRPM node accuracy.
type Fig8Point struct {
	MissInterval int
	Dynamic      stats.Metrics
	Static       stats.Metrics
}

// Fig8Result holds the sensitivity sweep of §6.4.1.
type Fig8Result struct {
	Points []Fig8Point
}

// RunFig8 reproduces Fig. 8: HighRPM's node-power MAPE across miss_interval
// settings from 10 s to 100 s. The paper reports the error staying roughly
// consistent thanks to the spline trend and continuous calibration.
func RunFig8(ws *Workspace) (*Fig8Result, error) {
	cfg := ws.Config()
	combo := cfg.combos()[0]
	sp, err := ws.Split(combo, false)
	if err != nil {
		return nil, err
	}
	out := &Fig8Result{}
	for _, miss := range []int{10, 20, 40, 60, 80, 100} {
		if sp.Test.Len() < 3*miss {
			break
		}
		opts := cfg.coreOptions()
		opts.SetMissInterval(miss)
		// Window length grows with miss; hold the total trained steps
		// roughly constant so the sweep stays tractable.
		opts.Dynamic.MaxWindows = cfg.RNNMaxWindows * 10 / miss
		if opts.Dynamic.MaxWindows < 50 {
			opts.Dynamic.MaxWindows = 50
		}
		st, err := core.FitStaticTRR(sp.Train, opts.Static)
		if err != nil {
			return nil, err
		}
		dyn, err := core.FitDynamicTRR(sp.Train, opts.Dynamic)
		if err != nil {
			return nil, err
		}
		dynM, err := dyn.Evaluate(sp.Test)
		if err != nil {
			return nil, err
		}
		stM, err := st.Evaluate(sp.Test)
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, Fig8Point{MissInterval: miss, Dynamic: dynM, Static: stM})
	}
	return out, nil
}

// Table renders the Fig. 8 series.
func (r *Fig8Result) Table() *Table {
	t := &Table{
		ID:     "fig8",
		Title:  "Fig. 8: Sensitivity of HighRPM to miss_interval (node power MAPE)",
		Header: []string{"miss_interval (s)", "DynamicTRR MAPE(%)", "StaticTRR MAPE(%)"},
	}
	for _, p := range r.Points {
		t.AddRow(f1(float64(p.MissInterval)), f2(p.Dynamic.MAPE), f2(p.Static.MAPE))
	}
	t.Notes = append(t.Notes,
		"shape target: MAPE stays roughly consistent from 10 s to 100 s (§6.4.1)")
	return t
}
