package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment artifact: the rows the paper's table or
// figure reports, regenerated from the reproduction.
type Table struct {
	// ID is the experiment identifier ("tab5", "fig7", ...).
	ID string
	// Title describes the artifact ("Table 5: ...").
	Title string
	// Header names the columns.
	Header []string
	// Rows hold the formatted cells.
	Rows [][]string
	// Notes carry shape commentary appended after the table.
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Header)
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// m2 formats a metric value, rendering "-" for absent results (N == 0),
// which happens when a config evaluates only one of the seen/unseen splits.
func m2(n int, v float64) string {
	if n == 0 {
		return "-"
	}
	return f2(v)
}

// f1 formats a float with one decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
