package experiments

import (
	"highrpm/internal/platform"
	"highrpm/internal/stats"
)

// X86Result holds the Table 9 data: temporal and spatial restoration on the
// x86/RAPL platform, unseen applications only.
type X86Result struct {
	TRR *TRRResult
	SRR *SRRResult
}

// RunX86 reproduces the §6.3 experiment: HighRPM applied to the x86
// platform, where RAPL supplies accurate 1 Sa/s readings and the evaluation
// deliberately sparsifies them to a 10 s miss_interval. In the simulator
// this is the x86 node model with the same sparsification, evaluated on
// unseen applications exactly as Table 9 reports.
func RunX86(cfg Config) (*X86Result, error) {
	cfg.Platform = platform.X86Config()
	cfg.UnseenOnly = true
	ws := NewWorkspace(cfg)
	trr, err := RunTRRComparison(ws)
	if err != nil {
		return nil, err
	}
	srr, err := RunSRRComparison(ws)
	if err != nil {
		return nil, err
	}
	return &X86Result{TRR: trr, SRR: srr}, nil
}

// Table9 renders the combined temporal/spatial x86 table.
func (r *X86Result) Table9() *Table {
	t := &Table{
		ID:    "tab9",
		Title: "Table 9: HighRPM on unseen applications on the x86 system",
		Header: []string{"Type", "Model",
			"PNode MAPE(%)", "PNode RMSE", "PNode MAE",
			"PCPU MAPE(%)", "PCPU RMSE", "PCPU MAE",
			"PMEM MAPE(%)", "PMEM RMSE", "PMEM MAE"},
	}
	dash := "-"
	for _, name := range r.TRR.Order {
		node := r.TRR.Unseen[name]
		typ := r.TRR.Types[name]
		switch typ {
		case "TRR":
			t.AddRow(typ, name, f2(node.MAPE), f2(node.RMSE), f2(node.MAE),
				dash, dash, dash, dash, dash, dash)
		default:
			cpu := r.SRR.CPUUnseen[name]
			mem := r.SRR.MEMUnseen[name]
			t.AddRow(typ, name, f2(node.MAPE), f2(node.RMSE), f2(node.MAE),
				f2(cpu.MAPE), f2(cpu.RMSE), f2(cpu.MAE),
				f2(mem.MAPE), f2(mem.RMSE), f2(mem.MAE))
		}
	}
	srr := r.SRR
	cpu, mem := srr.CPUUnseen["SRR"], srr.MEMUnseen["SRR"]
	t.AddRow("SRR", "SRR", dash, dash, dash,
		f2(cpu.MAPE), f2(cpu.RMSE), f2(cpu.MAE),
		f2(mem.MAPE), f2(mem.RMSE), f2(mem.MAE))
	t.Notes = append(t.Notes,
		"shape target: same orderings as Tables 5/7 with slightly higher errors than the ARM platform (§6.3)")
	return t
}

// NodeMetric exposes the unseen node-power metrics for a model (tests).
func (r *X86Result) NodeMetric(model string) stats.Metrics { return r.TRR.Unseen[model] }
