package experiments

import (
	"fmt"

	"highrpm/internal/core"
	"highrpm/internal/stats"
)

// SRRResult holds the Table 7 and Table 8 data: component power prediction
// error for the baselines, SRR, and the P_Node ablation.
type SRRResult struct {
	// CPU/MEM: model name → metrics, keyed further by seen.
	CPUSeen, CPUUnseen map[string]stats.Metrics
	MEMSeen, MEMUnseen map[string]stats.Metrics
	// Ablation metrics for Table 8 (SRR with/without P_Node).
	WithNode, WithoutNode map[string]stats.Metrics // keys: "cpu/seen", "cpu/unseen", "mem/seen", "mem/unseen"
	Order                 []string
	Types                 map[string]string
}

// RunSRRComparison evaluates the baselines and SRR on CPU and memory power
// (Tables 7 and 8). SRR's node-power input on the test set is the StaticTRR
// restoration — the value actually available in deployment — closing the
// full bi-directional pipeline.
func RunSRRComparison(ws *Workspace) (*SRRResult, error) {
	cfg := ws.Config()
	res := &SRRResult{
		CPUSeen: map[string]stats.Metrics{}, CPUUnseen: map[string]stats.Metrics{},
		MEMSeen: map[string]stats.Metrics{}, MEMUnseen: map[string]stats.Metrics{},
		WithNode: map[string]stats.Metrics{}, WithoutNode: map[string]stats.Metrics{},
		Types: map[string]string{},
	}
	type key struct {
		model string
		cpu   bool
		seen  bool
	}
	acc := map[key][]stats.Metrics{}
	ablation := map[string][]stats.Metrics{}

	baselines := Baselines()
	for _, b := range baselines {
		res.Order = append(res.Order, b.Name)
		res.Types[b.Name] = b.Type
	}
	res.Order = append(res.Order, "SRR")
	res.Types["SRR"] = "SRR"

	for _, combo := range cfg.combos() {
		for _, seen := range cfg.seenVariants() {
			sp, err := ws.Split(combo, seen)
			if err != nil {
				return nil, err
			}
			for _, b := range baselines {
				for _, tgt := range []target{targetCPU, targetMEM} {
					var m stats.Metrics
					if b.New != nil {
						m, err = evalTabular(b, sp, tgt, cfg.Seed)
					} else {
						m, err = evalSeq(b, cfg, sp, tgt, cfg.Seed)
					}
					if err != nil {
						return nil, fmt.Errorf("experiments: combo %s seen=%v: %w", combo.TestSuite, seen, err)
					}
					acc[key{b.Name, tgt == targetCPU, seen}] = append(acc[key{b.Name, tgt == targetCPU, seen}], m)
				}
			}
			// SRR with the TRR-estimated node power as input.
			opts := cfg.coreOptions()
			st, err := core.FitStaticTRR(sp.Train, opts.Static)
			if err != nil {
				return nil, err
			}
			idx := sp.Test.MeasuredIndices(cfg.MissInterval)
			restored, err := st.Restore(sp.Test, idx, nil)
			if err != nil {
				return nil, err
			}
			srr, err := core.FitSRR(sp.Train, nil, opts.SRR)
			if err != nil {
				return nil, err
			}
			cpuM, memM := srr.Evaluate(sp.Test, restored)
			acc[key{"SRR", true, seen}] = append(acc[key{"SRR", true, seen}], cpuM)
			acc[key{"SRR", false, seen}] = append(acc[key{"SRR", false, seen}], memM)
			tag := map[bool]string{true: "seen", false: "unseen"}[seen]
			ablation["cpu/"+tag+"/with"] = append(ablation["cpu/"+tag+"/with"], cpuM)
			ablation["mem/"+tag+"/with"] = append(ablation["mem/"+tag+"/with"], memM)

			// Ablation: same MLP without the node feature (Table 8).
			noNodeOpts := opts.SRR
			noNodeOpts.UseNode = false
			srrNo, err := core.FitSRR(sp.Train, nil, noNodeOpts)
			if err != nil {
				return nil, err
			}
			cpuNo, memNo := srrNo.Evaluate(sp.Test, nil)
			ablation["cpu/"+tag+"/without"] = append(ablation["cpu/"+tag+"/without"], cpuNo)
			ablation["mem/"+tag+"/without"] = append(ablation["mem/"+tag+"/without"], memNo)
		}
	}
	for k, ms := range acc {
		avg := stats.Average(ms)
		switch {
		case k.cpu && k.seen:
			res.CPUSeen[k.model] = avg
		case k.cpu && !k.seen:
			res.CPUUnseen[k.model] = avg
		case !k.cpu && k.seen:
			res.MEMSeen[k.model] = avg
		default:
			res.MEMUnseen[k.model] = avg
		}
	}
	for _, comp := range []string{"cpu", "mem"} {
		for _, tag := range []string{"seen", "unseen"} {
			res.WithNode[comp+"/"+tag] = stats.Average(ablation[comp+"/"+tag+"/with"])
			res.WithoutNode[comp+"/"+tag] = stats.Average(ablation[comp+"/"+tag+"/without"])
		}
	}
	return res, nil
}

// Table7 renders the SRR-vs-baselines comparison.
func (r *SRRResult) Table7() *Table {
	t := &Table{
		ID:    "tab7",
		Title: "Table 7: Comparisons between SRR and alternative models (component power)",
		Header: []string{"Type", "Model",
			"Seen CPU MAPE(%)", "Seen CPU RMSE", "Seen CPU MAE",
			"Seen MEM MAPE(%)", "Seen MEM RMSE", "Seen MEM MAE",
			"Unseen CPU MAPE(%)", "Unseen CPU RMSE", "Unseen CPU MAE",
			"Unseen MEM MAPE(%)", "Unseen MEM RMSE", "Unseen MEM MAE"},
	}
	for _, name := range r.Order {
		cs, cu := r.CPUSeen[name], r.CPUUnseen[name]
		ms, mu := r.MEMSeen[name], r.MEMUnseen[name]
		t.AddRow(r.Types[name], name,
			m2(cs.N, cs.MAPE), m2(cs.N, cs.RMSE), m2(cs.N, cs.MAE),
			m2(ms.N, ms.MAPE), m2(ms.N, ms.RMSE), m2(ms.N, ms.MAE),
			m2(cu.N, cu.MAPE), m2(cu.N, cu.RMSE), m2(cu.N, cu.MAE),
			m2(mu.N, mu.MAPE), m2(mu.N, mu.RMSE), m2(mu.N, mu.MAE))
	}
	t.Notes = append(t.Notes,
		"shape target: SRR lowest everywhere; unseen P_MEM MAPE degrades but MAE stays within ~2 W (paper §6.2.2)")
	return t
}

// Table8 renders the P_Node ablation.
func (r *SRRResult) Table8() *Table {
	t := &Table{
		ID:     "tab8",
		Title:  "Table 8: SRR with vs without P_Node as a feature",
		Header: []string{"Split", "Target", "With MAPE(%)", "With RMSE", "With MAE", "Without MAPE(%)", "Without RMSE", "Without MAE"},
	}
	for _, tag := range []string{"seen", "unseen"} {
		for _, comp := range []string{"cpu", "mem"} {
			w := r.WithNode[comp+"/"+tag]
			wo := r.WithoutNode[comp+"/"+tag]
			label := "P_CPU"
			if comp == "mem" {
				label = "P_MEM"
			}
			t.AddRow(tag+" app.", label,
				f2(w.MAPE), f2(w.RMSE), f2(w.MAE),
				f2(wo.MAPE), f2(wo.RMSE), f2(wo.MAE))
		}
	}
	t.Notes = append(t.Notes,
		"shape target: removing P_Node multiplies MAPE several-fold (paper: ~4x for P_CPU seen)")
	return t
}
