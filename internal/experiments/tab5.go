package experiments

import (
	"fmt"

	"highrpm/internal/core"
	"highrpm/internal/stats"
)

// TRRResult holds the Table 5 and Table 6 data: node-power restoration
// error for every model, averaged over the Table 3 combinations, for seen
// and unseen applications.
type TRRResult struct {
	// Seen and Unseen map model name → averaged metrics.
	Seen, Unseen map[string]stats.Metrics
	// Order lists row names in table order.
	Order []string
	// Types maps model name → group label.
	Types map[string]string
}

// trrModelRows are the Table 6 rows computed alongside the baselines.
var trrModelRows = []string{"Spline", "StaticTRR", "DynamicTRR"}

// RunTRRComparison evaluates the twelve baselines and the TRR models on
// node-power restoration (Tables 5 and 6).
func RunTRRComparison(ws *Workspace) (*TRRResult, error) {
	cfg := ws.Config()
	res := &TRRResult{
		Seen:   map[string]stats.Metrics{},
		Unseen: map[string]stats.Metrics{},
		Types:  map[string]string{},
	}
	acc := map[string]map[bool][]stats.Metrics{}
	record := func(name string, seen bool, m stats.Metrics) {
		if acc[name] == nil {
			acc[name] = map[bool][]stats.Metrics{}
		}
		acc[name][seen] = append(acc[name][seen], m)
	}

	baselines := Baselines()
	for _, b := range baselines {
		res.Order = append(res.Order, b.Name)
		res.Types[b.Name] = b.Type
	}
	for _, name := range trrModelRows {
		res.Order = append(res.Order, name)
		res.Types[name] = "TRR"
	}

	for _, combo := range cfg.combos() {
		for _, seen := range cfg.seenVariants() {
			sp, err := ws.Split(combo, seen)
			if err != nil {
				return nil, err
			}
			for _, b := range baselines {
				var m stats.Metrics
				if b.New != nil {
					m, err = evalTabular(b, sp, targetNode, cfg.Seed)
				} else {
					m, err = evalSeq(b, cfg, sp, targetNode, cfg.Seed)
				}
				if err != nil {
					return nil, fmt.Errorf("experiments: combo %s seen=%v: %w", combo.TestSuite, seen, err)
				}
				record(b.Name, seen, m)
			}
			// TRR family.
			opts := cfg.coreOptions()
			st, err := core.FitStaticTRR(sp.Train, opts.Static)
			if err != nil {
				return nil, err
			}
			dyn, err := core.FitDynamicTRR(sp.Train, opts.Dynamic)
			if err != nil {
				return nil, err
			}
			idx := sp.Test.MeasuredIndices(cfg.MissInterval)
			spl, err := core.SplineOnly(sp.Test, idx, nil)
			if err != nil {
				return nil, err
			}
			record("Spline", seen, stats.Evaluate(sp.Test.NodePower(), spl))
			stM, err := st.Evaluate(sp.Test)
			if err != nil {
				return nil, err
			}
			record("StaticTRR", seen, stM)
			dynM, err := dyn.Evaluate(sp.Test)
			if err != nil {
				return nil, err
			}
			record("DynamicTRR", seen, dynM)
		}
	}
	for name, bySeen := range acc {
		res.Seen[name] = stats.Average(bySeen[true])
		res.Unseen[name] = stats.Average(bySeen[false])
	}
	return res, nil
}

// Table5 renders the Table 5 comparison (baselines vs DynamicTRR).
func (r *TRRResult) Table5() *Table {
	t := &Table{
		ID:     "tab5",
		Title:  "Table 5: Comparisons between TRR and alternative models (node power)",
		Header: []string{"Type", "Model", "Seen MAPE(%)", "Seen RMSE", "Seen MAE", "Unseen MAPE(%)", "Unseen RMSE", "Unseen MAE"},
	}
	for _, name := range r.Order {
		if name == "Spline" || name == "StaticTRR" {
			continue // Table 6 rows
		}
		s, u := r.Seen[name], r.Unseen[name]
		typ := r.Types[name]
		if name == "DynamicTRR" {
			typ = "TRR"
		}
		t.AddRow(typ, name, m2(s.N, s.MAPE), m2(s.N, s.RMSE), m2(s.N, s.MAE),
			m2(u.N, u.MAPE), m2(u.N, u.RMSE), m2(u.N, u.MAE))
	}
	t.Notes = append(t.Notes,
		"shape target: DynamicTRR MAPE below every baseline; linear models cluster together; RNNs beat static ML")
	return t
}

// Table6 renders the Table 6 comparison among the TRR models.
func (r *TRRResult) Table6() *Table {
	t := &Table{
		ID:     "tab6",
		Title:  "Table 6: Comparisons among TRR models (node power)",
		Header: []string{"Model", "Seen MAPE(%)", "Seen RMSE", "Seen MAE", "Unseen MAPE(%)", "Unseen RMSE", "Unseen MAE"},
	}
	for _, name := range trrModelRows {
		s, u := r.Seen[name], r.Unseen[name]
		t.AddRow(name, m2(s.N, s.MAPE), m2(s.N, s.RMSE), m2(s.N, s.MAE),
			m2(u.N, u.MAPE), m2(u.N, u.RMSE), m2(u.N, u.MAE))
	}
	t.Notes = append(t.Notes,
		"shape target: spline ≤ StaticTRR ≤ DynamicTRR, all far below the PMC-only baselines of Table 5")
	return t
}
