// Package experiments regenerates every table and figure of the paper's
// motivation and evaluation sections (Figs. 1, 2, 7, 8, 9 and Tables 5–9)
// plus the §6.4 discussion artifacts, on the simulated platforms. Each
// experiment has a generator function returning structured results and a
// rendered Table; cmd/highrpm-bench drives them from the command line and
// bench_test.go exposes one testing.B benchmark per artifact.
//
// Absolute error values depend on the synthetic noise model; the assertions
// the reproduction targets are the paper's *shape* claims (who wins, rough
// factors, crossovers), listed per experiment in DESIGN.md §2.
package experiments

import (
	"fmt"
	"sync"

	"highrpm/internal/core"
	"highrpm/internal/dataset"
	"highrpm/internal/platform"
)

// Scale selects how much compute an experiment run spends.
type Scale int

// Experiment scales.
const (
	// ScaleBench is sized for testing.B iterations (seconds per artifact).
	ScaleBench Scale = iota
	// ScaleQuick is the CLI default (a few minutes for the full set).
	ScaleQuick
	// ScaleFull is the paper-faithful configuration (1000 samples/suite,
	// all seven Table 3 combinations).
	ScaleFull
)

// Config parameterises an experiment run.
type Config struct {
	// Platform is the simulated node (defaults to the ARM platform; the
	// Table 9 experiment overrides it with the x86 model).
	Platform platform.Config
	// SamplesPerSuite is the per-suite 1 Sa/s sample budget (§5.3: 1000).
	SamplesPerSuite int
	// MaxCombos bounds how many of the seven Table 3 combinations run
	// (0 = all seven).
	MaxCombos int
	// MissInterval is the IM reading gap in samples (paper default 10).
	MissInterval int
	// RNNEpochs and RNNMaxWindows bound recurrent-model training cost.
	RNNEpochs     int
	RNNMaxWindows int
	// UnseenOnly restricts evaluation to the unseen-application splits
	// (Table 9 reports only unseen results).
	UnseenOnly bool
	// Seed drives all simulation and model randomness.
	Seed int64
	// Workers bounds the training goroutines of every model an experiment
	// fits (see core.Options.SetWorkers): 0 uses every CPU, 1 forces the
	// bit-exact serial paths.
	Workers int
}

// seenVariants lists the split kinds an experiment evaluates.
func (c Config) seenVariants() []bool {
	if c.UnseenOnly {
		return []bool{false}
	}
	return []bool{true, false}
}

// NewConfig returns the configuration for the given scale.
func NewConfig(s Scale) Config {
	cfg := Config{
		Platform:     platform.ARMConfig(),
		MissInterval: 10,
		Seed:         1,
	}
	switch s {
	case ScaleBench:
		cfg.SamplesPerSuite = 250
		cfg.MaxCombos = 1
		cfg.RNNEpochs = 8
		cfg.RNNMaxWindows = 400
	case ScaleQuick:
		cfg.SamplesPerSuite = 500
		cfg.MaxCombos = 2
		cfg.RNNEpochs = 22
		cfg.RNNMaxWindows = 1400
	default:
		cfg.SamplesPerSuite = 1000
		cfg.MaxCombos = 0
		cfg.RNNEpochs = 25
		cfg.RNNMaxWindows = 2000
	}
	return cfg
}

// combos returns the Table 3 combinations limited by MaxCombos.
func (c Config) combos() []dataset.Combo {
	all := dataset.Combos()
	if c.MaxCombos > 0 && c.MaxCombos < len(all) {
		return all[:c.MaxCombos]
	}
	return all
}

// genConfig converts to the dataset generator's configuration.
func (c Config) genConfig() dataset.GenerateConfig {
	return dataset.GenerateConfig{
		Platform:        c.Platform,
		SamplesPerSuite: c.SamplesPerSuite,
		Seed:            c.Seed,
	}
}

// coreOptions returns HighRPM options sized by the config.
func (c Config) coreOptions() core.Options {
	opts := core.DefaultOptions()
	opts.SetMissInterval(c.MissInterval)
	opts.SetWorkers(c.Workers)
	opts.Dynamic.Epochs = c.RNNEpochs
	opts.Dynamic.MaxWindows = c.RNNMaxWindows
	opts.Seed = c.Seed
	return opts
}

// Workspace lazily materialises and caches the train/test splits so that
// Tables 5–8, which share datasets, do not regenerate them.
type Workspace struct {
	cfg Config

	mu     sync.Mutex
	splits map[string]*dataset.Split
}

// NewWorkspace wraps a config with split caching.
func NewWorkspace(cfg Config) *Workspace {
	return &Workspace{cfg: cfg, splits: map[string]*dataset.Split{}}
}

// Config returns the workspace configuration.
func (w *Workspace) Config() Config { return w.cfg }

// Split returns the materialised split for a combination, building it on
// first use.
func (w *Workspace) Split(combo dataset.Combo, seen bool) (*dataset.Split, error) {
	key := fmt.Sprintf("%s/%v", combo.TestSuite, seen)
	w.mu.Lock()
	defer w.mu.Unlock()
	if sp, ok := w.splits[key]; ok {
		return sp, nil
	}
	sp, err := dataset.BuildSplit(w.cfg.genConfig(), combo, seen)
	if err != nil {
		return nil, err
	}
	w.splits[key] = sp
	return sp, nil
}
