package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// runnerFunc produces the tables of one experiment.
type runnerFunc func(ws *Workspace) ([]*Table, error)

var registry = map[string]struct {
	desc string
	run  runnerFunc
}{
	"fig1": {"Graph500 power capping under PI/AI sweeps (motivation)", func(ws *Workspace) ([]*Table, error) {
		r, err := RunFig1(ws.Config())
		if err != nil {
			return nil, err
		}
		return []*Table{r.Table()}, nil
	}},
	"fig2": {"FFT vs Stream component power divergence (motivation)", func(ws *Workspace) ([]*Table, error) {
		r, err := RunFig2(ws.Config())
		if err != nil {
			return nil, err
		}
		return []*Table{r.Table()}, nil
	}},
	"tab5": {"TRR vs 12 baselines on node power (with tab6)", func(ws *Workspace) ([]*Table, error) {
		r, err := RunTRRComparison(ws)
		if err != nil {
			return nil, err
		}
		return []*Table{r.Table5(), r.Table6()}, nil
	}},
	"tab7": {"SRR vs 12 baselines on component power (with tab8)", func(ws *Workspace) ([]*Table, error) {
		r, err := RunSRRComparison(ws)
		if err != nil {
			return nil, err
		}
		return []*Table{r.Table7(), r.Table8()}, nil
	}},
	"tab9": {"Full method on the x86/RAPL platform, unseen apps", func(ws *Workspace) ([]*Table, error) {
		r, err := RunX86(ws.Config())
		if err != nil {
			return nil, err
		}
		return []*Table{r.Table9()}, nil
	}},
	"fig7": {"miss_interval sweep: spline vs StaticTRR", func(ws *Workspace) ([]*Table, error) {
		r, err := RunFig7(ws)
		if err != nil {
			return nil, err
		}
		return []*Table{r.Table()}, nil
	}},
	"fig8": {"miss_interval sensitivity of HighRPM", func(ws *Workspace) ([]*Table, error) {
		r, err := RunFig8(ws)
		if err != nil {
			return nil, err
		}
		return []*Table{r.Table()}, nil
	}},
	"fig9": {"CPU frequency sensitivity on Graph500", func(ws *Workspace) ([]*Table, error) {
		r, err := RunFig9(ws.Config())
		if err != nil {
			return nil, err
		}
		return []*Table{r.Table()}, nil
	}},
	"hyper": {"§6.4.3 hyperparametric analysis", func(ws *Workspace) ([]*Table, error) {
		r, err := RunHyper(ws)
		if err != nil {
			return nil, err
		}
		return []*Table{r.Table()}, nil
	}},
	"overhead": {"§6.4.5 training and prediction overhead", func(ws *Workspace) ([]*Table, error) {
		r, err := RunOverhead(ws)
		if err != nil {
			return nil, err
		}
		return []*Table{r.Table()}, nil
	}},
	"governor": {"power-capping control stacks driven by HighRPM vs raw IM", func(ws *Workspace) ([]*Table, error) {
		r, err := RunGovernor(ws.Config())
		if err != nil {
			return nil, err
		}
		return []*Table{r.Table()}, nil
	}},
	"dvfs": {"deployment: one mixed-frequency model vs per-level training", func(ws *Workspace) ([]*Table, error) {
		r, err := RunDVFS(ws.Config())
		if err != nil {
			return nil, err
		}
		return []*Table{r.Table()}, nil
	}},
	"gpu": {"§6.4.4 extension: GPU power restoration", func(ws *Workspace) ([]*Table, error) {
		r, err := RunGPU(ws.Config())
		if err != nil {
			return nil, err
		}
		return []*Table{r.Table()}, nil
	}},
	"ablation": {"design-choice ablations (Algorithm 1, P'_Node feature, active learning, AR)", func(ws *Workspace) ([]*Table, error) {
		r, err := RunAblations(ws)
		if err != nil {
			return nil, err
		}
		return []*Table{r.Table()}, nil
	}},
	"jitter": {"§6.4.6 robustness to fluctuating miss_interval", func(ws *Workspace) ([]*Table, error) {
		r, err := RunJitter(ws)
		if err != nil {
			return nil, err
		}
		return []*Table{r.Table()}, nil
	}},
}

// IDs returns the experiment identifiers in stable order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Describe returns a one-line description of an experiment.
func Describe(id string) string { return registry[id].desc }

// Run executes one experiment against a shared workspace.
func Run(ws *Workspace, id string) ([]*Table, error) {
	ent, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return ent.run(ws)
}

// RunAndRender executes experiments in order and renders their tables.
func RunAndRender(ws *Workspace, ids []string, w io.Writer) error {
	return RunAndRenderParallel(ws, ids, w, 1)
}

// RunAndRenderParallel executes independent experiments concurrently,
// bounded by parallel (≤1 runs serially, 0 is treated as 1), and renders
// each experiment's tables in the order the ids were given. Experiments
// share the workspace's split cache, which is safe for concurrent use; a
// failed experiment does not stop the ones already in flight, and the first
// error in id order is returned.
func RunAndRenderParallel(ws *Workspace, ids []string, w io.Writer, parallel int) error {
	if parallel <= 1 || len(ids) <= 1 {
		for _, id := range ids {
			tables, err := Run(ws, id)
			if err != nil {
				return fmt.Errorf("experiments: %s: %w", id, err)
			}
			for _, t := range tables {
				t.Render(w)
			}
		}
		return nil
	}
	type result struct {
		tables []*Table
		err    error
	}
	results := make([]result, len(ids))
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for k, id := range ids {
		wg.Add(1)
		go func(k int, id string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			tables, err := Run(ws, id)
			results[k] = result{tables: tables, err: err}
		}(k, id)
	}
	wg.Wait()
	for k, id := range ids {
		if results[k].err != nil {
			return fmt.Errorf("experiments: %s: %w", id, results[k].err)
		}
		for _, t := range results[k].tables {
			t.Render(w)
		}
	}
	return nil
}

// DefaultOrder lists all experiments in presentation order (motivation
// figures first, then the evaluation tables, then discussion artifacts).
func DefaultOrder() []string {
	return []string{"fig1", "fig2", "tab5", "tab7", "tab9", "fig7", "fig8", "fig9", "hyper", "overhead", "jitter", "ablation", "gpu", "dvfs", "governor"}
}
