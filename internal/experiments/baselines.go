package experiments

import (
	"fmt"

	"highrpm/internal/dataset"
	"highrpm/internal/linmodel"
	"highrpm/internal/model"
	"highrpm/internal/neighbors"
	"highrpm/internal/neural"
	"highrpm/internal/pmu"
	"highrpm/internal/stats"
	"highrpm/internal/svm"
	"highrpm/internal/tree"
)

// Baseline is one Table 4 comparison model.
type Baseline struct {
	// Name is the paper's abbreviation (LR, LaR, RR, SGD, DT, RF, GB, KNN,
	// SVM, NN, GRU, LSTM).
	Name string
	// Type groups rows the way the tables do (Linear / Nonlinear / RNN).
	Type string
	// New builds an untrained tabular regressor (nil for sequence models).
	New func(seed int64) model.Regressor
	// NewSeq builds an untrained sequence regressor (nil for tabular).
	NewSeq func(cfg Config, seed int64) model.SeqRegressor
}

// Baselines returns the twelve Table 4 models with the paper's
// hyperparameters.
func Baselines() []Baseline {
	return []Baseline{
		{Name: "LR", Type: "Linear", New: func(seed int64) model.Regressor {
			return &model.ScaledRegressor{Inner: linmodel.NewLinear()}
		}},
		{Name: "LaR", Type: "Linear", New: func(seed int64) model.Regressor {
			return &model.ScaledRegressor{Inner: linmodel.NewLasso(0.001)}
		}},
		{Name: "RR", Type: "Linear", New: func(seed int64) model.Regressor {
			return &model.ScaledRegressor{Inner: linmodel.NewRidge(1.0)}
		}},
		{Name: "SGD", Type: "Linear", New: func(seed int64) model.Regressor {
			s := linmodel.NewSGD(seed)
			s.MaxIter = 10000 // Table 4: squared_error, max_iter=10000
			return &model.ScaledRegressor{Inner: s}
		}},
		{Name: "DT", Type: "Nonlinear", New: func(seed int64) model.Regressor {
			t := tree.NewRegressor() // Table 4: squared_error
			t.Seed = seed
			return t
		}},
		{Name: "RF", Type: "Nonlinear", New: func(seed int64) model.Regressor {
			return tree.NewForest(10, seed) // Table 4: #trees=10
		}},
		{Name: "GB", Type: "Nonlinear", New: func(seed int64) model.Regressor {
			return tree.NewGradientBoosting(10, seed) // Table 4: #trees=10
		}},
		{Name: "KNN", Type: "Nonlinear", New: func(seed int64) model.Regressor {
			return &model.ScaledRegressor{Inner: neighbors.NewKNN(3)} // #neighbors=3
		}},
		{Name: "SVM", Type: "Nonlinear", New: func(seed int64) model.Regressor {
			return &model.ScaledRegressor{Inner: svm.NewSVR(seed)}
		}},
		{Name: "NN", Type: "Nonlinear", New: func(seed int64) model.Regressor {
			n := neural.NewBaselineNN(seed) // Table 4: hidden=30
			n.Epochs = 40
			return n
		}},
		{Name: "GRU", Type: "RNN", NewSeq: func(cfg Config, seed int64) model.SeqRegressor {
			g := neural.NewGRU(16, 2, seed) // Table 4: #units=2 (layers)
			g.Epochs = cfg.RNNEpochs
			return g
		}},
		{Name: "LSTM", Type: "RNN", NewSeq: func(cfg Config, seed int64) model.SeqRegressor {
			l := neural.NewLSTM(16, 2, seed)
			l.Epochs = cfg.RNNEpochs
			return l
		}},
	}
}

// target selects a prediction label.
type target int

const (
	targetNode target = iota
	targetCPU
	targetMEM
)

func (t target) labels(s *dataset.Set) []float64 {
	switch t {
	case targetCPU:
		return s.CPUPower()
	case targetMEM:
		return s.MemPower()
	default:
		return s.NodePower()
	}
}

// evalTabular fits a tabular baseline PMC→target and scores it on the test
// set. The baselines see only PMCs — they are the "software-centric power
// modeling" side of the comparison and get no node-power readings.
func evalTabular(b Baseline, sp *dataset.Split, tgt target, seed int64) (stats.Metrics, error) {
	m := b.New(seed)
	if err := m.Fit(sp.Train.PMCMatrix(), tgt.labels(sp.Train)); err != nil {
		return stats.Metrics{}, fmt.Errorf("%s: %w", b.Name, err)
	}
	pred := model.PredictBatch(m, sp.Test.PMCMatrix())
	return stats.Evaluate(tgt.labels(sp.Test), pred), nil
}

// evalSeq fits a sequence baseline on PMC-only windows (per-step labels)
// and scores one-step-ahead predictions over the test set. Like the other
// baselines it never sees node power — that is HighRPM's differentiator.
func evalSeq(b Baseline, cfg Config, sp *dataset.Split, tgt target, seed int64) (stats.Metrics, error) {
	miss := cfg.MissInterval
	m := b.NewSeq(cfg, seed)
	trainWins := pmcWindows(sp.Train, tgt, miss)
	trainWins = dataset.SubsampleWindows(trainWins, cfg.RNNMaxWindows)
	seqs, targets := dataset.WindowsToSeqs(trainWins)
	if err := m.FitSeq(seqs, targets); err != nil {
		return stats.Metrics{}, fmt.Errorf("%s: %w", b.Name, err)
	}
	labels := tgt.labels(sp.Test)
	pred := make([]float64, sp.Test.Len())
	for i := range pred {
		w := pmcWindowAt(sp.Test, i, miss)
		out := m.PredictSeq(w)
		pred[i] = out[len(out)-1]
	}
	return stats.Evaluate(labels, pred), nil
}

// pmcWindows builds PMC-only sliding windows with per-step labels.
func pmcWindows(s *dataset.Set, tgt target, miss int) []dataset.Window {
	labels := tgt.labels(s)
	n := s.Len()
	if n < miss {
		return nil
	}
	out := make([]dataset.Window, 0, n-miss+1)
	for start := 0; start+miss <= n; start++ {
		w := dataset.Window{Features: make([][]float64, miss), Labels: make([]float64, miss)}
		for j := 0; j < miss; j++ {
			i := start + j
			f := make([]float64, pmu.NumEvents)
			copy(f, s.Samples[i].PMC)
			w.Features[j] = f
			w.Labels[j] = labels[i]
		}
		out = append(out, w)
	}
	return out
}

// pmcWindowAt builds the trailing window ending at index end (front-padded
// with the first sample when history is short).
func pmcWindowAt(s *dataset.Set, end, miss int) [][]float64 {
	w := make([][]float64, miss)
	for j := 0; j < miss; j++ {
		i := end - miss + 1 + j
		if i < 0 {
			i = 0
		}
		f := make([]float64, pmu.NumEvents)
		copy(f, s.Samples[i].PMC)
		w[j] = f
	}
	return w
}
