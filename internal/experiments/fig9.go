package experiments

import (
	"fmt"

	"highrpm/internal/core"
	"highrpm/internal/dataset"
	"highrpm/internal/stats"
)

// Fig9Point is one CPU-frequency level's component accuracy.
type Fig9Point struct {
	FreqGHz  float64
	CPU      stats.Metrics
	MEM      stats.Metrics
	CPUBasis stats.Metrics // best PMC-only baseline (NN) for reference
}

// Fig9Result holds the §6.4.2 frequency sweep.
type Fig9Result struct {
	Points []Fig9Point
}

// RunFig9 reproduces Fig. 9: HighRPM predicting Graph500's instantaneous
// CPU and memory power at the ARM platform's three DVFS levels (1.4, 1.8,
// 2.2 GHz). The paper finds accuracy decreases with frequency — higher
// clocks mean more CPU activity and supply-noise, hence harder modeling —
// while remaining below the PMC-only alternatives.
func RunFig9(cfg Config) (*Fig9Result, error) {
	// Hold out Graph500 (the Table 3 combo whose test suite it is).
	var combo dataset.Combo
	for _, c := range dataset.Combos() {
		if c.TestSuite == "Graph500" {
			combo = c
			break
		}
	}
	if combo.TestSuite == "" {
		return nil, fmt.Errorf("experiments: no Graph500 combo")
	}
	out := &Fig9Result{}
	for _, freq := range cfg.Platform.FreqLevels {
		gen := cfg.genConfig()
		gen.Frequency = freq
		sp, err := dataset.BuildSplit(gen, combo, false)
		if err != nil {
			return nil, err
		}
		opts := cfg.coreOptions()
		st, err := core.FitStaticTRR(sp.Train, opts.Static)
		if err != nil {
			return nil, err
		}
		srr, err := core.FitSRR(sp.Train, nil, opts.SRR)
		if err != nil {
			return nil, err
		}
		idx := sp.Test.MeasuredIndices(cfg.MissInterval)
		restored, err := st.Restore(sp.Test, idx, nil)
		if err != nil {
			return nil, err
		}
		cpuM, memM := srr.Evaluate(sp.Test, restored)
		// PMC-only NN reference at the same frequency.
		var nn Baseline
		for _, b := range Baselines() {
			if b.Name == "NN" {
				nn = b
			}
		}
		ref, err := evalTabular(nn, sp, targetCPU, cfg.Seed)
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, Fig9Point{FreqGHz: freq, CPU: cpuM, MEM: memM, CPUBasis: ref})
	}
	return out, nil
}

// Table renders the Fig. 9 series.
func (r *Fig9Result) Table() *Table {
	t := &Table{
		ID:     "fig9",
		Title:  "Fig. 9: Impact of CPU frequency level on HighRPM (Graph500, unseen)",
		Header: []string{"Frequency GHz", "P_CPU MAPE(%)", "P_MEM MAPE(%)", "NN baseline P_CPU MAPE(%)"},
	}
	for _, p := range r.Points {
		t.AddRow(f2(p.FreqGHz), f2(p.CPU.MAPE), f2(p.MEM.MAPE), f2(p.CPUBasis.MAPE))
	}
	t.Notes = append(t.Notes,
		"shape target: MAPE grows with frequency yet stays below the PMC-only baseline (§6.4.2)")
	return t
}
