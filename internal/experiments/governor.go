package experiments

import (
	"highrpm/internal/core"
	"highrpm/internal/dataset"
	"highrpm/internal/governor"
	"highrpm/internal/platform"
	"highrpm/internal/workload"
)

// GovernorResult compares power-capping control stacks: the estimate
// source (raw IM readings vs HighRPM's per-second restoration) crossed
// with the control policy (hysteresis, PID, trend-predictive). It is the
// application payoff of the Fig. 1 motivation.
type GovernorResult struct {
	CapWatts float64
	Rows     []governor.Outcome
	// UncappedPeakW and UncappedEnergyJ are the no-governor reference.
	UncappedPeakW   float64
	UncappedEnergyJ float64
}

// RunGovernor executes Graph500 under each control stack at a cap inside
// the platform's actionable regime.
func RunGovernor(cfg Config) (*GovernorResult, error) {
	bench, err := workload.Find("Graph500/bfs")
	if err != nil {
		return nil, err
	}
	bench.Repeat = 8

	// Train the estimate model on the non-Graph500 suites.
	gen := cfg.genConfig()
	gen.SamplesPerSuite = cfg.SamplesPerSuite / 2
	if gen.SamplesPerSuite < 150 {
		gen.SamplesPerSuite = 150
	}
	train := &dataset.Set{}
	for _, s := range []string{workload.SuiteSPEC, workload.SuiteHPCC, workload.SuiteSMG2000, workload.SuiteHPCG} {
		set, err := dataset.GenerateSuite(gen, s)
		if err != nil {
			return nil, err
		}
		train.Append(set)
	}
	opts := cfg.coreOptions()
	model, err := core.Train(train, opts)
	if err != nil {
		return nil, err
	}

	const cap = 100.0
	out := &GovernorResult{CapWatts: cap}

	free, err := platform.NewNode(cfg.Platform, cfg.Seed+3)
	if err != nil {
		return nil, err
	}
	uncapped := free.Run(bench, 4000, 1)
	out.UncappedPeakW = uncapped.PeakPower()
	out.UncappedEnergyJ = uncapped.Energy()

	type stack struct {
		src func() governor.Source
		pol func() governor.Policy
	}
	stacks := []stack{
		{func() governor.Source { return &governor.RawIM{} }, func() governor.Policy { return &governor.Hysteresis{MarginFrac: 0.15} }},
		{func() governor.Source { return governor.NewModelSource(model) }, func() governor.Policy { return &governor.Hysteresis{MarginFrac: 0.15} }},
		{func() governor.Source { return governor.NewModelSource(model) }, func() governor.Policy { return &governor.PID{} }},
		{func() governor.Source { return governor.NewModelSource(model) }, func() governor.Policy {
			p := governor.NewPredictive(3)
			p.Base = &governor.Hysteresis{MarginFrac: 0.15}
			return p
		}},
	}
	// Average every stack over several workload seeds: a single Graph500
	// run's spike pattern can mask the source/policy differences.
	const seeds = 3
	for _, st := range stacks {
		var agg governor.Outcome
		for k := 0; k < seeds; k++ {
			node, err := platform.NewNode(cfg.Platform, cfg.Seed+3+int64(k)*131)
			if err != nil {
				return nil, err
			}
			res, err := governor.Run(node, bench, st.src(), st.pol(), governor.Config{
				CapWatts: cap, MissInterval: cfg.MissInterval,
			})
			if err != nil {
				return nil, err
			}
			agg.Policy, agg.Source = res.Policy, res.Source
			if res.PeakW > agg.PeakW {
				agg.PeakW = res.PeakW
			}
			agg.EnergyJ += res.EnergyJ / seeds
			agg.OverCapSeconds += res.OverCapSeconds / seeds
			agg.CompletionSeconds += res.CompletionSeconds / seeds
			agg.MeanFreqGHz += res.MeanFreqGHz / seeds
		}
		out.Rows = append(out.Rows, agg)
	}
	return out, nil
}

// Table renders the control-stack comparison.
func (r *GovernorResult) Table() *Table {
	t := &Table{
		ID:     "governor",
		Title:  "Power-capping control stacks on Graph500 (cap 100 W, IM every 10 s)",
		Header: []string{"Source", "Policy", "Peak W", "Over-cap s", "Energy kJ", "Runtime s", "Mean GHz"},
	}
	t.AddRow("(uncapped)", "-", f1(r.UncappedPeakW), "-", f2(r.UncappedEnergyJ/1000), "-", "-")
	for _, row := range r.Rows {
		t.AddRow(row.Source, row.Policy, f1(row.PeakW), f1(row.OverCapSeconds),
			f2(row.EnergyJ/1000), f1(row.CompletionSeconds), f2(row.MeanFreqGHz))
	}
	t.Notes = append(t.Notes,
		"expected: the highrpm source cuts over-cap time vs raw IM at the same policy (it sees spikes between",
		"readings); PID/predictive trade over-cap time against retained frequency")
	return t
}
