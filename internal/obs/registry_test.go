package obs

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry populates a registry the way the monitor does — families
// registered out of name order, label values created out of sorted order,
// non-finite values included — so the golden bytes prove the exposition
// sorts and formats deterministically.
func goldenRegistry() *Registry {
	reg := NewRegistry()
	// Registered last alphabetically, first here: order must not leak.
	ticks := reg.Histogram("highrpm_overhead_tick_seconds",
		"Wall-clock latency of one estimation tick.", []float64{0.001, 0.01, 0.1})
	ticks.Observe(0.0005)
	ticks.Observe(0.02)
	ticks.Observe(5)

	power := reg.GaugeVec("highrpm_node_power_watts",
		"Latest restored power per node and component.", "node", "component")
	// Created in reverse order; exposition must sort by label values.
	power.With("node-01", "node").Set(96.5)
	power.With("node-00", "node").Set(101.25)
	power.With("node-00", "ipmi").Set(math.NaN())
	power.With("node-00", "cpu").Set(55.125)

	scrapes := reg.Counter("highrpm_http_scrapes_total", "Completed /metrics expositions.")
	scrapes.Add(42)

	esc := reg.GaugeVec("highrpm_escape_check", `Help with \backslash`, "path")
	esc.With("a\"b\\c\nd").Set(1)

	// A labeled family with no series yet must render nothing at all.
	reg.GaugeVec("highrpm_empty_vec", "Labeled family with no series.", "node")
	return reg
}

func TestMetricsExpositionGolden(t *testing.T) {
	reg := goldenRegistry()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden.prom")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
	if strings.Contains(buf.String(), "highrpm_empty_vec") {
		t.Error("family with no series leaked into exposition")
	}
	// Byte-stability: a second render of the same state must be identical.
	var again bytes.Buffer
	if err := reg.WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("two expositions of identical state differ")
	}
}

func TestCounterGaugeSemantics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter value = %v, want 3.5", got)
	}
	c.Set(10) // snapshot mirroring
	if got := c.Value(); got != 10 {
		t.Errorf("counter after Set = %v, want 10", got)
	}
	g := reg.Gauge("g", "")
	g.Set(5)
	g.Add(-2)
	if got := g.Value(); got != 3 {
		t.Errorf("gauge value = %v, want 3", got)
	}
	// Re-registration with the same shape returns the same instrument.
	if got := reg.Counter("c_total", "").Value(); got != 10 {
		t.Errorf("re-registered counter = %v, want 10", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", "", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 555.5 {
		t.Errorf("sum = %v, want 555.5", h.Sum())
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`h_bucket{le="1"} 1`,
		`h_bucket{le="10"} 2`,
		`h_bucket{le="100"} 3`,
		`h_bucket{le="+Inf"} 4`,
		`h_sum 555.5`,
		`h_count 4`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegisterMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m", "")
	assertPanics(t, "kind mismatch", func() { reg.Gauge("m", "") })
	reg.GaugeVec("v", "", "a", "b")
	assertPanics(t, "label-name mismatch", func() { reg.GaugeVec("v", "", "a", "c") })
	assertPanics(t, "label-count mismatch", func() { reg.GaugeVec("v", "", "a") })
	assertPanics(t, "label-value arity", func() { reg.GaugeVec("w", "", "a").With("x", "y") })
	assertPanics(t, "empty name", func() { reg.Counter("", "") })
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestOnGatherRunsPerExposition(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("refreshed", "")
	n := 0
	reg.OnGather(func() { n++; g.Set(float64(n)) })
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("gather callback ran %d times, want 2", n)
	}
	if g.Value() != 2 {
		t.Errorf("gauge = %v, want 2", g.Value())
	}
}

func TestConcurrentInstruments(t *testing.T) {
	checkNoLeaks(t)
	reg := NewRegistry()
	c := reg.Counter("c_total", "")
	h := reg.Histogram("h", "", TickBuckets)
	v := reg.CounterVec("v_total", "", "worker")
	var wg sync.WaitGroup
	const workers, perWorker = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(0.001)
				v.With("w").Inc()
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %v, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := v.With("w").Value(); got != workers*perWorker {
		t.Errorf("vec counter = %v, want %d", got, workers*perWorker)
	}
}

func TestSelfMeterTick(t *testing.T) {
	reg := NewRegistry()
	m := NewSelfMeter(reg)
	for i := 0; i < 3; i++ {
		done := m.Tick()
		done()
	}
	if got := m.Ticks(); got != 3 {
		t.Errorf("ticks = %v, want 3", got)
	}
	// Nil meter must be a safe no-op (the unmetered service path).
	var nilMeter *SelfMeter
	nilMeter.Tick()()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"highrpm_overhead_ticks_total 3",
		"highrpm_overhead_tick_seconds_count 3",
		"highrpm_overhead_goroutines ",
		"highrpm_overhead_alloc_bytes_total ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("self-meter exposition missing %q:\n%s", want, out)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		1:           "1",
		1.5:         "1.5",
		math.NaN():  "NaN",
		math.Inf(1): "+Inf",
		1e21:        "1e+21",
	}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
	if got := formatFloat(math.Inf(-1)); got != "-Inf" {
		t.Errorf("formatFloat(-Inf) = %q", got)
	}
}
